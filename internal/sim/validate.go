package sim

import (
	"fmt"
	"sort"

	"krad/internal/dag"
)

// ValidateSchedule independently re-checks a TraceTasks-level run against
// the Section 2 definition of a valid schedule:
//
//  1. τ maps every task of every job to exactly one time step;
//  2. precedence: for every edge u ≺ v, τ(u) < τ(v);
//  3. category matching and capacity: at every step, the number of α-tasks
//     executing is at most Pα (processor assignment πα then exists by
//     counting);
//  4. no job executes before its release: τ(v) > r(Ji);
//  5. recorded completion times equal max τ over each job's tasks.
//
// Pass the same specs (in the same order) that were passed to Run; the
// function re-applies the engine's stable release-time sort so indices line
// up with result.Jobs.
func ValidateSchedule(specs []JobSpec, result *Result) error {
	if result.Trace == nil || result.Trace.level < TraceTasks {
		return fmt.Errorf("sim: ValidateSchedule requires a TraceTasks-level trace")
	}
	if len(specs) != len(result.Jobs) {
		return fmt.Errorf("sim: %d specs for %d job results", len(specs), len(result.Jobs))
	}
	ordered := make([]JobSpec, len(specs))
	copy(ordered, specs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Release < ordered[j].Release })
	specs = ordered

	// τ per job, plus per-step per-category load.
	tau := make([][]int64, len(specs))
	for i, s := range specs {
		tau[i] = make([]int64, s.Graph.NumTasks())
	}
	type stepCat struct {
		step int64
		cat  dag.Category
	}
	load := make(map[stepCat]int)

	for _, e := range result.Trace.Tasks {
		if e.Job < 0 || e.Job >= len(specs) {
			return fmt.Errorf("sim: trace references unknown job %d", e.Job)
		}
		g := specs[e.Job].Graph
		if e.Task < 0 || int(e.Task) >= g.NumTasks() {
			return fmt.Errorf("sim: trace references unknown task %d of job %d", e.Task, e.Job)
		}
		if g.Category(e.Task) != e.Cat {
			return fmt.Errorf("sim: job %d task %d executed as category %d but is category %d — functional-heterogeneity violation",
				e.Job, e.Task, e.Cat, g.Category(e.Task))
		}
		if tau[e.Job][e.Task] != 0 {
			return fmt.Errorf("sim: job %d task %d executed twice (steps %d and %d)", e.Job, e.Task, tau[e.Job][e.Task], e.Step)
		}
		if e.Step <= result.Jobs[e.Job].Release {
			return fmt.Errorf("sim: job %d task %d executed at step %d before release %d", e.Job, e.Task, e.Step, result.Jobs[e.Job].Release)
		}
		tau[e.Job][e.Task] = e.Step
		load[stepCat{e.Step, e.Cat}]++
	}

	// 1. completeness and 5. completion times.
	for i, s := range specs {
		var last int64
		for v := 0; v < s.Graph.NumTasks(); v++ {
			if tau[i][v] == 0 {
				return fmt.Errorf("sim: job %d task %d never executed", i, v)
			}
			if tau[i][v] > last {
				last = tau[i][v]
			}
		}
		if last != result.Jobs[i].Completion {
			return fmt.Errorf("sim: job %d completion recorded as %d but last task ran at %d", i, result.Jobs[i].Completion, last)
		}
	}

	// 2. precedence. Under speed augmentation a successor may run in a
	// later micro-round of the same step, so the strict inequality of the
	// unit-speed model relaxes to ≤ within a step.
	for i, s := range specs {
		g := s.Graph
		for u := 0; u < g.NumTasks(); u++ {
			for _, v := range g.Successors(dag.TaskID(u)) {
				if tau[i][u] > tau[i][v] || (result.Speed <= 1 && tau[i][u] == tau[i][v]) {
					return fmt.Errorf("sim: job %d edge %d→%d violated: τ(u)=%d, τ(v)=%d", i, u, v, tau[i][u], tau[i][v])
				}
			}
		}
	}

	// 3. capacity — under speed augmentation each processor completes
	// Speed tasks per step.
	speed := result.Speed
	if speed < 1 {
		speed = 1
	}
	for sc, n := range load {
		if n > result.Caps[sc.cat-1]*speed {
			return fmt.Errorf("sim: step %d category %d ran %d tasks on %d processors (speed %d)", sc.step, sc.cat, n, result.Caps[sc.cat-1], speed)
		}
	}
	return nil
}
