// Command kradfair is a closed-loop fairness simulator: it replays N
// synthetic greedy tenants against an in-process scheduler service with
// fair-share admission enabled and emits one CSV row per tenant per
// round, so the convergence of admitted shares onto the configured
// weights — and the exponential decay of an idled tenant's usage — can be
// plotted or asserted.
//
// Each round every active tenant attempts -burst single-task submissions,
// interleaved one submission per tenant so no tenant grabs lent capacity
// before its peers wake up; over-quota attempts are shed by the fair gate
// (the HTTP surface would answer 429) and counted. The round ends with up
// to -steps virtual steps of drain, advancing the shard clock that the
// usage decay is measured against. The service is never Started: the
// simulator owns the clock via Service.StepAll, so runs are deterministic
// — same flags, same CSV.
//
// Tenants are leaves t0..t{N-1} of a flat queue tree with over-quota
// weights from -weights (comma-separated, padded with 1, default "2,1"
// so the two-tenant run demonstrates the 2:1 contract). From round
// -idle-from on, the highest-indexed tenant stops submitting, which is
// what makes the decay tail visible.
//
// Usage:
//
//	go run ./cmd/kradfair                          # 2 tenants, 2:1, CSV on stdout
//	go run ./cmd/kradfair -tenants 3 -weights 4,2,1 -rounds 200
//	go run ./cmd/kradfair -check                   # assert convergence, exit 1 on failure
//
// With -check the run also asserts the fairness contract after the CSV is
// written:
//
//   - the first two tenants' cumulative admitted ratio, measured over the
//     rounds both were submitting, is within 5% of their weight ratio
//     (weights 2:1 → admitted 2:1), and
//   - the idled tenant's decayed usage ends below 1% of its recorded peak.
//
// The decay check needs enough post-idle virtual steps: the clock only
// advances while work drains, so a run with few slots executes few steps
// per round and may need more -rounds (or a shorter -halflife) for the
// tail to fall under 1%. The defaults leave tens of half-lives.
//
// CSV schema: round,step,tenant,share,in_flight,usage,admitted,shed —
// step is the fleet virtual clock after the round's drain; share is the
// leaf's slot bound from the latest rebalance; admitted and shed are
// cumulative.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/fairshare"
	"krad/internal/sched"
	"krad/internal/server"
	"krad/internal/sim"
)

// options carries the parsed flags; a separate struct keeps run testable.
type options struct {
	tenants  int
	weights  []float64
	rounds   int
	slots    int
	burst    int
	steps    int64
	halfLife int64
	idleFrom int
	check    bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("kradfair: ")
	var (
		tenantsFlag  = flag.Int("tenants", 2, "number of synthetic tenants (leaves t0..tN-1)")
		weightsFlag  = flag.String("weights", "2,1", "comma-separated over-quota weights, padded with 1")
		roundsFlag   = flag.Int("rounds", 120, "closed-loop rounds")
		slotsFlag    = flag.Int("slots", 16, "fleet admission bound (MaxInFlight) divided among tenants")
		burstFlag    = flag.Int("burst", 0, "submission attempts per tenant per round (0 = slots)")
		stepsFlag    = flag.Int64("steps", 16, "max virtual drain steps per round")
		hlFlag       = flag.Int64("halflife", 32, "usage decay half-life in virtual steps")
		idleFromFlag = flag.Int("idle-from", 60, "round from which the last tenant stops submitting (0 = never)")
		outFlag      = flag.String("o", "-", "CSV output path (- = stdout)")
		checkFlag    = flag.Bool("check", false, "assert share convergence and idle decay; exit non-zero on failure")
	)
	flag.Parse()
	if *tenantsFlag < 1 {
		log.Fatal("-tenants must be ≥ 1")
	}
	weights, err := parseWeights(*weightsFlag, *tenantsFlag)
	if err != nil {
		log.Fatalf("-weights: %v", err)
	}

	var out io.Writer = os.Stdout
	if *outFlag != "-" {
		f, err := os.Create(*outFlag)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		out = f
	}

	err = run(options{
		tenants:  *tenantsFlag,
		weights:  weights,
		rounds:   *roundsFlag,
		slots:    *slotsFlag,
		burst:    *burstFlag,
		steps:    *stepsFlag,
		halfLife: *hlFlag,
		idleFrom: *idleFromFlag,
		check:    *checkFlag,
	}, out)
	if err != nil {
		log.Fatal(err)
	}
}

// run drives the closed loop and writes the CSV; with o.check set it also
// asserts the fairness contract and returns the first violation.
func run(o options, out io.Writer) error {
	nodes := make([]fairshare.NodeConfig, o.tenants)
	paths := make([]string, o.tenants)
	for i := range nodes {
		paths[i] = fmt.Sprintf("t%d", i)
		nodes[i] = fairshare.NodeConfig{Name: paths[i], Weight: o.weights[i]}
	}

	// One shard, single-category unit jobs: the simulator measures the
	// admission gate, not the scheduler, so the machine is the simplest
	// one that drains whatever the gate admits.
	svc, err := server.New(server.Config{
		Sim: sim.Config{
			K: 1, Caps: []int{4}, Scheduler: core.NewKRAD(1),
			Pick: dag.PickFIFO, ValidateAllotments: true,
		},
		MaxInFlight:  o.slots,
		NewScheduler: func() sched.Scheduler { return core.NewKRAD(1) },
		Fairness:     &fairshare.Config{HalfLife: o.halfLife, Nodes: nodes},
	})
	if err != nil {
		return err
	}
	// Never Started: StepAll below owns the clock deterministically.

	fmt.Fprintln(out, "round,step,tenant,share,in_flight,usage,admitted,shed")

	burst := o.burst
	if burst <= 0 {
		burst = o.slots
	}
	idleTenant := -1
	if o.idleFrom > 0 && o.idleFrom < o.rounds && o.tenants > 1 {
		idleTenant = o.tenants - 1
	}

	// The admitted-ratio check must only count rounds where both compared
	// tenants were submitting: once the idle tenant (possibly t1 itself in
	// the two-tenant default) stops, its cumulative share stops growing
	// and the end-of-run ratio measures idleness, not division.
	ratioRound := o.rounds - 1
	if idleTenant >= 0 {
		ratioRound = o.idleFrom - 1
	}
	ratioSnap := make(map[string]server.TenantStats)

	idlePeak := 0.0
	fleetFull := int64(0)
	for round := 0; round < o.rounds; round++ {
		// Interleave: one submission per tenant per inner iteration. The
		// gate is work-conserving — an idle tenant's slots are lent out
		// until drain — so bursting tenants one-by-one would let the first
		// claim the whole fleet before its peers count as active.
		for b := 0; b < burst; b++ {
			for i := 0; i < o.tenants; i++ {
				if i == idleTenant && round >= o.idleFrom {
					continue
				}
				_, err := svc.SubmitTenant("", paths[i], sim.JobSpec{Graph: dag.Singleton(1, 1)})
				switch {
				case errors.Is(err, server.ErrOverQuota):
					// Shed by the fair gate; counted in the tenant's shed column.
				case errors.Is(err, server.ErrQueueFull):
					// Fleet backpressure, not a fairness verdict: shares moved
					// mid-round (usage accrues per admission) and an earlier
					// admission under an older, larger share still holds the
					// slot until drain. The HTTP surface answers 503 here.
					fleetFull++
				case err != nil:
					return fmt.Errorf("round %d tenant %s: %v", round, paths[i], err)
				}
			}
		}
		if _, err := svc.StepAll(o.steps); err != nil {
			return fmt.Errorf("round %d: step: %v", round, err)
		}

		st := svc.Stats()
		for _, ts := range st.Tenants {
			fmt.Fprintf(out, "%d,%d,%s,%d,%d,%g,%d,%d\n",
				round, st.Now, ts.Path, ts.Share, ts.InFlight, ts.Usage, ts.Admitted, ts.Shed)
			if idleTenant >= 0 && ts.Path == paths[idleTenant] && ts.Usage > idlePeak {
				idlePeak = ts.Usage
			}
			if round == ratioRound {
				ratioSnap[ts.Path] = ts
			}
		}
	}

	if fleetFull > 0 {
		log.Printf("%d attempts bounced on the fleet bound (503 backpressure, not shed)", fleetFull)
	}
	if o.check {
		if err := check(svc, ratioSnap, paths, o.weights, idleTenant, idlePeak, o.halfLife); err != nil {
			return err
		}
		log.Printf("check passed: admitted shares converged, idle usage decayed")
	}
	return nil
}

// check asserts the fairness contract on the finished run: the first two
// tenants' cumulative admitted ratio (measured at the last round both
// were submitting — ratioSnap) tracks their weight ratio within 5%, and
// the idled tenant's usage decayed below 1% of its peak.
func check(svc *server.Service, ratioSnap map[string]server.TenantStats, paths []string, weights []float64, idleTenant int, idlePeak float64, halfLife int64) error {
	byPath := make(map[string]server.TenantStats)
	for _, ts := range svc.Stats().Tenants {
		byPath[ts.Path] = ts
	}
	// Compare the first two tenants: in the default run those are the 2:1
	// pair. Both must have shed (i.e. both were actually rate-limited —
	// an unsaturated run proves nothing about division).
	if len(paths) >= 2 {
		a, b := ratioSnap[paths[0]], ratioSnap[paths[1]]
		if a.Shed == 0 || b.Shed == 0 {
			return fmt.Errorf("check: tenants not saturated (shed %d/%d); raise -burst or lower -slots", a.Shed, b.Shed)
		}
		if a.Admitted == 0 || b.Admitted == 0 {
			return fmt.Errorf("check: tenant admitted nothing (%d/%d)", a.Admitted, b.Admitted)
		}
		got := float64(a.Admitted) / float64(b.Admitted)
		want := weights[0] / weights[1]
		if rel := got/want - 1; rel < -0.05 || rel > 0.05 {
			return fmt.Errorf("check: admitted ratio %s:%s = %.3f, want %.2f ± 5%%", paths[0], paths[1], got, want)
		}
		log.Printf("admitted ratio %s:%s = %.3f (target %.2f)", paths[0], paths[1], got, want)
	}
	if idleTenant >= 0 {
		final := byPath[paths[idleTenant]].Usage
		if idlePeak <= 0 {
			return fmt.Errorf("check: idle tenant %s never accrued usage", paths[idleTenant])
		}
		if final >= 0.01*idlePeak {
			return fmt.Errorf("check: idle tenant %s usage %.4f is %.1f%% of peak %.4f, want < 1%% (half-life %d)",
				paths[idleTenant], final, 100*final/idlePeak, idlePeak, halfLife)
		}
		log.Printf("idle tenant %s usage decayed to %.2g (%.3f%% of peak %.4g)",
			paths[idleTenant], final, 100*final/idlePeak, idlePeak)
	}
	return nil
}

// parseWeights parses the comma-separated -weights list, padding with 1
// up to n tenants.
func parseWeights(s string, n int) ([]float64, error) {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > n {
		return nil, fmt.Errorf("%d weights for %d tenants", len(parts), n)
	}
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		if w <= 0 {
			return nil, fmt.Errorf("weight %g must be positive", w)
		}
		out[i] = w
	}
	return out, nil
}
