package sim

import (
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
)

func TestSpeedAugmentationChain(t *testing.T) {
	// A chain of 12 unit tasks on one processor: speed s finishes in
	// ⌈12/s⌉ steps.
	for _, s := range []int{1, 2, 3, 4} {
		res, err := Run(Config{
			K: 1, Caps: []int{1}, Scheduler: core.NewKRAD(1),
			Speed: s, ValidateAllotments: true, Trace: TraceTasks,
		}, []JobSpec{{Graph: dag.UniformChain(1, 12, 1)}})
		if err != nil {
			t.Fatal(err)
		}
		want := int64((12 + s - 1) / s)
		if res.Makespan != want {
			t.Errorf("speed %d: makespan %d, want %d", s, res.Makespan, want)
		}
		if res.Speed != s {
			t.Errorf("speed %d not echoed: %d", s, res.Speed)
		}
		if err := ValidateSchedule([]JobSpec{{Graph: dag.UniformChain(1, 12, 1)}}, res); err != nil {
			t.Errorf("speed %d: %v", s, err)
		}
	}
}

func TestSpeedZeroIsNormal(t *testing.T) {
	g := dag.ForkJoin(1, 4, 1, 1, 1)
	a, err := Run(Config{K: 1, Caps: []int{2}, Scheduler: core.NewKRAD(1), Speed: 0}, []JobSpec{{Graph: g}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{K: 1, Caps: []int{2}, Scheduler: core.NewKRAD(1), Speed: 1}, []JobSpec{{Graph: g}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("speed 0 (%d) != speed 1 (%d)", a.Makespan, b.Makespan)
	}
	if a.Speed != 1 {
		t.Errorf("speed 0 echoed as %d", a.Speed)
	}
}

func TestSpeedNegativeRejected(t *testing.T) {
	_, err := Run(Config{K: 1, Caps: []int{1}, Scheduler: core.NewKRAD(1), Speed: -1},
		[]JobSpec{{Graph: dag.Singleton(1, 1)}})
	if err == nil {
		t.Error("negative speed accepted")
	}
}

func TestSpeedAugmentationNeverHurts(t *testing.T) {
	// Doubling speed never increases makespan or total response on the
	// same workload and scheduler.
	specs := []JobSpec{
		{Graph: dag.MapReduce(2, 8, 4, 1, 1, 2, 2)},
		{Graph: dag.RoundRobinChain(2, 10)},
		{Graph: dag.ForkJoin(2, 6, 1, 2, 1)},
	}
	var prevMs, prevResp int64 = 1 << 50, 1 << 50
	for _, s := range []int{1, 2, 4} {
		res, err := Run(Config{
			K: 2, Caps: []int{2, 2}, Scheduler: core.NewKRAD(2), Speed: s,
			ValidateAllotments: true,
		}, specs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan > prevMs || res.TotalResponse() > prevResp {
			t.Errorf("speed %d regressed: makespan %d (prev %d), resp %d (prev %d)",
				s, res.Makespan, prevMs, res.TotalResponse(), prevResp)
		}
		prevMs, prevResp = res.Makespan, res.TotalResponse()
	}
}
