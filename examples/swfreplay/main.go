// Swfreplay: replay a Standard Workload Format log (the Parallel Workloads
// Archive format) through the K-resource simulator. Without -log it
// generates a synthetic archive-shaped log first, so the example is
// self-contained; point -log at a real archive trace (e.g. a *.swf from
// the Feitelson archive) to replay production traffic.
//
//	go run ./examples/swfreplay [-log trace.swf] [-jobs 300] [-scale 60]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"krad"
)

func main() {
	log.SetFlags(0)
	logPath := flag.String("log", "", "SWF log file (empty = generate a synthetic one)")
	jobs := flag.Int("jobs", 300, "jobs for the synthetic log / cap for real logs")
	scale := flag.Int64("scale", 60, "seconds per simulation step")
	seed := flag.Int64("seed", 1, "synthetic log seed")
	flag.Parse()

	const K = 3
	caps := []int{16, 16, 16}

	var reader *strings.Reader
	if *logPath == "" {
		var b strings.Builder
		if err := krad.WriteSyntheticSWF(&b, *jobs, *seed); err != nil {
			log.Fatal(err)
		}
		reader = strings.NewReader(b.String())
		fmt.Printf("generated synthetic SWF log with %d jobs\n", *jobs)
	} else {
		data, err := os.ReadFile(*logPath)
		if err != nil {
			log.Fatal(err)
		}
		reader = strings.NewReader(string(data))
		fmt.Printf("replaying %s\n", *logPath)
	}

	specs, recs, err := krad.ParseSWF(reader, krad.SWFOptions{
		K: K, TimeScale: *scale, MaxJobs: *jobs, MaxProcs: 16,
		Category: func(rec krad.SWFRecord, _ int) krad.Category {
			p := rec.Partition
			if p < 1 {
				p = 1
			}
			return krad.Category((p-1)%K + 1)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	totalWork := 0
	for _, s := range specs {
		totalWork += s.Source.TotalTasks()
	}
	fmt.Printf("%d usable jobs, %d processor-steps of work, categories from the partition field\n\n",
		len(recs), totalWork)

	fmt.Printf("%-10s  %8s  %7s  %10s  %8s  %8s\n", "scheduler", "makespan", "ratio", "mean resp", "p95 resp", "util")
	for _, name := range []string{"k-rad", "deq-only", "rr-only", "equi", "fcfs"} {
		s := mustScheduler(name, K)
		res, err := krad.Run(krad.Config{
			K: K, Caps: caps, Scheduler: s, ValidateAllotments: true,
		}, specs)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		resp := make([]float64, len(res.Jobs))
		for i, j := range res.Jobs {
			resp[i] = float64(j.Response())
		}
		sort.Float64s(resp)
		lb := krad.MakespanLowerBound(res)
		var util float64
		for _, u := range res.Utilization() {
			util += u
		}
		fmt.Printf("%-10s  %8d  %7.3f  %10.1f  %8.0f  %7.0f%%\n",
			name, res.Makespan, float64(res.Makespan)/float64(lb),
			res.MeanResponse(), resp[len(resp)*95/100], 100*util/float64(K))
	}
	fmt.Println("\nEvery run stays within the paper's K+1−1/Pmax makespan bound; the")
	fmt.Println("ratio column shows how far above the work/span lower bound each")
	fmt.Println("scheduler lands on archive-shaped traffic.")
}

func mustScheduler(name string, k int) krad.Scheduler {
	switch name {
	case "k-rad":
		return krad.NewKRAD(k)
	case "deq-only":
		return krad.NewDEQOnly(k)
	case "rr-only":
		return krad.NewRROnly(k)
	case "equi":
		return krad.NewEQUI(k)
	case "fcfs":
		return krad.NewFCFS(k)
	}
	log.Fatalf("unknown scheduler %q", name)
	return nil
}
