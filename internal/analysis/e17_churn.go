package analysis

import (
	"fmt"

	"krad/internal/metrics"
	"krad/internal/sched"
	"krad/internal/sim"
	"krad/internal/workload"
)

// RunE17 measures reallocation churn — processors reassigned between jobs
// per scheduling step — for every scheduler on a common overloaded
// heterogeneous workload, alongside the performance it buys. The paper's
// model reallocates for free; real systems pay per migration, which is why
// the E13 quantum exists. Expected shape: gang scheduling churns the least
// (whole-machine handoffs only at quantum boundaries), run-to-completion
// policies (fcfs, deq-only) churn little, and the fair time-sharing family
// (k-rad, rr-only, equi, laps) pays the most churn — k-rad's quantized
// variant buys most of gang's churn reduction at a fraction of its
// makespan cost.
func RunE17(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E17",
		Title:  "Reallocation churn per scheduler (the cost the model treats as free)",
		Header: []string{"scheduler", "jobs", "makespan", "mean resp", "total churn", "churn/step"},
	}
	const k = 3
	caps := []int{4, 4, 4}
	jobs := 60
	if opts.Quick {
		jobs = 30
	}
	specs, err := workload.Mix{
		K: k, Jobs: jobs, MinSize: 4, MaxSize: 40, Seed: opts.seed(),
	}.Generate()
	if err != nil {
		return nil, err
	}

	names, mk := schedulerFactories(k)
	names = append(names, "k-rad-quantized(8)")
	mkQ := func() sched.Scheduler { return sched.NewQuantized(mustScheduler("k-rad", k), 8) }

	for _, name := range names {
		var s sched.Scheduler
		if name == "k-rad-quantized(8)" {
			s = mkQ()
		} else {
			s = mk[name]()
		}
		churn := metrics.NewChurn(k)
		totalWork := int64(0)
		for _, sp := range specs {
			totalWork += int64(sp.Graph.NumTasks())
		}
		res, err := sim.Run(sim.Config{
			K: k, Caps: caps, Scheduler: s,
			ValidateAllotments: true,
			Observer:           churn.Observer(),
			MaxSteps:           12 * (4*totalWork + 64),
		}, specs)
		if err != nil {
			return nil, fmt.Errorf("E17 %s: %w", name, err)
		}
		t.AddRow(name, jobs, res.Makespan, fmt.Sprintf("%.1f", res.MeanResponse()),
			churn.Total, fmt.Sprintf("%.2f", churn.PerStep()))
	}
	t.AddNote("churn = processors reassigned between jobs per step (half-L1 of consecutive allotment vectors); the scheduler rows share one workload, so columns are directly comparable")
	return t, nil
}

// mustScheduler resolves a registry scheduler or panics (registry names
// are compile-time constants here).
func mustScheduler(name string, k int) sched.Scheduler {
	s, err := NewScheduler(name, k)
	if err != nil {
		panic(err)
	}
	return s
}
