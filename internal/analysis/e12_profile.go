package analysis

import (
	"fmt"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/profile"
	"krad/internal/sim"
)

// RunE12 validates the compact parallelism-profile job representation
// (internal/profile) at two levels:
//
//   - equivalence: small profile jobs and their expanded dense-layered
//     K-DAGs produce identical makespans and total responses under K-RAD;
//   - scale: a multi-million-task profile workload runs in milliseconds
//     and still satisfies the Theorem 3 makespan bound — coverage the
//     per-task DAG representation cannot reach in memory.
func RunE12(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "Profile-job representation: DAG equivalence and scale",
		Header: []string{"case", "repr", "jobs", "tasks", "makespan", "total resp", "ratio", "wall"},
	}
	const k = 3
	caps := []int{8, 8, 8}

	// Part 1: equivalence on expandable sizes.
	eqJobs := 12
	if opts.Quick {
		eqJobs = 6
	}
	profSpecs, err := profile.Generate(profile.GenOpts{
		K: k, Jobs: eqJobs, MinPhases: 1, MaxPhases: 5, MaxParallelism: 12,
		Seed: opts.seed(),
	})
	if err != nil {
		return nil, err
	}
	dagSpecs := make([]sim.JobSpec, len(profSpecs))
	for i, s := range profSpecs {
		dagSpecs[i] = sim.JobSpec{Source: sim.GraphSource(s.Source.(*profile.Job).ToGraph())}
	}
	var eq [2]*sim.Result
	for i, specs := range [][]sim.JobSpec{profSpecs, dagSpecs} {
		start := time.Now()
		res, err := sim.Run(sim.Config{
			K: k, Caps: caps, Scheduler: core.NewKRAD(k),
			Pick: dag.PickFIFO, ValidateAllotments: true,
		}, specs)
		if err != nil {
			return nil, err
		}
		eq[i] = res
		repr := [2]string{"profile", "dag"}[i]
		tasks := 0
		for _, s := range specs {
			tasks += s.Source.TotalTasks()
		}
		bc := CheckTheorem3(res)
		t.AddRow("equivalence", repr, len(specs), tasks, res.Makespan, res.TotalResponse(), bc.Measured,
			time.Since(start).Round(time.Microsecond).String())
	}
	if eq[0].Makespan != eq[1].Makespan || eq[0].TotalResponse() != eq[1].TotalResponse() {
		t.AddNote("FAIL: profile and DAG runs diverged (makespan %d vs %d, response %d vs %d)",
			eq[0].Makespan, eq[1].Makespan, eq[0].TotalResponse(), eq[1].TotalResponse())
	}

	// Part 2: scale. Task counts far beyond what per-task DAGs can hold.
	scaleJobs, maxPar := 64, 200_000
	if opts.Quick {
		scaleJobs, maxPar = 16, 20_000
	}
	bigSpecs, err := profile.Generate(profile.GenOpts{
		K: k, Jobs: scaleJobs, MinPhases: 2, MaxPhases: 8, MaxParallelism: maxPar,
		Seed: opts.seed() + 99,
	})
	if err != nil {
		return nil, err
	}
	tasks := 0
	for _, s := range bigSpecs {
		tasks += s.Source.TotalTasks()
	}
	bigCaps := []int{512, 512, 512}
	start := time.Now()
	res, err := sim.Run(sim.Config{
		K: k, Caps: bigCaps, Scheduler: core.NewKRAD(k), ValidateAllotments: true,
	}, bigSpecs)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	bc := CheckTheorem3(res)
	t.AddRow("scale", "profile", scaleJobs, tasks, res.Makespan, res.TotalResponse(), bc.Measured,
		wall.Round(time.Millisecond).String())
	if !bc.OK {
		t.AddNote("FAIL: %v at scale", bc)
	}
	t.AddNote(fmt.Sprintf("scale row uses caps %v; %d tasks simulated", bigCaps, tasks))
	t.AddNote("expected shape: equivalence rows identical; scale row in the millions of tasks with ratio still under the Theorem 3 bound")
	return t, nil
}
