package sim

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"krad/internal/baselines"
	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sched"
)

// onlineSpecs is a small heterogeneous workload with clustered and gapped
// release times, exercising same-step releases and idle fast-forwards.
func onlineSpecs() []JobSpec {
	return []JobSpec{
		{Graph: dag.RoundRobinChain(3, 9), Release: 0},
		{Graph: dag.ForkJoin(3, 5, 1, 2, 3), Release: 0},
		{Graph: dag.UniformChain(3, 6, 2), Release: 1},
		{Graph: dag.ForkJoin(3, 4, 2, 1, 2), Release: 3},
		{Graph: dag.RoundRobinChain(3, 5), Release: 3},
		{Graph: dag.UniformChain(3, 4, 1), Release: 7},
		{Graph: dag.ForkJoin(3, 6, 3, 3, 3), Release: 20},
		{Graph: dag.RoundRobinChain(3, 7), Release: 20},
		{Graph: dag.UniformChain(3, 5, 3), Release: 21},
		{Graph: dag.Singleton(3, 2), Release: 50},
	}
}

// TestJITAdmissionMatchesBatchRun is the online = offline equivalence
// check: admitting each job just before its release, while the clock is
// running, must reproduce the batch Run schedule bit for bit.
func TestJITAdmissionMatchesBatchRun(t *testing.T) {
	mkCfg := func(s sched.Scheduler) Config {
		return Config{
			K: 3, Caps: []int{2, 2, 2}, Scheduler: s,
			Pick: dag.PickFIFO, Trace: TraceSteps, ValidateAllotments: true,
		}
	}
	schedulers := map[string]func() sched.Scheduler{
		"k-rad": func() sched.Scheduler { return core.NewKRAD(3) },
		"sjf":   func() sched.Scheduler { return baselines.NewSJF() },
	}
	for name, mk := range schedulers {
		batch, err := Run(mkCfg(mk()), onlineSpecs())
		if err != nil {
			t.Fatalf("%s: batch: %v", name, err)
		}

		eng, err := NewEngine(mkCfg(mk()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		queue := onlineSpecs()
		sort.SliceStable(queue, func(i, j int) bool { return queue[i].Release < queue[j].Release })
		for {
			// Admit jobs the moment the clock reaches their release; when
			// the engine would otherwise go idle, admit the whole next
			// arrival batch so the fast-forward cannot jump past it.
			for len(queue) > 0 && queue[0].Release <= eng.Now() {
				if _, err := eng.Admit(queue[0]); err != nil {
					t.Fatalf("%s: admit at t=%d: %v", name, eng.Now(), err)
				}
				queue = queue[1:]
			}
			if eng.Idle() && len(queue) > 0 {
				r := queue[0].Release
				for len(queue) > 0 && queue[0].Release == r {
					if _, err := eng.Admit(queue[0]); err != nil {
						t.Fatalf("%s: admit at t=%d: %v", name, eng.Now(), err)
					}
					queue = queue[1:]
				}
			}
			if eng.Remaining() == 0 && len(queue) == 0 {
				break
			}
			if _, err := eng.Step(); err != nil {
				t.Fatalf("%s: step: %v", name, err)
			}
		}
		live := eng.Result()

		if live.Makespan != batch.Makespan {
			t.Errorf("%s: makespan %d, batch %d", name, live.Makespan, batch.Makespan)
		}
		if !reflect.DeepEqual(live.Jobs, batch.Jobs) {
			t.Errorf("%s: job tables differ:\nlive  %+v\nbatch %+v", name, live.Jobs, batch.Jobs)
		}
		if !reflect.DeepEqual(live.Overloaded, batch.Overloaded) {
			t.Errorf("%s: overloaded %v, batch %v", name, live.Overloaded, batch.Overloaded)
		}
		if !reflect.DeepEqual(live.Trace.Steps, batch.Trace.Steps) {
			t.Errorf("%s: step traces differ (%d vs %d rows)", name, len(live.Trace.Steps), len(batch.Trace.Steps))
		}
	}
}

func TestAdmitPastReleaseErrorsCleanly(t *testing.T) {
	eng, err := NewEngine(Config{
		K: 1, Caps: []int{1}, Scheduler: core.NewKRAD(1), ValidateAllotments: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Admit(JobSpec{Graph: dag.UniformChain(1, 10, 1)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Now() != 4 {
		t.Fatalf("clock at %d, want 4", eng.Now())
	}

	_, err = eng.Admit(JobSpec{Graph: dag.Singleton(1, 1), Release: 3})
	if err == nil || !strings.Contains(err.Error(), "in the past") {
		t.Fatalf("past release accepted: %v", err)
	}
	// The failed admission must leave no trace: no job slot, unchanged
	// clock, and the run must finish exactly as if it never happened.
	if snap := eng.Snapshot(); snap.Admitted != 1 {
		t.Errorf("failed admit registered a job: %+v", snap)
	}
	if eng.Now() != 4 {
		t.Errorf("failed admit moved the clock to %d", eng.Now())
	}
	for eng.Remaining() > 0 {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := eng.Job(0); st.Completion != 10 {
		t.Errorf("job 0 completed at %d, want 10", st.Completion)
	}
}

func TestCancelFreesProcessorsNextStep(t *testing.T) {
	type obs struct {
		ids   []int
		allot []int // per-view total allotment across categories
	}
	var seen []obs
	cfg := Config{
		K: 1, Caps: []int{1}, Scheduler: core.NewKRAD(1),
		Pick: dag.PickFIFO, ValidateAllotments: true,
		Observer: func(tm int64, jobs []sched.JobView, allot [][]int) {
			o := obs{}
			for i, v := range jobs {
				o.ids = append(o.ids, v.ID)
				o.allot = append(o.allot, allot[i][0])
			}
			seen = append(seen, o)
		},
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := eng.Admit(JobSpec{Graph: dag.UniformChain(1, 12, 1)})
	b, _ := eng.Admit(JobSpec{Graph: dag.UniformChain(1, 12, 1)})
	for i := 0; i < 4; i++ {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var execA int
	for _, o := range seen {
		for i, id := range o.ids {
			if id == a {
				execA += o.allot[i]
			}
		}
	}
	if err := eng.Cancel(b); err != nil {
		t.Fatal(err)
	}
	if st, _ := eng.Job(b); st.Phase != JobCancelled || st.CancelledAt != 4 {
		t.Errorf("job b status %+v", st)
	}
	if eng.Remaining() != 1 {
		t.Errorf("remaining %d, want 1", eng.Remaining())
	}

	// From the very next step the cancelled job is out of the schedule and
	// the survivor holds the whole machine.
	pre := len(seen)
	for eng.Remaining() > 0 {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range seen[pre:] {
		if len(o.ids) != 1 || o.ids[0] != a {
			t.Fatalf("cancelled job still scheduled: %+v", o)
		}
		if o.allot[0] != 1 {
			t.Fatalf("survivor not given full capacity: %+v", o)
		}
	}
	st, _ := eng.Job(a)
	want := int64(4 + (12 - execA))
	if st.Completion != want {
		t.Errorf("survivor completed at %d, want %d (executed %d of 12 before the cancel)", st.Completion, want, execA)
	}

	// Cancelled jobs appear in the result with no completion.
	res := eng.Result()
	if res.Jobs[b].Completion != 0 {
		t.Errorf("cancelled job has completion %d", res.Jobs[b].Completion)
	}
}

func TestCancelPendingAndInvalidCancels(t *testing.T) {
	eng, err := NewEngine(Config{
		K: 1, Caps: []int{1}, Scheduler: core.NewKRAD(1), ValidateAllotments: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := eng.Admit(JobSpec{Graph: dag.Singleton(1, 1)})
	b, _ := eng.Admit(JobSpec{Graph: dag.Singleton(1, 1), Release: 100})

	if err := eng.Cancel(b); err != nil {
		t.Fatalf("cancel pending: %v", err)
	}
	if err := eng.Cancel(b); err == nil {
		t.Error("double cancel accepted")
	}
	if err := eng.Cancel(99); err == nil {
		t.Error("cancel of unknown job accepted")
	}

	for eng.Remaining() > 0 {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// The pending job never releases: the engine is idle, not waiting on
	// the phantom release at 100.
	info, err := eng.Step()
	if err != nil || !info.Idle {
		t.Errorf("engine not idle after drain: %+v, %v", info, err)
	}
	if eng.Now() != 1 {
		t.Errorf("clock at %d, want 1 (only job a's single step)", eng.Now())
	}
	if err := eng.Cancel(a); err == nil {
		t.Error("cancel of completed job accepted")
	}
}

func TestIdleEngineClockFrozen(t *testing.T) {
	eng, err := NewEngine(Config{
		K: 2, Caps: []int{1, 1}, Scheduler: core.NewKRAD(2), ValidateAllotments: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		info, err := eng.Step()
		if err != nil || !info.Idle {
			t.Fatalf("idle step %d: %+v, %v", i, info, err)
		}
	}
	if eng.Now() != 0 {
		t.Fatalf("idle steps advanced the clock to %d", eng.Now())
	}

	id, err := eng.Admit(JobSpec{Graph: dag.Singleton(2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	info, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if info.Idle || info.Step != 1 || len(info.Completed) != 1 || info.Completed[0] != id {
		t.Errorf("first real step: %+v", info)
	}
	if len(info.Released) != 1 || info.Released[0] != id {
		t.Errorf("release not reported: %+v", info)
	}
	if info.Executed[0] != 1 || info.Executed[1] != 0 {
		t.Errorf("executed %v, want [1 0]", info.Executed)
	}

	snap := eng.Snapshot()
	if snap.Completed != 1 || snap.Active != 0 || snap.Pending != 0 || snap.Admitted != 1 {
		t.Errorf("snapshot %+v", snap)
	}
	if u := snap.Utilization(); u[0] != 1 || u[1] != 0 {
		t.Errorf("utilization %v, want [1 0]", u)
	}
	st, ok := eng.Job(id)
	if !ok || st.Phase != JobDone || st.Response() != 1 {
		t.Errorf("job status %+v", st)
	}
	if _, ok := eng.Job(42); ok {
		t.Error("unknown job reported")
	}
}

func TestJobPhaseStrings(t *testing.T) {
	want := map[JobPhase]string{
		JobPending: "pending", JobActive: "active", JobDone: "done", JobCancelled: "cancelled",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}
