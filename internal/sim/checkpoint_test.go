package sim

import (
	"errors"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
)

// ckptCfg is kradCfg without tracing: checkpoints require TraceNone.
func ckptCfg(k int, caps ...int) Config {
	cfg := kradCfg(k, caps...)
	cfg.Trace = TraceNone
	return cfg
}

// drive admits the specs and steps the engine until it is idle.
func drive(t *testing.T, e *Engine, specs []JobSpec) {
	t.Helper()
	for _, s := range specs {
		if _, err := e.Admit(s); err != nil {
			t.Fatal(err)
		}
	}
	for !e.Idle() {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestoreContinuesBitIdentically is the invariant journal compaction
// rests on: (run phase 1, checkpoint at idle, restore into a fresh
// engine, run phase 2) must equal (run phase 1 then phase 2 on one
// engine) step for step. Phase 1 overloads the machine so RAD's
// round-robin rotation is mid-cycle state, the part a naive "jobs only"
// checkpoint would lose.
func TestRestoreContinuesBitIdentically(t *testing.T) {
	phase1 := make([]JobSpec, 6) // 6 jobs on 2 processors: overloaded
	for i := range phase1 {
		phase1[i] = JobSpec{Graph: dag.UniformChain(1, 3+i%3, 1)}
	}
	phase2 := make([]JobSpec, 5)
	for i := range phase2 {
		phase2[i] = JobSpec{Graph: dag.UniformChain(1, 2+i, 1)}
	}

	// Reference: one uninterrupted engine.
	ref, err := NewEngine(ckptCfg(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, ref, phase1)

	// Checkpointed twin: same phase 1, checkpoint, restore elsewhere.
	a, err := NewEngine(ckptCfg(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, a, phase1)
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(ckptCfg(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if b.Now() != ref.Now() {
		t.Fatalf("restored clock %d, want %d", b.Now(), ref.Now())
	}

	// Phase 2 must proceed identically on both engines.
	for _, e := range []*Engine{ref, b} {
		for i, s := range phase2 {
			s.Release = e.Now()
			id, err := e.Admit(s)
			if err != nil {
				t.Fatal(err)
			}
			if want := len(phase1) + i; id != want {
				t.Fatalf("admitted as job %d, want %d", id, want)
			}
		}
	}
	for !ref.Idle() {
		ri, err := ref.Step()
		if err != nil {
			t.Fatal(err)
		}
		bi, err := b.Step()
		if err != nil {
			t.Fatal(err)
		}
		if ri.Step != bi.Step || len(ri.Completed) != len(bi.Completed) {
			t.Fatalf("step diverged: reference %+v, restored %+v", ri, bi)
		}
	}
	if !b.Idle() {
		t.Fatal("restored engine still busy after reference drained")
	}
	for id := 0; id < len(phase1)+len(phase2); id++ {
		rs, ok1 := ref.Job(id)
		bs, ok2 := b.Job(id)
		if !ok1 || !ok2 {
			t.Fatalf("job %d missing (ref %v, restored %v)", id, ok1, ok2)
		}
		if rs.Phase != bs.Phase || rs.Completion != bs.Completion || rs.Release != bs.Release {
			t.Errorf("job %d diverged: reference %+v, restored %+v", id, rs, bs)
		}
	}
	rsnap, bsnap := ref.Snapshot(), b.Snapshot()
	if rsnap.Makespan != bsnap.Makespan || rsnap.Completed != bsnap.Completed || rsnap.Now != bsnap.Now {
		t.Errorf("snapshots diverged: reference %+v, restored %+v", rsnap, bsnap)
	}
	for a := range rsnap.ExecutedTotal {
		if rsnap.ExecutedTotal[a] != bsnap.ExecutedTotal[a] {
			t.Errorf("exec totals diverged: reference %v, restored %v", rsnap.ExecutedTotal, bsnap.ExecutedTotal)
		}
	}
}

func TestCheckpointPreservesCancelledJobs(t *testing.T) {
	e, err := NewEngine(ckptCfg(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Admit(JobSpec{Graph: dag.UniformChain(1, 4, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Admit(JobSpec{Graph: dag.UniformChain(1, 4, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if err := e.Cancel(1); err != nil {
		t.Fatal(err)
	}
	for !e.Idle() {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(ckptCfg(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(cp); err != nil {
		t.Fatal(err)
	}
	st, ok := b.Job(1)
	if !ok || st.Phase != JobCancelled {
		t.Fatalf("restored job 1 = %+v (ok=%v), want cancelled", st, ok)
	}
	snap := b.Snapshot()
	if snap.Cancelled != 1 || snap.Completed != 1 {
		t.Fatalf("restored snapshot %+v, want 1 completed + 1 cancelled", snap)
	}
}

func TestCheckpointRequiresIdle(t *testing.T) {
	e, err := NewEngine(ckptCfg(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Admit(JobSpec{Graph: dag.UniformChain(1, 2, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err == nil {
		t.Fatal("checkpointed a busy engine")
	}
}

func TestCheckpointUnsupportedScheduler(t *testing.T) {
	cfg := ckptCfg(1, 2)
	cfg.Scheduler = core.NewRandomKRAD(1, 7) // carries an unserializable RNG
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); !errors.Is(err, ErrCheckpointUnsupported) {
		t.Fatalf("err = %v, want ErrCheckpointUnsupported", err)
	}
}

func TestRestoreRejectsBadCheckpoints(t *testing.T) {
	fresh := func() *Engine {
		e, err := NewEngine(ckptCfg(1, 2))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if err := fresh().Restore(EngineCheckpoint{Now: -1}); err == nil {
		t.Error("accepted negative clock")
	}
	if err := fresh().Restore(EngineCheckpoint{Jobs: []CheckpointJob{{ID: 3, Phase: JobDone, Work: []int{1}}}}); err == nil {
		t.Error("accepted gapped job IDs")
	}
	if err := fresh().Restore(EngineCheckpoint{Jobs: []CheckpointJob{{ID: 0, Phase: JobActive, Work: []int{1}}}}); err == nil {
		t.Error("accepted non-terminal job")
	}
	e := fresh()
	if _, err := e.Admit(JobSpec{Graph: dag.UniformChain(1, 2, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(EngineCheckpoint{}); err == nil {
		t.Error("accepted restore into a non-fresh engine")
	}
}
