package analysis

import (
	"fmt"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sim"
	"krad/internal/workload"
)

// RunE4 validates the Theorem 3 makespan guarantee on random workloads with
// arbitrary release times. For every configuration it runs K-RAD, compares
// the measured makespan against the Section 4 lower bound (an underestimate
// of the optimum, so the quotient over-reports the true ratio), and checks
// it stays below K + 1 − 1/Pmax. Batched rows additionally verify the
// Lemma 2 inequality, whose premise (no idle intervals) batched sets
// guarantee.
func RunE4(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "Makespan competitiveness with arbitrary release times (Lemma 2 / Theorem 3)",
		Header: []string{"workload", "K", "caps", "jobs", "arrivals", "makespan", "LB", "ratio", "bound", "lemma2"},
	}
	jobs := 60
	reps := 5
	if opts.Quick {
		jobs, reps = 24, 2
	}

	type row struct {
		name    string
		k       int
		caps    []int
		arrival string
	}
	rows := []row{
		{"uniform mix", 1, []int{4}, "batched"},
		{"uniform mix", 2, []int{4, 4}, "batched"},
		{"uniform mix", 3, []int{2, 4, 8}, "batched"},
		{"uniform mix", 4, []int{2, 2, 2, 2}, "batched"},
		{"uniform mix", 2, []int{4, 4}, "poisson"},
		{"uniform mix", 3, []int{2, 4, 8}, "poisson"},
		{"uniform mix", 3, []int{2, 4, 8}, "bursty"},
		{"chain-heavy", 3, []int{4, 4, 4}, "poisson"},
		{"wide-jobs", 3, []int{4, 4, 4}, "batched"},
	}

	for _, r := range rows {
		worstRatio := 0.0
		var worstRun *sim.Result
		lemmaOK := true
		lemmaApplies := r.arrival == "batched"
		for rep := 0; rep < reps; rep++ {
			mix := workload.Mix{
				K: r.k, Jobs: jobs, MinSize: 4, MaxSize: 80,
				Seed: opts.seed() + int64(rep)*1001,
			}
			switch r.name {
			case "chain-heavy":
				mix.Shapes = []workload.Shape{workload.ShapeChain}
			case "wide-jobs":
				mix.Shapes = []workload.Shape{workload.ShapeForkJoin, workload.ShapeMapReduce}
				mix.MinSize, mix.MaxSize = 20, 120
			}
			var specs []sim.JobSpec
			var err error
			switch r.arrival {
			case "batched":
				specs, err = mix.Generate()
			case "poisson":
				specs, err = mix.GenerateOnline(workload.Poisson(2.5))
			case "bursty":
				specs, err = mix.GenerateOnline(workload.Bursty(10, 40))
			}
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(sim.Config{
				K: r.k, Caps: r.caps, Scheduler: core.NewKRAD(r.k),
				Pick: dag.PickFIFO, ValidateAllotments: true,
			}, specs)
			if err != nil {
				return nil, err
			}
			if bc := CheckTheorem3(res); bc.Measured > worstRatio {
				worstRatio = bc.Measured
				worstRun = res
			}
			if lemmaApplies {
				if bc := CheckLemma2(res); !bc.OK {
					lemmaOK = false
				}
			}
		}
		bound := metrics.MakespanCompetitiveLimit(r.k, r.caps)
		lemmaCell := "n/a"
		if lemmaApplies {
			lemmaCell = "holds"
			if !lemmaOK {
				lemmaCell = "VIOLATED"
			}
		}
		t.AddRow(r.name, r.k, fmt.Sprint(r.caps), jobs, r.arrival,
			worstRun.Makespan, metrics.MakespanLowerBound(worstRun), worstRatio, bound, lemmaCell)
		if worstRatio > bound {
			t.AddNote("FAIL: %s K=%d %s ratio %.3f exceeds bound %.3f", r.name, r.k, r.arrival, worstRatio, bound)
		}
		if lemmaApplies && !lemmaOK {
			t.AddNote("FAIL: %s K=%d Lemma 2 violated", r.name, r.k)
		}
	}
	t.AddNote("ratio column is the worst of %d seeded repetitions; LB underestimates the optimum, so true ratios are lower still", reps)
	t.AddNote("expected shape: every ratio below its K+1−1/Pmax bound; in practice random workloads sit near 1–1.5, far from the adversarial worst case")
	return t, nil
}
