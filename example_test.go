package krad_test

// Runnable godoc examples: each doubles as tested documentation for a core
// API surface (go test verifies the printed output).

import (
	"fmt"
	"log"

	"krad"
)

// ExampleRun schedules a tiny two-category job set with K-RAD.
func ExampleRun() {
	// Two jobs: an I/O→CPU chain and a CPU singleton.
	a := krad.NewGraph(2).Named("chain")
	t1 := a.AddTask(2)
	t2 := a.AddTask(1)
	a.MustEdge(t1, t2)
	b := krad.Singleton(2, 1)

	res, err := krad.Run(krad.Config{
		K:         2,
		Caps:      []int{2, 1},
		Scheduler: krad.NewKRAD(2),
	}, []krad.JobSpec{{Graph: a}, {Graph: b}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("makespan:", res.Makespan)
	fmt.Println("jobs done:", len(res.Jobs))
	// Output:
	// makespan: 2
	// jobs done: 2
}

// ExampleDeq shows the Figure 2 DEQ allocation: the small request is fully
// satisfied, the two large ones split the remainder equally.
func ExampleDeq() {
	allot := krad.Deq([]int{1, 9, 9}, 9, 0)
	fmt.Println(allot)
	// Output:
	// [1 4 4]
}

// ExampleNewAdversarial reproduces the Theorem 1 closed forms for the
// Figure 3 construction at K=3, m=4, P=2.
func ExampleNewAdversarial() {
	adv, err := krad.NewAdversarial(3, 4, []int{2, 2, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("jobs:", adv.NumJobs())
	fmt.Println("optimal makespan:", adv.OptimalMakespan())
	fmt.Println("adversarial makespan:", adv.WorstCaseMakespan())
	fmt.Printf("ratio limit: %.1f\n", adv.LimitRatio())
	// Output:
	// jobs: 16
	// optimal makespan: 10
	// adversarial makespan: 28
	// ratio limit: 3.5
}

// ExampleSqSum computes the Definition 4 squashed sum: ascending values
// weighted m, m−1, ..., 1.
func ExampleSqSum() {
	fmt.Println(krad.SqSum([]int{3, 1, 2}))
	// 1·3 + 2·2 + 3·1 = 10
	// Output:
	// 10
}

// ExampleGraph_Span shows work and span of a fork-join.
func ExampleGraph_Span() {
	g := krad.ForkJoin(2, 8, 1, 2, 1) // fork/join CPU, body on category 2
	fmt.Println("tasks:", g.NumTasks())
	fmt.Println("span:", g.Span())
	fmt.Println("work:", g.WorkVector())
	// Output:
	// tasks: 10
	// span: 3
	// work: [2 8]
}

// ExampleNewProfileJob builds a compact phase-based job: per-phase
// per-category task counts with barriers between phases.
func ExampleNewProfileJob() {
	job, err := krad.NewProfileJob(2, "etl", []krad.ProfilePhase{
		{Tasks: []int{0, 3}}, // phase 1: 3 I/O reads
		{Tasks: []int{8, 0}}, // phase 2: 8-way CPU crunch
		{Tasks: []int{0, 1}}, // phase 3: 1 I/O write
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("span:", job.Span())
	fmt.Println("work:", job.WorkVector())
	// Output:
	// span: 3
	// work: [8 4]
}

// ExampleStretch models performance heterogeneity: category 2 processors
// take 3 steps per task, so category-2 work and the span stretch.
func ExampleStretch() {
	g := krad.RoundRobinChain(2, 4) // categories 1,2,1,2
	s, err := krad.Stretch(g, []int{1, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("work:", s.WorkVector())
	fmt.Println("span:", s.Span())
	// Output:
	// work: [2 6]
	// span: 8
}

// ExampleMakespanLowerBound evaluates the Section 4 bound on a run.
func ExampleMakespanLowerBound() {
	g := krad.UniformChain(1, 6, 1)
	res, err := krad.Run(krad.Config{
		K: 1, Caps: []int{4}, Scheduler: krad.NewKRAD(1),
	}, []krad.JobSpec{{Graph: g}})
	if err != nil {
		log.Fatal(err)
	}
	// A chain is span-limited: LB = 6 and K-RAD achieves it.
	fmt.Println(krad.MakespanLowerBound(res), res.Makespan)
	// Output:
	// 6 6
}
