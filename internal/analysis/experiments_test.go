package analysis

import (
	"strings"
	"testing"
)

func TestAllExperimentsRunQuickWithoutFailureNotes(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(Options{Quick: true, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Error("experiment produced no rows")
			}
			for _, n := range tbl.Notes {
				if strings.Contains(n, "FAIL") || strings.Contains(n, "UNEXPECTED") {
					t.Errorf("experiment reported: %s", n)
				}
			}
		})
	}
}

func TestFind(t *testing.T) {
	e, err := Find("E3")
	if err != nil || e.ID != "E3" {
		t.Errorf("Find(E3) = %v, %v", e.ID, err)
	}
	if _, err := Find("E99"); err == nil {
		t.Error("Find(E99) succeeded")
	}
}

func TestExperimentsAreSeedDeterministic(t *testing.T) {
	a, err := RunE4(Options{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE4(Options{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("row %d cell %d differs: %q vs %q", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "bb"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", true)
	tbl.AddNote("note %d", 7)

	text := tbl.Render()
	for _, want := range []string{"== T: demo ==", "a", "bb", "2.500", "yes", "note: note 7"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render missing %q in:\n%s", want, text)
		}
	}
	md := tbl.Markdown()
	for _, want := range []string{"### T — demo", "| a | bb |", "| --- | --- |", "| 1 | 2.500 |", "- note 7"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q in:\n%s", want, md)
		}
	}
}
