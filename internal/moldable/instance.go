package moldable

import (
	"fmt"
	"math"
	"math/rand"

	"krad/internal/dag"
	"krad/internal/sim"
)

// lease is one in-flight task: it occupies procs processors of its
// category for rem more steps (including the next one), non-preemptively.
type lease struct {
	task  int32
	procs int32
	rem   int32
}

// Instance is the executing state of one moldable Job: a list scheduler
// over the precedence frontier. When the engine offers n α-processors,
// every in-flight α-lease progresses one step (the floor — those
// processors cannot be taken back), and the leftover slots start ready
// tasks in pick order, each molded to p = min(useful, slots) processors
// for ceil(work / s(p)) non-preemptive steps.
//
// Instance implements sim.FloorRuntime (pair it with sched.WithFloors)
// and sim.HoldRuntime: a held phase — every frontier task in flight,
// nothing ready — keeps desires pinned at the floors, and HoldFor
// reports how long, so the engine can event-leap across it.
type Instance struct {
	job  *Job
	pick dag.PickPolicy
	rng  *rand.Rand

	indeg []int32
	// ready[α−1] holds ready-but-unstarted task indices; insertion order,
	// pick-ordered when starts happen.
	ready [][]int32
	// inflight[α−1] holds the category's leases in start order — slices,
	// not maps, so iteration is deterministic and steady-state stepping
	// allocates nothing.
	inflight [][]lease
	// pinned[α−1] = Σ procs over inflight[α−1]: the allotment floor.
	pinned []int
	// readyUseful[α−1] = Σ useful over ready[α−1]: the most extra
	// processors the policy could put to work this step.
	readyUseful []int
	// finished buffers tasks completing this step until Advance.
	finished []int32
	done     int
}

// NewInstance creates a fresh runtime for j. pick orders the ready
// frontier when slots are scarce; seed feeds PickRandom.
func NewInstance(j *Job, pick dag.PickPolicy, seed int64) *Instance {
	in := &Instance{
		job:         j,
		pick:        pick,
		indeg:       make([]int32, j.NumTasks()),
		ready:       make([][]int32, j.k),
		inflight:    make([][]lease, j.k),
		pinned:      make([]int, j.k),
		readyUseful: make([]int, j.k),
	}
	if pick == dag.PickRandom {
		in.rng = rand.New(rand.NewSource(seed))
	}
	copy(in.indeg, j.npred)
	for v := 0; v < j.NumTasks(); v++ {
		if in.indeg[v] == 0 {
			a := int(j.cats[v]) - 1
			in.ready[a] = append(in.ready[a], int32(v))
			in.readyUseful[a] += j.useful[v]
		}
	}
	return in
}

// Desire implements sim.RuntimeJob: processors the job can use this step —
// those pinned by in-flight leases plus the molding caps of the ready
// frontier.
func (in *Instance) Desire(c dag.Category) int {
	if c < 1 || int(c) > in.job.k {
		return 0
	}
	return in.pinned[c-1] + in.readyUseful[c-1]
}

// Floor implements sim.FloorRuntime: processors pinned by in-flight
// leases, which non-preemption forbids taking back this step.
func (in *Instance) Floor(c dag.Category) int {
	if c < 1 || int(c) > in.job.k {
		return 0
	}
	return in.pinned[c-1]
}

// Execute implements sim.RuntimeJob: progress every in-flight α-lease by
// one step, then mold and start ready tasks into the leftover slots. It
// returns the processors used and panics if n is below the floor — that
// means a non-floor-respecting scheduler was configured with moldable
// jobs, which is a setup bug (use sched.WithFloors).
func (in *Instance) Execute(c dag.Category, n int) int {
	if c < 1 || int(c) > in.job.k || n <= 0 {
		if n <= 0 && in.Floor(c) > 0 {
			panic(fmt.Sprintf("moldable: job %q category %d: allotment %d below floor %d — moldable jobs need a floor-respecting scheduler (sched.WithFloors)", in.job.Name(), c, n, in.Floor(c)))
		}
		return 0
	}
	a := int(c) - 1
	fl := in.pinned[a]
	if n < fl {
		panic(fmt.Sprintf("moldable: job %q category %d: allotment %d below floor %d — moldable jobs need a floor-respecting scheduler (sched.WithFloors)", in.job.Name(), c, n, fl))
	}
	used := fl
	// Progress in-flight leases; finishing tasks free their processors at
	// the step boundary (they are still busy this step).
	if fl > 0 {
		lst := in.inflight[a]
		out := lst[:0]
		for _, l := range lst {
			l.rem--
			if l.rem == 0 {
				in.finished = append(in.finished, l.task)
				in.pinned[a] -= int(l.procs)
			} else {
				out = append(out, l)
			}
		}
		in.inflight[a] = out
	}
	// Mold and start ready tasks into the leftover slots, in pick order.
	// Molding is greedy: each task takes min(useful, slots) — efficiency
	// only improves below the ½-efficiency cap, so a squeezed start is
	// still within the policy.
	slots := n - fl
	if slots > 0 && len(in.ready[a]) > 0 {
		in.orderReady(a)
		q := in.ready[a]
		i := 0
		for ; i < len(q) && slots > 0; i++ {
			v := q[i]
			u := in.job.useful[v]
			p := u
			if p > slots {
				p = slots
			}
			d := in.job.dur[v][p-1]
			if d == 1 {
				in.finished = append(in.finished, v)
			} else {
				in.inflight[a] = append(in.inflight[a], lease{task: v, procs: int32(p), rem: d - 1})
				in.pinned[a] += p
			}
			in.readyUseful[a] -= u
			used += p
			slots -= p
		}
		in.ready[a] = q[:copy(q, q[i:])]
	}
	return used
}

// orderReady arranges the category's ready queue by the pick policy.
// Sorting is insertion sort — ready queues are small and the hot path
// must not allocate.
func (in *Instance) orderReady(a int) {
	q := in.ready[a]
	switch in.pick {
	case dag.PickFIFO:
	case dag.PickLIFO:
		for i, j := 0, len(q)-1; i < j; i, j = i+1, j-1 {
			q[i], q[j] = q[j], q[i]
		}
	case dag.PickRandom:
		in.rng.Shuffle(len(q), func(i, j int) { q[i], q[j] = q[j], q[i] })
	case dag.PickCPFirst:
		h := in.job.heights
		for i := 1; i < len(q); i++ {
			for j := i; j > 0 && h[q[j]] > h[q[j-1]]; j-- {
				q[j], q[j-1] = q[j-1], q[j]
			}
		}
	case dag.PickCPLast:
		h := in.job.heights
		for i := 1; i < len(q); i++ {
			for j := i; j > 0 && h[q[j]] < h[q[j-1]]; j-- {
				q[j], q[j-1] = q[j-1], q[j]
			}
		}
	default:
		panic(fmt.Sprintf("moldable: unknown pick policy %d", in.pick))
	}
}

// Advance implements sim.RuntimeJob: release successors of tasks that
// finished this step. Finished tasks are processed in ascending ID order
// (insertion sort — no allocation, lists are small) so successor release
// order never depends on category iteration order.
func (in *Instance) Advance() {
	if len(in.finished) == 0 {
		return
	}
	f := in.finished
	for i := 1; i < len(f); i++ {
		for j := i; j > 0 && f[j] < f[j-1]; j-- {
			f[j], f[j-1] = f[j-1], f[j]
		}
	}
	in.done += len(f)
	for _, u := range f {
		for _, v := range in.job.succ[u] {
			in.indeg[v]--
			if in.indeg[v] == 0 {
				a := int(in.job.cats[v]) - 1
				in.ready[a] = append(in.ready[a], v)
				in.readyUseful[a] += in.job.useful[v]
			}
		}
	}
	in.finished = in.finished[:0]
}

// Done implements sim.RuntimeJob.
func (in *Instance) Done() bool { return in.done == in.job.NumTasks() }

// RemainingWork implements sim.RuntimeJob for the clairvoyant oracle:
// serial work of unstarted tasks plus step remainders of in-flight
// leases, per category.
func (in *Instance) RemainingWork() []int {
	rem := make([]int, in.job.k)
	for a := range in.inflight {
		for _, l := range in.inflight[a] {
			rem[a] += int(l.rem)
		}
		for _, v := range in.ready[a] {
			rem[a] += in.job.works[v]
		}
	}
	for v := 0; v < in.job.NumTasks(); v++ {
		if in.indeg[v] > 0 {
			rem[int(in.job.cats[v])-1] += in.job.works[v]
		}
	}
	return rem
}

// HoldFor implements sim.HoldRuntime: with the whole frontier in flight
// (nothing ready), the instance stays held — desires pinned at the
// floors, no starts, no finishes — for min(rem) − 2 additional steps
// after the current one (the covered window must end at least one full
// step before the earliest finish, since event-leaps may never cross a
// completion). ≤ 0 means the next finish is too close to leap over.
func (in *Instance) HoldFor() int64 {
	min := int32(math.MaxInt32)
	any := false
	for a := range in.inflight {
		if len(in.ready[a]) > 0 {
			return 0
		}
		for _, l := range in.inflight[a] {
			any = true
			if l.rem < min {
				min = l.rem
			}
		}
	}
	if !any {
		return 0
	}
	return int64(min) - 2
}

// LeapHold implements sim.HoldRuntime: apply n held steps in closed form.
// The engine guarantees n ≤ HoldFor() + 1 computed this round, so every
// lease keeps at least one remaining step and no completion, start, or
// successor release falls inside the window — the per-step Execute(floor)
// + Advance sequence it replaces was pure lease countdown.
func (in *Instance) LeapHold(n int64) {
	for a := range in.inflight {
		lst := in.inflight[a]
		for i := range lst {
			lst[i].rem -= int32(n)
		}
	}
}

var (
	_ sim.FloorRuntime = (*Instance)(nil)
	_ sim.HoldRuntime  = (*Instance)(nil)
)
