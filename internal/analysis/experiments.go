package analysis

import (
	"fmt"
)

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks sweeps to test-suite scale; the full sweeps are used
	// by cmd/kradbench and the benchmarks.
	Quick bool
	// Seed drives all randomized workloads (default 1 when zero).
	Seed int64
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Experiment is one reproducible table from DESIGN.md's per-experiment
// index.
type Experiment struct {
	// ID is the experiment identifier (E1..E10).
	ID string
	// Title summarizes what is measured.
	Title string
	// Source cites the paper artifact being reproduced.
	Source string
	// Run executes the experiment and renders its table.
	Run func(Options) (*Table, error)
}

// All returns the experiment suite in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "K-DAG job model metrics", "Figure 1 / Section 2", RunE1},
		{"E2", "RAD allocation invariants", "Figure 2 / Section 3", RunE2},
		{"E3", "Adversarial makespan lower bound", "Figure 3 / Theorem 1", RunE3},
		{"E4", "Makespan competitiveness, arbitrary releases", "Lemma 2 / Theorem 3", RunE4},
		{"E5", "Mean response time, light workload", "Theorem 5", RunE5},
		{"E6", "Mean response time, heavy workload", "Theorem 6", RunE6},
		{"E7", "Homogeneous (K=1) mean response time", "Section 7, K=1 corollary", RunE7},
		{"E8", "Baseline scheduler comparison", "implied by Sections 1 and 3", RunE8},
		{"E9", "Ablations: DEQ-only and RR-only failure modes", "Section 3 design rationale", RunE9},
		{"E10", "Simulator throughput scaling", "reproduction infrastructure", RunE10},
		{"E11", "Extension: performance + functional heterogeneity", "Section 8 (future work)", RunE11},
		{"E12", "Profile-job representation: equivalence and scale", "reproduction infrastructure", RunE12},
		{"E13", "Scheduling-quantum sensitivity", "two-level deployment model", RunE13},
		{"E14", "Theorem 5 proof-mechanics replay (Inequality 8)", "Section 7 induction", RunE14},
		{"E15", "Fairness price on identical jobs (RR's tight factor 2)", "related work [22]", RunE15},
		{"E16", "Extension: non-preemptive multi-step tasks", "deployment model beyond unit tasks", RunE16},
		{"E17", "Reallocation churn per scheduler", "deployment cost model", RunE17},
		{"E18", "Archive-log replay (Standard Workload Format)", "Parallel Workloads Archive format", RunE18},
		{"E19", "Randomization vs the deterministic adversary", "Theorem 1 discussion / Shmoys et al.", RunE19},
		{"E20", "True competitive ratios on tiny instances (exact search)", "validation of the lower-bound methodology", RunE20},
		{"E21", "Speed augmentation (s-speed vs unit-speed bound)", "related work: Edmonds et al. framework", RunE21},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("analysis: unknown experiment %q", id)
}
