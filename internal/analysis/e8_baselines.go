package analysis

import (
	"krad/internal/baselines"
	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sched"
	"krad/internal/sim"
	"krad/internal/workload"
)

// schedulerFactories enumerates every scheduler in the comparison, keyed by
// report name. Fresh instances per run because several are stateful.
func schedulerFactories(k int) (names []string, mk map[string]func() sched.Scheduler) {
	mk = map[string]func() sched.Scheduler{
		"k-rad":         func() sched.Scheduler { return core.NewKRAD(k) },
		"k-rad-random":  func() sched.Scheduler { return core.NewRandomKRAD(k, 1) },
		"deq-only":      func() sched.Scheduler { return baselines.NewDEQOnly(k) },
		"rr-only":       func() sched.Scheduler { return baselines.NewRROnly(k) },
		"equi":          func() sched.Scheduler { return baselines.NewEQUI(k) },
		"laps":          func() sched.Scheduler { return baselines.NewLAPS(k, 0.5) },
		"gang":          func() sched.Scheduler { return baselines.NewGang(4) },
		"fcfs":          func() sched.Scheduler { return baselines.NewFCFS(k) },
		"greedy-desire": func() sched.Scheduler { return baselines.NewGreedyDesire(k) },
		"sjf-oracle":    func() sched.Scheduler { return baselines.NewSJF() },
	}
	names = []string{"k-rad", "k-rad-random", "deq-only", "rr-only", "equi", "laps", "gang", "fcfs", "greedy-desire", "sjf-oracle"}
	return names, mk
}

// RunE8 compares K-RAD against every baseline on heterogeneous (K = 3)
// workloads spanning the light and heavy regimes, reporting makespan and
// mean response time (averaged over seeds) plus each scheduler's makespan
// normalized to K-RAD's. Expected shape: K-RAD within a few percent of the
// best non-clairvoyant baseline on makespan everywhere, clearly ahead of
// rr-only on light-load makespan and ahead of deq-only/fcfs on heavy-load
// mean response time; the clairvoyant SJF oracle may beat everyone on MRT.
func RunE8(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Scheduler comparison on heterogeneous workloads (K = 3)",
		Header: []string{"workload", "scheduler", "mean makespan", "vs k-rad", "mean MRT", "MRT ratio vs LB"},
	}
	const k = 3
	caps := []int{4, 4, 4}
	reps := 4
	jobs := map[string]int{"light (n<P)": 4, "moderate": 24, "heavy (n≫P)": 96}
	if opts.Quick {
		reps = 2
		jobs = map[string]int{"light (n<P)": 4, "heavy (n≫P)": 48}
	}
	order := []string{"light (n<P)", "moderate", "heavy (n≫P)"}
	names, mk := schedulerFactories(k)

	for _, wl := range order {
		n, ok := jobs[wl]
		if !ok {
			continue
		}
		kradMakespan := 0.0
		for _, name := range names {
			var msSum, mrtSum, ratioSum float64
			for rep := 0; rep < reps; rep++ {
				specs, err := workload.Mix{
					K: k, Jobs: n, MinSize: 4, MaxSize: 60,
					Seed: opts.seed() + int64(rep)*311,
				}.Generate()
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(sim.Config{
					K: k, Caps: caps, Scheduler: mk[name](),
					Pick: dag.PickFIFO, ValidateAllotments: true,
				}, specs)
				if err != nil {
					return nil, err
				}
				msSum += float64(res.Makespan)
				mrtSum += res.MeanResponse()
				ratioSum += float64(res.TotalResponse()) / metrics.ResponseLowerBound(res)
			}
			ms := msSum / float64(reps)
			if name == "k-rad" {
				kradMakespan = ms
			}
			t.AddRow(wl, name, ms, ms/kradMakespan, mrtSum/float64(reps), ratioSum/float64(reps))
		}
	}
	t.AddNote("means over %d seeds; 'vs k-rad' is makespan normalized to K-RAD's (1.000 = equal; >1 = slower)", reps)
	t.AddNote("expected shape: rr-only degrades on light load (no space sharing); deq-only/fcfs degrade MRT under overload (late jobs starve); sjf-oracle is clairvoyant and marks the information ceiling")
	return t, nil
}
