package sched

import "fmt"

// WithFloors makes any scheduler valid for non-preemptive jobs: every
// job's allotment floor (processors pinned by in-flight multi-step tasks)
// is granted first, and the wrapped scheduler partitions only the residual
// capacity over the residual desires. For unit-task workloads (all floors
// zero) the wrapper is the identity.
//
// This is the standard way two-level systems retrofit malleable-job
// schedulers onto non-preemptive tasks; experiment E16 measures what the
// lost reallocation freedom costs against the paper's bounds.
type floored struct {
	inner Scheduler
	// lastFloors records whether the most recent Allot saw any non-zero
	// floor; floors shift per step, so stability only forwards without
	// them.
	lastFloors bool
}

// WithFloors wraps inner; see the type comment.
func WithFloors(inner Scheduler) Scheduler { return &floored{inner: inner} }

// Name implements Scheduler.
func (f *floored) Name() string { return f.inner.Name() + "+floors" }

// Allot implements Scheduler.
func (f *floored) Allot(t int64, jobs []JobView, caps []int) [][]int {
	// Fast path: no floors anywhere.
	any := false
	for _, j := range jobs {
		if j.Floor != nil {
			for _, v := range j.Floor {
				if v > 0 {
					any = true
					break
				}
			}
		}
		if any {
			break
		}
	}
	f.lastFloors = any
	if !any {
		return f.inner.Allot(t, jobs, caps)
	}

	residualCaps := append([]int(nil), caps...)
	residual := make([]JobView, len(jobs))
	for i, j := range jobs {
		d := append([]int(nil), j.Desire...)
		if j.Floor != nil {
			for a, fl := range j.Floor {
				d[a] -= fl
				if d[a] < 0 {
					d[a] = 0
				}
				residualCaps[a] -= fl
			}
		}
		residual[i] = JobView{ID: j.ID, Desire: d}
	}
	for a, c := range residualCaps {
		if c < 0 {
			panic(fmt.Sprintf("sched: category %d floors exceed capacity %d — jobs hold more processors than exist", a+1, caps[a]))
		}
	}
	out := f.inner.Allot(t, residual, residualCaps)
	for i, j := range jobs {
		if j.Floor != nil {
			for a, fl := range j.Floor {
				out[i][a] += fl
			}
		}
	}
	return out
}

// StableHorizon forwards the wrapped scheduler's stability report when the
// last step was floor-free (the wrapper was the identity, so the inner
// analysis applies verbatim); with floors in play it reports 0.
func (f *floored) StableHorizon() int64 {
	if f.lastFloors {
		return 0
	}
	if s, ok := f.inner.(Stable); ok {
		return s.StableHorizon()
	}
	return 0
}

// LeapTotals forwards to the wrapped scheduler. Only called after
// StableHorizon reported > 0, which implies the last step was floor-free
// and the inner scheduler is Stable.
func (f *floored) LeapTotals(t int64, jobs []JobView, caps []int, n int64, dst [][]int) {
	f.inner.(Stable).LeapTotals(t, jobs, caps, n, dst)
}

// JobsDone forwards completions.
func (f *floored) JobsDone(ids []int) {
	if c, ok := f.inner.(Completer); ok {
		c.JobsDone(ids)
	}
}

var (
	_ Scheduler = (*floored)(nil)
	_ Completer = (*floored)(nil)
)
