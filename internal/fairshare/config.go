package fairshare

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseConfig reads the -fair-config text format: one directive per line,
// '#' comments, blank lines ignored.
//
//	# usage decay half-life in virtual steps
//	halflife 2048
//
//	# leaf used when a request carries no X-Krad-Tenant header
//	default acme/batch
//
//	# queue <path> [deserved=<float>] [weight=<float>] [priority=<int>]
//	queue acme           deserved=4 weight=2
//	queue acme/ml        deserved=2 weight=3 priority=1
//	queue acme/batch     weight=1
//	queue beta           weight=1
//
// Paths are 1–3 slash-separated segments (tenant/project/queue). A path
// with declared descendants is an interior node: its deserved, weight
// and priority govern the split at its level, while admission resolves
// only to leaves. Weight defaults to 1 when a queue line omits it, so a
// bare "queue beta" competes equally for over-quota capacity.
//
// Errors are located by line number. The parser is deliberately strict —
// an operator typo must fail startup, not silently misdivide capacity.
func ParseConfig(r io.Reader) (Config, error) {
	cfg := Config{}
	type entry struct {
		line     int
		deserved float64
		weight   float64
		priority int
	}
	entries := make(map[string]entry)
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "halflife":
			if len(fields) != 2 {
				return Config{}, fmt.Errorf("fairshare: line %d: halflife takes one integer", lineNo)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || v < 1 {
				return Config{}, fmt.Errorf("fairshare: line %d: halflife %q: need a positive integer", lineNo, fields[1])
			}
			if cfg.HalfLife != 0 {
				return Config{}, fmt.Errorf("fairshare: line %d: duplicate halflife", lineNo)
			}
			cfg.HalfLife = v
		case "default":
			if len(fields) != 2 {
				return Config{}, fmt.Errorf("fairshare: line %d: default takes one path", lineNo)
			}
			if cfg.Default != "" {
				return Config{}, fmt.Errorf("fairshare: line %d: duplicate default", lineNo)
			}
			if err := checkPath(fields[1]); err != nil {
				return Config{}, fmt.Errorf("fairshare: line %d: %v", lineNo, err)
			}
			cfg.Default = fields[1]
		case "queue":
			if len(fields) < 2 {
				return Config{}, fmt.Errorf("fairshare: line %d: queue takes a path", lineNo)
			}
			path := fields[1]
			if err := checkPath(path); err != nil {
				return Config{}, fmt.Errorf("fairshare: line %d: %v", lineNo, err)
			}
			if _, dup := entries[path]; dup {
				return Config{}, fmt.Errorf("fairshare: line %d: duplicate queue %q", lineNo, path)
			}
			e := entry{line: lineNo, weight: 1}
			seen := map[string]bool{}
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok || seen[k] {
					return Config{}, fmt.Errorf("fairshare: line %d: bad attribute %q", lineNo, kv)
				}
				seen[k] = true
				switch k {
				case "deserved":
					f, err := strconv.ParseFloat(v, 64)
					if err != nil || f < 0 || f > 1e9 {
						return Config{}, fmt.Errorf("fairshare: line %d: deserved=%q: need a number in [0, 1e9]", lineNo, v)
					}
					e.deserved = f
				case "weight":
					f, err := strconv.ParseFloat(v, 64)
					if err != nil || f < 0 || f > 1e9 {
						return Config{}, fmt.Errorf("fairshare: line %d: weight=%q: need a number in [0, 1e9]", lineNo, v)
					}
					e.weight = f
				case "priority":
					p, err := strconv.Atoi(v)
					if err != nil || p < -1000 || p > 1000 {
						return Config{}, fmt.Errorf("fairshare: line %d: priority=%q: need an integer in [-1000, 1000]", lineNo, v)
					}
					e.priority = p
				default:
					return Config{}, fmt.Errorf("fairshare: line %d: unknown attribute %q", lineNo, k)
				}
			}
			entries[path] = e
			order = append(order, path)
		default:
			return Config{}, fmt.Errorf("fairshare: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return Config{}, fmt.Errorf("fairshare: read config: %w", err)
	}

	// Assemble the declared paths into a nested NodeConfig forest.
	// Undeclared intermediate nodes get zero quota and weight, so they
	// aggregate their children's claims (see Tree.gather).
	type tn struct {
		cfg      NodeConfig
		children []string // child paths in declaration order
	}
	nodes := make(map[string]*tn)
	var roots []string
	ensure := func(path string) *tn {
		if n, ok := nodes[path]; ok {
			return n
		}
		segs := strings.Split(path, "/")
		n := &tn{cfg: NodeConfig{Name: segs[len(segs)-1]}}
		nodes[path] = n
		if len(segs) == 1 {
			roots = append(roots, path)
		}
		return n
	}
	for _, path := range order {
		segs := strings.Split(path, "/")
		for i := 1; i <= len(segs); i++ {
			p := strings.Join(segs[:i], "/")
			n := ensure(p)
			if i > 1 {
				parent := nodes[strings.Join(segs[:i-1], "/")]
				found := false
				for _, c := range parent.children {
					if c == p {
						found = true
						break
					}
				}
				if !found {
					parent.children = append(parent.children, p)
				}
			}
			_ = n
		}
		e := entries[path]
		n := nodes[path]
		n.cfg.Deserved = e.deserved
		n.cfg.Weight = e.weight
		n.cfg.Priority = e.priority
	}
	var assemble func(path string) NodeConfig
	assemble = func(path string) NodeConfig {
		n := nodes[path]
		nc := n.cfg
		for _, c := range n.children {
			nc.Children = append(nc.Children, assemble(c))
		}
		return nc
	}
	for _, r := range roots {
		cfg.Nodes = append(cfg.Nodes, assemble(r))
	}
	return cfg, nil
}

func checkPath(path string) error {
	segs := strings.Split(path, "/")
	if len(segs) > 3 {
		return fmt.Errorf("path %q deeper than 3 levels (tenant/project/queue)", path)
	}
	for _, s := range segs {
		if err := checkSegment(s); err != nil {
			return err
		}
	}
	return nil
}
