package dag

import (
	"math/rand"
	"testing"
)

func TestInstanceInitialReadySet(t *testing.T) {
	g := Figure1()
	in := NewInstance(g, PickFIFO, 0)
	if in.Desire(1) != 1 {
		t.Errorf("initial Desire(1) = %d, want 1 (the root)", in.Desire(1))
	}
	if in.Desire(2) != 0 || in.Desire(3) != 0 {
		t.Error("non-root tasks ready at start")
	}
	if in.Done() {
		t.Error("fresh instance reports Done")
	}
	if in.TotalDesire() != 1 {
		t.Errorf("TotalDesire = %d, want 1", in.TotalDesire())
	}
}

func TestInstanceExecuteRespectsPrecedence(t *testing.T) {
	g := UniformChain(1, 5, 1)
	in := NewInstance(g, PickFIFO, 0)
	for step := 0; step < 5; step++ {
		if d := in.Desire(1); d != 1 {
			t.Fatalf("step %d: desire %d, want 1", step, d)
		}
		run := in.Execute(1, 3) // over-allotment: only 1 ready
		if len(run) != 1 {
			t.Fatalf("step %d: executed %d tasks, want 1", step, len(run))
		}
		// Successor must not be ready until Advance.
		if in.Desire(1) != 0 {
			t.Fatalf("step %d: successor ready before Advance", step)
		}
		in.Advance()
	}
	if !in.Done() {
		t.Error("chain not done after 5 steps")
	}
	if in.Executed() != 5 {
		t.Errorf("Executed = %d, want 5", in.Executed())
	}
}

func TestInstanceExecuteZeroOrBadCategory(t *testing.T) {
	in := NewInstance(Figure1(), PickFIFO, 0)
	if got := in.Execute(1, 0); got != nil {
		t.Error("Execute n=0 returned tasks")
	}
	if got := in.Execute(0, 5); got != nil {
		t.Error("Execute cat=0 returned tasks")
	}
	if got := in.Execute(9, 5); got != nil {
		t.Error("Execute cat=9 returned tasks")
	}
	if got := in.Desire(0); got != 0 {
		t.Error("Desire(0) nonzero")
	}
}

// drain runs the instance to completion with unlimited processors,
// returning the number of steps taken.
func drain(t *testing.T, in *Instance) int {
	t.Helper()
	steps := 0
	for !in.Done() {
		steps++
		if steps > in.Graph().NumTasks()+1 {
			t.Fatalf("instance did not finish in %d steps", steps)
		}
		for c := 1; c <= in.Graph().K(); c++ {
			in.Execute(Category(c), in.Graph().NumTasks())
		}
		in.Advance()
	}
	return steps
}

func TestInstanceGreedyDrainTakesSpanSteps(t *testing.T) {
	for _, g := range []*Graph{
		Figure1(),
		UniformChain(2, 9, 2),
		ForkJoin(3, 12, 1, 2, 3),
		MapReduce(2, 8, 4, 1, 1, 2, 2),
	} {
		in := NewInstance(g, PickFIFO, 0)
		if steps := drain(t, in); steps != g.Span() {
			t.Errorf("%v: greedy drain took %d steps, span is %d", g, steps, g.Span())
		}
	}
}

func TestInstanceAllPoliciesExecuteEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := Random(3, RandomOpts{Tasks: 60, EdgeProb: 0.1, Window: 12}, rng)
	for _, p := range []PickPolicy{PickFIFO, PickLIFO, PickRandom, PickCPFirst, PickCPLast} {
		in := NewInstance(g, p, 1)
		steps := 0
		for !in.Done() {
			steps++
			if steps > g.NumTasks()+1 {
				t.Fatalf("policy %v: stuck", p)
			}
			// Tight allotment of 2 per category exercises the pickers.
			for c := 1; c <= 3; c++ {
				in.Execute(Category(c), 2)
			}
			in.Advance()
		}
		if in.Remaining() != 0 {
			t.Errorf("policy %v: %d tasks remaining", p, in.Remaining())
		}
	}
}

func TestPickCPFirstPrefersCriticalChain(t *testing.T) {
	// Graph: a long chain plus many independent singles, all category 1.
	g := New(1)
	var prev TaskID = -1
	var chain []TaskID
	for i := 0; i < 5; i++ {
		id := g.AddTask(1)
		chain = append(chain, id)
		if prev >= 0 {
			g.MustEdge(prev, id)
		}
		prev = id
	}
	for i := 0; i < 10; i++ {
		g.AddTask(1)
	}
	in := NewInstance(g, PickCPFirst, 0)
	run := in.Execute(1, 1)
	if len(run) != 1 || run[0] != chain[0] {
		t.Fatalf("CPFirst picked %v, want chain head %d", run, chain[0])
	}

	in2 := NewInstance(g, PickCPLast, 0)
	run2 := in2.Execute(1, 1)
	if len(run2) != 1 || run2[0] == chain[0] {
		t.Fatalf("CPLast picked the chain head")
	}
}

func TestInstanceRemainingWork(t *testing.T) {
	g := Figure1()
	in := NewInstance(g, PickFIFO, 0)
	rw := in.RemainingWork()
	for a, w := range g.WorkVector() {
		if rw[a] != w {
			t.Errorf("initial remaining work cat %d = %d, want %d", a+1, rw[a], w)
		}
	}
	in.Execute(1, 1)
	in.Advance()
	rw = in.RemainingWork()
	if rw[0] != g.WorkVector()[0]-1 {
		t.Errorf("after one cat-1 task: remaining %d, want %d", rw[0], g.WorkVector()[0]-1)
	}
}

func TestPickPolicyString(t *testing.T) {
	names := map[PickPolicy]string{
		PickFIFO: "fifo", PickLIFO: "lifo", PickRandom: "random",
		PickCPFirst: "cp-first", PickCPLast: "cp-last", PickPolicy(99): "PickPolicy(99)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestPickRandomIsDeterministicPerSeed(t *testing.T) {
	g := ForkJoin(1, 20, 1, 1, 1)
	run := func(seed int64) []TaskID {
		in := NewInstance(g, PickRandom, seed)
		in.Execute(1, 1)
		in.Advance()
		return in.Execute(1, 5)
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatal("different lengths for same seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
}
