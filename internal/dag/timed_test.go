package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetDurationAndAccessors(t *testing.T) {
	g := New(2)
	a := g.AddTask(1)
	b := g.AddTask(2)
	g.MustEdge(a, b)
	if g.Timed() {
		t.Error("unit graph reports Timed")
	}
	if g.Duration(a) != 1 {
		t.Errorf("default duration %d", g.Duration(a))
	}
	g.SetDuration(a, 3)
	if !g.Timed() || g.Duration(a) != 3 || g.Duration(b) != 1 {
		t.Error("SetDuration not reflected")
	}
	// Tasks added after SetDuration default to 1.
	c := g.AddTask(1)
	g.SetDuration(c, 2)
	if g.Duration(b) != 1 || g.Duration(c) != 2 {
		t.Error("late task durations wrong")
	}
	tw := g.TimedWorkVector()
	if tw[0] != 5 || tw[1] != 1 {
		t.Errorf("TimedWorkVector = %v, want [5 1]", tw)
	}
	// a(3) → b(1): weighted span 4 (c is parallel, weight 2).
	if g.TimedSpan() != 4 {
		t.Errorf("TimedSpan = %d, want 4", g.TimedSpan())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetDuration(0) accepted")
			}
		}()
		g.SetDuration(a, 0)
	}()
}

func TestCloneCopiesDurations(t *testing.T) {
	g := UniformChain(1, 3, 1)
	g.SetDuration(0, 4)
	c := g.Clone()
	if c.Duration(0) != 4 {
		t.Error("clone lost durations")
	}
	c.SetDuration(1, 9)
	if g.Duration(1) != 1 {
		t.Error("clone shares duration slice")
	}
}

func TestTimedInstanceNonPreemptiveExecution(t *testing.T) {
	// Chain a(2) → b(3), category 1, one processor.
	g := New(1)
	a, b := g.AddTask(1), g.AddTask(1)
	g.MustEdge(a, b)
	g.SetDuration(a, 2)
	g.SetDuration(b, 3)
	in := NewTimedInstance(g, PickFIFO, 0)
	if in.Desire(1) != 1 || in.Floor(1) != 0 {
		t.Fatalf("initial desire/floor %d/%d", in.Desire(1), in.Floor(1))
	}
	// Step 1: start a.
	if used := in.Execute(1, 1); used != 1 {
		t.Fatalf("step 1 used %d", used)
	}
	in.Advance()
	if in.Floor(1) != 1 {
		t.Fatalf("a in flight: floor %d", in.Floor(1))
	}
	// Step 2: a finishes its 2nd step; b not ready until Advance.
	in.Execute(1, 1)
	in.Advance()
	if in.Floor(1) != 0 || in.Desire(1) != 1 {
		t.Fatalf("after a: floor %d desire %d", in.Floor(1), in.Desire(1))
	}
	// Steps 3–5: b.
	for s := 0; s < 3; s++ {
		in.Execute(1, 1)
		in.Advance()
	}
	if !in.Done() {
		t.Fatal("not done after 5 steps (weighted span)")
	}
}

func TestTimedInstancePanicsBelowFloor(t *testing.T) {
	g := New(1)
	g.SetDuration(g.AddTask(1), 5)
	in := NewTimedInstance(g, PickFIFO, 0)
	in.Execute(1, 1)
	in.Advance()
	defer func() {
		if recover() == nil {
			t.Error("allotment below floor accepted")
		}
	}()
	in.Execute(1, 0)
}

func TestTimedInstanceRemainingWork(t *testing.T) {
	g := New(1)
	a := g.AddTask(1)
	b := g.AddTask(1)
	g.MustEdge(a, b)
	g.SetDuration(a, 3)
	g.SetDuration(b, 2)
	in := NewTimedInstance(g, PickFIFO, 0)
	if rw := in.RemainingWork(); rw[0] != 5 {
		t.Fatalf("initial remaining %v", rw)
	}
	in.Execute(1, 1)
	in.Advance()
	if rw := in.RemainingWork(); rw[0] != 4 {
		t.Fatalf("after 1 step remaining %v", rw)
	}
}

func TestExpandDurationsEquivalence(t *testing.T) {
	g := ForkJoin(2, 3, 1, 2, 1)
	g.SetDuration(0, 2) // fork
	g.SetDuration(2, 4) // one body task
	e := ExpandDurations(g)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Span() != g.TimedSpan() {
		t.Errorf("expanded span %d != timed span %d", e.Span(), g.TimedSpan())
	}
	ew, tw := e.WorkVector(), g.TimedWorkVector()
	for a := range ew {
		if ew[a] != tw[a] {
			t.Errorf("category %d: expanded work %d != timed work %d", a+1, ew[a], tw[a])
		}
	}
}

// TestQuickTimedUnlimitedProcessorsHitsWeightedSpan: with caps covering
// every floor and desire, the non-preemptive run finishes in exactly
// TimedSpan steps.
func TestQuickTimedUnlimitedProcessors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(2, RandomOpts{Tasks: 1 + rng.Intn(30), EdgeProb: 0.2, Window: 6}, rng)
		for id := 0; id < g.NumTasks(); id++ {
			g.SetDuration(TaskID(id), 1+rng.Intn(4))
		}
		in := NewTimedInstance(g, PickFIFO, seed)
		steps := 0
		for !in.Done() {
			steps++
			if steps > g.TimedSpan()+1 {
				return false
			}
			for c := 1; c <= 2; c++ {
				in.Execute(Category(c), g.NumTasks())
			}
			in.Advance()
		}
		return steps == g.TimedSpan()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickTimedDeterminism: two identical runs take identical step counts
// even with constrained processors (map-order hazards are sorted away).
func TestQuickTimedDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		run := func() int {
			rng := rand.New(rand.NewSource(seed))
			g := Random(1, RandomOpts{Tasks: 1 + rng.Intn(25), EdgeProb: 0.2, Window: 5}, rng)
			for id := 0; id < g.NumTasks(); id++ {
				g.SetDuration(TaskID(id), 1+rng.Intn(3))
			}
			in := NewTimedInstance(g, PickFIFO, seed)
			steps := 0
			for !in.Done() {
				steps++
				if steps > 10*g.TimedSpan()*g.NumTasks()+10 {
					return -1
				}
				// Grant floor + up to 2 extra slots.
				in.Execute(1, in.Floor(1)+2)
				in.Advance()
			}
			return steps
		}
		a, b := run(), run()
		return a == b && a > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
