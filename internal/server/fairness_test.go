package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"krad/internal/dag"
	"krad/internal/fairshare"
	"krad/internal/sim"
)

// fairConfig is testConfig plus a two-tenant 2:1 queue tree.
func fairConfig(k int, caps ...int) Config {
	cfg := testConfig(k, caps...)
	cfg.Fairness = &fairshare.Config{
		Nodes: []fairshare.NodeConfig{
			{Name: "heavy", Weight: 2},
			{Name: "light", Weight: 1},
		},
	}
	return cfg
}

// trySubmit submits one unit job for tenant, reporting false when the
// fair gate shed it. Any other error is fatal.
func fairTrySubmit(t *testing.T, svc *Service, tenant string) bool {
	t.Helper()
	_, err := svc.SubmitTenant("", tenant, sim.JobSpec{Graph: dag.Singleton(1, 1)})
	if errors.Is(err, ErrOverQuota) {
		return false
	}
	if err != nil {
		t.Fatalf("submit %s: %v", tenant, err)
	}
	return true
}

// TestFairShareTwoToOneRatio is the headline fairness property: two
// saturating tenants with over-quota weights 2:1 settle to a long-run
// admitted ratio within 5% of 2:1. The loop is closed and deterministic —
// the service is never started; submissions interleave with hand-driven
// draining via StepAll.
func TestFairShareTwoToOneRatio(t *testing.T) {
	cfg := fairConfig(1, 4)
	cfg.MaxInFlight = 12
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 100; round++ {
		// Both tenants stay greedy: submit alternately until both are shed.
		for {
			h := fairTrySubmit(t, svc, "heavy")
			l := fairTrySubmit(t, svc, "light")
			if !h && !l {
				break
			}
		}
		if _, err := svc.StepAll(16); err != nil {
			t.Fatal(err)
		}
	}
	var heavy, light, shed float64
	for _, ts := range svc.Stats().Tenants {
		switch ts.Path {
		case "heavy":
			heavy = float64(ts.Admitted)
		case "light":
			light = float64(ts.Admitted)
		}
		shed += float64(ts.Shed)
	}
	if light == 0 {
		t.Fatal("light tenant admitted nothing")
	}
	if ratio := heavy / light; math.Abs(ratio-2) > 0.1 {
		t.Errorf("admitted ratio heavy:light = %.3f (heavy %.0f, light %.0f), want 2.0 within 5%%", ratio, heavy, light)
	}
	if shed == 0 {
		t.Error("no submissions shed — the loop never saturated the gate")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = svc.Close(ctx)
}

// TestFairShareOverQuotaShedding checks the gate semantics: a tenant at
// its share is shed with ErrOverQuota while the under-quota tenant keeps
// admitting, headerless submissions land on the default leaf, and unknown
// tenant headers auto-create dynamic leaves.
func TestFairShareOverQuotaShedding(t *testing.T) {
	cfg := testConfig(1, 2)
	cfg.MaxInFlight = 8
	cfg.Fairness = &fairshare.Config{
		Nodes: []fairshare.NodeConfig{
			{Name: "a", Weight: 3},
			{Name: "b", Weight: 1},
		},
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate: a reaches its share of 6 and is shed; b keeps admitting
	// to its share of 2 after a is already over quota.
	aAdmitted, bAdmitted := 0, 0
	for i := 0; i < 8; i++ {
		if fairTrySubmit(t, svc, "a") {
			aAdmitted++
		}
		if fairTrySubmit(t, svc, "b") {
			bAdmitted++
		}
	}
	if aAdmitted != 6 || bAdmitted != 2 {
		t.Errorf("admitted a=%d b=%d, want 6 and 2 (weights 3:1 over 8 slots)", aAdmitted, bAdmitted)
	}
	if _, err := svc.SubmitTenant("", "a", sim.JobSpec{Graph: dag.Singleton(1, 1)}); !errors.Is(err, ErrOverQuota) {
		t.Errorf("over-quota submit error %v, want ErrOverQuota", err)
	}
	// Shed is not rejection: the shard-level counter must stay untouched.
	st := svc.Stats()
	if st.Rejected != 0 {
		t.Errorf("shard rejections %d, want 0 — over-quota sheds happen at the gate", st.Rejected)
	}
	for _, ts := range st.Tenants {
		if ts.Path == "a" && ts.Shed == 0 {
			t.Error("tenant a has no shed count")
		}
	}

	// Drain everything, then check headerless and unknown-tenant routing.
	if _, err := svc.StepAll(64); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitTenant("", "", sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
		t.Fatalf("headerless submit: %v", err)
	}
	if _, err := svc.SubmitTenant("", "newco/batch", sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
		t.Fatalf("unknown-tenant submit: %v", err)
	}
	paths := map[string]TenantStats{}
	for _, ts := range svc.Stats().Tenants {
		paths[ts.Path] = ts
	}
	if ts := paths["default"]; ts.Admitted != 1 {
		t.Errorf("default leaf admitted %d, want 1 (headerless submission)", ts.Admitted)
	}
	if ts := paths["newco/batch"]; ts.Admitted != 1 {
		t.Errorf("dynamic leaf newco/batch admitted %d, want 1", ts.Admitted)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = svc.Close(ctx)
}

// TestFairnessOffIgnoresTenants checks the off switch: without
// Config.Fairness the tenant argument is inert, Stats carries no tenant
// section and /metrics exposes no tenant families — observationally
// identical to pre-fairness builds.
func TestFairnessOffIgnoresTenants(t *testing.T) {
	cfg := testConfig(1, 2)
	cfg.MaxInFlight = 4
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitTenant("", "acme/ml", sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
		t.Fatalf("tenant submit with fairness off: %v", err)
	}
	if ts := svc.Stats().Tenants; ts != nil {
		t.Errorf("fairness-off Stats.Tenants = %v, want nil", ts)
	}
	var sb strings.Builder
	if err := svc.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "krad_tenant_") {
		t.Error("fairness-off /metrics exposes krad_tenant_ families")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = svc.Close(ctx)
}

// TestFairHTTP429 checks the wire semantics: over-quota submissions get
// 429 Too Many Requests with a Retry-After header (distinct from the 503
// the full-fleet and degraded paths use), routed by the X-Krad-Tenant
// header; /metrics grows per-tenant families.
func TestFairHTTP429(t *testing.T) {
	cfg := fairConfig(1, 2)
	cfg.MaxInFlight = 3
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body, err := json.Marshal(submitRequest{Graph: dag.Singleton(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(tenant string) *http.Response {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// heavy and light alternate into 3 slots: shares 2 and 1.
	codes := []int{}
	for i := 0; i < 3; i++ {
		codes = append(codes, submit("heavy").StatusCode, submit("light").StatusCode)
	}
	admitted := 0
	for _, c := range codes {
		if c == http.StatusCreated {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d of %v, want 3", admitted, codes)
	}
	resp := submit("heavy")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody := make([]byte, 1<<20)
	n, _ := mresp.Body.Read(mbody)
	mresp.Body.Close()
	for _, want := range []string{
		`krad_tenant_share{tenant="heavy"}`,
		`krad_tenant_in_flight{tenant="light"}`,
		`krad_tenant_shed_total{tenant="heavy"}`,
		`krad_tenant_admitted_total{tenant="light"}`,
		`krad_tenant_usage{tenant="heavy"}`,
	} {
		if !strings.Contains(string(mbody[:n]), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = svc.Close(ctx)
}

// fairLedger is a bit-exact snapshot of one shard's fair-share state.
type fairLedger struct {
	usage    map[string][2]uint64 // leaf → {Float64bits(V), uint64(AsOf)}
	inFlight map[string]int
	jobs     map[int]string
}

func snapshotLedger(sh *shard) fairLedger {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	l := fairLedger{
		usage:    map[string][2]uint64{},
		inFlight: map[string]int{},
		jobs:     map[int]string{},
	}
	for k, u := range sh.fairUsage {
		l.usage[k] = [2]uint64{math.Float64bits(u.V), uint64(u.AsOf)}
	}
	for k, v := range sh.fairInFlight {
		l.inFlight[k] = v
	}
	for k, v := range sh.fairJobs {
		l.jobs[k] = v
	}
	return l
}

func ledgersEqual(a, b fairLedger) bool {
	if len(a.usage) != len(b.usage) || len(a.inFlight) != len(b.inFlight) || len(a.jobs) != len(b.jobs) {
		return false
	}
	for k, v := range a.usage {
		if b.usage[k] != v {
			return false
		}
	}
	for k, v := range a.inFlight {
		if b.inFlight[k] != v {
			return false
		}
	}
	for k, v := range a.jobs {
		if b.jobs[k] != v {
			return false
		}
	}
	return true
}

// TestFairJournalReplayRebuildsLedger is the durability acceptance check:
// restarting a fairness-enabled journaled service rebuilds the fair-share
// ledger bit-identically — same usage bits, same in-flight counts, same
// job→tenant map — from the tenant-tagged records.
func TestFairJournalReplayRebuildsLedger(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*Service, error) {
		cfg := testConfig(1, 2)
		cfg.MaxInFlight = 64
		cfg.Fairness = &fairshare.Config{
			HalfLife: 32,
			Nodes: []fairshare.NodeConfig{
				{Name: "heavy", Weight: 2},
				{Name: "light", Weight: 1},
			},
		}
		cfg.Journal = &JournalConfig{Dir: dir}
		return New(cfg)
	}
	svc, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	// A mixed history: immediate jobs, a far-future pending job, a batch,
	// a headerless submission, partial drain, one cancellation.
	for i := 0; i < 3; i++ {
		if _, err := svc.SubmitTenant("", "heavy", sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.SubmitTenant("", "light", sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StepAll(2); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitBatchTenant("", "light", []sim.JobSpec{
		{Graph: dag.Singleton(1, 1)}, {Graph: dag.Singleton(1, 1)},
	}); err != nil {
		t.Fatal(err)
	}
	pending, err := svc.SubmitTenant("", "heavy", sim.JobSpec{Graph: dag.Singleton(1, 1), Release: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitTenant("", "", sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StepAll(1); err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(pending); err != nil {
		t.Fatal(err)
	}
	before := snapshotLedger(svc.shards[0])
	if len(before.usage) != 3 {
		t.Fatalf("ledger covers %d leaves, want 3 (heavy, light, default)", len(before.usage))
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = svc.Close(ctx)

	svc2, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	after := snapshotLedger(svc2.shards[0])
	if !ledgersEqual(before, after) {
		t.Errorf("replayed ledger diverged:\n before %+v\n after  %+v", before, after)
	}
	// The rebuilt service keeps gating: fairness state is live, not
	// decorative.
	if _, err := svc2.SubmitTenant("", "heavy", sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
		t.Fatal(err)
	}
	_ = svc2.Close(ctx)
}

// TestFairJournalCompactionKeepsLedger checks that snapshot compaction
// carries the fair ledger on the snap record: after compacting to one
// record and restarting, the ledger still replays bit-identically.
func TestFairJournalCompactionKeepsLedger(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*Service, error) {
		cfg := testConfig(1, 2)
		cfg.MaxInFlight = 64
		cfg.Fairness = &fairshare.Config{
			HalfLife: 32,
			Nodes: []fairshare.NodeConfig{
				{Name: "heavy", Weight: 2},
				{Name: "light", Weight: 1},
			},
		}
		cfg.Journal = &JournalConfig{Dir: dir, SnapshotEvery: 2}
		return New(cfg)
	}
	svc, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.SubmitTenant("", "heavy", sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.SubmitTenant("", "light", sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.StepAll(16); err != nil {
			t.Fatal(err)
		}
	}
	svc.shards[0].maybeCompact()
	if got := svc.Stats().Journal.Compactions; got != 1 {
		t.Fatalf("compactions %d, want 1 (idle engine, %d records)", got, svc.Stats().Journal.Records)
	}
	before := snapshotLedger(svc.shards[0])
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = svc.Close(ctx)

	svc2, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	after := snapshotLedger(svc2.shards[0])
	if !ledgersEqual(before, after) {
		t.Errorf("post-compaction ledger diverged:\n before %+v\n after  %+v", before, after)
	}
	_ = svc2.Close(ctx)
}

// TestFairJournalConfigMismatches checks the refusal paths: a
// fairness-off server must not silently drop a fairness-tagged journal,
// and a changed half-life must not silently re-decay history.
func TestFairJournalConfigMismatches(t *testing.T) {
	dir := t.TempDir()
	mk := func(fair *fairshare.Config) (*Service, error) {
		cfg := testConfig(1, 2)
		cfg.Fairness = fair
		cfg.Journal = &JournalConfig{Dir: dir}
		return New(cfg)
	}
	fair := &fairshare.Config{HalfLife: 32, Nodes: []fairshare.NodeConfig{{Name: "a", Weight: 1}}}
	svc, err := mk(fair)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitTenant("", "a", sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = svc.Close(ctx)

	if _, err := mk(nil); err == nil || !strings.Contains(err.Error(), "fairness") {
		t.Errorf("fairness-off open of fair journal: err %v, want fairness-tagged refusal", err)
	}
	other := &fairshare.Config{HalfLife: 64, Nodes: fair.Nodes}
	if _, err := mk(other); err == nil || !strings.Contains(err.Error(), "half-life") {
		t.Errorf("half-life-changed open: err %v, want half-life mismatch", err)
	}
	// The original configuration still opens.
	svc2, err := mk(fair)
	if err != nil {
		t.Fatal(err)
	}
	_ = svc2.Close(ctx)
}
