package server

import "sync"

// fanout is the pool-wide event bus: every shard's step loop publishes
// into it, every subscriber reads a merged stream. Slow subscribers lose
// events (counted) rather than ever blocking a step loop.
type fanout struct {
	buf int

	mu      sync.Mutex
	subs    map[int]chan Event
	next    int
	closed  bool
	dropped int64
}

func newFanout(buf int) *fanout {
	return &fanout{buf: buf, subs: make(map[int]chan Event)}
}

// subscribe registers a listener. The returned cancel function
// unsubscribes and closes the channel; the channel also closes when the
// fanout shuts down.
func (f *fanout) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, f.buf)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := f.next
	f.next++
	f.subs[id] = ch
	f.mu.Unlock()
	cancel := func() {
		f.mu.Lock()
		if c, ok := f.subs[id]; ok {
			delete(f.subs, id)
			close(c)
		}
		f.mu.Unlock()
	}
	return ch, cancel
}

// publish fans an event out to every subscriber, dropping (and counting)
// on full buffers.
func (f *fanout) publish(ev Event) {
	f.mu.Lock()
	for _, ch := range f.subs {
		select {
		case ch <- ev:
		default:
			f.dropped++
		}
	}
	f.mu.Unlock()
}

// stats reports the subscriber count and cumulative drops.
func (f *fanout) stats() (subscribers int, dropped int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs), f.dropped
}

// close closes every subscriber channel and refuses new subscriptions.
func (f *fanout) close() {
	f.mu.Lock()
	f.closed = true
	for id, ch := range f.subs {
		delete(f.subs, id)
		close(ch)
	}
	f.mu.Unlock()
}
