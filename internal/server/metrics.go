package server

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// histogram is a fixed-bucket cumulative histogram matching the Prometheus
// exposition model: counts[i] is the number of observations ≤ bounds[i],
// rendered with cumulative le labels plus a +Inf bucket.
type histogram struct {
	bounds []float64
	counts []uint64 // per-bucket (non-cumulative); len(bounds)+1, last is +Inf
	count  uint64
	sum    float64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// responseBuckets covers response times from one virtual step into the
// tens of thousands, doubling per bucket.
func responseBuckets() []float64 {
	b := make([]float64, 0, 16)
	for v := 1.0; v <= 32768; v *= 2 {
		b = append(b, v)
	}
	return b
}

// WriteMetrics renders the service's state in the Prometheus text
// exposition format (version 0.0.4): step counter, job lifecycle
// counters, queue/backpressure gauges, per-category utilization, and the
// response-time histogram.
func (s *Service) WriteMetrics(w io.Writer) error {
	s.mu.Lock()
	snap := s.eng.Snapshot()
	steps := s.steps
	submitted, completed, cancelled, rejected := s.submitted, s.completed, s.cancelled, s.rejected
	hist := *s.respHist
	counts := append([]uint64(nil), s.respHist.counts...)
	util := snap.Utilization()
	s.mu.Unlock()
	s.subMu.Lock()
	dropped := s.eventsDropped
	subscribers := len(s.subs)
	s.subMu.Unlock()

	var b strings.Builder
	metric := func(name, help, typ string, v any, labels string) {
		// HELP/TYPE emitted once per family: callers group label variants.
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		}
		fmt.Fprintf(&b, "%s%s %v\n", name, labels, v)
	}

	metric("krad_steps_total", "Virtual scheduler steps executed.", "counter", steps, "")
	metric("krad_virtual_time", "Current virtual clock (last executed step).", "gauge", snap.Now, "")
	metric("krad_jobs_submitted_total", "Jobs admitted.", "counter", submitted, "")
	metric("krad_jobs_completed_total", "Jobs completed.", "counter", completed, "")
	metric("krad_jobs_cancelled_total", "Jobs cancelled.", "counter", cancelled, "")
	metric("krad_jobs_rejected_total", "Submissions rejected by admission backpressure.", "counter", rejected, "")
	metric("krad_jobs_active", "Jobs currently executing.", "gauge", snap.Active, "")
	metric("krad_jobs_pending", "Admitted jobs awaiting release.", "gauge", snap.Pending, "")
	metric("krad_queue_depth", "In-flight jobs (pending + active) against the admission bound.", "gauge", snap.Active+snap.Pending, "")
	metric("krad_events_dropped_total", "Step events dropped on slow subscribers.", "counter", dropped, "")
	metric("krad_event_subscribers", "Connected event subscribers.", "gauge", subscribers, "")

	first := true
	for a, u := range util {
		help := ""
		if first {
			help = "Cumulative busy fraction per resource category."
			first = false
		}
		metric("krad_utilization", help, "gauge", fmt.Sprintf("%g", u), fmt.Sprintf(`{category="%d"}`, a+1))
	}

	fmt.Fprintf(&b, "# HELP krad_response_steps Job response times in virtual steps.\n# TYPE krad_response_steps histogram\n")
	var cum uint64
	for i, bound := range hist.bounds {
		cum += counts[i]
		fmt.Fprintf(&b, "krad_response_steps_bucket{le=\"%g\"} %d\n", bound, cum)
	}
	cum += counts[len(hist.bounds)]
	fmt.Fprintf(&b, "krad_response_steps_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "krad_response_steps_sum %g\n", hist.sum)
	fmt.Fprintf(&b, "krad_response_steps_count %d\n", hist.count)

	_, err := io.WriteString(w, b.String())
	return err
}

// quantile is unused by the exposition format but handy for tests: the
// upper bound of the bucket containing the q-quantile observation.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}
