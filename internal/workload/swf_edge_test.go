package workload

import (
	"io"
	"strings"
	"testing"

	"krad/internal/profile"
)

// TestSWFReaderStreams pins the record-level contract: every
// syntactically valid record comes back (including unusable ones, so
// callers can count skips), comments and blank lines vanish, Line()
// tracks the source line, and a clean end is io.EOF.
func TestSWFReaderStreams(t *testing.T) {
	rd := NewSWFReader(strings.NewReader(sampleSWF))
	var recs []SWFRecord
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 4 {
		t.Fatalf("reader yielded %d records, want all 4 (unusable included)", len(recs))
	}
	if recs[2].Usable() {
		t.Error("record with runtime −1 reported usable")
	}
	usable := 0
	for _, r := range recs {
		if r.Usable() {
			usable++
		}
	}
	if usable != 3 {
		t.Fatalf("%d usable records, want 3", usable)
	}
	// Line 16 is the last record of sampleSWF (2 comment lines + records
	// + a blank); Line() must point at the real source line, not the
	// record index.
	if rd.Line() != 7 {
		t.Errorf("Line() = %d after last record, want 7", rd.Line())
	}
	// Subsequent Next calls keep returning io.EOF.
	if _, err := rd.Next(); err != io.EOF {
		t.Errorf("Next after EOF: %v", err)
	}
}

// TestParseSWFZeroRuntime: a zero-second runtime (instant or cancelled
// job) is skipped like the archive's −1 unknowns — it cannot round up to
// a step.
func TestParseSWFZeroRuntime(t *testing.T) {
	log := `1 0 0 0 4 -1 -1 4 0 -1 1 1 1 1 1 1 -1 -1
2 5 0 90 2 -1 -1 2 90 -1 1 1 1 1 1 1 -1 -1
`
	specs, recs, err := ParseSWF(strings.NewReader(log), SWFOptions{K: 1, TimeScale: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || recs[0].JobID != 2 {
		t.Fatalf("zero-runtime job not skipped: %d specs, first id %d", len(specs), recs[0].JobID)
	}
}

// TestParseSWFTruncatedRecord: a record cut off mid-line (fewer than 18
// fields — a torn download or truncated tail) is a located error, not a
// silent skip; the preceding usable records are not returned either,
// because a torn log should not half-load.
func TestParseSWFTruncatedRecord(t *testing.T) {
	log := `1 0 0 120 4 -1 -1 4 120 -1 1 1 1 1 1 1 -1 -1
2 60 0 600 8 -1 -1 8
`
	_, _, err := ParseSWF(strings.NewReader(log), SWFOptions{K: 1, TimeScale: 60})
	if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "8 fields") {
		t.Fatalf("truncated record error: %v", err)
	}
	// Same through the streaming reader: record 1 parses, record 2 errors.
	rd := NewSWFReader(strings.NewReader(log))
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("reader truncated record error: %v", err)
	}
}

// TestParseSWFOutOfOrderSubmits: archive logs occasionally carry
// non-monotone submit times (clock adjustments, merged partitions). The
// parser preserves log order and the raw releases — it neither sorts nor
// rejects — so replay tools decide their own pacing policy.
func TestParseSWFOutOfOrderSubmits(t *testing.T) {
	log := `1 300 0 60 1 -1 -1 1 60 -1 1 1 1 1 1 1 -1 -1
2 60 0 60 1 -1 -1 1 60 -1 1 1 1 1 1 1 -1 -1
3 600 0 60 1 -1 -1 1 60 -1 1 1 1 1 1 1 -1 -1
`
	specs, recs, err := ParseSWF(strings.NewReader(log), SWFOptions{K: 1, TimeScale: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("%d specs, want 3", len(specs))
	}
	wantRel := []int64{5, 1, 10}
	for i, s := range specs {
		if s.Release != wantRel[i] || recs[i].JobID != i+1 {
			t.Errorf("spec %d: release %d (want %d), id %d", i, s.Release, wantRel[i], recs[i].JobID)
		}
	}
}

// TestParseSWFRigidParity: the Rigid option must be an in-memory
// representation change only — work vectors, spans and releases identical
// to the phase-profile mapping.
func TestParseSWFRigidParity(t *testing.T) {
	phased, precs, err := ParseSWF(strings.NewReader(sampleSWF), SWFOptions{K: 2, TimeScale: 60})
	if err != nil {
		t.Fatal(err)
	}
	rigid, rrecs, err := ParseSWF(strings.NewReader(sampleSWF), SWFOptions{K: 2, TimeScale: 60, Rigid: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(phased) != len(rigid) || len(precs) != len(rrecs) {
		t.Fatalf("job counts diverge: %d vs %d", len(phased), len(rigid))
	}
	for i := range phased {
		p, r := phased[i], rigid[i]
		if p.Release != r.Release || p.Source.Span() != r.Source.Span() {
			t.Errorf("job %d: release/span diverge: %d/%d vs %d/%d",
				i, p.Release, p.Source.Span(), r.Release, r.Source.Span())
		}
		pw, rw := p.Source.WorkVector(), r.Source.WorkVector()
		for a := range pw {
			if pw[a] != rw[a] {
				t.Errorf("job %d: work[%d] %d vs %d", i, a, pw[a], rw[a])
			}
		}
	}
}

// TestSWFRecordRigidSpec covers the kradreplay-facing mapping: a usable
// record becomes a postable wire spec; unusable records and bad scales
// are errors.
func TestSWFRecordRigidSpec(t *testing.T) {
	rec := SWFRecord{JobID: 9, Submit: 120, RunTime: 61, Procs: 4}
	sp, err := rec.RigidSpec(3, 2, 60)
	if err != nil {
		t.Fatal(err)
	}
	want := profile.RigidSpec{K: 3, Name: "swf-9", Cat: 2, Procs: 4, Steps: 2}
	if sp != want {
		t.Fatalf("RigidSpec = %+v, want %+v", sp, want)
	}
	if _, err := (SWFRecord{RunTime: -1, Procs: 1}).RigidSpec(1, 1, 60); err == nil {
		t.Error("unusable record accepted")
	}
	if _, err := rec.RigidSpec(1, 1, 0); err == nil {
		t.Error("timeScale 0 accepted")
	}
}

// FuzzSWF feeds arbitrary bytes through both the streaming reader and
// ParseSWF: neither may panic, and when ParseSWF succeeds its job count
// must equal the reader's usable-record count — the two entry points
// must agree on what a log contains.
func FuzzSWF(f *testing.F) {
	f.Add([]byte(sampleSWF))
	f.Add([]byte("; empty\n\n"))
	f.Add([]byte("1 0 0 120 4 -1 -1 4 120 -1 1 1 1 1 1 1 -1 -1"))
	f.Add([]byte("1 0 0 120 4 -1 -1 4"))
	f.Add([]byte("1 -5 0 120 4 -1 -1 4 120 -1 1 1 1 1 1 1 -1 -1\n2 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0"))
	f.Add([]byte("9223372036854775807 9223372036854775807 0 9223372036854775807 1 -1 -1 1 1 -1 1 1 1 1 1 1 -1 -1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewSWFReader(strings.NewReader(string(data)))
		usable, readErr := 0, error(nil)
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				readErr = err
				break
			}
			if rec.Usable() {
				usable++
			}
		}
		specs, recs, err := ParseSWF(strings.NewReader(string(data)), SWFOptions{K: 2, TimeScale: 60})
		if err != nil {
			return // malformed input is allowed to fail, never to panic
		}
		if readErr != nil {
			t.Fatalf("ParseSWF accepted what the reader rejected: %v", readErr)
		}
		if len(specs) != usable || len(recs) != usable {
			t.Fatalf("ParseSWF found %d jobs, reader found %d usable records", len(specs), usable)
		}
		for _, s := range specs {
			if s.Source.Span() < 1 || s.Release < 0 {
				t.Fatalf("degenerate spec: span %d release %d", s.Source.Span(), s.Release)
			}
		}
	})
}
