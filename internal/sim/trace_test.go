package sim

import (
	"strings"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
)

func traceRun(t *testing.T, level TraceLevel) (*Result, []JobSpec) {
	t.Helper()
	specs := []JobSpec{
		{Graph: dag.ForkJoin(2, 4, 1, 2, 1)},
		{Graph: dag.RoundRobinChain(2, 6)},
	}
	res, err := Run(Config{
		K: 2, Caps: []int{3, 3}, Scheduler: core.NewKRAD(2),
		Pick: dag.PickFIFO, Trace: level, ValidateAllotments: true,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	return res, specs
}

func TestTraceNoneRecordsNothing(t *testing.T) {
	res, _ := traceRun(t, TraceNone)
	if len(res.Trace.Steps) != 0 || len(res.Trace.Tasks) != 0 {
		t.Errorf("TraceNone recorded %d steps, %d tasks", len(res.Trace.Steps), len(res.Trace.Tasks))
	}
}

func TestTraceStepsAggregates(t *testing.T) {
	res, _ := traceRun(t, TraceSteps)
	if int64(len(res.Trace.Steps)) != res.Makespan {
		t.Fatalf("%d step rows for makespan %d", len(res.Trace.Steps), res.Makespan)
	}
	// Executed totals must equal the total work.
	sums := make([]int, 2)
	completed := 0
	for _, s := range res.Trace.Steps {
		for a, e := range s.Executed {
			sums[a] += e
		}
		completed += s.Completed
	}
	for a, w := range res.TotalWork() {
		if sums[a] != w {
			t.Errorf("category %d: trace executed %d, work %d", a+1, sums[a], w)
		}
	}
	if completed != len(res.Jobs) {
		t.Errorf("trace recorded %d completions for %d jobs", completed, len(res.Jobs))
	}
	// Step numbers strictly increase.
	var prev int64
	for _, s := range res.Trace.Steps {
		if s.Step <= prev {
			t.Fatalf("step sequence not increasing at %d", s.Step)
		}
		prev = s.Step
	}
}

func TestTraceTasksRecordsEveryTask(t *testing.T) {
	res, specs := traceRun(t, TraceTasks)
	total := 0
	for _, s := range specs {
		total += s.Graph.NumTasks()
	}
	if len(res.Trace.Tasks) != total {
		t.Errorf("recorded %d task events, want %d", len(res.Trace.Tasks), total)
	}
	if err := ValidateSchedule(specs, res); err != nil {
		t.Error(err)
	}
}

func TestTraceCSV(t *testing.T) {
	res, _ := traceRun(t, TraceSteps)
	var b strings.Builder
	if err := res.Trace.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(res.Trace.Steps)+1 {
		t.Errorf("%d CSV lines for %d steps", len(lines), len(res.Trace.Steps))
	}
	if !strings.HasPrefix(lines[0], "step,active,completed,exec_cat1,exec_cat2") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestGanttRendersAndDegrades(t *testing.T) {
	res, _ := traceRun(t, TraceTasks)
	g := res.Trace.Gantt(len(res.Jobs), 0)
	if !strings.Contains(g, "job   0") || !strings.Contains(g, "job   1") {
		t.Errorf("gantt missing rows:\n%s", g)
	}
	// Category digits must appear.
	if !strings.Contains(g, "1") || !strings.Contains(g, "2") {
		t.Errorf("gantt missing category digits:\n%s", g)
	}
	// Width truncation.
	trunc := res.Trace.Gantt(len(res.Jobs), 3)
	if !strings.Contains(trunc, "1..3") {
		t.Errorf("truncated gantt header wrong:\n%s", trunc)
	}
	// Wrong level degrades gracefully.
	res2, _ := traceRun(t, TraceSteps)
	if !strings.Contains(res2.Trace.Gantt(2, 0), "not recorded") {
		t.Error("missing degradation message")
	}
}

func TestValidateScheduleDetectsCorruption(t *testing.T) {
	res, specs := traceRun(t, TraceTasks)
	if err := ValidateSchedule(specs, res); err != nil {
		t.Fatal(err)
	}

	// Corrupt: duplicate execution.
	res.Trace.Tasks = append(res.Trace.Tasks, res.Trace.Tasks[0])
	if err := ValidateSchedule(specs, res); err == nil {
		t.Error("duplicate execution not detected")
	}
	res.Trace.Tasks = res.Trace.Tasks[:len(res.Trace.Tasks)-1]

	// Corrupt: drop an event (task never executed).
	dropped := res.Trace.Tasks[3]
	res.Trace.Tasks = append(res.Trace.Tasks[:3], res.Trace.Tasks[4:]...)
	if err := ValidateSchedule(specs, res); err == nil {
		t.Error("missing execution not detected")
	}
	res.Trace.Tasks = append(res.Trace.Tasks, dropped)

	// Corrupt: category mismatch.
	saved := res.Trace.Tasks[0].Cat
	res.Trace.Tasks[0].Cat = saved%2 + 1
	if err := ValidateSchedule(specs, res); err == nil || !strings.Contains(err.Error(), "functional-heterogeneity") {
		t.Errorf("category violation not detected: %v", err)
	}
	res.Trace.Tasks[0].Cat = saved

	// Corrupt: move an event before its predecessor.
	for i, e := range res.Trace.Tasks {
		g := specs[e.Job].Graph
		if len(g.Predecessors(e.Task)) > 0 && e.Step > 1 {
			res.Trace.Tasks[i].Step = 1
			if err := ValidateSchedule(specs, res); err == nil {
				t.Error("precedence violation not detected")
			}
			res.Trace.Tasks[i].Step = e.Step
			break
		}
	}

	// Wrong trace level refused.
	res2, specs2 := traceRun(t, TraceSteps)
	if err := ValidateSchedule(specs2, res2); err == nil {
		t.Error("accepted TraceSteps-level result")
	}
}

func TestValidateScheduleDetectsCapacityViolation(t *testing.T) {
	res, specs := traceRun(t, TraceTasks)
	// Pile every category-1 event onto one step.
	count := 0
	for i, e := range res.Trace.Tasks {
		if e.Cat == 1 && specs[e.Job].Graph.InDegree(e.Task) == 0 {
			res.Trace.Tasks[i].Step = 1
			count++
		}
	}
	if count < 2 {
		t.Skip("not enough root category-1 tasks to overload")
	}
	// With caps[0] = 3 this only violates if count > 3; force smaller cap.
	res.Caps[0] = 1
	err := ValidateSchedule(specs, res)
	if err == nil {
		t.Error("capacity violation not detected")
	}
}
