package dag

import "fmt"

// Series composes graphs sequentially: every sink of graphs[i] precedes
// every source of graphs[i+1]. All inputs must share the same K. The
// result's span is the sum of spans; its work vector is the sum of work
// vectors. Inputs are not modified.
func Series(graphs ...*Graph) (*Graph, error) {
	return compose("series", graphs, true)
}

// Parallel composes graphs side by side with no cross edges: the result
// runs all of them concurrently (span = max span, work = sum). Inputs are
// not modified.
func Parallel(graphs ...*Graph) (*Graph, error) {
	return compose("parallel", graphs, false)
}

func compose(mode string, graphs []*Graph, chain bool) (*Graph, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("dag: %s composition of zero graphs", mode)
	}
	k := graphs[0].k
	for i, g := range graphs {
		if g == nil {
			return nil, fmt.Errorf("dag: %s composition: graph %d is nil", mode, i)
		}
		if g.k != k {
			return nil, fmt.Errorf("dag: %s composition: graph %d has K=%d, want %d", mode, i, g.k, k)
		}
	}
	out := New(k).Named(mode)
	var prevSinks []TaskID
	for _, g := range graphs {
		offset := TaskID(out.NumTasks())
		for id := 0; id < g.NumTasks(); id++ {
			out.AddTask(g.cats[id])
		}
		for u := 0; u < g.NumTasks(); u++ {
			for _, v := range g.succ[u] {
				out.MustEdge(offset+TaskID(u), offset+v)
			}
		}
		if chain {
			var sources []TaskID
			for id := 0; id < g.NumTasks(); id++ {
				if len(g.pred[id]) == 0 {
					sources = append(sources, offset+TaskID(id))
				}
			}
			for _, u := range prevSinks {
				for _, v := range sources {
					out.MustEdge(u, v)
				}
			}
			prevSinks = prevSinks[:0]
			for id := 0; id < g.NumTasks(); id++ {
				if len(g.succ[id]) == 0 {
					prevSinks = append(prevSinks, offset+TaskID(id))
				}
			}
		}
	}
	return out, nil
}

// MustSeries is Series panicking on error.
func MustSeries(graphs ...*Graph) *Graph {
	g, err := Series(graphs...)
	if err != nil {
		panic(err)
	}
	return g
}

// MustParallel is Parallel panicking on error.
func MustParallel(graphs ...*Graph) *Graph {
	g, err := Parallel(graphs...)
	if err != nil {
		panic(err)
	}
	return g
}
