// Package server wraps the incremental simulation engine (internal/sim's
// Engine) in a goroutine-safe, long-running scheduler service. The
// architecture is layered: a shard (shard.go) is one engine plus the step
// loop driving its virtual clock — bounded job admission with
// backpressure, per-job lifecycle tracking with response-time accounting,
// graceful drain. The Service is the admission front-end over N such
// shards: it routes submissions through a pluggable Placement policy
// (placement.go), namespaces job IDs so queries and cancellations reach
// the owning shard without broadcast, fans every shard's step events into
// one subscriber stream (fanout.go), and aggregates per-shard counters
// into fleet-wide Stats and Prometheus metrics (metrics.go). K-RAD's
// per-category analysis holds per machine, so a fleet of independent
// engines preserves the paper's bounds shard by shard while step loops
// scale across cores. The HTTP/JSON surface exposed by cmd/kradd lives in
// http.go.
package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"krad/internal/fairshare"
	"krad/internal/metrics"
	"krad/internal/sched"
	"krad/internal/sim"
)

// Service errors returned by Submit and Cancel.
var (
	// ErrQueueFull means the admission bound (Config.MaxInFlight) was hit:
	// the service sheds load until running jobs drain.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrClosed means the service is shutting down and no longer admits.
	ErrClosed = errors.New("server: service closed")
)

// Config parameterizes a Service.
type Config struct {
	// Sim is the engine configuration: machine shape, scheduler, policies.
	// Trace should normally stay sim.TraceNone for long-running services —
	// traces grow without bound. Every shard gets an identical machine;
	// shard i's engine seed is offset so PickRandom streams do not repeat
	// across shards (shard 0 keeps the configured seed exactly). An
	// Observer, if set, is invoked concurrently from every shard's step
	// loop and must be goroutine-safe when Shards > 1.
	Sim sim.Config
	// Shards is the number of independent engines behind the admission
	// front-end. 0 or 1 means a single engine, which is observationally
	// identical to the pre-sharding service.
	Shards int
	// NewScheduler constructs one scheduler per shard. Required when
	// Shards > 1: schedulers are stateful (K-RAD's round-robin queue,
	// clairvoyant oracles), so independent step loops must not share one
	// instance. When set it overrides Sim.Scheduler; with a single shard
	// it may stay nil and Sim.Scheduler is used as-is.
	NewScheduler func() sched.Scheduler
	// Placement names the shard-routing policy: "round-robin" (default),
	// "hash" (client-keyed affinity), or "least-loaded" (fewest in-flight).
	Placement string
	// MaxInFlight bounds admitted-but-unfinished jobs (pending + active)
	// across the whole fleet; each shard gets an equal share, with the
	// remainder slots going one each to the lowest-numbered shards, so the
	// per-shard shares sum to exactly MaxInFlight. Submissions beyond a
	// shard's share fail with ErrQueueFull. 0 means 256.
	MaxInFlight int
	// StepEvery is the real-time duration of one virtual step. 0 steps as
	// fast as the hardware allows whenever work is queued (useful for
	// tests and batch-like drains).
	StepEvery time.Duration
	// StepBatch caps how many virtual steps one step-loop iteration may
	// execute under a single engine lock acquisition and journal append
	// (sim.Engine.StepN, which event-leaps where provably safe). In
	// free-run mode (StepEvery == 0) every iteration uses the full batch;
	// in paced mode it bounds ticker catch-up after stalls. Batched steps
	// fan out as one aggregated Event (Steps > 1). 0 means 64; 1 restores
	// the one-step-per-iteration behavior and per-step events.
	StepBatch int64
	// SubscriberBuffer is each event subscriber's channel capacity; events
	// beyond it are dropped for that subscriber (counted, never blocking
	// any step loop). 0 means 64.
	SubscriberBuffer int
	// Journal, when set, write-ahead-journals every committed mutation (one
	// file per shard under Journal.Dir) and replays existing journals
	// during New, making the service crash-safe. Nil disables durability
	// entirely and the service behaves bit-identically to a journal-free
	// build. See JournalConfig (journal.go).
	Journal *JournalConfig
	// Follower, when true, starts the service as a warm replication
	// standby: submissions and cancellations are refused with ErrFollower,
	// the shard step loops stay down (the engines mutate only through
	// ApplyReplicated / ApplyReplicatedSnap, tracking the primary's
	// committed record stream bit-identically), and Ready reports
	// "following" so load balancers keep traffic away. Promote — normally
	// reached through replicate.Receiver's OnPromote — lifts the gate and
	// starts the loops. See internal/replicate for the wire protocol.
	Follower bool
	// RetireDone, when true, retires each job from its shard's engine once
	// its terminal state (completed or cancelled) has been recorded in the
	// shard's lock-striped status index: the engine recycles the job's
	// state for a future admission, bounding engine memory under sustained
	// million-job arrival streams, while status queries keep answering from
	// the index. Retirement is a local memory optimization — IDs stay
	// monotonic, journal replay is unaffected — but idle-point checkpoints
	// become sparse, so a restart (or a replication follower restoring such
	// a snapshot) no longer serves statuses for jobs retired before the
	// checkpoint. Off by default: every behavior, checkpoint shape and
	// per-job query then matches pre-retirement builds exactly.
	RetireDone bool
	// Steal enables cross-shard work stealing: an idle (or, with
	// StealIdle, near-idle) shard's step loop pulls whole pending jobs off
	// the peer with the deepest estimated backlog, journaled on both sides
	// so replay and warm-standby followers rebuild the moves
	// bit-identically, with the original namespaced IDs kept resolvable
	// through redirects. It also upgrades "least-loaded" placement from
	// in-flight counts to the estimated-remaining-work gauge. Mutually
	// exclusive with Fairness (stolen jobs would escape their tenant's
	// ledger). See steal.go.
	Steal bool
	// StealMax caps how many jobs one steal moves (the work target is
	// always half the victim's pending work). 0 means 64.
	StealMax int
	// StealIdle, when > 0, makes a shard probe for steals while still
	// running: after any step round that leaves its estimated remaining
	// work below this many task-steps, it tops up from the deepest peer
	// instead of waiting to go fully idle. 0 steals only when idle.
	StealIdle int64
	// Fairness, when set, enables hierarchical multi-tenant fair-share
	// admission: submissions resolve their X-Krad-Tenant header through
	// the queue tree, the fleet MaxInFlight is divided by weighted fair
	// share over the active leaves at each admission, and over-quota
	// tenants are shed with ErrOverQuota (HTTP 429) while under-quota
	// tenants keep admitting. Tenant identity and decayed usage flow
	// through the journal so replay rebuilds bit-identical fair-share
	// state. Nil disables fairness entirely and the service is
	// observationally identical to pre-fairness builds. See
	// internal/fairshare for the tree and division semantics.
	Fairness *fairshare.Config
}

// Event is one step's happenings on one shard, fanned out to subscribers.
type Event struct {
	// Shard identifies the engine that stepped (omitted for shard 0, so a
	// single-shard stream matches the pre-sharding wire format).
	Shard int `json:"shard,omitempty"`
	// Step is the shard's virtual clock after the step (or batch of
	// steps) executed.
	Step int64 `json:"step"`
	// Steps is the number of virtual steps this event aggregates: the
	// shard's step loop batches catch-up work under one lock
	// (Config.StepBatch), emitting one event per batch. Omitted when 1,
	// so unbatched streams keep the pre-batching wire format.
	Steps int64 `json:"steps,omitempty"`
	// Executed[α−1] counts α-tasks executed over the event's steps.
	Executed []int `json:"executed"`
	// Released and Completed list namespaced job IDs changing state
	// during the event's steps.
	Released  []int `json:"released,omitempty"`
	Completed []int `json:"completed,omitempty"`
	// Active and Pending count the shard's jobs after the step.
	Active  int `json:"active"`
	Pending int `json:"pending"`
}

// Stats is a point-in-time service summary, aggregated across shards:
// counters are sums, Now is the furthest shard clock, Utilization is
// weighted by per-shard elapsed time, and Response merges every shard's
// completed-job response times.
type Stats struct {
	Now   int64 `json:"now"`
	Steps int64 `json:"steps"`
	K     int   `json:"k"`
	// Caps is the per-shard machine shape (every shard is identical).
	Caps        []int  `json:"caps"`
	Scheduler   string `json:"scheduler"`
	Shards      int    `json:"shards"`
	Placement   string `json:"placement"`
	Submitted   int64  `json:"submitted"`
	Completed   int64  `json:"completed"`
	Cancelled   int64  `json:"cancelled"`
	Rejected    int64  `json:"rejected"`
	Active      int    `json:"active"`
	Pending     int    `json:"pending"`
	InFlight    int    `json:"in_flight"`
	MaxInFlight int    `json:"max_in_flight"`
	Draining    bool   `json:"draining"`
	// Utilization[α−1] is the cumulative busy fraction of category α.
	Utilization []float64 `json:"utilization"`
	// Response summarizes completed jobs' response times (virtual steps).
	Response metrics.Summary `json:"response"`
	// EventsDropped counts events discarded on slow subscribers.
	EventsDropped int64 `json:"events_dropped"`
	// Journal aggregates write-ahead journal state; nil (omitted on the
	// wire) when journaling is disabled, keeping the journal-free Stats
	// encoding bit-identical to builds before durability existed.
	Journal *JournalStats `json:"journal,omitempty"`
	// Tenants is per-leaf fair-share state in deterministic leaf order;
	// nil (omitted on the wire) when fairness is disabled, keeping the
	// fairness-free Stats encoding bit-identical to earlier builds.
	Tenants []TenantStats `json:"tenants,omitempty"`
	// Replication reports the daemon's replication role and stream state;
	// nil (omitted on the wire) when replication is not configured,
	// keeping the standalone Stats encoding bit-identical to
	// pre-replication builds.
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Steal reports work-stealing totals; nil (omitted on the wire) when
	// stealing is disabled, keeping the steal-free Stats encoding
	// bit-identical to earlier builds.
	Steal *StealStats `json:"steal,omitempty"`
}

// Service is the long-running scheduler front-end: N shards (each one
// engine plus one step-loop goroutine), one placement policy, any number
// of submitting/querying/subscribing goroutines.
type Service struct {
	cfg       Config
	shards    []*shard
	place     Placement
	fan       *fanout
	fair      *fairController // nil when fairness is off
	ledger    *stealLedger    // nil when stealing is off
	stealMax  int
	schedName string
	retryVals [4]string     // Retry-After values base..base+3s; base from StepEvery
	retrySeq  atomic.Uint32 // round-robin cursor into retryVals

	mu        sync.Mutex
	started   bool
	closed    bool
	follower  bool                     // standby: refuse writes, step loops down
	promoteFn func() int64             // POST /v1/promote target (receiver.Promote)
	repStats  func() *ReplicationStats // replication slice of Stats and /metrics
}

// New builds a Service around Shards fresh engines. Call Start to begin
// stepping.
func New(cfg Config) (*Service, error) {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.SubscriberBuffer <= 0 {
		cfg.SubscriberBuffer = 64
	}
	if cfg.StepBatch <= 0 {
		cfg.StepBatch = 64
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > 1 && cfg.NewScheduler == nil {
		return nil, errors.New("server: Shards > 1 requires Config.NewScheduler — shards must not share one stateful scheduler instance")
	}
	if cfg.Steal && cfg.Fairness != nil {
		return nil, errors.New("server: Steal and Fairness are mutually exclusive — a stolen job would escape its tenant's fair-share ledger")
	}
	if cfg.StealMax <= 0 {
		cfg.StealMax = 64
	}
	place, err := NewPlacement(cfg.Placement)
	if err != nil {
		return nil, err
	}
	fan := newFanout(cfg.SubscriberBuffer)
	// Exact apportionment of the fleet bound: base slots for everyone, one
	// extra for the first MaxInFlight mod Shards shards, so the per-shard
	// shares sum to MaxInFlight instead of ceiling past it.
	base := cfg.MaxInFlight / cfg.Shards
	extra := cfg.MaxInFlight % cfg.Shards
	shards := make([]*shard, cfg.Shards)
	schedName := ""
	for i := range shards {
		simCfg := cfg.Sim
		simCfg.Seed += int64(i) << shardIDBits
		share := base
		if i < extra {
			share++
		}
		// Scheduler construction happens exactly once per shard, inside
		// newShard's engine factory — NewScheduler side-effects (tests count
		// invocations to plant per-shard behaviour) must see one call each.
		sh, err := newShard(i, simCfg, cfg.NewScheduler, share, cfg.StepEvery, cfg.StepBatch, fan)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			schedName = sh.eng.SchedulerName()
		}
		sh.standby = cfg.Follower
		sh.retireDone = cfg.RetireDone
		sh.steal = cfg.Steal
		sh.stealIdle = cfg.StealIdle
		shards[i] = sh
	}
	s := &Service{
		cfg:       cfg,
		shards:    shards,
		place:     place,
		fan:       fan,
		schedName: schedName,
		stealMax:  cfg.StealMax,
		follower:  cfg.Follower,
	}
	if cfg.Steal {
		s.ledger = newStealLedger()
		for _, sh := range shards {
			sh.ledger = s.ledger
		}
		if len(shards) > 1 {
			// One steal attempt per idle probe, driven from each shard's own
			// step loop; a single-shard fleet has no victims.
			for _, sh := range shards {
				sh := sh
				sh.stealFn = func() bool { return s.stealFor(sh) }
			}
		}
	}
	for i := range s.retryVals {
		s.retryVals[i] = strconv.FormatInt(retryAfterSeconds(cfg.StepEvery)+int64(i), 10)
	}
	if cfg.Fairness != nil {
		fc, err := newFairController(*cfg.Fairness)
		if err != nil {
			return nil, err
		}
		s.fair = fc
		// Arm each shard's ledger before journal replay, so replay can
		// rebuild fair-share state alongside engine state.
		for _, sh := range shards {
			sh.armFair(fc.tree.HalfLife(), fc.tree.Default().Path)
		}
	}
	if cfg.Journal != nil {
		// Replays each shard's journal through its fresh engine before any
		// step loop exists; a corrupt or mismatched journal fails New.
		if err := s.openJournals(cfg.Journal); err != nil {
			return nil, err
		}
	}
	if !cfg.Follower {
		// Repair steals split by a crash, now that every shard's journal has
		// replayed and before any step loop exists. A follower defers this
		// to Promote: its ledger fills from the replicated stream and its
		// engines must not mutate outside it until then.
		if err := s.reconcileSteals(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Start launches every shard's step loop. Extra calls are no-ops, as is
// starting a closed service. A service that is never started still serves
// submissions, queries and cancellations — the clocks just never move
// (useful in tests). A follower Service records the start but keeps the
// loops down until Promote: a standby's engines must mutate only through
// the replicated record stream, or they diverge from the primary.
func (s *Service) Start() {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.started = true
	follower := s.follower
	s.mu.Unlock()
	if follower {
		return
	}
	for _, sh := range s.shards {
		sh.start()
	}
}

// Shards returns the number of engines behind the front-end.
func (s *Service) Shards() int { return len(s.shards) }

// Submit admits a job via the placement policy (with no affinity key) and
// returns its namespaced ID. A zero Release means "now" (the owning
// shard's current virtual step); a positive Release is an absolute
// virtual time and must not lie in the past. Note that engines
// fast-forward idle virtual-time gaps, so a future release delays a job
// relative to other work on its shard, not relative to wall-clock time.
// Admission is bounded per shard: once a shard's share of MaxInFlight is
// pending or active, submissions placed there fail fast with ErrQueueFull
// so callers can shed or retry.
func (s *Service) Submit(spec sim.JobSpec) (int, error) {
	return s.SubmitTenant("", "", spec)
}

// SubmitKeyed is Submit with a placement affinity key: under the "hash"
// policy, equal keys land on the same shard.
func (s *Service) SubmitKeyed(key string, spec sim.JobSpec) (int, error) {
	return s.SubmitTenant(key, "", spec)
}

// SubmitTenant is SubmitKeyed with a tenant identity (the X-Krad-Tenant
// header value; "" means the default leaf). With fairness enabled the
// submission first passes the fair-share gate — the tenant resolves to a
// queue-tree leaf, the fleet bound is rebalanced over the active leaves,
// and an over-quota tenant is shed with ErrOverQuota. With fairness off
// the tenant is ignored and the call is identical to SubmitKeyed.
func (s *Service) SubmitTenant(key, tenant string, spec sim.JobSpec) (int, error) {
	leafPath := ""
	if s.fair != nil {
		var err error
		leafPath, err = s.fairAdmit(tenant, 1)
		if err != nil {
			return -1, err
		}
	}
	sh, err := s.pick(key)
	if err != nil {
		return -1, err
	}
	local, err := sh.submit(leafPath, spec)
	if err != nil {
		return -1, err
	}
	if s.fair != nil {
		s.fair.recordAdmit(leafPath, 1)
	}
	return composeID(sh.idx, local), nil
}

// SubmitBatch admits every spec — or none — on a single shard chosen by
// the placement policy, under one engine lock acquisition
// (sim.Engine.AdmitBatch). It returns the namespaced IDs in spec order.
// The whole batch must fit the shard's admission bound or it is rejected
// with ErrQueueFull.
func (s *Service) SubmitBatch(key string, specs []sim.JobSpec) ([]int, error) {
	return s.SubmitBatchTenant(key, "", specs)
}

// SubmitBatchTenant is SubmitBatch with a tenant identity; the whole
// batch is gated, admitted and charged as one unit (see SubmitTenant).
func (s *Service) SubmitBatchTenant(key, tenant string, specs []sim.JobSpec) ([]int, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	leafPath := ""
	if s.fair != nil {
		var err error
		leafPath, err = s.fairAdmit(tenant, len(specs))
		if err != nil {
			return nil, err
		}
	}
	sh, err := s.pick(key)
	if err != nil {
		return nil, err
	}
	// Copy: the shard normalizes zero releases in place.
	own := append([]sim.JobSpec(nil), specs...)
	ids, err := sh.submitBatch(leafPath, own)
	if err != nil {
		return nil, err
	}
	if s.fair != nil {
		s.fair.recordAdmit(leafPath, len(ids))
	}
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = composeID(sh.idx, id)
	}
	return out, nil
}

// StepAll executes up to max virtual steps on every shard by direct
// calls, returning the total executed across shards. It exists for
// deterministic closed-loop drivers — cmd/kradfair — that never Start
// the service and instead interleave submissions with hand-driven
// stepping; on a started service it would race the step loops.
func (s *Service) StepAll(max int64) (int64, error) {
	var total int64
	for _, sh := range s.shards {
		n, err := sh.stepN(max)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// pick routes one submission: closed- and follower-check, then placement.
func (s *Service) pick(key string) (*shard, error) {
	s.mu.Lock()
	closed, follower := s.closed, s.follower
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if follower {
		return nil, ErrFollower
	}
	if len(s.shards) == 1 {
		return s.shards[0], nil
	}
	// Loads come from the shards' lock-free gauges, so placement never
	// contends with the step loops. With stealing on, "least-loaded" reads
	// estimated remaining work (task-steps) instead of in-flight counts —
	// the same signal victim selection uses — so placement and stealing
	// pull toward the same equilibrium.
	loads := make([]int, len(s.shards))
	for i, sh := range s.shards {
		if s.cfg.Steal {
			loads[i] = int(sh.loadEstWork.Load())
		} else {
			loads[i] = int(sh.loadRemaining.Load())
		}
	}
	return s.shards[s.place.Pick(key, loads)], nil
}

// shardFor resolves a namespaced job ID to its owning shard.
func (s *Service) shardFor(id int) (*shard, bool) {
	idx := ShardOf(id)
	if idx < 0 || idx >= len(s.shards) {
		return nil, false
	}
	return s.shards[idx], true
}

// resolve follows steal redirects from a namespaced job ID to the shard
// currently holding the job, returning the resolved ID alongside. A job
// that was never stolen resolves to itself in one hop; a chain of steals
// walks one redirect per hop. The hop cap only guards against a corrupted
// cycle — every steal moves a job to a fresh ID, so real chains are
// finite.
func (s *Service) resolve(id int) (int, *shard, bool) {
	for hops := 0; hops < 1<<16; hops++ {
		sh, ok := s.shardFor(id)
		if !ok {
			return 0, nil, false
		}
		if target, ok := sh.tab.redirect(LocalID(id)); ok {
			id = target
			continue
		}
		return id, sh, true
	}
	return 0, nil, false
}

// Cancel withdraws a pending or active job; its processors are free from
// the owning shard's next step. IDs of stolen jobs resolve through their
// redirect chain to wherever the job lives now.
func (s *Service) Cancel(id int) error {
	if s.Following() {
		return ErrFollower
	}
	rid, sh, ok := s.resolve(id)
	if !ok {
		return fmt.Errorf("server: no job %d", id)
	}
	err := sh.cancel(LocalID(rid))
	if err != nil && s.cfg.Steal {
		// The job may have been stolen between resolution and the cancel;
		// re-resolve once and retry at its new home.
		if rid2, sh2, ok := s.resolve(rid); ok && rid2 != rid {
			return sh2.cancel(LocalID(rid2))
		}
	}
	return err
}

// Job returns a job's lifecycle status; the returned ID is the namespaced
// one the job was submitted under, even after the job moved shards
// through work stealing.
func (s *Service) Job(id int) (sim.JobStatus, bool) {
	rid, sh, ok := s.resolve(id)
	if !ok {
		return sim.JobStatus{}, false
	}
	st, ok := sh.job(LocalID(rid))
	if !ok && s.cfg.Steal {
		if rid2, sh2, ok2 := s.resolve(rid); ok2 && rid2 != rid {
			st, ok = sh2.job(LocalID(rid2))
		}
	}
	if ok {
		st.ID = id
	}
	return st, ok
}

// Err returns the step loops' fatal errors, if any occurred (e.g. a
// broken scheduler tripping allotment validation). A shard stops stepping
// after a fatal error but the service keeps serving status queries.
func (s *Service) Err() error {
	errs := make([]error, len(s.shards))
	for i, sh := range s.shards {
		errs[i] = sh.err()
	}
	return errors.Join(errs...)
}

// Stats summarizes the service across every shard.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()

	st := Stats{
		K:           s.cfg.Sim.K,
		Scheduler:   s.schedName,
		Shards:      len(s.shards),
		Placement:   s.place.Name(),
		Draining:    draining,
		Utilization: make([]float64, s.cfg.Sim.K),
	}
	execTotal := make([]int64, s.cfg.Sim.K)
	var elapsed int64
	var resp metrics.SampleHist
	var steal StealStats
	for _, sh := range s.shards {
		v := sh.view()
		if st.Caps == nil {
			st.Caps = v.snap.Caps
		}
		if v.snap.Now > st.Now {
			st.Now = v.snap.Now
		}
		st.Steps += v.steps
		st.Submitted += v.submitted
		st.Completed += v.completed
		st.Cancelled += v.cancelled
		st.Rejected += v.rejected
		st.Active += v.snap.Active
		st.Pending += v.snap.Pending
		st.MaxInFlight += sh.maxInFlight
		elapsed += v.snap.Now
		for a, w := range v.snap.ExecutedTotal {
			execTotal[a] += w
		}
		resp.Merge(v.resp)
		steal.Stolen += int64(v.snap.Stolen)
		steal.StolenIn += v.stolenIn
		steal.EstWork += v.estWork
	}
	st.InFlight = st.Active + st.Pending
	if elapsed > 0 {
		for a, w := range execTotal {
			st.Utilization[a] = float64(w) / (float64(st.Caps[a]) * float64(elapsed))
		}
	}
	st.Response = resp.Summary()
	_, st.EventsDropped = s.fan.stats()
	st.Journal = s.journalStats()
	st.Tenants = s.tenantStats()
	st.Replication = s.replicationStats()
	if s.cfg.Steal {
		st.Steal = &steal
	}
	return st
}

// replicationStats invokes the registered replication probe, or nil when
// replication is not configured.
func (s *Service) replicationStats() *ReplicationStats {
	s.mu.Lock()
	f := s.repStats
	s.mu.Unlock()
	if f == nil {
		return nil
	}
	return f()
}

// Subscribe registers an event listener over the merged stream of every
// shard's step events. The returned cancel function unsubscribes and
// closes the channel; the channel also closes when the service shuts
// down. Slow subscribers lose events rather than slowing any step loop.
func (s *Service) Subscribe() (<-chan Event, func()) {
	return s.fan.subscribe()
}

// Close stops admission, drains in-flight jobs on every shard in
// parallel (stepping until each engine is idle), then stops the loops and
// closes subscriber channels. If ctx expires first, the remaining loops
// are stopped immediately, abandoning unfinished jobs.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			errs[i] = sh.close(ctx)
		}(i, sh)
	}
	wg.Wait()
	s.fan.close()
	return errors.Join(errs...)
}
