// Package metrics implements the quantities the paper's competitive
// analysis is stated in: squashed sums and squashed work areas
// (Definitions 4 and 5), aggregate span, the makespan and mean-response-
// time lower bounds of Sections 4 and 6, and competitive-ratio reports
// comparing measured schedules against those bounds.
package metrics

import "sort"

// SqSum computes the squashed sum of Definition 4: with the m values sorted
// ascending a(1) ≤ ... ≤ a(m), sq-sum = Σi (m − i + 1)·a(i) — the smallest
// value weighted m, the largest weighted 1. The input is not modified.
// Negative inputs are a caller bug (works are counts) and cause a panic.
func SqSum(values []int) int64 {
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	var sum int64
	m := len(sorted)
	for i, v := range sorted {
		if v < 0 {
			panic("metrics: SqSum given a negative value")
		}
		sum += int64(m-i) * int64(v)
	}
	return sum
}

// SqSumPermuted computes Σi (m − i + 1)·a(g(i)) for an explicit permutation
// g (g[i] is the index of the value placed at sorted position i+1). Used by
// property tests of the equivalence between Definition 4 (sorted order
// minimizes) and Equation (4) (minimum over all permutations).
func SqSumPermuted(values []int, g []int) int64 {
	var sum int64
	m := len(values)
	for i, idx := range g {
		sum += int64(m-i) * int64(values[idx])
	}
	return sum
}

// SquashedWorkArea computes swa(J, α) of Definition 5 as a float:
// sq-sum over the per-job α-works divided by Pα.
func SquashedWorkArea(works []int, p int) float64 {
	return float64(SqSum(works)) / float64(p)
}

// SqSumFloats is SqSum over real-valued works — used by the fluid
// (real-valued allotment) replay of the Theorem 5 induction, where job
// state is fractional.
func SqSumFloats(values []float64) float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	m := len(sorted)
	for i, v := range sorted {
		if v < 0 {
			panic("metrics: SqSumFloats given a negative value")
		}
		sum += float64(m-i) * v
	}
	return sum
}

// CheckLemma4 evaluates the hypothesis and conclusion of Lemma 4 on two
// lists a, b with b[i] = a[i] + s[i], 0 ≤ s[i] ≤ h: it returns the left and
// right sides of sq-sum(b) ≥ sq-sum(a) + P(l+1)/2 where l = |{s[i] = h}|
// and P = Σ s[i]. Callers assert left ≥ right. Returns ok=false when the
// hypothesis (l > 0) does not hold.
func CheckLemma4(a, b []int, h int) (left, right float64, ok bool) {
	if len(a) != len(b) || h <= 0 {
		return 0, 0, false
	}
	l := 0
	P := 0
	for i := range a {
		s := b[i] - a[i]
		if s < 0 || s > h {
			return 0, 0, false
		}
		if s == h {
			l++
		}
		P += s
	}
	if l == 0 {
		return 0, 0, false
	}
	left = float64(SqSum(b))
	right = float64(SqSum(a)) + float64(P)*float64(l+1)/2
	return left, right, true
}
