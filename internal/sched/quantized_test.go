package sched

import (
	"testing"
)

// countingSched counts inner invocations and gives everyone one processor.
type countingSched struct {
	calls int
	done  [][]int
}

func (c *countingSched) Name() string { return "counting" }

func (c *countingSched) Allot(t int64, jobs []JobView, caps []int) [][]int {
	c.calls++
	out := make([][]int, len(jobs))
	left := caps[0]
	for i := range jobs {
		out[i] = make([]int, len(caps))
		if left > 0 {
			out[i][0] = 1
			left--
		}
	}
	return out
}

func (c *countingSched) JobsDone(ids []int) { c.done = append(c.done, ids) }

func TestQuantizedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("quantum 0 accepted")
		}
	}()
	NewQuantized(&countingSched{}, 0)
}

func TestQuantizedRecomputesEveryLSteps(t *testing.T) {
	inner := &countingSched{}
	q := NewQuantized(inner, 4)
	jobs := []JobView{{ID: 0, Desire: []int{5}}}
	for step := int64(1); step <= 12; step++ {
		q.Allot(step, jobs, []int{2})
	}
	if inner.calls != 3 {
		t.Errorf("inner called %d times over 12 steps with L=4, want 3", inner.calls)
	}
	if q.Name() != "counting-quantized" {
		t.Errorf("Name = %q", q.Name())
	}
}

func TestQuantizedClampsToDesire(t *testing.T) {
	inner := &countingSched{}
	q := NewQuantized(inner, 8)
	// Boundary: desire 5 → cached 1.
	jobs := []JobView{{ID: 0, Desire: []int{5}}}
	q.Allot(1, jobs, []int{2})
	// Mid-quantum the desire drops to zero: allotment must clamp.
	jobs[0].Desire = []int{0}
	allot := q.Allot(2, jobs, []int{2})
	if allot[0][0] != 0 {
		t.Errorf("allotment %d exceeds desire 0", allot[0][0])
	}
}

func TestQuantizedNewArrivalsWaitForBoundary(t *testing.T) {
	inner := &countingSched{}
	q := NewQuantized(inner, 4)
	q.Allot(1, []JobView{{ID: 0, Desire: []int{1}}}, []int{2})
	// Job 1 arrives mid-quantum: nothing until step 5.
	jobs := []JobView{{ID: 0, Desire: []int{1}}, {ID: 1, Desire: []int{1}}}
	allot := q.Allot(2, jobs, []int{2})
	if allot[1][0] != 0 {
		t.Errorf("mid-quantum arrival served: %v", allot)
	}
	allot = q.Allot(5, jobs, []int{2})
	if allot[1][0] != 1 {
		t.Errorf("boundary did not admit the arrival: %v", allot)
	}
}

func TestQuantizedForwardsCompletions(t *testing.T) {
	inner := &countingSched{}
	q := NewQuantized(inner, 2)
	q.Allot(1, []JobView{{ID: 0, Desire: []int{1}}}, []int{1})
	q.JobsDone([]int{0})
	if len(inner.done) != 1 || inner.done[0][0] != 0 {
		t.Errorf("completions not forwarded: %v", inner.done)
	}
	if len(q.cache) != 0 {
		t.Error("cache not cleared on completion")
	}
}

func TestQuantizedLOneMatchesInner(t *testing.T) {
	a := &countingSched{}
	q := NewQuantized(a, 1)
	b := &countingSched{}
	jobs := []JobView{{ID: 0, Desire: []int{3}}, {ID: 1, Desire: []int{3}}}
	for step := int64(1); step <= 5; step++ {
		x := q.Allot(step, jobs, []int{1})
		y := b.Allot(step, jobs, []int{1})
		for i := range jobs {
			if x[i][0] != y[i][0] {
				t.Fatalf("step %d: quantized(1) diverged", step)
			}
		}
	}
	if a.calls != b.calls {
		t.Errorf("call counts differ: %d vs %d", a.calls, b.calls)
	}
}
