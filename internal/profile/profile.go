// Package profile implements the compact parallelism-profile job
// representation used throughout the DEQ/round-robin literature (McCann,
// Vaswani, Zahorjan; Edmonds et al.): a job is a sequence of phases, each
// holding a count of identical, mutually independent unit tasks per
// category, with a full barrier between phases. A profile job is
// semantically identical to a dense Layered K-DAG (dag.Layered with
// dense=true) — the equivalence is tested — but stores O(phases·K) state
// instead of O(tasks), so simulations with millions of tasks stay cheap.
//
// Profile jobs plug into the engine through sim.JobSource. They cannot
// report individual task IDs, so TraceTasks-level recording requires
// DAG-backed jobs instead.
package profile

import (
	"fmt"

	"krad/internal/dag"
	"krad/internal/sim"
)

// Phase is one barrier-delimited stage: Tasks[α−1] unit tasks of category
// α, all independent, all of which must finish before the next phase
// starts.
type Phase struct {
	Tasks []int
}

// total returns the phase's task count.
func (p Phase) total() int {
	n := 0
	for _, v := range p.Tasks {
		n += v
	}
	return n
}

// Job is an immutable profile-job description.
type Job struct {
	name   string
	k      int
	phases []Phase
	work   []int
}

// New builds a profile job for k categories. Every phase must have
// category counts shaped [k] with non-negative entries and at least one
// task (an empty phase would make the span ill-defined).
func New(k int, name string, phases []Phase) (*Job, error) {
	if k < 1 {
		return nil, fmt.Errorf("profile: k=%d, need ≥ 1", k)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("profile: job %q has no phases", name)
	}
	work := make([]int, k)
	for i, ph := range phases {
		if len(ph.Tasks) != k {
			return nil, fmt.Errorf("profile: job %q phase %d has %d categories, want %d", name, i, len(ph.Tasks), k)
		}
		tot := 0
		for a, v := range ph.Tasks {
			if v < 0 {
				return nil, fmt.Errorf("profile: job %q phase %d category %d has negative count %d", name, i, a+1, v)
			}
			work[a] += v
			tot += v
		}
		if tot == 0 {
			return nil, fmt.Errorf("profile: job %q phase %d is empty", name, i)
		}
	}
	cp := make([]Phase, len(phases))
	for i, ph := range phases {
		cp[i] = Phase{Tasks: append([]int(nil), ph.Tasks...)}
	}
	return &Job{name: name, k: k, phases: cp, work: work}, nil
}

// MustNew is New panicking on error, for literals in tests and examples.
func MustNew(k int, name string, phases []Phase) *Job {
	j, err := New(k, name, phases)
	if err != nil {
		panic(err)
	}
	return j
}

// Name implements sim.JobSource.
func (j *Job) Name() string { return j.name }

// Family implements sim.FamilySource.
func (j *Job) Family() sim.RuntimeFamily { return sim.FamilyProfile }

// K implements sim.JobSource.
func (j *Job) K() int { return j.k }

// WorkVector implements sim.JobSource.
func (j *Job) WorkVector() []int { return append([]int(nil), j.work...) }

// AppendWork implements sim.WorkAppender.
func (j *Job) AppendWork(dst []int) []int { return append(dst, j.work...) }

// Span implements sim.JobSource: each phase contributes exactly one level
// to the critical path, so T∞ equals the phase count.
func (j *Job) Span() int { return len(j.phases) }

// TotalTasks implements sim.JobSource.
func (j *Job) TotalTasks() int {
	n := 0
	for _, w := range j.work {
		n += w
	}
	return n
}

// Phases returns the number of phases.
func (j *Job) Phases() int { return len(j.phases) }

// PhaseTasks returns a deep copy of the per-phase per-category task
// counts (row = phase, column = category α−1).
func (j *Job) PhaseTasks() [][]int {
	out := make([][]int, len(j.phases))
	for i, ph := range j.phases {
		out[i] = append([]int(nil), ph.Tasks...)
	}
	return out
}

// ToGraph expands the profile into its equivalent dense Layered K-DAG —
// used by the equivalence tests and by anyone needing task-level traces of
// a profile workload. Task counts explode for big profiles; intended for
// small jobs.
func (j *Job) ToGraph() *dag.Graph {
	g := dag.New(j.k).Named(j.name + "-expanded")
	var prev []dag.TaskID
	for _, ph := range j.phases {
		var cur []dag.TaskID
		for a, count := range ph.Tasks {
			cur = append(cur, g.AddTasks(dag.Category(a+1), count)...)
		}
		for _, u := range prev {
			for _, v := range cur {
				g.MustEdge(u, v)
			}
		}
		prev = cur
	}
	return g
}

// NewRuntime implements sim.JobSource. pick and seed are ignored: tasks
// within a phase are indistinguishable, so there is nothing for a pick
// policy to choose between.
func (j *Job) NewRuntime(pick dag.PickPolicy, seed int64) sim.RuntimeJob {
	rem := make([]int, j.k)
	copy(rem, j.phases[0].Tasks)
	return &runtime{job: j, phase: 0, remaining: rem, ran: make([]int, j.k)}
}

// ReuseRuntime implements sim.RuntimeReuser: a general profile runtime of
// the same category count resets in place.
func (j *Job) ReuseRuntime(rt sim.RuntimeJob, pick dag.PickPolicy, seed int64) (sim.RuntimeJob, bool) {
	r, ok := rt.(*runtime)
	if !ok || len(r.remaining) != j.k {
		return nil, false
	}
	r.job = j
	r.phase = 0
	copy(r.remaining, j.phases[0].Tasks)
	for a := range r.ran {
		r.ran[a] = 0
	}
	r.executed = 0
	r.advanced = false
	return r, true
}

// runtime executes a profile job: remaining counts for the current phase,
// with completions buffered until Advance (unit-time semantics).
type runtime struct {
	job   *Job
	phase int
	// remaining[α−1] counts the current phase's unexecuted, unstarted
	// tasks; ran buffers this step's executions until Advance.
	remaining []int
	ran       []int
	executed  int
	advanced  bool // true once phase < len(phases) is exhausted and moved
}

// Desire implements sim.RuntimeJob: the instantaneous α-parallelism is the
// remaining α-count of the current phase (independent tasks).
func (r *runtime) Desire(c dag.Category) int {
	if c < 1 || int(c) > r.job.k {
		return 0
	}
	return r.remaining[c-1]
}

// Execute implements sim.RuntimeJob.
func (r *runtime) Execute(c dag.Category, n int) int {
	if n <= 0 || c < 1 || int(c) > r.job.k {
		return 0
	}
	a := int(c) - 1
	if n > r.remaining[a] {
		n = r.remaining[a]
	}
	r.remaining[a] -= n
	r.ran[a] += n
	r.executed += n
	return n
}

// Advance implements sim.RuntimeJob: if the phase is exhausted, the next
// phase's tasks become ready at the next step (the barrier).
func (r *runtime) Advance() {
	any := false
	for a := range r.ran {
		if r.ran[a] != 0 {
			any = true
			r.ran[a] = 0
		}
	}
	if !any {
		return
	}
	exhausted := true
	for _, v := range r.remaining {
		if v != 0 {
			exhausted = false
			break
		}
	}
	if exhausted && r.phase+1 < len(r.job.phases) {
		r.phase++
		copy(r.remaining, r.job.phases[r.phase].Tasks)
	}
}

// LeapTasks implements sim.LeapRuntime: several consecutive steps that
// together executed total[α−1] α-tasks collapse to one subtraction per
// category. The engine guarantees no phase boundary is crossed (remaining
// stays positive wherever total is), so the intermediate Advance calls
// would have been no-ops beyond clearing the per-step ran counters —
// which stay zero here, exactly as the single steps would leave them.
func (r *runtime) LeapTasks(total []int) {
	for a, v := range total {
		if v == 0 {
			continue
		}
		r.remaining[a] -= v
		r.executed += v
	}
}

// Done implements sim.RuntimeJob.
func (r *runtime) Done() bool { return r.executed == r.job.TotalTasks() }

// RemainingSpan returns T∞ of the job's unexecuted portion: the number of
// phases that still hold unexecuted tasks. Valid at step boundaries (after
// Advance).
func (r *runtime) RemainingSpan() int {
	if r.Done() {
		return 0
	}
	return len(r.job.phases) - r.phase
}

// RemainingWork implements sim.RuntimeJob.
func (r *runtime) RemainingWork() []int {
	out := append([]int(nil), r.remaining...)
	for p := r.phase + 1; p < len(r.job.phases); p++ {
		for a, v := range r.job.phases[p].Tasks {
			out[a] += v
		}
	}
	return out
}

var (
	_ sim.JobSource     = (*Job)(nil)
	_ sim.FamilySource  = (*Job)(nil)
	_ sim.WorkAppender  = (*Job)(nil)
	_ sim.RuntimeReuser = (*Job)(nil)
	_ sim.LeapRuntime   = (*runtime)(nil)
)
