package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Bench-regression mode: `kradbench -compare OLD.json -with NEW.json`
// diffs two -json reports benchmark-by-benchmark and exits non-zero when
// NEW regresses beyond the noise tolerance. This is what CI runs to judge
// BENCH_PR9.json against the recorded BENCH_PR7.json baseline without a
// human eyeballing percentages.
//
// Regression criteria, per benchmark present in BOTH reports:
//
//   - time: ns/op grew by more than -tol (fractional; default 0.40 —
//     shared CI runners are noisy, and the recorded baselines come from a
//     different machine than the checker).
//   - allocs: allocs/op grew by more than -alloc-tol AND by more than
//     a handful in absolute terms. Allocation counts are deterministic,
//     so the tolerance here is for amortized pool warm-up, not noise.
//
// Improvements and benchmarks present in only one report are reported but
// never fatal: the registry is allowed to grow between PRs.

// compareReports loads both reports, prints a row per shared benchmark,
// and returns the number of regressions.
func compareReports(oldPath, newPath string, tol, allocTol float64) (int, error) {
	load := func(path string) (benchReport, error) {
		var rep benchReport
		data, err := os.ReadFile(path)
		if err != nil {
			return rep, err
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			return rep, fmt.Errorf("%s: %w", path, err)
		}
		if len(rep.Benchmarks) == 0 {
			return rep, fmt.Errorf("%s: no benchmarks in report", path)
		}
		return rep, nil
	}
	oldRep, err := load(oldPath)
	if err != nil {
		return 0, err
	}
	newRep, err := load(newPath)
	if err != nil {
		return 0, err
	}

	oldBy := make(map[string]benchResult, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := make(map[string]benchResult, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		newBy[b.Name] = b
	}

	names := make([]string, 0, len(oldBy))
	for name := range oldBy {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("comparing %s (%s) -> %s (%s), tolerance %.0f%% time / %.0f%% allocs\n",
		oldPath, oldRep.Note, newPath, newRep.Note, 100*tol, 100*allocTol)
	regressions := 0
	for _, name := range names {
		o := oldBy[name]
		n, ok := newBy[name]
		if !ok {
			fmt.Printf("  %-46s MISSING from %s (not fatal)\n", name, newPath)
			continue
		}
		dt := n.NsPerOp/o.NsPerOp - 1
		da := 0.0
		if o.AllocsPerOp > 0 {
			da = float64(n.AllocsPerOp)/float64(o.AllocsPerOp) - 1
		}
		verdict := "ok"
		// A benchmark with single-digit allocs/op can double on one stray
		// allocation that means nothing; require absolute growth too.
		switch {
		case dt > tol:
			verdict = "REGRESSION(time)"
			regressions++
		case da > allocTol && n.AllocsPerOp-o.AllocsPerOp > 8:
			verdict = "REGRESSION(allocs)"
			regressions++
		case dt < -tol:
			verdict = "improved"
		}
		fmt.Printf("  %-46s %12.0f -> %12.0f ns/op (%+6.1f%%)  %6d -> %6d allocs (%+6.1f%%)  %s\n",
			name, o.NsPerOp, n.NsPerOp, 100*dt, o.AllocsPerOp, n.AllocsPerOp, 100*da, verdict)
	}
	for name := range newBy {
		if _, ok := oldBy[name]; !ok {
			fmt.Printf("  %-46s new in %s\n", name, newPath)
		}
	}
	return regressions, nil
}
