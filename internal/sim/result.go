package sim

import "fmt"

// JobResult is the per-job outcome of a run.
type JobResult struct {
	// ID is the engine-assigned job identifier (arrival order).
	ID int
	// Release is r(Ji).
	Release int64
	// Completion is T(Ji), the step at which the job's last task executed.
	Completion int64
	// Work[α−1] is T1(Ji, α).
	Work []int
	// Span is T∞(Ji).
	Span int
}

// Response returns R(Ji) = T(Ji) − r(Ji).
func (j JobResult) Response() int64 { return j.Completion - j.Release }

// TotalWork returns T1(Ji) = Σα T1(Ji, α).
func (j JobResult) TotalWork() int {
	n := 0
	for _, w := range j.Work {
		n += w
	}
	return n
}

// Result is the outcome of one simulation run.
type Result struct {
	// Scheduler is the name of the algorithm that produced the schedule.
	Scheduler string
	// K and Caps echo the run configuration.
	K    int
	Caps []int
	// Speed echoes the augmentation factor (≥ 1).
	Speed int
	// Makespan is T(J) = max completion time.
	Makespan int64
	// Jobs holds per-job outcomes in ID order.
	Jobs []JobResult
	// Overloaded[α−1] reports whether |J(α,t)| > Pα held at any step —
	// i.e. whether the run left the "light workload" regime of Theorem 5
	// for that category.
	Overloaded []bool
	// Trace is the per-step record, if tracing was enabled.
	Trace *Trace
}

// TotalResponse returns R(J) = Σ R(Ji).
func (r *Result) TotalResponse() int64 {
	var sum int64
	for _, j := range r.Jobs {
		sum += j.Response()
	}
	return sum
}

// MeanResponse returns R̄(J) = R(J)/|J|.
func (r *Result) MeanResponse() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	return float64(r.TotalResponse()) / float64(len(r.Jobs))
}

// TotalWork returns T1(J, α) for every α (indexed α−1), summed over jobs.
func (r *Result) TotalWork() []int {
	w := make([]int, r.K)
	for _, j := range r.Jobs {
		for a, v := range j.Work {
			w[a] += v
		}
	}
	return w
}

// AggregateSpan returns T∞(J) = Σ T∞(Ji).
func (r *Result) AggregateSpan() int {
	s := 0
	for _, j := range r.Jobs {
		s += j.Span
	}
	return s
}

// EverOverloaded reports whether any category ever exceeded its processor
// count in α-active jobs (the Theorem 6 "heavy workload" regime).
func (r *Result) EverOverloaded() bool {
	for _, o := range r.Overloaded {
		if o {
			return true
		}
	}
	return false
}

// Utilization returns, per category, the fraction of processor-steps spent
// executing tasks over the whole run: T1(J,α) / (Pα · T(J)).
func (r *Result) Utilization() []float64 {
	u := make([]float64, r.K)
	if r.Makespan == 0 {
		return u
	}
	for a, w := range r.TotalWork() {
		u[a] = float64(w) / (float64(r.Caps[a]) * float64(r.Makespan))
	}
	return u
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("Result(%s K=%d jobs=%d makespan=%d meanResp=%.2f)",
		r.Scheduler, r.K, len(r.Jobs), r.Makespan, r.MeanResponse())
}
