package metrics

import (
	"krad/internal/sim"
)

// MakespanLowerBound computes the Section 4 lower bound on the optimal
// makespan T*(J):
//
//	T*(J) ≥ max( max_i (r(Ji) + T∞(Ji)),  max_α ⌈T1(J,α)/Pα⌉ )
//
// from a run's job table (work, span, release are schedule-independent).
func MakespanLowerBound(r *sim.Result) int64 {
	var lb int64
	for _, j := range r.Jobs {
		if v := j.Release + int64(j.Span); v > lb {
			lb = v
		}
	}
	for a, w := range r.TotalWork() {
		v := ceilDiv(int64(w), int64(r.Caps[a]))
		if v > lb {
			lb = v
		}
	}
	return lb
}

// MakespanUpperBound computes the Lemma 2 guarantee for runs with no idle
// intervals:
//
//	T(J) ≤ Σα T1(J,α)/Pα + (1 − 1/Pmax)·max_i (T∞(Ji) + r(Ji))
//
// as a float (the bound is real-valued). Experiments assert the measured
// makespan never exceeds it.
func MakespanUpperBound(r *sim.Result) float64 {
	var sum float64
	for a, w := range r.TotalWork() {
		sum += float64(w) / float64(r.Caps[a])
	}
	pmax := 0
	for _, p := range r.Caps {
		if p > pmax {
			pmax = p
		}
	}
	var spanTerm int64
	for _, j := range r.Jobs {
		if v := int64(j.Span) + j.Release; v > spanTerm {
			spanTerm = v
		}
	}
	return sum + (1-1/float64(pmax))*float64(spanTerm)
}

// MakespanCompetitiveLimit returns K + 1 − 1/Pmax, the proven competitive
// ratio of K-RAD (Theorem 3) and the lower bound for any deterministic
// online non-clairvoyant algorithm (Theorem 1).
func MakespanCompetitiveLimit(k int, caps []int) float64 {
	pmax := 0
	for _, p := range caps {
		if p > pmax {
			pmax = p
		}
	}
	return float64(k) + 1 - 1/float64(pmax)
}

// ResponseLowerBound computes the Section 6 lower bound on the optimal
// total response time R*(J)·|J| for a batched job set:
//
//	R*(J) ≥ max( T∞(J),  max_α swa(J,α) )
//
// (total response time form; divide by |J| for the mean).
func ResponseLowerBound(r *sim.Result) float64 {
	lb := float64(r.AggregateSpan())
	works := make([]int, len(r.Jobs))
	for a := 0; a < r.K; a++ {
		for i, j := range r.Jobs {
			works[i] = j.Work[a]
		}
		if v := SquashedWorkArea(works, r.Caps[a]); v > lb {
			lb = v
		}
	}
	return lb
}

// ResponseUpperBoundLight computes the right-hand side of Inequality (5),
// the Theorem 5 guarantee for batched sets under light workload:
//
//	R(J) ≤ (2 − 2/(|J|+1))·Σα swa(J,α) + T∞(J)
func ResponseUpperBoundLight(r *sim.Result) float64 {
	n := float64(len(r.Jobs))
	c := 2 - 2/(n+1)
	var swaSum float64
	works := make([]int, len(r.Jobs))
	for a := 0; a < r.K; a++ {
		for i, j := range r.Jobs {
			works[i] = j.Work[a]
		}
		swaSum += SquashedWorkArea(works, r.Caps[a])
	}
	return c*swaSum + float64(r.AggregateSpan())
}

// ResponseCompetitiveLimitLight returns 2K + 1 − 2K/(|J|+1), the Theorem 5
// competitive ratio under light workload.
func ResponseCompetitiveLimitLight(k, n int) float64 {
	return float64(2*k) + 1 - float64(2*k)/float64(n+1)
}

// ResponseCompetitiveLimit returns 4K + 1 − 4K/(|J|+1), the Theorem 6
// competitive ratio for arbitrary batched workloads.
func ResponseCompetitiveLimit(k, n int) float64 {
	return float64(4*k) + 1 - float64(4*k)/float64(n+1)
}

// Ratios bundles a run's measured-versus-bound report.
type Ratios struct {
	// Makespan is T(J); MakespanLB the Section 4 lower bound; their
	// quotient MakespanRatio upper-bounds the true competitive ratio.
	Makespan      int64
	MakespanLB    int64
	MakespanRatio float64
	// MakespanBound is K + 1 − 1/Pmax.
	MakespanBound float64

	// TotalResponse is R(J); ResponseLB the Section 6 lower bound; their
	// quotient ResponseRatio upper-bounds the true MRT competitive ratio.
	TotalResponse int64
	ResponseLB    float64
	ResponseRatio float64
	// ResponseBound is the applicable theorem bound: Theorem 5's if the
	// run stayed in the light-workload regime, Theorem 6's otherwise.
	ResponseBound float64
	// LightLoad records which regime applied.
	LightLoad bool
}

// ComputeRatios evaluates a run against all the paper's bounds.
func ComputeRatios(r *sim.Result) Ratios {
	out := Ratios{
		Makespan:      r.Makespan,
		MakespanLB:    MakespanLowerBound(r),
		MakespanBound: MakespanCompetitiveLimit(r.K, r.Caps),
		TotalResponse: r.TotalResponse(),
		ResponseLB:    ResponseLowerBound(r),
		LightLoad:     !r.EverOverloaded(),
	}
	if out.MakespanLB > 0 {
		out.MakespanRatio = float64(out.Makespan) / float64(out.MakespanLB)
	}
	if out.ResponseLB > 0 {
		out.ResponseRatio = float64(out.TotalResponse) / out.ResponseLB
	}
	if out.LightLoad {
		out.ResponseBound = ResponseCompetitiveLimitLight(r.K, len(r.Jobs))
	} else {
		out.ResponseBound = ResponseCompetitiveLimit(r.K, len(r.Jobs))
	}
	return out
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
