package replicate

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"krad/internal/dag"
	"krad/internal/journal"
	"krad/internal/sim"
)

func testGraph() *dag.Graph { return dag.UniformChain(1, 3, 1) }

// testFrames is a representative frame sequence: one of every type a live
// stream carries, in a plausible order.
func testFrames(t *testing.T) []Frame {
	t.Helper()
	g := testGraph()
	cp := sim.EngineCheckpoint{Now: 7, Makespan: 7, SchedState: []byte(`{"x":1}`)}
	return []Frame{
		{T: FrameHello, Epoch: 3, Shards: 2},
		{T: FrameHelloAck, Epoch: 3, Next: []int64{1, 5}},
		{T: FrameSnap, Epoch: 3, Shard: 1, Seq: 4, Recs: []journal.Record{
			{Type: journal.TypeSnap, Snap: &cp, Seq: 4},
		}},
		{T: FrameRecs, Epoch: 3, Shard: 0, Seq: 1, Recs: []journal.Record{
			{Type: journal.TypeAdmit, Base: 0, Jobs: []journal.JobRecord{{Release: 2, Graph: g}}},
			journal.StepRecord(1),
			journal.StepsRecord(3, 4),
			journal.CancelRecord(0),
		}},
		{T: FrameHeartbeat, Epoch: 3},
		{T: FrameAck, Epoch: 3, Next: []int64{5, 5}},
		{T: FrameFence, Epoch: 4},
	}
}

func encodeStream(t *testing.T, frames []Frame) (full []byte, ends []int64) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMagic(&buf); err != nil {
		t.Fatal(err)
	}
	ends = make([]int64, len(frames))
	for i, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		ends[i] = int64(buf.Len())
	}
	return buf.Bytes(), ends
}

// framesEqual compares frames by their canonical encoding: JSON marshal
// is deterministic, so byte equality is exactly "the peer would see the
// same thing" (and sidesteps dag.Graph's lazily memoized internals, which
// reflect.DeepEqual would trip over).
func framesEqual(t *testing.T, got, want []Frame) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i := range got {
		g, gerr := EncodeFrame(got[i])
		w, werr := EncodeFrame(want[i])
		if gerr != nil || werr != nil {
			t.Fatalf("frame %d re-encode: got %v, want %v", i, gerr, werr)
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("frame %d mismatch:\n got %s\nwant %s", i, g, w)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	want := testFrames(t)
	full, _ := encodeStream(t, want)
	br := bufio.NewReader(bytes.NewReader(full))
	if err := ReadMagic(br); err != nil {
		t.Fatal(err)
	}
	var got []Frame
	for {
		f, err := ReadFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, f)
	}
	framesEqual(t, got, want)
}

// TestTornFrameEveryPrefix cuts the stream after every possible prefix
// length — the mirror of the journal's torn-tail test — and asserts the
// exact decoded-frame count: all frames that fit the prefix entirely,
// never more or fewer, with the remainder reported as a torn tail rather
// than an error.
func TestTornFrameEveryPrefix(t *testing.T) {
	want := testFrames(t)
	full, ends := encodeStream(t, want)

	for cut := 0; cut <= len(full); cut++ {
		frames, goodLen, err := DecodeStream(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantN := 0
		for _, e := range ends {
			if e <= int64(cut) {
				wantN++
			}
		}
		framesEqual(t, frames, want[:wantN])
		wantGood := int64(len(streamMagic))
		if wantN > 0 {
			wantGood = ends[wantN-1]
		}
		if cut < len(streamMagic) {
			wantGood = 0
		}
		if goodLen != wantGood {
			t.Fatalf("cut %d: goodLen %d, want %d", cut, goodLen, wantGood)
		}

		// The incremental reader must agree: same frames, then a clean
		// EOF at a frame boundary or ErrUnexpectedEOF mid-frame.
		if cut < len(streamMagic) {
			continue
		}
		br := bufio.NewReader(bytes.NewReader(full[:cut]))
		if err := ReadMagic(br); err != nil {
			t.Fatalf("cut %d: magic: %v", cut, err)
		}
		var got []Frame
		var rerr error
		for {
			f, err := ReadFrame(br)
			if err != nil {
				rerr = err
				break
			}
			got = append(got, f)
		}
		framesEqual(t, got, want[:wantN])
		if int64(cut) == wantGood {
			if rerr != io.EOF {
				t.Fatalf("cut %d at frame boundary: ReadFrame error %v, want io.EOF", cut, rerr)
			}
		} else if !errors.Is(rerr, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d mid-frame: ReadFrame error %v, want io.ErrUnexpectedEOF", cut, rerr)
		}
	}
}

// TestFrameCorruptionDetected flips every byte of the stream in turn and
// asserts no flip yields phantom frames: each either fails loudly or
// decodes a strict prefix of the original frames.
func TestFrameCorruptionDetected(t *testing.T) {
	want := testFrames(t)
	full, _ := encodeStream(t, want)
	for i := range full {
		mut := bytes.Clone(full)
		mut[i] ^= 0xff
		frames, _, err := DecodeStream(mut)
		if err != nil {
			continue
		}
		if len(frames) > len(want) {
			t.Fatalf("flip at %d decoded %d frames from a %d-frame stream", i, len(frames), len(want))
		}
		framesEqual(t, frames, want[:len(frames)])
	}
}

func TestValidateRejectsMalformedFrames(t *testing.T) {
	g := testGraph()
	bad := []Frame{
		{T: "mystery", Epoch: 1},
		{T: FrameHello, Epoch: 0, Shards: 1},                                            // missing epoch
		{T: FrameHello, Epoch: 1},                                                       // missing shard count
		{T: FrameHello, Epoch: 1, Shards: 2, Seq: 9},                                    // stray cursor
		{T: FrameHelloAck, Epoch: 1},                                                    // no cursors
		{T: FrameAck, Epoch: 1, Next: []int64{0}},                                       // cursor < 1
		{T: FrameRecs, Epoch: 1, Seq: 1},                                                // no records
		{T: FrameRecs, Epoch: 1, Seq: 0, Recs: []journal.Record{journal.StepRecord(1)}}, // missing seq
		{T: FrameRecs, Epoch: 1, Seq: 1, Recs: []journal.Record{
			{Type: journal.TypeSnap, Snap: &sim.EngineCheckpoint{}},
		}}, // snapshot smuggled into a recs frame
		{T: FrameSnap, Epoch: 1, Seq: 3, Recs: []journal.Record{journal.StepRecord(1)}}, // not a snap record
		{T: FrameSnap, Epoch: 1, Seq: 3, Recs: []journal.Record{
			{Type: journal.TypeSnap, Snap: &sim.EngineCheckpoint{}, Seq: 4},
		}}, // cursor disagreement
		{T: FrameHeartbeat, Epoch: 1, Shard: 1, Seq: 2}, // stray fields
		{T: FrameFence, Epoch: 2, Recs: []journal.Record{
			{Type: journal.TypeAdmit, Base: 0, Jobs: []journal.JobRecord{{Graph: g}}},
		}}, // stray records
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("frame %d (%s) validated, want error: %+v", i, f.T, f)
		}
		if _, err := EncodeFrame(f); err == nil {
			t.Errorf("frame %d (%s) encoded, want error", i, f.T)
		}
	}
}

func TestReadMagicRejectsForeignStreams(t *testing.T) {
	br := bytes.NewReader([]byte("KRADWAL\x01rest"))
	if err := ReadMagic(br); !errors.Is(err, ErrStreamVersion) {
		t.Fatalf("foreign magic: %v, want ErrStreamVersion", err)
	}
}
