package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"krad/internal/sched"
)

// deqInput draws a random desire vector and capacity from a seed.
func deqInput(seed int64) ([]int, int, int) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(20)
	desires := make([]int, n)
	for i := range desires {
		desires[i] = 1 + rng.Intn(30)
	}
	return desires, rng.Intn(40), rng.Intn(1000) - 500
}

// TestQuickDeqInvariants checks the DEQ contract on random inputs:
// Σ allot ≤ p, 0 ≤ allot[i] ≤ desire[i], work conservation when demand
// exceeds capacity, and the deprived-equality property: jobs not fully
// satisfied receive shares within one unit of each other and at least as
// large as any satisfied job's allotment... (the last in the weak form:
// deprived shares ≥ the fair share of their recursion level).
func TestQuickDeqInvariants(t *testing.T) {
	f := func(seed int64) bool {
		desires, p, rot := deqInput(seed)
		allot := Deq(desires, p, rot)
		if len(allot) != len(desires) {
			return false
		}
		total, demand := 0, 0
		for i := range desires {
			if allot[i] < 0 || allot[i] > desires[i] {
				return false
			}
			total += allot[i]
			demand += desires[i]
		}
		if total > p {
			return false
		}
		// Work conservation: either everyone is satisfied or every
		// processor is allotted.
		if total < p && total < demand {
			return false
		}
		// Deprived jobs (allot < desire) must have near-equal shares.
		min, max := 1<<30, -1
		for i := range desires {
			if allot[i] < desires[i] {
				if allot[i] < min {
					min = allot[i]
				}
				if allot[i] > max {
					max = allot[i]
				}
			}
		}
		if max >= 0 && max-min > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeqMonotoneInP: giving DEQ more processors never reduces the
// total allotment.
func TestQuickDeqMonotoneInP(t *testing.T) {
	f := func(seed int64) bool {
		desires, p, rot := deqInput(seed)
		a := Deq(desires, p, rot)
		b := Deq(desires, p+1, rot)
		return sum(b) >= sum(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeqSatisfiedExactness: any job whose desire is at most the
// final fair share is allotted exactly its desire.
func TestQuickDeqSatisfiedExactness(t *testing.T) {
	f := func(seed int64) bool {
		desires, p, rot := deqInput(seed)
		if len(desires) == 0 {
			return true
		}
		allot := Deq(desires, p, rot)
		// If every desire ≤ p/n, everyone must be exactly satisfied.
		fair := p / len(desires)
		alwaysSmall := true
		for _, d := range desires {
			if d > fair {
				alwaysSmall = false
				break
			}
		}
		if alwaysSmall {
			for i := range desires {
				if allot[i] != desires[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickRADValidAllotments: RAD, driven by random desire streams across
// many steps, always emits allotments within capacity and desire, and at
// most one processor per job during round-robin phases.
func TestQuickRADValidAllotments(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRAD()
		p := 1 + rng.Intn(8)
		n := 1 + rng.Intn(24)
		for step := int64(1); step <= 40; step++ {
			jobs := make([]sched.CatJob, 0, n)
			for i := 0; i < n; i++ {
				if rng.Intn(4) == 0 {
					continue // job inactive this step
				}
				jobs = append(jobs, sched.CatJob{ID: i, Desire: 1 + rng.Intn(10)})
			}
			allot := r.Allot(step, jobs, p)
			total := 0
			for i := range jobs {
				if allot[i] < 0 || allot[i] > jobs[i].Desire {
					return false
				}
				total += allot[i]
			}
			if total > p {
				return false
			}
			if len(jobs) > 0 && total == 0 {
				return false // work conservation: active jobs, idle machine
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickKRADMatchesPerCategoryRAD: K-RAD's composite allotment for each
// category equals what a standalone RAD with the same history produces.
func TestQuickKRADMatchesPerCategoryRAD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		caps := make([]int, k)
		for i := range caps {
			caps[i] = 1 + rng.Intn(6)
		}
		composite := NewKRAD(k)
		standalone := make([]*RAD, k)
		for i := range standalone {
			standalone[i] = NewRAD()
		}
		n := 1 + rng.Intn(10)
		for step := int64(1); step <= 20; step++ {
			jobs := make([]sched.JobView, n)
			for i := range jobs {
				d := make([]int, k)
				for a := range d {
					d[a] = rng.Intn(5)
				}
				jobs[i] = sched.JobView{ID: i, Desire: d}
			}
			got := composite.Allot(step, jobs, caps)
			for a := 0; a < k; a++ {
				var catJobs []sched.CatJob
				var idx []int
				for i, j := range jobs {
					if j.Desire[a] > 0 {
						catJobs = append(catJobs, sched.CatJob{ID: j.ID, Desire: j.Desire[a]})
						idx = append(idx, i)
					}
				}
				want := standalone[a].Allot(step, catJobs, caps[a])
				for j := range catJobs {
					if got[idx[j]][a] != want[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
