package moldable_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/moldable"
	"krad/internal/sched"
	"krad/internal/sim"
)

// FuzzMoldableSpec drives arbitrary JSON through the wire-decoding path
// kradd and the journal share: decode, validate with FromSpec, and for
// every accepted spec check the canonical-form invariants — Spec()
// round-trips through FromSpec to an equal spec, derived quantities agree,
// and a small engine run completes without panicking. FromSpec must reject
// or accept, never crash.
func FuzzMoldableSpec(f *testing.F) {
	seed := func(s moldable.Spec) {
		b, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(moldable.Spec{K: 1, Tasks: []moldable.TaskSpec{
		{Cat: 1, Work: 4, Max: 2, Curve: moldable.CurveSpec{Type: moldable.CurvePowerLaw, Alpha: 0.5}},
	}})
	seed(moldable.Spec{K: 2, Name: "fz", Tasks: []moldable.TaskSpec{
		{Cat: 1, Work: 9, Max: 4, Curve: moldable.CurveSpec{Type: moldable.CurveAmdahl, Serial: 0.25}},
		{Cat: 2, Work: 3, Max: 1, Curve: moldable.CurveSpec{Type: moldable.CurvePowerLaw, Alpha: 1}},
	}, Edges: [][2]int{{0, 1}}})
	f.Add([]byte(`{"k":1,"tasks":[{"cat":1,"work":1,"max":1,"curve":{"type":"amdahl"}}]}`))
	f.Add([]byte(`{"k":0}`))
	f.Add([]byte(`{"k":1,"tasks":[{"cat":1,"work":1,"max":1,"curve":{"type":"powerlaw","alpha":2}}],"edges":[[0,0]]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var spec moldable.Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		// Keep pathological-but-valid inputs cheap to execute.
		if len(spec.Tasks) > 64 || len(spec.Edges) > 256 {
			return
		}
		total := 0
		for _, ts := range spec.Tasks {
			if ts.Work > 1<<16 || ts.Max > 1<<10 {
				return
			}
			total += ts.Work
		}
		if total > 1<<18 {
			return
		}
		job, err := moldable.FromSpec(spec)
		if err != nil {
			return
		}
		rt := job.Spec()
		job2, err := moldable.FromSpec(rt)
		if err != nil {
			t.Fatalf("canonical spec rejected on re-validation: %v", err)
		}
		if !reflect.DeepEqual(rt, job2.Spec()) {
			t.Fatal("Spec() is not a fixed point of FromSpec")
		}
		if job.Span() != job2.Span() || job.TotalTasks() != job2.TotalTasks() ||
			!reflect.DeepEqual(job.WorkVector(), job2.WorkVector()) {
			t.Fatal("round-tripped job derived quantities diverged")
		}
		caps := make([]int, job.K())
		for i := range caps {
			caps[i] = 3
		}
		res, err := sim.Run(sim.Config{
			K: job.K(), Caps: caps,
			Scheduler:          sched.WithFloors(core.NewKRAD(job.K())),
			Pick:               dag.PickFIFO,
			ValidateAllotments: true,
		}, []sim.JobSpec{{Source: job}})
		if err != nil {
			t.Fatalf("engine run on a validated spec failed: %v", err)
		}
		if res.Makespan < int64(job.Span()) {
			// Span is an optimistic critical path; ValidateAllotments plus
			// this check catch accounting bugs the fuzzer digs up.
			t.Fatalf("makespan %d below span %d", res.Makespan, job.Span())
		}
	})
}
