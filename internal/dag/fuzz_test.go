package dag

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON ensures the decoder never panics on arbitrary input and
// that anything it accepts passes full validation — decode is the trust
// boundary for job sets loaded from disk (kradsim -load).
func FuzzGraphJSON(f *testing.F) {
	good, _ := json.Marshal(Figure1())
	f.Add(good)
	f.Add([]byte(`{"k":2,"categories":[1,2],"edges":[[0,1]]}`))
	f.Add([]byte(`{"k":1,"categories":[1,1,1],"edges":[[0,1],[1,2],[2,0]]}`))
	f.Add([]byte(`{"k":-1}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejected: fine
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid graph: %v", err)
		}
		// Accepted graphs must support the whole metric surface.
		_ = g.Span()
		_ = g.WorkVector()
		if _, err := g.TopoOrder(); err != nil {
			t.Fatalf("accepted graph has no topo order: %v", err)
		}
	})
}

// FuzzInstanceExecution drives a runtime instance with arbitrary
// allotment sequences and checks it can never execute a task twice, exceed
// the graph's task count, or break precedence.
func FuzzInstanceExecution(f *testing.F) {
	f.Add(int64(1), []byte{1, 2, 3, 0, 5})
	f.Add(int64(42), []byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, seed int64, allots []byte) {
		g := randomGraph(seed)
		policy := PickPolicy(((int(seed) % 5) + 5) % 5)
		in := NewInstance(g, policy, seed)
		seen := make(map[TaskID]bool)
		step := make(map[TaskID]int)
		for i, b := range allots {
			if in.Done() {
				break
			}
			for c := 1; c <= g.K(); c++ {
				n := int(b) % 5
				for _, id := range in.Execute(Category(c), n) {
					if seen[id] {
						t.Fatalf("task %d executed twice", id)
					}
					seen[id] = true
					step[id] = i
				}
			}
			in.Advance()
		}
		if in.Executed() != len(seen) {
			t.Fatalf("Executed()=%d but %d unique tasks ran", in.Executed(), len(seen))
		}
		for u := range seen {
			for _, v := range g.Successors(u) {
				if seen[v] && step[v] <= step[u] {
					t.Fatalf("edge %d→%d violated", u, v)
				}
			}
		}
	})
}
