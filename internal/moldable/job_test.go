package moldable_test

import (
	"strings"
	"testing"

	"krad/internal/moldable"
	"krad/internal/sim"
)

// pl returns a power-law curve spec for test tables.
func pl(alpha float64) moldable.CurveSpec {
	return moldable.CurveSpec{Type: moldable.CurvePowerLaw, Alpha: alpha}
}

// chainSpec builds an n-task chain in category cat, each task with the
// given work, max procs and a linear curve.
func chainSpec(k, cat, n, work, max int) moldable.Spec {
	s := moldable.Spec{K: k, Name: "chain"}
	for v := 0; v < n; v++ {
		s.Tasks = append(s.Tasks, moldable.TaskSpec{Cat: cat, Work: work, Max: max, Curve: pl(1)})
		if v > 0 {
			s.Edges = append(s.Edges, [2]int{v - 1, v})
		}
	}
	return s
}

// TestFromSpecRejects exercises every located validation error: the
// message must name the offending task or edge so kradd can return it to
// the client verbatim.
func TestFromSpecRejects(t *testing.T) {
	ok := moldable.TaskSpec{Cat: 1, Work: 4, Max: 2, Curve: pl(1)}
	cases := []struct {
		name string
		spec moldable.Spec
		want string
	}{
		{"zero-k", moldable.Spec{K: 0, Tasks: []moldable.TaskSpec{ok}}, "k = 0"},
		{"no-tasks", moldable.Spec{K: 1}, "no tasks"},
		{"bad-cat-low", moldable.Spec{K: 2, Tasks: []moldable.TaskSpec{ok, {Cat: 0, Work: 1, Max: 1, Curve: pl(1)}}},
			"task 1: category 0 out of range 1..2"},
		{"bad-cat-high", moldable.Spec{K: 2, Tasks: []moldable.TaskSpec{{Cat: 3, Work: 1, Max: 1, Curve: pl(1)}}},
			"task 0: category 3 out of range"},
		{"zero-work", moldable.Spec{K: 1, Tasks: []moldable.TaskSpec{{Cat: 1, Work: 0, Max: 1, Curve: pl(1)}}},
			"task 0: work 0"},
		{"zero-max", moldable.Spec{K: 1, Tasks: []moldable.TaskSpec{{Cat: 1, Work: 1, Max: 0, Curve: pl(1)}}},
			"task 0: max processors 0"},
		{"huge-max", moldable.Spec{K: 1, Tasks: []moldable.TaskSpec{{Cat: 1, Work: 1, Max: 1 << 20, Curve: pl(1)}}},
			"exceeds the 65536 limit"},
		{"bad-curve", moldable.Spec{K: 1, Tasks: []moldable.TaskSpec{{Cat: 1, Work: 1, Max: 1, Curve: moldable.CurveSpec{Type: "nope"}}}},
			"task 0: curve: unknown curve type"},
		{"bad-alpha", moldable.Spec{K: 1, Tasks: []moldable.TaskSpec{{Cat: 1, Work: 1, Max: 1, Curve: pl(2)}}},
			"task 0: curve: powerlaw alpha 2"},
		{"edge-range", moldable.Spec{K: 1, Tasks: []moldable.TaskSpec{ok, ok}, Edges: [][2]int{{0, 2}}},
			"edge 0: endpoints [0, 2] out of range 0..1"},
		{"edge-negative", moldable.Spec{K: 1, Tasks: []moldable.TaskSpec{ok}, Edges: [][2]int{{-1, 0}}},
			"edge 0: endpoints"},
		{"self-loop", moldable.Spec{K: 1, Tasks: []moldable.TaskSpec{ok, ok}, Edges: [][2]int{{1, 1}}},
			"edge 0: self-loop on task 1"},
		{"cycle", moldable.Spec{K: 1, Tasks: []moldable.TaskSpec{ok, ok, ok},
			Edges: [][2]int{{0, 1}, {1, 2}, {2, 0}}}, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := moldable.FromSpec(tc.spec)
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestJobDerivedQuantities pins WorkVector, Span, TotalTasks and the
// molding caps on a hand-checked diamond: a fork in category 1 feeding a
// join in category 2.
func TestJobDerivedQuantities(t *testing.T) {
	spec := moldable.Spec{
		K:    2,
		Name: "diamond",
		Tasks: []moldable.TaskSpec{
			{Cat: 1, Work: 8, Max: 4, Curve: pl(1)},    // source: 8/4 = 2 steps at best
			{Cat: 1, Work: 6, Max: 16, Curve: pl(0.5)}, // branch: useful 4, opt ceil(6/4)=2
			{Cat: 2, Work: 9, Max: 3, Curve: pl(1)},    // branch: ceil(9/3) = 3
			{Cat: 2, Work: 5, Max: 1, Curve: pl(1)},    // sink: 5 steps always
		},
		Edges: [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
	}
	j, err := moldable.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.WorkVector(); got[0] != 14 || got[1] != 14 {
		t.Errorf("WorkVector = %v, want [14 14]", got)
	}
	if got := j.TotalTasks(); got != 28 {
		t.Errorf("TotalTasks = %d, want 28 (total serial work)", got)
	}
	// Critical path in optimistic durations: 0→2→3 = 2 + 3 + 5 = 10
	// (0→1→3 = 2 + ceil(6/s(16)) + 5 = 2 + 2 + 5 = 9).
	if got := j.Span(); got != 10 {
		t.Errorf("Span = %d, want 10", got)
	}
	if got := j.NumTasks(); got != 4 {
		t.Errorf("NumTasks = %d, want 4", got)
	}
	// Molding caps: linear curves cap at Max; √p caps at 4.
	for v, want := range []int{4, 4, 3, 1} {
		if got := j.Useful(v); got != want {
			t.Errorf("Useful(%d) = %d, want %d", v, got, want)
		}
	}
	if j.Family() != sim.FamilyMoldable {
		t.Errorf("Family = %v, want moldable", j.Family())
	}
	if j.Name() != "diamond" || j.K() != 2 {
		t.Errorf("Name/K = %q/%d", j.Name(), j.K())
	}
}

// TestSpecRoundTrip checks Spec() returns the canonical wire form: it
// re-validates, produces an equivalent job, and never aliases the
// original's slices (mutating one must not corrupt the other).
func TestSpecRoundTrip(t *testing.T) {
	orig := chainSpec(2, 1, 5, 10, 4)
	orig.Tasks[2].Cat = 2
	j, err := moldable.FromSpec(orig)
	if err != nil {
		t.Fatal(err)
	}
	rt := j.Spec()
	j2, err := moldable.FromSpec(rt)
	if err != nil {
		t.Fatalf("round-tripped spec rejected: %v", err)
	}
	if j2.Span() != j.Span() || j2.TotalTasks() != j.TotalTasks() {
		t.Fatalf("round-tripped job differs: span %d vs %d, total %d vs %d",
			j2.Span(), j.Span(), j2.TotalTasks(), j.TotalTasks())
	}
	// Mutate the returned spec; the job must be unaffected.
	rt.Tasks[0].Work = 999
	rt.Edges[0] = [2]int{4, 0}
	rt2 := j.Spec()
	if rt2.Tasks[0].Work != 10 || rt2.Edges[0] != [2]int{0, 1} {
		t.Fatal("Spec() aliases internal state: mutation leaked through")
	}
	// Mutating the caller's original spec must not corrupt the job either.
	orig.Tasks[0].Work = 777
	if j.Spec().Tasks[0].Work != 10 {
		t.Fatal("FromSpec aliased the caller's task slice")
	}
}

// TestUnnamedJob covers the default name.
func TestUnnamedJob(t *testing.T) {
	s := chainSpec(1, 1, 1, 1, 1)
	s.Name = ""
	j, err := moldable.FromSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if j.Name() != "moldable" {
		t.Fatalf("Name() = %q, want %q", j.Name(), "moldable")
	}
}
