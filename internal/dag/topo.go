package dag

import "fmt"

// TopoOrder returns the tasks in a topological order (Kahn's algorithm,
// smallest-ID-first among ready tasks, so the order is deterministic).
// It returns an error naming one task on a cycle if the graph is cyclic.
func (g *Graph) TopoOrder() ([]TaskID, error) {
	n := g.NumTasks()
	indeg := make([]int32, n)
	for v := 0; v < n; v++ {
		indeg[v] = int32(len(g.pred[v]))
	}
	// A simple FIFO queue keeps the order deterministic; tasks enter in ID
	// order initially and in completion order afterwards.
	queue := make([]TaskID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, TaskID(v))
		}
	}
	order := make([]TaskID, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		for v := 0; v < n; v++ {
			if indeg[v] > 0 {
				return nil, fmt.Errorf("dag: graph %q has a cycle through task %d", g.name, v)
			}
		}
	}
	return order, nil
}

// Levels partitions the tasks into precedence levels: level 0 holds the
// sources, and each task sits one past its deepest predecessor. This is the
// schedule an infinite-processor machine would follow, so len(Levels()) is
// the span for valid graphs.
func (g *Graph) Levels() ([][]TaskID, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, g.NumTasks())
	max := 0
	for _, u := range order {
		for _, v := range g.succ[u] {
			if d := depth[u] + 1; d > depth[v] {
				depth[v] = d
			}
		}
		if depth[u] > max {
			max = depth[u]
		}
	}
	if g.NumTasks() == 0 {
		return nil, nil
	}
	levels := make([][]TaskID, max+1)
	for _, u := range order {
		levels[depth[u]] = append(levels[depth[u]], u)
	}
	return levels, nil
}

// heights returns, for every task, the number of vertices on the longest
// chain starting at that task (inclusive), i.e. its remaining-span
// contribution. The result is memoized on the graph (mutators invalidate
// it) and shared read-only by Span, the critical-path task pickers, and
// every Instance — callers must not modify it.
func (g *Graph) heights() ([]int32, error) {
	if m := g.hmemo.Load(); m != nil {
		return m.h, m.err
	}
	h, err := g.computeHeights()
	g.hmemo.Store(&heightsResult{h: h, err: err})
	return h, err
}

// computeHeights is the uncached heights computation.
func (g *Graph) computeHeights() ([]int32, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	h := make([]int32, g.NumTasks())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		best := int32(0)
		for _, v := range g.succ[u] {
			if h[v] > best {
				best = h[v]
			}
		}
		h[u] = best + 1
	}
	return h, nil
}
