package dag

import (
	"encoding/json"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := Figure1()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name() != orig.Name() || back.K() != orig.K() {
		t.Error("name/k not preserved")
	}
	if back.NumTasks() != orig.NumTasks() || back.NumEdges() != orig.NumEdges() {
		t.Fatal("size not preserved")
	}
	for id := 0; id < orig.NumTasks(); id++ {
		if back.Category(TaskID(id)) != orig.Category(TaskID(id)) {
			t.Errorf("task %d category changed", id)
		}
		if len(back.Successors(TaskID(id))) != len(orig.Successors(TaskID(id))) {
			t.Errorf("task %d successors changed", id)
		}
	}
	if back.Span() != orig.Span() {
		t.Error("span changed across round trip")
	}
}

func TestJSONRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"k":0,"categories":[],"edges":[]}`,                       // bad k
		`{"k":2,"categories":[3],"edges":[]}`,                      // category out of range
		`{"k":1,"categories":[1,1],"edges":[[0,0]]}`,               // self edge
		`{"k":1,"categories":[1,1],"edges":[[0,5]]}`,               // dangling edge
		`{"k":1,"categories":[1,1],"edges":[[0,1],[0,1]]}`,         // duplicate
		`{"k":1,"categories":[1,1,1],"edges":[[0,1],[1,2],[2,0]]}`, // cycle
		`not json`,
	}
	for _, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("accepted %s", c)
		}
	}
}

func TestJSONDeterministic(t *testing.T) {
	g := MapReduce(2, 4, 2, 1, 1, 2, 2)
	a, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("encoding not deterministic")
	}
}
