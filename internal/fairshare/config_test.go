package fairshare

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseConfig(t *testing.T) {
	in := `
# fleet fair-share policy
halflife 2048
default acme/batch

queue acme           deserved=4 weight=2
queue acme/ml        deserved=2 weight=3 priority=1
queue acme/batch     # weight defaults to 1
queue beta           weight=0.5
`
	cfg, err := ParseConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		HalfLife: 2048,
		Default:  "acme/batch",
		Nodes: []NodeConfig{
			{Name: "acme", Deserved: 4, Weight: 2, Children: []NodeConfig{
				{Name: "ml", Deserved: 2, Weight: 3, Priority: 1},
				{Name: "batch", Weight: 1},
			}},
			{Name: "beta", Weight: 0.5},
		},
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("ParseConfig:\n got %+v\nwant %+v", cfg, want)
	}
	// The parsed config must compile.
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Default().Path != "acme/batch" {
		t.Errorf("default leaf %q", tr.Default().Path)
	}
	if l, ok := tr.Lookup("acme/ml"); !ok || l.Priority != 1 || l.Weight != 3 {
		t.Errorf("acme/ml leaf %+v", l)
	}
}

// TestParseConfigChildBeforeParent checks declaration order does not
// matter for nesting: a child line may precede (or omit) its parent.
func TestParseConfigChildBeforeParent(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader("queue acme/ml weight=2\nqueue acme deserved=3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Nodes) != 1 || cfg.Nodes[0].Name != "acme" || cfg.Nodes[0].Deserved != 3 {
		t.Fatalf("nodes %+v", cfg.Nodes)
	}
	if kids := cfg.Nodes[0].Children; len(kids) != 1 || kids[0].Name != "ml" || kids[0].Weight != 2 {
		t.Fatalf("children %+v", cfg.Nodes[0].Children)
	}

	// Orphan intermediate: the undeclared parent aggregates its children.
	cfg, err = ParseConfig(strings.NewReader("queue acme/ml weight=2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Nodes) != 1 || cfg.Nodes[0].Weight != 0 || len(cfg.Nodes[0].Children) != 1 {
		t.Fatalf("orphan parent %+v", cfg.Nodes)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown directive", "banana 3\n", "unknown directive"},
		{"halflife junk", "halflife soon\n", "halflife"},
		{"halflife zero", "halflife 0\n", "halflife"},
		{"halflife dup", "halflife 5\nhalflife 6\n", "duplicate halflife"},
		{"default junk path", "default a b\n", "default takes one path"},
		{"default dup", "default a\ndefault b\n", "duplicate default"},
		{"queue no path", "queue\n", "queue takes a path"},
		{"queue dup", "queue a\nqueue a\n", "duplicate queue"},
		{"bad attribute", "queue a color=red\n", "unknown attribute"},
		{"bad deserved", "queue a deserved=lots\n", "deserved"},
		{"negative weight", "queue a weight=-2\n", "weight"},
		{"huge weight", "queue a weight=1e300\n", "weight"},
		{"bad priority", "queue a priority=1.5\n", "priority"},
		{"deep path", "queue a/b/c/d\n", "deeper than 3 levels"},
		{"bad segment", "queue a//b\n", "segment"},
		{"dup attribute", "queue a weight=1 weight=2\n", "bad attribute"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseConfig(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseConfig(%q) err = %v, want containing %q", c.in, err, c.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), "line ") {
				t.Errorf("error not located by line: %v", err)
			}
		})
	}
}

// FuzzFairConfig checks the -fair-config parser never panics and that
// every accepted configuration compiles into a valid tree whose shares
// sum within capacity.
func FuzzFairConfig(f *testing.F) {
	f.Add("queue acme weight=2\nqueue beta weight=1\n")
	f.Add("halflife 64\ndefault d\nqueue a/b deserved=1.5 weight=0 priority=-3\n")
	f.Add("# only comments\n\n")
	f.Add("queue a\nqueue a/b\n")
	f.Add("halflife 99999999999999999999\n")
	f.Add("queue \x00\n")
	f.Fuzz(func(t *testing.T, in string) {
		cfg, err := ParseConfig(strings.NewReader(in))
		if err != nil {
			return
		}
		tr, err := New(cfg)
		if err != nil {
			// Parse accepted what New rejects: the parser must be at
			// least as strict as the compiler.
			t.Fatalf("parsed config does not compile: %v\ninput: %q", err, in)
		}
		states := make(map[string]State)
		for i, l := range tr.Leaves() {
			states[l.Path] = State{InFlight: i % 3, Usage: float64(i) * 1.5, Requesting: i%2 == 0}
		}
		const capacity = 17
		shares := tr.Shares(states, capacity)
		sum := 0
		for path, v := range shares {
			if v < 0 {
				t.Fatalf("negative share %d for %q", v, path)
			}
			sum += v
		}
		if sum > capacity {
			t.Fatalf("shares sum %d exceeds capacity %d: %v", sum, capacity, shares)
		}
	})
}
