package server

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// Job IDs are namespaced so GET/DELETE route straight to the owning shard
// without broadcast: id = shard<<shardIDBits | local. Shard 0's IDs
// coincide with its engine-local IDs, so a single-shard service is
// bit-for-bit compatible with the pre-sharding wire format. The scheme
// assumes a 64-bit int (every platform the daemon targets) and fewer than
// 2^32 jobs per shard.
const shardIDBits = 32

func composeID(shard, local int) int { return shard<<shardIDBits | local }

// ShardOf returns the shard index encoded in a namespaced job ID.
// Exported so clients (examples/liveclient) can audit per-shard behavior
// from the IDs alone.
func ShardOf(id int) int { return id >> shardIDBits }

// LocalID returns the shard-local job ID encoded in a namespaced job ID.
func LocalID(id int) int { return id & (1<<shardIDBits - 1) }

// Placement picks which shard admits a submission.
//
// Pick returns a shard index in [0, len(loads)). key is the
// client-supplied affinity key ("" when absent) and loads reports each
// shard's current load for load-aware policies: the in-flight count by
// default, or the estimated remaining work (sum of outstanding
// allotment-seconds) when stealing is enabled — the same gauge the
// thief uses to pick victims, so placement and stealing pull toward the
// same equilibrium. Pick may be called concurrently.
type Placement interface {
	Name() string
	Pick(key string, loads []int) int
}

// Placement policy names accepted by NewPlacement (and the kradd
// -placement flag).
const (
	PlaceRoundRobin  = "round-robin"
	PlaceHash        = "hash"
	PlaceLeastLoaded = "least-loaded"
)

// NewPlacement builds a placement policy by name. The empty string means
// round-robin, the baseline.
func NewPlacement(name string) (Placement, error) {
	switch name {
	case "", PlaceRoundRobin:
		return &roundRobin{}, nil
	case PlaceHash:
		return &hashed{}, nil
	case PlaceLeastLoaded:
		return leastLoaded{}, nil
	}
	return nil, fmt.Errorf("server: unknown placement policy %q (want %s, %s or %s)",
		name, PlaceRoundRobin, PlaceHash, PlaceLeastLoaded)
}

// roundRobin cycles through shards regardless of key or load.
type roundRobin struct{ ctr atomic.Uint64 }

func (p *roundRobin) Name() string { return PlaceRoundRobin }

func (p *roundRobin) Pick(key string, loads []int) int {
	return int((p.ctr.Add(1) - 1) % uint64(len(loads)))
}

// hashed routes by FNV-1a of the client-supplied key, so equal keys land
// on the same shard (session affinity); keyless submissions fall back to
// round-robin.
type hashed struct{ fallback roundRobin }

func (p *hashed) Name() string { return PlaceHash }

func (p *hashed) Pick(key string, loads []int) int {
	if key == "" {
		return p.fallback.Pick(key, loads)
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(loads)))
}

// leastLoaded picks the shard with the lowest load (lowest index on
// ties — strictly `<` below, so the first minimum wins and placement is
// deterministic for a given loads vector). The reading is a snapshot —
// concurrent submissions may race past each other — but that is exactly
// the "power of the current estimate" trade-off partitioned schedulers
// make.
type leastLoaded struct{}

func (leastLoaded) Name() string { return PlaceLeastLoaded }

func (leastLoaded) Pick(key string, loads []int) int {
	best := 0
	for i, l := range loads {
		if l < loads[best] {
			best = i
		}
	}
	return best
}
