// Package krad is a simulation library and scheduler suite reproducing
// "Adaptive Scheduling of Parallel Jobs on Functionally Heterogeneous
// Resources" (He, Sun, Hsu — ICPP 2007).
//
// The paper's K-resource model partitions processors and tasks into K
// functional categories (CPUs, vector units, I/O processors, ...); a task
// runs only on a processor of its own category. Jobs are dynamically
// unfolding K-DAGs of unit-time tasks, and the scheduler is online and
// non-clairvoyant: at each time step it sees only each job's instantaneous
// per-category parallelism. The paper's K-RAD algorithm — one RAD (DEQ +
// round-robin) scheduler per category — is (K+1−1/Pmax)-competitive for
// makespan (optimal) and (4K+1−4K/(n+1))-competitive for mean response
// time on batched jobs.
//
// This package is the user-facing facade over the implementation packages:
//
//	internal/dag       K-DAG model, builders, Figure 3 adversary
//	internal/core      DEQ, round-robin, RAD, K-RAD (Figure 2)
//	internal/baselines comparison schedulers incl. a clairvoyant oracle
//	internal/sim       discrete-time engine, traces, validation
//	internal/workload  seeded workload generators
//	internal/metrics   squashed work areas, theorem bounds, ratios
//	internal/analysis  theorem checkers and the E1–E10 experiment suite
//
// Quick start:
//
//	job := krad.NewGraph(2).Named("my-job")
//	a := job.AddTask(1)        // category-1 (CPU) task
//	b := job.AddTask(2)        // category-2 (I/O) task
//	job.MustEdge(a, b)         // a must finish before b starts
//
//	res, err := krad.Run(krad.Config{
//		K:         2,
//		Caps:      []int{4, 2},            // 4 CPUs, 2 I/O processors
//		Scheduler: krad.NewKRAD(2),
//	}, []krad.JobSpec{{Graph: job}})
//
// See the examples/ directory for full programs and cmd/kradbench for the
// experiment suite that regenerates EXPERIMENTS.md.
package krad

import (
	"krad/internal/analysis"
	"krad/internal/baselines"
	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/moldable"
	"krad/internal/profile"
	"krad/internal/sched"
	"krad/internal/sim"
	"krad/internal/workload"
)

// Model types (internal/dag).
type (
	// Graph is a K-DAG job: unit-time tasks colored by resource category,
	// connected by precedence edges.
	Graph = dag.Graph
	// Category is a 1-based resource category index α ∈ {1..K}.
	Category = dag.Category
	// TaskID identifies a task within one Graph.
	TaskID = dag.TaskID
	// PickPolicy selects which ready tasks run when allotment < desire.
	PickPolicy = dag.PickPolicy
	// LayerSpec describes one level of a Layered job.
	LayerSpec = dag.LayerSpec
	// Adversarial is the Theorem 1 / Figure 3 lower-bound construction.
	Adversarial = dag.Adversarial
)

// Pick policies for Config.Pick.
const (
	PickFIFO    = dag.PickFIFO
	PickLIFO    = dag.PickLIFO
	PickRandom  = dag.PickRandom
	PickCPFirst = dag.PickCPFirst
	PickCPLast  = dag.PickCPLast
)

// Graph constructors (internal/dag).
var (
	// NewGraph returns an empty K-DAG for k categories.
	NewGraph = dag.New
	// Chain, ForkJoin, Layered, MapReduce, Pipeline, Singleton and
	// RoundRobinChain build the standard job shapes.
	Chain            = dag.Chain
	UniformChain     = dag.UniformChain
	RoundRobinChain  = dag.RoundRobinChain
	ForkJoin         = dag.ForkJoin
	Layered          = dag.Layered
	MapReduce        = dag.MapReduce
	Pipeline         = dag.Pipeline
	Singleton        = dag.Singleton
	RandomGraph      = dag.Random
	BinaryReduction  = dag.BinaryReduction
	Butterfly        = dag.Butterfly
	Stencil2D        = dag.Stencil2D
	DivideAndConquer = dag.DivideAndConquer
	// Series and Parallel compose existing graphs.
	Series      = dag.Series
	ParallelDAG = dag.Parallel
	// ExpandDurations converts a duration-annotated graph to its
	// preemptive unit-task equivalent.
	ExpandDurations = dag.ExpandDurations
	// Figure1 builds the paper's Figure 1 three-category example job.
	Figure1 = dag.Figure1
	// NewAdversarial builds the Figure 3 job set for (K, m, caps).
	NewAdversarial = dag.NewAdversarial
	// Stretch models per-category execution costs (performance
	// heterogeneity, the paper's Section 8 challenge) by expanding each
	// α-task into a chain of cost_α unit tasks.
	Stretch     = dag.Stretch
	MustStretch = dag.MustStretch
)

// RandomOpts parameterizes RandomGraph.
type RandomOpts = dag.RandomOpts

// Scheduling types (internal/sched).
type (
	// Scheduler computes per-step processor allotments from job desires.
	Scheduler = sched.Scheduler
	// JobView is the non-clairvoyant per-job snapshot a Scheduler sees.
	JobView = sched.JobView
	// CategoryScheduler allocates one category's processors; K-RAD is K
	// of them.
	CategoryScheduler = sched.CategoryScheduler
)

// Schedulers.
var (
	// NewKRAD returns the paper's K-RAD scheduler for k categories.
	NewKRAD = core.NewKRAD
	// NewRAD returns a single-category RAD (used directly for K = 1 or
	// composed via sched.NewPerCategory).
	NewRAD = core.NewRAD
	// NewRandomKRAD is K-RAD with randomized round-robin order — immune
	// to the deterministic Theorem 1 adversary (experiment E19).
	NewRandomKRAD = core.NewRandomKRAD
	// Deq exposes the Figure 2 DEQ allocation primitive.
	Deq = core.Deq
	// Baseline schedulers for comparison studies.
	NewDEQOnly      = baselines.NewDEQOnly
	NewRROnly       = baselines.NewRROnly
	NewEQUI         = baselines.NewEQUI
	NewFCFS         = baselines.NewFCFS
	NewGreedyDesire = baselines.NewGreedyDesire
	// NewLAPS is Latest Arrival Processor Sharing with share fraction β.
	NewLAPS = baselines.NewLAPS
	// NewGang is time-sliced whole-machine gang scheduling.
	NewGang = baselines.NewGang
	// NewSJF is the clairvoyant shortest-job-first yardstick.
	NewSJF = baselines.NewSJF
	// NewQuantized wraps any scheduler to recompute allotments only every
	// L steps (the two-level deployment model; see experiment E13).
	NewQuantized = sched.NewQuantized
	// WithFloors makes any scheduler valid for non-preemptive jobs whose
	// in-flight tasks pin processors (see TimedGraphSource).
	WithFloors = sched.WithFloors
)

// Simulation types (internal/sim).
type (
	// Config parameterizes a simulation run.
	Config = sim.Config
	// JobSpec is one submitted job: its K-DAG and release time.
	JobSpec = sim.JobSpec
	// Result is a run's outcome: makespan, per-job responses, trace.
	Result = sim.Result
	// JobResult is one job's outcome.
	JobResult = sim.JobResult
	// TraceLevel selects per-step recording detail.
	TraceLevel = sim.TraceLevel
)

// Trace levels for Config.Trace.
const (
	TraceNone  = sim.TraceNone
	TraceSteps = sim.TraceSteps
	TraceTasks = sim.TraceTasks
)

// Run simulates a job set under the given configuration.
var Run = sim.Run

// Incremental engine (internal/sim): admit and cancel jobs while the
// virtual clock runs. Run is a thin batch driver over it, so batch and
// online schedules of the same workload are identical. internal/server
// wraps the engine as a goroutine-safe HTTP service (see cmd/kradd).
type (
	// Engine steps one simulation incrementally; not goroutine-safe.
	Engine = sim.Engine
	// JobStatus is one job's live lifecycle state.
	JobStatus = sim.JobStatus
	// JobPhase is a job's lifecycle phase (pending/active/done/cancelled).
	JobPhase = sim.JobPhase
	// StepInfo reports what one Engine.Step executed.
	StepInfo = sim.StepInfo
	// EngineSnapshot is a point-in-time engine summary.
	EngineSnapshot = sim.EngineSnapshot
)

// NewEngine builds an incremental engine from a Config (Parallel and
// MaxSteps apply; jobs arrive via Engine.Admit instead of a spec slice).
var NewEngine = sim.NewEngine

// Job lifecycle phases reported by JobStatus.Phase.
const (
	JobPending   = sim.JobPending
	JobActive    = sim.JobActive
	JobDone      = sim.JobDone
	JobCancelled = sim.JobCancelled
)

// JobSource admits alternative job representations (see ProfileJob);
// JobSpec.Graph covers the common K-DAG case.
type JobSource = sim.JobSource

// GraphSource wraps a K-DAG as an explicit JobSource; TimedGraphSource
// wraps a duration-annotated K-DAG for non-preemptive execution (pair the
// run's scheduler with WithFloors).
var (
	GraphSource      = sim.GraphSource
	TimedGraphSource = sim.TimedGraphSource
)

// NewChurn accumulates reallocation churn through Config.Observer
// (see experiment E17).
var NewChurn = metrics.NewChurn

// ChurnCounter tallies processors reassigned between jobs per step.
type ChurnCounter = metrics.Churn

// Profile jobs: compact phase-based representation for huge simulations
// (internal/profile).
type (
	// ProfileJob is a phase-list job: per-phase per-category task counts
	// with barriers between phases.
	ProfileJob = profile.Job
	// ProfilePhase is one barrier-delimited stage of a ProfileJob.
	ProfilePhase = profile.Phase
	// ProfileGenOpts parameterizes GenerateProfiles.
	ProfileGenOpts = profile.GenOpts
)

var (
	// NewProfileJob builds a profile job from phases.
	NewProfileJob = profile.New
	// GenerateProfiles draws a seeded batched set of profile jobs.
	GenerateProfiles = profile.Generate
)

// Moldable jobs: tasks under precedence that pick a processor count once
// at start, run non-preemptively under a concave speedup curve, and plug
// into the engine as the third runtime family (internal/moldable). Pair
// runs containing moldable jobs with WithFloors.
type (
	// MoldableJob is a validated moldable-task job (a JobSource).
	MoldableJob = moldable.Job
	// MoldableSpec is the declarative wire form of a MoldableJob.
	MoldableSpec = moldable.Spec
	// MoldableTaskSpec is one task of a MoldableSpec.
	MoldableTaskSpec = moldable.TaskSpec
	// MoldableCurveSpec names a speedup curve ("powerlaw" or "amdahl").
	MoldableCurveSpec = moldable.CurveSpec
	// MoldableGenOpts parameterizes GenerateMoldable.
	MoldableGenOpts = moldable.GenOpts
)

var (
	// NewMoldableJob validates a spec into a MoldableJob.
	NewMoldableJob = moldable.FromSpec
	// GenerateMoldable draws a seeded moldable job set.
	GenerateMoldable = moldable.Generate
)

// RuntimeFamily classifies a job's execution model (profile, dag, timed,
// moldable); FamilyOf resolves a JobSource's family.
type RuntimeFamily = sim.RuntimeFamily

// Runtime families reported by FamilyOf and JobStatus.Family.
const (
	FamilyUnknown  = sim.FamilyUnknown
	FamilyProfile  = sim.FamilyProfile
	FamilyDAG      = sim.FamilyDAG
	FamilyTimed    = sim.FamilyTimed
	FamilyMoldable = sim.FamilyMoldable
)

// FamilyOf resolves a JobSource's runtime family.
var FamilyOf = sim.FamilyOf

// ValidateSchedule re-checks a TraceTasks run against the paper's
// schedule-validity conditions (precedence, category matching, capacity).
var ValidateSchedule = sim.ValidateSchedule

// ReadResultJSON parses a result written by Result.WriteJSON.
var ReadResultJSON = sim.ReadResultJSON

// Workload generation (internal/workload).
type (
	// Mix parameterizes a random job set.
	Mix = workload.Mix
	// Shape names a job-DAG family.
	Shape = workload.Shape
	// ArrivalProcess draws interarrival gaps for online workloads.
	ArrivalProcess = workload.ArrivalProcess
)

// Arrival processes.
var (
	Poisson = workload.Poisson
	Uniform = workload.Uniform
	Bursty  = workload.Bursty
)

// SWF (Standard Workload Format) support: parse Parallel Workloads Archive
// logs into engine-ready rigid jobs, or emit a synthetic log.
type (
	SWFOptions = workload.SWFOptions
	SWFRecord  = workload.SWFRecord
)

var (
	ParseSWF          = workload.ParseSWF
	WriteSyntheticSWF = workload.WriteSyntheticSWF
	// WithDurations annotates a job set with random task durations for
	// the non-preemptive execution experiments.
	WithDurations = workload.WithDurations
	// FindPreset and PresetNames expose the named workload presets.
	FindPreset  = workload.FindPreset
	PresetNames = workload.PresetNames
)

// Metrics and bounds (internal/metrics).
var (
	// SqSum computes the squashed sum of Definition 4.
	SqSum = metrics.SqSum
	// SquashedWorkArea computes swa(J, α) of Definition 5.
	SquashedWorkArea = metrics.SquashedWorkArea
	// MakespanLowerBound computes the Section 4 optimal-makespan bound.
	MakespanLowerBound = metrics.MakespanLowerBound
	// ResponseLowerBound computes the Section 6 optimal-response bound.
	ResponseLowerBound = metrics.ResponseLowerBound
	// MakespanCompetitiveLimit returns K + 1 − 1/Pmax.
	MakespanCompetitiveLimit = metrics.MakespanCompetitiveLimit
	// ComputeRatios evaluates a run against all the paper's bounds.
	ComputeRatios = metrics.ComputeRatios
)

// Ratios bundles a run's measured-versus-bound report.
type Ratios = metrics.Ratios

// Experiments (internal/analysis).
type (
	// Experiment is one table of the reproduction suite (E1–E10).
	Experiment = analysis.Experiment
	// ExperimentOptions tunes an experiment run.
	ExperimentOptions = analysis.Options
	// ResultTable is an experiment's rendered output.
	ResultTable = analysis.Table
	// BoundCheck is a theorem-bound evaluation on one run.
	BoundCheck = analysis.BoundCheck
)

var (
	// Experiments returns the full E1–E10 suite.
	Experiments = analysis.All
	// FindExperiment looks an experiment up by ID.
	FindExperiment = analysis.Find
	// Theorem checkers for individual runs.
	CheckLemma2   = analysis.CheckLemma2
	CheckTheorem3 = analysis.CheckTheorem3
	CheckTheorem5 = analysis.CheckTheorem5
	CheckTheorem6 = analysis.CheckTheorem6
	CheckAll      = analysis.CheckAll
)
