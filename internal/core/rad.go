package core

import (
	"encoding/json"
	"fmt"

	"krad/internal/sched"
)

// RAD is the single-category adaptive scheduler of Figure 2. When the
// number of α-active jobs is at most the processor count it behaves as DEQ
// (space sharing); when the category is overloaded it runs batched
// round-robin cycles (time sharing): each cycle gives every α-active job
// one processor for one step before any job is scheduled twice.
//
// State is one mark per job: marked means "already scheduled in the current
// round-robin cycle". A RAD value is stateful and must not be shared
// between concurrent simulations; K-RAD builds one RAD per category.
type RAD struct {
	// gen and stamp hold the round-robin marks as a generation-stamped
	// dense slice keyed by job ID: stamp[id] == gen means marked. Clearing
	// every mark is gen++ — O(1) instead of O(marks) — and membership is
	// one bounds check plus one load instead of a map probe. stamp grows
	// to the largest job ID marked so far; JobsDone zeroes slots so the
	// marks themselves cannot leak across job lifetimes.
	gen   uint64
	stamp []uint64
	// rot rotates which marked jobs receive the cycle-completing "bonus"
	// service (the move from Q′ to Q below). Figure 2 leaves the choice
	// unspecified; rotating it keeps long-run service counts equal instead
	// of systematically favoring the lowest job IDs.
	rot int
	// horizon is the leap-safety report of the most recent Allot/AllotInto
	// call; see StableHorizon.
	horizon int64
	// Scratch reused across Allot calls; each call clobbers all of it.
	q, qp, desires, deqAllot, deqScratch []int
}

// NewRAD returns a fresh single-category RAD scheduler.
func NewRAD() *RAD { return &RAD{gen: 1} }

// Name implements sched.CategoryScheduler.
func (r *RAD) Name() string { return "rad" }

func (r *RAD) marked(id int) bool {
	return id >= 0 && id < len(r.stamp) && r.stamp[id] == r.gen
}

func (r *RAD) mark(id int) {
	if id >= len(r.stamp) {
		grown := make([]uint64, id+1)
		copy(grown, r.stamp)
		r.stamp = grown
	}
	r.stamp[id] = r.gen
}

// emptyAllot is the shared zero-length allotment returned for empty job
// sets so idle categories do not allocate every step.
var emptyAllot = []int{}

// growInts returns buf resliced to length n, reallocating only when the
// capacity is insufficient.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n, n+n/2+8)
	}
	return buf[:n]
}

// Allot implements the RAD procedure of Figure 2 for one category:
//
//	Q  ← unmarked α-active jobs (ascending ID = queue order)
//	Q′ ← marked α-active jobs
//	if |Q| > P  → ROUND-ROBIN: the first P jobs of Q get one processor
//	              each and are marked
//	else        → move min(|Q′|, P−|Q|) jobs from Q′ to Q, partition the
//	              processors over Q with DEQ, and unmark all jobs (the
//	              round-robin cycle, if any, is complete)
func (r *RAD) Allot(t int64, jobs []sched.CatJob, p int) []int {
	if len(jobs) == 0 {
		r.horizon = sched.Unbounded
		return emptyAllot
	}
	allot := make([]int, len(jobs))
	r.AllotInto(t, jobs, p, allot)
	return allot
}

// AllotInto is Allot writing into caller-owned storage: dst must have
// len(jobs) entries and is fully overwritten. It implements
// sched.CategoryIntoAllotter so PerCategory's hot path allocates nothing.
func (r *RAD) AllotInto(t int64, jobs []sched.CatJob, p int, dst []int) {
	for i := range dst {
		dst[i] = 0
	}
	if len(jobs) == 0 || p <= 0 {
		// No jobs (or no processors): the all-zero output repeats as long
		// as the inputs do.
		r.horizon = sched.Unbounded
		return
	}
	// Split into Q (unmarked) and Q′ (marked), preserving ID order.
	q := growInts(r.q, len(jobs))[:0]
	qp := growInts(r.qp, len(jobs))[:0]
	for i, j := range jobs {
		if r.marked(j.ID) {
			qp = append(qp, i)
		} else {
			q = append(q, i)
		}
	}
	r.q, r.qp = q, qp
	if len(q) > p {
		// ROUND-ROBIN: first P jobs of Q get one processor each, marked.
		// Mid-cycle state changes every step, so never leap over it.
		r.horizon = 0
		for _, i := range q[:p] {
			dst[i] = 1
			r.mark(jobs[i].ID)
		}
		return
	}
	// Cycle completes this step: fill Q from Q′ so no processor idles.
	// The jobs moved over are chosen round-robin across cycles (see rot).
	need := p - len(q)
	if need > len(qp) {
		need = len(qp)
	}
	if need > 0 {
		start := r.rot % len(qp)
		for j := 0; j < need; j++ {
			q = append(q, qp[(start+j)%len(qp)])
		}
		r.rot += need
	}
	// Leap safety: with no marks at entry this call was pure DEQ and left
	// the marks and rotation untouched, so the horizon is DEQ's. A cycle
	// completion (marks present) mutates rot — settle one step at a time.
	if len(qp) == 0 {
		r.horizon = deqStableHorizon(jobs, p)
	} else {
		r.horizon = 0
	}
	desires := growInts(r.desires, len(q))
	for j, i := range q {
		desires[j] = jobs[i].Desire
	}
	r.desires = desires
	r.deqAllot = growInts(r.deqAllot, len(q))
	r.deqScratch = growInts(r.deqScratch, len(q))
	for j, a := range DeqInto(r.deqAllot, r.deqScratch, desires, p, int(t)) {
		dst[q[j]] = a
	}
	// Unmark all jobs: a new cycle starts next step if still overloaded.
	r.gen++
}

// StableHorizon implements sched.CategoryStable: it reports how many
// additional consecutive steps after the most recent Allot call stay in
// closed form, assuming the engine's leap law (unchanged α-active set,
// every desire decreasing by exactly its allotment each step). Non-zero
// only in DEQ mode with no round-robin marks and every job strictly
// deprived — the regime where each step is the equal share plus a
// t-rotated remainder that deqLeapTotals accounts for exactly.
func (r *RAD) StableHorizon() int64 { return r.horizon }

// LeapTotals implements sched.CategoryStable via the closed-form
// all-deprived DEQ aggregate; see deqLeapTotals.
func (r *RAD) LeapTotals(t int64, jobs []sched.CatJob, p int, n int64, dst []int) {
	deqLeapTotals(t, jobs, p, n, dst)
}

// JobsDone drops marks of completed jobs so state cannot grow without
// bound across long online runs.
func (r *RAD) JobsDone(ids []int) {
	for _, id := range ids {
		if id >= 0 && id < len(r.stamp) {
			r.stamp[id] = 0
		}
	}
}

// radState is the serialized form of a RAD's cross-step state.
type radState struct {
	Marked []int `json:"marked,omitempty"`
	Rot    int   `json:"rot"`
}

// SnapshotState captures the round-robin marks and the bonus-service
// rotation, the only state RAD carries between steps. Marked IDs are
// ascending (dense-slice order) so the encoding is deterministic.
func (r *RAD) SnapshotState() ([]byte, error) {
	st := radState{Rot: r.rot}
	for id, g := range r.stamp {
		if g == r.gen {
			st.Marked = append(st.Marked, id)
		}
	}
	return json.Marshal(st)
}

// RestoreState rebuilds the marks and rotation from a SnapshotState
// encoding.
func (r *RAD) RestoreState(data []byte) error {
	var st radState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: decode rad state: %w", err)
	}
	r.gen = 1
	clear(r.stamp)
	for _, id := range st.Marked {
		if id < 0 {
			return fmt.Errorf("core: rad state has negative job ID %d", id)
		}
		r.mark(id)
	}
	r.rot = st.Rot
	r.horizon = 0
	return nil
}

var (
	_ sched.CategoryScheduler    = (*RAD)(nil)
	_ sched.CategoryCompleter    = (*RAD)(nil)
	_ sched.CategorySnapshotter  = (*RAD)(nil)
	_ sched.CategoryIntoAllotter = (*RAD)(nil)
	_ sched.CategoryStable       = (*RAD)(nil)
)

// NewKRAD returns the paper's K-RAD scheduler for k resource categories:
// one independent RAD per category, assembled with sched.PerCategory.
func NewKRAD(k int) *sched.PerCategory {
	cats := make([]sched.CategoryScheduler, k)
	for i := range cats {
		cats[i] = NewRAD()
	}
	return sched.NewPerCategory("k-rad", cats)
}
