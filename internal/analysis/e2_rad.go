package analysis

import (
	"math/rand"

	"krad/internal/core"
	"krad/internal/sched"
)

// RunE2 stress-tests the Figure 2 allocation invariants over randomized
// desire streams and reports violation counts (all columns must be zero):
//
//   - capacity:   Σi a(Ji,α,t) ≤ Pα
//   - desire:     a(Ji,α,t) ≤ d(Ji,α,t)
//   - conserving: active jobs ⇒ at least one processor allotted
//   - deq-equal:  deprived jobs' allotments within one of each other when
//     DEQ is in charge (job count ≤ P)
//   - rr-cycle:   under overload, no job is scheduled a second time before
//     the cycle-completing step that serves every remaining job
func RunE2(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "RAD allocation invariants (Figure 2)",
		Header: []string{"trial set", "steps", "capacity viol", "desire viol", "idle viol", "deq-equal viol", "rr-cycle viol"},
	}
	trials := 200
	steps := 120
	if opts.Quick {
		trials, steps = 40, 60
	}
	configs := []struct {
		name    string
		p       int
		minJobs int
		maxJobs int
	}{
		{"light (n ≤ P)", 8, 1, 8},
		{"boundary (n ≈ P)", 6, 5, 7},
		{"overload (n ≫ P)", 3, 10, 24},
		{"single processor", 1, 2, 10},
	}
	rng := rand.New(rand.NewSource(opts.seed()))
	for _, c := range configs {
		var capV, desV, idleV, eqV, rrV int
		for trial := 0; trial < trials; trial++ {
			r := core.NewRAD()
			// The job population is fixed within a trial (desires still
			// vary each step) so round-robin cycles are observable from
			// the outside.
			n := c.minJobs + rng.Intn(c.maxJobs-c.minJobs+1)
			servedThisCycle := map[int]bool{}
			for step := 1; step <= steps; step++ {
				jobs := make([]sched.CatJob, n)
				for i := range jobs {
					jobs[i] = sched.CatJob{ID: i, Desire: 1 + rng.Intn(12)}
				}
				allot := r.Allot(int64(step), jobs, c.p)
				total := 0
				for i := range jobs {
					if allot[i] > jobs[i].Desire || allot[i] < 0 {
						desV++
					}
					total += allot[i]
				}
				if total > c.p {
					capV++
				}
				if total == 0 && n > 0 {
					idleV++
				}
				if n > c.p {
					// Overload: cycle accounting. A job re-served strictly
					// before the cycle-completing step is a violation; the
					// completing step (after which everyone has been
					// served) may legitimately re-serve "bonus" jobs.
					doubles := 0
					for i := range jobs {
						if allot[i] > 0 {
							if servedThisCycle[i] {
								doubles++
							}
							servedThisCycle[i] = true
						}
					}
					if len(servedThisCycle) >= n {
						servedThisCycle = map[int]bool{} // cycle complete
					} else if doubles > 0 {
						rrV++
					}
				} else {
					servedThisCycle = map[int]bool{}
					// DEQ regime: deprived allotments within one.
					min, max := 1<<30, -1
					for i := range jobs {
						if allot[i] < jobs[i].Desire {
							if allot[i] < min {
								min = allot[i]
							}
							if allot[i] > max {
								max = allot[i]
							}
						}
					}
					if max >= 0 && max-min > 1 {
						eqV++
					}
				}
			}
		}
		t.AddRow(c.name, trials*steps, capV, desV, idleV, eqV, rrV)
		if capV+desV+idleV+eqV+rrV > 0 {
			t.AddNote("FAIL: %s produced invariant violations", c.name)
		}
	}
	t.AddNote("expected shape: every violation column is zero across all %d randomized steps per row", trials*steps)
	return t, nil
}
