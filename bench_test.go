package krad_test

// The benchmark harness: one testing.B target per experiment in DESIGN.md's
// per-experiment index (E1–E10), each running the full table generation so
// `go test -bench=.` regenerates every reproduced figure/table, plus
// microbenchmarks of the scheduling primitives. Table output itself is
// produced by cmd/kradbench; here the work is measured.

import (
	"fmt"
	"testing"

	"krad"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := krad.FindExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(krad.ExperimentOptions{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE1_KDAGModel(b *testing.B)               { benchExperiment(b, "E1") }
func BenchmarkE2_RADStep(b *testing.B)                 { benchExperiment(b, "E2") }
func BenchmarkE3_AdversarialLowerBound(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4_MakespanCompetitiveness(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5_MRTLightLoad(b *testing.B)            { benchExperiment(b, "E5") }
func BenchmarkE6_MRTHeavyLoad(b *testing.B)            { benchExperiment(b, "E6") }
func BenchmarkE7_K1MeanResponse(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8_BaselineComparison(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9_Ablations(b *testing.B)               { benchExperiment(b, "E9") }
func BenchmarkE10_EngineScaling(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11_PerfHeterogeneity(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12_ProfileRepresentation(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13_QuantumSensitivity(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14_InductionReplay(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15_FairnessPrice(b *testing.B)          { benchExperiment(b, "E15") }
func BenchmarkE16_NonPreemptive(b *testing.B)          { benchExperiment(b, "E16") }
func BenchmarkE17_ReallocationChurn(b *testing.B)      { benchExperiment(b, "E17") }
func BenchmarkE18_SWFReplay(b *testing.B)              { benchExperiment(b, "E18") }
func BenchmarkE19_Randomization(b *testing.B)          { benchExperiment(b, "E19") }
func BenchmarkE20_ExactRatios(b *testing.B)            { benchExperiment(b, "E20") }
func BenchmarkE21_SpeedAugmentation(b *testing.B)      { benchExperiment(b, "E21") }

// BenchmarkProfileEngine measures the compact profile representation at a
// scale the per-task DAG representation cannot reach.
func BenchmarkProfileEngine(b *testing.B) {
	specs, err := krad.GenerateProfiles(krad.ProfileGenOpts{
		K: 3, Jobs: 64, MinPhases: 2, MaxPhases: 8, MaxParallelism: 100_000, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	tasks := 0
	for _, s := range specs {
		tasks += s.Source.TotalTasks()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := krad.Run(krad.Config{
			K: 3, Caps: []int{256, 256, 256}, Scheduler: krad.NewKRAD(3),
		}, specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// denseLayeredSpecs builds the level-structured K-DAG workload the DAG
// event-leap targets: each job stacks dense levels — a wide level of width
// same-category tasks, then a one-task barrier join, then the next wide
// level — so per-category ready counts stay constant while a level drains.
// Categories rotate across jobs and levels so every category stays busy.
func denseLayeredSpecs(k, jobs, width, levels int) []krad.JobSpec {
	specs := make([]krad.JobSpec, jobs)
	for j := 0; j < jobs; j++ {
		layers := make([]krad.LayerSpec, 0, 2*levels-1)
		for l := 0; l < levels; l++ {
			layers = append(layers, krad.LayerSpec{Count: width, Cat: krad.Category(1 + (j+l)%k)})
			if l < levels-1 {
				layers = append(layers, krad.LayerSpec{Count: 1, Cat: krad.Category(1 + (j+l+1)%k)})
			}
		}
		specs[j] = krad.JobSpec{Graph: krad.Layered(k, layers, true)}
	}
	return specs
}

// BenchmarkDAGEngine measures a dense-layered K-DAG workload end to end —
// the shape every kradd deployment runs (the HTTP API admits graphs only),
// and the target of the DAG event-leap.
func BenchmarkDAGEngine(b *testing.B) {
	specs := denseLayeredSpecs(2, 8, 2048, 4)
	tasks := 0
	for _, s := range specs {
		tasks += s.Graph.NumTasks()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := krad.Run(krad.Config{
			K: 2, Caps: []int{8, 8}, Scheduler: krad.NewKRAD(2),
		}, specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// BenchmarkMixedEngine measures a mixed population: compact profile jobs
// and dense-layered DAG jobs sharing the machine. Leap eligibility must be
// decided per round across heterogeneous runtimes.
func BenchmarkMixedEngine(b *testing.B) {
	specs := denseLayeredSpecs(2, 4, 1024, 4)
	profiles, err := krad.GenerateProfiles(krad.ProfileGenOpts{
		K: 2, Jobs: 4, MinPhases: 2, MaxPhases: 4, MaxParallelism: 50_000, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	specs = append(specs, profiles...)
	tasks := 0
	for _, s := range specs {
		if s.Graph != nil {
			tasks += s.Graph.NumTasks()
		} else {
			tasks += s.Source.TotalTasks()
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := krad.Run(krad.Config{
			K: 2, Caps: []int{48, 48}, Scheduler: krad.NewKRAD(2),
		}, specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// moldableBenchSpecs draws the seeded moldable workload shared by the
// moldable and mixed-family engine benchmarks.
func moldableBenchSpecs(jobs int, seed int64) []krad.JobSpec {
	return krad.GenerateMoldable(krad.MoldableGenOpts{
		K: 2, Jobs: jobs, MinTasks: 8, MaxTasks: 24, MaxWork: 4096, MaxProcs: 6, Seed: seed,
	})
}

// BenchmarkMoldableEngine measures a pure-moldable population behind the
// floor layer: long non-preemptive leases are the hold-law event-leap's
// target, so most virtual steps should be leapt.
func BenchmarkMoldableEngine(b *testing.B) {
	specs := moldableBenchSpecs(16, 3)
	tasks := 0
	for _, s := range specs {
		tasks += s.Source.TotalTasks()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := krad.Run(krad.Config{
			K: 2, Caps: []int{12, 12}, Scheduler: krad.WithFloors(krad.NewKRAD(2)),
		}, specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// BenchmarkMixedFamilyEngine measures all three runtime families — dense
// DAG, compact profile and moldable — sharing one engine step loop. Leap
// eligibility mixes the drain law (profile/DAG) with the hold law
// (moldable) each round.
func BenchmarkMixedFamilyEngine(b *testing.B) {
	specs := denseLayeredSpecs(2, 3, 1024, 4)
	profiles, err := krad.GenerateProfiles(krad.ProfileGenOpts{
		K: 2, Jobs: 3, MinPhases: 2, MaxPhases: 4, MaxParallelism: 50_000, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	specs = append(specs, profiles...)
	specs = append(specs, moldableBenchSpecs(6, 11)...)
	tasks := 0
	for _, s := range specs {
		if s.Graph != nil {
			tasks += s.Graph.NumTasks()
		} else {
			tasks += s.Source.TotalTasks()
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := krad.Run(krad.Config{
			K: 2, Caps: []int{48, 48}, Scheduler: krad.WithFloors(krad.NewKRAD(2)),
		}, specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// BenchmarkDeq measures the Figure 2 DEQ primitive across regimes.
func BenchmarkDeq(b *testing.B) {
	for _, n := range []int{4, 32, 256} {
		desires := make([]int, n)
		for i := range desires {
			desires[i] = 1 + i%13
		}
		for _, p := range []int{n / 2, 2 * n} {
			b.Run(fmt.Sprintf("jobs=%d/p=%d", n, p), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					krad.Deq(desires, p, i)
				}
			})
		}
	}
}

// BenchmarkKRADAllot measures a full K-RAD allotment step.
func BenchmarkKRADAllot(b *testing.B) {
	for _, cfg := range []struct{ k, n int }{{1, 16}, {3, 64}, {3, 512}, {8, 256}} {
		b.Run(fmt.Sprintf("K=%d/jobs=%d", cfg.k, cfg.n), func(b *testing.B) {
			s := krad.NewKRAD(cfg.k)
			caps := make([]int, cfg.k)
			for i := range caps {
				caps[i] = 8
			}
			jobs := make([]krad.JobView, cfg.n)
			for i := range jobs {
				d := make([]int, cfg.k)
				for a := range d {
					d[a] = (i + a) % 7
				}
				jobs[i] = krad.JobView{ID: i, Desire: d}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Allot(int64(i), jobs, caps)
			}
		})
	}
}

// BenchmarkEngineRun measures end-to-end simulation throughput.
func BenchmarkEngineRun(b *testing.B) {
	for _, n := range []int{20, 100, 400} {
		b.Run(fmt.Sprintf("jobs=%d", n), func(b *testing.B) {
			specs, err := krad.Mix{K: 3, Jobs: n, MinSize: 10, MaxSize: 50, Seed: 1}.Generate()
			if err != nil {
				b.Fatal(err)
			}
			tasks := 0
			for _, s := range specs {
				tasks += s.Graph.NumTasks()
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := krad.Run(krad.Config{
					K: 3, Caps: []int{8, 8, 8}, Scheduler: krad.NewKRAD(3),
				}, specs)
				if err != nil {
					b.Fatal(err)
				}
				_ = res
			}
			b.ReportMetric(float64(tasks), "tasks/op")
		})
	}
}

// BenchmarkEngineParallel compares serial and goroutine-parallel execution.
func BenchmarkEngineParallel(b *testing.B) {
	specs, err := krad.Mix{K: 3, Jobs: 600, MinSize: 20, MaxSize: 80, Seed: 1}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"serial", "parallel"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := krad.Run(krad.Config{
					K: 3, Caps: []int{16, 16, 16}, Scheduler: krad.NewKRAD(3),
					Parallel: mode == "parallel", Workers: 8,
				}, specs)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdversarialInstance measures Figure 3 construction + execution
// at the scale used by E3's largest row.
func BenchmarkAdversarialInstance(b *testing.B) {
	caps := []int{4, 4, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := krad.NewAdversarial(3, 8, caps)
		if err != nil {
			b.Fatal(err)
		}
		jobs := adv.JobSet(true)
		specs := make([]krad.JobSpec, len(jobs))
		for j, g := range jobs {
			specs[j] = krad.JobSpec{Graph: g}
		}
		if _, err := krad.Run(krad.Config{
			K: 3, Caps: caps, Scheduler: krad.NewKRAD(3), Pick: krad.PickCPLast,
		}, specs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSqSum measures the Definition 4 primitive.
func BenchmarkSqSum(b *testing.B) {
	works := make([]int, 1000)
	for i := range works {
		works[i] = (i * 37) % 211
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		krad.SqSum(works)
	}
}
