package baselines

import (
	"krad/internal/sched"
)

// Gang is time-sliced gang scheduling (coscheduling): exactly one job owns
// the entire machine — every category at once — for a quantum of Q steps,
// then the next active job takes over, round-robin by arrival order. Gang
// scheduling is the classic alternative to space sharing on real parallel
// machines; against K-RAD it shows what cross-category exclusivity costs
// when jobs cannot use all categories at once.
type Gang struct {
	quantum int64
	current int   // job ID owning the machine; -1 when none
	used    int64 // steps consumed of the current quantum
}

// NewGang returns a gang scheduler with the given quantum (steps a job
// keeps the machine before rotation). quantum must be ≥ 1.
func NewGang(quantum int64) *Gang {
	if quantum < 1 {
		panic("baselines: gang quantum must be ≥ 1")
	}
	return &Gang{quantum: quantum, current: -1}
}

// Name implements sched.Scheduler.
func (g *Gang) Name() string { return "gang" }

// Allot implements sched.Scheduler: the current owner receives
// min(desire, cap) in every category; everyone else receives nothing. The
// owner rotates when its quantum expires or it completes (disappears from
// jobs).
func (g *Gang) Allot(t int64, jobs []sched.JobView, caps []int) [][]int {
	allot := make([][]int, len(jobs))
	for i := range allot {
		allot[i] = make([]int, len(caps))
	}
	if len(jobs) == 0 {
		return allot
	}
	idx := g.ownerIndex(jobs)
	if idx < 0 || g.used >= g.quantum {
		idx = g.next(jobs, idx)
		g.used = 0
	}
	g.current = jobs[idx].ID
	g.used++
	for a, p := range caps {
		d := jobs[idx].Desire[a]
		if d > p {
			d = p
		}
		allot[idx][a] = d
	}
	return allot
}

// ownerIndex locates the current owner in the active set, -1 if gone.
func (g *Gang) ownerIndex(jobs []sched.JobView) int {
	if g.current < 0 {
		return -1
	}
	for i, j := range jobs {
		if j.ID == g.current {
			return i
		}
	}
	return -1
}

// next picks the successor of position idx in arrival order, wrapping; a
// vanished owner hands over to the first job with a greater ID (or the
// head).
func (g *Gang) next(jobs []sched.JobView, idx int) int {
	if idx >= 0 {
		return (idx + 1) % len(jobs)
	}
	for i, j := range jobs {
		if j.ID > g.current {
			return i
		}
	}
	return 0
}

var _ sched.Scheduler = (*Gang)(nil)
