package core

import (
	"testing"
	"testing/quick"

	"krad/internal/sched"
)

func TestRandomRADLightLoadMatchesDEQ(t *testing.T) {
	r := NewRandomRAD(1)
	jobs := catJobs(1, 9, 9)
	got := r.Allot(1, jobs, 9)
	want := Deq([]int{1, 9, 9}, 9, 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("light load diverged from DEQ: %v vs %v", got, want)
		}
	}
}

func TestRandomRADCycleServesEveryoneOnce(t *testing.T) {
	r := NewRandomRAD(7)
	jobs := catJobs(2, 2, 2, 2, 2, 2, 2) // 7 jobs
	served := map[int]int{}
	// 7 jobs on 2 processors: cycle completes within 4 steps (3 RR steps +
	// the DEQ completion step).
	for step := int64(1); step <= 3; step++ {
		allot := r.Allot(step, jobs, 2)
		total := 0
		for i, a := range allot {
			if a > 0 {
				served[i]++
				if served[i] > 1 {
					t.Fatalf("job %d served twice before cycle completion", i)
				}
				total += a
			}
		}
		if total != 2 {
			t.Fatalf("step %d used %d processors", step, total)
		}
	}
	// Completion step: the one remaining unmarked job plus bonus.
	allot := r.Allot(4, jobs, 2)
	for i, a := range allot {
		if a > 0 {
			served[i]++
		}
	}
	for i := 0; i < len(jobs); i++ {
		if served[i] == 0 {
			t.Errorf("job %d starved through the cycle", i)
		}
	}
}

func TestRandomRADDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int {
		r := NewRandomRAD(seed)
		jobs := catJobs(1, 1, 1, 1, 1, 1)
		var trace []int
		for step := int64(1); step <= 9; step++ {
			for i, a := range r.Allot(step, jobs, 2) {
				if a > 0 {
					trace = append(trace, i)
				}
			}
		}
		return trace
	}
	a, b := run(5), run(5)
	if len(a) != len(b) {
		t.Fatal("trace lengths differ for same seed")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if !same {
		t.Error("same seed diverged")
	}
	c := run(6)
	diff := len(a) != len(c)
	for i := 0; !diff && i < len(a); i++ {
		diff = a[i] != c[i]
	}
	if !diff {
		t.Log("different seeds produced identical service order (possible but unlikely)")
	}
}

func TestQuickRandomRADValidAllotments(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRandomRAD(seed)
		jobs := catJobs(3, 1, 4, 1, 5, 9, 2, 6)
		for step := int64(1); step <= 30; step++ {
			p := 1 + int(uint(seed+int64(step))%7)
			allot := r.Allot(step, jobs, p)
			total := 0
			for i := range jobs {
				if allot[i] < 0 || allot[i] > jobs[i].Desire {
					return false
				}
				total += allot[i]
			}
			if total > p || total == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewRandomKRADComposition(t *testing.T) {
	s := NewRandomKRAD(3, 1)
	if s.Name() != "k-rad-random" {
		t.Errorf("Name = %q", s.Name())
	}
	jobs := []sched.JobView{
		{ID: 0, Desire: []int{2, 0, 5}},
		{ID: 1, Desire: []int{0, 3, 5}},
	}
	caps := []int{4, 4, 4}
	allot := s.Allot(1, jobs, caps)
	if err := sched.ValidateAllotments(jobs, caps, allot); err != nil {
		t.Fatal(err)
	}
	s.JobsDone([]int{0})
}
