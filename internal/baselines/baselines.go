// Package baselines implements the comparison schedulers used by the
// experiment suite: the pure building blocks RAD unifies (DEQ alone, round
// robin alone, EQUI), arrival-order and greedy desire-filling policies, and
// a clairvoyant shortest-job-first scheduler that sees remaining work — the
// information the paper's algorithms are explicitly denied.
package baselines

import (
	"sort"

	"krad/internal/core"
	"krad/internal/sched"
)

// deqOnly always applies DEQ, even when the category is overloaded. With
// more α-active jobs than processors the equal share floors to zero and the
// remainder goes to the lowest-ID jobs, so late arrivals can starve — the
// failure mode RAD's round-robin cycles exist to fix.
type deqOnly struct{}

// NewDEQOnly returns the DEQ-without-RR scheduler for k categories.
func NewDEQOnly(k int) *sched.PerCategory {
	cats := make([]sched.CategoryScheduler, k)
	for i := range cats {
		cats[i] = deqOnly{}
	}
	return sched.NewPerCategory("deq-only", cats)
}

func (deqOnly) Name() string { return "deq-only" }

func (deqOnly) Allot(t int64, jobs []sched.CatJob, p int) []int {
	desires := make([]int, len(jobs))
	for i, j := range jobs {
		desires[i] = j.Desire
	}
	// rot = 0: deliberately no rotation, exposing DEQ's overload unfairness.
	return core.Deq(desires, p, 0)
}

// rrOnly always time-shares in batched round-robin cycles, one processor
// per job per cycle, even when there are idle processors a wide job could
// use — the failure mode DEQ exists to fix.
type rrOnly struct {
	marked map[int]bool
	rot    int // rotates the cycle-completing bonus, as in core.RAD
}

// NewRROnly returns the round-robin-without-DEQ scheduler for k categories.
func NewRROnly(k int) *sched.PerCategory {
	cats := make([]sched.CategoryScheduler, k)
	for i := range cats {
		cats[i] = &rrOnly{marked: make(map[int]bool)}
	}
	return sched.NewPerCategory("rr-only", cats)
}

func (r *rrOnly) Name() string { return "rr-only" }

func (r *rrOnly) Allot(t int64, jobs []sched.CatJob, p int) []int {
	allot := make([]int, len(jobs))
	if len(jobs) == 0 || p <= 0 {
		return allot
	}
	var q, qp []int
	for i, j := range jobs {
		if r.marked[j.ID] {
			qp = append(qp, i)
		} else {
			q = append(q, i)
		}
	}
	if len(q) > p {
		for _, i := range q[:p] {
			allot[i] = 1
			r.marked[jobs[i].ID] = true
		}
		return allot
	}
	// Cycle completes: give every unmarked job one processor, spend any
	// leftover on marked jobs (still one each — RR never space-shares),
	// rotating which marked jobs benefit across cycles.
	for _, i := range q {
		allot[i] = 1
	}
	left := p - len(q)
	if left > len(qp) {
		left = len(qp)
	}
	if left > 0 {
		start := r.rot % len(qp)
		for j := 0; j < left; j++ {
			allot[qp[(start+j)%len(qp)]] = 1
		}
		r.rot += left
	}
	clear(r.marked)
	return allot
}

func (r *rrOnly) JobsDone(ids []int) {
	for _, id := range ids {
		delete(r.marked, id)
	}
}

// equi is classic equi-partitioning: every α-active job receives an equal
// share of the α-processors regardless of how many tasks it can actually
// run, so processors granted beyond a job's desire are wasted. Analyzed by
// Edmonds et al. (2+√3-competitive for mean response time at K = 1).
type equi struct{}

// NewEQUI returns the equi-partitioning scheduler for k categories.
func NewEQUI(k int) *sched.PerCategory {
	cats := make([]sched.CategoryScheduler, k)
	for i := range cats {
		cats[i] = equi{}
	}
	return sched.NewPerCategory("equi", cats)
}

func (equi) Name() string { return "equi" }

func (equi) Allot(t int64, jobs []sched.CatJob, p int) []int {
	allot := make([]int, len(jobs))
	n := len(jobs)
	if n == 0 || p <= 0 {
		return allot
	}
	share, extra := p/n, p%n
	start := int(t) % n
	for i := range allot {
		allot[i] = share
		if extra > 0 && (i-start+n)%n < extra {
			allot[i]++
		}
	}
	return allot
}

// fcfs fills desires in ascending job-ID (arrival) order with work-
// conserving backfill: the oldest job takes as much as it desires, then the
// next, until the category is exhausted.
type fcfs struct{}

// NewFCFS returns the arrival-order desire-filling scheduler for k
// categories.
func NewFCFS(k int) *sched.PerCategory {
	cats := make([]sched.CategoryScheduler, k)
	for i := range cats {
		cats[i] = fcfs{}
	}
	return sched.NewPerCategory("fcfs", cats)
}

func (fcfs) Name() string { return "fcfs" }

func (fcfs) Allot(t int64, jobs []sched.CatJob, p int) []int {
	allot := make([]int, len(jobs))
	for i, j := range jobs {
		if p == 0 {
			break
		}
		a := j.Desire
		if a > p {
			a = p
		}
		allot[i] = a
		p -= a
	}
	return allot
}

// greedyDesire fills desires in descending-desire order (widest job first),
// a throughput-greedy heuristic that ignores fairness entirely.
type greedyDesire struct{}

// NewGreedyDesire returns the widest-job-first scheduler for k categories.
func NewGreedyDesire(k int) *sched.PerCategory {
	cats := make([]sched.CategoryScheduler, k)
	for i := range cats {
		cats[i] = greedyDesire{}
	}
	return sched.NewPerCategory("greedy-desire", cats)
}

func (greedyDesire) Name() string { return "greedy-desire" }

func (greedyDesire) Allot(t int64, jobs []sched.CatJob, p int) []int {
	allot := make([]int, len(jobs))
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Desire > jobs[order[b]].Desire
	})
	for _, i := range order {
		if p == 0 {
			break
		}
		a := jobs[i].Desire
		if a > p {
			a = p
		}
		allot[i] = a
		p -= a
	}
	return allot
}

// SJF is the clairvoyant shortest-remaining-work-first scheduler: it orders
// jobs by total remaining work (information a non-clairvoyant scheduler
// cannot have) and fills their desires in that order per category. It is
// the "what could you do if you knew the future" yardstick in the
// experiment tables.
type SJF struct {
	oracle sched.Oracle
}

// NewSJF returns the clairvoyant baseline. The engine must inject an
// oracle via SetOracle before the first step.
func NewSJF() *SJF { return &SJF{} }

// Name implements sched.Scheduler.
func (s *SJF) Name() string { return "sjf-clairvoyant" }

// SetOracle implements sched.Clairvoyant.
func (s *SJF) SetOracle(o sched.Oracle) { s.oracle = o }

// Allot implements sched.Scheduler.
func (s *SJF) Allot(t int64, jobs []sched.JobView, caps []int) [][]int {
	allot := make([][]int, len(jobs))
	for i := range allot {
		allot[i] = make([]int, len(caps))
	}
	if s.oracle == nil {
		panic("baselines: SJF used without an oracle; the engine must call SetOracle")
	}
	order := make([]int, len(jobs))
	rem := make([]int, len(jobs))
	for i := range jobs {
		order[i] = i
		total := 0
		for _, w := range s.oracle.RemainingWork(jobs[i].ID) {
			total += w
		}
		rem[i] = total
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] < rem[order[b]] })
	for a, p := range caps {
		left := p
		for _, i := range order {
			if left == 0 {
				break
			}
			d := jobs[i].Desire[a]
			if d > left {
				d = left
			}
			allot[i][a] = d
			left -= d
		}
	}
	return allot
}

var (
	_ sched.Scheduler         = (*SJF)(nil)
	_ sched.Clairvoyant       = (*SJF)(nil)
	_ sched.CategoryScheduler = deqOnly{}
	_ sched.CategoryScheduler = (*rrOnly)(nil)
	_ sched.CategoryCompleter = (*rrOnly)(nil)
	_ sched.CategoryScheduler = equi{}
	_ sched.CategoryScheduler = fcfs{}
	_ sched.CategoryScheduler = greedyDesire{}
)
