package metrics

import (
	"strings"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sim"
)

func TestSlowdownsSoloJobIsOne(t *testing.T) {
	res := runKRAD(t, 1, []int{4}, []sim.JobSpec{{Graph: dag.UniformChain(1, 9, 1)}})
	s := Slowdowns(res)
	if len(s) != 1 || s[0] != 1 {
		t.Errorf("solo chain slowdown = %v, want [1]", s)
	}
	if MaxSlowdown(res) != 1 {
		t.Errorf("MaxSlowdown = %v", MaxSlowdown(res))
	}
}

func TestSlowdownsAtLeastOne(t *testing.T) {
	var specs []sim.JobSpec
	for i := 0; i < 12; i++ {
		specs = append(specs, sim.JobSpec{Graph: dag.UniformChain(1, 3, 1)})
	}
	res := runKRAD(t, 1, []int{2}, specs)
	for i, s := range Slowdowns(res) {
		if s < 1 {
			t.Errorf("job %d slowdown %v < 1", i, s)
		}
	}
	// Under a 6× backlog the worst slowdown must exceed 1.
	if MaxSlowdown(res) <= 1 {
		t.Error("backlogged run reports no slowdown")
	}
}

func TestSlowdownWorkLimitedIdeal(t *testing.T) {
	// A fork-join of width 8 on 2 processors: ideal is work-limited
	// (10/2 = 5), not span-limited (3). Solo run takes exactly 5? The job
	// has fork+join serial tasks: 1 + 4 + 1 = 6 steps actually; ideal LB
	// is max(3, ⌈10/2⌉) = 5 so slowdown = 6/5.
	res := runKRAD(t, 1, []int{2}, []sim.JobSpec{{Graph: dag.ForkJoin(1, 8, 1, 1, 1)}})
	s := Slowdowns(res)[0]
	if s < 1 || s > 1.3 {
		t.Errorf("slowdown %v outside the expected [1, 1.3]", s)
	}
}

func TestHistogram(t *testing.T) {
	if !strings.Contains(Histogram(nil, 5, 20), "empty") {
		t.Error("empty sample not reported")
	}
	out := Histogram([]float64{1, 1, 2, 5, 5, 5}, 4, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "█") {
		t.Error("no bars rendered")
	}
	// Constant sample lands in one bucket.
	out = Histogram([]float64{3, 3, 3}, 4, 10)
	if !strings.Contains(out, "3") {
		t.Errorf("constant histogram:\n%s", out)
	}
	// Degenerate parameters are clamped, not fatal.
	_ = Histogram([]float64{1, 2}, 0, 0)
}

// runKRAD is defined in bounds_test.go; this file adds a compile-time use
// of core to keep the import explicit for the helper.
var _ = core.NewKRAD
