// Package moldable implements the third runtime family: moldable tasks
// under precedence constraints. Each task picks a processor count p once
// when it starts — bounded by its own maximum and by the processors the
// scheduler made available — and then runs non-preemptively for
// ceil(work / s(p)) steps on exactly p processors of its category, where
// s is a concave speedup curve with s(1) = 1. The model follows
// "Multi-Resource List Scheduling of Moldable Parallel Jobs under
// Precedence Constraints" (arXiv 2106.07059) and "Optimal Parallel
// Scheduling under Concave Speedup Functions" (arXiv 2509.01811): list
// scheduling with an efficiency-capped allotment achieves a constant
// competitive ratio against the area and critical-path lower bounds, and
// the ratio test in this package checks our execution against that
// envelope.
//
// Jobs are built from a validated wire Spec (the same JSON shape kradd
// accepts and the journal replays), plug into the engine through
// sim.JobSource, and execute through an Instance that implements the
// floor-pinning (sim.FloorRuntime) and held-window event-leap
// (sim.HoldRuntime) capabilities.
package moldable

import (
	"fmt"
	"math"
)

// Curve is a task's speedup function s(p): running on p processors takes
// ceil(work / s(p)) steps. The model requires s(1) = 1, s nondecreasing,
// s concave, and s(p) ≤ p (no superlinear speedup); CheckCurve verifies
// all four numerically and Spec decoding enforces the parameter ranges
// that guarantee them analytically.
type Curve interface {
	// Speedup returns s(p) for p ≥ 1.
	Speedup(p int) float64
	// Spec returns the curve's wire encoding.
	Spec() CurveSpec
}

// PowerLaw is s(p) = p^Alpha with Alpha in (0, 1]. Alpha = 1 is linear
// (perfectly parallel) speedup; smaller exponents model communication
// overhead growing with the allotment.
type PowerLaw struct {
	Alpha float64
}

// Speedup implements Curve.
func (c PowerLaw) Speedup(p int) float64 { return math.Pow(float64(p), c.Alpha) }

// Spec implements Curve.
func (c PowerLaw) Spec() CurveSpec { return CurveSpec{Type: CurvePowerLaw, Alpha: c.Alpha} }

// Amdahl is s(p) = 1 / (Serial + (1−Serial)/p) with Serial in [0, 1]: a
// Serial fraction of the work cannot be parallelized, so speedup
// saturates at 1/Serial. Serial = 0 is linear speedup; Serial = 1 is no
// speedup at all.
type Amdahl struct {
	Serial float64
}

// Speedup implements Curve.
func (c Amdahl) Speedup(p int) float64 {
	return 1 / (c.Serial + (1-c.Serial)/float64(p))
}

// Spec implements Curve.
func (c Amdahl) Spec() CurveSpec { return CurveSpec{Type: CurveAmdahl, Serial: c.Serial} }

// Curve type names used on the wire.
const (
	CurvePowerLaw = "powerlaw"
	CurveAmdahl   = "amdahl"
)

// CurveSpec is the wire encoding of a speedup curve:
//
//	{"type": "powerlaw", "alpha": 0.5}
//	{"type": "amdahl", "serial": 0.1}
type CurveSpec struct {
	Type string `json:"type"`
	// Alpha is the power-law exponent (powerlaw curves only), in (0, 1].
	Alpha float64 `json:"alpha,omitempty"`
	// Serial is the non-parallelizable fraction (amdahl curves only), in
	// [0, 1].
	Serial float64 `json:"serial,omitempty"`
}

// Curve decodes and validates the spec. Parameter ranges are chosen so
// the decoded curve satisfies the model's assumptions by construction.
func (cs CurveSpec) Curve() (Curve, error) {
	switch cs.Type {
	case CurvePowerLaw:
		if cs.Serial != 0 {
			return nil, fmt.Errorf("powerlaw curve carries stray serial %v", cs.Serial)
		}
		if !(cs.Alpha > 0 && cs.Alpha <= 1) {
			return nil, fmt.Errorf("powerlaw alpha %v out of range (0, 1]", cs.Alpha)
		}
		return PowerLaw{Alpha: cs.Alpha}, nil
	case CurveAmdahl:
		if cs.Alpha != 0 {
			return nil, fmt.Errorf("amdahl curve carries stray alpha %v", cs.Alpha)
		}
		if !(cs.Serial >= 0 && cs.Serial <= 1) {
			return nil, fmt.Errorf("amdahl serial fraction %v out of range [0, 1]", cs.Serial)
		}
		return Amdahl{Serial: cs.Serial}, nil
	default:
		return nil, fmt.Errorf("unknown curve type %q (have %s, %s)", cs.Type, CurvePowerLaw, CurveAmdahl)
	}
}

// curveEps absorbs float rounding in the CheckCurve comparisons.
const curveEps = 1e-9

// CheckCurve numerically verifies the model's assumptions over p = 1..pmax:
// s(1) = 1 (identity), s nondecreasing (monotone), increments nonincreasing
// (concave), and s(p) ≤ p (no superlinear speedup). Spec-decoded curves
// satisfy it by construction; the check exists for custom Curve
// implementations and as the oracle of the curve test suite.
func CheckCurve(c Curve, pmax int) error {
	s1 := c.Speedup(1)
	if math.IsNaN(s1) || math.Abs(s1-1) > curveEps {
		return fmt.Errorf("s(1) = %v, want 1", s1)
	}
	prev, prevInc := s1, math.Inf(1)
	for p := 2; p <= pmax; p++ {
		s := c.Speedup(p)
		if math.IsNaN(s) || s < prev-curveEps {
			return fmt.Errorf("s(%d) = %v below s(%d) = %v: curve is not monotone", p, s, p-1, prev)
		}
		if s > float64(p)+curveEps {
			return fmt.Errorf("s(%d) = %v exceeds p: superlinear speedup", p, s)
		}
		inc := s - prev
		if inc > prevInc+curveEps {
			return fmt.Errorf("increment s(%d)−s(%d) = %v exceeds the previous increment %v: curve is not concave", p, p-1, inc, prevInc)
		}
		prev, prevInc = s, inc
	}
	return nil
}

// steps returns ceil(work / s(p)), the whole-step duration of a task of
// the given serial work on p processors, never below 1.
func steps(work int, c Curve, p int) int {
	d := int(math.Ceil(float64(work) / c.Speedup(p)))
	if d < 1 {
		d = 1
	}
	return d
}

// usefulProcs returns the molding policy's processor cap for a task: the
// largest p ≤ max with efficiency s(p)/p ≥ 1/2. Concavity makes
// efficiency nonincreasing in p, so the scan stops at the first failure.
// Starting a task on more processors than this wastes more than half of
// them, which is what breaks the list-scheduling area argument — the
// ½-efficiency cap is the standard molding rule in the moldable
// scheduling literature.
func usefulProcs(c Curve, max int) int {
	useful := 1
	for p := 2; p <= max; p++ {
		if 2*c.Speedup(p) < float64(p)-curveEps {
			break
		}
		useful = p
	}
	return useful
}
