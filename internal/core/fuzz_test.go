package core

import (
	"testing"
)

// FuzzDeq drives the DEQ primitive with arbitrary byte-derived inputs and
// asserts its contract: no panic, Σ allot ≤ p, 0 ≤ allot[i] ≤ desire[i],
// and work conservation (all of p used whenever total demand exceeds it).
func FuzzDeq(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5}, uint16(8), int16(0))
	f.Add([]byte{10, 10, 10}, uint16(2), int16(-7))
	f.Add([]byte{}, uint16(5), int16(3))
	f.Add([]byte{255}, uint16(0), int16(1))
	f.Fuzz(func(t *testing.T, raw []byte, pRaw uint16, rot int16) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		desires := make([]int, 0, len(raw))
		demand := 0
		for _, b := range raw {
			d := int(b)%40 + 1 // strictly positive, as the contract requires
			desires = append(desires, d)
			demand += d
		}
		p := int(pRaw) % 128
		allot := Deq(desires, p, int(rot))
		if len(allot) != len(desires) {
			t.Fatalf("len %d != %d", len(allot), len(desires))
		}
		total := 0
		for i := range desires {
			if allot[i] < 0 || allot[i] > desires[i] {
				t.Fatalf("allot[%d]=%d outside [0,%d]", i, allot[i], desires[i])
			}
			total += allot[i]
		}
		if total > p {
			t.Fatalf("total %d > p %d", total, p)
		}
		if total < p && total < demand {
			t.Fatalf("not work conserving: total %d, p %d, demand %d", total, p, demand)
		}
	})
}
