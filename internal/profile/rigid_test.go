package profile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sim"
)

func TestNewRigidValidation(t *testing.T) {
	cases := []struct {
		k     int
		cat   dag.Category
		procs int
		steps int
	}{
		{0, 1, 1, 1},  // bad k
		{2, 0, 1, 1},  // cat low
		{2, 3, 1, 1},  // cat high
		{2, 1, 0, 1},  // no procs
		{2, 1, -1, 1}, // negative procs
		{2, 1, 1, 0},  // no steps
	}
	for _, c := range cases {
		if _, err := NewRigid(c.k, "bad", c.cat, c.procs, c.steps); err == nil {
			t.Errorf("NewRigid(k=%d cat=%d procs=%d steps=%d) accepted", c.k, c.cat, c.procs, c.steps)
		}
	}
	if _, err := NewRigid(3, "ok", 2, 4, 7); err != nil {
		t.Fatalf("valid rigid rejected: %v", err)
	}
}

func TestRigidMetrics(t *testing.T) {
	j := MustNewRigid(3, "r", 2, 4, 7)
	if j.K() != 3 || j.Span() != 7 || j.TotalTasks() != 28 {
		t.Fatalf("k/span/total = %d/%d/%d, want 3/7/28", j.K(), j.Span(), j.TotalTasks())
	}
	if w := j.WorkVector(); w[0] != 0 || w[1] != 28 || w[2] != 0 {
		t.Fatalf("WorkVector = %v", w)
	}
	if got := j.AppendWork(nil); len(got) != 3 || got[1] != 28 {
		t.Fatalf("AppendWork = %v", got)
	}
	if j.Family() != sim.FamilyProfile {
		t.Fatalf("Family = %v, want profile", j.Family())
	}
	// AppendWork must agree with WorkVector and respect existing contents.
	buf := j.AppendWork([]int{9})
	if len(buf) != 4 || buf[0] != 9 || buf[2] != 28 {
		t.Fatalf("AppendWork with prefix = %v", buf)
	}
}

func TestRigidSpecRoundTrip(t *testing.T) {
	j := MustNewRigid(3, "trace-42", 1, 8, 300)
	sp := j.Spec()
	back, err := FromRigidSpec(sp)
	if err != nil {
		t.Fatalf("FromRigidSpec: %v", err)
	}
	if *back != *j {
		t.Fatalf("round trip: %+v != %+v", back, j)
	}
	sp.Cat = 9
	if _, err := FromRigidSpec(sp); err == nil {
		t.Fatalf("out-of-range spec accepted")
	}
}

func TestRigidProfileExpansion(t *testing.T) {
	j := MustNewRigid(2, "r", 2, 3, 4)
	p := j.Profile()
	if p.Span() != j.Span() || p.TotalTasks() != j.TotalTasks() {
		t.Fatalf("expansion span/total mismatch")
	}
	pw, jw := p.WorkVector(), j.WorkVector()
	for a := range pw {
		if pw[a] != jw[a] {
			t.Fatalf("expansion work %v != %v", pw, jw)
		}
	}
}

func TestRigidRuntimeBarrierSemantics(t *testing.T) {
	j := MustNewRigid(2, "r", 1, 3, 2)
	r := j.NewRuntime(dag.PickFIFO, 0)
	if r.Desire(1) != 3 || r.Desire(2) != 0 || r.Desire(5) != 0 {
		t.Fatalf("initial desires wrong")
	}
	// Partial execution keeps the phase open across the barrier.
	if got := r.Execute(1, 2); got != 2 {
		t.Fatalf("Execute = %d, want 2", got)
	}
	r.Advance()
	if r.Desire(1) != 1 {
		t.Fatalf("after partial step Desire = %d, want 1", r.Desire(1))
	}
	// Finishing the phase releases the next one at the barrier.
	r.Execute(1, 1)
	r.Advance()
	if r.Desire(1) != 3 {
		t.Fatalf("second phase Desire = %d, want 3", r.Desire(1))
	}
	if r.Done() {
		t.Fatalf("done too early")
	}
	r.Execute(1, 3)
	r.Advance()
	if !r.Done() {
		t.Fatalf("not done after all tasks")
	}
	if rw := r.RemainingWork(); rw[0] != 0 || rw[1] != 0 {
		t.Fatalf("RemainingWork after done = %v", rw)
	}
	// Execute on the wrong category or with bad n is a no-op.
	if r.Execute(2, 1) != 0 || r.Execute(1, -1) != 0 {
		t.Fatalf("bad Execute args not rejected")
	}
}

func TestRigidReuseRuntime(t *testing.T) {
	a := MustNewRigid(2, "a", 1, 3, 2)
	b := MustNewRigid(2, "b", 2, 5, 1)
	rt := a.NewRuntime(dag.PickFIFO, 0)
	rt.Execute(1, 3)
	rt.Advance()
	// Reuse resets fully, even mid-run and across jobs.
	rt2, ok := b.ReuseRuntime(rt, dag.PickFIFO, 7)
	if !ok {
		t.Fatalf("ReuseRuntime refused a rigid runtime")
	}
	if rt2.Desire(2) != 5 || rt2.Desire(1) != 0 || rt2.Done() {
		t.Fatalf("reused runtime not reset: desire(2)=%d", rt2.Desire(2))
	}
	// Foreign runtime types are refused.
	p := MustNew(2, "p", []Phase{{Tasks: []int{1, 0}}})
	if _, ok := b.ReuseRuntime(p.NewRuntime(dag.PickFIFO, 0), dag.PickFIFO, 0); ok {
		t.Fatalf("ReuseRuntime accepted a general profile runtime")
	}
}

func TestProfileReuseRuntime(t *testing.T) {
	a := MustNew(2, "a", []Phase{{Tasks: []int{2, 1}}, {Tasks: []int{0, 3}}})
	b := MustNew(2, "b", []Phase{{Tasks: []int{1, 1}}})
	rt := a.NewRuntime(dag.PickFIFO, 0)
	rt.Execute(1, 2)
	rt.Advance()
	rt2, ok := b.ReuseRuntime(rt, dag.PickFIFO, 0)
	if !ok {
		t.Fatalf("ReuseRuntime refused a matching profile runtime")
	}
	if rt2.Desire(1) != 1 || rt2.Desire(2) != 1 || rt2.Done() {
		t.Fatalf("reused profile runtime not reset")
	}
	// K mismatch is refused.
	c := MustNew(3, "c", []Phase{{Tasks: []int{1, 0, 0}}})
	if _, ok := c.ReuseRuntime(rt2, dag.PickFIFO, 0); ok {
		t.Fatalf("ReuseRuntime accepted a runtime of different k")
	}
}

// TestQuickRigidEquivalentToProfile is the semantic equivalence property:
// a rigid job and its expanded profile job produce identical makespans and
// responses under K-RAD on the same machine, leap on or off.
func TestQuickRigidEquivalentToProfile(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		caps := make([]int, k)
		for i := range caps {
			caps[i] = 1 + rng.Intn(4)
		}
		nJobs := 1 + rng.Intn(5)
		var rigidSpecs, profSpecs []sim.JobSpec
		for i := 0; i < nJobs; i++ {
			j := MustNewRigid(k, "r", dag.Category(1+rng.Intn(k)), 1+rng.Intn(6), 1+rng.Intn(5))
			release := int64(rng.Intn(4))
			rigidSpecs = append(rigidSpecs, sim.JobSpec{Source: j, Release: release})
			profSpecs = append(profSpecs, sim.JobSpec{Source: j.Profile(), Release: release})
		}
		noLeap := rng.Intn(2) == 0
		run := func(specs []sim.JobSpec) *sim.Result {
			res, err := sim.Run(sim.Config{
				K: k, Caps: caps, Scheduler: core.NewKRAD(k),
				Pick: dag.PickFIFO, ValidateAllotments: true, NoLeap: noLeap,
			}, specs)
			if err != nil {
				t.Logf("run error: %v", err)
				return nil
			}
			return res
		}
		a, b := run(rigidSpecs), run(profSpecs)
		if a == nil || b == nil {
			return false
		}
		if a.Makespan != b.Makespan || a.TotalResponse() != b.TotalResponse() {
			t.Logf("seed %d noLeap=%v: rigid makespan=%d resp=%d; profile makespan=%d resp=%d",
				seed, noLeap, a.Makespan, a.TotalResponse(), b.Makespan, b.TotalResponse())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
