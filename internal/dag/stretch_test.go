package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStretchValidation(t *testing.T) {
	g := Figure1()
	if _, err := Stretch(g, []int{1, 2}); err == nil {
		t.Error("accepted wrong factor count")
	}
	if _, err := Stretch(g, []int{1, 0, 2}); err == nil {
		t.Error("accepted zero factor")
	}
}

func TestStretchIdentity(t *testing.T) {
	g := Figure1()
	s := MustStretch(g, []int{1, 1, 1})
	if s.NumTasks() != g.NumTasks() || s.NumEdges() != g.NumEdges() {
		t.Errorf("identity stretch changed size: %v vs %v", s, g)
	}
	if s.Span() != g.Span() {
		t.Errorf("identity stretch changed span: %d vs %d", s.Span(), g.Span())
	}
}

func TestStretchWorkMultiplies(t *testing.T) {
	g := Figure1() // work [3 3 4]
	factors := []int{2, 3, 1}
	s := MustStretch(g, factors)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	wv := s.WorkVector()
	orig := g.WorkVector()
	for a := range wv {
		if wv[a] != orig[a]*factors[a] {
			t.Errorf("category %d work %d, want %d·%d", a+1, wv[a], orig[a], factors[a])
		}
	}
}

func TestStretchChainSpan(t *testing.T) {
	// A chain alternating categories 1,2,1,2 with factors 2,3 has span
	// 2+3+2+3 = 10.
	g := Chain(2, 4, func(i int) Category { return Category(i%2 + 1) })
	s := MustStretch(g, []int{2, 3})
	if s.Span() != 10 {
		t.Errorf("span %d, want 10", s.Span())
	}
}

func TestQuickStretchInvariants(t *testing.T) {
	f := func(seed int64, f1Raw, f2Raw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(2, RandomOpts{Tasks: 1 + rng.Intn(40), EdgeProb: 0.15, Window: 8}, rng)
		factors := []int{1 + int(f1Raw)%4, 1 + int(f2Raw)%4}
		s, err := Stretch(g, factors)
		if err != nil || s.Validate() != nil {
			return false
		}
		// Work multiplies exactly.
		gw, sw := g.WorkVector(), s.WorkVector()
		for a := range gw {
			if sw[a] != gw[a]*factors[a] {
				return false
			}
		}
		// Span is bounded by span·maxFactor and at least span·minFactor.
		minF, maxF := factors[0], factors[0]
		for _, v := range factors {
			if v < minF {
				minF = v
			}
			if v > maxF {
				maxF = v
			}
		}
		return s.Span() >= g.Span()*minF && s.Span() <= g.Span()*maxF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
