package journal

import (
	"bytes"
	"reflect"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/profile"
	"krad/internal/sim"
)

func rigidEngine(t *testing.T) *sim.Engine {
	t.Helper()
	eng, err := sim.NewEngine(sim.Config{
		K: 2, Caps: []int{4, 4}, Scheduler: core.NewKRAD(2), Pick: dag.PickFIFO,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestRigidJournalRoundTrip mirrors the moldable round-trip contract for
// rigid jobs: a mixed rigid+graph batch journaled to disk, reopened and
// replayed must rebuild the engine bit-identically, with the "profile"
// family tag and the rigid spec payload surviving the byte domain.
func TestRigidJournalRoundTrip(t *testing.T) {
	path := tempJournal(t)
	j, _ := mustOpen(t, path, Options{})

	live := rigidEngine(t)
	specs := []sim.JobSpec{
		{Source: profile.MustNewRigid(2, "r0", 1, 3, 2)},
		{Graph: dag.UniformChain(2, 3, 1)},
		{Source: profile.MustNewRigid(2, "r1", 2, 2, 4), Release: 3},
	}
	ids, err := live.AdmitBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := AdmitRecord(ids[0], specs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.V != recordVersion {
		t.Fatalf("rigid batch record version %d, want %d", rec.V, recordVersion)
	}
	mustAppend(t, j, rec)
	for live.Remaining() > 0 {
		info, err := live.StepN(5)
		if err != nil {
			t.Fatal(err)
		}
		mustAppend(t, j, StepsRecord(info.Steps, info.Step))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recovered := mustOpen(t, path, Options{})
	defer j2.Close()
	got := recovered[0]
	if got.Jobs[0].Fam != "profile" || got.Jobs[0].Rigid == nil ||
		got.Jobs[1].Fam != "" || got.Jobs[1].Graph == nil ||
		got.Jobs[2].Rigid == nil {
		t.Fatalf("recovered job records lost rigid payloads: %+v", got.Jobs)
	}
	if sp := *got.Jobs[2].Rigid; sp != (profile.RigidSpec{K: 2, Name: "r1", Cat: 2, Procs: 2, Steps: 4}) {
		t.Fatalf("recovered rigid spec drifted: %+v", sp)
	}
	replayed := rigidEngine(t)
	if err := Replay(replayed, recovered); err != nil {
		t.Fatal(err)
	}
	sl, sr := live.Snapshot(), replayed.Snapshot()
	if sl.Now != sr.Now || !reflect.DeepEqual(sl.ExecutedTotal, sr.ExecutedTotal) ||
		sl.Completed != sr.Completed || sl.Makespan != sr.Makespan {
		t.Fatalf("rigid replay diverged:\nlive   %+v\nreplay %+v", sl, sr)
	}
	if !reflect.DeepEqual(live.Result(), replayed.Result()) {
		t.Fatal("per-job results diverged after rigid replay")
	}
}

// TestAdmitRecordIntoRecycles pins the admission-record reuse contract:
// refilling a scratch Record with same-shape specs encodes the same bytes
// AdmitRecord would produce, keeps the Jobs backing array and the rigid
// spec box from the previous fill, and — once warm — allocates nothing.
func TestAdmitRecordIntoRecycles(t *testing.T) {
	specs := []sim.JobSpec{{Source: profile.MustNewRigid(3, "a", 2, 3, 4), Release: 7}}
	var rec Record
	if err := AdmitRecordInto(&rec, 5, specs); err != nil {
		t.Fatal(err)
	}
	box, backing := rec.Jobs[0].Rigid, &rec.Jobs[0]

	specs[0] = sim.JobSpec{Source: profile.MustNewRigid(3, "b", 1, 2, 2), Release: 9}
	if err := AdmitRecordInto(&rec, 6, specs); err != nil {
		t.Fatal(err)
	}
	if rec.Jobs[0].Rigid != box || &rec.Jobs[0] != backing {
		t.Fatal("AdmitRecordInto reallocated the job slot or the rigid box")
	}
	want, err := AdmitRecord(6, specs)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := encodeRecord(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("reused record encodes differently:\n %s\n %s", gotB, wantB)
	}

	if avg := testing.AllocsPerRun(100, func() {
		if err := AdmitRecordInto(&rec, 6, specs); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("warm AdmitRecordInto allocates %.1f per call; want 0", avg)
	}
}

// TestJournalSyncStats pins the durability-overhead counters: every
// SyncAlways append flushes once, and the cumulative flush time is
// reported as a non-negative duration.
func TestJournalSyncStats(t *testing.T) {
	path := tempJournal(t)
	j, _ := mustOpen(t, path, Options{Sync: SyncAlways})
	base := j.Stats().Syncs // Open syncs the fresh header outside the counters
	for i := 0; i < 3; i++ {
		mustAppend(t, j, StepRecord(int64(i+1)))
	}
	st := j.Stats()
	if st.Syncs != base+3 {
		t.Fatalf("Syncs = %d after 3 SyncAlways appends (base %d), want %d", st.Syncs, base, base+3)
	}
	if st.SyncSeconds < 0 {
		t.Fatalf("SyncSeconds negative: %v", st.SyncSeconds)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := j.Stats().Syncs; got != base+4 {
		t.Fatalf("Close did not count its final sync: %d, want %d", got, base+4)
	}
}
