// Package sim implements the K-resource scheduling model of Section 2 as a
// discrete-time simulator. Time advances in unit steps; at every step each
// active job reports its instantaneous per-category parallelism, the
// scheduler under test returns integer allotments bounded by the
// per-category processor counts, and each job executes that many ready
// tasks. The engine enforces the paper's schedule-validity conditions
// (precedence, category matching, capacity) and records the metrics the
// competitive analysis is stated in: makespan and response times.
//
// Two entry points exist. Run simulates a fully known batch job set and is
// what the experiment suite uses. Engine is the incremental form of the
// same machine: jobs can be admitted (and cancelled) while the clock is
// running, which is what the online scheduler service (internal/server)
// builds on. Run is a thin loop over Engine, so both paths produce
// identical schedules for identical job sets.
package sim

import (
	"fmt"
	"sort"

	"krad/internal/dag"
	"krad/internal/sched"
)

// JobSpec describes one job submitted to a run: its shape and release
// time. Exactly one of Graph and Source must be set — Graph is the common
// K-DAG case; Source admits alternative representations such as
// internal/profile's compact phase jobs.
type JobSpec struct {
	Graph   *dag.Graph
	Source  JobSource
	Release int64
}

// source resolves the job's JobSource.
func (s JobSpec) source() JobSource {
	if s.Graph != nil {
		return GraphSource(s.Graph)
	}
	return s.Source
}

// Config parameterizes a run.
type Config struct {
	// K is the number of resource categories; every job graph must agree.
	K int
	// Caps[α−1] is Pα, the processor count of category α.
	Caps []int
	// Scheduler is the algorithm under test.
	Scheduler sched.Scheduler
	// Pick is the task-pick policy applied by every job when its allotment
	// is below its desire (see dag.PickPolicy). The scheduling theorems
	// hold for every policy; the adversarial experiments vary it.
	Pick dag.PickPolicy
	// Seed feeds the PickRandom policy (ignored otherwise).
	Seed int64
	// Speed is the resource-augmentation factor of the speed-augmentation
	// analysis framework (Kalyanasundaram–Pruhs; Edmonds' EQUI results):
	// every processor runs s ≥ 1 micro-rounds per time step, so it can
	// execute s dependent tasks in one step. 0 and 1 both mean normal
	// speed. Allotments are decided once per step and reused each
	// micro-round; completion times are whole steps.
	Speed int
	// MaxSteps aborts runaway simulations (e.g. a broken scheduler that
	// never allots anything). 0 means an automatic bound of
	// 4·(total work + max release) + 64.
	MaxSteps int64
	// Trace selects how much per-step detail to record.
	Trace TraceLevel
	// ValidateAllotments re-checks the scheduler's output every step and
	// fails the run on the first violation. Cheap; on by default in tests.
	ValidateAllotments bool
	// Observer, when non-nil, is invoked after every scheduling decision
	// with the step, the job views the scheduler saw, and the allotments
	// it returned. The slices are reused between steps — copy anything
	// retained. Used for instrumentation such as reallocation-churn
	// accounting (metrics.ChurnObserver).
	Observer func(t int64, jobs []sched.JobView, allot [][]int)
	// Parallel executes the per-job task-execution phase on multiple
	// goroutines. Only the execution phase is parallelized — scheduling
	// decisions stay sequential and results are identical to serial runs.
	Parallel bool
	// Workers bounds the goroutines used when Parallel is set; 0 means
	// a small fixed fan-out.
	Workers int
	// NoLeap disables the event-leap fast path: StepN executes every step
	// through its own scheduling round. Results are bit-identical either
	// way (the equivalence tests assert it); the knob exists for those
	// tests and for debugging.
	NoLeap bool
}

// Run simulates the job set under cfg and returns the collected results.
// The specs may be given in any order; the engine sorts them by release
// time (stable, so equal releases keep submission order) and assigns job
// IDs 0, 1, 2, ... in that order — ascending ID is ascending arrival order,
// which is the queue order RAD's round-robin relies on.
//
// Run is implemented as a thin loop over Engine: admit every job, step
// until all of them complete.
func Run(cfg Config, specs []JobSpec) (*Result, error) {
	if err := checkConfig(&cfg, specs); err != nil {
		return nil, err
	}

	// Sort by release, stably, so Admit assigns IDs in release order
	// (equal releases keep submission order).
	ordered := make([]JobSpec, len(specs))
	copy(ordered, specs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Release < ordered[j].Release })

	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	for _, s := range ordered {
		if _, err := eng.Admit(s); err != nil {
			return nil, err
		}
	}
	// Drive through StepN so batch runs benefit from event-leaps; StepN is
	// bit-identical to single-stepping, so Run's results are unchanged.
	for eng.Remaining() > 0 {
		if _, err := eng.StepN(1 << 40); err != nil {
			return nil, err
		}
	}
	return eng.Result(), nil
}

// checkConfig validates a batch run: the configuration itself plus every
// spec, reporting spec errors by their index in the caller's slice.
func checkConfig(cfg *Config, specs []JobSpec) error {
	if err := checkEngineConfig(cfg); err != nil {
		return err
	}
	if len(specs) == 0 {
		return fmt.Errorf("sim: empty job set")
	}
	for i, s := range specs {
		if err := checkSpec(cfg, s, i); err != nil {
			return err
		}
	}
	return nil
}

// checkEngineConfig validates the job-independent part of a Config.
func checkEngineConfig(cfg *Config) error {
	if cfg.K < 1 {
		return fmt.Errorf("sim: config K=%d, need ≥ 1", cfg.K)
	}
	if len(cfg.Caps) != cfg.K {
		return fmt.Errorf("sim: config has %d capacities for K=%d", len(cfg.Caps), cfg.K)
	}
	for a, p := range cfg.Caps {
		if p < 1 {
			return fmt.Errorf("sim: category %d has capacity %d, need ≥ 1", a+1, p)
		}
	}
	if cfg.Scheduler == nil {
		return fmt.Errorf("sim: config has no scheduler")
	}
	if cfg.Speed < 0 {
		return fmt.Errorf("sim: config Speed=%d, need ≥ 0", cfg.Speed)
	}
	return nil
}

// checkSpec validates one job spec; i labels it in error messages.
func checkSpec(cfg *Config, s JobSpec, i int) error {
	if s.Graph == nil && s.Source == nil {
		return fmt.Errorf("sim: job %d has neither graph nor source", i)
	}
	if s.Graph != nil && s.Source != nil {
		return fmt.Errorf("sim: job %d sets both graph and source", i)
	}
	src := s.source()
	if src.K() != cfg.K {
		return fmt.Errorf("sim: job %d (%s) declared for K=%d, run has K=%d", i, src.Name(), src.K(), cfg.K)
	}
	if src.TotalTasks() == 0 {
		return fmt.Errorf("sim: job %d (%s) is empty", i, src.Name())
	}
	if s.Release < 0 {
		return fmt.Errorf("sim: job %d has negative release %d", i, s.Release)
	}
	return nil
}
