// Package core implements the paper's contribution: the DEQ and ROUND-ROBIN
// sub-procedures, the per-category RAD scheduler that unifies them, and
// K-RAD — one RAD per resource category (Figure 2 of the paper).
package core

// Deq distributes p processors among jobs with the given positive desires,
// following the recursive DEQ procedure of Figure 2:
//
//	S ← {Ji ∈ Q : d(Ji) ≤ P/|Q|}
//	if S = ∅  → every job gets an equal share P/|Q| (the "mean deprived
//	            allotment")
//	else      → jobs in S get exactly their desire; recurse on Q−S with the
//	            remaining processors
//
// The paper's analysis uses real-valued equal shares; processors are
// integral, so the equal share is realized as ⌊P/|Q|⌋ with the remainder
// spread one processor each over the deprived jobs, starting at position
// rot mod |Q| so no job is systematically favored across steps. The
// returned allotments satisfy: Σ allot ≤ p; allot[i] ≤ desires[i]; every
// "satisfied" job receives exactly its desire; all "deprived" jobs receive
// shares differing by at most one.
//
// Desires must be strictly positive (the caller passes only α-active jobs).
func Deq(desires []int, p, rot int) []int {
	allot := make([]int, len(desires))
	if len(desires) == 0 || p <= 0 {
		return allot
	}
	// live holds the indices of jobs still being partitioned.
	live := make([]int, len(desires))
	for i := range live {
		live[i] = i
	}
	for len(live) > 0 && p > 0 {
		fair := p / len(live)
		// Collect the satisfied set S: desire ≤ fair share.
		rest := live[:0]
		taken := 0
		satisfied := 0
		for _, i := range live {
			if desires[i] <= fair {
				allot[i] = desires[i]
				taken += desires[i]
				satisfied++
			} else {
				rest = append(rest, i)
			}
		}
		if satisfied == 0 {
			// S = ∅: equal (deprived) shares with rotated remainder.
			n := len(rest)
			share := p / n
			extra := p % n
			start := 0
			if extra > 0 {
				start = rot % n
				if start < 0 {
					start += n
				}
			}
			for j := 0; j < n; j++ {
				a := share
				// The jobs at positions start, start+1, ... (mod n) absorb
				// the remainder. Each such job's desire exceeds fair ≥
				// share, so desire ≥ share+1 and the bump never exceeds it.
				if extra > 0 && (j-start+n)%n < extra {
					a++
				}
				allot[rest[j]] = a
			}
			return allot
		}
		p -= taken
		live = rest
	}
	return allot
}
