package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMixValidation(t *testing.T) {
	cases := []Mix{
		{K: 0, Jobs: 1, MinSize: 1, MaxSize: 2},
		{K: 1, Jobs: 0, MinSize: 1, MaxSize: 2},
		{K: 1, Jobs: 1, MinSize: 0, MaxSize: 2},
		{K: 1, Jobs: 1, MinSize: 5, MaxSize: 2},
		{K: 2, Jobs: 1, MinSize: 1, MaxSize: 2, CatWeights: []float64{1}},
	}
	for i, m := range cases {
		if _, err := m.Generate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, m)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	m := Mix{K: 3, Jobs: 20, MinSize: 5, MaxSize: 40, Seed: 99}
	a, err := m.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Graph.NumTasks() != b[i].Graph.NumTasks() ||
			a[i].Graph.NumEdges() != b[i].Graph.NumEdges() ||
			a[i].Graph.Span() != b[i].Graph.Span() {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a, _ := Mix{K: 2, Jobs: 30, MinSize: 5, MaxSize: 50, Seed: 1}.Generate()
	b, _ := Mix{K: 2, Jobs: 30, MinSize: 5, MaxSize: 50, Seed: 2}.Generate()
	same := true
	for i := range a {
		if a[i].Graph.NumTasks() != b[i].Graph.NumTasks() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical job sizes")
	}
}

func TestQuickGeneratedJobsAreValid(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 1 + int(kRaw)%4
		m := Mix{K: k, Jobs: 10, MinSize: 1, MaxSize: 30, Seed: seed}
		specs, err := m.Generate()
		if err != nil {
			return false
		}
		for _, s := range specs {
			if s.Graph.Validate() != nil {
				return false
			}
			if s.Graph.K() != k {
				return false
			}
			if s.Release != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSingleShapeMixes(t *testing.T) {
	for _, s := range AllShapes {
		m := Mix{K: 2, Jobs: 5, Shapes: []Shape{s}, MinSize: 4, MaxSize: 20, Seed: 3}
		specs, err := m.Generate()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		for _, spec := range specs {
			if err := spec.Graph.Validate(); err != nil {
				t.Errorf("%v: %v", s, err)
			}
		}
		if s.String() == "" {
			t.Errorf("shape %d has empty name", s)
		}
	}
}

func TestGenerateOnlineNondecreasingReleases(t *testing.T) {
	m := Mix{K: 2, Jobs: 50, MinSize: 2, MaxSize: 10, Seed: 7}
	specs, err := m.GenerateOnline(Poisson(3.5))
	if err != nil {
		t.Fatal(err)
	}
	var prev int64
	for i, s := range specs {
		if s.Release < prev {
			t.Fatalf("job %d release %d < previous %d", i, s.Release, prev)
		}
		prev = s.Release
	}
	if prev == 0 {
		t.Error("all releases zero — arrival process inert")
	}
}

func TestUniformArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Uniform(2, 5)
	for i := 0; i < 100; i++ {
		g := p(rng)
		if g < 2 || g > 5 {
			t.Fatalf("gap %d outside [2,5]", g)
		}
	}
}

func TestBurstyArrivals(t *testing.T) {
	p := Bursty(3, 10)
	rng := rand.New(rand.NewSource(1))
	gaps := make([]int64, 9)
	for i := range gaps {
		gaps[i] = p(rng)
	}
	// Jobs 1..3 in burst one (gaps 0,0,0), job 4 starts burst two (gap 10).
	want := []int64{0, 0, 0, 10, 0, 0, 10, 0, 0}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
}

func TestArrivalProcessPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"poisson":  func() { Poisson(0) },
		"uniform":  func() { Uniform(3, 1) },
		"bursty":   func() { Bursty(0, 1) },
		"negative": func() { Uniform(-1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCatWeightsBiasCategories(t *testing.T) {
	// Weight category 1 overwhelmingly: most tasks should land there.
	m := Mix{
		K: 2, Jobs: 20, MinSize: 10, MaxSize: 30,
		Shapes:     []Shape{ShapeChain},
		CatWeights: []float64{1000, 1},
		Seed:       5,
	}
	specs, err := m.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2 int
	for _, s := range specs {
		wv := s.Graph.WorkVector()
		c1 += wv[0]
		c2 += wv[1]
	}
	if c1 <= c2*10 {
		t.Errorf("weights ignored: cat1=%d cat2=%d", c1, c2)
	}
}
