package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"krad/internal/sched"
)

// RAD is the single-category adaptive scheduler of Figure 2. When the
// number of α-active jobs is at most the processor count it behaves as DEQ
// (space sharing); when the category is overloaded it runs batched
// round-robin cycles (time sharing): each cycle gives every α-active job
// one processor for one step before any job is scheduled twice.
//
// State is one mark per job: marked means "already scheduled in the current
// round-robin cycle". A RAD value is stateful and must not be shared
// between concurrent simulations; K-RAD builds one RAD per category.
type RAD struct {
	marked map[int]bool
	// rot rotates which marked jobs receive the cycle-completing "bonus"
	// service (the move from Q′ to Q below). Figure 2 leaves the choice
	// unspecified; rotating it keeps long-run service counts equal instead
	// of systematically favoring the lowest job IDs.
	rot int
}

// NewRAD returns a fresh single-category RAD scheduler.
func NewRAD() *RAD {
	return &RAD{marked: make(map[int]bool)}
}

// Name implements sched.CategoryScheduler.
func (r *RAD) Name() string { return "rad" }

// Allot implements the RAD procedure of Figure 2 for one category:
//
//	Q  ← unmarked α-active jobs (ascending ID = queue order)
//	Q′ ← marked α-active jobs
//	if |Q| > P  → ROUND-ROBIN: the first P jobs of Q get one processor
//	              each and are marked
//	else        → move min(|Q′|, P−|Q|) jobs from Q′ to Q, partition the
//	              processors over Q with DEQ, and unmark all jobs (the
//	              round-robin cycle, if any, is complete)
func (r *RAD) Allot(t int64, jobs []sched.CatJob, p int) []int {
	allot := make([]int, len(jobs))
	if len(jobs) == 0 || p <= 0 {
		return allot
	}
	// Split into Q (unmarked) and Q′ (marked), preserving ID order.
	q := make([]int, 0, len(jobs))  // indices into jobs
	qp := make([]int, 0, len(jobs)) // indices into jobs
	for i, j := range jobs {
		if r.marked[j.ID] {
			qp = append(qp, i)
		} else {
			q = append(q, i)
		}
	}
	if len(q) > p {
		// ROUND-ROBIN: first P jobs of Q get one processor each, marked.
		for _, i := range q[:p] {
			allot[i] = 1
			r.marked[jobs[i].ID] = true
		}
		return allot
	}
	// Cycle completes this step: fill Q from Q′ so no processor idles.
	// The jobs moved over are chosen round-robin across cycles (see rot).
	need := p - len(q)
	if need > len(qp) {
		need = len(qp)
	}
	if need > 0 {
		start := r.rot % len(qp)
		for j := 0; j < need; j++ {
			q = append(q, qp[(start+j)%len(qp)])
		}
		r.rot += need
	}
	desires := make([]int, len(q))
	for j, i := range q {
		desires[j] = jobs[i].Desire
	}
	for j, a := range Deq(desires, p, int(t)) {
		allot[q[j]] = a
	}
	// Unmark all jobs: a new cycle starts next step if still overloaded.
	clear(r.marked)
	return allot
}

// JobsDone drops marks of completed jobs so state cannot grow without
// bound across long online runs.
func (r *RAD) JobsDone(ids []int) {
	for _, id := range ids {
		delete(r.marked, id)
	}
}

// radState is the serialized form of a RAD's cross-step state.
type radState struct {
	Marked []int `json:"marked,omitempty"`
	Rot    int   `json:"rot"`
}

// SnapshotState captures the round-robin marks and the bonus-service
// rotation, the only state RAD carries between steps. Marked IDs are
// sorted so the encoding is deterministic.
func (r *RAD) SnapshotState() ([]byte, error) {
	st := radState{Rot: r.rot}
	for id := range r.marked {
		st.Marked = append(st.Marked, id)
	}
	sort.Ints(st.Marked)
	return json.Marshal(st)
}

// RestoreState rebuilds the marks and rotation from a SnapshotState
// encoding.
func (r *RAD) RestoreState(data []byte) error {
	var st radState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: decode rad state: %w", err)
	}
	clear(r.marked)
	for _, id := range st.Marked {
		r.marked[id] = true
	}
	r.rot = st.Rot
	return nil
}

var (
	_ sched.CategoryScheduler   = (*RAD)(nil)
	_ sched.CategoryCompleter   = (*RAD)(nil)
	_ sched.CategorySnapshotter = (*RAD)(nil)
)

// NewKRAD returns the paper's K-RAD scheduler for k resource categories:
// one independent RAD per category, assembled with sched.PerCategory.
func NewKRAD(k int) *sched.PerCategory {
	cats := make([]sched.CategoryScheduler, k)
	for i := range cats {
		cats[i] = NewRAD()
	}
	return sched.NewPerCategory("k-rad", cats)
}
