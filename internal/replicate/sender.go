package replicate

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"krad/internal/journal"
)

// ErrFenced reports that this daemon observed a follower holding a higher
// replication epoch: the follower was promoted, a split brain is one
// acknowledged write away, and the deposed primary must refuse admissions
// permanently (the latch is sticky — only a restart with a higher -epoch
// clears it, which is an operator acknowledging the takeover).
var ErrFenced = errors.New("replicate: fenced — a follower holds a higher epoch; this daemon is no longer primary")

// ErrLeaseExpired reports that the follower has not acknowledged within
// the configured lease: the primary cannot know whether the follower
// promoted itself, so it stops acknowledging new work until acks resume.
// Unlike ErrFenced this clears on its own when the link heals.
var ErrLeaseExpired = errors.New("replicate: replication lease expired (follower unreachable)")

// errStopped ends the run loop on Stop.
var errStopped = errors.New("replicate: sender stopped")

// SeqRecord is one sequenced committed record of a shard's stream. Seq is
// the record's 1-based position in the shard's mutation sequence since
// engine birth.
type SeqRecord struct {
	Seq int64
	Rec journal.Record
}

// CatchUpFunc supplies the records a reconnecting follower is missing
// when they have aged out of the in-memory send queue — in practice, a
// read of the shard's own WAL file (see server.JournalCatchUp). It
// returns the records with sequence numbers ≥ from, in order. If
// compaction has folded records ≥ from into a snapshot, snap carries that
// snapshot (its Seq is the cursor it covers through) and tail the records
// after it; otherwise snap is nil. It runs on the sender's goroutine,
// never under engine locks.
type CatchUpFunc func(shard int, from int64) (snap *SeqRecord, tail []SeqRecord, err error)

// SenderConfig parameterizes a Sender.
type SenderConfig struct {
	// Addr is the follower's replication listen address.
	Addr string
	// Epoch is this primary's replication epoch (≥ 1).
	Epoch int64
	// Shards is the fleet shard count; must match the follower's.
	Shards int
	// CatchUp reads aged-out records from durable storage. Required.
	CatchUp CatchUpFunc
	// QueueLen bounds the per-shard in-memory send queue. When a slow
	// link lets a queue fill, it is dropped wholesale and the stream
	// falls back to CatchUp — backpressure never reaches the commit
	// path, by design: a warm standby must not be able to stall the
	// primary. 0 means 1024.
	QueueLen int
	// BatchMax caps records per recs frame. 0 means 256.
	BatchMax int
	// Heartbeat is the idle keepalive interval (and the base of the
	// link-death detection deadlines). 0 means 1s.
	Heartbeat time.Duration
	// Lease, when positive, gates admissions on follower liveness: if no
	// ack arrives within Lease of the previous one, WriteAllowed returns
	// ErrLeaseExpired until acks resume. Configure Lease strictly below
	// the follower's promote-after timeout and a promoted follower can
	// never overlap with a still-admitting primary. 0 disables gating.
	Lease time.Duration
	// MinBackoff/MaxBackoff bound the jittered exponential reconnect
	// backoff. 0 means 50ms / 3s.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Dial opens the transport; nil means net.Dial("tcp", Addr). Tests
	// inject fault transports here.
	Dial func(addr string) (net.Conn, error)
	// Logf receives connection lifecycle messages; nil discards them.
	Logf func(format string, args ...any)
}

// SenderStats is a point-in-time replication summary of the primary side.
type SenderStats struct {
	// Epoch is the configured epoch; Fenced/FencedBy report the sticky
	// fence latch.
	Epoch    int64 `json:"epoch"`
	Fenced   bool  `json:"fenced,omitempty"`
	FencedBy int64 `json:"fenced_by,omitempty"`
	// Connected reports a live, handshaken stream; Reconnects counts
	// re-dials after the first successful handshake.
	Connected  bool  `json:"connected"`
	Reconnects int64 `json:"reconnects"`
	// LagRecords is the total number of committed records the follower
	// has not yet acknowledged, summed over shards.
	LagRecords int64 `json:"lag_records"`
	// QueueDrops counts whole-queue spills to CatchUp.
	QueueDrops int64 `json:"queue_drops,omitempty"`
	// LeaseExpired reports the lease gate currently refusing writes.
	LeaseExpired bool `json:"lease_expired,omitempty"`
}

// sendQueue is one shard's bounded live tail. base is the sequence number
// of buf[0]; the queue always holds a contiguous run ending at the
// shard's last committed record.
type sendQueue struct {
	base int64
	buf  []journal.Record
}

// Sender is the primary half of replication: it receives every committed
// journal record via Committed (the server's shard commit hook), streams
// them to the follower in order, and converts the follower's acks into a
// liveness lease. See the package comment for the protocol.
type Sender struct {
	cfg SenderConfig

	mu         sync.Mutex
	queues     []sendQueue
	lastQueued []int64 // per shard, highest seq ever handed to Committed/Seed
	acked      []int64 // per shard, highest seq the follower acknowledged
	conn       net.Conn
	connected  bool
	started    bool
	everAcked  bool
	lastAck    time.Time
	reconnects int64
	drops      int64
	fenced     bool
	fencedBy   int64

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// NewSender builds a sender; call Seed (optional) then Start.
func NewSender(cfg SenderConfig) (*Sender, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("replicate: sender needs ≥ 1 shard, got %d", cfg.Shards)
	}
	if cfg.Epoch < 1 {
		return nil, fmt.Errorf("replicate: sender epoch %d, want ≥ 1", cfg.Epoch)
	}
	if cfg.CatchUp == nil {
		return nil, fmt.Errorf("replicate: sender needs a CatchUp source")
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 256
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 3 * time.Second
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Sender{
		cfg:        cfg,
		queues:     make([]sendQueue, cfg.Shards),
		lastQueued: make([]int64, cfg.Shards),
		acked:      make([]int64, cfg.Shards),
		wake:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	return s, nil
}

// Seed positions each shard's cursor at the sequence number its journal
// already covers (journal.SeqAfter at startup), so the sender knows those
// records exist on disk without having seen them through Committed. Call
// before Start.
func (s *Sender) Seed(seqs []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, seq := range seqs {
		if i >= len(s.lastQueued) || seq <= s.lastQueued[i] {
			continue
		}
		s.lastQueued[i] = seq
		s.queues[i] = sendQueue{base: seq + 1}
	}
}

// Start launches the connection loop.
func (s *Sender) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.run()
}

// Stop terminates the sender and waits for its goroutines.
func (s *Sender) Stop() {
	s.mu.Lock()
	if !s.started {
		s.started = true
		close(s.done)
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	if s.conn != nil {
		_ = s.conn.Close()
	}
	s.mu.Unlock()
	<-s.done
}

// Committed is the shard commit hook: rec was journaled as the shard's
// seq-th mutation. It must be cheap and non-blocking — it runs under the
// shard lock — so it only appends to the bounded queue (or drops the
// queue to the CatchUp path when full) and nudges the stream goroutine.
func (s *Sender) Committed(shard int, seq int64, rec journal.Record) {
	s.mu.Lock()
	if shard < 0 || shard >= len(s.queues) {
		s.mu.Unlock()
		return
	}
	q := &s.queues[shard]
	if seq != s.lastQueued[shard]+1 {
		// A gap can only mean the hook and Seed disagree (e.g. records
		// committed before Seed ran); resynchronize through CatchUp.
		*q = sendQueue{base: seq}
		s.drops++
	}
	if len(q.buf) >= s.cfg.QueueLen {
		// Full: spill wholesale. Dropping one-by-one would make overflow
		// O(queue) per append inside the commit path; dropping all is
		// O(1) and the disk has everything anyway.
		*q = sendQueue{base: seq}
		s.drops++
	}
	if len(q.buf) == 0 {
		q.base = seq
	}
	q.buf = append(q.buf, rec)
	s.lastQueued[shard] = seq
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// WriteAllowed implements the server's admission gate: nil while this
// daemon may act as primary, ErrFenced after observing a higher epoch,
// ErrLeaseExpired while the follower lease is blown.
func (s *Sender) WriteAllowed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fenced {
		return fmt.Errorf("%w (our epoch %d, follower epoch %d)", ErrFenced, s.cfg.Epoch, s.fencedBy)
	}
	if s.cfg.Lease > 0 && s.everAcked {
		if age := time.Since(s.lastAck); age > s.cfg.Lease {
			return fmt.Errorf("%w: last ack %v ago, lease %v", ErrLeaseExpired, age.Round(time.Millisecond), s.cfg.Lease)
		}
	}
	return nil
}

// Stats snapshots the sender.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SenderStats{
		Epoch:      s.cfg.Epoch,
		Fenced:     s.fenced,
		FencedBy:   s.fencedBy,
		Connected:  s.connected,
		Reconnects: s.reconnects,
		QueueDrops: s.drops,
	}
	for i := range s.lastQueued {
		if lag := s.lastQueued[i] - s.acked[i]; lag > 0 {
			st.LagRecords += lag
		}
	}
	if s.cfg.Lease > 0 && s.everAcked && time.Since(s.lastAck) > s.cfg.Lease {
		st.LeaseExpired = true
	}
	return st
}

// fence latches the sticky deposed-primary state.
func (s *Sender) fence(epoch int64) {
	s.mu.Lock()
	if !s.fenced {
		s.fenced = true
		s.fencedBy = epoch
	}
	s.mu.Unlock()
	s.cfg.Logf("replicate: fenced by follower epoch %d (our epoch %d); refusing admissions", epoch, s.cfg.Epoch)
}

func (s *Sender) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// run dials, serves, and reconnects with jittered exponential backoff
// until stopped or fenced.
func (s *Sender) run() {
	defer close(s.done)
	backoff := s.cfg.MinBackoff
	for {
		if s.stopped() {
			return
		}
		s.mu.Lock()
		fenced := s.fenced
		s.mu.Unlock()
		if fenced {
			return
		}
		conn, err := s.cfg.Dial(s.cfg.Addr)
		if err == nil {
			err = s.serve(conn)
			_ = conn.Close()
			if errors.Is(err, errStopped) || errors.Is(err, ErrFenced) {
				return
			}
			s.cfg.Logf("replicate: stream to %s broke: %v", s.cfg.Addr, err)
			backoff = s.cfg.MinBackoff
		} else {
			s.cfg.Logf("replicate: dial %s: %v", s.cfg.Addr, err)
		}
		// Capped exponential backoff with ±50% jitter so a fleet of
		// reconnecting primaries cannot dogpile a follower.
		delay := backoff/2 + rand.N(backoff)
		backoff *= 2
		if backoff > s.cfg.MaxBackoff {
			backoff = s.cfg.MaxBackoff
		}
		select {
		case <-s.stop:
			return
		case <-time.After(delay):
		}
	}
}

// deadline is the link-death detection window: generous multiples of the
// heartbeat so one delayed ack never kills a healthy stream.
func (s *Sender) deadline() time.Duration {
	d := 4 * s.cfg.Heartbeat
	if d < 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// serve runs one connection: handshake, then stream records, heartbeats
// and catch-up until the link dies, the follower fences us, or Stop.
func (s *Sender) serve(conn net.Conn) error {
	_ = conn.SetDeadline(time.Now().Add(s.deadline()))
	if err := WriteMagic(conn); err != nil {
		return fmt.Errorf("write magic: %w", err)
	}
	if err := WriteFrame(conn, Frame{T: FrameHello, Epoch: s.cfg.Epoch, Shards: s.cfg.Shards}); err != nil {
		return fmt.Errorf("write hello: %w", err)
	}
	br := bufio.NewReader(conn)
	if err := ReadMagic(br); err != nil {
		return fmt.Errorf("read magic: %w", err)
	}
	f, err := ReadFrame(br)
	if err != nil {
		return fmt.Errorf("read hello-ack: %w", err)
	}
	if f.Epoch > s.cfg.Epoch {
		s.fence(f.Epoch)
		return ErrFenced
	}
	if f.T != FrameHelloAck {
		return fmt.Errorf("handshake answered with %q, want hello-ack", f.T)
	}
	if len(f.Next) != s.cfg.Shards {
		return fmt.Errorf("follower tracks %d shards, we run %d — refusing to replicate across configurations", len(f.Next), s.cfg.Shards)
	}
	cursors := append([]int64(nil), f.Next...)

	s.mu.Lock()
	s.conn = conn
	s.connected = true
	s.lastAck = time.Now()
	s.everAcked = true
	for i, n := range f.Next {
		s.acked[i] = n - 1
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.connected = false
		s.conn = nil
		s.reconnects++
		s.mu.Unlock()
	}()
	s.cfg.Logf("replicate: streaming to %s (epoch %d, cursors %v)", s.cfg.Addr, s.cfg.Epoch, cursors)

	readerErr := make(chan error, 1)
	go s.readAcks(conn, br, readerErr)

	ticker := time.NewTicker(s.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		sent := false
		for shard := range cursors {
			n, err := s.pump(conn, shard, &cursors[shard])
			if err != nil {
				return err
			}
			sent = sent || n
		}
		if sent {
			// More may already be queued; loop before blocking.
			continue
		}
		select {
		case <-s.stop:
			return errStopped
		case err := <-readerErr:
			return err
		case <-s.wake:
		case <-ticker.C:
			_ = conn.SetWriteDeadline(time.Now().Add(s.deadline()))
			if err := WriteFrame(conn, Frame{T: FrameHeartbeat, Epoch: s.cfg.Epoch}); err != nil {
				return fmt.Errorf("write heartbeat: %w", err)
			}
		}
	}
}

// readAcks drains the follower's frames: acks renew the lease and advance
// the acked cursors, a fence latches and kills the connection.
func (s *Sender) readAcks(conn net.Conn, br *bufio.Reader, out chan<- error) {
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.deadline()))
		f, err := ReadFrame(br)
		if err != nil {
			out <- fmt.Errorf("read ack: %w", err)
			return
		}
		switch f.T {
		case FrameAck:
			s.mu.Lock()
			s.lastAck = time.Now()
			for i, n := range f.Next {
				if i < len(s.acked) && n-1 > s.acked[i] {
					s.acked[i] = n - 1
				}
			}
			s.mu.Unlock()
		case FrameFence:
			s.fence(f.Epoch)
			out <- ErrFenced
			return
		default:
			out <- fmt.Errorf("follower sent %q, want ack or fence", f.T)
			return
		}
	}
}

// pump ships the next batch of one shard's records, serving from the live
// queue when it covers the cursor and from CatchUp (disk) when it does
// not. Reports whether anything was sent.
func (s *Sender) pump(conn net.Conn, shard int, cursor *int64) (bool, error) {
	s.mu.Lock()
	lastQ := s.lastQueued[shard]
	if *cursor > lastQ+1 {
		s.mu.Unlock()
		return false, fmt.Errorf("shard %d: follower wants seq %d but the primary has committed only %d — the follower is ahead (journals diverged; refusing to replicate)", shard, *cursor, lastQ)
	}
	if *cursor > lastQ {
		s.mu.Unlock()
		return false, nil
	}
	q := &s.queues[shard]
	if len(q.buf) > 0 && q.base <= *cursor {
		off := int(*cursor - q.base)
		n := len(q.buf) - off
		if n > s.cfg.BatchMax {
			n = s.cfg.BatchMax
		}
		recs := append([]journal.Record(nil), q.buf[off:off+n]...)
		s.mu.Unlock()
		_ = conn.SetWriteDeadline(time.Now().Add(s.deadline()))
		if err := WriteFrame(conn, Frame{T: FrameRecs, Epoch: s.cfg.Epoch, Shard: shard, Seq: *cursor, Recs: recs}); err != nil {
			return false, fmt.Errorf("shard %d: write recs [%d,%d): %w", shard, *cursor, *cursor+int64(n), err)
		}
		*cursor += int64(n)
		return true, nil
	}
	s.mu.Unlock()

	// The queue no longer covers the cursor: read the shard's WAL.
	from := *cursor
	snap, tail, err := s.cfg.CatchUp(shard, from)
	if err != nil {
		return false, fmt.Errorf("shard %d: catch-up from seq %d: %w", shard, from, err)
	}
	sent := false
	if snap != nil && snap.Rec.Seq >= from {
		_ = conn.SetWriteDeadline(time.Now().Add(s.deadline()))
		if err := WriteFrame(conn, Frame{T: FrameSnap, Epoch: s.cfg.Epoch, Shard: shard, Seq: snap.Rec.Seq, Recs: []journal.Record{snap.Rec}}); err != nil {
			return false, fmt.Errorf("shard %d: write snap through seq %d: %w", shard, snap.Rec.Seq, err)
		}
		*cursor = snap.Rec.Seq + 1
		sent = true
	}
	for i := 0; i < len(tail); {
		if tail[i].Seq < *cursor {
			i++
			continue
		}
		if tail[i].Seq != *cursor {
			return false, fmt.Errorf("shard %d: catch-up skipped from seq %d to %d", shard, *cursor, tail[i].Seq)
		}
		n := len(tail) - i
		if n > s.cfg.BatchMax {
			n = s.cfg.BatchMax
		}
		recs := make([]journal.Record, n)
		for k := 0; k < n; k++ {
			recs[k] = tail[i+k].Rec
		}
		_ = conn.SetWriteDeadline(time.Now().Add(s.deadline()))
		if err := WriteFrame(conn, Frame{T: FrameRecs, Epoch: s.cfg.Epoch, Shard: shard, Seq: *cursor, Recs: recs}); err != nil {
			return false, fmt.Errorf("shard %d: write catch-up recs at seq %d: %w", shard, *cursor, err)
		}
		*cursor += int64(n)
		i += n
		sent = true
	}
	if !sent {
		// Disk had nothing new for this cursor (an unsynced tail still
		// sits only in the dropped queue). Drop the connection; the
		// reconnect backoff gives the WAL time to sync.
		return false, fmt.Errorf("shard %d: cannot serve seq %d from queue or WAL yet", shard, from)
	}
	return sent, nil
}
