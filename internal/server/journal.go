package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"krad/internal/journal"
	"krad/internal/sim"
)

// ErrDegraded means the shard's journal hit a write failure (full or
// failing disk): nothing new can be made durable, so admissions and
// cancellations are refused while jobs already in flight keep scheduling
// from memory. The condition is sticky — it clears only by restarting the
// process against a healthy disk, which replays the journal's intact
// prefix.
var ErrDegraded = errors.New("server: journal degraded, admission suspended")

// JournalConfig enables write-ahead journaling of every committed engine
// mutation, one journal file per shard, making the service crash-safe:
// on startup each shard's journal is replayed through a fresh engine,
// reconstructing job IDs, virtual time and scheduler state exactly.
type JournalConfig struct {
	// Dir holds the per-shard journal files (shard-000.wal, ...). Created
	// if missing.
	Dir string
	// Sync is the fsync policy (the zero value, journal.SyncAlways, makes
	// every acknowledged admission durable).
	Sync journal.SyncPolicy
	// SyncInterval spaces fsyncs under journal.SyncInterval; 0 means 100ms.
	SyncInterval time.Duration
	// SnapshotEvery compacts a shard's journal to one snapshot record when
	// it exceeds this many records and the engine reaches an idle point.
	// 0 disables compaction (the journal grows until restart). Compaction
	// silently stays off for schedulers that cannot snapshot their state
	// (sim.ErrCheckpointUnsupported) — replay then runs the full log,
	// which is exact, just longer.
	SnapshotEvery int64
	// OpenAppend overrides how journal files are opened for writing. Tests
	// inject fault injectors (journal.FaultFile) here; nil means real files.
	OpenAppend func(path string) (journal.File, error)
}

// JournalStats aggregates per-shard journal state into Stats.
type JournalStats struct {
	// Dir is the journal directory.
	Dir string `json:"dir"`
	// Sync is the fsync policy's flag spelling.
	Sync string `json:"sync"`
	// Records, Appended, Compactions, SizeBytes, Syncs and SyncSeconds sum
	// the per-shard journal counters (see journal.Stats); SyncSeconds is
	// the durability overhead — wall time inside fsync — a load generator
	// subtracts to separate disk cost from scheduling cost.
	Records     int64   `json:"records"`
	Appended    int64   `json:"appended"`
	Compactions int64   `json:"compactions"`
	SizeBytes   int64   `json:"size_bytes"`
	Syncs       int64   `json:"syncs"`
	SyncSeconds float64 `json:"sync_seconds"`
	// Degraded counts shards whose journal latched a write failure.
	Degraded int `json:"degraded"`
	// Errors carries each degraded shard's sticky failure, in shard order.
	Errors []string `json:"errors,omitempty"`
}

// shardJournalPath names shard i's journal file inside dir.
func shardJournalPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.wal", i))
}

// openJournals opens (and replays) one journal per shard, attaching each
// to its shard. Any failure — unreadable file, corrupt non-tail record,
// replay divergence, stray journals from a larger fleet — is returned as
// a located error so the caller (cmd/kradd) can exit non-zero instead of
// serving silently forgotten state.
func (s *Service) openJournals(jc *JournalConfig) error {
	if err := os.MkdirAll(jc.Dir, 0o755); err != nil {
		return fmt.Errorf("server: journal dir %s: %w", jc.Dir, err)
	}
	// A journal dir written by a larger fleet means the missing shards'
	// acknowledged jobs would silently vanish: refuse to start.
	strays, err := filepath.Glob(filepath.Join(jc.Dir, "shard-*.wal"))
	if err != nil {
		return fmt.Errorf("server: scan journal dir %s: %w", jc.Dir, err)
	}
	for _, p := range strays {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(p), "shard-%d.wal", &idx); err == nil && idx >= len(s.shards) {
			return fmt.Errorf("server: journal %s belongs to shard %d but the service runs %d shard(s); refusing to drop its jobs (restart with the original -shards, or move the file away)", p, idx, len(s.shards))
		}
	}
	opts := journal.Options{Sync: jc.Sync, Interval: jc.SyncInterval, OpenAppend: jc.OpenAppend}
	for _, sh := range s.shards {
		path := shardJournalPath(jc.Dir, sh.idx)
		jn, recs, err := journal.Open(path, opts)
		if err != nil {
			return fmt.Errorf("server: shard %d: %w", sh.idx, err)
		}
		if err := sh.attachJournal(jn, jc.SnapshotEvery, recs); err != nil {
			_ = jn.Close()
			return fmt.Errorf("server: shard %d: replay %s: %w", sh.idx, path, err)
		}
	}
	return nil
}

// attachJournal replays recs through the shard's fresh engine and rebuilds
// the shard's lifecycle counters from the replayed state, then arms
// journaling for all future mutations. Called from New, before the step
// loop exists, so no locking races are possible — the lock is held for
// the counter rebuild only out of uniformity.
func (sh *shard) attachJournal(jn *journal.Journal, snapshotEvery int64, recs []journal.Record) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.steal {
		// A steal-off server replaying a steal-tagged journal would lose the
		// redirects (and the reconciliation ledger) that keep stolen jobs'
		// original IDs resolvable; refuse, symmetrically with fairness below.
		for i, rec := range recs {
			if rec.Type == journal.TypeSteal || len(rec.From) != 0 || rec.Steal != nil {
				return fmt.Errorf("record %d is steal-tagged but stealing is disabled; refusing to drop redirect state (restart with -steal, or move the journal away)", i)
			}
		}
	}
	switch {
	case sh.steal:
		// Stealing and fairness are mutually exclusive (Config validation),
		// so the steal observer owns the replay; a fair record errors there.
		if err := journal.ReplayObserved(sh.eng, recs, stealReplayObserver{sh}); err != nil {
			return err
		}
	case sh.fair == nil:
		// A fairness-off server replaying a fairness-tagged journal would
		// silently drop the tenant ledger; refuse instead.
		for i, rec := range recs {
			if rec.Type == journal.TypeFair || rec.Fair != nil || rec.Tenant != "" {
				return fmt.Errorf("record %d is fairness-tagged but fairness is disabled; refusing to drop tenant state (restart with -fairness, or move the journal away)", i)
			}
		}
		if err := journal.Replay(sh.eng, recs); err != nil {
			return err
		}
	default:
		if err := journal.ReplayObserved(sh.eng, recs, fairReplayObserver{sh}); err != nil {
			// A journal without fair records replays fine too: its
			// pre-fairness admissions accrue to the default leaf,
			// deterministically.
			return err
		}
	}
	sh.jn = jn
	sh.compactEvery = snapshotEvery
	// Seed the replication cursor from what the journal already covers: a
	// snapshot head resumes at its stamped cursor (0 on journals written
	// before replication existed), every later record counts one.
	sh.repSeq = journal.SeqAfter(recs)
	sh.applied = int64(len(recs))
	if sh.fair != nil && len(recs) == 0 && !sh.standby {
		// Head marker on a fresh fairness-enabled journal: declares the
		// half-life so later replays cross-check decay math before
		// accruing anything under the wrong curve. A standby follower skips
		// it — its journal head must be the primary's own head record,
		// replicated like everything else, or the two journals diverge at
		// sequence 1.
		rec := journal.FairRecord(sh.fairStateLocked())
		if err := jn.Append(rec); err != nil {
			return fmt.Errorf("write fair head record: %w", err)
		}
		sh.commitLocked(rec)
	}
	// Rebuild the counters Stats and /metrics report. Steps and rejections
	// are process-local (a rejection admitted nothing durable), so they
	// restart at zero; the job lifecycle counters and the response
	// histogram are durable state and come back from the engine. The
	// status index rebuilds from the same pass (JobRef avoids a per-job
	// work-vector copy; put copies into the stripe arena), and RetireDone
	// then releases each terminal job's engine state — the index has it.
	snap := sh.eng.Snapshot()
	// Stolen-in admissions were journaled by steals, not clients: external
	// submissions are the engine's admitted total minus what the steal
	// observer counted back in.
	sh.submitted = int64(snap.Admitted) - sh.stolenIn
	sh.completed = int64(snap.Completed)
	sh.cancelled = int64(snap.Cancelled)
	sh.resp.Reset()
	sh.respHist = newHistogram(responseBuckets())
	for id := 0; id < snap.Admitted; id++ {
		st, ok := sh.eng.JobRef(id)
		if !ok {
			continue // retired before the checkpoint: status is gone for good
		}
		if st.Phase == sim.JobStolen {
			// The replayed steal record installed the redirect; the stale
			// local entry must stay out of the index so lookups follow it.
			if sh.retireDone {
				_ = sh.eng.Retire(id)
			}
			continue
		}
		sh.tab.put(id, st)
		if st.Phase == sim.JobDone {
			r := float64(st.Completion - st.Release)
			sh.resp.Observe(r)
			sh.respHist.observe(r)
		}
		if sh.retireDone && (st.Phase == sim.JobDone || st.Phase == sim.JobCancelled) {
			_ = sh.eng.Retire(id)
		}
	}
	sh.syncGaugesLocked()
	return nil
}

// journalAdmitLocked makes a committed admission durable. Called with the
// shard lock held, immediately after AdmitBatch assigned ids. On journal
// failure the admission is rolled back (the IDs were never returned to
// the caller) and ErrDegraded is reported; the failure is sticky, so no
// later admission can slip into the ID gap and diverge replay.
func (sh *shard) journalAdmitLocked(ids []int, specs []sim.JobSpec, tenant string) error {
	// Without replication the record only lives until Append encodes it,
	// so a per-shard scratch record (admitRec, reused under this same
	// lock) keeps the steady-state submit path allocation-free. A
	// replication sender retains committed records in its send queue, so
	// with rep attached each admission builds a fresh record instead.
	rec := &sh.admitRec
	var err error
	if sh.rep == nil {
		err = journal.AdmitRecordInto(rec, ids[0], specs)
	} else {
		var fresh journal.Record
		fresh, err = journal.AdmitRecord(ids[0], specs)
		rec = &fresh
	}
	if err != nil {
		// Non-journalable job shape (no graph): roll back, reject.
		sh.rollbackLocked(ids)
		return err
	}
	// Tenant identity rides the admit record (empty — and omitted on the
	// wire — outside the fair admission gate), so replay re-charges the
	// same leaf.
	rec.Tenant = tenant
	if err := sh.jn.Append(*rec); err != nil {
		sh.rollbackLocked(ids)
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	sh.commitLocked(*rec)
	return nil
}

// rollbackLocked withdraws just-admitted jobs whose journal append failed.
// Cancel cannot fail here: the jobs were admitted under this same lock
// acquisition, so they are still pending or active.
func (sh *shard) rollbackLocked(ids []int) {
	for _, id := range ids {
		_ = sh.eng.Cancel(id)
	}
}

// journalHealthyLocked reports whether mutations may be acknowledged.
func (sh *shard) journalHealthyLocked() bool {
	return sh.jn == nil || sh.jn.Err() == nil
}

// maybeCompact rewrites the journal as one snapshot record when the
// engine is idle and the journal has grown past compactEvery records.
// Schedulers that cannot snapshot their cross-step state disable
// compaction on first refusal; anything else that fails latches the
// journal (a half-compacted log must stop acknowledging).
func (sh *shard) maybeCompact() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.jn == nil || sh.compactEvery <= 0 || sh.compactOff {
		return
	}
	if !sh.eng.Idle() || sh.jn.Err() != nil || sh.jn.RecordsSinceCompact() <= sh.compactEvery {
		return
	}
	cp, err := sh.eng.Checkpoint()
	if err != nil {
		// ErrCheckpointUnsupported (or a trace-enabled engine): full replay
		// stays exact, so just stop trying.
		sh.compactOff = true
		return
	}
	// The snapshot is stamped with the replication cursor it covers
	// through, so a follower catching up from the compacted journal knows
	// exactly which sequence numbers the snapshot subsumes.
	rec := journal.Record{Type: journal.TypeSnap, Snap: &cp, Seq: sh.repSeq}
	if sh.fair != nil {
		// The fair ledger rides the snapshot: compaction must not forget
		// decayed usage the dropped records accrued.
		st := sh.fairStateLocked()
		rec.Fair = &st
	}
	if sh.steal {
		// Steal state rides the snapshot the same way: the dropped records
		// held the stolen-in count and the redirects that keep original IDs
		// resolvable. Omitted while empty so a steal-enabled shard that
		// never stole keeps byte-identical snapshots.
		if redirs := sh.tab.redirects(); sh.stolenIn > 0 || len(redirs) > 0 {
			rec.Steal = &journal.StealState{V: 1, In: sh.stolenIn, Redirects: redirs}
		}
	}
	if err := sh.jn.Compact(rec); err == nil {
		sh.applied = 1 // the snapshot is now the whole logical sequence
	}
}

// Ready reports whether the service should receive traffic: not draining,
// every journal healthy. The bool is false with a reason otherwise. This
// backs GET /readyz; liveness (GET /healthz) stays unconditionally 200 —
// a degraded or draining service is still alive and still finishing
// in-flight work.
func (s *Service) Ready() (bool, string) {
	s.mu.Lock()
	closed, follower := s.closed, s.follower
	s.mu.Unlock()
	if closed {
		return false, "draining"
	}
	if follower {
		return false, "following (standby) — replicating from the primary; POST /v1/promote to take over"
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		jn := sh.jn
		sh.mu.Unlock()
		if jn != nil {
			if err := jn.Err(); err != nil {
				return false, fmt.Sprintf("shard %d journal degraded: %v", sh.idx, err)
			}
		}
	}
	return true, ""
}

// journalStats aggregates journal state across shards, or nil when
// journaling is disabled (keeping Stats bit-identical to a journal-free
// build).
func (s *Service) journalStats() *JournalStats {
	if s.cfg.Journal == nil {
		return nil
	}
	js := &JournalStats{Dir: s.cfg.Journal.Dir, Sync: s.cfg.Journal.Sync.String()}
	for _, sh := range s.shards {
		sh.mu.Lock()
		jn := sh.jn
		sh.mu.Unlock()
		if jn == nil {
			continue
		}
		st := jn.Stats()
		js.Records += st.Records
		js.Appended += st.Appended
		js.Compactions += st.Compactions
		js.SizeBytes += st.SizeBytes
		js.Syncs += st.Syncs
		js.SyncSeconds += st.SyncSeconds
		if st.Failed != "" {
			js.Degraded++
			js.Errors = append(js.Errors, fmt.Sprintf("shard %d: %s", sh.idx, st.Failed))
		}
	}
	return js
}
