package sim

import (
	"strings"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
)

func TestResultJSONRoundTrip(t *testing.T) {
	specs := []JobSpec{
		{Graph: dag.ForkJoin(2, 4, 1, 2, 1)},
		{Graph: dag.RoundRobinChain(2, 5), Release: 2},
	}
	res, err := Run(Config{
		K: 2, Caps: []int{2, 2}, Scheduler: core.NewKRAD(2), ValidateAllotments: true,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Scheduler != res.Scheduler || back.Makespan != res.Makespan {
		t.Errorf("header fields changed: %+v", back)
	}
	if back.TotalResponse() != res.TotalResponse() {
		t.Errorf("responses changed: %d vs %d", back.TotalResponse(), res.TotalResponse())
	}
	if len(back.Jobs) != len(res.Jobs) {
		t.Fatalf("job count changed")
	}
	for i := range res.Jobs {
		if back.Jobs[i].Completion != res.Jobs[i].Completion ||
			back.Jobs[i].Span != res.Jobs[i].Span {
			t.Errorf("job %d changed: %+v vs %+v", i, back.Jobs[i], res.Jobs[i])
		}
	}
	// Derived metrics recompute identically.
	aw, bw := res.TotalWork(), back.TotalWork()
	for a := range aw {
		if aw[a] != bw[a] {
			t.Errorf("work changed in category %d", a+1)
		}
	}
}

func TestReadResultJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadResultJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}
