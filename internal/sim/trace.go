package sim

import (
	"fmt"
	"io"
	"strings"

	"krad/internal/dag"
)

// TraceLevel selects how much per-step detail a run records.
type TraceLevel int

const (
	// TraceNone records nothing (the default; fastest).
	TraceNone TraceLevel = iota
	// TraceSteps records per-step aggregates: tasks executed per category,
	// active job count, completions.
	TraceSteps
	// TraceTasks additionally records every task execution (step, job,
	// task, category) — enough to re-validate the schedule against the
	// Section 2 validity conditions and to render Gantt charts. Memory is
	// proportional to total work; use on small/medium instances.
	TraceTasks
)

// StepStat is one row of the per-step aggregate trace.
type StepStat struct {
	// Step is the time step t (1-based).
	Step int64
	// Executed[α−1] is the number of α-tasks executed during the step.
	Executed []int
	// Active is the number of uncompleted released jobs during the step.
	Active int
	// Completed is the number of jobs that finished at this step.
	Completed int
}

// TaskExec is one task execution event in the full trace.
type TaskExec struct {
	Step int64
	Job  int
	Task dag.TaskID
	Cat  dag.Category
}

// Trace is the recorded timeline of a run.
type Trace struct {
	level TraceLevel
	k     int

	// Steps has one entry per simulated (non-idle) step in time order.
	Steps []StepStat
	// Tasks has one entry per executed task, grouped by step in time
	// order. Only populated at TraceTasks.
	Tasks []TaskExec

	cur     StepStat
	curStep int64
}

func newTrace(level TraceLevel, k int) *Trace {
	return &Trace{level: level, k: k}
}

// Level returns the level the trace was recorded at.
func (tr *Trace) Level() TraceLevel { return tr.level }

// record logs the execution of tasks run (category cat) by job at step t.
func (tr *Trace) record(t int64, job int, cat int, run []dag.TaskID) {
	if tr.level == TraceNone || len(run) == 0 {
		return
	}
	tr.ensure(t)
	tr.cur.Executed[cat-1] += len(run)
	if tr.level >= TraceTasks {
		for _, id := range run {
			tr.Tasks = append(tr.Tasks, TaskExec{Step: t, Job: job, Task: id, Cat: dag.Category(cat)})
		}
	}
}

// add logs n executed tasks of category cat at step t without task IDs
// (serial aggregate-level recording).
func (tr *Trace) add(t int64, cat, n int) {
	if tr.level == TraceNone || n == 0 {
		return
	}
	tr.ensure(t)
	tr.cur.Executed[cat-1] += n
}

// recordCounts merges pre-aggregated per-category counts (parallel mode).
func (tr *Trace) recordCounts(t int64, counts []int) {
	if tr.level == TraceNone {
		return
	}
	tr.ensure(t)
	for a, c := range counts {
		tr.cur.Executed[a] += c
	}
}

func (tr *Trace) ensure(t int64) {
	if tr.curStep != t {
		tr.flush()
		tr.curStep = t
		tr.cur = StepStat{Step: t, Executed: make([]int, tr.k)}
	}
}

// endStep finalizes the current step's aggregate row.
func (tr *Trace) endStep(t int64, active, completed int) {
	if tr.level == TraceNone {
		return
	}
	tr.ensure(t)
	tr.cur.Active = active
	tr.cur.Completed = completed
	tr.flush()
	tr.curStep = 0
}

func (tr *Trace) flush() {
	if tr.curStep != 0 {
		tr.Steps = append(tr.Steps, tr.cur)
	}
}

// WriteCSV writes the aggregate trace as CSV: step, active, completed, then
// one executed-count column per category.
func (tr *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprint(w, "step,active,completed"); err != nil {
		return err
	}
	for a := 1; a <= tr.k; a++ {
		if _, err := fmt.Fprintf(w, ",exec_cat%d", a); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, s := range tr.Steps {
		if _, err := fmt.Fprintf(w, "%d,%d,%d", s.Step, s.Active, s.Completed); err != nil {
			return err
		}
		for _, e := range s.Executed {
			if _, err := fmt.Fprintf(w, ",%d", e); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Gantt renders the full trace as an ASCII chart: one row per job, one
// column per step, the digit of the category executing (or '#' when a job
// runs tasks of several categories in one step, '.' when idle-but-active).
// Requires TraceTasks; returns an explanatory string otherwise. maxWidth
// truncates long timelines (0 means no limit).
func (tr *Trace) Gantt(numJobs int, maxWidth int) string {
	if tr.level < TraceTasks {
		return "gantt: trace was not recorded at TraceTasks level\n"
	}
	var hi int64
	for _, s := range tr.Steps {
		if s.Step > hi {
			hi = s.Step
		}
	}
	if maxWidth > 0 && hi > int64(maxWidth) {
		hi = int64(maxWidth)
	}
	rows := make([][]byte, numJobs)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", int(hi)))
	}
	for _, e := range tr.Tasks {
		if e.Step > hi || e.Job >= numJobs {
			continue
		}
		c := &rows[e.Job][e.Step-1]
		ch := byte('0' + e.Cat%10)
		switch *c {
		case ' ':
			*c = ch
		case ch:
			// same category again: keep
		default:
			*c = '#'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time  1..%d  (digit = category executing, # = mixed)\n", hi)
	for i, r := range rows {
		fmt.Fprintf(&b, "job %3d |%s|\n", i, string(r))
	}
	return b.String()
}
