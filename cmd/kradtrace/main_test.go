package main

import (
	"testing"

	"krad/internal/analysis"
	"krad/internal/sim"
)

func TestBuildScenariosRunCleanly(t *testing.T) {
	for _, name := range []string{"etl", "adversarial", "overload", "families"} {
		k, caps, pick, specs, blurb := buildScenario(name)
		if blurb == "" || len(specs) == 0 || len(caps) != k {
			t.Fatalf("%s: malformed scenario", name)
		}
		s, err := analysis.NewScheduler("k-rad", k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			K: k, Caps: caps, Scheduler: s, Pick: pick,
			Trace: sim.TraceTasks, ValidateAllotments: true,
		}, specs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sim.ValidateSchedule(specs, res); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Trace.Gantt(len(res.Jobs), 80) == "" {
			t.Fatalf("%s: empty gantt", name)
		}
	}
}
