package workload

import (
	"fmt"
	"sort"

	"krad/internal/sim"
)

// Preset is a named, fully parameterized workload used by the CLI tools
// and documentation — reproducible from its name and a seed alone.
type Preset struct {
	// Name identifies the preset (see Presets).
	Name string
	// Description says what the workload models.
	Description string
	// K is the resource-category count the preset assumes.
	K int
	// Caps is the machine the preset was tuned for (callers may override).
	Caps []int
	// Build materializes the job set for a seed.
	Build func(seed int64) ([]sim.JobSpec, error)
}

// presets is the registry, keyed by name.
var presets = map[string]Preset{}

func register(p Preset) {
	if _, dup := presets[p.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate preset %q", p.Name))
	}
	presets[p.Name] = p
}

func init() {
	register(Preset{
		Name:        "numerical-batch",
		Description: "batched numerical kernels: CPU-dominant map-reduce and fork-join jobs with a vector-unit tail",
		K:           3,
		Caps:        []int{8, 4, 2},
		Build: func(seed int64) ([]sim.JobSpec, error) {
			return Mix{
				K: 3, Jobs: 48,
				Shapes:  []Shape{ShapeForkJoin, ShapeMapReduce, ShapeLayered},
				MinSize: 10, MaxSize: 90,
				CatWeights: []float64{6, 3, 1},
				Seed:       seed,
			}.Generate()
		},
	})
	register(Preset{
		Name:        "io-server",
		Description: "online I/O-heavy service: pipelines and chains arriving as a Poisson stream, I/O processors the bottleneck",
		K:           3,
		Caps:        []int{8, 4, 2},
		Build: func(seed int64) ([]sim.JobSpec, error) {
			return Mix{
				K: 3, Jobs: 120,
				Shapes:  []Shape{ShapePipeline, ShapeChain},
				MinSize: 4, MaxSize: 40,
				CatWeights: []float64{2, 1, 3},
				Seed:       seed,
			}.GenerateOnline(Poisson(2.0))
		},
	})
	register(Preset{
		Name:        "vector-mix",
		Description: "mixed scientific load with a strong vector-unit component and bursty submissions",
		K:           3,
		Caps:        []int{4, 8, 2},
		Build: func(seed int64) ([]sim.JobSpec, error) {
			return Mix{
				K: 3, Jobs: 80,
				MinSize: 8, MaxSize: 70,
				CatWeights: []float64{2, 5, 1},
				Seed:       seed,
			}.GenerateOnline(Bursty(8, 30))
		},
	})
	register(Preset{
		Name:        "overload-storm",
		Description: "a batched storm of small jobs far exceeding every category's processor count — the round-robin regime",
		K:           2,
		Caps:        []int{2, 2},
		Build: func(seed int64) ([]sim.JobSpec, error) {
			return Mix{
				K: 2, Jobs: 150,
				MinSize: 2, MaxSize: 12,
				Seed: seed,
			}.Generate()
		},
	})
	register(Preset{
		Name:        "light-wide",
		Description: "a handful of very wide jobs on a wide machine — the pure DEQ space-sharing regime",
		K:           2,
		Caps:        []int{16, 16},
		Build: func(seed int64) ([]sim.JobSpec, error) {
			return Mix{
				K: 2, Jobs: 6,
				Shapes:  []Shape{ShapeForkJoin, ShapeMapReduce},
				MinSize: 40, MaxSize: 160,
				Seed: seed,
			}.Generate()
		},
	})
}

// PresetNames lists registered presets, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FindPreset looks a preset up by name.
func FindPreset(name string) (Preset, error) {
	p, ok := presets[name]
	if !ok {
		return Preset{}, fmt.Errorf("workload: unknown preset %q (have %v)", name, PresetNames())
	}
	return p, nil
}
