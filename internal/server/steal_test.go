package server

import (
	"math/rand"
	"os"
	"strings"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/fairshare"
	"krad/internal/sched"
	"krad/internal/sim"
)

// stealConfig is a multi-shard config with work stealing enabled.
func stealConfig(shards int, k int, caps ...int) Config {
	cfg := testConfig(k, caps...)
	cfg.Shards = shards
	cfg.NewScheduler = func() sched.Scheduler { return core.NewKRAD(k) }
	cfg.Steal = true
	return cfg
}

// journaledStealConfig adds a journal dir; restartStealConfig rebuilds a
// config over the same dir with nothing mutable shared (like
// journaledConfigFrom, plus the steal knobs it does not carry).
func journaledStealConfig(t *testing.T, shards int, k int, caps ...int) Config {
	t.Helper()
	cfg := stealConfig(shards, k, caps...)
	cfg.Journal = &JournalConfig{Dir: t.TempDir()}
	return cfg
}

func restartStealConfig(cfg Config) Config {
	out := journaledConfigFrom(cfg)
	out.Steal = cfg.Steal
	out.StealMax = cfg.StealMax
	out.StealIdle = cfg.StealIdle
	return out
}

// submitBurst admits n chain jobs of the given span straight onto one
// shard (bypassing placement, so the backlog is maximally skewed) and
// returns their namespaced IDs. Only not-yet-released jobs are stealable,
// so tests that step the victim before stealing pass a future release.
func submitBurst(t *testing.T, svc *Service, shard, n, span int, release int64) []int {
	t.Helper()
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		id, err := svc.shards[shard].submit("", sim.JobSpec{Graph: dag.UniformChain(1, span, 1), Release: release})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, composeID(shard, id))
	}
	return ids
}

// drainManually steps every shard (and lets every thief steal) until the
// fleet makes no more progress, keeping the whole run on the test's
// deterministic clock — no step loops.
func drainManually(t *testing.T, svc *Service) {
	t.Helper()
	for {
		progress := false
		// All steals before any step: a step releases every due pending job
		// (an idle engine fast-forwards), which closes the steal window.
		for i := range svc.shards {
			if svc.cfg.Steal && svc.shards[i].stealFn != nil && svc.shards[i].stealFn() {
				progress = true
			}
		}
		for i := range svc.shards {
			if stepShard(t, svc, i) {
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// TestStealMovesPendingWork pins the live steal protocol end to end on a
// hand-driven clock: a burst lands on shard 0, shard 1 steals, and the
// original namespaced IDs keep answering status and cancel through the
// redirect chain.
func TestStealMovesPendingWork(t *testing.T) {
	svc, err := New(stealConfig(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ids := submitBurst(t, svc, 0, 8, 3, 0)

	if !svc.stealFor(svc.shards[1]) {
		t.Fatal("stealFor moved nothing off a shard with 8 pending jobs")
	}
	st := svc.Stats()
	if st.Steal == nil {
		t.Fatal("Stats.Steal nil with stealing enabled")
	}
	if st.Steal.Stolen == 0 || st.Steal.Stolen != st.Steal.StolenIn {
		t.Fatalf("steal counters %+v, want stolen == stolen_in > 0", st.Steal)
	}
	if st.Submitted != 8 {
		t.Fatalf("submitted %d after steal, want 8 (a steal is not an external admission)", st.Submitted)
	}
	// Thief holds real work now: the same gauge placement reads.
	if w := svc.shards[1].loadEstWork.Load(); w <= 0 {
		t.Fatalf("thief est-work gauge %d after steal, want > 0", w)
	}

	// Every original ID still resolves, stolen or not, and reports itself
	// under the ID the client was given.
	stolen := -1
	for _, id := range ids {
		js, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %d lost after steal", id)
		}
		if js.ID != id {
			t.Fatalf("job %d reports ID %d", id, js.ID)
		}
		if _, moved := svc.shards[0].tab.redirect(LocalID(id)); moved && stolen < 0 {
			stolen = id
		}
	}
	if stolen < 0 {
		t.Fatal("no redirect installed on the victim")
	}
	// Cancel by original ID crosses the redirect to the thief.
	if err := svc.Cancel(stolen); err != nil {
		t.Fatalf("cancel stolen job %d: %v", stolen, err)
	}

	drainManually(t, svc)
	final := svc.Stats()
	if final.Completed+final.Cancelled != 8 || final.Cancelled != 1 {
		t.Fatalf("terminal stats %+v, want 7 completed + 1 cancelled", final)
	}
	for _, id := range ids {
		js, ok := svc.Job(id)
		if !ok || (js.Phase != sim.JobDone && js.Phase != sim.JobCancelled) {
			t.Fatalf("job %d not terminal: %+v ok=%v", id, js, ok)
		}
	}
}

// TestStealConservation is the steal-on/steal-off quickcheck: the same
// seeded job set must reach the same terminal statuses either way — no
// job lost, none duplicated, same completion count.
func TestStealConservation(t *testing.T) {
	specs := func() []sim.JobSpec {
		rng := rand.New(rand.NewSource(11))
		out := make([]sim.JobSpec, 60)
		for i := range out {
			out[i] = sim.JobSpec{Graph: dag.UniformChain(1, 1+rng.Intn(5), 1)}
		}
		return out
	}

	run := func(steal bool) (Stats, map[int]sim.JobPhase) {
		cfg := stealConfig(4, 1, 1)
		cfg.Steal = steal
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ids []int
		for _, spec := range specs() {
			id, err := svc.shards[0].submit("", spec)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, composeID(0, id))
		}
		drainManually(t, svc)
		phases := map[int]sim.JobPhase{}
		for _, id := range ids {
			js, ok := svc.Job(id)
			if !ok {
				t.Fatalf("steal=%v: job %d lost", steal, id)
			}
			phases[id] = js.Phase
		}
		return svc.Stats(), phases
	}

	offStats, offPhases := run(false)
	onStats, onPhases := run(true)
	if onStats.Completed != offStats.Completed || onStats.Submitted != offStats.Submitted {
		t.Fatalf("steal-on stats %+v, steal-off %+v", onStats, offStats)
	}
	if len(onPhases) != len(offPhases) {
		t.Fatalf("steal-on tracked %d jobs, steal-off %d", len(onPhases), len(offPhases))
	}
	for id, want := range offPhases {
		if got := onPhases[id]; got != want {
			t.Fatalf("job %d: steal-on phase %v, steal-off %v", id, got, want)
		}
	}
	if onStats.Steal == nil || onStats.Steal.Stolen == 0 {
		t.Fatalf("steal-on run stole nothing (steal=%+v): the quickcheck exercised no steals", onStats.Steal)
	}
}

// TestStealDrainsSkewedBacklog is the in-process form of the CI smoke: a
// skewed burst on one shard of a running 4-shard fleet drains with help —
// the steal counters move and nothing is lost.
func TestStealDrainsSkewedBacklog(t *testing.T) {
	cfg := stealConfig(4, 1, 1)
	cfg.MaxInFlight = 4096
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 800
	ids := submitBurst(t, svc, 0, n, 5, 0)
	svc.Start()
	waitFor(t, "skewed drain", func() bool { return svc.Stats().Completed == n })
	st := svc.Stats()
	if st.Steal == nil || st.Steal.Stolen == 0 {
		t.Fatalf("no steals on a %d-job single-shard backlog: %+v", n, st.Steal)
	}
	for _, id := range ids {
		if js, ok := svc.Job(id); !ok || js.Phase != sim.JobDone {
			t.Fatalf("job %d not done: %+v ok=%v", id, js, ok)
		}
	}
	drainAndClose(t, svc)
}

// TestStealRestartReplaysExactly crashes a fleet mid-steal-history and
// replays: counters, per-job terminal state and the original-ID redirect
// chain must all survive.
func TestStealRestartReplaysExactly(t *testing.T) {
	cfg := journaledStealConfig(t, 2, 1, 1)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A long immediate job keeps the victim's clock grinding below the
	// burst's release, so the burst stays pending (and stealable) across
	// steps — an idle engine would fast-forward straight to the release.
	long, err := svc.shards[0].submit("", sim.JobSpec{Graph: dag.UniformChain(1, 40, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ids := submitBurst(t, svc, 0, 6, 3, 100)
	ids = append(ids, composeID(0, long))
	stepShard(t, svc, 0) // some progress before the steal
	stepShard(t, svc, 0)
	if !svc.stealFor(svc.shards[1]) {
		t.Fatal("steal moved nothing")
	}
	stepShard(t, svc, 0)
	stepShard(t, svc, 1)
	before := svc.Stats()
	beforeJobs := map[int]sim.JobStatus{}
	for _, id := range ids {
		js, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %d vanished pre-crash", id)
		}
		beforeJobs[id] = js
	}
	drainlessClose(t, svc)

	svc2, err := New(restartStealConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	after := svc2.Stats()
	if after.Submitted != before.Submitted || after.Completed != before.Completed ||
		after.Pending != before.Pending || after.Active != before.Active {
		t.Fatalf("restarted stats %+v, want %+v", after, before)
	}
	if *after.Steal != *before.Steal {
		t.Fatalf("restarted steal state %+v, want %+v", after.Steal, before.Steal)
	}
	for id, want := range beforeJobs {
		got, ok := svc2.Job(id)
		if !ok {
			t.Fatalf("job %d lost across restart", id)
		}
		if got.Phase != want.Phase || got.Release != want.Release || got.Completion != want.Completion {
			t.Fatalf("job %d: restarted %+v, want %+v", id, got, want)
		}
	}
	drainManually(t, svc2)
	if st := svc2.Stats(); st.Completed != 7 {
		t.Fatalf("post-restart drain completed %d of 7", st.Completed)
	}
	drainAndClose(t, svc2)
}

// TestStealCrashBetweenRecords drives the crash matrix's interesting
// point in-process: the fleet dies with exactly one half of a steal's
// record pair durable. Restoring a pre-steal copy of one shard's WAL
// simulates losing that shard's half.
func TestStealCrashBetweenRecords(t *testing.T) {
	t.Run("orphan", func(t *testing.T) {
		// Thief's admit record lost: the victim's record says the jobs left,
		// nobody says they arrived. Reconciliation re-homes them on the
		// victim.
		cfg := journaledStealConfig(t, 2, 1, 1)
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids := submitBurst(t, svc, 0, 4, 2, 0)
		thiefWAL := shardJournalPath(cfg.Journal.Dir, 1)
		preSteal, err := os.ReadFile(thiefWAL)
		if err != nil {
			t.Fatal(err)
		}
		if !svc.stealFor(svc.shards[1]) {
			t.Fatal("steal moved nothing")
		}
		drainlessClose(t, svc)
		if err := os.WriteFile(thiefWAL, preSteal, 0o644); err != nil {
			t.Fatal(err)
		}

		svc2, err := New(restartStealConfig(cfg))
		if err != nil {
			t.Fatalf("restart after orphaned steal: %v", err)
		}
		st := svc2.Stats()
		if st.Submitted != 4 || st.Pending != 4 {
			t.Fatalf("post-repair stats %+v, want all 4 jobs pending again", st)
		}
		if st.Steal.Stolen == 0 || st.Steal.Stolen != st.Steal.StolenIn {
			t.Fatalf("post-repair steal counters %+v, want matched and non-zero", st.Steal)
		}
		drainManually(t, svc2)
		for _, id := range ids {
			if js, ok := svc2.Job(id); !ok || js.Phase != sim.JobDone {
				t.Fatalf("job %d not done after orphan repair: %+v ok=%v", id, js, ok)
			}
		}
		if st := svc2.Stats(); st.Completed != 4 {
			t.Fatalf("completed %d of 4 after orphan repair", st.Completed)
		}
		drainlessClose(t, svc2)

		// The repair itself was journaled: a second restart replays it
		// without needing another repair, to the identical state.
		svc3, err := New(restartStealConfig(cfg))
		if err != nil {
			t.Fatalf("second restart: %v", err)
		}
		if st := svc3.Stats(); st.Completed != 4 {
			t.Fatalf("second restart completed %d of 4", st.Completed)
		}
		drainAndClose(t, svc3)
	})

	t.Run("duplicate", func(t *testing.T) {
		// Victim's steal record lost: its journal still claims the jobs,
		// and so does the thief's admit record. Reconciliation withdraws
		// the victim-side copies.
		cfg := journaledStealConfig(t, 2, 1, 1)
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids := submitBurst(t, svc, 0, 4, 2, 0)
		victimWAL := shardJournalPath(cfg.Journal.Dir, 0)
		preSteal, err := os.ReadFile(victimWAL)
		if err != nil {
			t.Fatal(err)
		}
		if !svc.stealFor(svc.shards[1]) {
			t.Fatal("steal moved nothing")
		}
		drainlessClose(t, svc)
		if err := os.WriteFile(victimWAL, preSteal, 0o644); err != nil {
			t.Fatal(err)
		}

		svc2, err := New(restartStealConfig(cfg))
		if err != nil {
			t.Fatalf("restart after duplicated steal: %v", err)
		}
		st := svc2.Stats()
		if st.Submitted != 4 || st.Pending != 4 {
			t.Fatalf("post-repair stats %+v, want each job pending exactly once", st)
		}
		drainManually(t, svc2)
		final := svc2.Stats()
		if final.Completed != 4 {
			t.Fatalf("completed %d of 4 after duplicate repair (a double-run would overshoot)", final.Completed)
		}
		for _, id := range ids {
			if js, ok := svc2.Job(id); !ok || js.Phase != sim.JobDone {
				t.Fatalf("job %d not done after duplicate repair: %+v ok=%v", id, js, ok)
			}
		}
		drainAndClose(t, svc2)
	})
}

// TestStealOffRestartRefusesStealJournal pins the mismatch error: a
// journal holding steal records cannot replay on a steal-disabled build
// (dropping the redirects would orphan every moved job's identity).
func TestStealOffRestartRefusesStealJournal(t *testing.T) {
	cfg := journaledStealConfig(t, 2, 1, 1)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitBurst(t, svc, 0, 4, 2, 0)
	if !svc.stealFor(svc.shards[1]) {
		t.Fatal("steal moved nothing")
	}
	drainlessClose(t, svc)

	off := restartStealConfig(cfg)
	off.Steal = false
	if _, err := New(off); err == nil || !strings.Contains(err.Error(), "-steal") {
		t.Fatalf("steal-off restart over a steal journal: %v, want an error naming -steal", err)
	}
}

// TestStealFairnessMutuallyExclusive pins the config guard.
func TestStealFairnessMutuallyExclusive(t *testing.T) {
	cfg := stealConfig(2, 1, 1)
	cfg.Fairness = &fairshare.Config{}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Steal+Fairness accepted: %v", err)
	}
}

// TestStealReplicationAndPromotion streams a steal's record pair to a
// warm standby: the follower's engines must track the primary
// bit-identically, resolve original IDs through rebuilt redirects, and
// finish the stolen work after promotion.
func TestStealReplicationAndPromotion(t *testing.T) {
	fcfg := journaledStealConfig(t, 2, 1, 1)
	follower, rcv, addr := startFollower(t, fcfg, 0)

	pcfg := journaledStealConfig(t, 2, 1, 1)
	primary, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { drainlessClose(t, primary) })
	startSender(t, primary, pcfg.Journal.Dir, addr, nil)

	ids := submitBurst(t, primary, 0, 6, 3, 0)
	if !primary.stealFor(primary.shards[1]) {
		t.Fatal("steal moved nothing")
	}
	// Drain on the hand-driven clock (checkpoints require idle engines):
	// every step streams to the follower behind the commit hook.
	drainManually(t, primary)
	waitCaughtUp(t, primary, follower)
	requireIdentical(t, primary, follower)

	pst, fst := primary.Stats(), follower.Stats()
	if fst.Steal == nil || *fst.Steal != *pst.Steal {
		t.Fatalf("follower steal state %+v, primary %+v", fst.Steal, pst.Steal)
	}
	for _, id := range ids {
		want, ok := primary.Job(id)
		if !ok {
			t.Fatalf("job %d missing on primary", id)
		}
		got, ok := follower.Job(id)
		if !ok {
			t.Fatalf("job %d missing on follower (redirect not rebuilt?)", id)
		}
		if got.Phase != want.Phase || got.Release != want.Release {
			t.Fatalf("job %d: follower %+v, primary %+v", id, got, want)
		}
	}

	// Promote: reconciliation finds both halves present (no repair), the
	// loops start, and the stolen work finishes under its original IDs.
	if epoch := rcv.Promote(); epoch != 2 {
		t.Fatalf("promotion epoch %d, want 2", epoch)
	}
	waitFor(t, "promoted drain", func() bool { return follower.Stats().Completed == 6 })
	for _, id := range ids {
		if js, ok := follower.Job(id); !ok || js.Phase != sim.JobDone {
			t.Fatalf("job %d not done after promotion: %+v ok=%v", id, js, ok)
		}
	}
	if err := follower.Err(); err != nil {
		t.Fatalf("promoted follower unhealthy: %v", err)
	}
}

// TestStealHotPathAllocs pins the steady-state allocation contract: the
// idle-shard probe that finds no victim and the gauge refresh both run
// allocation-free, so a parked fleet polling every 2ms costs nothing.
func TestStealHotPathAllocs(t *testing.T) {
	svc, err := New(stealConfig(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	thief := svc.shards[1]
	if allocs := testing.AllocsPerRun(200, func() {
		if svc.stealFor(thief) {
			t.Fatal("probe stole from an empty fleet")
		}
	}); allocs != 0 {
		t.Fatalf("idle-shard steal probe allocates %.1f per run, want 0", allocs)
	}
	sh := svc.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if allocs := testing.AllocsPerRun(200, sh.syncGaugesLocked); allocs != 0 {
		t.Fatalf("work-gauge update allocates %.1f per run, want 0", allocs)
	}
}

// TestStealIdleThreshold pins -steal-idle plumbing: a near-idle shard
// (est-work below the threshold) probes for steals from its own loop.
func TestStealIdleThreshold(t *testing.T) {
	cfg := stealConfig(2, 1, 1)
	cfg.StealIdle = 10
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if svc.shards[1].stealIdle != 10 {
		t.Fatalf("stealIdle %d, want 10", svc.shards[1].stealIdle)
	}
	// Give the thief a little work (below threshold) and the victim a lot:
	// the near-idle path still steals.
	if _, err := svc.shards[1].submit("", sim.JobSpec{Graph: dag.UniformChain(1, 2, 1)}); err != nil {
		t.Fatal(err)
	}
	submitBurst(t, svc, 0, 20, 4, 0)
	if svc.shards[1].loadEstWork.Load() >= cfg.StealIdle {
		t.Fatalf("thief est-work %d not below threshold %d: test premise broken", svc.shards[1].loadEstWork.Load(), cfg.StealIdle)
	}
	if !svc.stealFor(svc.shards[1]) {
		t.Fatal("near-idle thief stole nothing")
	}
	drainManually(t, svc)
	if st := svc.Stats(); st.Completed != 21 {
		t.Fatalf("completed %d of 21", st.Completed)
	}
}
