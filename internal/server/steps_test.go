package server

import (
	"testing"

	"krad/internal/dag"
	"krad/internal/journal"
	"krad/internal/sim"
)

// stepShardN drives one shard by up to n steps under one lock and one
// journal append, the batched form the step loop uses.
func stepShardN(t *testing.T, svc *Service, idx int, n int64) int64 {
	t.Helper()
	did, err := svc.shards[idx].stepN(n)
	if err != nil {
		t.Fatal(err)
	}
	return did
}

// TestRestartReplaysBatchedSteps is the batched analogue of
// TestRestartReplaysExactly: a journal whose step history is aggregated
// "steps" records (one per StepN batch) replays to the identical service
// state, and the journal really does carry aggregated records — one per
// batch, not one per step.
func TestRestartReplaysBatchedSteps(t *testing.T) {
	cfg := journaledConfig(t, 2, 3, 2)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id0, err := svc.Submit(sim.JobSpec{Graph: dag.RoundRobinChain(2, 9)})
	if err != nil {
		t.Fatal(err)
	}
	if got := stepShardN(t, svc, 0, 4); got != 4 {
		t.Fatalf("first batch executed %d steps, want 4", got)
	}
	id1, err := svc.Submit(sim.JobSpec{Graph: dag.UniformChain(2, 7, 2)})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := svc.Submit(sim.JobSpec{Graph: dag.UniformChain(2, 5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if got := stepShardN(t, svc, 0, 3); got != 3 {
		t.Fatalf("second batch executed %d steps, want 3", got)
	}
	if err := svc.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	stepShardN(t, svc, 0, 1) // single step: must journal as a plain step record

	before := svc.Stats()
	beforeJobs := map[int]sim.JobStatus{}
	for _, id := range []int{id0, id1, id2} {
		st, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		beforeJobs[id] = st
	}
	drainAndClose(t, svc)

	// The on-disk history must be aggregated: exactly two steps records
	// (N=4, N=3) and one plain step record.
	jn, recs, err := journal.Open(shardJournalPath(cfg.Journal.Dir, 0), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	var nsteps, nstep []int64
	for _, r := range recs {
		switch r.Type {
		case journal.TypeSteps:
			nsteps = append(nsteps, r.N)
		case journal.TypeStep:
			nstep = append(nstep, 1)
		}
	}
	if len(nsteps) != 2 || nsteps[0] != 4 || nsteps[1] != 3 {
		t.Fatalf("aggregated step records %v, want [4 3]", nsteps)
	}
	if len(nstep) != 1 {
		t.Fatalf("%d plain step records, want 1 (the unbatched single step)", len(nstep))
	}

	svc2, err := New(journaledConfigFrom(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer drainAndClose(t, svc2)
	after := svc2.Stats()
	if after.Now != before.Now {
		t.Fatalf("restarted clock %d, want %d", after.Now, before.Now)
	}
	if after.Submitted != before.Submitted || after.Completed != before.Completed ||
		after.Cancelled != before.Cancelled || after.Active != before.Active ||
		after.Pending != before.Pending {
		t.Fatalf("restarted stats %+v, want %+v", after, before)
	}
	for id, want := range beforeJobs {
		got, ok := svc2.Job(id)
		if !ok {
			t.Fatalf("job %d missing after restart", id)
		}
		if !equalJobStatus(got, want) {
			t.Fatalf("job %d after restart: %+v, want %+v", id, got, want)
		}
	}
}

// TestRestartReplaysLeapedDAGSteps checks journal-replay determinism now
// that DAG-backed runtimes event-leap: batched steps over a dense-layered
// graph are covered by leaps, the journal still holds one aggregated
// record per batch, and a restart reproduces the exact service state —
// replay leaps or single-steps as it pleases, the law says it cannot
// matter.
func TestRestartReplaysLeapedDAGSteps(t *testing.T) {
	layered := func() *dag.Graph {
		return dag.Layered(2, []dag.LayerSpec{
			{Count: 96, Cat: 1}, {Count: 1, Cat: 2},
			{Count: 96, Cat: 2}, {Count: 1, Cat: 1},
		}, true)
	}
	cfg := journaledConfig(t, 2, 4, 4)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for j := 0; j < 2; j++ {
		id, err := svc.Submit(sim.JobSpec{Graph: layered()})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Odd batch sizes land leap windows at arbitrary offsets.
	for _, n := range []int64{5, 9, 3, 17} {
		stepShardN(t, svc, 0, n)
	}
	if got := svc.shards[0].view().snap.LeapSteps; got == 0 {
		t.Fatal("dense-layered DAG batches executed without any event-leaps")
	}

	before := svc.Stats()
	beforeJobs := map[int]sim.JobStatus{}
	for _, id := range ids {
		st, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		beforeJobs[id] = st
	}
	drainAndClose(t, svc)

	svc2, err := New(journaledConfigFrom(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer drainAndClose(t, svc2)
	after := svc2.Stats()
	if after.Now != before.Now {
		t.Fatalf("restarted clock %d, want %d", after.Now, before.Now)
	}
	if after.Submitted != before.Submitted || after.Completed != before.Completed ||
		after.Active != before.Active || after.Pending != before.Pending {
		t.Fatalf("restarted stats %+v, want %+v", after, before)
	}
	for id, want := range beforeJobs {
		got, ok := svc2.Job(id)
		if !ok {
			t.Fatalf("job %d missing after restart", id)
		}
		if !equalJobStatus(got, want) {
			t.Fatalf("job %d after restart: %+v, want %+v", id, got, want)
		}
	}
}

// equalJobStatus compares statuses field by field (Work is a slice, so
// JobStatus is not directly comparable).
func equalJobStatus(a, b sim.JobStatus) bool {
	if a.ID != b.ID || a.Release != b.Release || a.Phase != b.Phase ||
		a.Completion != b.Completion || a.CancelledAt != b.CancelledAt || a.Span != b.Span {
		return false
	}
	if len(a.Work) != len(b.Work) {
		return false
	}
	for i := range a.Work {
		if a.Work[i] != b.Work[i] {
			return false
		}
	}
	return true
}
