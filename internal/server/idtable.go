package server

import (
	"sync"

	"krad/internal/sim"
)

// idStripes is the number of lock stripes in a shard's job-status index.
// Status reads hash across the stripes by ID, so GET/DELETE lookups under
// a submission storm contend on 1/idStripes of the index instead of on
// the shard lock the step loop holds. Power of two so the stripe pick
// compiles to a mask.
const idStripes = 16

// idEntry is one job's lifecycle status inside the index. The work vector
// lives in the stripe's shared arena (slot*k..slot*k+k), not in the
// entry: every job on a shard has the same K categories, so one growing
// []int amortizes what would otherwise be a per-job allocation.
type idEntry struct {
	release     int64
	completion  int64
	cancelledAt int64
	span        int
	phase       sim.JobPhase
	family      sim.RuntimeFamily
	present     bool
}

// idStripe owns every ID congruent to its index mod idStripes, densely
// packed at slot id/idStripes. Slots are append-grown; restoring from a
// sparse (post-retirement) checkpoint leaves zero-value holes, which the
// present flag distinguishes from real jobs.
type idStripe struct {
	mu   sync.RWMutex
	ents []idEntry
	work []int // slot i's work vector at [i*k : (i+1)*k]
	// redir maps shard-local IDs of jobs stolen from this shard to the
	// namespaced IDs they moved to. Lazily allocated: a shard that never
	// loses a job pays nothing. A redirected ID's entry is absent (the job
	// lives elsewhere now); the service follows the redirect chain.
	redir map[int]int
}

// idTable is a shard's lock-striped job-status index: the read side of
// the shard, split off the engine so status lookups never touch the shard
// lock. Writers — admission, the step loop's release/completion
// accounting, cancellation, replay rebuild — all run under the shard lock
// (one writer at a time) and additionally take the stripe write lock so
// concurrent readers always observe a consistent entry. The table is
// purely derived state: it is never journaled, and a restart rebuilds it
// from the replayed engine. With Config.RetireDone it outlives the
// engine's own job table, serving terminal-status queries for jobs the
// engine has already recycled.
type idTable struct {
	k       int
	stripes [idStripes]idStripe
}

func newIDTable(k int) *idTable { return &idTable{k: k} }

func (t *idTable) stripe(id int) (*idStripe, int) {
	return &t.stripes[id&(idStripes-1)], id / idStripes
}

// put records a job's full status (admission and replay rebuild). The
// Work slice is copied into the stripe arena, so callers may pass
// engine-owned memory (sim.Engine.JobRef).
func (t *idTable) put(id int, st sim.JobStatus) {
	if id < 0 {
		return
	}
	s, slot := t.stripe(id)
	s.mu.Lock()
	for len(s.ents) <= slot {
		s.ents = append(s.ents, idEntry{})
		s.work = append(s.work, make([]int, t.k)...)
	}
	s.ents[slot] = idEntry{
		release:     st.Release,
		completion:  st.Completion,
		cancelledAt: st.CancelledAt,
		span:        st.Span,
		phase:       st.Phase,
		family:      st.Family,
		present:     true,
	}
	copy(s.work[slot*t.k:(slot+1)*t.k], st.Work)
	s.mu.Unlock()
}

// get returns a job's status by engine-local ID, with a fresh Work copy
// (the status escapes to HTTP encoding, which outlives any lock).
func (t *idTable) get(id int) (sim.JobStatus, bool) {
	if id < 0 {
		return sim.JobStatus{}, false
	}
	s, slot := t.stripe(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if slot >= len(s.ents) || !s.ents[slot].present {
		return sim.JobStatus{}, false
	}
	e := s.ents[slot]
	return sim.JobStatus{
		ID:          id,
		Release:     e.release,
		Phase:       e.phase,
		Family:      e.family,
		Completion:  e.completion,
		CancelledAt: e.cancelledAt,
		Work:        append([]int(nil), s.work[slot*t.k:(slot+1)*t.k]...),
		Span:        e.span,
	}, true
}

// release returns a job's release time without copying its work vector —
// the step loop's per-completion response accounting reads it on the hot
// path.
func (t *idTable) release(id int) (int64, bool) {
	if id < 0 {
		return 0, false
	}
	s, slot := t.stripe(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if slot >= len(s.ents) || !s.ents[slot].present {
		return 0, false
	}
	return s.ents[slot].release, true
}

// phaseOf returns a job's phase and completion step — the cancellation
// precheck, which must answer for jobs the engine has retired.
func (t *idTable) phaseOf(id int) (sim.JobPhase, int64, bool) {
	if id < 0 {
		return 0, 0, false
	}
	s, slot := t.stripe(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if slot >= len(s.ents) || !s.ents[slot].present {
		return 0, 0, false
	}
	return s.ents[slot].phase, s.ents[slot].completion, true
}

// setActive marks a released job active (step loop, under the shard
// lock).
func (t *idTable) setActive(id int) {
	s, slot := t.stripe(id)
	s.mu.Lock()
	if slot < len(s.ents) && s.ents[slot].present {
		s.ents[slot].phase = sim.JobActive
	}
	s.mu.Unlock()
}

// setDone marks a job completed at the given step.
func (t *idTable) setDone(id int, completion int64) {
	s, slot := t.stripe(id)
	s.mu.Lock()
	if slot < len(s.ents) && s.ents[slot].present {
		s.ents[slot].phase = sim.JobDone
		s.ents[slot].completion = completion
	}
	s.mu.Unlock()
}

// setCancelled marks a job cancelled at the given step.
func (t *idTable) setCancelled(id int, at int64) {
	s, slot := t.stripe(id)
	s.mu.Lock()
	if slot < len(s.ents) && s.ents[slot].present {
		s.ents[slot].phase = sim.JobCancelled
		s.ents[slot].cancelledAt = at
	}
	s.mu.Unlock()
}

// setRedirect records that the job at shard-local id was stolen and now
// lives under the namespaced target ID. The local entry is blanked (the
// status truth moved with the job) and the redirect answers lookups by the
// original ID from then on. Overwriting an existing redirect is legal —
// startup reconciliation re-homes orphaned steals.
func (t *idTable) setRedirect(id, target int) {
	if id < 0 {
		return
	}
	s, slot := t.stripe(id)
	s.mu.Lock()
	if slot < len(s.ents) {
		s.ents[slot] = idEntry{}
	}
	if s.redir == nil {
		s.redir = make(map[int]int)
	}
	s.redir[id] = target
	s.mu.Unlock()
}

// redirect returns where the job at shard-local id moved to, if it was
// stolen from this shard.
func (t *idTable) redirect(id int) (int, bool) {
	if id < 0 {
		return 0, false
	}
	s, _ := t.stripe(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	target, ok := s.redir[id]
	return target, ok
}

// redirects snapshots every redirect entry (nil when there are none) —
// the steal state a journal snapshot must carry so compaction does not
// forget where stolen jobs went.
func (t *idTable) redirects() map[int]int {
	var out map[int]int
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		for id, target := range s.redir {
			if out == nil {
				out = make(map[int]int)
			}
			out[id] = target
		}
		s.mu.RUnlock()
	}
	return out
}

// reset drops every entry (a replicated-snapshot reset rebuilds the table
// wholesale from the restored engine). Backing arrays are kept; redirects
// drop with the entries.
func (t *idTable) reset() {
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		s.ents = s.ents[:0]
		s.work = s.work[:0]
		s.redir = nil
		s.mu.Unlock()
	}
}
