package metrics

import (
	"math"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sim"
)

func runKRAD(t *testing.T, k int, caps []int, specs []sim.JobSpec) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		K: k, Caps: caps, Scheduler: core.NewKRAD(k),
		Pick: dag.PickFIFO, ValidateAllotments: true,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMakespanLowerBoundSingleChain(t *testing.T) {
	res := runKRAD(t, 1, []int{4}, []sim.JobSpec{{Graph: dag.UniformChain(1, 9, 1)}})
	// Chain: span 9 dominates work/P = 9/4.
	if lb := MakespanLowerBound(res); lb != 9 {
		t.Errorf("LB = %d, want 9", lb)
	}
}

func TestMakespanLowerBoundWorkDominates(t *testing.T) {
	specs := []sim.JobSpec{}
	for i := 0; i < 16; i++ {
		specs = append(specs, sim.JobSpec{Graph: dag.Singleton(1, 1)})
	}
	res := runKRAD(t, 1, []int{2}, specs)
	// 16 unit tasks on 2 processors: LB = 8.
	if lb := MakespanLowerBound(res); lb != 8 {
		t.Errorf("LB = %d, want 8", lb)
	}
	if res.Makespan != 8 {
		t.Errorf("K-RAD makespan %d, want 8 (work-limited)", res.Makespan)
	}
}

func TestMakespanLowerBoundReleaseTerm(t *testing.T) {
	specs := []sim.JobSpec{{Graph: dag.UniformChain(1, 3, 1), Release: 100}}
	res := runKRAD(t, 1, []int{1}, specs)
	if lb := MakespanLowerBound(res); lb != 103 {
		t.Errorf("LB = %d, want 103", lb)
	}
}

func TestMakespanUpperBoundHolds(t *testing.T) {
	specs := []sim.JobSpec{
		{Graph: dag.ForkJoin(2, 8, 1, 2, 1)},
		{Graph: dag.RoundRobinChain(2, 10)},
		{Graph: dag.MapReduce(2, 6, 3, 1, 1, 2, 2)},
	}
	res := runKRAD(t, 2, []int{3, 3}, specs)
	ub := MakespanUpperBound(res)
	if float64(res.Makespan) > ub {
		t.Errorf("Lemma 2 violated: makespan %d > bound %v", res.Makespan, ub)
	}
}

func TestMakespanCompetitiveLimit(t *testing.T) {
	if got := MakespanCompetitiveLimit(3, []int{2, 4, 8}); got != 4-1.0/8 {
		t.Errorf("limit = %v, want %v", got, 4-1.0/8)
	}
	if got := MakespanCompetitiveLimit(1, []int{4}); got != 2-0.25 {
		t.Errorf("K=1 limit = %v", got)
	}
}

func TestResponseBounds(t *testing.T) {
	specs := []sim.JobSpec{
		{Graph: dag.UniformChain(1, 4, 1)},
		{Graph: dag.UniformChain(1, 2, 1)},
	}
	res := runKRAD(t, 1, []int{2}, specs)
	lb := ResponseLowerBound(res)
	// Aggregate span = 6; swa: works {4,2} on 2 procs: sq-sum = 2·2+4·1 = 8,
	// swa = 4. LB = max(6, 4) = 6.
	if lb != 6 {
		t.Errorf("response LB = %v, want 6", lb)
	}
	if got := float64(res.TotalResponse()); got < lb {
		t.Errorf("measured response %v below LB %v", got, lb)
	}
	ub := ResponseUpperBoundLight(res)
	if float64(res.TotalResponse()) > ub {
		t.Errorf("Theorem 5 Inequality (5) violated: %d > %v", res.TotalResponse(), ub)
	}
}

func TestResponseCompetitiveLimits(t *testing.T) {
	if got := ResponseCompetitiveLimitLight(1, 1000); math.Abs(got-3) > 0.01 {
		t.Errorf("K=1 light limit = %v, want ≈ 3", got)
	}
	if got := ResponseCompetitiveLimit(1, 1000); math.Abs(got-5) > 0.02 {
		t.Errorf("K=1 heavy limit = %v, want ≈ 5", got)
	}
	if got := ResponseCompetitiveLimitLight(2, 3); got != 5-4.0/4 {
		t.Errorf("limit = %v", got)
	}
	// Monotone in n.
	if ResponseCompetitiveLimit(2, 10) >= ResponseCompetitiveLimit(2, 1000) {
		t.Error("limit not increasing in n")
	}
}

func TestComputeRatios(t *testing.T) {
	specs := []sim.JobSpec{
		{Graph: dag.ForkJoin(2, 4, 1, 2, 1)},
		{Graph: dag.RoundRobinChain(2, 6)},
	}
	res := runKRAD(t, 2, []int{4, 4}, specs)
	r := ComputeRatios(res)
	if r.Makespan != res.Makespan {
		t.Error("makespan not copied")
	}
	if r.MakespanRatio < 1 {
		t.Errorf("makespan ratio %v below 1 — LB exceeded measurement?", r.MakespanRatio)
	}
	if r.MakespanRatio > r.MakespanBound {
		t.Errorf("Theorem 3 violated: ratio %v > bound %v", r.MakespanRatio, r.MakespanBound)
	}
	if !r.LightLoad {
		t.Error("2 jobs on 4+4 processors flagged as heavy load")
	}
	if r.ResponseRatio > r.ResponseBound {
		t.Errorf("Theorem 5 violated: ratio %v > bound %v", r.ResponseRatio, r.ResponseBound)
	}
}

func TestSummarizeAndPercentile(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Error("empty summary nonzero")
	}
	s = Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-9 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.P50-2.5) > 1e-9 {
		t.Errorf("p50 = %v", s.P50)
	}
	if got := Percentile([]float64{1, 2, 3}, 1); got != 3 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile([]float64{7}, 0.5); got != 7 {
		t.Errorf("single sample percentile = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Percentile(empty) did not panic")
			}
		}()
		Percentile(nil, 0.5)
	}()
	if s.String() == "" {
		t.Error("empty String()")
	}
	if MaxFloat([]float64{1, 9, 3}) != 9 {
		t.Error("MaxFloat wrong")
	}
}
