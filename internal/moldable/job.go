package moldable

import (
	"fmt"

	"krad/internal/dag"
	"krad/internal/sim"
)

// maxTaskProcs bounds a task's declared processor maximum. The per-task
// duration table is precomputed up to the molding cap, so an absurd
// maximum must not translate into an absurd allocation.
const maxTaskProcs = 1 << 16

// TaskSpec is one moldable task on the wire: its processor category,
// serial work (steps on one processor), the most processors it can use,
// and its speedup curve.
type TaskSpec struct {
	Cat   int       `json:"cat"`
	Work  int       `json:"work"`
	Max   int       `json:"max"`
	Curve CurveSpec `json:"curve"`
}

// Spec is the wire form of a moldable job: the JSON body kradd accepts,
// the payload the journal replays, and the only way to construct a Job —
// one canonical, fully validated path for every entry point. Edges are
// precedence pairs [from, to] over task indices.
type Spec struct {
	K     int        `json:"k"`
	Name  string     `json:"name,omitempty"`
	Tasks []TaskSpec `json:"tasks"`
	Edges [][2]int   `json:"edges,omitempty"`
}

// Job is a validated moldable job: tasks under precedence, each with a
// concave speedup curve. It implements sim.JobSource; every derived
// quantity (duration tables, molding caps, critical-path heights) is
// precomputed here so Instance hot paths do no float math.
type Job struct {
	spec  Spec
	name  string
	k     int
	cats  []dag.Category // per task
	works []int          // per task: serial work
	// useful[v] is the molding cap: the largest allotment the ½-efficiency
	// policy will start task v on (see usefulProcs).
	useful []int
	// dur[v][p-1] = ceil(works[v] / s(p)) for p in 1..useful[v].
	dur [][]int32
	// optDur[v] = ceil(works[v] / s(Max)): the fastest any valid execution
	// can run the task, which is what makes Span a true lower bound.
	optDur []int32
	// heights[v] is the optimistic critical-path length from v inclusive
	// to a sink, in optDur units (CP pick policies sort by it).
	heights []int32
	succ    [][]int32
	npred   []int32
	work    []int // per category: Σ serial work
	span    int
	total   int
}

// FromSpec validates s and builds the Job. Errors locate the offending
// task or edge by index, so API callers can return them verbatim.
func FromSpec(s Spec) (*Job, error) {
	if s.K < 1 {
		return nil, fmt.Errorf("moldable: k = %d, need ≥ 1", s.K)
	}
	if len(s.Tasks) == 0 {
		return nil, fmt.Errorf("moldable: job has no tasks")
	}
	j := &Job{
		name:    s.Name,
		k:       s.K,
		cats:    make([]dag.Category, len(s.Tasks)),
		works:   make([]int, len(s.Tasks)),
		useful:  make([]int, len(s.Tasks)),
		dur:     make([][]int32, len(s.Tasks)),
		optDur:  make([]int32, len(s.Tasks)),
		heights: make([]int32, len(s.Tasks)),
		succ:    make([][]int32, len(s.Tasks)),
		npred:   make([]int32, len(s.Tasks)),
		work:    make([]int, s.K),
	}
	for v, ts := range s.Tasks {
		if ts.Cat < 1 || ts.Cat > s.K {
			return nil, fmt.Errorf("moldable: task %d: category %d out of range 1..%d", v, ts.Cat, s.K)
		}
		if ts.Work < 1 {
			return nil, fmt.Errorf("moldable: task %d: work %d, need ≥ 1", v, ts.Work)
		}
		if ts.Max < 1 {
			return nil, fmt.Errorf("moldable: task %d: max processors %d, need ≥ 1", v, ts.Max)
		}
		if ts.Max > maxTaskProcs {
			return nil, fmt.Errorf("moldable: task %d: max processors %d exceeds the %d limit", v, ts.Max, maxTaskProcs)
		}
		curve, err := ts.Curve.Curve()
		if err != nil {
			return nil, fmt.Errorf("moldable: task %d: curve: %w", v, err)
		}
		if err := CheckCurve(curve, ts.Max); err != nil {
			return nil, fmt.Errorf("moldable: task %d: curve: %w", v, err)
		}
		j.cats[v] = dag.Category(ts.Cat)
		j.works[v] = ts.Work
		j.useful[v] = usefulProcs(curve, ts.Max)
		tab := make([]int32, j.useful[v])
		for p := 1; p <= j.useful[v]; p++ {
			tab[p-1] = int32(steps(ts.Work, curve, p))
		}
		j.dur[v] = tab
		j.optDur[v] = int32(steps(ts.Work, curve, ts.Max))
		j.work[ts.Cat-1] += ts.Work
		j.total += ts.Work
	}
	for i, e := range s.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= len(s.Tasks) || v < 0 || v >= len(s.Tasks) {
			return nil, fmt.Errorf("moldable: edge %d: endpoints [%d, %d] out of range 0..%d", i, u, v, len(s.Tasks)-1)
		}
		if u == v {
			return nil, fmt.Errorf("moldable: edge %d: self-loop on task %d", i, u)
		}
		j.succ[u] = append(j.succ[u], int32(v))
		j.npred[v]++
	}
	if err := j.computeHeights(); err != nil {
		return nil, err
	}
	j.spec = cloneSpec(s)
	return j, nil
}

// computeHeights runs one Kahn pass to reject cycles and assigns each
// task its optimistic critical-path height (optDur-weighted longest path
// from the task, inclusive, to a sink). The job's Span is the maximum
// height — a true makespan lower bound, since no execution can run any
// path faster than its optDur sum.
func (j *Job) computeHeights() error {
	n := len(j.cats)
	indeg := make([]int32, n)
	copy(indeg, j.npred)
	order := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			order = append(order, int32(v))
		}
	}
	for i := 0; i < len(order); i++ {
		u := order[i]
		for _, v := range j.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				order = append(order, v)
			}
		}
	}
	if len(order) != n {
		return fmt.Errorf("moldable: precedence edges form a cycle (%d of %d tasks unreachable from the sources)", n-len(order), n)
	}
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		h := int32(0)
		for _, w := range j.succ[v] {
			if j.heights[w] > h {
				h = j.heights[w]
			}
		}
		j.heights[v] = h + j.optDur[v]
		if int(j.heights[v]) > j.span {
			j.span = int(j.heights[v])
		}
	}
	return nil
}

// cloneSpec deep-copies a spec so Job.Spec never aliases caller slices.
func cloneSpec(s Spec) Spec {
	out := Spec{K: s.K, Name: s.Name}
	out.Tasks = append([]TaskSpec(nil), s.Tasks...)
	if s.Edges != nil {
		out.Edges = append([][2]int(nil), s.Edges...)
	}
	return out
}

// Spec returns the job's canonical wire form (a deep copy) — what the
// journal records and what reconstructs the identical Job on replay.
func (j *Job) Spec() Spec { return cloneSpec(j.spec) }

// NumTasks returns the task count.
func (j *Job) NumTasks() int { return len(j.cats) }

// Useful returns the molding policy's processor cap for task v: the most
// processors the ½-efficiency rule will start it on.
func (j *Job) Useful(v int) int { return j.useful[v] }

// Name implements sim.JobSource.
func (j *Job) Name() string {
	if j.name == "" {
		return "moldable"
	}
	return j.name
}

// K implements sim.JobSource.
func (j *Job) K() int { return j.k }

// WorkVector implements sim.JobSource: per-category serial work. Any
// execution of a task on p processors consumes p·ceil(w/s(p)) ≥ w
// processor-steps (s(p) ≤ p), so the serial work is a valid area lower
// bound for the metrics package.
func (j *Job) WorkVector() []int { return append([]int(nil), j.work...) }

// Span implements sim.JobSource: the optDur-weighted critical path.
func (j *Job) Span() int { return j.span }

// TotalTasks implements sim.JobSource: total serial work, which is what
// the engine's runaway guard and throughput accounting need (each task
// runs at most its serial work in steps, since s is nondecreasing).
func (j *Job) TotalTasks() int { return j.total }

// Family implements sim.FamilySource.
func (j *Job) Family() sim.RuntimeFamily { return sim.FamilyMoldable }

// NewRuntime implements sim.JobSource.
func (j *Job) NewRuntime(pick dag.PickPolicy, seed int64) sim.RuntimeJob {
	return NewInstance(j, pick, seed)
}

var _ sim.JobSource = (*Job)(nil)
