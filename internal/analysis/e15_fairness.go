package analysis

import (
	"krad/internal/baselines"
	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sched"
	"krad/internal/sim"
)

// RunE15 measures the price of fairness the paper's related-work section
// leans on: Motwani et al. prove round robin is 2-competitive for batched
// mean response time and that the bound is tight — the tight instance is a
// batch of identical jobs, where any fair (rate-equalizing) scheduler
// finishes everything at ≈ the same late time while run-to-completion
// staggers completions. The experiment runs batches of n identical chains
// on one category and reports each scheduler's total response normalized
// to FCFS run-to-completion (the optimal order for identical jobs).
// Expected shape: the k-rad and rr-only ratios climb toward 2 as n grows
// and never exceed it (matching the [22] bound); the Theorem 5/6
// machinery still holds since their lower bounds absorb the factor.
func RunE15(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E15",
		Title:  "Fairness price on identical jobs (round robin's tight factor 2, Motwani et al.)",
		Header: []string{"n jobs", "chain len", "P", "scheduler", "total resp", "vs run-to-completion", "Thm6 check"},
	}
	sizes := []int{4, 8, 16, 32, 64}
	if opts.Quick {
		sizes = []int{4, 16, 32}
	}
	const chainLen = 12
	const p = 2
	for _, n := range sizes {
		specs := make([]sim.JobSpec, n)
		for i := range specs {
			specs[i] = sim.JobSpec{Graph: dag.UniformChain(1, chainLen, 1)}
		}
		run := func(s sched.Scheduler) (*sim.Result, error) {
			return sim.Run(sim.Config{
				K: 1, Caps: []int{p}, Scheduler: s,
				Pick: dag.PickFIFO, ValidateAllotments: true,
			}, specs)
		}
		base, err := run(baselines.NewFCFS(1))
		if err != nil {
			return nil, err
		}
		for _, entry := range []struct {
			name string
			s    sched.Scheduler
		}{
			{"fcfs (run-to-completion)", nil},
			{"k-rad", core.NewKRAD(1)},
			{"rr-only", baselines.NewRROnly(1)},
			{"equi", baselines.NewEQUI(1)},
		} {
			res := base
			if entry.s != nil {
				res, err = run(entry.s)
				if err != nil {
					return nil, err
				}
			}
			ratio := float64(res.TotalResponse()) / float64(base.TotalResponse())
			bc := CheckTheorem6(res)
			check := "holds"
			if entry.name == "k-rad" && !bc.OK {
				check = "VIOLATED"
				t.AddNote("FAIL: Theorem 6 violated at n=%d", n)
			} else if entry.name != "k-rad" {
				check = "n/a"
			}
			t.AddRow(n, chainLen, p, entry.name, res.TotalResponse(), ratio, check)
			if entry.name != "fcfs (run-to-completion)" && ratio > 2.0+2.0/float64(n) {
				t.AddNote("FAIL: %s ratio %.3f exceeds the tight factor 2 (+1/n slack) at n=%d", entry.name, ratio, n)
			}
		}
	}
	t.AddNote("identical chains make run-to-completion the optimal order; fair schedulers pay up to 2× on total response — exactly the [22] tight bound, and why RAD accepts it in exchange for bounded starvation (E9)")
	return t, nil
}
