package dag

import (
	"fmt"
	"math/rand"
	"sort"
)

// TimedInstance is the non-preemptive runtime for graphs with task
// durations: a started task occupies one processor of its category every
// step until its duration is exhausted, and the scheduler may not take
// that processor back. The instance therefore reports, besides the usual
// desire, an allotment floor per category — the number of in-flight tasks
// — which valid non-preemptive allotments must meet (see sched.WithFloors).
//
// Desire counts ready-but-unstarted tasks plus in-flight tasks: all of
// them could use a processor this step.
type TimedInstance struct {
	g       *Graph
	pick    PickPolicy
	rng     *rand.Rand
	heights []int32
	indeg   []int32
	ready   [][]TaskID
	// inflight[α−1] maps a running task to its remaining whole steps.
	inflight []map[TaskID]int32
	// finished buffers tasks completing this step until Advance.
	finished []TaskID
	done     int
}

// NewTimedInstance wraps g for non-preemptive execution. Works for unit
// graphs too (then it behaves like Instance with floors always 0 after
// each step, since unit tasks finish the step they start).
func NewTimedInstance(g *Graph, pick PickPolicy, seed int64) *TimedInstance {
	in := &TimedInstance{
		g:        g,
		pick:     pick,
		ready:    make([][]TaskID, g.k),
		inflight: make([]map[TaskID]int32, g.k),
	}
	for a := range in.inflight {
		in.inflight[a] = make(map[TaskID]int32)
	}
	if pick == PickRandom {
		in.rng = rand.New(rand.NewSource(seed))
	}
	if pick == PickCPFirst || pick == PickCPLast {
		h, err := g.timedHeights()
		if err != nil {
			panic(err)
		}
		in.heights = h
	}
	in.indeg = make([]int32, g.NumTasks())
	for v := 0; v < g.NumTasks(); v++ {
		in.indeg[v] = int32(len(g.pred[v]))
		if in.indeg[v] == 0 {
			c := g.cats[v]
			in.ready[c-1] = append(in.ready[c-1], TaskID(v))
		}
	}
	return in
}

// Graph returns the underlying K-DAG.
func (in *TimedInstance) Graph() *Graph { return in.g }

// Desire returns ready + in-flight α-tasks.
func (in *TimedInstance) Desire(c Category) int {
	if c < 1 || int(c) > in.g.k {
		return 0
	}
	return len(in.ready[c-1]) + len(in.inflight[c-1])
}

// Floor returns the number of in-flight α-tasks: the processors this job
// must keep this step under non-preemption.
func (in *TimedInstance) Floor(c Category) int {
	if c < 1 || int(c) > in.g.k {
		return 0
	}
	return len(in.inflight[c-1])
}

// Done reports whether every task has completed.
func (in *TimedInstance) Done() bool { return in.done == in.g.NumTasks() }

// Execute runs n α-processors for this step: all in-flight tasks progress
// one step (n must cover them — the engine guarantees floors when the
// scheduler is floor-respecting), and remaining slots start ready tasks
// chosen by the pick policy. It returns the number of processors actually
// used. Execute panics if n is below the floor: that means a
// non-floor-respecting scheduler was used with non-preemptive jobs, which
// is a configuration bug.
func (in *TimedInstance) Execute(c Category, n int) int {
	if n <= 0 || c < 1 || int(c) > in.g.k {
		if n == 0 && in.Floor(c) > 0 {
			panic(fmt.Sprintf("dag: job %q category %d: allotment 0 below floor %d — non-preemptive jobs need a floor-respecting scheduler (sched.WithFloors)", in.g.name, c, in.Floor(c)))
		}
		return 0
	}
	a := int(c) - 1
	fl := len(in.inflight[a])
	if n < fl {
		panic(fmt.Sprintf("dag: job %q category %d: allotment %d below floor %d — non-preemptive jobs need a floor-respecting scheduler (sched.WithFloors)", in.g.name, c, n, fl))
	}
	used := 0
	// Progress every in-flight task.
	for id, rem := range in.inflight[a] {
		used++
		if rem == 1 {
			delete(in.inflight[a], id)
			in.finished = append(in.finished, id)
		} else {
			in.inflight[a][id] = rem - 1
		}
	}
	// Start new tasks in pick order.
	slots := n - fl
	q := in.ready[a]
	if slots > len(q) {
		slots = len(q)
	}
	if slots > 0 {
		in.order(q)
		for _, id := range q[:slots] {
			d := int32(in.g.Duration(id))
			if d == 1 {
				in.finished = append(in.finished, id)
			} else {
				in.inflight[a][id] = d - 1
			}
			used++
		}
		in.ready[a] = q[slots:]
	}
	return used
}

// order mirrors Instance.order for the ready queue.
func (in *TimedInstance) order(q []TaskID) {
	switch in.pick {
	case PickFIFO:
	case PickLIFO:
		for i, j := 0, len(q)-1; i < j; i, j = i+1, j-1 {
			q[i], q[j] = q[j], q[i]
		}
	case PickRandom:
		in.rng.Shuffle(len(q), func(i, j int) { q[i], q[j] = q[j], q[i] })
	case PickCPFirst:
		sort.SliceStable(q, func(i, j int) bool { return in.heights[q[i]] > in.heights[q[j]] })
	case PickCPLast:
		sort.SliceStable(q, func(i, j int) bool { return in.heights[q[i]] < in.heights[q[j]] })
	default:
		panic(fmt.Sprintf("dag: unknown pick policy %d", in.pick))
	}
}

// Advance releases successors of tasks that completed this step. Finished
// tasks are processed in ID order so runs are deterministic even though
// the in-flight set is a map.
func (in *TimedInstance) Advance() {
	if len(in.finished) == 0 {
		return
	}
	sort.Slice(in.finished, func(i, j int) bool { return in.finished[i] < in.finished[j] })
	in.done += len(in.finished)
	for _, u := range in.finished {
		for _, v := range in.g.succ[u] {
			in.indeg[v]--
			if in.indeg[v] == 0 {
				c := in.g.cats[v]
				in.ready[c-1] = append(in.ready[c-1], v)
			}
		}
	}
	in.finished = in.finished[:0]
}

// RemainingWork returns duration-weighted unfinished work per category:
// in-flight remainders plus full durations of unstarted tasks.
func (in *TimedInstance) RemainingWork() []int {
	rem := make([]int, in.g.k)
	for a := range in.inflight {
		for _, r := range in.inflight[a] {
			rem[a] += int(r)
		}
		for _, id := range in.ready[a] {
			rem[a] += in.g.Duration(id)
		}
	}
	for v := 0; v < in.g.NumTasks(); v++ {
		if in.indeg[v] > 0 {
			rem[in.g.cats[v]-1] += in.g.Duration(TaskID(v))
		}
	}
	return rem
}
