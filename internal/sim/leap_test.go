package sim_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/profile"
	"krad/internal/sched"
	"krad/internal/sim"
)

// randomLeapSpecs builds a workload that exercises the event-leap: mostly
// profile jobs (leapable) with phases big enough to hold deprived DEQ
// regimes, a sprinkling of DAG jobs (leapable whenever their frontier
// level is deep enough — level stability), and staggered releases.
func randomLeapSpecs(rng *rand.Rand, k, jobs int) []sim.JobSpec {
	specs := make([]sim.JobSpec, 0, jobs)
	for j := 0; j < jobs; j++ {
		release := rng.Int63n(40)
		if rng.Intn(4) == 0 {
			// Dense-layered barrier DAG: wide levels behind single join
			// tasks, the shape whose drains the DAG leap accelerates.
			g := denseLayeredGraph(k, 8+rng.Intn(33), 1+rng.Intn(3), rng.Intn(k))
			specs = append(specs, sim.JobSpec{Graph: g, Release: release})
			continue
		}
		if rng.Intn(5) == 0 {
			// DAG job: small sparse layered graph.
			g := dag.New(k)
			var prev []dag.TaskID
			for l := 0; l < 1+rng.Intn(3); l++ {
				var cur []dag.TaskID
				for a := 1; a <= k; a++ {
					cur = append(cur, g.AddTasks(dag.Category(a), 1+rng.Intn(4))...)
				}
				for _, u := range prev {
					g.MustEdge(u, cur[rng.Intn(len(cur))])
				}
				prev = cur
			}
			specs = append(specs, sim.JobSpec{Graph: g, Release: release})
			continue
		}
		phases := make([]profile.Phase, 1+rng.Intn(3))
		for p := range phases {
			tasks := make([]int, k)
			total := 0
			for a := range tasks {
				tasks[a] = rng.Intn(400)
				total += tasks[a]
			}
			if total == 0 {
				tasks[rng.Intn(k)] = 1 + rng.Intn(400)
			}
			phases[p] = profile.Phase{Tasks: tasks}
		}
		specs = append(specs, sim.JobSpec{
			Source:  profile.MustNew(k, "p", phases),
			Release: release,
		})
	}
	return specs
}

// denseLayeredGraph builds a barrier-style layered K-DAG: levels of width
// same-category tasks, each level funneling through a single join task
// before the next opens. rot rotates the category assignment.
func denseLayeredGraph(k, width, levels, rot int) *dag.Graph {
	g := dag.New(k)
	var join dag.TaskID
	haveJoin := false
	for l := 0; l < levels; l++ {
		wide := g.AddTasks(dag.Category(1+(l+rot)%k), width)
		if haveJoin {
			for _, v := range wide {
				g.MustEdge(join, v)
			}
		}
		join = g.AddTasks(dag.Category(1+(l+rot+1)%k), 1)[0]
		for _, u := range wide {
			g.MustEdge(u, join)
		}
		haveJoin = true
	}
	return g
}

// admitAll builds an engine with the given config and admits the specs in
// release order (Run's ID assignment).
func admitAll(t *testing.T, cfg sim.Config, specs []sim.JobSpec) *sim.Engine {
	t.Helper()
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ordered := append([]sim.JobSpec(nil), specs...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].Release < ordered[j-1].Release; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	if _, err := eng.AdmitBatch(ordered); err != nil {
		t.Fatal(err)
	}
	return eng
}

// advanceTo drives the engine until its clock reaches target (or it goes
// idle), never executing a step past target: each StepN budget is capped
// by the remaining distance, so leaps cannot overshoot the sync point.
func advanceTo(eng *sim.Engine, target int64) error {
	for eng.Now() < target {
		n := target - eng.Now()
		info, err := eng.StepN(n)
		if err != nil {
			return err
		}
		if info.Idle {
			return nil
		}
	}
	return nil
}

// drain steps the engine to completion with huge budgets.
func drain(eng *sim.Engine) error {
	for eng.Remaining() > 0 {
		if _, err := eng.StepN(1 << 40); err != nil {
			return err
		}
	}
	return nil
}

// TestQuickLeapEquivalence is the event-leap soundness property: leap-on
// and leap-off (NoLeap) engines produce bit-identical results — virtual
// time, per-job completions, per-step trace rows, executed totals — on
// random profile/DAG mixes with staggered releases and cancels landing at
// arbitrary points, including mid-stable-regime.
func TestQuickLeapEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		caps := make([]int, k)
		for i := range caps {
			caps[i] = 1 + rng.Intn(64)
		}
		specs := randomLeapSpecs(rng, k, 2+rng.Intn(10))
		mkCfg := func(noLeap bool) sim.Config {
			return sim.Config{
				K: k, Caps: caps, Scheduler: core.NewKRAD(k),
				Pick: dag.PickFIFO, Trace: sim.TraceSteps,
				ValidateAllotments: true, NoLeap: noLeap,
			}
		}
		on := admitAll(t, mkCfg(false), specs)
		off := admitAll(t, mkCfg(true), specs)

		// Cancel up to two jobs at random times; both engines are at the
		// same clock when each cancel lands, so outcomes must match.
		for c := 0; c < rng.Intn(3); c++ {
			at := rng.Int63n(60)
			id := rng.Intn(len(specs))
			if err := advanceTo(on, at); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if err := advanceTo(off, at); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if on.Now() != off.Now() {
				t.Logf("seed %d: clocks diverged before cancel: %d vs %d", seed, on.Now(), off.Now())
				return false
			}
			errOn := on.Cancel(id)
			errOff := off.Cancel(id)
			if (errOn == nil) != (errOff == nil) {
				t.Logf("seed %d: cancel(%d) diverged: %v vs %v", seed, id, errOn, errOff)
				return false
			}
		}
		if err := drain(on); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := drain(off); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ron, roff := on.Result(), off.Result()
		if !reflect.DeepEqual(ron, roff) {
			t.Logf("seed %d: results diverged:\n on=%+v\noff=%+v", seed, ron, roff)
			return false
		}
		son, soff := on.Snapshot(), off.Snapshot()
		if !reflect.DeepEqual(son.ExecutedTotal, soff.ExecutedTotal) || son.Now != soff.Now {
			t.Logf("seed %d: snapshots diverged", seed)
			return false
		}
		// The whole point: leaps actually fired on the leap-on engine for
		// at least some seeds — assert it when the off engine did real work
		// and there were no DAG jobs (softly: just record the counter).
		_ = son.LeapSteps
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickDAGLeapEquivalence is the DAG half of the soundness property:
// pure-DAG populations (dense barrier layers plus sparse graphs, no
// profile jobs) under every pick policy must be bit-identical between
// leap-on and leap-off engines. LIFO and random picks never leap (their
// per-step order is not reproducible in aggregate) — for those the test
// degenerates to checking the engine correctly refuses, which the
// DAGFrontier/zero-leap accounting below distinguishes from "leapt wrong".
func TestQuickDAGLeapEquivalence(t *testing.T) {
	picks := []dag.PickPolicy{dag.PickFIFO, dag.PickLIFO, dag.PickRandom, dag.PickCPFirst, dag.PickCPLast}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		caps := make([]int, k)
		for i := range caps {
			caps[i] = 1 + rng.Intn(16)
		}
		pick := picks[rng.Intn(len(picks))]
		jobs := 1 + rng.Intn(5)
		specs := make([]sim.JobSpec, 0, jobs)
		for j := 0; j < jobs; j++ {
			g := denseLayeredGraph(k, 8+rng.Intn(57), 1+rng.Intn(4), rng.Intn(k))
			specs = append(specs, sim.JobSpec{Graph: g, Release: rng.Int63n(20)})
		}
		mkCfg := func(noLeap bool) sim.Config {
			return sim.Config{
				K: k, Caps: caps, Scheduler: core.NewKRAD(k),
				Pick: pick, Seed: seed, Trace: sim.TraceSteps,
				ValidateAllotments: true, NoLeap: noLeap,
			}
		}
		on := admitAll(t, mkCfg(false), specs)
		off := admitAll(t, mkCfg(true), specs)
		// Drive the leap-on engine in random chunks so leaps start and
		// stop at arbitrary clock offsets, then drain both.
		for c := 0; c < 3 && on.Remaining() > 0; c++ {
			if _, err := on.StepN(1 + rng.Int63n(9)); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		if err := drain(on); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := drain(off); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(on.Result(), off.Result()) {
			t.Logf("seed %d (pick %v): results diverged", seed, pick)
			return false
		}
		son, soff := on.Snapshot(), off.Snapshot()
		if son.Now != soff.Now || !reflect.DeepEqual(son.ExecutedTotal, soff.ExecutedTotal) {
			t.Logf("seed %d (pick %v): snapshots diverged", seed, pick)
			return false
		}
		switch pick {
		case dag.PickLIFO, dag.PickRandom:
			if son.LeapSteps != 0 {
				t.Logf("seed %d: %v pick leapt %d steps; must never leap", seed, pick, son.LeapSteps)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDAGLeapActuallyFires guards the DAG fast path the way
// TestLeapActuallyFires guards the profile one: wide barrier levels over
// small caps must drain via leaps, and the blocked-reason counters must
// show frontier stalls (the join boundaries) rather than anything
// misconfigured.
func TestDAGLeapActuallyFires(t *testing.T) {
	const k = 2
	var specs []sim.JobSpec
	for j := 0; j < 4; j++ {
		specs = append(specs, sim.JobSpec{Graph: denseLayeredGraph(k, 512, 3, j%k)})
	}
	// One short-lived pairwise-join job: a wide ready level (scheduler
	// horizon positive) funneling into indeg-2 joins (level-stability
	// bound 0), so some early rounds block on dag-frontier specifically.
	pg := dag.New(k)
	wide := pg.AddTasks(1, 32)
	for i := 0; i < len(wide); i += 2 {
		join := pg.AddTasks(2, 1)[0]
		pg.MustEdge(wide[i], join)
		pg.MustEdge(wide[i+1], join)
	}
	specs = append(specs, sim.JobSpec{Graph: pg})
	eng := admitAll(t, sim.Config{
		K: k, Caps: []int{8, 8}, Scheduler: core.NewKRAD(k),
		Pick: dag.PickFIFO, ValidateAllotments: true,
	}, specs)
	if err := drain(eng); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if snap.LeapSteps == 0 {
		t.Fatal("no event-leaps fired on a dense-layered DAG workload")
	}
	if ratio := float64(snap.LeapSteps) / float64(snap.Now); ratio < 0.8 {
		t.Fatalf("leaps covered only %.1f%% of %d steps; want ≥ 80%%", ratio*100, snap.Now)
	}
	b := snap.LeapBlocked
	if b.DAGFrontier == 0 {
		t.Error("no dag-frontier blocks recorded; join boundaries should stall leaps")
	}
	if b.NoLeap != 0 || b.Speed != 0 || b.Observer != 0 || b.Trace != 0 || b.Floors != 0 || b.Runtime != 0 {
		t.Errorf("unexpected blocked reasons on a clean DAG workload: %+v", b)
	}
}

// TestQuickLeapChunkInvariance checks StepN(a);StepN(b) ≡ StepN(a+b): an
// engine driven by random small budgets matches one driven by one huge
// budget, state and trace alike. Journal replay (internal/journal) depends
// on this — replay rarely re-issues the original chunking.
func TestQuickLeapChunkInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		caps := make([]int, k)
		for i := range caps {
			caps[i] = 1 + rng.Intn(48)
		}
		specs := randomLeapSpecs(rng, k, 2+rng.Intn(8))
		mkCfg := func() sim.Config {
			return sim.Config{
				K: k, Caps: caps, Scheduler: core.NewKRAD(k),
				Pick: dag.PickFIFO, Trace: sim.TraceSteps,
				ValidateAllotments: true,
			}
		}
		big := admitAll(t, mkCfg(), specs)
		chunked := admitAll(t, mkCfg(), specs)
		if err := drain(big); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for chunked.Remaining() > 0 {
			if _, err := chunked.StepN(1 + rng.Int63n(7)); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		if !reflect.DeepEqual(big.Result(), chunked.Result()) {
			t.Logf("seed %d: chunked results diverged", seed)
			return false
		}
		sb, sc := big.Snapshot(), chunked.Snapshot()
		return sb.Now == sc.Now && reflect.DeepEqual(sb.ExecutedTotal, sc.ExecutedTotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestLeapActuallyFires guards the optimization itself: on a pure profile
// workload in a deprived DEQ regime (with a rotating remainder — the
// common case), the engine must cover most steps via leaps, not just be
// correct. This keeps the fast path from silently rotting into "always
// fall back to single-stepping".
func TestLeapActuallyFires(t *testing.T) {
	const k = 2
	phases := []profile.Phase{{Tasks: []int{50_000, 30_000}}, {Tasks: []int{40_000, 60_000}}}
	var specs []sim.JobSpec
	for j := 0; j < 7; j++ { // 7 jobs, caps not divisible: remainder rotates
		specs = append(specs, sim.JobSpec{Source: profile.MustNew(k, "p", phases)})
	}
	eng := admitAll(t, sim.Config{
		K: k, Caps: []int{16, 9}, Scheduler: core.NewKRAD(k),
		Pick: dag.PickFIFO, ValidateAllotments: true,
	}, specs)
	if err := drain(eng); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if snap.LeapSteps == 0 {
		t.Fatal("no event-leaps fired on an all-profile deprived workload")
	}
	if ratio := float64(snap.LeapSteps) / float64(snap.Now); ratio < 0.9 {
		t.Fatalf("leaps covered only %.1f%% of %d steps; want ≥ 90%%", ratio*100, snap.Now)
	}
}

var _ sched.Stable = (*sched.PerCategory)(nil)
