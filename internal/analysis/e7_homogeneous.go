package analysis

import (
	"krad/internal/baselines"
	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sched"
	"krad/internal/sim"
	"krad/internal/workload"
)

// RunE7 reproduces the K = 1 corollary of Section 7: RAD is
// (3 − 2/(n+1))-competitive for mean response time on homogeneous
// processors — better than the 2 + √3 ≈ 3.73 bound Edmonds et al. proved
// for EQUI. The experiment runs batched homogeneous workloads under RAD,
// EQUI and RR-only and reports each scheduler's measured MRT ratio against
// the same lower bound. Expected shape: RAD's worst measured ratio stays
// below 3; EQUI and RR trail RAD on at least some workloads.
func RunE7(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Homogeneous (K=1) mean response time: RAD vs EQUI vs RR (Section 7)",
		Header: []string{"workload", "P", "jobs", "scheduler", "mean resp", "ratio", "RAD bound 3-2/(n+1)"},
	}
	reps := 4
	if opts.Quick {
		reps = 2
	}
	type cfg struct {
		name   string
		p      int
		n      int
		shapes []workload.Shape
	}
	sweep := []cfg{
		{"mixed light", 8, 6, nil},
		{"mixed heavy", 4, 60, nil},
		{"chains heavy", 2, 40, []workload.Shape{workload.ShapeChain}},
		{"wide light", 16, 8, []workload.Shape{workload.ShapeForkJoin, workload.ShapeMapReduce}},
	}
	mk := map[string]func() sched.Scheduler{
		"rad":     func() sched.Scheduler { return core.NewKRAD(1) },
		"equi":    func() sched.Scheduler { return baselines.NewEQUI(1) },
		"rr-only": func() sched.Scheduler { return baselines.NewRROnly(1) },
	}
	order := []string{"rad", "equi", "rr-only"}
	for _, c := range sweep {
		bound := metrics.ResponseCompetitiveLimitLight(1, c.n) // 3 − 2/(n+1)
		for _, name := range order {
			worstRatio := -1.0
			var worst *sim.Result
			for rep := 0; rep < reps; rep++ {
				specs, err := workload.Mix{
					K: 1, Jobs: c.n, Shapes: c.shapes, MinSize: 4, MaxSize: 50,
					Seed: opts.seed() + int64(rep)*17,
				}.Generate()
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(sim.Config{
					K: 1, Caps: []int{c.p}, Scheduler: mk[name](),
					Pick: dag.PickFIFO, ValidateAllotments: true,
				}, specs)
				if err != nil {
					return nil, err
				}
				lb := metrics.ResponseLowerBound(res)
				ratio := float64(res.TotalResponse()) / lb
				if ratio > worstRatio {
					worstRatio = ratio
					worst = res
				}
			}
			t.AddRow(c.name, c.p, c.n, name,
				worst.MeanResponse(), worstRatio, bound)
			if name == "rad" && worstRatio > bound {
				t.AddNote("FAIL: RAD ratio %.3f exceeds the 3−2/(n+1) bound %.3f on %s", worstRatio, bound, c.name)
			}
		}
	}
	t.AddNote("worst of %d seeded repetitions; the 3−2/(n+1) bound applies to RAD (the paper's result) — EQUI's proven bound is 2+√3 ≈ 3.73, RR's is 2 for batched sets", reps)
	return t, nil
}
