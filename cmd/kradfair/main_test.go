package main

import (
	"bufio"
	"reflect"
	"strings"
	"testing"
)

// TestRunSmoke is the convergence contract at test scale: a short 2:1 run
// must produce a well-formed CSV and pass the -check assertions (admitted
// ratio within 5% of 2:1, idle usage below 1% of peak).
func TestRunSmoke(t *testing.T) {
	var out strings.Builder
	err := run(options{
		tenants:  2,
		weights:  []float64{2, 1},
		rounds:   120,
		slots:    16,
		steps:    16,
		halfLife: 32,
		idleFrom: 60,
		check:    true,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	sc := bufio.NewScanner(strings.NewReader(out.String()))
	if !sc.Scan() || sc.Text() != "round,step,tenant,share,in_flight,usage,admitted,shed" {
		t.Fatalf("bad CSV header: %q", sc.Text())
	}
	rows := 0
	for sc.Scan() {
		if fields := strings.Split(sc.Text(), ","); len(fields) != 8 {
			t.Fatalf("row %d: %d fields: %q", rows, len(fields), sc.Text())
		}
		rows++
	}
	// 120 rounds × 3 leaves (t0, t1, default).
	if rows != 120*3 {
		t.Fatalf("got %d data rows, want %d", rows, 120*3)
	}
}

// TestRunDeterministic pins the no-wall-clock property: two identical runs
// produce byte-identical CSVs.
func TestRunDeterministic(t *testing.T) {
	csv := func() string {
		var out strings.Builder
		err := run(options{
			tenants:  3,
			weights:  []float64{4, 2, 1},
			rounds:   40,
			slots:    12,
			steps:    8,
			halfLife: 16,
			idleFrom: 20,
		}, &out)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	if a, b := csv(), csv(); a != b {
		t.Fatal("two identical runs produced different CSVs")
	}
}

func TestParseWeights(t *testing.T) {
	cases := []struct {
		in      string
		n       int
		want    []float64
		wantErr bool
	}{
		{"2,1", 2, []float64{2, 1}, false},
		{"2", 3, []float64{2, 1, 1}, false},
		{"", 2, []float64{1, 1}, false},
		{" 4 , 2 ", 2, []float64{4, 2}, false},
		{"1,2,3", 2, nil, true},
		{"0", 1, nil, true},
		{"-1", 1, nil, true},
		{"x", 1, nil, true},
	}
	for _, c := range cases {
		got, err := parseWeights(c.in, c.n)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseWeights(%q, %d): want error, got %v", c.in, c.n, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseWeights(%q, %d): %v", c.in, c.n, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseWeights(%q, %d) = %v, want %v", c.in, c.n, got, c.want)
		}
	}
}
