package sim

import (
	"krad/internal/dag"
)

// JobSource describes a job's static shape and mints runtime instances for
// a run. Two implementations ship with the library: K-DAG jobs (JobSpec's
// Graph field, wrapping internal/dag) and compact parallelism-profile jobs
// (internal/profile) for very large simulations.
type JobSource interface {
	// Name labels the job in traces and errors.
	Name() string
	// K returns the number of resource categories the job was built for.
	K() int
	// WorkVector returns T1(Ji, α) per category (indexed α−1).
	WorkVector() []int
	// Span returns T∞(Ji).
	Span() int
	// TotalTasks returns the total unit-task count (Σ WorkVector).
	TotalTasks() int
	// NewRuntime creates a fresh runtime instance. pick applies to
	// representations where ready tasks are distinguishable; seed feeds
	// randomized pickers.
	NewRuntime(pick dag.PickPolicy, seed int64) RuntimeJob
}

// RuntimeJob is the engine's view of one executing job: report desires,
// execute allotted tasks, advance at step boundaries.
type RuntimeJob interface {
	// Desire returns d(Ji, α, t), the count of ready α-tasks.
	Desire(c dag.Category) int
	// Execute runs up to n ready α-tasks during the current step and
	// returns how many ran. Completions take effect at Advance.
	Execute(c dag.Category, n int) int
	// Advance ends the time step, releasing successors of completed tasks.
	Advance()
	// Done reports whether all tasks have executed.
	Done() bool
	// RemainingWork returns unexecuted task counts per category (used by
	// the clairvoyant oracle only).
	RemainingWork() []int
}

// WorkAppender is an optional JobSource extension for allocation-free
// admission: sources that can write their work vector into a
// caller-provided buffer let the engine recycle a retired job's slice
// instead of allocating through WorkVector. AppendWork appends T1(Ji, α)
// per category (indexed α−1) to dst and returns the extended slice.
type WorkAppender interface {
	JobSource
	// AppendWork appends the job's work vector to dst.
	AppendWork(dst []int) []int
}

// RuntimeReuser is an optional JobSource extension for allocation-free
// admission: sources that can reset a previously-minted runtime in place
// let the engine recycle a retired job's runtime allocation. ReuseRuntime
// reports false when rt is not a matching runtime of this source's shape;
// the engine then falls back to NewRuntime.
type RuntimeReuser interface {
	JobSource
	// ReuseRuntime resets rt for a fresh run of this job if possible.
	ReuseRuntime(rt RuntimeJob, pick dag.PickPolicy, seed int64) (RuntimeJob, bool)
}

// TaskRuntime is implemented by runtimes that can report which concrete
// tasks ran — required for TraceTasks-level recording (Gantt charts and
// schedule re-validation).
type TaskRuntime interface {
	RuntimeJob
	// ExecuteTasks is Execute returning the executed task IDs.
	ExecuteTasks(c dag.Category, n int) []dag.TaskID
}

// LeapRuntime is implemented by runtimes whose state after several
// consecutive steps is computable from the aggregate tasks executed — the
// job-side half of the engine's event-leap (the scheduler-side half is
// sched.Stable). Profile-backed jobs always qualify: mid-phase, executing
// tasks over n steps just subtracts the totals from the phase's remaining
// counts. DAG-backed runtimes qualify conditionally — their ready sets
// evolve only at promoting step boundaries — so they additionally
// implement StableRuntime to report when the next promotion can be.
type LeapRuntime interface {
	RuntimeJob
	// LeapTasks applies the aggregate of several consecutive steps that
	// together executed total[α−1] α-tasks (with the usual Advance at
	// every step boundary), leaving the runtime in the state those single
	// steps would have produced. The engine guarantees total[α−1] > 0
	// only where Desire(α) > 0, and Desire(α) > total[α−1] — no phase
	// boundary or completion is crossed mid-leap, so the intermediate
	// Advance calls would have been state-preserving.
	LeapTasks(total []int)
}

// StableRuntime is implemented by LeapRuntimes whose leap eligibility is
// state-dependent and must be re-established every round. The engine
// consults StableFor after the scheduler reports a stable horizon and
// takes the minimum across jobs; runtimes that do not implement the
// interface (profiles) are covered by the scheduler's horizon alone, which
// already keeps them mid-phase.
type StableRuntime interface {
	LeapRuntime
	// StableFor reports how many additional steps after the current one
	// the runtime stays leapable when at most perStep[α−1] α-tasks execute
	// per covered step. 0 disables leaping this round. perStep is
	// engine-owned and reused; implementations must not retain it.
	StableFor(perStep []int) int64
}

// FloorRuntime is implemented by non-preemptive runtimes whose in-flight
// multi-step tasks pin processors: Floor reports how many α-processors
// the job must keep this step. The engine forwards floors to the
// scheduler through sched.JobView; pair such jobs with a floor-respecting
// scheduler (sched.WithFloors).
type FloorRuntime interface {
	RuntimeJob
	Floor(c dag.Category) int
}

// graphSource adapts a *dag.Graph to JobSource.
type graphSource struct {
	g *dag.Graph
}

// GraphSource wraps a K-DAG as a JobSource. JobSpec.Graph does this
// implicitly; the explicit form exists for mixed-source job sets.
func GraphSource(g *dag.Graph) JobSource { return graphSource{g} }

func (s graphSource) Name() string          { return s.g.Name() }
func (s graphSource) K() int                { return s.g.K() }
func (s graphSource) WorkVector() []int     { return s.g.WorkVector() }
func (s graphSource) Span() int             { return s.g.Span() }
func (s graphSource) TotalTasks() int       { return s.g.NumTasks() }
func (s graphSource) Family() RuntimeFamily { return FamilyDAG }

func (s graphSource) NewRuntime(pick dag.PickPolicy, seed int64) RuntimeJob {
	return &graphRuntime{inst: dag.NewInstance(s.g, pick, seed)}
}

// graphRuntime adapts *dag.Instance to TaskRuntime.
type graphRuntime struct {
	inst *dag.Instance
}

func (r *graphRuntime) Desire(c dag.Category) int { return r.inst.Desire(c) }
func (r *graphRuntime) Execute(c dag.Category, n int) int {
	return r.inst.ExecuteCount(c, n)
}
func (r *graphRuntime) ExecuteTasks(c dag.Category, n int) []dag.TaskID {
	return r.inst.Execute(c, n)
}
func (r *graphRuntime) Advance()             { r.inst.Advance() }
func (r *graphRuntime) Done() bool           { return r.inst.Done() }
func (r *graphRuntime) RemainingWork() []int { return r.inst.RemainingWork() }
func (r *graphRuntime) RemainingSpan() int   { return r.inst.RemainingSpan() }

// LeapTasks implements LeapRuntime: each category's window total drains in
// one ExecuteLeap call, then the single deferred Advance consumes the
// completed tasks' out-edges. The engine only leaps a DAG runtime inside
// the promotion-free window StableFor vouched for, so that Advance
// promotes nothing and the state matches per-step execution exactly.
func (r *graphRuntime) LeapTasks(total []int) {
	for a, n := range total {
		if n > 0 {
			r.inst.ExecuteLeap(dag.Category(a+1), n)
		}
	}
	r.inst.Advance()
}

// StableFor implements StableRuntime via the instance's frontier-level
// lookahead.
func (r *graphRuntime) StableFor(perStep []int) int64 { return r.inst.StableFor(perStep) }

var (
	_ JobSource     = graphSource{}
	_ FamilySource  = graphSource{}
	_ TaskRuntime   = (*graphRuntime)(nil)
	_ StableRuntime = (*graphRuntime)(nil)
)

// timedSource adapts a duration-annotated *dag.Graph to JobSource with
// non-preemptive semantics (dag.TimedInstance). Work and span are
// duration-weighted, so the metrics package's lower bounds remain valid.
type timedSource struct {
	g *dag.Graph
}

// TimedGraphSource wraps a K-DAG with task durations for non-preemptive
// execution. TraceTasks recording is unsupported (a multi-step task has no
// single execution step); use aggregate tracing.
func TimedGraphSource(g *dag.Graph) JobSource { return timedSource{g} }

func (s timedSource) Name() string          { return s.g.Name() + "-timed" }
func (s timedSource) K() int                { return s.g.K() }
func (s timedSource) WorkVector() []int     { return s.g.TimedWorkVector() }
func (s timedSource) Span() int             { return s.g.TimedSpan() }
func (s timedSource) Family() RuntimeFamily { return FamilyTimed }

// TotalTasks returns duration-weighted total work (processor-steps), which
// is what the engine's runaway guard and throughput accounting need.
func (s timedSource) TotalTasks() int {
	n := 0
	for _, w := range s.g.TimedWorkVector() {
		n += w
	}
	return n
}

func (s timedSource) NewRuntime(pick dag.PickPolicy, seed int64) RuntimeJob {
	return &timedRuntime{inst: dag.NewTimedInstance(s.g, pick, seed)}
}

// timedRuntime adapts *dag.TimedInstance to FloorRuntime.
type timedRuntime struct {
	inst *dag.TimedInstance
}

func (r *timedRuntime) Desire(c dag.Category) int         { return r.inst.Desire(c) }
func (r *timedRuntime) Floor(c dag.Category) int          { return r.inst.Floor(c) }
func (r *timedRuntime) Execute(c dag.Category, n int) int { return r.inst.Execute(c, n) }
func (r *timedRuntime) Advance()                          { r.inst.Advance() }
func (r *timedRuntime) Done() bool                        { return r.inst.Done() }
func (r *timedRuntime) RemainingWork() []int              { return r.inst.RemainingWork() }

var (
	_ JobSource    = timedSource{}
	_ FamilySource = timedSource{}
	_ FloorRuntime = (*timedRuntime)(nil)
)
