package analysis

import (
	"fmt"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sim"
	"krad/internal/workload"
)

// RunE11 exercises the paper's Section 8 challenge — combining functional
// and performance heterogeneity — in the uniform-per-category form
// supported by dag.Stretch: each category α carries a relative cost (an
// α-task occupies an α-processor for cost_α steps, modelled as a chain of
// cost_α unit tasks). Because the transform yields ordinary K-DAGs, the
// Theorem 3 and Theorem 6 guarantees must continue to hold verbatim on
// the stretched instances — which is exactly what the table verifies, for
// cost vectors modelling fast vector units and slow I/O processors.
func RunE11(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "Extension: performance + functional heterogeneity (Section 8 challenge)",
		Header: []string{"costs", "K", "caps", "jobs", "makespan", "ratio", "Thm3 bound", "MRT ratio", "Thm6 bound"},
	}
	reps := 3
	jobs := 40
	if opts.Quick {
		reps, jobs = 2, 20
	}
	const k = 3
	caps := []int{4, 4, 4}
	costVectors := [][]int{
		{1, 1, 1}, // homogeneous speeds (control row)
		{2, 1, 4}, // CPUs 2×, vector units 1×, I/O 4× cost
		{1, 3, 3},
		{4, 2, 1},
	}
	for _, costs := range costVectors {
		worstMs, worstMRT := 0.0, 0.0
		var worst *sim.Result
		for rep := 0; rep < reps; rep++ {
			specs, err := workload.Mix{
				K: k, Jobs: jobs, MinSize: 4, MaxSize: 40,
				Seed: opts.seed() + int64(rep)*53,
			}.Generate()
			if err != nil {
				return nil, err
			}
			for i := range specs {
				specs[i].Graph, err = dag.Stretch(specs[i].Graph, costs)
				if err != nil {
					return nil, err
				}
			}
			res, err := sim.Run(sim.Config{
				K: k, Caps: caps, Scheduler: core.NewKRAD(k),
				Pick: dag.PickFIFO, ValidateAllotments: true,
			}, specs)
			if err != nil {
				return nil, err
			}
			if bc := CheckTheorem3(res); bc.Measured > worstMs {
				worstMs = bc.Measured
				worst = res
			}
			if bc := CheckTheorem6(res); bc.Measured > worstMRT {
				worstMRT = bc.Measured
			}
		}
		b3 := metrics.MakespanCompetitiveLimit(k, caps)
		b6 := metrics.ResponseCompetitiveLimit(k, jobs)
		t.AddRow(fmt.Sprint(costs), k, fmt.Sprint(caps), jobs, worst.Makespan, worstMs, b3, worstMRT, b6)
		if worstMs > b3 {
			t.AddNote("FAIL: costs %v makespan ratio %.3f exceeds %.3f", costs, worstMs, b3)
		}
		if worstMRT > b6 {
			t.AddNote("FAIL: costs %v MRT ratio %.3f exceeds %.3f", costs, worstMRT, b6)
		}
	}
	t.AddNote("per-category costs are realized by dag.Stretch (an α-task becomes a chain of cost_α unit tasks), so the stretched instances are ordinary K-DAGs and the paper's bounds must keep holding — the table verifies they do")
	t.AddNote("worst of %d seeded repetitions per row", reps)
	return t, nil
}
