package analysis

import (
	"fmt"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sim"
	"krad/internal/workload"
)

// RunE10 measures reproduction-infrastructure throughput: simulated tasks
// per second as the job count grows, serial versus parallel execution
// phase. It is a performance report, not a theorem check — the one
// correctness assertion is that parallel runs produce identical makespans.
func RunE10(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Simulator throughput scaling",
		Header: []string{"jobs", "tasks", "K", "mode", "makespan", "wall", "tasks/sec"},
	}
	sizes := []int{100, 400, 1600}
	if opts.Quick {
		sizes = []int{50, 200}
	}
	const k = 3
	caps := []int{8, 8, 8}
	for _, n := range sizes {
		specs, err := workload.Mix{
			K: k, Jobs: n, MinSize: 10, MaxSize: 60, Seed: opts.seed(),
		}.Generate()
		if err != nil {
			return nil, err
		}
		tasks := 0
		for _, s := range specs {
			tasks += s.Graph.NumTasks()
		}
		var serialMakespan int64
		for _, mode := range []string{"serial", "parallel"} {
			cfg := sim.Config{
				K: k, Caps: caps, Scheduler: core.NewKRAD(k), Pick: dag.PickFIFO,
				Parallel: mode == "parallel", Workers: 8,
			}
			start := time.Now()
			res, err := sim.Run(cfg, specs)
			if err != nil {
				return nil, err
			}
			wall := time.Since(start)
			rate := float64(tasks) / wall.Seconds()
			t.AddRow(n, tasks, k, mode, res.Makespan,
				wall.Round(time.Microsecond).String(), fmt.Sprintf("%.0f", rate))
			if mode == "serial" {
				serialMakespan = res.Makespan
			} else if res.Makespan != serialMakespan {
				t.AddNote("FAIL: parallel makespan %d != serial %d at n=%d", res.Makespan, serialMakespan, n)
			}
		}
	}
	t.AddNote("expected shape: throughput in the millions of tasks/sec; parallel mode pays off only on very wide steps (scheduling is sequential either way)")
	return t, nil
}
