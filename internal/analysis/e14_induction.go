package analysis

import (
	"fmt"

	"krad/internal/core"
	"krad/internal/profile"
	"krad/internal/sim"
	"krad/internal/workload"
)

// RunE14 replays the Theorem 5 proof mechanics: at every step of a
// light-workload batched run it re-evaluates the induction's per-step
// Inequality (8), Δr ≤ c·Σα Δswa(α) + ΔT∞, on the live job state.
//
// Three replays per configuration:
//
//   - dag / profile rows use the library's integral DEQ (whole processors).
//     Here sub-unit deficits can occur: the paper's Lemma 4 application
//     assumes all deprived jobs receive exactly the same "mean deprived
//     allotment", which integral processors cannot always realize. The
//     observed deficits stay below one processor-step — a rounding gap of
//     the processor-sharing idealization, not an algorithm bug — and the
//     end-to-end Theorem 5 bound (E5) holds regardless.
//   - fluid rows replay the same workloads with real-valued shares, the
//     model the proof actually argues in. There the inequality must hold
//     at every step (and is frequently tight) — which is what the table
//     verifies.
func RunE14(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E14",
		Title:  "Theorem 5 proof-mechanics replay: per-step Inequality (8)",
		Header: []string{"replay", "K", "caps", "jobs", "steps checked", "violations", "max deficit", "min slack"},
	}
	reps := 4
	if opts.Quick {
		reps = 2
	}
	type cfg struct {
		k    int
		caps []int
		n    int
	}
	sweep := []cfg{
		{1, []int{8}, 6},
		{2, []int{8, 8}, 8},
		{3, []int{6, 6, 6}, 6},
		{4, []int{8, 8, 8, 8}, 8},
	}
	for _, c := range sweep {
		for _, repr := range []string{"dag (integral)", "profile (integral)", "profile (fluid)"} {
			totalSteps, totalViol := 0, 0
			minSlack, maxDeficit := 1e18, 0.0
			for rep := 0; rep < reps; rep++ {
				seed := opts.seed() + int64(rep)*41
				var report *InductionReport
				var err error
				switch repr {
				case "dag (integral)":
					specs, gerr := workload.Mix{
						K: c.k, Jobs: c.n, MinSize: 4, MaxSize: 40, Seed: seed,
					}.Generate()
					if gerr != nil {
						return nil, gerr
					}
					var sources []sim.JobSource
					for _, s := range specs {
						sources = append(sources, sim.GraphSource(s.Graph))
					}
					report, err = CheckInequality8(c.k, c.caps, sources, core.NewKRAD(c.k))
				case "profile (integral)":
					specs, gerr := profile.Generate(profile.GenOpts{
						K: c.k, Jobs: c.n, MinPhases: 1, MaxPhases: 6,
						MaxParallelism: 10, Seed: seed,
					})
					if gerr != nil {
						return nil, gerr
					}
					var sources []sim.JobSource
					for _, s := range specs {
						sources = append(sources, s.Source)
					}
					report, err = CheckInequality8(c.k, c.caps, sources, core.NewKRAD(c.k))
				case "profile (fluid)":
					specs, gerr := profile.Generate(profile.GenOpts{
						K: c.k, Jobs: c.n, MinPhases: 1, MaxPhases: 6,
						MaxParallelism: 10, Seed: seed,
					})
					if gerr != nil {
						return nil, gerr
					}
					jobs := make([]*profile.Job, len(specs))
					for i, s := range specs {
						jobs[i] = s.Source.(*profile.Job)
					}
					report, err = CheckInequality8Fluid(c.k, c.caps, jobs)
				}
				if err != nil {
					return nil, err
				}
				totalSteps += report.Steps
				totalViol += report.Violations
				if report.MinSlack < minSlack {
					minSlack = report.MinSlack
				}
				if report.MaxDeficit > maxDeficit {
					maxDeficit = report.MaxDeficit
				}
			}
			t.AddRow(repr, c.k, fmt.Sprint(c.caps), c.n, totalSteps, totalViol, maxDeficit, minSlack)
			if repr == "profile (fluid)" && totalViol > 0 {
				t.AddNote("FAIL: fluid replay violated Inequality (8) — the proof's own model broke (K=%d n=%d)", c.k, c.n)
			}
			if repr != "profile (fluid)" && maxDeficit >= 1 {
				t.AddNote("FAIL: integral replay deficit %.3f ≥ 1 processor-step (K=%d n=%d) — beyond the rounding gap", maxDeficit, c.k, c.n)
			}
		}
	}
	t.AddNote("light-load batched runs (n ≤ min Pα) over %d seeds per row; min slack is the tightest margin RHS−LHS observed", reps)
	t.AddNote("reproduction finding: with integral processors the per-step inequality can dip below zero by < 1 — the paper's 'mean deprived allotment' is exactly equal only under real-valued (fluid) shares, where the replay confirms the inequality holds and is often tight")
	return t, nil
}
