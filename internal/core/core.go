package core
