package server

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sched"
	"krad/internal/sim"
)

func testConfig(k int, caps ...int) Config {
	return Config{
		Sim: sim.Config{
			K: k, Caps: caps, Scheduler: core.NewKRAD(k),
			Pick: dag.PickFIFO, ValidateAllotments: true,
		},
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSubmitBackpressure(t *testing.T) {
	cfg := testConfig(1, 2)
	cfg.MaxInFlight = 4
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Not started: nothing drains, so the admission bound fills up.
	for i := 0; i < 4; i++ {
		if _, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("5th submit: %v, want ErrQueueFull", err)
	}
	st := svc.Stats()
	if st.Rejected != 1 || st.Submitted != 4 || st.InFlight != 4 {
		t.Errorf("stats %+v", st)
	}
}

func TestServiceRunsJobsAndDrains(t *testing.T) {
	svc, err := New(testConfig(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	const n = 10
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		id, err := svc.Submit(sim.JobSpec{Graph: dag.ForkJoin(2, 4, 1, 2, 1)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	waitFor(t, "completions", func() bool { return svc.Stats().Completed == n })

	for _, id := range ids {
		st, ok := svc.Job(id)
		if !ok || st.Phase != sim.JobDone {
			t.Fatalf("job %d: %+v", id, st)
		}
		if st.Response() != st.Completion-st.Release || st.Response() < int64(st.Span) {
			t.Errorf("job %d inconsistent response: %+v", id, st)
		}
	}
	stats := svc.Stats()
	if stats.Response.N != n || stats.Response.Min < 1 {
		t.Errorf("response summary %+v", stats.Response)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(2, 1)}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v", err)
	}
}

func TestCloseDrainsInFlightJobs(t *testing.T) {
	svc, err := New(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	id, err := svc.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 50, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	st, _ := svc.Job(id)
	if st.Phase != sim.JobDone {
		t.Errorf("in-flight job not drained before shutdown: %+v", st)
	}
}

func TestCancelPendingJob(t *testing.T) {
	// The loop is deliberately not started: a free-running engine
	// fast-forwards idle gaps, so a future-release job would execute
	// immediately. With the clock frozen, the pending phase is stable.
	svc, err := New(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1), Release: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st, _ := svc.Job(id)
	if st.Phase != sim.JobCancelled {
		t.Errorf("job %d phase %v", id, st.Phase)
	}
	if got := svc.Stats().Cancelled; got != 1 {
		t.Errorf("cancelled count %d", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("close of never-started service: %v", err)
	}
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSlowSubscriberDropsEvents(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.SubscriberBuffer = 1
	cfg.StepBatch = 1 // per-step events: the 50-step job must overflow the buffer
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ch, unsub := svc.Subscribe()
	defer unsub()
	_ = ch // never read: every event past the first must be dropped, not block

	if _, err := svc.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 50, 1)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drain", func() bool { return svc.Stats().Completed == 1 })
	if got := svc.Stats().EventsDropped; got == 0 {
		t.Error("no events dropped despite unread subscriber")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Shutdown closes the subscription channel.
	waitFor(t, "subscriber close", func() bool {
		select {
		case _, open := <-ch:
			return !open
		default:
			return false
		}
	})
}

func TestServiceSurvivesBrokenScheduler(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.Sim.MaxSteps = 8 // trip the runaway guard quickly
	cfg.Sim.Scheduler = idleScheduler{}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	if _, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "step error", func() bool { return svc.Err() != nil })
	if !strings.Contains(svc.Err().Error(), "exceeded") {
		t.Errorf("unexpected step error: %v", svc.Err())
	}
	// The service still answers queries and shuts down cleanly.
	if st := svc.Stats(); st.Submitted != 1 {
		t.Errorf("stats after failure: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("close after step error: %v", err)
	}
}

// idleScheduler never allots anything — used to trip the runaway guard.
type idleScheduler struct{}

func (idleScheduler) Name() string { return "idle" }
func (idleScheduler) Allot(t int64, jobs []sched.JobView, caps []int) [][]int {
	out := make([][]int, len(jobs))
	for i := range out {
		out[i] = make([]int, len(caps))
	}
	return out
}

func TestHistogram(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 3, 100} {
		h.observe(v)
	}
	if h.count != 4 || h.sum != 104.5 {
		t.Errorf("count=%d sum=%g", h.count, h.sum)
	}
	if got := h.quantile(0.5); got != 1 {
		t.Errorf("p50 bucket %g, want 1", got)
	}
	if got := h.quantile(1); !math.IsInf(got, 1) {
		t.Errorf("p100 bucket %g, want +Inf", got)
	}
	empty := newHistogram(responseBuckets())
	if empty.quantile(0.9) != 0 {
		t.Error("empty histogram quantile not 0")
	}
}
