// Heteroserver: an online multiprogrammed server with three functional
// resource categories — CPUs, vector units, and I/O processors — receiving
// a Poisson stream of mixed jobs (the workload the paper's introduction
// motivates: interleaved computation, communication and I/O phases, with
// special-purpose processors). Compares K-RAD against the baselines on the
// same arrival trace and prints per-scheduler response-time statistics.
//
//	go run ./examples/heteroserver [-jobs 200] [-load 2.5]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"krad"
)

func main() {
	log.SetFlags(0)
	jobsFlag := flag.Int("jobs", 200, "number of arriving jobs")
	loadFlag := flag.Float64("load", 2.0, "mean interarrival gap (smaller = heavier load)")
	seedFlag := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	// The machine: 8 CPUs, 4 vector units, 2 I/O processors.
	const K = 3
	caps := []int{8, 4, 2}

	// The job mix: CPU-heavy overall (weights 4:2:1), drawn from all
	// shapes, arriving as a Poisson process.
	mix := krad.Mix{
		K: K, Jobs: *jobsFlag, MinSize: 6, MaxSize: 80,
		CatWeights: []float64{4, 2, 1},
		Seed:       *seedFlag,
	}
	specs, err := mix.GenerateOnline(krad.Poisson(*loadFlag))
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, s := range specs {
		total += s.Graph.NumTasks()
	}
	fmt.Printf("machine: %d CPUs, %d vector units, %d I/O processors\n", caps[0], caps[1], caps[2])
	fmt.Printf("workload: %d jobs, %d tasks, Poisson arrivals (mean gap %.1f)\n\n", len(specs), total, *loadFlag)

	type row struct {
		name                string
		makespan            int64
		mean, p50, p95, max float64
		util                []float64
	}
	var rows []row
	for _, name := range []string{"k-rad", "deq-only", "rr-only", "equi", "fcfs"} {
		s := scheduler(name, K)
		res, err := krad.Run(krad.Config{
			K: K, Caps: caps, Scheduler: s, Pick: krad.PickFIFO, ValidateAllotments: true,
		}, specs)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		resp := make([]float64, len(res.Jobs))
		for i, j := range res.Jobs {
			resp[i] = float64(j.Response())
		}
		sort.Float64s(resp)
		rows = append(rows, row{
			name:     name,
			makespan: res.Makespan,
			mean:     res.MeanResponse(),
			p50:      resp[len(resp)/2],
			p95:      resp[len(resp)*95/100],
			max:      resp[len(resp)-1],
			util:     res.Utilization(),
		})
	}

	fmt.Printf("%-10s  %8s  %10s  %8s  %8s  %8s  %s\n",
		"scheduler", "makespan", "mean resp", "p50", "p95", "max", "utilization cpu/vec/io")
	for _, r := range rows {
		fmt.Printf("%-10s  %8d  %10.1f  %8.0f  %8.0f  %8.0f  %.0f%%/%.0f%%/%.0f%%\n",
			r.name, r.makespan, r.mean, r.p50, r.p95, r.max,
			100*r.util[0], 100*r.util[1], 100*r.util[2])
	}
	fmt.Println("\nReading the table: K-RAD and EQUI post the best makespans (space")
	fmt.Println("sharing keeps processors busy). Run-to-completion policies (fcfs,")
	fmt.Println("deq-only) can show lower mean response on benign traces like this —")
	fmt.Println("but they carry no worst-case guarantee: long jobs arriving early can")
	fmt.Println("starve everything behind them (see experiment E9). K-RAD's round-")
	fmt.Println("robin cycles bound every job's delay while staying provably within")
	fmt.Println("K+1−1/Pmax of the optimal makespan on every input.")
}

func scheduler(name string, k int) krad.Scheduler {
	switch name {
	case "k-rad":
		return krad.NewKRAD(k)
	case "deq-only":
		return krad.NewDEQOnly(k)
	case "rr-only":
		return krad.NewRROnly(k)
	case "equi":
		return krad.NewEQUI(k)
	case "fcfs":
		return krad.NewFCFS(k)
	}
	log.Fatalf("unknown scheduler %q", name)
	return nil
}
