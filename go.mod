module krad

go 1.22
