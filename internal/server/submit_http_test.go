package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"krad/internal/dag"
	"krad/internal/profile"
)

func postRaw(t *testing.T, url, path string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeError(t *testing.T, resp *http.Response) string {
	t.Helper()
	var out struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Error
}

// TestRigidSubmitHTTP drives the rigid wire form end to end: submit,
// drain, status with the profile family tag and the derived work vector.
func TestRigidSubmitHTTP(t *testing.T) {
	cfg := testConfig(2, 4, 4)
	_, ts := startHTTP(t, cfg)

	resp := postRaw(t, ts.URL, "/v1/jobs", []byte(`{"rigid":{"k":2,"name":"r","cat":1,"procs":2,"steps":3}}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("rigid submit status %d: %s", resp.StatusCode, decodeError(t, resp))
	}
	var created struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	var job jobJSON
	for job.State != "done" {
		r2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, created.ID))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r2.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
	}
	if job.Family != "profile" || job.Work[0] != 6 || job.Work[1] != 0 || job.Span != 3 {
		t.Fatalf("rigid job status: %+v", job)
	}

	// Malformed rigid specs come back as located 400s.
	resp = postRaw(t, ts.URL, "/v1/jobs", []byte(`{"rigid":{"k":2,"cat":5,"procs":2,"steps":3}}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-category rigid status %d", resp.StatusCode)
	}
	// Multiple payloads in one body are rejected, whatever the pair.
	resp = postRaw(t, ts.URL, "/v1/jobs", []byte(`{"rigid":{"k":2,"cat":1,"procs":1,"steps":1},"mold":{"k":2,"name":"m","cat":1,"curve":[4]}}`))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(decodeError(t, resp), "2 of graph/mold/rigid") {
		t.Fatalf("rigid+mold submit: status %d", resp.StatusCode)
	}
}

// TestSubmitBodyBounds pins the streaming-admission contract: a body
// whose declared Content-Length exceeds the bound is refused with 413
// before any of it is buffered, and a chunked body (no declared length)
// is cut off at the same bound mid-read.
func TestSubmitBodyBounds(t *testing.T) {
	cfg := testConfig(1, 2)
	_, ts := startHTTPClock(t, cfg, false)

	// Declared oversize: tiny actual body, huge Content-Length. The
	// server must trust the header and reject without reading.
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = maxSubmitBody + 1
	// The default transport would send the declared length and stall
	// waiting to write it; body bytes don't matter because the server
	// answers off the header. Expect either a clean 413 or a transport
	// error from the early close — but never a 2xx.
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("declared-oversize status %d, want 413", resp.StatusCode)
		}
		if !strings.Contains(decodeError(t, resp), "exceeds") {
			t.Fatal("413 without a located error")
		}
	}

	// Chunked oversize: stream past the bound with no Content-Length.
	pr, pw := io.Pipe()
	go func() {
		junk := bytes.Repeat([]byte("x"), 1<<20)
		for i := 0; i < 10; i++ { // 10 MiB > 8 MiB bound
			if _, err := pw.Write(junk); err != nil {
				break
			}
		}
		pw.Close()
	}()
	req2, err := http.NewRequest("POST", ts.URL+"/v1/jobs", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req2)
	if err == nil {
		defer resp2.Body.Close()
		if resp2.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("chunked-oversize status %d, want 413", resp2.StatusCode)
		}
	}
}

// TestPooledScratchIsolation attacks the json.Unmarshal merge hazard:
// decoded request structs are pooled, and json.Unmarshal merges into
// whatever the struct already holds. A payload-free body after a graph
// submission, and a short batch after a long one, must see zeroed
// scratch — stale pointers surviving the pool would turn these 400s into
// silent admissions of a previous client's job.
func TestPooledScratchIsolation(t *testing.T) {
	cfg := testConfig(1, 2)
	cfg.MaxInFlight = 1024
	_, ts := startHTTPClock(t, cfg, false)

	for round := 0; round < 3; round++ {
		g, _ := json.Marshal(submitRequest{Graph: dag.Singleton(1, 1)})
		if resp := postRaw(t, ts.URL, "/v1/jobs", g); resp.StatusCode != http.StatusCreated {
			t.Fatalf("round %d: graph submit status %d", round, resp.StatusCode)
		}
		// Same pooled struct, no payload: must be "job has no graph",
		// not a resubmission of the graph above.
		resp := postRaw(t, ts.URL, "/v1/jobs", []byte(`{"release":7}`))
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(decodeError(t, resp), "no graph") {
			t.Fatalf("round %d: stale graph leaked through the pool (status %d)", round, resp.StatusCode)
		}

		long := batchRequest{Jobs: make([]submitRequest, 5)}
		for i := range long.Jobs {
			long.Jobs[i] = submitRequest{Graph: dag.Singleton(1, 1)}
		}
		lb, _ := json.Marshal(long)
		if resp := postRaw(t, ts.URL, "/v1/jobs/batch", lb); resp.StatusCode != http.StatusCreated {
			t.Fatalf("round %d: long batch status %d", round, resp.StatusCode)
		}
		// A shorter batch reuses the same backing array; its tail slots
		// must not resurrect jobs from the longer batch.
		resp = postRaw(t, ts.URL, "/v1/jobs/batch", []byte(`{"jobs":[{"rigid":{"k":1,"cat":1,"procs":1,"steps":1}},{}]}`))
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(decodeError(t, resp), "batch job 1") {
			t.Fatalf("round %d: stale batch slot leaked through the pool (status %d)", round, resp.StatusCode)
		}
	}
}

// TestSubmitAllocsPinned pins the pooled submit path's per-request
// allocation budget. The engine side is pinned at zero (recycled slots)
// by the sim tests; here the whole HTTP handler — body buffering, JSON
// decode, spec build, admission, response — must stay a small fixed
// constant per request, independent of how many jobs came before.
func TestSubmitAllocsPinned(t *testing.T) {
	cfg := testConfig(2, 4, 4)
	cfg.RetireDone = true
	cfg.MaxInFlight = 1 << 20
	svc, err := New(cfg) // never started: no step-loop goroutine polluting the count
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	h := svc.Handler()
	body := []byte(`{"rigid":{"k":2,"cat":1,"procs":2,"steps":3}}`)
	rec := httptest.NewRecorder()
	submit := func() {
		req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec.Body.Reset()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			t.Fatalf("submit status %d: %s", rec.Code, rec.Body)
		}
	}
	// Warm the scratch pool and amortize jobs-table growth.
	for i := 0; i < 600; i++ {
		submit()
	}
	avg := testing.AllocsPerRun(400, submit)
	// ~30 allocs in practice: request/recorder scaffolding, MaxBytesReader,
	// json internals, the decoded rigid job, admission slice, response map.
	// The bound is headroom over that constant, far below anything that
	// scales with accumulated jobs.
	if avg > 60 {
		t.Fatalf("submit path allocates %.1f/op, want a small constant (≤60)", avg)
	}
}

// TestSubmitAllocsPinnedBatch does the same for the batch path: per-job
// marginal cost must stay constant (pooled specs slice, pooled request
// slots), so a 64-job batch stays within 64× the single-job constant.
func TestSubmitAllocsPinnedBatch(t *testing.T) {
	cfg := testConfig(2, 4, 4)
	cfg.RetireDone = true
	cfg.MaxInFlight = 1 << 20
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	h := svc.Handler()
	var batch batchRequest
	for i := 0; i < 64; i++ {
		batch.Jobs = append(batch.Jobs, submitRequest{Rigid: profile.RigidSpec{K: 2, Cat: 2, Procs: 1, Steps: 2}})
	}
	body, _ := json.Marshal(batch)
	rec := httptest.NewRecorder()
	submit := func() {
		req := httptest.NewRequest("POST", "/v1/jobs/batch", bytes.NewReader(body))
		rec.Body.Reset()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
		}
	}
	for i := 0; i < 300; i++ {
		submit()
	}
	avg := testing.AllocsPerRun(200, submit)
	if avg > 500 { // ~7 allocs/job marginal + fixed handler constant
		t.Fatalf("batch path allocates %.1f/op for 64 jobs, want ≤500", avg)
	}
}
