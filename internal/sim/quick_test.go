package sim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"krad/internal/baselines"
	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sched"
	"krad/internal/sim"
	"krad/internal/workload"
)

// TestQuickEverySchedulerProducesValidSchedules is the central safety
// property of the whole system: for random workloads, random machines and
// every scheduler, the engine's recorded schedule satisfies the Section 2
// validity conditions, re-checked independently from the trace.
func TestQuickEverySchedulerProducesValidSchedules(t *testing.T) {
	factories := []func(k int) sched.Scheduler{
		func(k int) sched.Scheduler { return core.NewKRAD(k) },
		func(k int) sched.Scheduler { return baselines.NewDEQOnly(k) },
		func(k int) sched.Scheduler { return baselines.NewRROnly(k) },
		func(k int) sched.Scheduler { return baselines.NewEQUI(k) },
		func(k int) sched.Scheduler { return baselines.NewFCFS(k) },
		func(k int) sched.Scheduler { return baselines.NewGreedyDesire(k) },
		func(k int) sched.Scheduler { return baselines.NewLAPS(k, 0.5) },
		func(k int) sched.Scheduler { return baselines.NewGang(3) },
		func(k int) sched.Scheduler { return sched.NewQuantized(core.NewKRAD(k), 4) },
	}
	f := func(seed int64, schedRaw, pickRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		caps := make([]int, k)
		for i := range caps {
			caps[i] = 1 + rng.Intn(5)
		}
		mix := workload.Mix{
			K: k, Jobs: 1 + rng.Intn(12), MinSize: 1, MaxSize: 25,
			Seed: seed,
		}
		var specs []sim.JobSpec
		var err error
		if rng.Intn(2) == 0 {
			ws, gerr := mix.Generate()
			specs, err = ws, gerr
		} else {
			ws, gerr := mix.GenerateOnline(workload.Uniform(0, 6))
			specs, err = ws, gerr
		}
		if err != nil {
			return false
		}
		pick := dag.PickPolicy(int(pickRaw) % 5)
		res, err := sim.Run(sim.Config{
			K: k, Caps: caps,
			Scheduler:          factories[int(schedRaw)%len(factories)](k),
			Pick:               pick,
			Seed:               seed,
			Trace:              sim.TraceTasks,
			ValidateAllotments: true,
		}, specs)
		if err != nil {
			t.Logf("seed %d: run: %v", seed, err)
			return false
		}
		if err := sim.ValidateSchedule(specs, res); err != nil {
			t.Logf("seed %d: validate: %v", seed, err)
			return false
		}
		// Responses non-negative; makespan = max completion.
		var maxC int64
		for _, j := range res.Jobs {
			if j.Response() <= 0 {
				return false
			}
			if j.Completion > maxC {
				maxC = j.Completion
			}
		}
		return maxC == res.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickKRADBoundsOnRandomInstances re-checks the paper's makespan
// bound machinery end to end on random batched sets: makespan is at least
// the Section 4 lower bound and at most Lemma 2's upper bound.
func TestQuickKRADBoundsOnRandomInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		caps := make([]int, k)
		pmax := 1
		for i := range caps {
			caps[i] = 1 + rng.Intn(6)
			if caps[i] > pmax {
				pmax = caps[i]
			}
		}
		specs, err := workload.Mix{
			K: k, Jobs: 1 + rng.Intn(20), MinSize: 1, MaxSize: 40, Seed: seed,
		}.Generate()
		if err != nil {
			return false
		}
		res, err := sim.Run(sim.Config{
			K: k, Caps: caps, Scheduler: core.NewKRAD(k), ValidateAllotments: true,
		}, specs)
		if err != nil {
			return false
		}
		// Lower bound: max(span, per-category work/P).
		var lb int64
		for _, j := range res.Jobs {
			if int64(j.Span) > lb {
				lb = int64(j.Span)
			}
		}
		for a, w := range res.TotalWork() {
			if v := int64((w + caps[a] - 1) / caps[a]); v > lb {
				lb = v
			}
		}
		if res.Makespan < lb {
			return false
		}
		// Lemma 2 upper bound.
		var sum float64
		for a, w := range res.TotalWork() {
			sum += float64(w) / float64(caps[a])
		}
		var maxSpan int64
		for _, j := range res.Jobs {
			if int64(j.Span) > maxSpan {
				maxSpan = int64(j.Span)
			}
		}
		ub := sum + (1-1/float64(pmax))*float64(maxSpan)
		return float64(res.Makespan) <= ub+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
