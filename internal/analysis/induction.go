package analysis

import (
	"fmt"

	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sched"
	"krad/internal/sim"
)

// SpanRuntime is a job runtime that can report the span of its unexecuted
// portion — what the Theorem 5 induction calls T∞ of the t-suffix. Both
// shipped runtimes (DAG instances and profile jobs) implement it.
type SpanRuntime interface {
	sim.RuntimeJob
	RemainingSpan() int
}

// InductionReport is the outcome of replaying the Theorem 5 proof step by
// step (CheckInequality8).
type InductionReport struct {
	// Steps is the number of time steps checked.
	Steps int
	// Violations counts steps where Inequality (8) failed.
	Violations int
	// FirstViolation is the earliest failing step (0 if none).
	FirstViolation int64
	// MinSlack is the smallest observed value of RHS − LHS — how close the
	// proof's per-step inequality came to tight (negative iff violations).
	MinSlack float64
	// MaxDeficit is the largest LHS − RHS over violating steps. Integral
	// allotments can produce sub-unit deficits where the real-valued
	// analysis is tight (see CheckInequality8Fluid); deficits ≥ 1 would
	// indicate a genuine bug.
	MaxDeficit float64
}

// CheckInequality8 replays a batched job set under a scheduler and checks,
// at every time step, the per-step inequality at the heart of the
// Theorem 5 induction (Section 7):
//
//	Δr ≤ c·Σα Δswa(α) + ΔT∞          with c = 2 − 2/(n+1),
//
// where n is the number of uncompleted jobs at the step, Δr = n (each
// uncompleted job accrues one step of response time), Δswa(α) is the drop
// in squashed α-work area of the remaining job set, and ΔT∞ the drop in
// aggregate remaining span. The paper proves the inequality for DEQ under
// light workload; replaying it validates the proof mechanics on concrete
// executions rather than only the theorem's end-to-end consequence.
//
// sources must be batched (released at 0). The caller chooses caps so the
// run stays in the light-load regime if the proof's premise is wanted.
func CheckInequality8(k int, caps []int, sources []sim.JobSource, scheduler sched.Scheduler) (*InductionReport, error) {
	if len(caps) != k {
		return nil, fmt.Errorf("analysis: %d caps for K=%d", len(caps), k)
	}
	type jobRT struct {
		id int
		rt SpanRuntime
	}
	jobs := make([]jobRT, len(sources))
	totalWork := 0
	for i, src := range sources {
		rt, ok := src.NewRuntime(dag.PickFIFO, int64(i)).(SpanRuntime)
		if !ok {
			return nil, fmt.Errorf("analysis: job %d runtime does not report remaining span", i)
		}
		jobs[i] = jobRT{id: i, rt: rt}
		totalWork += src.TotalTasks()
	}

	// suffixState snapshots Σ remaining spans and per-category swa.
	snapshot := func(live []jobRT) (swa []float64, aggSpan int) {
		swa = make([]float64, k)
		works := make([][]int, k)
		for a := range works {
			works[a] = make([]int, 0, len(live))
		}
		for _, j := range live {
			rw := j.rt.RemainingWork()
			for a := 0; a < k; a++ {
				works[a] = append(works[a], rw[a])
			}
			aggSpan += j.rt.RemainingSpan()
		}
		for a := 0; a < k; a++ {
			swa[a] = metrics.SquashedWorkArea(works[a], caps[a])
		}
		return swa, aggSpan
	}

	report := &InductionReport{MinSlack: 1e18}
	live := jobs
	maxSteps := 4*totalWork + 64
	for t := int64(1); len(live) > 0; t++ {
		if int(t) > maxSteps {
			return nil, fmt.Errorf("analysis: induction replay exceeded %d steps", maxSteps)
		}
		n := len(live)
		preSwa, preSpan := snapshot(live)

		views := make([]sched.JobView, n)
		for i, j := range live {
			d := make([]int, k)
			for a := 0; a < k; a++ {
				d[a] = j.rt.Desire(dag.Category(a + 1))
			}
			views[i] = sched.JobView{ID: j.id, Desire: d}
		}
		allot := scheduler.Allot(t, views, caps)
		if err := sched.ValidateAllotments(views, caps, allot); err != nil {
			return nil, fmt.Errorf("analysis: step %d: %w", t, err)
		}
		for i, j := range live {
			for a := 0; a < k; a++ {
				if allot[i][a] > 0 {
					j.rt.Execute(dag.Category(a+1), allot[i][a])
				}
			}
		}
		var doneIDs []int
		next := live[:0:len(live)]
		for _, j := range live {
			j.rt.Advance()
			if j.rt.Done() {
				doneIDs = append(doneIDs, j.id)
			} else {
				next = append(next, j)
			}
		}
		if len(doneIDs) > 0 {
			if c, ok := scheduler.(sched.Completer); ok {
				c.JobsDone(doneIDs)
			}
		}
		postSwa, postSpan := snapshot(next)

		c := 2 - 2/float64(n+1)
		rhs := float64(preSpan - postSpan)
		for a := 0; a < k; a++ {
			rhs += c * (preSwa[a] - postSwa[a])
		}
		lhs := float64(n) // Δr
		report.Steps++
		if slack := rhs - lhs; slack < report.MinSlack {
			report.MinSlack = slack
		}
		if lhs > rhs+1e-9 {
			report.Violations++
			if deficit := lhs - rhs; deficit > report.MaxDeficit {
				report.MaxDeficit = deficit
			}
			if report.FirstViolation == 0 {
				report.FirstViolation = t
			}
		}
		live = next
	}
	return report, nil
}
