package replicate

import (
	"net"
	"sync"
	"syscall"
)

// FaultConn wraps a net.Conn and kills it after a write-byte budget — the
// test double for a link dying mid-frame. The write that would cross the
// budget sends only the bytes that fit (a torn frame on the wire, exactly
// what a dying TCP connection leaves behind) and then closes the
// connection, so both peers observe the failure.
type FaultConn struct {
	net.Conn
	// Budget is the number of bytes allowed through Write; < 0 means
	// unlimited.
	Budget int64

	mu      sync.Mutex
	written int64
	cut     bool
}

// Write implements net.Conn with the injected cut.
func (c *FaultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, syscall.ECONNRESET
	}
	if c.Budget < 0 || c.written+int64(len(p)) <= c.Budget {
		c.written += int64(len(p))
		c.mu.Unlock()
		return c.Conn.Write(p)
	}
	fit := c.Budget - c.written
	if fit < 0 {
		fit = 0
	}
	c.cut = true
	c.written += fit
	c.mu.Unlock()
	n, _ := c.Conn.Write(p[:fit])
	_ = c.Conn.Close()
	return n, syscall.ECONNRESET
}

// FaultDialer wraps dial so the n-th connection attempt (0-based) gets a
// write budget from budget; a negative budget leaves that connection
// intact. Tests use it to cut the stream mid-frame at chosen offsets and
// watch the sender reconnect and resume.
func FaultDialer(dial func(addr string) (net.Conn, error), budget func(attempt int) int64) func(addr string) (net.Conn, error) {
	var mu sync.Mutex
	attempt := 0
	return func(addr string) (net.Conn, error) {
		mu.Lock()
		n := attempt
		attempt++
		mu.Unlock()
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		b := budget(n)
		if b < 0 {
			return conn, nil
		}
		return &FaultConn{Conn: conn, Budget: b}, nil
	}
}
