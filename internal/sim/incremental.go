package sim

import (
	"fmt"
	"sort"
	"sync"

	"krad/internal/dag"
	"krad/internal/sched"
)

// JobPhase is a job's position in the admit → release → complete lifecycle.
type JobPhase int

const (
	// JobPending means admitted but not yet released (release time ahead
	// of the clock).
	JobPending JobPhase = iota
	// JobActive means released and executing.
	JobActive
	// JobDone means every task has executed.
	JobDone
	// JobCancelled means the job was withdrawn before completing; its
	// processors were freed at the following step.
	JobCancelled
	// JobStolen means the job was withdrawn while still pending and
	// re-admitted on another engine (cross-shard work stealing). Terminal
	// for THIS engine; the job's lifecycle continues under a new ID on the
	// engine it migrated to.
	JobStolen
)

// String returns the lowercase phase name used in status reports.
func (p JobPhase) String() string {
	switch p {
	case JobPending:
		return "pending"
	case JobActive:
		return "active"
	case JobDone:
		return "done"
	case JobCancelled:
		return "cancelled"
	case JobStolen:
		return "stolen"
	default:
		return fmt.Sprintf("JobPhase(%d)", int(p))
	}
}

// JobStatus is the externally visible state of one admitted job.
type JobStatus struct {
	ID      int
	Release int64
	Phase   JobPhase
	// Family is the job's runtime family (FamilyUnknown for sources that
	// do not declare one).
	Family RuntimeFamily
	// Completion is the step the job finished at (0 while unfinished).
	Completion int64
	// CancelledAt is the clock value when Cancel was called (0 otherwise).
	CancelledAt int64
	// Work[α−1] is T1(Ji, α); Span is T∞(Ji).
	Work []int
	Span int
}

// Response returns completion − release for finished jobs and 0 otherwise.
func (s JobStatus) Response() int64 {
	if s.Phase != JobDone {
		return 0
	}
	return s.Completion - s.Release
}

// StepInfo reports what one Engine.Step or Engine.StepN call did.
type StepInfo struct {
	// Step is the clock after the call (the last step executed, or the
	// unchanged clock when Idle).
	Step int64
	// Idle is true when the engine had nothing to do: no active jobs and
	// no pending releases. The clock does not advance on idle calls.
	Idle bool
	// Steps is the number of unit steps executed by the call: 1 for a
	// non-idle Step, up to n for StepN(n), 0 when Idle.
	Steps int64
	// LeapSteps counts how many of Steps were covered by event-leaps —
	// executed by repeating a provably stable allotment instead of a fresh
	// scheduling round. 0 when leaping was never possible.
	LeapSteps int64
	// Executed[α−1] counts the α-tasks executed during the call (summed
	// over Steps). The slice is an engine-owned buffer reused by the next
	// Step/StepN call — copy it before publishing it anywhere that
	// outlives the next call. Nil when Idle.
	Executed []int
	// Released lists job IDs that became active during the call. Like
	// Executed, the slice is an engine-owned buffer reused by the next
	// call — copy before retaining.
	Released []int
	// Completed lists job IDs that finished during the call. Like
	// Executed, the slice is an engine-owned buffer reused by the next
	// call — copy before retaining.
	Completed []int
	// Active is the number of jobs still running after the call.
	Active int
}

// EngineSnapshot is a point-in-time summary of an Engine.
type EngineSnapshot struct {
	Now  int64
	K    int
	Caps []int
	// Admitted = Pending + Active + Completed + Cancelled + Stolen.
	Admitted  int
	Pending   int
	Active    int
	Completed int
	Cancelled int
	// Stolen counts jobs withdrawn while pending and migrated to another
	// engine (cross-shard work stealing). 0 on engines that never donated.
	Stolen int
	// Makespan is the latest completion step seen so far.
	Makespan int64
	// ExecutedTotal[α−1] is the cumulative α-tasks executed.
	ExecutedTotal []int64
	// LeapSteps is the cumulative number of steps executed via event-leap
	// without a fresh scheduling round (Σ over leaps of leap length − 1).
	// Observational only; not carried across checkpoints.
	LeapSteps int64
	// LeapBlocked counts the scheduling rounds that had a multi-step
	// budget but could not leap, by blocking reason. Observational only;
	// not carried across checkpoints.
	LeapBlocked LeapBlocked
}

// LeapBlocked counts scheduling rounds where a multi-step budget remained
// but no event-leap was taken, by reason — the operator-facing answer to
// "why isn't this deployment leaping". Rounds merely bounded by an
// imminent release or the runaway guard are not counted: nothing is
// misconfigured there. Fields are cumulative counts.
type LeapBlocked struct {
	NoLeap      int64 // Config.NoLeap set
	Speed       int64 // Config.Speed > 1: micro-rounds need per-step boundaries
	Observer    int64 // Config.Observer must see every scheduling round
	Trace       int64 // TraceTasks needs per-step task identities
	Floors      int64 // a hold-incapable runtime (timed) pinned floor processors this round
	Hold        int64 // a hold-capable runtime was not held, or its held window ends too soon
	Runtime     int64 // an active job's runtime lacks LeapRuntime
	Scheduler   int64 // scheduler lacks sched.Stable or reported horizon 0
	Overload    int64 // horizon 0 while a category had more active jobs than processors
	DAGFrontier int64 // a DAG instance's frontier level could promote (StableFor 0)
}

// Each calls fn for every reason with its metric label and count, in a
// fixed order, so exporters enumerate without reflection.
func (b LeapBlocked) Each(fn func(reason string, n int64)) {
	fn("noleap", b.NoLeap)
	fn("speed", b.Speed)
	fn("observer", b.Observer)
	fn("trace", b.Trace)
	fn("floors", b.Floors)
	fn("hold", b.Hold)
	fn("runtime", b.Runtime)
	fn("scheduler", b.Scheduler)
	fn("overload", b.Overload)
	fn("dag-frontier", b.DAGFrontier)
}

// Add folds o's counts into b — exporters use it to aggregate across
// engine shards.
func (b *LeapBlocked) Add(o LeapBlocked) {
	b.NoLeap += o.NoLeap
	b.Speed += o.Speed
	b.Observer += o.Observer
	b.Trace += o.Trace
	b.Floors += o.Floors
	b.Hold += o.Hold
	b.Runtime += o.Runtime
	b.Scheduler += o.Scheduler
	b.Overload += o.Overload
	b.DAGFrontier += o.DAGFrontier
}

// Utilization returns, per category, the fraction of processor-steps spent
// executing tasks up to Now: ExecutedTotal[α] / (Pα · Now).
func (s EngineSnapshot) Utilization() []float64 {
	u := make([]float64, s.K)
	if s.Now == 0 {
		return u
	}
	for a, w := range s.ExecutedTotal {
		u[a] = float64(w) / (float64(s.Caps[a]) * float64(s.Now))
	}
	return u
}

// jobState is the engine's bookkeeping for one job.
type jobState struct {
	id      int
	release int64
	rt      RuntimeJob
	// caps caches the runtime's optional capabilities (bound once at
	// admission; see family.go) so hot paths never type-switch.
	caps        runtimeCaps
	family      RuntimeFamily
	work        []int
	span        int
	tasks       int // src.TotalTasks(), cached for the work gauges
	phase       JobPhase
	completed   int64 // 0 while running (completion steps are ≥ 1)
	cancelledAt int64
	// spec is the original admission spec, retained only while the job is
	// pending so Withdraw can hand it to another engine; cleared on
	// release, cancellation and withdrawal so active jobs pin nothing.
	spec JobSpec
}

// Engine is the incremental form of the simulator: the same machine Run
// drives, but with jobs admitted (and cancelled) while the clock runs.
// An Engine is NOT goroutine-safe — callers that share one across
// goroutines must serialize access (internal/server does).
type Engine struct {
	cfg Config

	now  int64
	jobs []*jobState // all admitted jobs, indexed by ID; nil once retired
	// pending holds admitted, not-yet-released jobs sorted by (release,
	// ID); the live window is pending[pendOff:]. Releases advance pendOff
	// instead of re-slicing so the backing array's capacity is recovered
	// when the queue drains — a steady submit→release cycle reallocates
	// nothing.
	pending    []*jobState
	pendOff    int
	active     []*jobState // released, unfinished; ascending ID
	free       []*jobState // retired jobStates recycled by the next Admit
	remaining  int         // admitted − completed − cancelled − stolen
	completedN int
	cancelledN int
	stolenN    int // jobs withdrawn by cross-shard work stealing

	totalWork  int64 // total admitted unit tasks (feeds the runaway bound)
	maxRelease int64

	// Work gauges (see PendingWork and EstWork): incrementally maintained
	// task counts, updated by the same mutations the counters above track
	// so reading them costs nothing.
	pendingWork int64 // Σ tasks over pending (not-yet-released) jobs
	estWork     int64 // estimated unexecuted tasks over pending + active jobs

	trace       *Trace
	makespan    int64
	overloaded  []bool
	execTotal   []int64
	leapSteps   int64       // cumulative event-leap steps (see EngineSnapshot.LeapSteps)
	leapBlocked LeapBlocked // per-reason counts of rounds that could not leap

	// Cached scheduler capability views, asserted once at construction.
	intoAllotter sched.IntoAllotter
	stable       sched.Stable

	// Reused per-round buffers. desireBuf and floorBuf are single flat
	// backing arrays sliced per job, so snapshotting desires allocates
	// nothing once they reach steady-state capacity.
	views      []sched.JobView
	desireBuf  []int
	floorBuf   []int
	allotBuf   sched.Matrix
	leapBuf    sched.Matrix // totals buffer for event-leaps
	doneIDs    []int        // completions of the current round
	stepExec   []int        // tasks executed in the current round, per category
	perStepBuf []int        // per-step allotment bound passed to StableRuntime
	heldBuf    []bool       // per-active-job: held this round (see executeRound)

	// Per-call accumulators for StepN (a call may span many rounds).
	callExec []int
	callDone []int
	callRel  []int

	// executeParallel scratch.
	parCounts [][]int
	parFlat   []int
}

// NewEngine validates the job-independent configuration and returns an
// empty engine at clock 0. Jobs arrive through Admit; time advances
// through Step.
func NewEngine(cfg Config) (*Engine, error) {
	if err := checkEngineConfig(&cfg); err != nil {
		return nil, err
	}
	cfg.Caps = append([]int(nil), cfg.Caps...)
	e := &Engine{
		cfg:        cfg,
		trace:      newTrace(cfg.Trace, cfg.K),
		overloaded: make([]bool, cfg.K),
		execTotal:  make([]int64, cfg.K),
		stepExec:   make([]int, cfg.K),
		callExec:   make([]int, cfg.K),
		perStepBuf: make([]int, cfg.K),
	}
	e.intoAllotter, _ = cfg.Scheduler.(sched.IntoAllotter)
	e.stable, _ = cfg.Scheduler.(sched.Stable)
	if cl, ok := cfg.Scheduler.(sched.Clairvoyant); ok {
		cl.SetOracle(engineOracle{e})
	}
	return e, nil
}

// Now returns the clock: the index of the last executed step (0 before the
// first step).
func (e *Engine) Now() int64 { return e.now }

// SchedulerName reports the configured scheduler's self-description.
func (e *Engine) SchedulerName() string { return e.cfg.Scheduler.Name() }

// Remaining returns the number of admitted jobs that have neither
// completed nor been cancelled.
func (e *Engine) Remaining() int { return e.remaining }

// Idle reports whether the engine has nothing to do: no active jobs and no
// pending releases.
func (e *Engine) Idle() bool { return len(e.active) == 0 && e.pendingLen() == 0 }

// pendingLen is the number of admitted, not-yet-released jobs.
func (e *Engine) pendingLen() int { return len(e.pending) - e.pendOff }

// NextID is the ID the next admission will receive. Monotonic; retirement
// never lowers it.
func (e *Engine) NextID() int { return len(e.jobs) }

// PendingWork is the total task count of admitted, not-yet-released jobs —
// the work a victim engine could donate to cross-shard stealing without
// touching any runtime state. Maintained incrementally; reading it is free.
func (e *Engine) PendingWork() int64 { return e.pendingWork }

// EstWork estimates the unexecuted tasks across pending and active jobs:
// admitted work minus drained steps, maintained incrementally so the hot
// path never scans the job table. Exact for unit-task families; for timed
// and moldable runtimes it is an estimate (duration-weighted task counts)
// that self-corrects to zero whenever the engine drains idle.
func (e *Engine) EstWork() int64 {
	if e.remaining == 0 {
		return 0
	}
	if e.estWork < e.pendingWork {
		return e.pendingWork
	}
	return e.estWork
}

// Admit adds a job to the running engine and returns its assigned ID.
// IDs are assigned in admission order, so admitting jobs in release order
// reproduces Run's ID assignment exactly. The release time must not lie in
// the past (release ≥ Now); a job released at r becomes schedulable at
// step r+1.
func (e *Engine) Admit(spec JobSpec) (int, error) {
	js, tasks, err := e.prepare(spec, len(e.jobs))
	if err != nil {
		return -1, err
	}
	e.commit(js, tasks)
	return js.id, nil
}

// AdmitBatch admits every spec under one validation pass, assigning IDs in
// slice order. It is all-or-nothing: if any spec is invalid, no job is
// admitted and the engine is unchanged. Besides atomicity, the point is
// contention: callers that serialize engine access (internal/server) pay
// one lock acquisition for the whole burst instead of one per job.
func (e *Engine) AdmitBatch(specs []JobSpec) ([]int, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	base := len(e.jobs)
	states := make([]*jobState, len(specs))
	taskCounts := make([]int, len(specs))
	for i, spec := range specs {
		js, tasks, err := e.prepare(spec, base+i)
		if err != nil {
			// All-or-nothing: return already-prepared states to the free
			// list (prepare may have popped them from it).
			for _, prev := range states[:i] {
				e.free = append(e.free, prev)
			}
			return nil, err
		}
		states[i], taskCounts[i] = js, tasks
	}
	ids := make([]int, len(specs))
	for i, js := range states {
		e.commit(js, taskCounts[i])
		ids[i] = js.id
	}
	return ids, nil
}

// prepare validates one spec against the engine's clock and configuration
// and builds its jobState without touching engine state, so a batch can
// validate every member before admitting any. Retired jobStates are
// recycled from the free list: sources implementing WorkAppender and
// RuntimeReuser make the steady-state admit→complete→retire→admit cycle
// allocation-free.
func (e *Engine) prepare(spec JobSpec, id int) (*jobState, int, error) {
	if err := checkSpec(&e.cfg, spec, id); err != nil {
		return nil, 0, err
	}
	if spec.Release < e.now {
		return nil, 0, fmt.Errorf("sim: job %d release %d is in the past (clock is at %d)", id, spec.Release, e.now)
	}
	src := spec.source()
	var js *jobState
	if n := len(e.free); n > 0 {
		js = e.free[n-1]
		e.free = e.free[:n-1]
	}
	seed := e.cfg.Seed + int64(id)
	var rt RuntimeJob
	if js != nil && js.rt != nil {
		if ru, ok := src.(RuntimeReuser); ok {
			rt, _ = ru.ReuseRuntime(js.rt, e.cfg.Pick, seed)
		}
	}
	if rt == nil {
		rt = src.NewRuntime(e.cfg.Pick, seed)
	}
	if js != nil {
		work := js.work[:0]
		if wa, ok := src.(WorkAppender); ok {
			work = wa.AppendWork(work)
		} else {
			work = append(work, src.WorkVector()...)
		}
		*js = jobState{id: id, release: spec.Release, rt: rt, work: work, span: src.Span(), phase: JobPending}
	} else {
		js = &jobState{
			id:      id,
			release: spec.Release,
			rt:      rt,
			work:    src.WorkVector(),
			span:    src.Span(),
			phase:   JobPending,
		}
	}
	js.caps = bindCaps(rt)
	js.family = FamilyOf(src)
	if e.cfg.Trace >= TraceTasks && js.caps.task == nil {
		e.free = append(e.free, js)
		return nil, 0, fmt.Errorf("sim: job %d (%s) runtime cannot report task IDs; TraceTasks requires DAG-backed jobs", id, src.Name())
	}
	js.tasks = src.TotalTasks()
	js.spec = spec
	return js, js.tasks, nil
}

// commit registers a prepared jobState with the engine.
func (e *Engine) commit(js *jobState, tasks int) {
	e.jobs = append(e.jobs, js)
	e.insertPending(js)
	e.remaining++
	e.totalWork += int64(tasks)
	e.pendingWork += int64(tasks)
	e.estWork += int64(tasks)
	if js.release > e.maxRelease {
		e.maxRelease = js.release
	}
}

// Cancel withdraws an unfinished job. A pending job simply never releases;
// an active job is removed from the schedule, so the processors it held
// are available to the scheduler from the next step on. Completed or
// already-cancelled jobs cannot be cancelled.
func (e *Engine) Cancel(id int) error {
	if id < 0 || id >= len(e.jobs) || e.jobs[id] == nil {
		return fmt.Errorf("sim: no job %d", id)
	}
	js := e.jobs[id]
	switch js.phase {
	case JobDone:
		return fmt.Errorf("sim: job %d already completed at step %d", id, js.completed)
	case JobCancelled:
		return fmt.Errorf("sim: job %d already cancelled", id)
	case JobStolen:
		return fmt.Errorf("sim: job %d was withdrawn by work stealing", id)
	case JobPending:
		live := removeJob(e.pending[e.pendOff:], js)
		e.pending = e.pending[:e.pendOff+len(live)]
		e.pendingWork -= int64(js.tasks)
		e.estWork -= int64(js.tasks)
		js.spec = JobSpec{}
	case JobActive:
		e.active = removeJob(e.active, js)
		for _, w := range js.rt.RemainingWork() {
			e.estWork -= int64(w)
		}
		if e.estWork < 0 {
			e.estWork = 0
		}
	}
	js.phase = JobCancelled
	js.cancelledAt = e.now
	e.remaining--
	e.cancelledN++
	if c, ok := e.cfg.Scheduler.(sched.Completer); ok {
		c.JobsDone([]int{id})
	}
	return nil
}

// Withdraw removes a pending (not-yet-released) job so it can be
// re-admitted on another engine — the sim half of cross-shard work
// stealing. It returns the job's original spec (with its original release)
// so the thief admits bit-identically what the victim lost. Only pending
// jobs are stealable: they carry no runtime state, so migration is exactly
// cancel-here + admit-there. The job's phase becomes JobStolen — terminal
// for this engine — and its ID is never reused.
func (e *Engine) Withdraw(id int) (JobSpec, error) {
	if id < 0 || id >= len(e.jobs) || e.jobs[id] == nil {
		return JobSpec{}, fmt.Errorf("sim: no job %d", id)
	}
	js := e.jobs[id]
	if js.phase != JobPending {
		return JobSpec{}, fmt.Errorf("sim: job %d is %s; only pending jobs can be withdrawn", id, js.phase)
	}
	live := removeJob(e.pending[e.pendOff:], js)
	e.pending = e.pending[:e.pendOff+len(live)]
	spec := js.spec
	spec.Release = js.release
	js.spec = JobSpec{}
	js.phase = JobStolen
	js.cancelledAt = e.now
	e.remaining--
	e.stolenN++
	e.pendingWork -= int64(js.tasks)
	e.estWork -= int64(js.tasks)
	if e.estWork < 0 {
		e.estWork = 0
	}
	if c, ok := e.cfg.Scheduler.(sched.Completer); ok {
		c.JobsDone([]int{id})
	}
	return spec, nil
}

// StealCandidates appends pending job IDs to buf, newest release first,
// until their cumulative task count reaches targetWork or maxJobs IDs are
// collected, and returns the extended slice. Walking the pending queue from
// the tail prefers the jobs released furthest in the future — the ones
// least likely to start before a thief can re-admit them. The caller then
// withdraws each ID; no engine state changes here.
func (e *Engine) StealCandidates(buf []int, maxJobs int, targetWork int64) []int {
	var got int64
	for i := len(e.pending) - 1; i >= e.pendOff && len(buf) < maxJobs && got < targetWork; i-- {
		js := e.pending[i]
		buf = append(buf, js.id)
		got += int64(js.tasks)
	}
	return buf
}

// Retire forgets a terminal (completed or cancelled) job, recycling its
// state for a future Admit. After Retire, Job(id) reports the job unknown
// and the ID is never reassigned — IDs stay monotonic, so admission-order
// reproducibility and journal replay are unaffected (retirement is a local
// memory optimization, not a scheduling event, and is deliberately not
// journaled). Long-running services retire jobs once their terminal status
// has been recorded elsewhere, bounding engine memory under streams of
// millions of jobs. Retired jobs are omitted from Result and Checkpoint;
// aggregate counters (Snapshot, checkpoint totals) still include them.
func (e *Engine) Retire(id int) error {
	if id < 0 || id >= len(e.jobs) || e.jobs[id] == nil {
		return fmt.Errorf("sim: no job %d", id)
	}
	js := e.jobs[id]
	if js.phase != JobDone && js.phase != JobCancelled && js.phase != JobStolen {
		return fmt.Errorf("sim: job %d is %s; only completed, cancelled or stolen jobs can be retired", id, js.phase)
	}
	e.jobs[id] = nil
	e.free = append(e.free, js)
	return nil
}

// Job returns the status of an admitted job.
func (e *Engine) Job(id int) (JobStatus, bool) {
	if id < 0 || id >= len(e.jobs) || e.jobs[id] == nil {
		return JobStatus{}, false
	}
	js := e.jobs[id]
	return JobStatus{
		ID:          js.id,
		Release:     js.release,
		Phase:       js.phase,
		Family:      js.family,
		Completion:  js.completed,
		CancelledAt: js.cancelledAt,
		Work:        append([]int(nil), js.work...),
		Span:        js.span,
	}, true
}

// JobRef is Job without the defensive work-vector copy: the returned
// status's Work aliases engine-owned memory that is recycled when the job
// is retired, so callers must copy anything they retain past the call. It
// exists for allocation-free status plumbing — a server rebuilding its
// job-status index after replay reads every job through it without a
// per-job allocation.
func (e *Engine) JobRef(id int) (JobStatus, bool) {
	if id < 0 || id >= len(e.jobs) || e.jobs[id] == nil {
		return JobStatus{}, false
	}
	js := e.jobs[id]
	return JobStatus{
		ID:          js.id,
		Release:     js.release,
		Phase:       js.phase,
		Family:      js.family,
		Completion:  js.completed,
		CancelledAt: js.cancelledAt,
		Work:        js.work,
		Span:        js.span,
	}, true
}

// Completion returns the step a job finished at (0 while unfinished)
// without copying its work vector — the allocation-free fast path for
// per-completion accounting in serving loops.
func (e *Engine) Completion(id int) (int64, bool) {
	if id < 0 || id >= len(e.jobs) || e.jobs[id] == nil {
		return 0, false
	}
	return e.jobs[id].completed, true
}

// Snapshot summarizes the engine's current state.
func (e *Engine) Snapshot() EngineSnapshot {
	return EngineSnapshot{
		Now:           e.now,
		K:             e.cfg.K,
		Caps:          append([]int(nil), e.cfg.Caps...),
		Admitted:      len(e.jobs),
		Pending:       e.pendingLen(),
		Active:        len(e.active),
		Completed:     e.completedN,
		Cancelled:     e.cancelledN,
		Stolen:        e.stolenN,
		Makespan:      e.makespan,
		ExecutedTotal: append([]int64(nil), e.execTotal...),
		LeapSteps:     e.leapSteps,
		LeapBlocked:   e.leapBlocked,
	}
}

// maxStepsBound is the runaway guard: the configured MaxSteps, or the
// automatic bound derived from the work admitted so far.
func (e *Engine) maxStepsBound() int64 {
	if e.cfg.MaxSteps != 0 {
		return e.cfg.MaxSteps
	}
	return 4*(e.totalWork+e.maxRelease) + 64
}

// Step advances the clock by one executed step: it releases due jobs
// (fast-forwarding over idle intervals, exactly like Run), asks the
// scheduler for allotments, executes them, and detects completions. When
// the engine is idle it returns StepInfo{Idle: true} without advancing the
// clock, so a live service's virtual time freezes while empty.
func (e *Engine) Step() (StepInfo, error) { return e.stepN(1) }

// StepN advances the clock by up to n executed steps under one call,
// stopping early only when the engine goes idle. It is bit-identical to
// calling Step n times and merging the results — same virtual time, job
// IDs, scheduler state, traces and totals — but exploits event-leaps
// where provably safe: when the scheduler reports a stable horizon
// (sched.Stable), every active job supports closed-form multi-step
// execution (LeapRuntime), no release is due and no observer/trace/speed
// feature needs per-step hooks, many steps are executed per scheduling
// round. Chunking is also immaterial: StepN(a) followed by StepN(b)
// leaves the engine in the same state as StepN(a+b).
func (e *Engine) StepN(n int64) (StepInfo, error) {
	if n < 1 {
		return StepInfo{}, fmt.Errorf("sim: StepN(%d): need n ≥ 1", n)
	}
	return e.stepN(n)
}

// stepN is the shared Step/StepN driver: release due jobs, fast-forward
// idle gaps, and run scheduling rounds until budget steps have executed
// or the engine is idle.
func (e *Engine) stepN(budget int64) (StepInfo, error) {
	e.callRel = e.callRel[:0]
	e.callDone = e.callDone[:0]
	for a := range e.callExec {
		e.callExec[a] = 0
	}
	var steps, leaps int64
	for steps < budget {
		if e.Idle() {
			break
		}
		t := e.now + 1
		if t > e.maxStepsBound() {
			return StepInfo{}, fmt.Errorf("sim: scheduler %q exceeded %d steps with %d jobs unfinished — likely a non-work-conserving allotment bug", e.cfg.Scheduler.Name(), e.maxStepsBound(), e.remaining)
		}
		// Release: a job released at r is schedulable from step r+1.
		for e.pendOff < len(e.pending) && e.pending[e.pendOff].release < t {
			js := e.pending[e.pendOff]
			e.pending[e.pendOff] = nil
			e.pendOff++
			js.phase = JobActive
			// Release hands the job's state to its runtime: it is no longer
			// stealable, so drop the retained spec and its pending-work share.
			e.pendingWork -= int64(js.tasks)
			js.spec = JobSpec{}
			e.insertActive(js)
			e.callRel = append(e.callRel, js.id)
		}
		if e.pendOff == len(e.pending) {
			// Queue drained: recover the backing array's full capacity.
			e.pending = e.pending[:0]
			e.pendOff = 0
		}
		if len(e.active) == 0 {
			// Idle interval: fast-forward to the next release (the loop's
			// t = now+1 then lands on release+1).
			e.now = e.pending[e.pendOff].release
			continue
		}
		e.now = t
		did, err := e.executeRound(t, budget-steps)
		if err != nil {
			return StepInfo{}, err
		}
		steps += did
		if did > 1 {
			leaps += did - 1
		}
	}
	e.leapSteps += leaps
	if e.remaining == 0 {
		// Drained: snap the work estimate back to truth so estimation error
		// from timed/moldable runtimes cannot accumulate across bursts.
		e.estWork = 0
		e.pendingWork = 0
	}
	info := StepInfo{
		Step:      e.now,
		Idle:      steps == 0,
		Steps:     steps,
		LeapSteps: leaps,
		Active:    len(e.active),
	}
	if steps > 0 {
		info.Executed = e.callExec
	}
	if len(e.callRel) > 0 {
		info.Released = e.callRel
	}
	if len(e.callDone) > 0 {
		info.Completed = e.callDone
	}
	return info, nil
}

// executeRound runs one scheduling round at step t: snapshot desires, ask
// the scheduler for allotments, then execute them for one step — or, when
// the whole system is provably in a stable regime, for up to budget steps
// in one event-leap. It returns how many steps were executed (≥ 1).
func (e *Engine) executeRound(t int64, budget int64) (int64, error) {
	// Snapshot desires (and non-preemptive floors, when the runtime has
	// them) into flat reused backing arrays — no per-job allocations.
	k := e.cfg.K
	if cap(e.desireBuf) < len(e.active)*k {
		e.desireBuf = make([]int, len(e.active)*k)
	}
	e.views = e.views[:0]
	if cap(e.views) < len(e.active) {
		e.views = make([]sched.JobView, 0, len(e.active))
	}
	if cap(e.heldBuf) < len(e.active) {
		e.heldBuf = make([]bool, len(e.active))
	}
	e.heldBuf = e.heldBuf[:len(e.active)]
	leapable := true
	hardFloors, softUnheld := 0, 0
	for i, j := range e.active {
		d := e.desireBuf[i*k : (i+1)*k : (i+1)*k]
		for a := 1; a <= k; a++ {
			d[a-1] = j.rt.Desire(dag.Category(a))
		}
		v := sched.JobView{ID: j.id, Desire: d}
		e.heldBuf[i] = false
		if j.caps.floor != nil {
			if cap(e.floorBuf) < len(e.active)*k {
				e.floorBuf = make([]int, len(e.active)*k)
			}
			fl := e.floorBuf[i*k : (i+1)*k : (i+1)*k]
			any, pinned := false, true
			for a := 1; a <= k; a++ {
				fl[a-1] = j.caps.floor.Floor(dag.Category(a))
				if fl[a-1] > 0 {
					any = true
				}
				if fl[a-1] != d[a-1] {
					pinned = false
				}
			}
			if any {
				v.Floor = fl
			}
			// A hold-capable job is "held" when its desires equal its
			// floors everywhere: the whole frontier is in flight, so
			// repeating the floor allotment only counts down leases (the
			// hold law). Hold-incapable floor-bearers (timed DAGs) block
			// leaping outright.
			if j.caps.hold != nil {
				if any && pinned {
					e.heldBuf[i] = true
				} else {
					softUnheld++
				}
			} else if any {
				hardFloors++
			}
		}
		if !e.heldBuf[i] && j.caps.leap == nil {
			leapable = false
		}
		e.views = append(e.views, v)
	}
	overloadNow := false
	for a := 0; a < k; a++ {
		activeCount := 0
		for _, v := range e.views {
			if v.Desire[a] > 0 {
				activeCount++
			}
		}
		if activeCount > e.cfg.Caps[a] {
			e.overloaded[a] = true
			overloadNow = true
		}
	}

	var allot [][]int
	if e.intoAllotter != nil {
		dst := e.allotBuf.Shape(len(e.views), k)
		e.intoAllotter.AllotInto(t, e.views, e.cfg.Caps, dst)
		allot = dst
	} else {
		allot = e.cfg.Scheduler.Allot(t, e.views, e.cfg.Caps)
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer(t, e.views, allot)
	}
	if e.cfg.ValidateAllotments {
		if err := sched.ValidateAllotments(e.views, e.cfg.Caps, allot); err != nil {
			return 0, fmt.Errorf("sim: step %d: %w", t, err)
		}
	} else if len(allot) != len(e.views) {
		return 0, fmt.Errorf("sim: step %d: scheduler returned %d rows for %d jobs", t, len(allot), len(e.views))
	}

	// Event-leap: repeat this exact allotment for n steps when it is
	// provably what single-stepping would have produced. Requires the
	// scheduler to vouch for its own output (Stable), every active job to
	// either support closed-form multi-step execution (drain law) or be in
	// a held phase (hold law), every DAG-backed runtime to vouch its
	// frontier level cannot promote mid-window (StableRuntime), every held
	// job to vouch no lease finishes mid-window (HoldRuntime), and no
	// per-step hook that would observe the skipped rounds. tryLeap counts
	// the blocking reason otherwise.
	if budget > 1 {
		if n := e.tryLeap(t, allot, budget, leapable, hardFloors, softUnheld, overloadNow); n > 1 {
			e.leapRound(t, allot, n)
			return n, nil
		}
	}

	// Execute one step. Each job consumes min(allotment, desire) ready
	// tasks per category; completed tasks release successors at the step
	// (or micro-round, under speed augmentation) boundary.
	for a := range e.stepExec {
		e.stepExec[a] = 0
	}
	rounds := e.cfg.Speed
	if rounds < 1 {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		if e.cfg.Parallel && e.trace.level < TraceTasks {
			e.executeParallel(t, e.active, allot)
		} else {
			e.executeSerial(t, e.active, allot)
		}
		for _, j := range e.active {
			j.rt.Advance()
		}
	}
	for a, n := range e.stepExec {
		e.execTotal[a] += int64(n)
		e.callExec[a] += n
		e.estWork -= int64(n)
	}
	if e.estWork < 0 {
		e.estWork = 0
	}

	// Step boundary: detect completions.
	e.doneIDs = e.doneIDs[:0]
	out := e.active[:0]
	for _, j := range e.active {
		if j.rt.Done() {
			j.completed = t
			j.phase = JobDone
			if t > e.makespan {
				e.makespan = t
			}
			e.doneIDs = append(e.doneIDs, j.id)
			e.remaining--
			e.completedN++
		} else {
			out = append(out, j)
		}
	}
	e.active = out
	if len(e.doneIDs) > 0 {
		e.callDone = append(e.callDone, e.doneIDs...)
		if c, ok := e.cfg.Scheduler.(sched.Completer); ok {
			c.JobsDone(e.doneIDs)
		}
	}
	e.trace.endStep(t, len(e.active)+len(e.doneIDs), len(e.doneIDs))
	return 1, nil
}

// tryLeap decides whether the round at step t may extend into an event-leap
// and for how many steps (≤ budget; 1 means "no leap"). When a disqualifier
// blocks the leap it increments the matching LeapBlocked counter; rounds
// merely clipped to one step by an imminent release or the runaway guard
// count nothing.
func (e *Engine) tryLeap(t int64, allot [][]int, budget int64, leapable bool, hardFloors, softUnheld int, overloadNow bool) int64 {
	switch {
	case e.cfg.NoLeap:
		e.leapBlocked.NoLeap++
	case e.cfg.Speed > 1:
		e.leapBlocked.Speed++
	case e.cfg.Observer != nil:
		e.leapBlocked.Observer++
	case e.trace.level >= TraceTasks:
		e.leapBlocked.Trace++
	case hardFloors > 0:
		e.leapBlocked.Floors++
	case softUnheld > 0:
		e.leapBlocked.Hold++
	case !leapable:
		e.leapBlocked.Runtime++
	case e.stable == nil:
		e.leapBlocked.Scheduler++
	default:
		h := e.stable.StableHorizon()
		if h <= 0 {
			if overloadNow {
				e.leapBlocked.Overload++
			} else {
				e.leapBlocked.Scheduler++
			}
			return 1
		}
		n := budget
		if h < budget-1 {
			n = h + 1
		}
		// A job released at r joins the views at step r+1: the leap must
		// not run past the step preceding that.
		if e.pendingLen() > 0 {
			if m := e.pending[e.pendOff].release - t + 1; m < n {
				n = m
			}
		}
		if m := e.maxStepsBound() - t + 1; m < n {
			n = m
		}
		if n <= 1 {
			return 1
		}
		// Per-job windows. Held jobs: the lease countdowns bound how long
		// the held phase provably lasts (the window must end before any
		// finish). DAG-backed runtimes: the scheduler's horizon covers how
		// desires evolve, but each instance must additionally vouch that
		// none of the covered boundaries can promote tasks (level
		// stability). The per-step bound is the step-t allotment plus the
		// one processor the rotating DEQ remainder may add on later covered
		// steps (the Stable contract's per-step bound).
		for i, j := range e.active {
			if e.heldBuf[i] {
				hf := j.caps.hold.HoldFor()
				if hf <= 0 {
					e.leapBlocked.Hold++
					return 1
				}
				if hf < n-1 {
					n = hf + 1
				}
				continue
			}
			if j.caps.stable == nil {
				continue
			}
			for a, v := range allot[i] {
				if v > 0 {
					v++
				}
				e.perStepBuf[a] = v
			}
			sf := j.caps.stable.StableFor(e.perStepBuf)
			if sf <= 0 {
				e.leapBlocked.DAGFrontier++
				return 1
			}
			if sf < n-1 {
				n = sf + 1
			}
		}
		return n
	}
	return 1
}

// leapRound executes the n consecutive steps t..t+n−1 in closed form. The
// scheduler vouched (StableHorizon) that its cross-step state is frozen
// and the per-step allotments over the window are computable by
// LeapTotals; the caller established that no release, completion or phase
// boundary falls inside it. Job state advances by the aggregate totals
// (LeapTasks); per-step execution counts — every covered step's column
// sums equal step t's (the stability contract) — feed the trace rows at
// TraceSteps, so the result is bit-identical to single-stepping.
func (e *Engine) leapRound(t int64, allot [][]int, n int64) {
	totals := e.leapBuf.Shape(len(e.views), e.cfg.K)
	e.stable.LeapTotals(t, e.views, e.cfg.Caps, n, totals)
	for i, j := range e.active {
		if e.heldBuf[i] {
			j.caps.hold.LeapHold(n)
		} else {
			j.caps.leap.LeapTasks(totals[i])
		}
	}
	// Per-step category totals: column sums of the step-t matrix, constant
	// across the window.
	for a := range e.stepExec {
		e.stepExec[a] = 0
	}
	for _, row := range allot {
		for a, v := range row {
			e.stepExec[a] += v
		}
	}
	for a, c := range e.stepExec {
		e.execTotal[a] += int64(c) * n
		e.callExec[a] += c * int(n)
		e.estWork -= int64(c) * n
	}
	if e.estWork < 0 {
		e.estWork = 0
	}
	if e.trace.level >= TraceSteps {
		for s := t; s < t+n; s++ {
			e.trace.recordCounts(s, e.stepExec)
			e.trace.endStep(s, len(e.active), 0)
		}
	}
	e.now = t + n - 1
}

// Result assembles the run outcome from the jobs admitted so far: makespan,
// per-job completions (cancelled jobs report Completion 0), overload flags
// and the trace. It may be called at any point; Run calls it once all jobs
// have completed.
func (e *Engine) Result() *Result {
	speed := e.cfg.Speed
	if speed < 1 {
		speed = 1
	}
	res := &Result{
		Scheduler:  e.cfg.Scheduler.Name(),
		K:          e.cfg.K,
		Caps:       append([]int(nil), e.cfg.Caps...),
		Speed:      speed,
		Makespan:   e.makespan,
		Overloaded: append([]bool(nil), e.overloaded...),
		Trace:      e.trace,
	}
	res.Jobs = make([]JobResult, 0, len(e.jobs))
	for _, j := range e.jobs {
		if j == nil {
			continue // retired
		}
		res.Jobs = append(res.Jobs, JobResult{
			ID:         j.id,
			Release:    j.release,
			Completion: j.completed,
			Work:       j.work,
			Span:       j.span,
		})
	}
	return res
}

// insertPending inserts into the pending queue, keeping (release, ID)
// order — the stable-sort order Run admits in.
func (e *Engine) insertPending(js *jobState) {
	live := e.pending[e.pendOff:]
	i := sort.Search(len(live), func(i int) bool {
		p := live[i]
		if p.release != js.release {
			return p.release > js.release
		}
		return p.id > js.id
	})
	e.pending = append(e.pending, nil)
	live = e.pending[e.pendOff:]
	copy(live[i+1:], live[i:])
	live[i] = js
}

// insertActive inserts into the active set, keeping ascending ID order —
// the order the Scheduler contract requires views in. In batch runs
// releases happen in ID order so this is an append.
func (e *Engine) insertActive(js *jobState) {
	i := sort.Search(len(e.active), func(i int) bool { return e.active[i].id > js.id })
	e.active = append(e.active, nil)
	copy(e.active[i+1:], e.active[i:])
	e.active[i] = js
}

// removeJob deletes js from a slice, preserving order.
func removeJob(list []*jobState, js *jobState) []*jobState {
	for i, p := range list {
		if p == js {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func (e *Engine) executeSerial(t int64, active []*jobState, allot [][]int) {
	taskLevel := e.trace.level >= TraceTasks
	for i, j := range active {
		for a := 0; a < e.cfg.K; a++ {
			n := allot[i][a]
			if n == 0 {
				continue
			}
			if taskLevel {
				run := j.caps.task.ExecuteTasks(dag.Category(a+1), n)
				e.trace.record(t, j.id, a+1, run)
				e.stepExec[a] += len(run)
			} else {
				ran := j.rt.Execute(dag.Category(a+1), n)
				e.trace.add(t, a+1, ran)
				e.stepExec[a] += ran
			}
		}
	}
}

// executeParallel runs the execution phase over a fixed worker pool. Job
// instances are independent, so this is race-free; per-step aggregate trace
// counts are merged per worker. Results are bit-identical to serial runs.
func (e *Engine) executeParallel(t int64, active []*jobState, allot [][]int) {
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	if workers > len(active) {
		workers = len(active)
	}
	if workers <= 1 {
		e.executeSerial(t, active, allot)
		return
	}
	// Reused scratch: one flat counts array sliced per worker.
	if cap(e.parCounts) < workers {
		e.parCounts = make([][]int, workers)
	}
	if cap(e.parFlat) < workers*e.cfg.K {
		e.parFlat = make([]int, workers*e.cfg.K)
	}
	counts := e.parCounts[:workers]
	flat := e.parFlat[:workers*e.cfg.K]
	for i := range flat {
		flat[i] = 0
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		counts[w] = flat[w*e.cfg.K : (w+1)*e.cfg.K : (w+1)*e.cfg.K]
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := counts[w]
			for i := w; i < len(active); i += workers {
				j := active[i]
				for a := 0; a < e.cfg.K; a++ {
					if n := allot[i][a]; n > 0 {
						local[a] += j.rt.Execute(dag.Category(a+1), n)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, local := range counts {
		e.trace.recordCounts(t, local)
		for a, c := range local {
			e.stepExec[a] += c
		}
	}
}

// engineOracle adapts the engine's job table to sched.Oracle for
// clairvoyant baselines. It reads through the engine so jobs admitted
// after SetOracle are visible.
type engineOracle struct{ e *Engine }

func (o engineOracle) RemainingWork(jobID int) []int {
	js := o.e.jobs[jobID]
	if js == nil {
		return nil // retired; schedulers only query live jobs
	}
	return js.rt.RemainingWork()
}

func (o engineOracle) ReleaseTime(jobID int) int64 {
	js := o.e.jobs[jobID]
	if js == nil {
		return 0
	}
	return js.release
}
