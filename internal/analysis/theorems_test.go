package analysis

import (
	"strings"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sim"
	"krad/internal/workload"
)

func runBatchedMix(t *testing.T, k int, caps []int, n int, seed int64) *sim.Result {
	t.Helper()
	specs, err := workload.Mix{K: k, Jobs: n, MinSize: 4, MaxSize: 40, Seed: seed}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		K: k, Caps: caps, Scheduler: core.NewKRAD(k),
		Pick: dag.PickFIFO, ValidateAllotments: true,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCheckTheorem3HoldsOnRandomBatches(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		res := runBatchedMix(t, 3, []int{2, 4, 8}, 20, seed)
		bc := CheckTheorem3(res)
		if !bc.OK {
			t.Errorf("seed %d: %v", seed, bc)
		}
		if bc.Measured < 1 {
			t.Errorf("seed %d: ratio %v below 1 — lower bound overshoots", seed, bc.Measured)
		}
	}
}

func TestCheckLemma2HoldsOnBatches(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		res := runBatchedMix(t, 2, []int{3, 3}, 15, seed)
		if bc := CheckLemma2(res); !bc.OK {
			t.Errorf("seed %d: %v", seed, bc)
		}
	}
}

func TestCheckTheorem5And6OnLightLoad(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		res := runBatchedMix(t, 2, []int{8, 8}, 5, seed)
		if res.EverOverloaded() {
			t.Fatalf("seed %d: 5 jobs on 8+8 processors overloaded", seed)
		}
		bc, applicable := CheckTheorem5(res)
		if !applicable {
			t.Fatalf("seed %d: theorem 5 not applicable", seed)
		}
		if !bc.OK {
			t.Errorf("seed %d: %v", seed, bc)
		}
		i5, applicable := CheckInequality5(res)
		if !applicable || !i5.OK {
			t.Errorf("seed %d: %v (applicable=%v)", seed, i5, applicable)
		}
		if bc6 := CheckTheorem6(res); !bc6.OK {
			t.Errorf("seed %d: %v", seed, bc6)
		}
	}
}

func TestCheckTheorem6OnHeavyLoad(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		res := runBatchedMix(t, 3, []int{2, 2, 2}, 60, seed)
		if !res.EverOverloaded() {
			t.Fatalf("seed %d: 60 jobs on 2+2+2 processors not overloaded", seed)
		}
		if bc := CheckTheorem6(res); !bc.OK {
			t.Errorf("seed %d: %v", seed, bc)
		}
	}
}

func TestCheckAllEmptyOnCompliantRuns(t *testing.T) {
	res := runBatchedMix(t, 2, []int{4, 4}, 12, 3)
	if failures := CheckAll(res); len(failures) != 0 {
		t.Errorf("unexpected failures: %v", failures)
	}
}

func TestBoundCheckString(t *testing.T) {
	ok := check("x", 1, 2)
	if !strings.Contains(ok.String(), "≤") {
		t.Errorf("String() = %q", ok.String())
	}
	bad := check("x", 3, 2)
	if bad.OK || !strings.Contains(bad.String(), ">") {
		t.Errorf("failing check: %+v %q", bad, bad.String())
	}
}
