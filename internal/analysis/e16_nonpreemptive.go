package analysis

import (
	"fmt"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sched"
	"krad/internal/sim"
	"krad/internal/workload"
)

// RunE16 compares the three execution models for multi-step tasks on the
// same duration-annotated workloads:
//
//   - unit: the base workload, every task one step (control row);
//   - preemptive: each task of duration d expanded into a chain of d unit
//     tasks (dag.ExpandDurations) — progress can pause and resume, so the
//     result is an ordinary K-DAG and Theorem 3 applies verbatim;
//   - non-preemptive: the same durations executed by dag.TimedInstance,
//     where a started task pins its processor, under K-RAD wrapped in
//     sched.WithFloors.
//
// Ratios are against the duration-weighted Section 4 lower bound.
// Measured shape (a reproduction finding worth stating): preemptive ratios
// stay under the K+1−1/Pmax bound (guaranteed, it is a plain K-DAG), and
// the non-preemptive rows track them within noise on both makespan and
// mean response — a pinned processor is a busy processor, so K-RAD loses
// almost nothing to non-preemption on work-dominated mixes. The unit-task
// assumption of the paper is therefore not a practical obstacle for this
// scheduler family.
func RunE16(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "Extension: non-preemptive multi-step tasks (execution models)",
		Header: []string{"max duration", "model", "jobs", "work", "makespan", "LB", "ratio", "Thm3 bound", "mean resp"},
	}
	const k = 3
	caps := []int{4, 4, 4}
	jobs := 30
	maxDurs := []int{1, 2, 4, 8}
	if opts.Quick {
		jobs = 16
		maxDurs = []int{1, 4}
	}
	bound := metrics.MakespanCompetitiveLimit(k, caps)

	for _, maxDur := range maxDurs {
		base, err := workload.Mix{
			K: k, Jobs: jobs, MinSize: 4, MaxSize: 40, Seed: opts.seed(),
		}.Generate()
		if err != nil {
			return nil, err
		}
		timed, err := workload.WithDurations(base, maxDur, opts.seed()+7)
		if err != nil {
			return nil, err
		}

		type model struct {
			name  string
			specs []sim.JobSpec
			mk    func() sched.Scheduler
		}
		preemptive := make([]sim.JobSpec, len(timed))
		nonpre := make([]sim.JobSpec, len(timed))
		for i, s := range timed {
			preemptive[i] = sim.JobSpec{Graph: dag.ExpandDurations(s.Graph)}
			nonpre[i] = sim.JobSpec{Source: sim.TimedGraphSource(s.Graph)}
		}
		models := []model{
			{"preemptive (expanded)", preemptive, func() sched.Scheduler { return core.NewKRAD(k) }},
			{"non-preemptive (floors)", nonpre, func() sched.Scheduler { return sched.WithFloors(core.NewKRAD(k)) }},
		}
		for _, m := range models {
			res, err := sim.Run(sim.Config{
				K: k, Caps: caps, Scheduler: m.mk(),
				Pick: dag.PickFIFO, ValidateAllotments: true,
			}, m.specs)
			if err != nil {
				return nil, fmt.Errorf("E16 %s maxDur=%d: %w", m.name, maxDur, err)
			}
			lb := metrics.MakespanLowerBound(res)
			ratio := float64(res.Makespan) / float64(lb)
			work := 0
			for _, w := range res.TotalWork() {
				work += w
			}
			t.AddRow(maxDur, m.name, jobs, work, res.Makespan, lb, ratio, bound,
				fmt.Sprintf("%.1f", res.MeanResponse()))
			if m.name == "preemptive (expanded)" && ratio > bound {
				t.AddNote("FAIL: preemptive model violated Theorem 3 at maxDur=%d", maxDur)
			}
		}
	}
	t.AddNote("both models carry identical duration-weighted work and critical paths, so their rows share the same lower bound per duration scale")
	t.AddNote("the Theorem 3 guarantee covers the preemptive model (a plain K-DAG); non-preemptive rows measure the cost of pinned processors — which stays within noise here, showing the unit-task idealization is benign for K-RAD on work-dominated mixes")
	return t, nil
}
