package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sched"
	"krad/internal/sim"
)

// poolConfig is testConfig with N shards behind the front-end.
func poolConfig(shards int, placement string, k int, caps ...int) Config {
	cfg := testConfig(k, caps...)
	cfg.Shards = shards
	cfg.Placement = placement
	cfg.NewScheduler = func() sched.Scheduler { return core.NewKRAD(k) }
	return cfg
}

func TestIDNamespacing(t *testing.T) {
	cases := []struct{ shard, local int }{
		{0, 0}, {0, 1}, {0, 12345}, {1, 0}, {1, 7}, {3, 1 << 20}, {15, 99},
	}
	for _, c := range cases {
		id := composeID(c.shard, c.local)
		if ShardOf(id) != c.shard || LocalID(id) != c.local {
			t.Errorf("compose(%d,%d)=%d → shard %d local %d", c.shard, c.local, id, ShardOf(id), LocalID(id))
		}
		if c.shard == 0 && id != c.local {
			t.Errorf("shard 0 id %d ≠ local %d: single-shard IDs must be unchanged", id, c.local)
		}
	}
}

func TestPlacementPolicies(t *testing.T) {
	loads := []int{5, 0, 3, 0}

	rr, err := NewPlacement("round-robin")
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, rr.Pick("", loads))
	}
	if want := []int{0, 1, 2, 3, 0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("round-robin picks %v, want %v", got, want)
	}

	ll, err := NewPlacement("least-loaded")
	if err != nil {
		t.Fatal(err)
	}
	if got := ll.Pick("", loads); got != 1 {
		t.Errorf("least-loaded picked %d (loads %v), want 1 (lowest index wins ties)", got, loads)
	}

	h, err := NewPlacement("hash")
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := h.Pick("tenant-a", loads), h.Pick("tenant-a", loads)
	if a1 != a2 {
		t.Errorf("hash placement not stable: %d then %d for the same key", a1, a2)
	}
	// Keyless submissions under hash fall back to round-robin rather than
	// piling onto one shard.
	k1, k2 := h.Pick("", loads), h.Pick("", loads)
	if k1 == k2 {
		t.Errorf("keyless hash picks did not rotate: %d, %d", k1, k2)
	}

	// Default is round-robin; junk is rejected.
	if p, err := NewPlacement(""); err != nil || p.Name() != PlaceRoundRobin {
		t.Errorf("empty placement: %v, %v", p, err)
	}
	if _, err := NewPlacement("banana"); err == nil {
		t.Error("unknown placement accepted")
	}
}

func TestNewRequiresSchedulerFactoryForShards(t *testing.T) {
	cfg := testConfig(2, 2, 2)
	cfg.Shards = 3
	if _, err := New(cfg); err == nil {
		t.Fatal("Shards=3 without NewScheduler accepted — shards would share one stateful scheduler")
	}
}

// TestPoolRunsAcrossShards submits a workload to a 3-shard round-robin
// pool and checks routing, namespaced status queries, event fan-out and
// aggregated stats.
func TestPoolRunsAcrossShards(t *testing.T) {
	cfg := poolConfig(3, PlaceRoundRobin, 2, 2, 2)
	cfg.SubscriberBuffer = 1 << 14
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Shards() != 3 {
		t.Fatalf("Shards() = %d", svc.Shards())
	}
	ch, unsub := svc.Subscribe()
	defer unsub()
	done := make(chan map[int]bool, 1)
	go func() {
		seen := make(map[int]bool)
		for ev := range ch {
			for _, id := range ev.Completed {
				if ShardOf(id) != ev.Shard {
					t.Errorf("event from shard %d completed id %d (shard %d)", ev.Shard, id, ShardOf(id))
				}
				seen[id] = true
			}
		}
		done <- seen
	}()
	svc.Start()

	const n = 12
	ids := make([]int, 0, n)
	perShard := make(map[int]int)
	for i := 0; i < n; i++ {
		id, err := svc.Submit(sim.JobSpec{Graph: dag.ForkJoin(2, 4, 1, 2, 1)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
		perShard[ShardOf(id)]++
	}
	// Round-robin spreads a uniform burst evenly.
	if len(perShard) != 3 || perShard[0] != 4 || perShard[1] != 4 || perShard[2] != 4 {
		t.Errorf("round-robin distribution %v, want 4 per shard", perShard)
	}

	waitFor(t, "completions", func() bool { return svc.Stats().Completed == n })
	for _, id := range ids {
		st, ok := svc.Job(id)
		if !ok || st.Phase != sim.JobDone {
			t.Fatalf("job %d: ok=%v %+v", id, ok, st)
		}
		if st.ID != id {
			t.Errorf("job %d status carries ID %d — namespacing lost", id, st.ID)
		}
	}

	st := svc.Stats()
	if st.Submitted != n || st.Completed != n || st.Response.N != n {
		t.Errorf("aggregated stats %+v", st)
	}
	if st.Shards != 3 || st.Placement != PlaceRoundRobin {
		t.Errorf("shards/placement %d/%q", st.Shards, st.Placement)
	}
	if st.Steps == 0 || st.Now == 0 {
		t.Errorf("clocks did not advance: %+v", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
	seen := <-done
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("event stream missed completion of job %d", id)
		}
	}
}

// TestPoolResponseMergeMatchesOracle checks that the fleet's merged
// response summary equals a single summary computed over every job's
// individually queried response — the single-engine oracle for the merge.
func TestPoolResponseMergeMatchesOracle(t *testing.T) {
	svc, err := New(poolConfig(3, PlaceRoundRobin, 2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	}()

	graphs := []*dag.Graph{
		dag.RoundRobinChain(2, 9),
		dag.ForkJoin(2, 5, 1, 2, 1),
		dag.UniformChain(2, 6, 2),
		dag.ForkJoin(2, 4, 2, 1, 2),
		dag.RoundRobinChain(2, 5),
		dag.UniformChain(2, 4, 1),
		dag.Singleton(2, 2),
		dag.RoundRobinChain(2, 7),
		dag.UniformChain(2, 5, 1),
	}
	ids := make([]int, len(graphs))
	for i, g := range graphs {
		id, err := svc.Submit(sim.JobSpec{Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	waitFor(t, "completions", func() bool { return svc.Stats().Completed == int64(len(graphs)) })

	oracle := make([]float64, 0, len(ids))
	for _, id := range ids {
		st, ok := svc.Job(id)
		if !ok || st.Phase != sim.JobDone {
			t.Fatalf("job %d: %+v", id, st)
		}
		oracle = append(oracle, float64(st.Response()))
	}
	want := metrics.Summarize(oracle)
	got := svc.Stats().Response
	// Responses are small integers, so the moments the fixed-size sample
	// histogram tracks exactly (N, Min, Max, Mean, StdDev — see
	// metrics.SampleHist) must match the oracle bit for bit; the quantiles
	// are bucketed estimates with a documented ~19% log-bucket error, so
	// they only need to land within that bound of the true order statistic.
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max || got.Mean != want.Mean {
		t.Errorf("merged response summary %+v ≠ oracle %+v (exact fields)", got, want)
	}
	if math.Abs(got.StdDev-want.StdDev) > 1e-9 {
		t.Errorf("merged response stddev %v ≠ oracle %v", got.StdDev, want.StdDev)
	}
	checkQ := func(stat string, g, w float64) {
		if math.Abs(g-w) > 0.25*w+1 {
			t.Errorf("merged response %s %v too far from oracle %v", stat, g, w)
		}
	}
	checkQ("p50", got.P50, want.P50)
	checkQ("p90", got.P90, want.P90)
	checkQ("p99", got.P99, want.P99)
}

func TestHashPlacementAffinityHTTP(t *testing.T) {
	cfg := poolConfig(4, PlaceHash, 2, 2, 2)
	_, ts := startHTTPClock(t, cfg, false) // frozen clock: jobs stay put

	submitKeyed := func(key string) int {
		t.Helper()
		body, _ := json.Marshal(submitRequest{Graph: dag.Singleton(2, 1), Release: 1 << 30})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
		if key != "" {
			req.Header.Set(PlacementKeyHeader, key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit status %d: %s", resp.StatusCode, b)
		}
		var out struct {
			ID    int `json:"id"`
			Shard int `json:"shard"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out.Shard != ShardOf(out.ID) {
			t.Fatalf("response shard %d ≠ ShardOf(%d)=%d", out.Shard, out.ID, ShardOf(out.ID))
		}
		return out.Shard
	}

	first := submitKeyed("tenant-a")
	for i := 0; i < 5; i++ {
		if got := submitKeyed("tenant-a"); got != first {
			t.Fatalf("key tenant-a moved from shard %d to %d", first, got)
		}
	}
	// A different key is routed deterministically too (possibly the same
	// shard — only stability is guaranteed).
	b1 := submitKeyed("tenant-b")
	if got := submitKeyed("tenant-b"); got != b1 {
		t.Fatalf("key tenant-b moved from shard %d to %d", b1, got)
	}
}

func TestLeastLoadedPlacement(t *testing.T) {
	svc, err := New(poolConfig(2, PlaceLeastLoaded, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Frozen clock (never started): in-flight counts only grow, so the
	// placement sequence is deterministic: 0, 1, then tie → 0.
	spec := func() sim.JobSpec { return sim.JobSpec{Graph: dag.Singleton(1, 1), Release: 1 << 30} }
	var shards []int
	for i := 0; i < 4; i++ {
		id, err := svc.Submit(spec())
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, ShardOf(id))
	}
	if want := []int{0, 1, 0, 1}; !reflect.DeepEqual(shards, want) {
		t.Errorf("least-loaded routing %v, want %v", shards, want)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = svc.Close(ctx)
}

func TestSubmitBatchHTTP(t *testing.T) {
	cfg := poolConfig(2, PlaceRoundRobin, 2, 2, 2)
	svc, ts := startHTTP(t, cfg)

	postBatch := func(body any) (*http.Response, []byte) {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	jobs := make([]submitRequest, 5)
	for i := range jobs {
		jobs[i] = submitRequest{Graph: dag.ForkJoin(2, 3, 1, 2, 1)}
	}
	resp, body := postBatch(batchRequest{Jobs: jobs})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		IDs   []int `json:"ids"`
		Shard int   `json:"shard"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.IDs) != len(jobs) {
		t.Fatalf("batch returned %d ids for %d jobs", len(out.IDs), len(jobs))
	}
	for _, id := range out.IDs {
		if ShardOf(id) != out.Shard {
			t.Errorf("batch id %d on shard %d, batch placed on %d", id, ShardOf(id), out.Shard)
		}
	}
	waitFor(t, "batch completes", func() bool { return svc.Stats().Completed == int64(len(jobs)) })

	// All-or-nothing: a batch with one invalid member admits nothing.
	before := svc.Stats().Submitted
	bad := []submitRequest{
		{Graph: dag.Singleton(2, 1)},
		{Graph: dag.Singleton(3, 1)}, // K mismatch
	}
	if resp, body := postBatch(batchRequest{Jobs: bad}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid batch status %d: %s", resp.StatusCode, body)
	}
	if after := svc.Stats().Submitted; after != before {
		t.Errorf("invalid batch admitted %d jobs", after-before)
	}
	if resp, _ := postBatch(batchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status %d", resp.StatusCode)
	}
	if resp, _ := postBatch(batchRequest{Jobs: []submitRequest{{}}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("graphless batch member status %d", resp.StatusCode)
	}
}

// TestBatchBackpressureRetryAfter checks that an oversized batch is shed
// whole, with a Retry-After derived from the step pace.
func TestBatchBackpressureRetryAfter(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.MaxInFlight = 3
	cfg.StepEvery = 1700 * time.Millisecond // ceil → 2s
	_, ts := startHTTPClock(t, cfg, false)

	jobs := make([]submitRequest, 4) // exceeds the bound outright
	for i := range jobs {
		jobs[i] = submitRequest{Graph: dag.Singleton(1, 1)}
	}
	raw, _ := json.Marshal(batchRequest{Jobs: jobs})
	resp, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized batch status %d", resp.StatusCode)
	}
	// Retry-After carries the step-pace base (ceil(1.7s) = 2) plus the
	// deterministic 0–3 s round-robin jitter.
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 2 || secs > 5 {
		t.Errorf("Retry-After %q, want 2..5 (ceil of 1.7s step + jitter)", resp.Header.Get("Retry-After"))
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		step time.Duration
		want int64
	}{
		{0, 1},                       // free-running: floor
		{10 * time.Millisecond, 1},   // sub-second: floor
		{time.Second, 1},             // exact
		{1500 * time.Millisecond, 2}, // ceil
		{3 * time.Second, 3},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.step); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.step, got, c.want)
		}
	}
}

// TestRetryAfterJitterBounds pins the jitter contract: successive shed
// responses cycle deterministically through base..base+3 seconds — every
// value stays inside the four-second window and the sequence actually
// varies (no thundering-herd single value).
func TestRetryAfterJitterBounds(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.StepEvery = 1700 * time.Millisecond // base = ceil(1.7s) = 2
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	seen := map[string]int{}
	for i := 0; i < 8; i++ {
		v := svc.retryAfterValue()
		secs, err := strconv.Atoi(v)
		if err != nil || secs < 2 || secs > 5 {
			t.Fatalf("retryAfterValue() = %q, want 2..5", v)
		}
		seen[v]++
	}
	if len(seen) != 4 {
		t.Fatalf("8 draws hit %d distinct values %v, want the full 4-value cycle", len(seen), seen)
	}
	for v, n := range seen {
		if n != 2 {
			t.Fatalf("value %s drawn %d times in 8, want exactly 2 (round-robin)", v, n)
		}
	}
}

// TestSingleShardParity pins the -shards=1 compatibility contract beyond
// what the unmodified legacy tests cover: IDs are raw engine IDs and the
// SSE wire format carries no shard field.
func TestSingleShardParity(t *testing.T) {
	svc, err := New(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for want := 0; want < 3; want++ {
		id, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1), Release: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Errorf("single-shard id %d, want %d", id, want)
		}
	}
	ev, _ := json.Marshal(Event{Step: 1, Executed: []int{1}, Active: 1})
	if bytes.Contains(ev, []byte("shard")) {
		t.Errorf("shard-0 event JSON leaks a shard field: %s", ev)
	}
	st := svc.Stats()
	if st.Shards != 1 || st.MaxInFlight != 256 {
		t.Errorf("single-shard stats %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = svc.Close(ctx)
}

// TestFleetAdmissionSharing checks the MaxInFlight split: base slots for
// every shard, the remainder going one each to the lowest-numbered
// shards, so the fleet bound reported in Stats equals MaxInFlight exactly
// (a 3-shard fleet with MaxInFlight 4 used to admit 6 via per-shard
// ceiling).
func TestFleetAdmissionSharing(t *testing.T) {
	cfg := poolConfig(3, PlaceRoundRobin, 1, 1)
	cfg.MaxInFlight = 4 // → shares of 2,1,1
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{2, 1, 1} {
		if got := svc.shards[i].maxInFlight; got != want {
			t.Errorf("shard %d share %d, want %d", i, got, want)
		}
	}
	if got := svc.Stats().MaxInFlight; got != 4 {
		t.Errorf("fleet MaxInFlight %d, want 4 (shares must sum to the bound)", got)
	}
	// Frozen clock: round-robin lands submissions 0,1,2,3 on shards
	// 0,1,2,0 — exactly filling the 2,1,1 shares — then every further
	// submission is shed.
	for i := 0; i < 4; i++ {
		if _, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1), Release: 1 << 30}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1), Release: 1 << 30}); err == nil {
		t.Error("submission beyond the fleet bound accepted")
	}
	st := svc.Stats()
	if st.InFlight != 4 || st.Rejected != 1 {
		t.Errorf("stats %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = svc.Close(ctx)
}

// TestShardIsolationOnFailure checks that one shard's fatal scheduler
// error does not stop the others: the broken shard reports through Err,
// the healthy shards keep completing work.
func TestShardIsolationOnFailure(t *testing.T) {
	cfg := poolConfig(2, PlaceRoundRobin, 1, 1)
	cfg.Sim.MaxSteps = 8
	calls := 0
	cfg.NewScheduler = func() sched.Scheduler {
		calls++
		if calls == 1 {
			return idleScheduler{} // shard 0 never allots → runaway guard
		}
		return core.NewKRAD(1)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	// Round-robin: first submission lands on shard 0 (broken), second on
	// shard 1 (healthy).
	if _, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
		t.Fatal(err)
	}
	id2, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if ShardOf(id2) != 1 {
		t.Fatalf("second job on shard %d, want 1", ShardOf(id2))
	}
	waitFor(t, "healthy shard completes", func() bool {
		st, _ := svc.Job(id2)
		return st.Phase == sim.JobDone
	})
	waitFor(t, "broken shard reports", func() bool { return svc.Err() != nil })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestPoolMetricsExposition checks /metrics on a multi-shard service:
// fleet totals keep their pre-sharding names, per-shard series appear
// with shard labels, and the merged histogram count matches the fleet
// completion counter.
func TestPoolMetricsExposition(t *testing.T) {
	cfg := poolConfig(2, PlaceRoundRobin, 2, 2, 2)
	svc, ts := startHTTP(t, cfg)
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := svc.Submit(sim.JobSpec{Graph: dag.ForkJoin(2, 3, 1, 2, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "completions", func() bool { return svc.Stats().Completed == n })

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"krad_shards 2",
		fmt.Sprintf("krad_jobs_completed_total %d", n),
		fmt.Sprintf("krad_response_steps_count %d", n),
		`krad_shard_steps_total{shard="0"}`,
		`krad_shard_steps_total{shard="1"}`,
		`krad_shard_jobs_completed_total{shard="0"} 3`,
		`krad_shard_jobs_completed_total{shard="1"} 3`,
		`krad_shard_queue_depth{shard="0"} 0`,
		`krad_utilization{category="2"}`,
		`krad_engine_leap_steps_total`,
		`krad_engine_leap_blocked_total{reason="noleap"}`,
		`krad_engine_leap_blocked_total{reason="overload"}`,
		`krad_engine_leap_blocked_total{reason="dag-frontier"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if n := strings.Count(text, "# HELP krad_engine_leap_blocked_total"); n != 1 {
		t.Errorf("leap_blocked HELP emitted %d times, want 1", n)
	}
}
