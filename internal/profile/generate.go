package profile

import (
	"fmt"
	"math/rand"

	"krad/internal/sim"
)

// GenOpts parameterizes Generate.
type GenOpts struct {
	// K is the number of resource categories.
	K int
	// Jobs is the number of profile jobs to draw.
	Jobs int
	// MinPhases and MaxPhases bound each job's phase count.
	MinPhases, MaxPhases int
	// MaxParallelism bounds each phase's per-category task count; phases
	// draw counts uniformly from [0, MaxParallelism], re-rolling empty
	// phases.
	MaxParallelism int
	// Seed makes the set reproducible.
	Seed int64
}

// Generate draws a batched set of profile jobs as engine-ready specs.
// Because profiles store counts rather than tasks, MaxParallelism can be
// set in the millions without memory cost.
func Generate(opts GenOpts) ([]sim.JobSpec, error) {
	if opts.K < 1 || opts.Jobs < 1 {
		return nil, fmt.Errorf("profile: Generate needs K ≥ 1 and Jobs ≥ 1, got K=%d Jobs=%d", opts.K, opts.Jobs)
	}
	if opts.MinPhases < 1 || opts.MaxPhases < opts.MinPhases {
		return nil, fmt.Errorf("profile: phase bounds [%d,%d] invalid", opts.MinPhases, opts.MaxPhases)
	}
	if opts.MaxParallelism < 1 {
		return nil, fmt.Errorf("profile: MaxParallelism=%d, need ≥ 1", opts.MaxParallelism)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	specs := make([]sim.JobSpec, opts.Jobs)
	for i := range specs {
		nPhases := opts.MinPhases + rng.Intn(opts.MaxPhases-opts.MinPhases+1)
		phases := make([]Phase, nPhases)
		for p := range phases {
			tasks := make([]int, opts.K)
			total := 0
			for a := range tasks {
				tasks[a] = rng.Intn(opts.MaxParallelism + 1)
				total += tasks[a]
			}
			if total == 0 {
				tasks[rng.Intn(opts.K)] = 1 + rng.Intn(opts.MaxParallelism)
			}
			phases[p] = Phase{Tasks: tasks}
		}
		job, err := New(opts.K, fmt.Sprintf("profile-%d", i), phases)
		if err != nil {
			return nil, err
		}
		specs[i] = sim.JobSpec{Source: job}
	}
	return specs, nil
}
