package analysis

import (
	"fmt"

	"krad/internal/baselines"
	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sched"
	"krad/internal/sim"
)

// RunE9 isolates the two failure modes RAD's design eliminates, using
// workloads constructed to trigger each:
//
//   - "starvation": long chains submitted ahead of many short jobs on few
//     processors. A scheduler without round-robin cycling (deq-only, fcfs)
//     lets the chains monopolize the machine for their whole length, so
//     every short job's response time is the chains' duration. RAD's
//     cycles slip the shorts through within their first round-robin turn.
//   - "waste": one wide job alongside trivial ones on a wide machine. A
//     scheduler without space sharing (rr-only) caps the wide job at one
//     processor per cycle, stretching the makespan; DEQ hands it the idle
//     processors.
//
// The table reports makespan, mean and max response time for each
// scheduler on both workloads.
func RunE9(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Ablations: what DEQ and RR each contribute (Section 3)",
		Header: []string{"workload", "scheduler", "makespan", "mean resp", "max resp"},
	}
	nShort := 40
	chainLen := 150
	wideWidth := 64
	if opts.Quick {
		nShort, chainLen, wideWidth = 20, 60, 32
	}

	// Workload A: starvation probe. Two long chains submitted first (so
	// they hold the lowest IDs, which deq-only serves preferentially),
	// followed by many unit jobs, on a 2-processor machine.
	starve := func() []sim.JobSpec {
		specs := []sim.JobSpec{
			{Graph: dag.UniformChain(1, chainLen, 1)},
			{Graph: dag.UniformChain(1, chainLen, 1)},
		}
		for i := 0; i < nShort; i++ {
			specs = append(specs, sim.JobSpec{Graph: dag.Singleton(1, 1)})
		}
		return specs
	}
	// Workload B: waste probe. One wide fork-join plus two singletons on a
	// wide machine.
	wide := func() []sim.JobSpec {
		return []sim.JobSpec{
			{Graph: dag.ForkJoin(1, wideWidth, 1, 1, 1)},
			{Graph: dag.Singleton(1, 1)},
			{Graph: dag.Singleton(1, 1)},
		}
	}

	mk := map[string]func() sched.Scheduler{
		"k-rad":    func() sched.Scheduler { return core.NewKRAD(1) },
		"deq-only": func() sched.Scheduler { return baselines.NewDEQOnly(1) },
		"rr-only":  func() sched.Scheduler { return baselines.NewRROnly(1) },
	}
	order := []string{"k-rad", "deq-only", "rr-only"}

	type wl struct {
		name  string
		caps  []int
		specs func() []sim.JobSpec
	}
	for _, w := range []wl{
		{"starvation probe", []int{2}, starve},
		{"waste probe", []int{16}, wide},
	} {
		results := map[string]*sim.Result{}
		for _, name := range order {
			res, err := sim.Run(sim.Config{
				K: 1, Caps: w.caps, Scheduler: mk[name](),
				Pick: dag.PickFIFO, ValidateAllotments: true,
			}, w.specs())
			if err != nil {
				return nil, err
			}
			results[name] = res
			var maxResp int64
			for _, j := range res.Jobs {
				if r := j.Response(); r > maxResp {
					maxResp = r
				}
			}
			t.AddRow(w.name, name, res.Makespan, fmt.Sprintf("%.1f", res.MeanResponse()), maxResp)
		}
		switch w.name {
		case "starvation probe":
			if results["deq-only"].MeanResponse() <= results["k-rad"].MeanResponse() {
				t.AddNote("UNEXPECTED: deq-only did not degrade mean response on the starvation probe")
			}
		case "waste probe":
			if results["rr-only"].Makespan <= results["k-rad"].Makespan {
				t.AddNote("UNEXPECTED: rr-only did not degrade makespan on the waste probe")
			}
		}
	}
	t.AddNote("expected shape: deq-only max response ≈ the whole backlog on the starvation probe (k-rad keeps it near the per-cycle bound); rr-only makespan ≈ width on the waste probe (k-rad ≈ width/P)")
	return t, nil
}
