package profile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sim"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		k      int
		phases []Phase
	}{
		{"bad k", 0, []Phase{{Tasks: []int{}}}},
		{"no phases", 2, nil},
		{"wrong shape", 2, []Phase{{Tasks: []int{1}}}},
		{"negative", 2, []Phase{{Tasks: []int{1, -1}}}},
		{"empty phase", 2, []Phase{{Tasks: []int{0, 0}}}},
	}
	for _, c := range cases {
		if _, err := New(c.k, "x", c.phases); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestJobMetrics(t *testing.T) {
	j := MustNew(2, "j", []Phase{
		{Tasks: []int{3, 0}},
		{Tasks: []int{0, 5}},
		{Tasks: []int{2, 2}},
	})
	if j.Span() != 3 {
		t.Errorf("Span = %d, want 3", j.Span())
	}
	wv := j.WorkVector()
	if wv[0] != 5 || wv[1] != 7 {
		t.Errorf("WorkVector = %v", wv)
	}
	if j.TotalTasks() != 12 {
		t.Errorf("TotalTasks = %d", j.TotalTasks())
	}
	if j.K() != 2 || j.Name() != "j" || j.Phases() != 3 {
		t.Error("accessors wrong")
	}
}

func TestNewCopiesPhases(t *testing.T) {
	tasks := []int{2, 1}
	j := MustNew(2, "j", []Phase{{Tasks: tasks}})
	tasks[0] = 99
	if j.WorkVector()[0] != 2 {
		t.Error("New did not copy phase slices")
	}
}

func TestRuntimeBarrierSemantics(t *testing.T) {
	j := MustNew(2, "j", []Phase{
		{Tasks: []int{2, 0}},
		{Tasks: []int{0, 3}},
	})
	r := j.NewRuntime(dag.PickFIFO, 0)
	if r.Desire(1) != 2 || r.Desire(2) != 0 {
		t.Fatalf("initial desires %d/%d", r.Desire(1), r.Desire(2))
	}
	// Execute one of two phase-1 tasks: barrier holds.
	if got := r.Execute(1, 1); got != 1 {
		t.Fatalf("Execute = %d", got)
	}
	r.Advance()
	if r.Desire(2) != 0 {
		t.Fatal("phase 2 released before phase 1 finished")
	}
	// Finish phase 1; phase 2 releases only after Advance.
	r.Execute(1, 5)
	if r.Desire(2) != 0 {
		t.Fatal("phase 2 released mid-step")
	}
	r.Advance()
	if r.Desire(1) != 0 || r.Desire(2) != 3 {
		t.Fatalf("after barrier: desires %d/%d", r.Desire(1), r.Desire(2))
	}
	r.Execute(2, 3)
	r.Advance()
	if !r.Done() {
		t.Fatal("not done")
	}
}

func TestRuntimeBadInputs(t *testing.T) {
	j := MustNew(1, "j", []Phase{{Tasks: []int{1}}})
	r := j.NewRuntime(dag.PickFIFO, 0)
	if r.Execute(0, 1) != 0 || r.Execute(2, 1) != 0 || r.Execute(1, 0) != 0 {
		t.Error("bad inputs executed tasks")
	}
	if r.Desire(0) != 0 || r.Desire(5) != 0 {
		t.Error("bad category desire nonzero")
	}
	r.Advance() // no-op when nothing ran
	if r.Done() {
		t.Error("done without executing")
	}
}

func TestRemainingWork(t *testing.T) {
	j := MustNew(2, "j", []Phase{
		{Tasks: []int{2, 1}},
		{Tasks: []int{0, 4}},
	})
	r := j.NewRuntime(dag.PickFIFO, 0)
	rw := r.RemainingWork()
	if rw[0] != 2 || rw[1] != 5 {
		t.Fatalf("initial remaining %v", rw)
	}
	r.Execute(1, 2)
	r.Execute(2, 1)
	r.Advance()
	rw = r.RemainingWork()
	if rw[0] != 0 || rw[1] != 4 {
		t.Fatalf("after phase 1 remaining %v", rw)
	}
}

func TestToGraphMatchesMetrics(t *testing.T) {
	j := MustNew(3, "j", []Phase{
		{Tasks: []int{2, 1, 0}},
		{Tasks: []int{0, 0, 4}},
		{Tasks: []int{1, 1, 1}},
	})
	g := j.ToGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Span() != j.Span() {
		t.Errorf("graph span %d != profile span %d", g.Span(), j.Span())
	}
	gw, jw := g.WorkVector(), j.WorkVector()
	for a := range gw {
		if gw[a] != jw[a] {
			t.Errorf("category %d: graph work %d != profile work %d", a+1, gw[a], jw[a])
		}
	}
}

// TestQuickProfileEquivalentToDenseLayeredDAG is the semantic equivalence
// property: a profile job and its expanded dense-layered K-DAG produce
// identical makespans and responses under K-RAD on the same machine.
func TestQuickProfileEquivalentToDenseLayeredDAG(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		caps := make([]int, k)
		for i := range caps {
			caps[i] = 1 + rng.Intn(4)
		}
		nJobs := 1 + rng.Intn(5)
		var profSpecs, dagSpecs []sim.JobSpec
		for i := 0; i < nJobs; i++ {
			nPhases := 1 + rng.Intn(4)
			phases := make([]Phase, nPhases)
			for p := range phases {
				tasks := make([]int, k)
				total := 0
				for a := range tasks {
					tasks[a] = rng.Intn(5)
					total += tasks[a]
				}
				if total == 0 {
					tasks[rng.Intn(k)] = 1
				}
				phases[p] = Phase{Tasks: tasks}
			}
			j := MustNew(k, "p", phases)
			profSpecs = append(profSpecs, sim.JobSpec{Source: j})
			dagSpecs = append(dagSpecs, sim.JobSpec{Graph: j.ToGraph()})
		}
		run := func(specs []sim.JobSpec) *sim.Result {
			res, err := sim.Run(sim.Config{
				K: k, Caps: caps, Scheduler: core.NewKRAD(k),
				Pick: dag.PickFIFO, ValidateAllotments: true,
			}, specs)
			if err != nil {
				t.Logf("run error: %v", err)
				return nil
			}
			return res
		}
		a, b := run(profSpecs), run(dagSpecs)
		if a == nil || b == nil {
			return false
		}
		if a.Makespan != b.Makespan || a.TotalResponse() != b.TotalResponse() {
			t.Logf("seed %d: profile makespan=%d resp=%d; dag makespan=%d resp=%d",
				seed, a.Makespan, a.TotalResponse(), b.Makespan, b.TotalResponse())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenOpts{
		{K: 0, Jobs: 1, MinPhases: 1, MaxPhases: 1, MaxParallelism: 1},
		{K: 1, Jobs: 0, MinPhases: 1, MaxPhases: 1, MaxParallelism: 1},
		{K: 1, Jobs: 1, MinPhases: 0, MaxPhases: 1, MaxParallelism: 1},
		{K: 1, Jobs: 1, MinPhases: 3, MaxPhases: 1, MaxParallelism: 1},
		{K: 1, Jobs: 1, MinPhases: 1, MaxPhases: 1, MaxParallelism: 0},
	}
	for i, o := range bad {
		if _, err := Generate(o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGenerateHugeParallelismIsCheap(t *testing.T) {
	// A million-task-wide phase costs one int: this must be instant.
	specs, err := Generate(GenOpts{
		K: 2, Jobs: 10, MinPhases: 2, MaxPhases: 5,
		MaxParallelism: 1_000_000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range specs {
		total += s.Source.TotalTasks()
	}
	if total < 1_000_000 {
		t.Errorf("expected millions of tasks, got %d", total)
	}
}

func TestProfileJobsRunThroughEngine(t *testing.T) {
	specs, err := Generate(GenOpts{
		K: 2, Jobs: 20, MinPhases: 1, MaxPhases: 6, MaxParallelism: 50, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		K: 2, Caps: []int{8, 8}, Scheduler: core.NewKRAD(2),
		ValidateAllotments: true,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan == 0 {
		t.Error("zero makespan")
	}
}

func TestProfileRejectsTraceTasks(t *testing.T) {
	specs, _ := Generate(GenOpts{K: 1, Jobs: 1, MinPhases: 1, MaxPhases: 1, MaxParallelism: 3, Seed: 1})
	_, err := sim.Run(sim.Config{
		K: 1, Caps: []int{2}, Scheduler: core.NewKRAD(1), Trace: sim.TraceTasks,
	}, specs)
	if err == nil {
		t.Error("TraceTasks accepted for profile jobs")
	}
}
