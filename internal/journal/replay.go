package journal

import (
	"fmt"

	"krad/internal/sim"
)

// Replay drives a freshly constructed engine through a journal's records,
// re-committing every mutation in its original order. Because the engine
// is deterministic — job runtime seeds derive from job IDs, scheduler
// state from the mutation sequence — the result is bit-identical to the
// engine that wrote the journal: same job IDs, same virtual clock, same
// per-job completions.
//
// Replay cross-checks what it can (assigned IDs against admit records,
// the clock against step records) and fails with a located error on the
// first divergence: a divergent replay means the journal belongs to a
// different configuration (scheduler, capacities, seed) and continuing
// would silently corrupt state.
func Replay(eng *sim.Engine, recs []Record) error {
	for i, rec := range recs {
		if err := replayOne(eng, rec, i); err != nil {
			return err
		}
	}
	return nil
}

func replayOne(eng *sim.Engine, rec Record, i int) error {
	switch rec.Type {
	case TypeSnap:
		if i != 0 {
			return fmt.Errorf("journal: replay record %d: snapshot not at journal head", i)
		}
		if err := eng.Restore(*rec.Snap); err != nil {
			return fmt.Errorf("journal: replay record %d (snap): %w", i, err)
		}
	case TypeAdmit, TypeBatch:
		specs := make([]sim.JobSpec, len(rec.Jobs))
		for k, j := range rec.Jobs {
			specs[k] = sim.JobSpec{Graph: j.Graph, Release: j.Release}
		}
		ids, err := eng.AdmitBatch(specs)
		if err != nil {
			return fmt.Errorf("journal: replay record %d (%s): %w", i, rec.Type, err)
		}
		if ids[0] != rec.Base {
			return fmt.Errorf("journal: replay record %d (%s): engine assigned job %d, journal says %d — journal does not match this configuration", i, rec.Type, ids[0], rec.Base)
		}
	case TypeCancel:
		if err := eng.Cancel(rec.ID); err != nil {
			return fmt.Errorf("journal: replay record %d (cancel %d): %w", i, rec.ID, err)
		}
	case TypeStep, TypeSteps:
		n := rec.N
		if rec.Type == TypeStep {
			n = 1
		}
		info, err := eng.StepN(n)
		if err != nil {
			return fmt.Errorf("journal: replay record %d (%s): %w", i, rec.Type, err)
		}
		if info.Idle {
			return fmt.Errorf("journal: replay record %d (%s): engine is idle but the journal recorded a step to %d — journal does not match this configuration", i, rec.Type, rec.Now)
		}
		if info.Steps != n {
			return fmt.Errorf("journal: replay record %d (%s): engine executed %d of %d recorded steps — journal does not match this configuration", i, rec.Type, info.Steps, n)
		}
		if info.Step != rec.Now {
			return fmt.Errorf("journal: replay record %d (%s): engine stepped to %d, journal says %d — journal does not match this configuration", i, rec.Type, info.Step, rec.Now)
		}
	default:
		return fmt.Errorf("journal: replay record %d: unknown type %q", i, rec.Type)
	}
	return nil
}
