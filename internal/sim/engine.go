// Package sim implements the K-resource scheduling model of Section 2 as a
// discrete-time simulator. Time advances in unit steps; at every step each
// active job reports its instantaneous per-category parallelism, the
// scheduler under test returns integer allotments bounded by the
// per-category processor counts, and each job executes that many ready
// tasks. The engine enforces the paper's schedule-validity conditions
// (precedence, category matching, capacity) and records the metrics the
// competitive analysis is stated in: makespan and response times.
package sim

import (
	"fmt"
	"sort"
	"sync"

	"krad/internal/dag"
	"krad/internal/sched"
)

// JobSpec describes one job submitted to a run: its shape and release
// time. Exactly one of Graph and Source must be set — Graph is the common
// K-DAG case; Source admits alternative representations such as
// internal/profile's compact phase jobs.
type JobSpec struct {
	Graph   *dag.Graph
	Source  JobSource
	Release int64
}

// source resolves the job's JobSource.
func (s JobSpec) source() JobSource {
	if s.Graph != nil {
		return GraphSource(s.Graph)
	}
	return s.Source
}

// Config parameterizes a run.
type Config struct {
	// K is the number of resource categories; every job graph must agree.
	K int
	// Caps[α−1] is Pα, the processor count of category α.
	Caps []int
	// Scheduler is the algorithm under test.
	Scheduler sched.Scheduler
	// Pick is the task-pick policy applied by every job when its allotment
	// is below its desire (see dag.PickPolicy). The scheduling theorems
	// hold for every policy; the adversarial experiments vary it.
	Pick dag.PickPolicy
	// Seed feeds the PickRandom policy (ignored otherwise).
	Seed int64
	// Speed is the resource-augmentation factor of the speed-augmentation
	// analysis framework (Kalyanasundaram–Pruhs; Edmonds' EQUI results):
	// every processor runs s ≥ 1 micro-rounds per time step, so it can
	// execute s dependent tasks in one step. 0 and 1 both mean normal
	// speed. Allotments are decided once per step and reused each
	// micro-round; completion times are whole steps.
	Speed int
	// MaxSteps aborts runaway simulations (e.g. a broken scheduler that
	// never allots anything). 0 means an automatic bound of
	// 4·(total work + max release) + 64.
	MaxSteps int64
	// Trace selects how much per-step detail to record.
	Trace TraceLevel
	// ValidateAllotments re-checks the scheduler's output every step and
	// fails the run on the first violation. Cheap; on by default in tests.
	ValidateAllotments bool
	// Observer, when non-nil, is invoked after every scheduling decision
	// with the step, the job views the scheduler saw, and the allotments
	// it returned. The slices are reused between steps — copy anything
	// retained. Used for instrumentation such as reallocation-churn
	// accounting (metrics.ChurnObserver).
	Observer func(t int64, jobs []sched.JobView, allot [][]int)
	// Parallel executes the per-job task-execution phase on multiple
	// goroutines. Only the execution phase is parallelized — scheduling
	// decisions stay sequential and results are identical to serial runs.
	Parallel bool
	// Workers bounds the goroutines used when Parallel is set; 0 means
	// a small fixed fan-out.
	Workers int
}

// jobState is the engine's bookkeeping for one job.
type jobState struct {
	id        int
	release   int64
	rt        RuntimeJob
	taskRT    TaskRuntime  // non-nil when the runtime reports task IDs
	floorRT   FloorRuntime // non-nil when the runtime pins processors
	work      []int
	span      int
	completed int64 // 0 while running (completion steps are ≥ 1)
}

// Run simulates the job set under cfg and returns the collected results.
// The specs may be given in any order; the engine sorts them by release
// time (stable, so equal releases keep submission order) and assigns job
// IDs 0, 1, 2, ... in that order — ascending ID is ascending arrival order,
// which is the queue order RAD's round-robin relies on.
func Run(cfg Config, specs []JobSpec) (*Result, error) {
	if err := checkConfig(&cfg, specs); err != nil {
		return nil, err
	}

	// Sort by release, stably, and build runtime state.
	ordered := make([]JobSpec, len(specs))
	copy(ordered, specs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Release < ordered[j].Release })

	jobs := make([]*jobState, len(ordered))
	totalWork := int64(0)
	maxRelease := int64(0)
	for i, s := range ordered {
		src := s.source()
		rt := src.NewRuntime(cfg.Pick, cfg.Seed+int64(i))
		js := &jobState{
			id:      i,
			release: s.Release,
			rt:      rt,
			work:    src.WorkVector(),
			span:    src.Span(),
		}
		js.taskRT, _ = rt.(TaskRuntime)
		js.floorRT, _ = rt.(FloorRuntime)
		if cfg.Trace >= TraceTasks && js.taskRT == nil {
			return nil, fmt.Errorf("sim: job %d (%s) runtime cannot report task IDs; TraceTasks requires DAG-backed jobs", i, src.Name())
		}
		jobs[i] = js
		totalWork += int64(src.TotalTasks())
		if s.Release > maxRelease {
			maxRelease = s.Release
		}
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 4*(totalWork+maxRelease) + 64
	}

	if cl, ok := cfg.Scheduler.(sched.Clairvoyant); ok {
		cl.SetOracle(oracle(jobs))
	}

	tr := newTrace(cfg.Trace, cfg.K)
	eng := &engine{cfg: cfg, jobs: jobs, trace: tr}
	if err := eng.run(maxSteps); err != nil {
		return nil, err
	}

	speed := cfg.Speed
	if speed < 1 {
		speed = 1
	}
	res := &Result{
		Scheduler:  cfg.Scheduler.Name(),
		K:          cfg.K,
		Caps:       append([]int(nil), cfg.Caps...),
		Speed:      speed,
		Makespan:   eng.makespan,
		Overloaded: eng.overloaded,
		Trace:      tr,
	}
	res.Jobs = make([]JobResult, len(jobs))
	for i, j := range jobs {
		res.Jobs[i] = JobResult{
			ID:         j.id,
			Release:    j.release,
			Completion: j.completed,
			Work:       j.work,
			Span:       j.span,
		}
	}
	return res, nil
}

func checkConfig(cfg *Config, specs []JobSpec) error {
	if cfg.K < 1 {
		return fmt.Errorf("sim: config K=%d, need ≥ 1", cfg.K)
	}
	if len(cfg.Caps) != cfg.K {
		return fmt.Errorf("sim: config has %d capacities for K=%d", len(cfg.Caps), cfg.K)
	}
	for a, p := range cfg.Caps {
		if p < 1 {
			return fmt.Errorf("sim: category %d has capacity %d, need ≥ 1", a+1, p)
		}
	}
	if cfg.Scheduler == nil {
		return fmt.Errorf("sim: config has no scheduler")
	}
	if cfg.Speed < 0 {
		return fmt.Errorf("sim: config Speed=%d, need ≥ 0", cfg.Speed)
	}
	if len(specs) == 0 {
		return fmt.Errorf("sim: empty job set")
	}
	for i, s := range specs {
		if s.Graph == nil && s.Source == nil {
			return fmt.Errorf("sim: job %d has neither graph nor source", i)
		}
		if s.Graph != nil && s.Source != nil {
			return fmt.Errorf("sim: job %d sets both graph and source", i)
		}
		src := s.source()
		if src.K() != cfg.K {
			return fmt.Errorf("sim: job %d (%s) declared for K=%d, run has K=%d", i, src.Name(), src.K(), cfg.K)
		}
		if src.TotalTasks() == 0 {
			return fmt.Errorf("sim: job %d (%s) is empty", i, src.Name())
		}
		if s.Release < 0 {
			return fmt.Errorf("sim: job %d has negative release %d", i, s.Release)
		}
	}
	return nil
}

// engine is the per-run mutable state.
type engine struct {
	cfg        Config
	jobs       []*jobState
	trace      *Trace
	makespan   int64
	overloaded []bool
}

func (e *engine) run(maxSteps int64) error {
	e.overloaded = make([]bool, e.cfg.K)
	next := 0 // first job not yet released, in e.jobs order
	active := make([]*jobState, 0, len(e.jobs))
	remaining := len(e.jobs)

	views := make([]sched.JobView, 0, len(e.jobs))
	var doneIDs []int

	for t := int64(1); ; t++ {
		if t > maxSteps {
			return fmt.Errorf("sim: scheduler %q exceeded %d steps with %d jobs unfinished — likely a non-work-conserving allotment bug", e.cfg.Scheduler.Name(), maxSteps, remaining)
		}
		// Release: a job released at r is schedulable from step r+1.
		for next < len(e.jobs) && e.jobs[next].release < t {
			active = append(active, e.jobs[next])
			next = next + 1
		}
		if len(active) == 0 {
			if next == len(e.jobs) {
				break // all done
			}
			// Idle interval: fast-forward to the next release.
			t = e.jobs[next].release // loop's t++ lands on release+1
			continue
		}

		// Snapshot desires (and non-preemptive floors, when the runtime
		// has them).
		views = views[:0]
		for _, j := range active {
			d := make([]int, e.cfg.K)
			for a := 1; a <= e.cfg.K; a++ {
				d[a-1] = j.rt.Desire(dag.Category(a))
			}
			v := sched.JobView{ID: j.id, Desire: d}
			if j.floorRT != nil {
				fl := make([]int, e.cfg.K)
				any := false
				for a := 1; a <= e.cfg.K; a++ {
					fl[a-1] = j.floorRT.Floor(dag.Category(a))
					if fl[a-1] > 0 {
						any = true
					}
				}
				if any {
					v.Floor = fl
				}
			}
			views = append(views, v)
		}
		for a := 0; a < e.cfg.K; a++ {
			activeCount := 0
			for _, v := range views {
				if v.Desire[a] > 0 {
					activeCount++
				}
			}
			if activeCount > e.cfg.Caps[a] {
				e.overloaded[a] = true
			}
		}

		allot := e.cfg.Scheduler.Allot(t, views, e.cfg.Caps)
		if e.cfg.Observer != nil {
			e.cfg.Observer(t, views, allot)
		}
		if e.cfg.ValidateAllotments {
			if err := sched.ValidateAllotments(views, e.cfg.Caps, allot); err != nil {
				return fmt.Errorf("sim: step %d: %w", t, err)
			}
		} else if len(allot) != len(views) {
			return fmt.Errorf("sim: step %d: scheduler returned %d rows for %d jobs", t, len(allot), len(views))
		}

		// Execute. Each job consumes min(allotment, desire) ready tasks per
		// category; completed tasks release successors at the step (or
		// micro-round, under speed augmentation) boundary.
		rounds := e.cfg.Speed
		if rounds < 1 {
			rounds = 1
		}
		for round := 0; round < rounds; round++ {
			if e.cfg.Parallel && e.trace.level < TraceTasks {
				e.executeParallel(t, active, allot)
			} else {
				e.executeSerial(t, active, allot)
			}
			for _, j := range active {
				j.rt.Advance()
			}
		}

		// Step boundary: detect completions.
		doneIDs = doneIDs[:0]
		out := active[:0]
		for _, j := range active {
			if j.rt.Done() {
				j.completed = t
				if t > e.makespan {
					e.makespan = t
				}
				doneIDs = append(doneIDs, j.id)
				remaining--
			} else {
				out = append(out, j)
			}
		}
		active = out
		if len(doneIDs) > 0 {
			if c, ok := e.cfg.Scheduler.(sched.Completer); ok {
				c.JobsDone(doneIDs)
			}
		}
		e.trace.endStep(t, len(active)+len(doneIDs), len(doneIDs))
		if remaining == 0 {
			break
		}
	}
	return nil
}

func (e *engine) executeSerial(t int64, active []*jobState, allot [][]int) {
	taskLevel := e.trace.level >= TraceTasks
	for i, j := range active {
		for a := 0; a < e.cfg.K; a++ {
			n := allot[i][a]
			if n == 0 {
				continue
			}
			if taskLevel {
				run := j.taskRT.ExecuteTasks(dag.Category(a+1), n)
				e.trace.record(t, j.id, a+1, run)
			} else {
				e.trace.add(t, a+1, j.rt.Execute(dag.Category(a+1), n))
			}
		}
	}
}

// executeParallel runs the execution phase over a fixed worker pool. Job
// instances are independent, so this is race-free; per-step aggregate trace
// counts are merged per worker. Results are bit-identical to serial runs.
func (e *engine) executeParallel(t int64, active []*jobState, allot [][]int) {
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	if workers > len(active) {
		workers = len(active)
	}
	if workers <= 1 {
		e.executeSerial(t, active, allot)
		return
	}
	counts := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]int, e.cfg.K)
			for i := w; i < len(active); i += workers {
				j := active[i]
				for a := 0; a < e.cfg.K; a++ {
					if n := allot[i][a]; n > 0 {
						local[a] += j.rt.Execute(dag.Category(a+1), n)
					}
				}
			}
			counts[w] = local
		}(w)
	}
	wg.Wait()
	for _, local := range counts {
		e.trace.recordCounts(t, local)
	}
}

// oracle adapts the engine's job table to sched.Oracle for clairvoyant
// baselines.
type oracle []*jobState

func (o oracle) RemainingWork(jobID int) []int {
	return o[jobID].rt.RemainingWork()
}

func (o oracle) ReleaseTime(jobID int) int64 {
	return o[jobID].release
}
