package sim

import (
	"errors"
	"fmt"

	"krad/internal/sched"
)

// ErrCheckpointUnsupported reports that the configured scheduler cannot
// serialize its cross-step state (it does not implement
// sched.Snapshotter), so idle-point checkpoints of this engine would not
// reproduce the pre-checkpoint process bit-for-bit. Journal compaction
// treats it as "keep the full journal" rather than as a failure.
var ErrCheckpointUnsupported = errors.New("sim: scheduler does not support state snapshots")

// CheckpointJob is one terminal (done or cancelled) job's record inside an
// EngineCheckpoint: enough to keep status queries and response accounting
// working across a restore, with no runtime state — terminal jobs have
// none.
type CheckpointJob struct {
	ID          int      `json:"id"`
	Release     int64    `json:"release"`
	Phase       JobPhase `json:"phase"`
	Completion  int64    `json:"completion,omitempty"`
	CancelledAt int64    `json:"cancelled_at,omitempty"`
	Work        []int    `json:"work"`
	Span        int      `json:"span"`
}

// EngineCheckpoint is the complete state of an idle engine: the clock, the
// terminal job table, cumulative counters, and the scheduler's serialized
// cross-step state. An idle engine (no pending, no active jobs) is fully
// described by these — every runtime object has been consumed — which is
// what makes checkpoints exact rather than approximate: restoring one
// into a fresh engine and driving it forward is bit-identical to having
// kept the original engine.
type EngineCheckpoint struct {
	Now        int64           `json:"now"`
	Makespan   int64           `json:"makespan"`
	TotalWork  int64           `json:"total_work"`
	MaxRelease int64           `json:"max_release"`
	ExecTotal  []int64         `json:"exec_total"`
	Overloaded []bool          `json:"overloaded,omitempty"`
	SchedState []byte          `json:"sched_state,omitempty"`
	Jobs       []CheckpointJob `json:"jobs,omitempty"`
	// NextID is the ID the next admission receives. Retired jobs are
	// omitted from Jobs, so the table alone no longer determines it.
	// Checkpoints from engines that never retired (and all pre-retirement
	// checkpoints) omit the field; it then defaults to len(Jobs).
	NextID int `json:"next_id,omitempty"`
	// Completed, Cancelled and Stolen carry the aggregate terminal
	// counters, which include retired jobs. When omitted (pre-retirement
	// checkpoints) they are derived from the Jobs table.
	Completed int `json:"completed,omitempty"`
	Cancelled int `json:"cancelled,omitempty"`
	Stolen    int `json:"stolen,omitempty"`
}

// Checkpoint captures the engine's state at an idle instant. It fails if
// the engine still has pending or active jobs (their runtime state is not
// serializable) or with ErrCheckpointUnsupported if the scheduler cannot
// snapshot its own state. Engines recording traces cannot be checkpointed:
// the trace is not carried across a restore.
func (e *Engine) Checkpoint() (EngineCheckpoint, error) {
	if !e.Idle() {
		return EngineCheckpoint{}, fmt.Errorf("sim: checkpoint requires an idle engine (%d pending, %d active)", e.pendingLen(), len(e.active))
	}
	if e.cfg.Trace != TraceNone {
		return EngineCheckpoint{}, fmt.Errorf("sim: checkpoint requires TraceNone (trace state is not restorable)")
	}
	snap, ok := e.cfg.Scheduler.(sched.Snapshotter)
	if !ok {
		return EngineCheckpoint{}, fmt.Errorf("%w: %s", ErrCheckpointUnsupported, e.cfg.Scheduler.Name())
	}
	state, err := snap.SnapshotState()
	if err != nil {
		// Composite schedulers discover mid-snapshot that a member cannot
		// serialize; either way the checkpoint cannot be taken, and callers
		// (journal compaction) should fall back to full replay.
		return EngineCheckpoint{}, fmt.Errorf("%w: %q: %v", ErrCheckpointUnsupported, e.cfg.Scheduler.Name(), err)
	}
	cp := EngineCheckpoint{
		Now:        e.now,
		Makespan:   e.makespan,
		TotalWork:  e.totalWork,
		MaxRelease: e.maxRelease,
		ExecTotal:  append([]int64(nil), e.execTotal...),
		Overloaded: append([]bool(nil), e.overloaded...),
		SchedState: state,
		Jobs:       make([]CheckpointJob, 0, len(e.jobs)),
		NextID:     len(e.jobs),
		Completed:  e.completedN,
		Cancelled:  e.cancelledN,
		Stolen:     e.stolenN,
	}
	for _, js := range e.jobs {
		if js == nil {
			continue // retired: only the aggregate counters carry over
		}
		cp.Jobs = append(cp.Jobs, CheckpointJob{
			ID:          js.id,
			Release:     js.release,
			Phase:       js.phase,
			Completion:  js.completed,
			CancelledAt: js.cancelledAt,
			Work:        append([]int(nil), js.work...),
			Span:        js.span,
		})
	}
	return cp, nil
}

// Restore loads a checkpoint into a freshly constructed engine: the clock,
// counters, terminal job table and scheduler state become exactly what
// Checkpoint saw. Job IDs continue from the checkpointed table, so
// admissions after a restore receive the same IDs the pre-checkpoint
// process would have assigned.
func (e *Engine) Restore(cp EngineCheckpoint) error {
	if e.now != 0 || len(e.jobs) != 0 {
		return fmt.Errorf("sim: restore requires a fresh engine (clock %d, %d jobs admitted)", e.now, len(e.jobs))
	}
	if cp.Now < 0 {
		return fmt.Errorf("sim: checkpoint clock %d is negative", cp.Now)
	}
	if cp.ExecTotal != nil && len(cp.ExecTotal) != e.cfg.K {
		return fmt.Errorf("sim: checkpoint has %d exec totals for K=%d", len(cp.ExecTotal), e.cfg.K)
	}
	if cp.Overloaded != nil && len(cp.Overloaded) != e.cfg.K {
		return fmt.Errorf("sim: checkpoint has %d overload flags for K=%d", len(cp.Overloaded), e.cfg.K)
	}
	nextID := cp.NextID
	if nextID == 0 {
		nextID = len(cp.Jobs) // pre-retirement checkpoints: dense table
	}
	if nextID < len(cp.Jobs) {
		return fmt.Errorf("sim: checkpoint next ID %d below its %d-job table", nextID, len(cp.Jobs))
	}
	for i, j := range cp.Jobs {
		if i > 0 && j.ID <= cp.Jobs[i-1].ID {
			return fmt.Errorf("sim: checkpoint job %d has ID %d after ID %d, want ascending IDs", i, j.ID, cp.Jobs[i-1].ID)
		}
		if j.ID < 0 || j.ID >= nextID {
			return fmt.Errorf("sim: checkpoint job %d has ID %d outside 0..%d", i, j.ID, nextID-1)
		}
		if j.Phase != JobDone && j.Phase != JobCancelled && j.Phase != JobStolen {
			return fmt.Errorf("sim: checkpoint job %d is %s; only terminal jobs can be checkpointed", j.ID, j.Phase)
		}
		if len(j.Work) != e.cfg.K {
			return fmt.Errorf("sim: checkpoint job %d has %d work categories for K=%d", j.ID, len(j.Work), e.cfg.K)
		}
	}
	tableDone, tableCancelled, tableStolen := 0, 0, 0
	for _, j := range cp.Jobs {
		switch j.Phase {
		case JobDone:
			tableDone++
		case JobStolen:
			tableStolen++
		default:
			tableCancelled++
		}
	}
	completedN, cancelledN, stolenN := cp.Completed, cp.Cancelled, cp.Stolen
	if completedN == 0 && cancelledN == 0 && stolenN == 0 {
		completedN, cancelledN, stolenN = tableDone, tableCancelled, tableStolen // pre-retirement
	}
	if completedN < tableDone || cancelledN < tableCancelled || stolenN < tableStolen {
		return fmt.Errorf("sim: checkpoint counters %d done/%d cancelled/%d stolen below its job table (%d/%d/%d)",
			completedN, cancelledN, stolenN, tableDone, tableCancelled, tableStolen)
	}
	if completedN+cancelledN+stolenN != nextID {
		return fmt.Errorf("sim: checkpoint counters %d done + %d cancelled + %d stolen don't cover %d admitted jobs",
			completedN, cancelledN, stolenN, nextID)
	}
	if cp.SchedState != nil {
		snap, ok := e.cfg.Scheduler.(sched.Snapshotter)
		if !ok {
			return fmt.Errorf("%w: %s (checkpoint carries scheduler state)", ErrCheckpointUnsupported, e.cfg.Scheduler.Name())
		}
		if err := snap.RestoreState(cp.SchedState); err != nil {
			return fmt.Errorf("sim: restore scheduler %q: %w", e.cfg.Scheduler.Name(), err)
		}
	}
	e.now = cp.Now
	e.makespan = cp.Makespan
	e.totalWork = cp.TotalWork
	e.maxRelease = cp.MaxRelease
	if cp.ExecTotal != nil {
		copy(e.execTotal, cp.ExecTotal)
	}
	if cp.Overloaded != nil {
		copy(e.overloaded, cp.Overloaded)
	}
	e.jobs = make([]*jobState, nextID)
	for _, j := range cp.Jobs {
		e.jobs[j.ID] = &jobState{
			id:          j.ID,
			release:     j.Release,
			work:        append([]int(nil), j.Work...),
			span:        j.Span,
			phase:       j.Phase,
			completed:   j.Completion,
			cancelledAt: j.CancelledAt,
		}
	}
	e.completedN = completedN
	e.cancelledN = cancelledN
	e.stolenN = stolenN
	return nil
}
