package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// waterfill is an independent reference implementation of max-min fair
// allocation (progressive filling): raise every unsatisfied job's
// allotment in lock-step until its desire is met or the capacity is
// exhausted. DEQ's recursive partition must produce exactly this
// allocation up to integer rounding: identical totals per job within one
// unit. The reference works in fractions and rounds at the end by
// largest-remainder, mirroring the real-valued analysis.
func waterfill(desires []int, p int) []float64 {
	out := make([]float64, len(desires))
	if len(desires) == 0 || p <= 0 {
		return out
	}
	type jd struct {
		idx, d int
	}
	sorted := make([]jd, len(desires))
	for i, d := range desires {
		sorted[i] = jd{i, d}
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].d < sorted[b].d })
	remaining := float64(p)
	level := 0.0
	for i := 0; i < len(sorted); i++ {
		left := len(sorted) - i
		// Raise the water level to the next desire or until capacity runs
		// out, whichever first.
		raise := float64(sorted[i].d) - level
		if raise*float64(left) <= remaining {
			remaining -= raise * float64(left)
			level = float64(sorted[i].d)
			out[sorted[i].idx] = level
		} else {
			level += remaining / float64(left)
			for j := i; j < len(sorted); j++ {
				out[sorted[j].idx] = level
			}
			remaining = 0
			break
		}
	}
	return out
}

// TestQuickDeqIsMaxMinFair: DEQ's integer allocation must match the
// max-min fair water level within one unit per job.
func TestQuickDeqIsMaxMinFair(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		desires := make([]int, n)
		for i := range desires {
			desires[i] = 1 + rng.Intn(20)
		}
		p := rng.Intn(60)
		got := Deq(desires, p, int(seed))
		want := waterfill(desires, p)
		for i := range desires {
			diff := float64(got[i]) - want[i]
			if diff < -1.0-1e-9 || diff > 1.0+1e-9 {
				t.Logf("seed %d: job %d deq=%d waterfill=%.3f (desires=%v p=%d)", seed, i, got[i], want[i], desires, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestWaterfillReference(t *testing.T) {
	// Sanity-check the reference itself on hand cases.
	w := waterfill([]int{1, 9, 9}, 9)
	if w[0] != 1 || w[1] != 4 || w[2] != 4 {
		t.Errorf("waterfill = %v, want [1 4 4]", w)
	}
	w = waterfill([]int{5, 5}, 20)
	if w[0] != 5 || w[1] != 5 {
		t.Errorf("waterfill over-capacity = %v", w)
	}
	w = waterfill([]int{4, 4, 4}, 2)
	for _, v := range w {
		if v < 0.666 || v > 0.667 {
			t.Errorf("waterfill scarce = %v", w)
		}
	}
}
