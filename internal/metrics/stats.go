package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, StdDev  float64
	P50, P90, P99 float64
}

// Summarize computes descriptive statistics. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of a sorted sample using
// linear interpolation between closest ranks. Panics if the sample is
// empty or p is outside [0, 1].
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("metrics: Percentile of empty sample")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("metrics: Percentile p=%v outside [0,1]", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g sd=%.3g",
		s.N, s.Min, s.Mean, s.P50, s.P90, s.P99, s.Max, s.StdDev)
}

// MaxFloat returns the maximum of a non-empty sample.
func MaxFloat(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
