package analysis

import (
	"fmt"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sim"
)

// RunE1 reproduces the Figure 1 model artifact: it builds representative
// K-DAG jobs (including the Figure 1 3-DAG itself), reports the model
// quantities the analysis is stated in (per-category work, span, maximum
// parallelism), and schedules each alone under K-RAD to confirm that a
// solo job completes in exactly max(span, work-limited) time on an
// unconstrained machine.
func RunE1(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "K-DAG job model metrics (Figure 1 / Section 2)",
		Header: []string{"job", "K", "tasks", "edges", "work/cat", "span", "maxpar/cat", "solo makespan"},
	}
	jobs := []*dag.Graph{
		dag.Figure1(),
		dag.RoundRobinChain(3, 12).Named("rr-chain-12"),
		dag.ForkJoin(3, 16, 1, 2, 3).Named("forkjoin-16"),
		dag.MapReduce(3, 12, 6, 1, 1, 2, 3).Named("mapreduce-12x6"),
		dag.Pipeline(3, 3, 8, func(s int) dag.Category { return dag.Category(s + 1) }).Named("pipeline-3x8"),
	}
	for _, g := range jobs {
		// A machine wide enough that the job is never processor-limited:
		// solo makespan must equal the span exactly.
		caps := g.MaxParallelism()
		for a := range caps {
			if caps[a] == 0 {
				caps[a] = 1
			}
		}
		res, err := sim.Run(sim.Config{
			K: g.K(), Caps: caps, Scheduler: core.NewKRAD(g.K()),
			Pick: dag.PickFIFO, ValidateAllotments: true,
		}, []sim.JobSpec{{Graph: g}})
		if err != nil {
			return nil, err
		}
		t.AddRow(g.Name(), g.K(), g.NumTasks(), g.NumEdges(),
			fmt.Sprint(g.WorkVector()), g.Span(), fmt.Sprint(g.MaxParallelism()), res.Makespan)
		if res.Makespan != int64(g.Span()) {
			t.AddNote("FAIL: %s solo makespan %d != span %d on an unconstrained machine", g.Name(), res.Makespan, g.Span())
		}
	}
	t.AddNote("expected shape: solo makespan equals span for every job — K-RAD wastes no step when a single job has the machine")
	return t, nil
}
