// Liveclient demonstrates the online scheduler service: it submits a
// trickle of randomly generated jobs to a kradd server over HTTP while
// the virtual clock runs, follows the SSE event stream, and reports each
// job's response time and slowdown against its solo execution bound.
//
// By default it self-hosts a server in-process so the demo is one command:
//
//	go run ./examples/liveclient
//
// Point it at a running daemon instead with:
//
//	go run ./cmd/kradd -addr :8080 -step 10ms &
//	go run ./examples/liveclient -addr http://localhost:8080
//
// With -burst the client submits every job up front through
// POST /v1/jobs/batch (one batch per shard, so round-robin placement
// spreads them evenly), then measures how fast the fleet drains the
// backlog. Against a self-hosted server this demonstrates the sharding
// payoff directly:
//
//	go run ./examples/liveclient -burst -jobs 64 -shards 1
//	go run ./examples/liveclient -burst -jobs 64 -shards 4
//
// In every mode the client audits itself before exiting: each submitted
// job ID is fetched back and must be in state "done". A silently lost
// submission makes the process exit non-zero.
//
// With -family the client picks the runtime family of the generated
// workload: "dag" (the default K-DAG mix), "moldable" (moldable tasks
// with concave speedup curves, submitted as {"mold": ...} bodies), or
// "mixed" (half each, exercising one engine over both families). In the
// moldable modes the client first demonstrates the server's located
// validation: it submits a deliberately malformed speedup curve and
// prints the 400 the server answers with before running the real
// workload:
//
//	go run ./examples/liveclient -family moldable
//	go run ./examples/liveclient -family mixed -jobs 24
//
// With -tenants N the client spreads submissions across N synthetic
// tenants via the X-Krad-Tenant header (a self-hosted server comes up
// with fairness enabled, so the tenants resolve to dynamically created
// equal-weight leaves). Submissions a tenant's fair share sheds with 429
// are retried after the server's Retry-After hint — separately from 503
// fleet backpressure, which means the whole service is full rather than
// one tenant over quota — and the final report breaks admitted, shed and
// retry counts out per tenant:
//
//	go run ./examples/liveclient -tenants 3 -jobs 24
//	go run ./examples/liveclient -burst -tenants 2 -jobs 64
//
// Submissions that bounce with 503 (admission backpressure, or a daemon
// whose journal disk has degraded) are retried: the client honors the
// server's Retry-After hint, layered under capped exponential backoff
// with jitter so a fleet of clients doesn't hammer in lockstep.
// Transport-level failures — connection refused or reset, the signature
// of a daemon restarting or a replication failover in progress — are
// retried on the same backoff but reported separately from 503s, so a
// failover experiment shows its reconnect story distinctly from
// backpressure. -max-retry-time caps the total wall clock any one
// request may spend retrying before the client gives up.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/fairshare"
	"krad/internal/metrics"
	"krad/internal/moldable"
	"krad/internal/sched"
	"krad/internal/server"
	"krad/internal/sim"
	"krad/internal/workload"
)

const (
	demoK = 2
)

var demoCaps = []int{4, 2}

func main() {
	log.SetFlags(0)
	log.SetPrefix("liveclient: ")
	var (
		addrFlag   = flag.String("addr", "", "kradd base URL (empty = self-host an in-process server)")
		jobsFlag   = flag.Int("jobs", 12, "number of jobs to submit")
		gapFlag    = flag.Duration("gap", 150*time.Millisecond, "wall-clock gap between submissions (trickle mode)")
		seedFlag   = flag.Int64("seed", 7, "workload seed")
		shardsFlag = flag.Int("shards", 1, "self-host: number of engine shards")
		placeFlag  = flag.String("placement", server.PlaceRoundRobin, "self-host: shard placement policy")
		burstFlag  = flag.Bool("burst", false, "submit all jobs up front via /v1/jobs/batch and measure drain throughput")
		tenantFlag = flag.Int("tenants", 0, "spread submissions across N synthetic tenants via the X-Krad-Tenant header (0 = no header; self-host enables fairness)")
		familyFlag = flag.String("family", "dag", "runtime family of the generated workload: dag, moldable or mixed")
		retryFlag  = flag.Duration("max-retry-time", 30*time.Second, "total wall clock one request may spend retrying 503/429/connection errors (0 = retry-count limit only)")
	)
	flag.Parse()
	maxRetryTime = *retryFlag

	base := *addrFlag
	if base == "" {
		// The trickle demo paces the clock so submissions interleave with
		// execution; the burst demo free-runs to measure raw throughput.
		step := 5 * time.Millisecond
		if *burstFlag {
			step = 0
		}
		base = selfHost(*shardsFlag, *placeFlag, step, *tenantFlag > 0)
		fmt.Printf("self-hosted kradd at %s (K=%d caps=%v, k-rad, shards=%d placement=%s fairness=%t)\n\n",
			base, demoK, demoCaps, *shardsFlag, *placeFlag, *tenantFlag > 0)
	}
	base = strings.TrimRight(base, "/")

	// The machine shape comes from the server, not from assumptions.
	stats, err := fetchStats(base)
	if err != nil {
		log.Fatalf("cannot reach %s: %v (start one with: go run ./cmd/kradd)", base, err)
	}
	fmt.Printf("server: scheduler=%s K=%d caps=%v shards=%d placement=%s\n",
		stats.Scheduler, stats.K, stats.Caps, stats.Shards, stats.Placement)

	// Generate the job mix client-side; the server only sees wire specs
	// (graph bodies for DAG jobs, moldable specs for moldable jobs).
	specs, err := generateWorkload(*familyFlag, stats.K, *jobsFlag, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}

	// Before the real workload, the moldable modes demonstrate the
	// server-side validation: a malformed speedup curve must bounce with a
	// located 400 and never reach the engine.
	if *familyFlag != "dag" {
		demoBadCurve(base)
	}

	var ids []int
	if *burstFlag {
		ids = runBurst(base, stats, specs, *tenantFlag)
	} else {
		ids = runTrickle(base, specs, *gapFlag, *tenantFlag)
	}

	// Audit every submission: fetch each ID back and require it done. A
	// job the server handed an ID for but never finished is a lost
	// submission — report it and exit non-zero.
	perShard := make(map[int]int)
	lost := 0
	for _, id := range ids {
		st, err := fetchJob(base, id)
		switch {
		case err != nil:
			log.Printf("job %d: %v", id, err)
			lost++
		case st.State != "done":
			log.Printf("job %d: state %q, want done", id, st.State)
			lost++
		default:
			perShard[server.ShardOf(id)]++
		}
	}
	shards := stats.Shards
	if shards < 1 {
		shards = 1
	}
	fmt.Println("\nper-shard completions:")
	for s := 0; s < shards; s++ {
		fmt.Printf("  shard %d: %3d jobs\n", s, perShard[s])
	}
	if retries503 > 0 || retriesConn > 0 {
		fmt.Printf("\nsubmission retries: %d × 503 backpressure (Retry-After honored), %d × connection refused/reset (daemon restart or failover)\n",
			retries503, retriesConn)
	} else {
		fmt.Println("\nsubmission retries: 0")
	}
	fmt.Printf("submission latency: %s\n", submitLat.Report())
	if *tenantFlag > 0 {
		fmt.Println("\nper-tenant admission (shed = 429 fair-share bounces, each retried):")
		for i := 0; i < *tenantFlag; i++ {
			c := tenantCount(tenantName(i))
			fmt.Printf("  %-8s admitted %3d  shed %3d  retries %3d\n", tenantName(i), c.admitted, c.shed, c.retries)
		}
	}
	if lost > 0 {
		log.Fatalf("%d of %d submissions lost", lost, len(ids))
	}

	if !*burstFlag {
		report(base, stats, ids)
	}
}

// runTrickle submits jobs one at a time with a wall-clock gap, watching
// the SSE stream for their completions. With tenants > 0 submissions
// rotate across the synthetic tenant headers.
func runTrickle(base string, specs []sim.JobSpec, gap time.Duration, tenants int) []int {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan server.Event, 1024)
	go streamEvents(ctx, base, events)

	ids := make([]int, 0, len(specs))
	for i, spec := range specs {
		tenant := ""
		if tenants > 0 {
			tenant = tenantName(i % tenants)
		}
		id, err := submit(base, tenant, spec)
		if err != nil {
			log.Fatalf("submit job %d: %v", i, err)
		}
		ids = append(ids, id)
		fam, tasks, span, work := describeSpec(spec)
		fmt.Printf("submitted job %2d  family=%-8s tasks=%-3d span=%-3d work=%v%s\n",
			id, fam, tasks, span, work, tenantSuffix(tenant))
		time.Sleep(gap)
	}

	// Wait for every submitted job to complete, watching the stream.
	want := make(map[int]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	deadline := time.After(30 * time.Second)
	var steps int
	for len(want) > 0 {
		select {
		case ev := <-events:
			steps++
			for _, id := range ev.Completed {
				if want[id] {
					delete(want, id)
					fmt.Printf("  step %4d: job %d done (%d still running)\n", ev.Step, id, len(want))
				}
			}
		case <-deadline:
			log.Fatalf("timed out; %d jobs unfinished", len(want))
		}
	}
	fmt.Printf("\nall %d jobs completed (watched %d step events)\n", len(ids), steps)
	return ids
}

// runBurst submits the whole workload at once — one batch per shard via
// POST /v1/jobs/batch (one batch per tenant instead when tenants > 0,
// since the tenant header covers the whole request) — then polls
// aggregate stats until the fleet has drained the backlog, reporting
// virtual steps per wall-clock second.
func runBurst(base string, before server.Stats, specs []sim.JobSpec, tenants int) []int {
	shards := before.Shards
	if shards < 1 {
		shards = 1
	}
	batches := shards
	if tenants > 0 {
		batches = tenants
	}
	var ids []int
	for b := 0; b < batches; b++ {
		var batch []sim.JobSpec
		for i := b; i < len(specs); i += batches {
			batch = append(batch, specs[i])
		}
		if len(batch) == 0 {
			continue
		}
		tenant := ""
		if tenants > 0 {
			tenant = tenantName(b)
		}
		batchIDs, shard, err := submitBatch(base, tenant, batch)
		if err != nil {
			log.Fatalf("batch %d: %v", b, err)
		}
		fmt.Printf("batch %d → shard %d (%d jobs)%s\n", b, shard, len(batchIDs), tenantSuffix(tenant))
		ids = append(ids, batchIDs...)
	}

	start := time.Now()
	deadline := start.Add(60 * time.Second)
	cur := before
	for cur.Completed-before.Completed < int64(len(ids)) {
		if time.Now().After(deadline) {
			log.Printf("timed out: %d/%d completed", cur.Completed-before.Completed, len(ids))
			break
		}
		time.Sleep(10 * time.Millisecond)
		var err error
		if cur, err = fetchStats(base); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	steps := cur.Steps - before.Steps
	fmt.Printf("\ndrained %d jobs in %v — %d virtual steps, %.0f steps/s aggregate\n",
		len(ids), elapsed.Round(time.Millisecond), steps, float64(steps)/elapsed.Seconds())
	return ids
}

// report prints each job's response time against its solo lower bound
// max(span, max_α ceil(work_α / P_α)) — the best any schedule could do
// for that job alone on one shard's machine.
func report(base string, stats server.Stats, ids []int) {
	type row struct {
		id, solo       int64
		family         string
		response, slow float64
	}
	rows := make([]row, 0, len(ids))
	for _, id := range ids {
		st, err := fetchJob(base, id)
		if err != nil {
			log.Fatal(err)
		}
		solo := int64(st.Span)
		for a, w := range st.Work {
			if lb := int64((w + stats.Caps[a] - 1) / stats.Caps[a]); lb > solo {
				solo = lb
			}
		}
		rows = append(rows, row{
			id: int64(id), solo: solo, family: st.Family,
			response: float64(st.Response),
			slow:     float64(st.Response) / float64(solo),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].slow > rows[j].slow })
	fmt.Println("\njob  family    response  solo-bound  slowdown")
	for _, r := range rows {
		fmt.Printf("%3d  %-8s  %8.0f  %10d  %7.2fx\n", r.id, r.family, r.response, r.solo, r.slow)
	}
}

// selfHost starts an in-process kradd on a loopback port and returns its
// base URL. Each shard gets its own K-RAD instance — schedulers are
// stateful and must not be shared across engines. With fair set, the
// server gates admission by fair share: the client's synthetic tenant
// headers resolve to dynamically created equal-weight leaves.
func selfHost(shards int, placement string, stepEvery time.Duration, fair bool) string {
	var fairCfg *fairshare.Config
	if fair {
		fairCfg = &fairshare.Config{}
	}
	svc, err := server.New(server.Config{
		Sim: sim.Config{
			// The floor layer makes the self-hosted server moldable-capable;
			// for pure-DAG workloads it is a transparent pass-through.
			K: demoK, Caps: demoCaps, Scheduler: sched.WithFloors(core.NewKRAD(demoK)),
			Pick: dag.PickFIFO, ValidateAllotments: true,
		},
		StepEvery:    stepEvery,
		Shards:       shards,
		Placement:    placement,
		NewScheduler: func() sched.Scheduler { return sched.WithFloors(core.NewKRAD(demoK)) },
		Fairness:     fairCfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, svc.Handler()) }()
	return "http://" + ln.Addr().String()
}

// jobStatus mirrors the GET /v1/jobs/{id} wire form.
type jobStatus struct {
	ID       int    `json:"id"`
	State    string `json:"state"`
	Family   string `json:"family"`
	Release  int64  `json:"release"`
	Response int64  `json:"response"`
	Work     []int  `json:"work"`
	Span     int    `json:"span"`
}

// retries503 counts submissions that bounced with 503 and were retried;
// retriesConn counts transport-level retries (connection refused or
// reset — a daemon restarting or failing over, not shedding load).
// Submissions run on one goroutine, so plain counters suffice.
var (
	retries503   int
	retriesConn  int
	maxRetryTime time.Duration
	// submitLat is the wall-clock latency histogram of accepted
	// submission requests — the same log-bucketed histogram kradreplay
	// uses (internal/metrics.LatencyHist), so a trickle demo and a
	// million-job replay report comparable percentiles.
	submitLat metrics.LatencyHist
)

// tenantCounts tracks one synthetic tenant's admission outcomes: jobs
// admitted, 429 fair-share bounces (each retried), and total retry waits.
type tenantCounts struct {
	admitted, shed, retries int
}

var tenantCounters = map[string]*tenantCounts{}

// tenantCount returns tenant's counter cell, creating it on first use.
func tenantCount(tenant string) *tenantCounts {
	c, ok := tenantCounters[tenant]
	if !ok {
		c = &tenantCounts{}
		tenantCounters[tenant] = c
	}
	return c
}

// tenantName names synthetic tenant i; the value is a queue-tree path.
func tenantName(i int) string { return fmt.Sprintf("team-%d", i) }

// tenantSuffix formats the report tag appended to submission lines.
func tenantSuffix(tenant string) string {
	if tenant == "" {
		return ""
	}
	return "  tenant=" + tenant
}

// isConnErr reports a transport-level failure worth retrying: the daemon
// refused the connection (restarting, or a failover target not serving
// yet) or cut it mid-request (reset/EOF — the process died under us).
// These are distinct from 503, which is a healthy daemon shedding load.
func isConnErr(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// postRetry posts a JSON body (tagged with the tenant header when tenant
// is non-empty), retrying 503 and 429 responses plus connection
// refused/reset transport errors. 503 is fleet backpressure — the whole
// service is full or degraded; 429 means this tenant exhausted its fair
// share while the service still has capacity, so the bounce is charged
// to the tenant's shed count before retrying; connection errors mean the
// daemon itself is down or mid-failover and are counted apart so the
// report separates the reconnect story from backpressure. Each retry
// waits at least the server's Retry-After hint (whole seconds on the
// wire) and at least the current backoff step — doubling from 25ms,
// capped at 2s — plus up to 50% jitter so concurrent clients
// desynchronize. Retrying stops at maxRetries attempts or when the next
// wait would cross -max-retry-time, whichever comes first. Any other
// status or error, success or failure, is returned to the caller as-is.
func postRetry(url, tenant string, body []byte) (*http.Response, error) {
	backoff := 25 * time.Millisecond
	const (
		maxBackoff = 2 * time.Second
		maxRetries = 20
	)
	start := time.Now()
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(server.TenantHeader, tenant)
		}
		attemptStart := time.Now()
		resp, err := http.DefaultClient.Do(req)
		status := 0
		retryAfter := ""
		switch {
		case err == nil && resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusTooManyRequests:
			submitLat.Observe(time.Since(attemptStart).Seconds())
			return resp, nil
		case err == nil:
			status = resp.StatusCode
			retryAfter = resp.Header.Get("Retry-After")
			resp.Body.Close()
		case isConnErr(err):
			// Retryable transport failure; falls through to the backoff.
		default:
			return nil, err
		}
		if attempt == maxRetries {
			if err != nil {
				return nil, fmt.Errorf("giving up after %d retries: %w", maxRetries, err)
			}
			return nil, fmt.Errorf("giving up after %d retries: server still answering %d", maxRetries, status)
		}
		wait := backoff
		if secs, aerr := strconv.Atoi(retryAfter); aerr == nil && secs > 0 {
			if hint := time.Duration(secs) * time.Second; hint > wait {
				wait = hint
			}
		}
		wait += time.Duration(rand.Int63n(int64(wait)/2 + 1))
		if maxRetryTime > 0 && time.Since(start)+wait > maxRetryTime {
			if err != nil {
				return nil, fmt.Errorf("-max-retry-time %v exhausted after %d retries: %w", maxRetryTime, attempt+1, err)
			}
			return nil, fmt.Errorf("-max-retry-time %v exhausted after %d retries: server still answering %d", maxRetryTime, attempt+1, status)
		}
		switch {
		case err != nil:
			retriesConn++
		case status == http.StatusTooManyRequests:
			tenantCount(tenant).shed++
		default:
			retries503++
		}
		if tenant != "" {
			tenantCount(tenant).retries++
		}
		time.Sleep(wait)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// generateWorkload builds the client-side job mix for the requested
// runtime family. "mixed" interleaves DAG and moldable jobs so one engine
// step loop runs both families side by side.
func generateWorkload(family string, k, jobs int, seed int64) ([]sim.JobSpec, error) {
	dagMix := func(n int, seed int64) ([]sim.JobSpec, error) {
		return workload.Mix{K: k, Jobs: n, MinSize: 4, MaxSize: 24, Seed: seed}.Generate()
	}
	moldMix := func(n int, seed int64) []sim.JobSpec {
		return moldable.Generate(moldable.GenOpts{
			K: k, Jobs: n, MinTasks: 4, MaxTasks: 12, MaxWork: 24, MaxProcs: 6, Seed: seed,
		})
	}
	switch family {
	case "dag":
		return dagMix(jobs, seed)
	case "moldable":
		return moldMix(jobs, seed), nil
	case "mixed":
		graphs, err := dagMix((jobs+1)/2, seed)
		if err != nil {
			return nil, err
		}
		molds := moldMix(jobs/2, seed+1)
		specs := make([]sim.JobSpec, 0, jobs)
		for i := 0; len(specs) < jobs; i++ {
			if i < len(graphs) {
				specs = append(specs, graphs[i])
			}
			if i < len(molds) {
				specs = append(specs, molds[i])
			}
		}
		return specs, nil
	default:
		return nil, fmt.Errorf("unknown -family %q (want dag, moldable or mixed)", family)
	}
}

// describeSpec summarizes a job spec for the submission log, working for
// both wire forms: graph-backed specs and moldable sources.
func describeSpec(spec sim.JobSpec) (family string, tasks, span int, work []int) {
	if spec.Graph != nil {
		return "dag", spec.Graph.NumTasks(), spec.Graph.Span(), spec.Graph.WorkVector()
	}
	src := spec.Source
	return sim.FamilyOf(src).String(), src.TotalTasks(), src.Span(), src.WorkVector()
}

// jobBody builds the POST /v1/jobs wire body for a spec: {"graph": ...}
// for DAG jobs, {"mold": ...} for moldable jobs.
func jobBody(spec sim.JobSpec) (map[string]any, error) {
	body := map[string]any{}
	if spec.Release != 0 {
		body["release"] = spec.Release
	}
	switch {
	case spec.Graph != nil:
		body["graph"] = spec.Graph
	default:
		mj, ok := spec.Source.(*moldable.Job)
		if !ok {
			return nil, fmt.Errorf("job source %T has no wire encoding", spec.Source)
		}
		body["mold"] = mj.Spec()
	}
	return body, nil
}

// demoBadCurve submits a deliberately malformed moldable spec — a
// super-linear power-law curve — and shows the located 400 the server
// answers with. Anything but a 400 is a bug worth dying over.
func demoBadCurve(base string) {
	bad := moldable.Spec{K: demoK, Name: "bad-curve", Tasks: []moldable.TaskSpec{
		{Cat: 1, Work: 8, Max: 4, Curve: moldable.CurveSpec{Type: moldable.CurvePowerLaw, Alpha: 1.7}},
	}}
	body, err := json.Marshal(map[string]any{"mold": bad})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := postRetry(base+"/v1/jobs", "", body)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatalf("bad-curve demo: decoding response: %v", err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		log.Fatalf("bad-curve demo: status %s, want 400 (%s)", resp.Status, out.Error)
	}
	fmt.Printf("validation demo: malformed curve rejected with 400: %s\n\n", out.Error)
}

func submit(base, tenant string, spec sim.JobSpec) (int, error) {
	payload, err := jobBody(spec)
	if err != nil {
		return -1, err
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return -1, err
	}
	resp, err := postRetry(base+"/v1/jobs", tenant, body)
	if err != nil {
		return -1, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return -1, fmt.Errorf("status %s", resp.Status)
	}
	var out struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return -1, err
	}
	if tenant != "" {
		tenantCount(tenant).admitted++
	}
	return out.ID, nil
}

// submitBatch posts one all-or-nothing batch; the server admits every
// job onto a single shard under one engine lock.
func submitBatch(base, tenant string, specs []sim.JobSpec) ([]int, int, error) {
	jobs := make([]map[string]any, len(specs))
	for i, spec := range specs {
		payload, err := jobBody(spec)
		if err != nil {
			return nil, 0, err
		}
		jobs[i] = payload
	}
	body, err := json.Marshal(map[string]any{"jobs": jobs})
	if err != nil {
		return nil, 0, err
	}
	resp, err := postRetry(base+"/v1/jobs/batch", tenant, body)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, 0, fmt.Errorf("status %s", resp.Status)
	}
	var out struct {
		IDs   []int `json:"ids"`
		Shard int   `json:"shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, 0, err
	}
	if len(out.IDs) != len(specs) {
		return nil, 0, fmt.Errorf("submitted %d jobs, got %d ids", len(specs), len(out.IDs))
	}
	if tenant != "" {
		tenantCount(tenant).admitted += len(out.IDs)
	}
	return out.IDs, out.Shard, nil
}

func fetchJob(base string, id int) (jobStatus, error) {
	var st jobStatus
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", base, id))
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("job %d: status %s", id, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func fetchStats(base string) (server.Stats, error) {
	var out struct {
		Stats server.Stats `json:"stats"`
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return out.Stats, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out.Stats, err
}

// streamEvents is a minimal SSE client: it forwards each "data:" payload
// on /v1/events as a decoded server.Event.
func streamEvents(ctx context.Context, base string, out chan<- server.Event) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/events", nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("event stream: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev server.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			continue
		}
		select {
		case out <- ev:
		case <-ctx.Done():
			return
		}
	}
}
