package analysis

import (
	"reflect"
	"testing"

	"krad/internal/sim"
	"krad/internal/workload"
)

// TestParallelExecutionEquivalence checks sim.Config.Parallel's contract
// for every registered scheduler: parallelizing the execution phase must
// not change a single observable — per-job completions, makespan, or the
// per-step trace. Randomized schedulers are covered too, since they are
// deterministically seeded and the scheduling phase stays sequential.
func TestParallelExecutionEquivalence(t *testing.T) {
	mix := workload.Mix{K: 3, Jobs: 14, MinSize: 4, MaxSize: 30, Seed: 42}
	specs, err := mix.GenerateOnline(workload.Poisson(2))
	if err != nil {
		t.Fatal(err)
	}
	caps := []int{3, 2, 2}

	for _, name := range SchedulerNames() {
		t.Run(name, func(t *testing.T) {
			run := func(parallel bool) *sim.Result {
				s, err := NewScheduler(name, 3)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					K: 3, Caps: caps, Scheduler: s, Seed: 5,
					Trace: sim.TraceSteps, ValidateAllotments: true,
					Parallel: parallel, Workers: 4,
				}, specs)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial, par := run(false), run(true)

			if serial.Makespan != par.Makespan {
				t.Errorf("makespan serial=%d parallel=%d", serial.Makespan, par.Makespan)
			}
			if !reflect.DeepEqual(serial.Jobs, par.Jobs) {
				t.Error("per-job results diverge under Parallel")
			}
			if !reflect.DeepEqual(serial.Overloaded, par.Overloaded) {
				t.Error("overload markers diverge under Parallel")
			}
			if !reflect.DeepEqual(serial.Trace.Steps, par.Trace.Steps) {
				t.Error("step traces diverge under Parallel")
			}
		})
	}
}
