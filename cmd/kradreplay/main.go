// Kradreplay is the closed-loop load generator for kradd: it replays an
// SWF archive trace or a synthetic job stream against a live daemon over
// HTTP and reports admission latency percentiles, drain throughput and
// backpressure behavior as a JSON document.
//
// Modes:
//
//	closed loop (default): -workers W submitters each keep exactly one
//	    request in flight — offered load adapts to what the daemon
//	    sustains, the honest way to measure a saturated submit path.
//	open loop (-rate R): submissions are paced at R jobs/s (poisson or
//	    uniform gaps via -arrivals) regardless of responses; latency
//	    then includes queueing delay when the daemon falls behind.
//
// Workload sources:
//
//	-trace log.swf   stream records out of a Standard Workload Format
//	    log (Parallel Workloads Archive); each becomes a rigid job in
//	    a category assigned by partition modulo -k.
//	-jobs N          without -trace: N synthetic jobs drawn from the
//	    -mix of runtime families (rigid, dag, mold).
//
// Backpressure: 429 (tenant over fair share) and 503 (queue full,
// journal degraded) responses are counted, the server's Retry-After
// hint honored (capped by -retry-cap), and the job retried. The final
// report separates accepted, shed and errored submissions.
//
// Examples:
//
//	kradd -addr :8080 -k 3 -caps 16,16,16 -queue 100000 -retire-done &
//	kradreplay -addr http://localhost:8080 -jobs 1000000 -workers 16
//	kradreplay -addr http://localhost:8080 -trace kth_sp2.swf -timescale 60
//	kradreplay -addr http://localhost:8080 -jobs 50000 -rate 5000 -arrivals poisson
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/moldable"
	"krad/internal/profile"
	"krad/internal/workload"
)

// wireJob is the client-side submit body (the decode-side lives in
// internal/server; clients keep their own encode-side struct so the
// server's pooled type stays private).
type wireJob struct {
	Graph   *dag.Graph         `json:"graph,omitempty"`
	Mold    *moldable.Spec     `json:"mold,omitempty"`
	Rigid   *profile.RigidSpec `json:"rigid,omitempty"`
	Release int64              `json:"release,omitempty"`
}

type options struct {
	addr     string
	trace    string
	jobs     int
	k        int
	scale    int64
	maxProcs int
	mix      string
	workers  int
	rate     float64
	arrivals string
	batch    int
	seed     int64
	skew     string
	skewKeys int
	retryCap time.Duration
	drain    bool
	drainMax time.Duration
	out      string
	quiet    bool
}

// report is the JSON document kradreplay emits.
type report struct {
	Addr        string  `json:"addr"`
	Source      string  `json:"source"`
	Mode        string  `json:"mode"`
	Workers     int     `json:"workers"`
	Batch       int     `json:"batch"`
	TargetRate  float64 `json:"target_rate,omitempty"`
	Skew        string  `json:"skew,omitempty"`
	Jobs        int64   `json:"jobs"`
	Accepted    int64   `json:"accepted"`
	Shed429     int64   `json:"shed_429"`
	Shed503     int64   `json:"shed_503"`
	Errors      int64   `json:"errors"`
	WallSeconds float64 `json:"wall_seconds"`
	SubmitRate  float64 `json:"submit_jobs_per_sec"`

	Latency metrics.LatencyReport `json:"admit_latency"`

	Drain   *drainReport  `json:"drain,omitempty"`
	Journal *journalDelta `json:"journal,omitempty"`
}

type drainReport struct {
	Jobs        int64   `json:"jobs"`
	Seconds     float64 `json:"seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	Steps       int64   `json:"virtual_steps"`
	StepsPerSec float64 `json:"steps_per_sec"`
}

// journalDelta is the fsync overhead the run imposed on the daemon,
// from /healthz journal stats before and after.
type journalDelta struct {
	Syncs        int64   `json:"syncs"`
	SyncSeconds  float64 `json:"sync_seconds"`
	SyncsPerKJob float64 `json:"syncs_per_1k_jobs"`
	// SyncShare is fsync seconds over the run's wall seconds: the
	// fraction of real time the journal spent inside fsync.
	SyncShare float64 `json:"sync_share_of_wall"`
}

// healthStats is the slice of /healthz this client reads.
type healthStats struct {
	Status string `json:"status"`
	Stats  struct {
		Steps     int64 `json:"steps"`
		K         int   `json:"k"`
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Rejected  int64 `json:"rejected"`
		InFlight  int   `json:"in_flight"`
		Journal   *struct {
			Syncs       int64   `json:"syncs"`
			SyncSeconds float64 `json:"sync_seconds"`
		} `json:"journal"`
	} `json:"stats"`
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "http://localhost:8080", "kradd base URL")
	flag.StringVar(&o.trace, "trace", "", "SWF trace to replay (empty = synthetic stream)")
	flag.IntVar(&o.jobs, "jobs", 10000, "jobs to submit (with -trace: cap, 0 = whole log)")
	flag.IntVar(&o.k, "k", 3, "resource categories of the target daemon")
	flag.Int64Var(&o.scale, "timescale", 60, "SWF seconds per virtual step")
	flag.IntVar(&o.maxProcs, "max-procs", 8, "cap per-job processor demand (0 = none)")
	flag.StringVar(&o.mix, "mix", "rigid=1", "synthetic family mix, e.g. rigid=0.8,dag=0.1,mold=0.1")
	flag.IntVar(&o.workers, "workers", 8, "concurrent submitters")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop target rate, jobs/s (0 = closed loop)")
	flag.StringVar(&o.arrivals, "arrivals", "poisson", "open-loop gap distribution: poisson or uniform")
	flag.IntVar(&o.batch, "batch", 1, "jobs per POST (>1 uses /v1/jobs/batch)")
	flag.Int64Var(&o.seed, "seed", 1, "synthetic workload seed")
	flag.StringVar(&o.skew, "skew", "", "skewed placement keys per batch: zipf (polynomial key frequencies), hot (90% one key), empty = no placement key; pair with kradd -placement hash")
	flag.IntVar(&o.skewKeys, "skew-keys", 64, "distinct placement keys -skew draws from")
	flag.DurationVar(&o.retryCap, "retry-cap", 2*time.Second, "cap on honoring Retry-After hints")
	flag.BoolVar(&o.drain, "drain", true, "wait for the daemon to drain and measure throughput")
	flag.DurationVar(&o.drainMax, "drain-timeout", 10*time.Minute, "give up draining after this long without progress")
	flag.StringVar(&o.out, "out", "", "write the JSON report here (empty = stdout)")
	flag.BoolVar(&o.quiet, "quiet", false, "suppress progress logging")
	flag.Parse()

	rep, err := run(o)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if o.out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(o.out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

func run(o options) (*report, error) {
	if o.workers < 1 || o.batch < 1 {
		return nil, fmt.Errorf("kradreplay: need workers ≥ 1 and batch ≥ 1")
	}
	before, err := fetchHealth(o.addr)
	if err != nil {
		return nil, fmt.Errorf("kradreplay: daemon not reachable: %w", err)
	}
	if before.Stats.K != o.k {
		return nil, fmt.Errorf("kradreplay: daemon has k=%d, client says -k=%d", before.Stats.K, o.k)
	}

	src, name, err := newSource(o)
	if err != nil {
		return nil, err
	}
	rep := &report{
		Addr: o.addr, Source: name, Workers: o.workers, Batch: o.batch,
		Mode: "closed-loop",
	}
	if o.rate > 0 {
		rep.Mode = "open-loop/" + o.arrivals
		rep.TargetRate = o.rate
	}

	keyGen, err := newKeyGen(o.skew, o.seed+2, o.skewKeys)
	if err != nil {
		return nil, err
	}
	if o.skew != "" && o.skew != "none" {
		rep.Skew = o.skew
	}

	jobs := make(chan workItem, o.workers*2)
	go feed(o, src, keyGen, jobs)

	var hist metrics.LatencyHist
	var accepted, shed429, shed503, errCount atomic.Int64
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range jobs {
				submitBatch(o, client, item, &hist, &accepted, &shed429, &shed503, &errCount)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	rep.Jobs = accepted.Load() + errCount.Load()
	rep.Accepted = accepted.Load()
	rep.Shed429 = shed429.Load()
	rep.Shed503 = shed503.Load()
	rep.Errors = errCount.Load()
	rep.WallSeconds = wall.Seconds()
	if wall > 0 {
		rep.SubmitRate = float64(rep.Accepted) / wall.Seconds()
	}
	rep.Latency = hist.Report()
	if !o.quiet {
		log.Printf("submitted %d jobs in %v (%.0f jobs/s): %s; shed 429=%d 503=%d errors=%d",
			rep.Accepted, wall.Round(time.Millisecond), rep.SubmitRate, rep.Latency, rep.Shed429, rep.Shed503, rep.Errors)
	}

	if o.drain && rep.Accepted > 0 {
		dr, err := waitDrain(o, before, rep.Accepted, start)
		if err != nil {
			return nil, err
		}
		rep.Drain = dr
	}
	after, err := fetchHealth(o.addr)
	if err != nil {
		return nil, err
	}
	if bj, aj := before.Stats.Journal, after.Stats.Journal; bj != nil && aj != nil {
		d := &journalDelta{
			Syncs:       aj.Syncs - bj.Syncs,
			SyncSeconds: aj.SyncSeconds - bj.SyncSeconds,
		}
		if rep.Accepted > 0 {
			d.SyncsPerKJob = float64(d.Syncs) * 1000 / float64(rep.Accepted)
		}
		if total := time.Since(start).Seconds(); total > 0 {
			d.SyncShare = d.SyncSeconds / total
		}
		rep.Journal = d
	}
	return rep, nil
}

// newSource builds the job iterator. It returns batches of exactly
// o.batch jobs (the tail may be shorter).
func newSource(o options) (func() ([]wireJob, error), string, error) {
	if o.trace != "" {
		f, err := os.Open(o.trace)
		if err != nil {
			return nil, "", err
		}
		rd := workload.NewSWFReader(f)
		emitted := 0
		next := func() ([]wireJob, error) {
			var out []wireJob
			for len(out) < o.batch {
				if o.jobs > 0 && emitted >= o.jobs {
					break
				}
				rec, err := rd.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return nil, err
				}
				if !rec.Usable() {
					continue
				}
				if o.maxProcs > 0 && rec.Procs > o.maxProcs {
					rec.Procs = o.maxProcs
				}
				cat := dag.Category((rec.Partition-1+o.k)%o.k + 1)
				if rec.Partition <= 0 {
					cat = dag.Category(emitted%o.k + 1)
				}
				sp, err := rec.RigidSpec(o.k, cat, o.scale)
				if err != nil {
					return nil, err
				}
				box := sp
				out = append(out, wireJob{Rigid: &box})
				emitted++
			}
			if len(out) == 0 {
				f.Close()
				return nil, io.EOF
			}
			return out, nil
		}
		return next, "swf:" + o.trace, nil
	}

	weights, err := parseMix(o.mix)
	if err != nil {
		return nil, "", err
	}
	rng := rand.New(rand.NewSource(o.seed))
	emitted := 0
	next := func() ([]wireJob, error) {
		if emitted >= o.jobs {
			return nil, io.EOF
		}
		n := o.batch
		if rest := o.jobs - emitted; n > rest {
			n = rest
		}
		out := make([]wireJob, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, synthJob(rng, o.k, weights, emitted+i))
		}
		emitted += n
		return out, nil
	}
	return next, "synthetic:" + o.mix, nil
}

// parseMix parses "rigid=0.8,dag=0.1,mold=0.1" into cumulative weights.
func parseMix(s string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		fam, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("kradreplay: bad -mix entry %q", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("kradreplay: bad -mix weight %q", part)
		}
		switch fam {
		case "rigid", "dag", "mold":
			out[fam] += w
		default:
			return nil, fmt.Errorf("kradreplay: unknown family %q in -mix (want rigid, dag, mold)", fam)
		}
	}
	total := 0.0
	for _, w := range out {
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("kradreplay: -mix has zero total weight")
	}
	return out, nil
}

// synthJob draws one synthetic job from the family mix: small rigid
// rectangles, tiny DAG chains, or single-task moldable jobs with a
// power-law speedup curve.
func synthJob(rng *rand.Rand, k int, weights map[string]float64, i int) wireJob {
	total := weights["rigid"] + weights["dag"] + weights["mold"]
	r := rng.Float64() * total
	cat := dag.Category(i%k + 1)
	switch {
	case r < weights["rigid"]:
		return wireJob{Rigid: &profile.RigidSpec{
			K: k, Name: fmt.Sprintf("syn-%d", i), Cat: int(cat),
			Procs: 1 + rng.Intn(4), Steps: 1 + rng.Intn(8),
		}}
	case r < weights["rigid"]+weights["dag"]:
		if rng.Intn(2) == 0 {
			return wireJob{Graph: dag.Singleton(k, cat)}
		}
		return wireJob{Graph: dag.RoundRobinChain(k, 2+rng.Intn(6))}
	default:
		return wireJob{Mold: &moldable.Spec{
			K: k, Name: fmt.Sprintf("syn-%d", i),
			Tasks: []moldable.TaskSpec{{
				Cat: int(cat), Work: 4 + rng.Intn(12), Max: 4,
				Curve: moldable.CurveSpec{Type: "powerlaw", Alpha: 0.8},
			}},
		}}
	}
}

// workItem is one batch plus the placement key it submits under ("" when
// -skew is off).
type workItem struct {
	jobs []wireJob
	key  string
}

// feed pushes job batches into the channel: as fast as workers take them
// in closed-loop mode, or paced at -rate in open-loop mode. keyGen, when
// set, stamps each batch with a skewed placement key.
func feed(o options, src func() ([]wireJob, error), keyGen func() string, jobs chan<- workItem) {
	defer close(jobs)
	rng := rand.New(rand.NewSource(o.seed + 1))
	var next time.Time
	for {
		batch, err := src()
		if err == io.EOF {
			return
		}
		if err != nil {
			log.Printf("kradreplay: workload source: %v", err)
			return
		}
		if o.rate > 0 {
			gap := float64(len(batch)) / o.rate // seconds this batch is worth
			d := gap
			if o.arrivals == "poisson" {
				d = rng.ExpFloat64() * gap
			}
			if next.IsZero() {
				next = time.Now()
			}
			next = next.Add(time.Duration(d * float64(time.Second)))
			if wait := time.Until(next); wait > 0 {
				time.Sleep(wait)
			}
		}
		item := workItem{jobs: batch}
		if keyGen != nil {
			item.key = keyGen()
		}
		jobs <- item
	}
}

// submitBatch posts one batch (singly via /v1/jobs when -batch=1),
// retrying shed submissions with the server's Retry-After hint. The
// item's placement key, when present, rides the request header so the
// daemon's hash placement concentrates the skewed stream.
func submitBatch(o options, client *http.Client, item workItem, hist *metrics.LatencyHist,
	accepted, shed429, shed503, errCount *atomic.Int64) {
	batch := item.jobs
	path := "/v1/jobs/batch"
	var body []byte
	var err error
	if len(batch) == 1 && o.batch == 1 {
		path = "/v1/jobs"
		body, err = json.Marshal(batch[0])
	} else {
		body, err = json.Marshal(struct {
			Jobs []wireJob `json:"jobs"`
		}{batch})
	}
	if err != nil {
		errCount.Add(int64(len(batch)))
		return
	}
	for attempt := 0; ; attempt++ {
		start := time.Now()
		req, err := http.NewRequest(http.MethodPost, o.addr+path, bytes.NewReader(body))
		if err != nil {
			errCount.Add(int64(len(batch)))
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if item.key != "" {
			req.Header.Set(placementKeyHeader, item.key)
		}
		resp, err := client.Do(req)
		if err != nil {
			errCount.Add(int64(len(batch)))
			return
		}
		lat := time.Since(start).Seconds()
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusCreated:
			hist.Observe(lat)
			accepted.Add(int64(len(batch)))
			return
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if resp.StatusCode == http.StatusTooManyRequests {
				shed429.Add(1)
			} else {
				shed503.Add(1)
			}
			if attempt >= 50 {
				errCount.Add(int64(len(batch)))
				return
			}
			time.Sleep(retryDelay(resp.Header.Get("Retry-After"), o.retryCap, attempt))
		default:
			errCount.Add(int64(len(batch)))
			return
		}
	}
}

// retryDelay honors the server's Retry-After hint, capped, with a small
// attempt-scaled floor so a missing header still backs off.
func retryDelay(header string, cap time.Duration, attempt int) time.Duration {
	d := time.Duration(10*(attempt+1)) * time.Millisecond
	if secs, err := strconv.Atoi(header); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > cap {
		d = cap
	}
	return d
}

// waitDrain polls /healthz until the daemon has completed everything this
// run submitted, returning drain throughput over the full run.
func waitDrain(o options, before *healthStats, accepted int64, start time.Time) (*drainReport, error) {
	target := before.Stats.Completed + accepted
	lastProgress := time.Now()
	lastDone := int64(-1)
	for {
		cur, err := fetchHealth(o.addr)
		if err != nil {
			return nil, err
		}
		if cur.Stats.Completed >= target {
			elapsed := time.Since(start)
			steps := cur.Stats.Steps - before.Stats.Steps
			dr := &drainReport{
				Jobs:    accepted,
				Seconds: elapsed.Seconds(),
				Steps:   steps,
			}
			if dr.Seconds > 0 {
				dr.JobsPerSec = float64(accepted) / dr.Seconds
				dr.StepsPerSec = float64(steps) / dr.Seconds
			}
			if !o.quiet {
				log.Printf("drained %d jobs in %v (%.0f jobs/s, %d virtual steps)",
					accepted, elapsed.Round(time.Millisecond), dr.JobsPerSec, steps)
			}
			return dr, nil
		}
		if cur.Stats.Completed != lastDone {
			lastDone = cur.Stats.Completed
			lastProgress = time.Now()
		} else if time.Since(lastProgress) > o.drainMax {
			return nil, fmt.Errorf("kradreplay: drain stalled at %d/%d completed", cur.Stats.Completed, target)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fetchHealth(addr string) (*healthStats, error) {
	resp, err := http.Get(addr + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var hs healthStats
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		return nil, err
	}
	return &hs, nil
}
