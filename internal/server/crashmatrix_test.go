package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/journal"
	"krad/internal/sim"
)

// TestCrashMatrix is the end-to-end durability harness: it builds the real
// kradd binary, SIGKILLs it at randomized points in the middle of a
// submission burst, restarts it over the same journal directory, and
// asserts the WAL contract held — every acknowledged admission survives,
// nothing half-applied appears, and the restarted daemon's drained state
// matches an oracle that replays the crashed run's journal in-process.
//
// The oracle works because the journal defines the interleaving: whatever
// wall-clock race the kill froze, the surviving records are the mutation
// sequence, and the engine is a pure function of it.
//
// Gated behind KRAD_CRASH_MATRIX=1 (it builds a binary and runs for
// seconds); KRAD_CRASH_POINTS overrides the kill-point count.
func TestCrashMatrix(t *testing.T) {
	if os.Getenv("KRAD_CRASH_MATRIX") != "1" {
		t.Skip("set KRAD_CRASH_MATRIX=1 to run the crash-matrix harness")
	}
	points := 3
	if v := os.Getenv("KRAD_CRASH_POINTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad KRAD_CRASH_POINTS %q", v)
		}
		points = n
	}
	seed := time.Now().UnixNano()
	t.Logf("crash-matrix seed %d (%d kill points)", seed, points)
	rng := rand.New(rand.NewSource(seed))

	bin := filepath.Join(t.TempDir(), "kradd")
	build := exec.Command("go", "build", "-o", bin, "krad/cmd/kradd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build kradd: %v\n%s", err, out)
	}

	for p := 0; p < points; p++ {
		t.Run(fmt.Sprintf("kill-%d", p), func(t *testing.T) {
			runCrashPoint(t, bin, rng.Int63n(120)+5)
		})
	}
}

func runCrashPoint(t *testing.T, bin string, killAfterMillis int64) {
	dir := t.TempDir()
	addr := freeAddr(t)
	daemon := startKradd(t, bin, dir, addr)

	// Burst submissions until the daemon dies under us, recording every
	// acknowledged (201) ID. The killer fires mid-burst after a random
	// delay, so the journal tail lands at an arbitrary byte.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(time.Duration(killAfterMillis) * time.Millisecond)
		_ = daemon.Process.Signal(syscall.SIGKILL)
	}()
	var acked []int
	client := &http.Client{Timeout: 2 * time.Second}
burst:
	for i := 0; ; i++ {
		id, status := trySubmit(t, client, addr, dag.UniformChain(1, 1+i%4, 1))
		switch status {
		case http.StatusCreated:
			acked = append(acked, id)
		case http.StatusServiceUnavailable:
			// Queue full: back off a step and keep bursting.
			time.Sleep(2 * time.Millisecond)
		default:
			break burst // daemon is gone (or mid-death): the burst is over
		}
	}
	<-killed
	_ = daemon.Wait()
	t.Logf("killed after %dms with %d acknowledged admissions", killAfterMillis, len(acked))

	// Oracle: replay a copy of the crashed journal in-process and drain.
	// The copy matters — the restarted daemon appends to the original.
	oraclePath := filepath.Join(t.TempDir(), "shard-000.wal")
	copyFile(t, filepath.Join(dir, "shard-000.wal"), oraclePath)
	_, recs, err := journal.Open(oraclePath, journal.Options{})
	if err != nil {
		t.Fatalf("oracle open: %v", err)
	}
	oracle, err := sim.NewEngine(sim.Config{
		K: 1, Caps: []int{2}, Scheduler: core.NewKRAD(1),
		Pick: dag.PickFIFO, Seed: 1, ValidateAllotments: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.Replay(oracle, recs); err != nil {
		t.Fatalf("oracle replay: %v", err)
	}
	for !oracle.Idle() {
		if _, err := oracle.Step(); err != nil {
			t.Fatalf("oracle drain: %v", err)
		}
	}
	snap := oracle.Snapshot()
	// Acknowledged implies journaled (-fsync=always): the ack only went out
	// after the append synced.
	if snap.Admitted < len(acked) {
		t.Fatalf("journal holds %d admissions but %d were acknowledged", snap.Admitted, len(acked))
	}

	// Restart over the same directory and let it drain.
	daemon2 := startKradd(t, bin, dir, addr)
	waitDrained(t, client, addr)
	stats := fetchStats(t, client, addr)
	if stats.Submitted != int64(snap.Admitted) || stats.Completed != int64(snap.Completed) || stats.Now != snap.Now {
		t.Fatalf("restarted daemon (submitted=%d completed=%d now=%d) diverges from oracle (admitted=%d completed=%d now=%d)",
			stats.Submitted, stats.Completed, stats.Now, snap.Admitted, snap.Completed, snap.Now)
	}
	for _, id := range acked {
		var got jobJSON
		resp, err := client.Get(fmt.Sprintf("http://%s/v1/jobs/%d", addr, id))
		if err != nil {
			t.Fatalf("query acked job %d: %v", id, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("acknowledged job %d lost after crash: status %d", id, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want, ok := oracle.Job(id)
		if !ok {
			t.Fatalf("acked job %d missing from oracle", id)
		}
		if got.State != want.Phase.String() || got.Completion != want.Completion || got.Release != want.Release {
			t.Fatalf("job %d: restarted daemon %+v, oracle %+v", id, got, want)
		}
	}
	// Clean shutdown must exit zero.
	_ = daemon2.Process.Signal(syscall.SIGTERM)
	if err := daemon2.Wait(); err != nil {
		t.Fatalf("restarted daemon exited uncleanly: %v", err)
	}
}

func startKradd(t *testing.T, bin, dir, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr, "-k", "1", "-caps", "2", "-sched", "k-rad",
		"-journal-dir", dir, "-fsync", "always", "-snapshot-every", "0",
		"-drain", "10s",
	)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
		if t.Failed() {
			t.Logf("kradd output:\n%s", logs.String())
		}
	})
	waitReady(t, addr)
	return cmd
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitReady(t *testing.T, addr string) {
	t.Helper()
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("kradd at %s never became ready", addr)
}

// trySubmit posts one job, returning the HTTP status (0 once the daemon
// is dead or the response was cut off mid-body — not acknowledged).
func trySubmit(t *testing.T, client *http.Client, addr string, g *dag.Graph) (int, int) {
	t.Helper()
	body, err := json.Marshal(submitRequest{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0 // connection refused/reset: the kill landed
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return 0, resp.StatusCode
	}
	var out struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0 // response cut off mid-body: not acknowledged
	}
	return out.ID, http.StatusCreated
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// krStats is the slice of the /healthz stats payload the harness checks.
type krStats struct {
	Now       int64 `json:"now"`
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	InFlight  int   `json:"in_flight"`
}

func fetchStats(t *testing.T, client *http.Client, addr string) krStats {
	t.Helper()
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Stats krStats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	return payload.Stats
}

func waitDrained(t *testing.T, client *http.Client, addr string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if st := fetchStats(t, client, addr); st.InFlight == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("restarted daemon never drained its replayed jobs")
}
