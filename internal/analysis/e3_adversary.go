package analysis

import (
	"fmt"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sim"
)

// RunE3 reproduces the Theorem 1 / Figure 3 lower-bound experiment. For
// each (K, Pmax, m) it materializes the adversarial job set and runs K-RAD
// twice:
//
//   - adversarial run: the big job is submitted last (so the deterministic
//     round-robin reaches its level-1 task at the end of the first cycle)
//     and every job defers critical-path tasks (PickCPLast) — the adversary
//     of the proof;
//   - benign run: big job first, critical-path-first picking — the choices
//     the optimal clairvoyant schedule makes.
//
// The table reports the measured adversarial makespan against the paper's
// worst-case formula m·K·PK + m·PK − m, the benign makespan against the
// closed-form optimum T* = K + m·PK − 1, and the resulting ratio against
// the limit K + 1 − 1/Pmax. Expected shape: ratio climbs toward the limit
// as m grows and never exceeds it.
func RunE3(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "Adversarial makespan lower bound (Figure 3 / Theorem 1)",
		Header: []string{"K", "Pmax", "m", "jobs", "T adversarial", "paper worst", "T benign", "T* closed", "ratio", "limit K+1-1/Pmax"},
	}
	type cfg struct{ k, p, m int }
	var sweep []cfg
	ms := []int{1, 2, 4, 8, 16}
	if opts.Quick {
		ms = []int{1, 2, 4}
	}
	for _, kp := range []struct{ k, p int }{{2, 2}, {2, 4}, {3, 2}, {3, 4}, {4, 4}, {5, 2}} {
		if opts.Quick && kp.k > 3 {
			continue
		}
		for _, m := range ms {
			sweep = append(sweep, cfg{kp.k, kp.p, m})
		}
	}

	for _, c := range sweep {
		caps := make([]int, c.k)
		for i := range caps {
			caps[i] = c.p
		}
		adv, err := dag.NewAdversarial(c.k, c.m, caps)
		if err != nil {
			return nil, err
		}
		run := func(bigLast bool, pick dag.PickPolicy) (int64, error) {
			jobs := adv.JobSet(bigLast)
			specs := make([]sim.JobSpec, len(jobs))
			for i, g := range jobs {
				specs[i] = sim.JobSpec{Graph: g}
			}
			res, err := sim.Run(sim.Config{
				K: c.k, Caps: caps, Scheduler: core.NewKRAD(c.k), Pick: pick,
			}, specs)
			if err != nil {
				return 0, err
			}
			return res.Makespan, nil
		}
		tAdv, err := run(true, dag.PickCPLast)
		if err != nil {
			return nil, fmt.Errorf("E3 adversarial K=%d P=%d m=%d: %w", c.k, c.p, c.m, err)
		}
		tGood, err := run(false, dag.PickCPFirst)
		if err != nil {
			return nil, fmt.Errorf("E3 benign K=%d P=%d m=%d: %w", c.k, c.p, c.m, err)
		}
		tStar := int64(adv.OptimalMakespan())
		ratio := float64(tAdv) / float64(tStar)
		limit := adv.LimitRatio()
		t.AddRow(c.k, c.p, c.m, adv.NumJobs(), tAdv, adv.WorstCaseMakespan(), tGood, tStar, ratio, limit)
		if ratio > limit+1e-9 {
			t.AddNote("FAIL: K=%d P=%d m=%d ratio %.3f exceeds the limit %.3f", c.k, c.p, c.m, ratio, limit)
		}
		if tAdv < int64(adv.WorstCaseMakespan()) {
			t.AddNote("FAIL: K=%d P=%d m=%d adversary weaker than the paper's bound (%d < %d)", c.k, c.p, c.m, tAdv, adv.WorstCaseMakespan())
		}
	}
	t.AddNote("expected shape: ratio → K+1−1/Pmax from below as m grows; benign runs match the closed-form optimum")
	return t, nil
}
