package analysis

import (
	"fmt"
	"sort"

	"krad/internal/dag"
)

// ExactMakespan computes the true optimal clairvoyant makespan T*(J) of a
// tiny batched job set by breadth-first search over execution states. A
// state is the set of executed tasks of every job; each step the search
// branches over every maximal feasible choice of ready tasks within the
// per-category capacities. Exponential — intended for instances with at
// most ~20 total tasks — but exact, which turns measured "ratio vs lower
// bound" numbers into measured "ratio vs optimum" numbers (experiment
// E20).
//
// Jobs must each have ≤ 64 tasks (state is one uint64 bitmask per job).
func ExactMakespan(k int, caps []int, jobs []*dag.Graph) (int, error) {
	if len(caps) != k {
		return 0, fmt.Errorf("analysis: %d caps for K=%d", len(caps), k)
	}
	total := 0
	for i, g := range jobs {
		if g.K() != k {
			return 0, fmt.Errorf("analysis: job %d has K=%d, want %d", i, g.K(), k)
		}
		if g.NumTasks() > 64 {
			return 0, fmt.Errorf("analysis: job %d has %d tasks; exact search caps at 64", i, g.NumTasks())
		}
		total += g.NumTasks()
	}
	if total > 24 {
		return 0, fmt.Errorf("analysis: %d total tasks; exact search caps at 24", total)
	}

	type state []uint64
	key := func(s state) string {
		b := make([]byte, 0, len(s)*8)
		for _, v := range s {
			for i := 0; i < 8; i++ {
				b = append(b, byte(v>>(8*i)))
			}
		}
		return string(b)
	}
	goal := make(state, len(jobs))
	for i, g := range jobs {
		goal[i] = (uint64(1) << g.NumTasks()) - 1
		if g.NumTasks() == 64 {
			goal[i] = ^uint64(0)
		}
	}
	isGoal := func(s state) bool {
		for i := range s {
			if s[i] != goal[i] {
				return false
			}
		}
		return true
	}

	// ready lists the ready tasks of job i in state s, per category.
	ready := func(g *dag.Graph, done uint64) [][]int {
		out := make([][]int, k)
		for id := 0; id < g.NumTasks(); id++ {
			if done&(1<<id) != 0 {
				continue
			}
			ok := true
			for _, p := range g.Predecessors(dag.TaskID(id)) {
				if done&(1<<p) == 0 {
					ok = false
					break
				}
			}
			if ok {
				c := int(g.Category(dag.TaskID(id))) - 1
				out[c] = append(out[c], id)
			}
		}
		return out
	}

	start := make(state, len(jobs))
	frontier := []state{start}
	seen := map[string]bool{key(start): true}
	for step := 0; step <= 4*total+4; step++ {
		var next []state
		for _, s := range frontier {
			if isGoal(s) {
				return step, nil
			}
			// Per category, enumerate which ready tasks run. Running more
			// tasks never hurts (unit tasks, no future conflicts), so only
			// maximal choices matter: if ready ≤ cap run all; otherwise
			// branch over every cap-subset.
			type slot struct{ job, task int }
			perCat := make([][][]slot, k) // category → choices → selected
			for a := 0; a < k; a++ {
				var pool []slot
				for j, g := range jobs {
					for _, id := range ready(g, s[j])[a] {
						pool = append(pool, slot{j, id})
					}
				}
				if len(pool) <= caps[a] {
					perCat[a] = [][]slot{pool}
					continue
				}
				var choices [][]slot
				var rec func(pos, from int, cur []slot)
				rec = func(pos, from int, cur []slot) {
					if pos == caps[a] {
						choices = append(choices, append([]slot(nil), cur...))
						return
					}
					for i := from; i <= len(pool)-(caps[a]-pos); i++ {
						rec(pos+1, i+1, append(cur, pool[i]))
					}
				}
				rec(0, 0, nil)
				perCat[a] = choices
			}
			// Cartesian product of per-category choices.
			var combine func(a int, cur state)
			combine = func(a int, cur state) {
				if a == k {
					kk := key(cur)
					if !seen[kk] {
						seen[kk] = true
						next = append(next, append(state(nil), cur...))
					}
					return
				}
				for _, choice := range perCat[a] {
					ns := append(state(nil), cur...)
					for _, sl := range choice {
						ns[sl.job] |= 1 << sl.task
					}
					combine(a+1, ns)
				}
			}
			combine(0, s)
		}
		if len(next) == 0 {
			// Every successor was already seen and no frontier state is
			// the goal — should not happen for valid inputs, but guard
			// against an infinite loop.
			break
		}
		// The seen map dedupes; sort for deterministic expansion order.
		sort.Slice(next, func(i, j int) bool { return key(next[i]) < key(next[j]) })
		frontier = next
	}
	return 0, fmt.Errorf("analysis: exact search did not terminate")
}
