package moldable_test

import (
	"reflect"
	"strings"
	"testing"

	"krad/internal/dag"
	"krad/internal/moldable"
)

// mustJob builds a job or fails the test.
func mustJob(t *testing.T, s moldable.Spec) *moldable.Job {
	t.Helper()
	j, err := moldable.FromSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestInstanceMoldsGreedily walks one hand-checked step: two independent
// linear tasks (work 8, useful 4) offered 6 processors — the first molds
// to its cap, the second squeezes into the leftover 2 slots and commits
// to the longer duration non-preemptively.
func TestInstanceMoldsGreedily(t *testing.T) {
	j := mustJob(t, moldable.Spec{K: 1, Tasks: []moldable.TaskSpec{
		{Cat: 1, Work: 8, Max: 4, Curve: pl(1)},
		{Cat: 1, Work: 8, Max: 4, Curve: pl(1)},
	}})
	in := moldable.NewInstance(j, dag.PickFIFO, 0)
	if got := in.Desire(1); got != 8 {
		t.Fatalf("initial Desire = %d, want 8 (two molding caps)", got)
	}
	if got := in.Floor(1); got != 0 {
		t.Fatalf("initial Floor = %d, want 0", got)
	}
	if used := in.Execute(1, 6); used != 6 {
		t.Fatalf("Execute(6) used %d, want 6", used)
	}
	in.Advance()
	// Task 0 runs on 4 procs for 2 steps (1 left), task 1 on 2 procs for
	// 4 steps (3 left): both pinned, nothing ready.
	if got := in.Floor(1); got != 6 {
		t.Fatalf("Floor after starts = %d, want 6", got)
	}
	if got := in.Desire(1); got != 6 {
		t.Fatalf("Desire after starts = %d, want 6 (pinned only)", got)
	}
	if got := in.RemainingWork(); got[0] != 4 {
		t.Fatalf("RemainingWork = %v, want [4] (1 + 3 lease steps)", got)
	}
	// Next step finishes task 0; its 4 processors come back at the
	// boundary, so this step still uses all 6.
	if used := in.Execute(1, 6); used != 6 {
		t.Fatalf("Execute used %d, want 6", used)
	}
	in.Advance()
	if got := in.Floor(1); got != 2 {
		t.Fatalf("Floor after first finish = %d, want 2", got)
	}
	for i := 0; i < 2; i++ {
		if in.Done() {
			t.Fatalf("Done after %d trailing steps, want 2", i)
		}
		in.Execute(1, 2)
		in.Advance()
	}
	if !in.Done() {
		t.Fatal("job not done after the last lease drained")
	}
}

// TestExecuteBelowFloorPanics pins the setup-bug guard: once a lease is in
// flight, offering fewer processors than the floor must panic with a
// message pointing at sched.WithFloors.
func TestExecuteBelowFloorPanics(t *testing.T) {
	j := mustJob(t, chainSpec(1, 1, 1, 16, 4))
	in := moldable.NewInstance(j, dag.PickFIFO, 0)
	in.Execute(1, 4) // start: 4 procs pinned for 4 steps
	in.Advance()
	for _, n := range []int{3, 0} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Execute(%d) below floor 4 did not panic", n)
				}
				if !strings.Contains(r.(string), "below floor") || !strings.Contains(r.(string), "WithFloors") {
					t.Fatalf("panic %q does not explain the floor contract", r)
				}
			}()
			in.Execute(1, n)
		}()
	}
}

// TestHoldWindow pins HoldFor's arithmetic on a single long lease: held
// windows must end two steps before the finish (a leap may never cross a
// completion), and any ready task cancels the hold.
func TestHoldWindow(t *testing.T) {
	j := mustJob(t, chainSpec(1, 1, 2, 64, 4)) // two chained tasks, 16 steps each
	in := moldable.NewInstance(j, dag.PickFIFO, 0)
	if got := in.HoldFor(); got != 0 {
		t.Fatalf("HoldFor with a ready task = %d, want 0", got)
	}
	in.Execute(1, 4)
	in.Advance()
	// Lease has 15 steps left: held for 13 more after the current one.
	if got := in.HoldFor(); got != 13 {
		t.Fatalf("HoldFor after start = %d, want 13", got)
	}
	in.Execute(1, 4)
	in.Advance()
	if got := in.HoldFor(); got != 12 {
		t.Fatalf("HoldFor one step later = %d, want 12", got)
	}
	// Drained instance: nothing in flight, nothing held.
	done := moldable.NewInstance(mustJob(t, chainSpec(1, 1, 1, 1, 1)), dag.PickFIFO, 0)
	done.Execute(1, 1)
	done.Advance()
	if got := done.HoldFor(); got != 0 {
		t.Fatalf("HoldFor on a finished instance = %d, want 0", got)
	}
}

// TestLeapHoldEquivalence is the hold-law contract: LeapHold(n) must leave
// the instance in exactly the state n rounds of Execute(floor)+Advance
// would — compared field by field via reflect on two instances of the
// same job.
func TestLeapHoldEquivalence(t *testing.T) {
	spec := moldable.Spec{K: 2, Name: "held", Tasks: []moldable.TaskSpec{
		{Cat: 1, Work: 120, Max: 4, Curve: pl(1)},               // 30 steps on 4
		{Cat: 2, Work: 90, Max: 16, Curve: pl(0.5)},             // useful 4: 45 steps
		{Cat: 1, Work: 40, Max: 2, Curve: moldable.CurveSpec{Type: moldable.CurveAmdahl, Serial: 0.2}},
	}, Edges: [][2]int{{0, 2}, {1, 2}}}
	j := mustJob(t, spec)
	leap := moldable.NewInstance(j, dag.PickFIFO, 0)
	step := moldable.NewInstance(j, dag.PickFIFO, 0)
	start := func(in *moldable.Instance) {
		for c := 1; c <= 2; c++ {
			in.Execute(dag.Category(c), in.Desire(dag.Category(c)))
		}
		in.Advance()
	}
	start(leap)
	start(step)
	hf := leap.HoldFor()
	if hf <= 0 {
		t.Fatalf("HoldFor = %d after starting both sources; want a long held window", hf)
	}
	// The engine's maximum window: HoldFor()+1 steps, ending one step
	// before the earliest completion.
	n := hf + 1
	leap.LeapHold(n)
	for i := int64(0); i < n; i++ {
		for c := 1; c <= 2; c++ {
			if fl := step.Floor(dag.Category(c)); fl > 0 {
				step.Execute(dag.Category(c), fl)
			}
		}
		step.Advance()
	}
	if !reflect.DeepEqual(leap, step) {
		t.Fatalf("LeapHold(%d) diverged from %d held rounds:\nleap: rem %v hold %d\nstep: rem %v hold %d",
			n, n, leap.RemainingWork(), leap.HoldFor(), step.RemainingWork(), step.HoldFor())
	}
	// Both must agree the window is exhausted: next finish too close.
	if got := leap.HoldFor(); got > 0 {
		t.Fatalf("HoldFor after a maximal leap = %d, want ≤ 0", got)
	}
}
