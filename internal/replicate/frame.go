// Package replicate streams a primary kradd's committed journal records
// to a warm-standby follower over TCP, so the follower's engines track the
// primary bit-identically and can take over on failure.
//
// The design leans entirely on the determinism the journal already
// guarantees (internal/journal): engine state is a pure function of the
// committed mutation sequence, so replication is record shipping, nothing
// more. The primary (Sender) pushes each shard's records in order, tagged
// with a per-shard sequence number — the 1-based count of mutations since
// the engine's birth. The follower (Receiver) applies them through the
// same replay path a restart uses and journals them itself, which makes
// its WAL a byte-identical prefix of the primary's.
//
// The wire format mirrors the WAL's framing: after an 8-byte stream magic
// in each direction, both sides exchange length-prefixed CRC-checked JSON
// frames:
//
//	"KRADREP\x01" | { uint32 LE payload length | uint32 LE CRC32-IEEE(payload) | payload }*
//
// A frame cut short by a dying connection is detected by the length
// prefix, a damaged one by the CRC; either way the reader drops the
// connection and the sender reconnects and resumes from the follower's
// acknowledged cursor — the sequence numbers make retransmission
// idempotent to detect (the follower refuses anything but next-expected).
//
// Split-brain safety comes from monotonic epochs: every frame carries the
// sender's epoch, a follower promotes by bumping its epoch, and a primary
// that ever observes a higher epoch fences itself permanently (refuses
// admissions with a located error). See DESIGN.md §5.4.
package replicate

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"krad/internal/journal"
)

// streamMagic opens each direction of a replication connection. The last
// byte is the protocol version; anything else is rejected as a version
// mismatch rather than guessed at.
var streamMagic = []byte("KRADREP\x01")

const (
	frameHeaderLen = 4 + 4 // payload length + CRC32
	// maxFrameLen bounds a single frame; larger declared lengths are
	// treated as stream damage. Matches the journal's record bound — a
	// frame carries at most a snapshot record plus a small batch.
	maxFrameLen = 128 << 20
)

// ErrStreamVersion reports a peer speaking an unknown protocol version
// (or not a replication peer at all).
var ErrStreamVersion = errors.New("replicate: unknown stream magic (version mismatch or not a replication peer)")

// ErrFrameCorrupt reports a frame whose CRC or payload does not check
// out. Unlike the journal's torn tail, a stream has no benign damage:
// TCP already guarantees ordering, so any mismatch means the connection
// must be dropped and re-established.
var ErrFrameCorrupt = errors.New("replicate: corrupt frame")

// FrameType discriminates replication frames.
type FrameType string

const (
	// FrameHello opens a primary→follower stream: it carries the
	// primary's epoch and shard count. The follower answers with
	// FrameHelloAck or FrameFence.
	FrameHello FrameType = "hello"
	// FrameHelloAck is the follower's answer: its epoch and, per shard,
	// the next sequence number it wants (Next). The primary resumes each
	// shard's stream from exactly there.
	FrameHelloAck FrameType = "hello-ack"
	// FrameRecs carries a batch of consecutive committed records of one
	// shard; Seq is the sequence number of the first.
	FrameRecs FrameType = "recs"
	// FrameSnap carries a single snapshot record of one shard, replacing
	// all records up to and including Seq — the catch-up path when the
	// primary compacted past what the follower has.
	FrameSnap FrameType = "snap"
	// FrameHeartbeat keeps an idle stream's lease alive; the follower
	// answers every heartbeat (and every applied batch) with FrameAck.
	FrameHeartbeat FrameType = "hb"
	// FrameAck reports the follower's applied position: Next holds, per
	// shard, the next sequence number it wants. Acks renew the primary's
	// lease.
	FrameAck FrameType = "ack"
	// FrameFence is the follower's refusal: its epoch exceeds the
	// sender's, so the sender is a deposed primary and must stop writing.
	FrameFence FrameType = "fence"
)

// Frame is one replication protocol message. Which fields are meaningful
// depends on T; Validate pins the per-type shape so a corrupt-but-
// CRC-valid frame is caught at the boundary, exactly like journal
// records.
type Frame struct {
	T FrameType `json:"t"`
	// Epoch is the sender's replication epoch; every frame carries it.
	Epoch int64 `json:"epoch"`
	// Shards is the fleet shard count (hello frames); both sides must
	// agree or replay would diverge.
	Shards int `json:"shards,omitempty"`
	// Shard is the shard index the records belong to (recs/snap frames).
	Shard int `json:"shard,omitempty"`
	// Seq is the sequence number of the first record (recs frames) or the
	// cursor the snapshot covers through (snap frames).
	Seq int64 `json:"seq,omitempty"`
	// Next holds per-shard next-wanted sequence numbers (hello-ack and
	// ack frames).
	Next []int64 `json:"next,omitempty"`
	// Recs carries the records (recs frames: one or more; snap frames:
	// exactly one snap record).
	Recs []journal.Record `json:"recs,omitempty"`
}

// Validate pins the per-type frame shape.
func (f Frame) Validate() error {
	if f.Epoch < 1 {
		return fmt.Errorf("replicate: %s frame carries epoch %d, want ≥ 1", f.T, f.Epoch)
	}
	switch f.T {
	case FrameHello:
		if f.Shards < 1 {
			return fmt.Errorf("replicate: hello frame carries %d shards, want ≥ 1", f.Shards)
		}
		if f.Shard != 0 || f.Seq != 0 || len(f.Next) != 0 || len(f.Recs) != 0 {
			return fmt.Errorf("replicate: hello frame carries stray fields")
		}
	case FrameHelloAck, FrameAck:
		if len(f.Next) == 0 {
			return fmt.Errorf("replicate: %s frame has no per-shard cursors", f.T)
		}
		for i, n := range f.Next {
			if n < 1 {
				return fmt.Errorf("replicate: %s frame shard %d wants sequence %d, want ≥ 1", f.T, i, n)
			}
		}
		if f.Shards != 0 || f.Shard != 0 || f.Seq != 0 || len(f.Recs) != 0 {
			return fmt.Errorf("replicate: %s frame carries stray fields", f.T)
		}
	case FrameRecs:
		if len(f.Recs) == 0 {
			return fmt.Errorf("replicate: recs frame has no records")
		}
		if f.Shard < 0 {
			return fmt.Errorf("replicate: recs frame has negative shard %d", f.Shard)
		}
		if f.Seq < 1 {
			return fmt.Errorf("replicate: recs frame starts at sequence %d, want ≥ 1", f.Seq)
		}
		if f.Shards != 0 || len(f.Next) != 0 {
			return fmt.Errorf("replicate: recs frame carries stray fields")
		}
		for i, r := range f.Recs {
			if r.Type == journal.TypeSnap {
				return fmt.Errorf("replicate: recs frame record %d is a snapshot (snapshots travel in snap frames)", i)
			}
		}
	case FrameSnap:
		if len(f.Recs) != 1 || f.Recs[0].Type != journal.TypeSnap {
			return fmt.Errorf("replicate: snap frame must carry exactly one snap record")
		}
		if f.Shard < 0 {
			return fmt.Errorf("replicate: snap frame has negative shard %d", f.Shard)
		}
		if f.Seq != f.Recs[0].Seq {
			return fmt.Errorf("replicate: snap frame cursor %d disagrees with its record's cursor %d", f.Seq, f.Recs[0].Seq)
		}
		if f.Shards != 0 || len(f.Next) != 0 {
			return fmt.Errorf("replicate: snap frame carries stray fields")
		}
	case FrameHeartbeat, FrameFence:
		if f.Shards != 0 || f.Shard != 0 || f.Seq != 0 || len(f.Next) != 0 || len(f.Recs) != 0 {
			return fmt.Errorf("replicate: %s frame carries stray fields", f.T)
		}
	default:
		return fmt.Errorf("replicate: unknown frame type %q", f.T)
	}
	return nil
}

// EncodeFrame validates and serializes a frame payload (the framing —
// length prefix and CRC — is the stream writer's business).
func EncodeFrame(f Frame) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(f)
}

// DecodeFrame parses and validates one frame payload. Both directions
// validate, so a corrupt-but-CRC-valid frame (impossible from a cut
// connection, possible from software bugs) is caught at the earliest
// boundary.
func DecodeFrame(payload []byte) (Frame, error) {
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return Frame{}, fmt.Errorf("%w: decode: %v", ErrFrameCorrupt, err)
	}
	if err := f.Validate(); err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
	}
	return f, nil
}

// WriteMagic opens a stream direction.
func WriteMagic(w io.Writer) error {
	_, err := w.Write(streamMagic)
	return err
}

// ReadMagic consumes and checks the peer's stream magic.
func ReadMagic(r io.Reader) error {
	var got [8]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return err
	}
	if string(got[:]) != string(streamMagic) {
		return fmt.Errorf("%w: header %q", ErrStreamVersion, got[:])
	}
	return nil
}

// WriteFrame frames and writes one message: length prefix, CRC, payload.
func WriteFrame(w io.Writer, f Frame) error {
	payload, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderLen:], payload)
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame from a stream positioned after the magic. A
// clean close between frames returns io.EOF; a connection cut mid-frame
// returns io.ErrUnexpectedEOF; damage returns ErrFrameCorrupt. In every
// non-nil case the connection is unusable and must be dropped.
func ReadFrame(br *bufio.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// io.EOF here is a clean close between frames; a partial header
		// already comes back as io.ErrUnexpectedEOF.
		return Frame{}, err
	}
	length := binary.LittleEndian.Uint32(hdr[:])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if length == 0 || length > maxFrameLen {
		return Frame{}, fmt.Errorf("%w: frame length %d", ErrFrameCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Frame{}, fmt.Errorf("%w: bad CRC", ErrFrameCorrupt)
	}
	return DecodeFrame(payload)
}

// DecodeStream parses a captured stream image — magic followed by frames
// — returning the intact frames and the byte length of the valid prefix.
// It is the offline mirror of ReadFrame used by the torn-frame tests and
// fuzzer: a frame cut short at the tail is reported by goodLen <
// len(data) with a nil error (exactly a journal torn tail), while a
// damaged frame is an error.
func DecodeStream(data []byte) (frames []Frame, goodLen int64, err error) {
	if len(data) < len(streamMagic) {
		return nil, 0, nil
	}
	if string(data[:len(streamMagic)]) != string(streamMagic) {
		return nil, 0, fmt.Errorf("%w: header %q", ErrStreamVersion, data[:len(streamMagic)])
	}
	off := int64(len(streamMagic))
	size := int64(len(data))
	for off < size {
		if size-off < frameHeaderLen {
			return frames, off, nil
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > maxFrameLen {
			return frames, off, fmt.Errorf("%w: frame %d: length %d", ErrFrameCorrupt, len(frames), length)
		}
		if off+frameHeaderLen+length > size {
			// Cut mid-frame: the tail the connection death left behind.
			return frames, off, nil
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+length]
		if crc32.ChecksumIEEE(payload) != sum {
			return frames, off, fmt.Errorf("%w: frame %d: bad CRC at offset %d", ErrFrameCorrupt, len(frames), off)
		}
		f, derr := DecodeFrame(payload)
		if derr != nil {
			return frames, off, fmt.Errorf("frame %d at offset %d: %w", len(frames), off, derr)
		}
		frames = append(frames, f)
		off += frameHeaderLen + length
	}
	return frames, off, nil
}
