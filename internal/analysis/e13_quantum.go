package analysis

import (
	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sched"
	"krad/internal/sim"
	"krad/internal/workload"
)

// RunE13 measures the cost of a scheduling quantum: real two-level systems
// (the RAD lineage's deployment model) cannot re-partition processors at
// every unit step, so sched.Quantized re-runs K-RAD's allocator only every
// L steps and holds allotments in between. The table sweeps L and reports
// makespan and MRT ratios against the same lower bounds as E4/E6. Expected
// shape: L = 1 reproduces plain K-RAD exactly; ratios degrade gracefully
// (roughly linearly in L for span-bound workloads) as allotments go stale
// between boundaries.
func RunE13(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "Scheduling-quantum sensitivity (two-level deployment model)",
		Header: []string{"quantum L", "jobs", "makespan", "makespan ratio", "Thm3 bound (L=1)", "MRT ratio", "vs L=1 makespan"},
	}
	const k = 3
	caps := []int{4, 4, 4}
	jobs := 40
	if opts.Quick {
		jobs = 20
	}
	specs, err := workload.Mix{
		K: k, Jobs: jobs, MinSize: 4, MaxSize: 50, Seed: opts.seed(),
	}.Generate()
	if err != nil {
		return nil, err
	}
	totalWork := int64(0)
	for _, s := range specs {
		totalWork += int64(s.Graph.NumTasks())
	}

	quanta := []int64{1, 2, 4, 8, 16}
	if opts.Quick {
		quanta = []int64{1, 4, 16}
	}
	var base int64
	for _, l := range quanta {
		var s sched.Scheduler = core.NewKRAD(k)
		if l > 1 {
			s = sched.NewQuantized(s, l)
		}
		res, err := sim.Run(sim.Config{
			K: k, Caps: caps, Scheduler: s, Pick: dag.PickFIFO,
			ValidateAllotments: true,
			// Stale allotments can idle a job for up to L−1 steps, so the
			// runaway guard must scale with the quantum.
			MaxSteps: (l + 4) * (4*totalWork + 64),
		}, specs)
		if err != nil {
			return nil, err
		}
		if l == 1 {
			base = res.Makespan
		}
		msRatio := CheckTheorem3(res).Measured
		mrtRatio := CheckTheorem6(res).Measured
		t.AddRow(l, jobs, res.Makespan, msRatio,
			metrics.MakespanCompetitiveLimit(k, caps), mrtRatio,
			float64(res.Makespan)/float64(base))
		if l == 1 && msRatio > metrics.MakespanCompetitiveLimit(k, caps) {
			t.AddNote("FAIL: L=1 violates Theorem 3")
		}
	}
	t.AddNote("the Theorem 3/6 guarantees are proven for L = 1 (allotments recomputed every step); larger quanta are outside the theorems and show the price of realistic reallocation periods")
	return t, nil
}
