package journal

import (
	"encoding/json"
	"fmt"

	"krad/internal/dag"
	"krad/internal/sim"
)

// Type discriminates journal records. The five kinds mirror the engine's
// committed mutations exactly: an engine driven through the same sequence
// of admits, cancels and steps is bit-identical to the one that wrote the
// journal (internal/sim's seeds are derived from job IDs, which replay in
// order).
type Type string

const (
	// TypeAdmit is a single-job admission (sim.Engine.Admit).
	TypeAdmit Type = "admit"
	// TypeBatch is an all-or-nothing burst admission (Engine.AdmitBatch).
	TypeBatch Type = "batch"
	// TypeCancel withdraws a pending or active job (Engine.Cancel).
	TypeCancel Type = "cancel"
	// TypeStep is one executed engine step; Now is the virtual clock after
	// it ran, recorded so replay divergence is detected immediately.
	TypeStep Type = "step"
	// TypeSteps is an aggregated batch of N ≥ 2 consecutive executed steps
	// (one Engine.StepN call); Now is the clock after the last of them.
	// Replay re-executes the batch with StepN, which is bit-identical to N
	// single steps, so one record replaces N without weakening the
	// cross-checks. Written by servers batching ticker catch-up; a journal
	// may freely mix step and steps records.
	TypeSteps Type = "steps"
	// TypeSnap is an idle-point checkpoint written by compaction; it is
	// only valid as the first record of a journal.
	TypeSnap Type = "snap"
)

// JobRecord is one admitted job inside an admit/batch record. Release is
// the absolute virtual release time after the server normalized "now"
// releases, so replay does not depend on the clock at decode time.
type JobRecord struct {
	Release int64      `json:"release"`
	Graph   *dag.Graph `json:"graph"`
}

// Record is one journaled engine mutation.
type Record struct {
	Type Type `json:"t"`
	// Base is the engine-assigned ID of the first admitted job (admit and
	// batch records); replay cross-checks it against the IDs the engine
	// re-assigns.
	Base int `json:"base,omitempty"`
	// Jobs carries the admitted specs (admit: exactly one; batch: one or
	// more).
	Jobs []JobRecord `json:"jobs,omitempty"`
	// ID is the cancelled job's engine-local ID (cancel records).
	ID int `json:"id,omitempty"`
	// Now is the virtual clock after the step executed (step and steps
	// records).
	Now int64 `json:"now,omitempty"`
	// N is the number of steps covered by a steps record (≥ 2; plain step
	// records omit it).
	N int64 `json:"n,omitempty"`
	// Snap is the engine checkpoint (snap records).
	Snap *sim.EngineCheckpoint `json:"snap,omitempty"`
}

// encodeRecord serializes a record payload (the framing — length prefix
// and CRC — is the Journal's business, not the record's).
func encodeRecord(r Record) ([]byte, error) {
	if err := validateRecord(r); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// decodeRecord parses and validates one payload. Both directions validate
// so a corrupt-but-CRC-valid record (impossible from torn writes, possible
// from software bugs) is caught at the earliest boundary.
func decodeRecord(payload []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, fmt.Errorf("journal: decode record: %w", err)
	}
	if err := validateRecord(r); err != nil {
		return Record{}, err
	}
	return r, nil
}

func validateRecord(r Record) error {
	switch r.Type {
	case TypeAdmit:
		if len(r.Jobs) != 1 {
			return fmt.Errorf("journal: admit record has %d jobs, want 1", len(r.Jobs))
		}
	case TypeBatch:
		if len(r.Jobs) == 0 {
			return fmt.Errorf("journal: batch record has no jobs")
		}
	case TypeCancel, TypeStep:
		if len(r.Jobs) != 0 || r.Snap != nil || r.N != 0 {
			return fmt.Errorf("journal: %s record carries stray fields", r.Type)
		}
	case TypeSteps:
		if len(r.Jobs) != 0 || r.Snap != nil {
			return fmt.Errorf("journal: steps record carries stray fields")
		}
		if r.N < 2 {
			return fmt.Errorf("journal: steps record covers %d steps, want ≥ 2", r.N)
		}
	case TypeSnap:
		if r.Snap == nil {
			return fmt.Errorf("journal: snap record has no checkpoint")
		}
	default:
		return fmt.Errorf("journal: unknown record type %q", r.Type)
	}
	if r.Type == TypeAdmit || r.Type == TypeBatch {
		if r.Base < 0 {
			return fmt.Errorf("journal: %s record has negative base ID %d", r.Type, r.Base)
		}
		for i, j := range r.Jobs {
			if j.Graph == nil {
				return fmt.Errorf("journal: %s record job %d has no graph", r.Type, i)
			}
			if j.Release < 0 {
				return fmt.Errorf("journal: %s record job %d has negative release %d", r.Type, i, j.Release)
			}
		}
	}
	return nil
}

// AdmitRecord builds the journal record for a committed admission: one
// job as TypeAdmit, several as TypeBatch. base is the first assigned
// engine-local ID; specs must be graph-backed with normalized (absolute)
// release times.
func AdmitRecord(base int, specs []sim.JobSpec) (Record, error) {
	rec := Record{Type: TypeBatch, Base: base, Jobs: make([]JobRecord, len(specs))}
	if len(specs) == 1 {
		rec.Type = TypeAdmit
	}
	for i, s := range specs {
		if s.Graph == nil {
			return Record{}, fmt.Errorf("journal: job %d is not graph-backed; only dag jobs are journalable", base+i)
		}
		rec.Jobs[i] = JobRecord{Release: s.Release, Graph: s.Graph}
	}
	return rec, nil
}

// CancelRecord builds the record for a committed cancellation.
func CancelRecord(id int) Record { return Record{Type: TypeCancel, ID: id} }

// StepRecord builds the record for one executed step ending at virtual
// time now.
func StepRecord(now int64) Record { return Record{Type: TypeStep, Now: now} }

// StepsRecord builds the record for n consecutive executed steps ending at
// virtual time now. n == 1 degrades to a plain step record, so journals
// written by batching servers stay byte-compatible with single-step
// readers whenever no batching actually happened.
func StepsRecord(n, now int64) Record {
	if n == 1 {
		return StepRecord(now)
	}
	return Record{Type: TypeSteps, Now: now, N: n}
}
