package server

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"krad/internal/dag"
	"krad/internal/profile"
	"krad/internal/sim"
)

func TestIDTableLifecycle(t *testing.T) {
	tab := newIDTable(2)
	if _, ok := tab.get(0); ok {
		t.Fatal("empty table reported a job")
	}
	tab.put(3, sim.JobStatus{Release: 5, Phase: sim.JobPending, Family: sim.FamilyProfile, Work: []int{4, 2}, Span: 3})
	st, ok := tab.get(3)
	if !ok || st.ID != 3 || st.Release != 5 || st.Phase != sim.JobPending || st.Work[0] != 4 || st.Work[1] != 2 || st.Span != 3 {
		t.Fatalf("get after put: %+v ok=%v", st, ok)
	}
	// Neighboring IDs on the same stripe (3, 19, 35) and holes in between
	// must stay independent.
	tab.put(35, sim.JobStatus{Release: 9, Phase: sim.JobPending, Work: []int{1, 1}, Span: 1})
	if _, ok := tab.get(19); ok {
		t.Fatal("hole between sparse IDs reported a job")
	}
	tab.setActive(3)
	tab.setDone(3, 12)
	if st, _ := tab.get(3); st.Phase != sim.JobDone || st.Completion != 12 {
		t.Fatalf("after setDone: %+v", st)
	}
	tab.setCancelled(35, 7)
	if st, _ := tab.get(35); st.Phase != sim.JobCancelled || st.CancelledAt != 7 {
		t.Fatalf("after setCancelled: %+v", st)
	}
	if rel, ok := tab.release(3); !ok || rel != 5 {
		t.Fatalf("release(3) = %d, %v", rel, ok)
	}
	if ph, done, ok := tab.phaseOf(3); !ok || ph != sim.JobDone || done != 12 {
		t.Fatalf("phaseOf(3) = %v, %d, %v", ph, done, ok)
	}
	// Transition writes on absent IDs are ignored, not materialized.
	tab.setDone(100, 1)
	if _, ok := tab.get(100); ok {
		t.Fatal("setDone materialized an absent job")
	}
	tab.reset()
	if _, ok := tab.get(3); ok {
		t.Fatal("reset kept an entry")
	}
}

// TestStatusLookupsDuringStepping hammers GET-style lookups from many
// goroutines while the step loop churns, under -race: lookups go through
// the striped index, not the shard lock, and must stay consistent.
func TestStatusLookupsDuringStepping(t *testing.T) {
	cfg := testConfig(2, 4, 4)
	cfg.MaxInFlight = 4096
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	const n = 200
	ids := make([]int, n)
	for i := range ids {
		id, err := svc.Submit(sim.JobSpec{Source: profile.MustNewRigid(2, "r", dag.Category(1+i%2), 2, 3)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range ids {
					st, ok := svc.Job(id)
					if !ok {
						t.Errorf("job %d vanished", id)
						return
					}
					if st.Phase == sim.JobDone && st.Completion < st.Release {
						t.Errorf("job %d completed before release: %+v", id, st)
						return
					}
				}
			}
		}(g)
	}
	waitFor(t, "drain", func() bool { return svc.Stats().Completed == n })
	close(stop)
	wg.Wait()
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRetireDoneServesStatusFromIndex: with RetireDone the engine forgets
// terminal jobs, but queries and cancel errors must be indistinguishable
// from the unretired service — the index answers for the engine.
func TestRetireDoneServesStatusFromIndex(t *testing.T) {
	cfg := testConfig(2, 4, 4)
	cfg.RetireDone = true
	cfg.MaxInFlight = 64
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	id, err := svc.Submit(sim.JobSpec{Source: profile.MustNewRigid(2, "r", 1, 2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "completion", func() bool { return svc.Stats().Completed == 1 })
	st, ok := svc.Job(id)
	if !ok || st.Phase != sim.JobDone || st.Completion == 0 || st.Work[0] != 6 {
		t.Fatalf("retired job's status lost: %+v ok=%v", st, ok)
	}
	// Cancelling a completed-and-retired job must produce the engine's
	// canonical wording, with the real completion step.
	err = svc.Cancel(id)
	if err == nil || !strings.Contains(err.Error(), "already completed at step") {
		t.Fatalf("cancel of retired job: %v", err)
	}
	if err := svc.Cancel(id + 1); err == nil || !strings.Contains(err.Error(), "no job") {
		t.Fatalf("cancel of unknown job: %v", err)
	}
	// The engine slot really was recycled: the next admission reuses it
	// but the ID keeps climbing.
	id2, err := svc.Submit(sim.JobSpec{Source: profile.MustNewRigid(2, "r2", 2, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id+1 {
		t.Fatalf("post-retire ID = %d, want %d", id2, id+1)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRetireDoneCancelledJob covers the cancel path under retirement: the
// cancelled job's status (with CancelledAt) survives in the index and a
// second cancel reports "already cancelled".
func TestRetireDoneCancelledJob(t *testing.T) {
	cfg := testConfig(1, 2)
	cfg.RetireDone = true
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Never started: the job stays pending until cancelled.
	id, err := svc.Submit(sim.JobSpec{Source: profile.MustNewRigid(1, "c", 1, 1, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st, ok := svc.Job(id)
	if !ok || st.Phase != sim.JobCancelled {
		t.Fatalf("cancelled job's status lost: %+v ok=%v", st, ok)
	}
	if err := svc.Cancel(id); err == nil || !strings.Contains(err.Error(), "already cancelled") {
		t.Fatalf("double cancel: %v", err)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRetireDoneJournalRestart: a journaled RetireDone service restarts
// into the same counters, and jobs replayed from the log are queryable
// again (replay rebuilds the index before retiring engine state).
func TestRetireDoneJournalRestart(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*Service, error) {
		cfg := testConfig(2, 4, 4)
		cfg.RetireDone = true
		cfg.Journal = &JournalConfig{Dir: dir}
		return New(cfg)
	}
	svc, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	id, err := svc.Submit(sim.JobSpec{Source: profile.MustNewRigid(2, "r", 1, 2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "completion", func() bool { return svc.Stats().Completed == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}

	svc2, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	st, ok := svc2.Job(id)
	if !ok || st.Phase != sim.JobDone {
		t.Fatalf("replayed job lost: %+v ok=%v", st, ok)
	}
	if got := svc2.Stats(); got.Submitted != 1 || got.Completed != 1 {
		t.Fatalf("replayed stats: %+v", got)
	}
	// And the engine state behind it is already recycled: a fresh
	// admission continues the ID sequence.
	id2, err := svc2.Submit(sim.JobSpec{Graph: dag.Singleton(2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id+1 {
		t.Fatalf("post-restart ID = %d, want %d", id2, id+1)
	}
	if err := svc2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
