package metrics

import (
	"testing"

	"krad/internal/sched"
)

func TestChurnStableAllotmentsAreFree(t *testing.T) {
	c := NewChurn(1)
	obs := c.Observer()
	jobs := []sched.JobView{{ID: 0, Desire: []int{2}}, {ID: 1, Desire: []int{2}}}
	allot := [][]int{{2}, {2}}
	obs(1, jobs, allot) // first step: 4 moved in, churn (4)/2 = 2
	obs(2, jobs, allot) // unchanged: 0
	obs(3, jobs, allot)
	if c.Total != 2 {
		t.Errorf("Total = %d, want 2 (initial assignment only)", c.Total)
	}
	if c.Steps != 3 {
		t.Errorf("Steps = %d", c.Steps)
	}
}

func TestChurnCountsReassignment(t *testing.T) {
	c := NewChurn(1)
	obs := c.Observer()
	jobs := []sched.JobView{{ID: 0, Desire: []int{4}}, {ID: 1, Desire: []int{4}}}
	obs(1, jobs, [][]int{{4}, {0}}) // job0 takes 4: churn 2
	obs(2, jobs, [][]int{{0}, {4}}) // all 4 move: churn 4
	if c.Total != 2+4 {
		t.Errorf("Total = %d, want 6", c.Total)
	}
}

func TestChurnCompletionsReleaseAllotment(t *testing.T) {
	c := NewChurn(1)
	obs := c.Observer()
	obs(1, []sched.JobView{{ID: 0, Desire: []int{3}}}, [][]int{{3}})
	// Job 0 completed; job 1 appears with the same 3 processors.
	obs(2, []sched.JobView{{ID: 1, Desire: []int{3}}}, [][]int{{3}})
	// Step 1: 3/2 = 1 (integer halving). Step 2: job1 gains 3, job0 releases 3 → 6/2 = 3.
	if c.Total != 1+3 {
		t.Errorf("Total = %d, want 4", c.Total)
	}
	if c.PerStep() != 2 {
		t.Errorf("PerStep = %v, want 2", c.PerStep())
	}
}

func TestChurnEmpty(t *testing.T) {
	c := NewChurn(2)
	if c.PerStep() != 0 {
		t.Error("PerStep on empty churn")
	}
}
