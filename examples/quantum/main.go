// Quantum: the two-level deployment question — how often must the system
// allocator actually run? The paper's guarantees assume allotments are
// recomputed every unit step; real runtimes re-partition processors on a
// scheduling quantum. This example wraps K-RAD in krad.NewQuantized and
// sweeps the quantum L, printing how the makespan and mean response
// degrade, plus the per-job slowdown distribution at the largest L.
//
//	go run ./examples/quantum [-jobs 40]
package main

import (
	"flag"
	"fmt"
	"log"

	"krad"
)

func main() {
	log.SetFlags(0)
	jobsFlag := flag.Int("jobs", 40, "batch size")
	seedFlag := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	const K = 3
	caps := []int{4, 4, 4}
	specs, err := krad.Mix{
		K: K, Jobs: *jobsFlag, MinSize: 4, MaxSize: 50, Seed: *seedFlag,
	}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	totalWork := int64(0)
	for _, s := range specs {
		totalWork += int64(s.Graph.NumTasks())
	}

	fmt.Printf("batch of %d jobs on K=%d, caps=%v\n\n", *jobsFlag, K, caps)
	fmt.Printf("%8s  %8s  %12s  %10s  %12s\n", "quantum", "makespan", "vs L=1", "mean resp", "max slowdown")

	var base int64
	for _, l := range []int64{1, 2, 4, 8, 16, 32} {
		var s krad.Scheduler = krad.NewKRAD(K)
		if l > 1 {
			s = krad.NewQuantized(s, l)
		}
		res, err := krad.Run(krad.Config{
			K: K, Caps: caps, Scheduler: s, Pick: krad.PickFIFO,
			ValidateAllotments: true,
			MaxSteps:           (l + 4) * (4*totalWork + 64),
		}, specs)
		if err != nil {
			log.Fatal(err)
		}
		if l == 1 {
			base = res.Makespan
		}
		fmt.Printf("%8d  %8d  %12.2f  %10.1f  %12.1f\n",
			l, res.Makespan, float64(res.Makespan)/float64(base),
			res.MeanResponse(), maxSlowdown(res))
	}

	fmt.Println("\nThe proven bounds apply at L = 1. The degradation above is the price")
	fmt.Println("of holding allotments fixed between allocator invocations: jobs whose")
	fmt.Println("parallelism shifted mid-quantum idle until the next boundary. Pick the")
	fmt.Println("quantum by how much of that price the deployment can afford.")
}

func maxSlowdown(res *krad.Result) float64 {
	worst := 1.0
	for _, j := range res.Jobs {
		ideal := int64(j.Span)
		for a, w := range j.Work {
			if v := int64((w + res.Caps[a] - 1) / res.Caps[a]); v > ideal {
				ideal = v
			}
		}
		if s := float64(j.Response()) / float64(ideal); s > worst {
			worst = s
		}
	}
	return worst
}
