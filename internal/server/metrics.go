package server

import (
	"fmt"
	"io"
	"math"
	"strings"

	"krad/internal/sim"
)

// histogram is a fixed-bucket cumulative histogram matching the Prometheus
// exposition model: counts[i] is the number of observations ≤ bounds[i],
// rendered with cumulative le labels plus a +Inf bucket.
type histogram struct {
	bounds []float64
	counts []uint64 // per-bucket (non-cumulative); len(bounds)+1, last is +Inf
	count  uint64
	sum    float64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// merge folds o's observations into h. Both histograms must share the
// same bucket bounds (every shard uses responseBuckets, so cross-shard
// merges are exact, not approximate).
func (h *histogram) merge(o *histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
}

// responseBuckets covers response times from one virtual step into the
// tens of thousands, doubling per bucket.
func responseBuckets() []float64 {
	b := make([]float64, 0, 16)
	for v := 1.0; v <= 32768; v *= 2 {
		b = append(b, v)
	}
	return b
}

// WriteMetrics renders the service's state in the Prometheus text
// exposition format (version 0.0.4). Fleet-wide families keep the
// pre-sharding names (counters summed, the response histogram merged
// bucket-by-bucket across shards, utilization weighted by per-shard
// elapsed time); per-shard krad_shard_* series labelled {shard="i"}
// expose each engine individually.
func (s *Service) WriteMetrics(w io.Writer) error {
	views := make([]shardView, len(s.shards))
	for i, sh := range s.shards {
		views[i] = sh.view()
	}
	subscribers, dropped := s.fan.stats()

	var steps, leapSteps, submitted, completed, cancelled, rejected, elapsed int64
	var maxNow int64
	var leapBlocked sim.LeapBlocked
	active, pending := 0, 0
	execTotal := make([]int64, s.cfg.Sim.K)
	hist := newHistogram(responseBuckets())
	for _, v := range views {
		steps += v.steps
		leapSteps += v.snap.LeapSteps
		leapBlocked.Add(v.snap.LeapBlocked)
		submitted += v.submitted
		completed += v.completed
		cancelled += v.cancelled
		rejected += v.rejected
		active += v.snap.Active
		pending += v.snap.Pending
		elapsed += v.snap.Now
		if v.snap.Now > maxNow {
			maxNow = v.snap.Now
		}
		for a, w := range v.snap.ExecutedTotal {
			execTotal[a] += w
		}
		hist.merge(&v.hist)
	}

	var b strings.Builder
	metric := func(name, help, typ string, v any, labels string) {
		// HELP/TYPE emitted once per family: callers group label variants.
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		}
		fmt.Fprintf(&b, "%s%s %v\n", name, labels, v)
	}

	metric("krad_shards", "Independent scheduler engines behind the admission front-end.", "gauge", len(views), "")
	metric("krad_steps_total", "Virtual scheduler steps executed (all shards).", "counter", steps, "")
	metric("krad_engine_leap_steps_total", "Virtual steps covered by event-leaps — executed in closed form without a fresh scheduling round (all shards).", "counter", leapSteps, "")
	leapFirst := true
	leapBlocked.Each(func(reason string, n int64) {
		help := ""
		if leapFirst {
			help = "Scheduling rounds with a multi-step budget that could not leap, by reason (all shards)."
			leapFirst = false
		}
		metric("krad_engine_leap_blocked_total", help, "counter", n, fmt.Sprintf(`{reason="%s"}`, reason))
	})
	metric("krad_virtual_time", "Furthest shard virtual clock (last executed step).", "gauge", maxNow, "")
	metric("krad_jobs_submitted_total", "Jobs admitted.", "counter", submitted, "")
	metric("krad_jobs_completed_total", "Jobs completed.", "counter", completed, "")
	metric("krad_jobs_cancelled_total", "Jobs cancelled.", "counter", cancelled, "")
	metric("krad_jobs_rejected_total", "Submissions rejected by admission backpressure.", "counter", rejected, "")
	metric("krad_jobs_active", "Jobs currently executing.", "gauge", active, "")
	metric("krad_jobs_pending", "Admitted jobs awaiting release.", "gauge", pending, "")
	metric("krad_queue_depth", "In-flight jobs (pending + active) against the admission bound.", "gauge", active+pending, "")
	metric("krad_events_dropped_total", "Step events dropped on slow subscribers.", "counter", dropped, "")
	metric("krad_event_subscribers", "Connected event subscribers.", "gauge", subscribers, "")

	first := true
	for a := 0; a < s.cfg.Sim.K; a++ {
		u := 0.0
		if elapsed > 0 {
			u = float64(execTotal[a]) / (float64(views[0].snap.Caps[a]) * float64(elapsed))
		}
		help := ""
		if first {
			help = "Cumulative busy fraction per resource category, weighted across shards."
			first = false
		}
		metric("krad_utilization", help, "gauge", fmt.Sprintf("%g", u), fmt.Sprintf(`{category="%d"}`, a+1))
	}

	// Per-shard series: one labelled sample per engine.
	perShard := []struct {
		name, help, typ string
		value           func(v shardView) any
	}{
		{"krad_shard_steps_total", "Virtual steps executed by one shard.", "counter", func(v shardView) any { return v.steps }},
		{"krad_shard_virtual_time", "One shard's virtual clock.", "gauge", func(v shardView) any { return v.snap.Now }},
		{"krad_shard_jobs_submitted_total", "Jobs admitted to one shard.", "counter", func(v shardView) any { return v.submitted }},
		{"krad_shard_jobs_completed_total", "Jobs completed on one shard.", "counter", func(v shardView) any { return v.completed }},
		{"krad_shard_jobs_cancelled_total", "Jobs cancelled on one shard.", "counter", func(v shardView) any { return v.cancelled }},
		{"krad_shard_jobs_rejected_total", "Submissions rejected by one shard's admission bound.", "counter", func(v shardView) any { return v.rejected }},
		{"krad_shard_jobs_active", "Jobs currently executing on one shard.", "gauge", func(v shardView) any { return v.snap.Active }},
		{"krad_shard_jobs_pending", "Admitted jobs awaiting release on one shard.", "gauge", func(v shardView) any { return v.snap.Pending }},
		{"krad_shard_queue_depth", "One shard's in-flight jobs against its admission share.", "gauge", func(v shardView) any { return v.snap.Active + v.snap.Pending }},
	}
	for _, m := range perShard {
		for i, v := range views {
			help := ""
			if i == 0 {
				help = m.help
			}
			metric(m.name, help, m.typ, m.value(v), fmt.Sprintf(`{shard="%d"}`, v.idx))
		}
	}

	// Steal families appear only when work stealing is enabled, so a
	// steal-free deployment's exposition stays bit-identical to earlier
	// builds.
	if s.cfg.Steal {
		var stolenOut, stolenIn, estWork int64
		for _, v := range views {
			stolenOut += int64(v.snap.Stolen)
			stolenIn += v.stolenIn
			estWork += v.estWork
		}
		metric("krad_jobs_stolen_total", "Jobs moved off their admission shard by work stealing (victim side).", "counter", stolenOut, "")
		metric("krad_jobs_stolen_in_total", "Jobs re-admitted by thieves (matches krad_jobs_stolen_total when no steal is mid-repair).", "counter", stolenIn, "")
		metric("krad_est_work", "Estimated remaining work across the fleet (task-steps) — the work-aware placement gauge.", "gauge", estWork, "")
		perSteal := []struct {
			name, help, typ string
			value           func(v shardView) any
		}{
			{"krad_shard_jobs_stolen_out_total", "Jobs stolen away from one shard.", "counter", func(v shardView) any { return v.snap.Stolen }},
			{"krad_shard_jobs_stolen_in_total", "Jobs one shard re-admitted from victims.", "counter", func(v shardView) any { return v.stolenIn }},
			{"krad_shard_est_work", "One shard's estimated remaining work (task-steps).", "gauge", func(v shardView) any { return v.estWork }},
		}
		for _, m := range perSteal {
			for i, v := range views {
				help := ""
				if i == 0 {
					help = m.help
				}
				metric(m.name, help, m.typ, m.value(v), fmt.Sprintf(`{shard="%d"}`, v.idx))
			}
		}
	}

	// Journal families appear only when journaling is enabled, so a
	// journal-free deployment's exposition stays bit-identical to builds
	// before durability existed.
	if js := s.journalStats(); js != nil {
		metric("krad_journal_records", "Write-ahead journal records across shards (replay length of a crash right now).", "gauge", js.Records, "")
		metric("krad_journal_appended_total", "Journal records appended since startup.", "counter", js.Appended, "")
		metric("krad_journal_compactions_total", "Journal snapshot compactions since startup.", "counter", js.Compactions, "")
		metric("krad_journal_size_bytes", "Journal file bytes across shards.", "gauge", js.SizeBytes, "")
		metric("krad_journal_syncs_total", "Journal fsyncs issued across shards.", "counter", js.Syncs, "")
		metric("krad_journal_sync_seconds_total", "Cumulative wall time spent inside journal fsyncs across shards.", "counter", fmt.Sprintf("%g", js.SyncSeconds), "")
		metric("krad_journal_degraded_shards", "Shards whose journal latched a write failure (admission suspended).", "gauge", js.Degraded, "")
	}

	// Replication families appear only when replication is configured, so
	// a standalone deployment's exposition stays bit-identical to builds
	// before warm standbys existed.
	if rs := s.replicationStats(); rs != nil {
		b2i := func(v bool) int {
			if v {
				return 1
			}
			return 0
		}
		switch {
		case rs.Primary != nil:
			p := rs.Primary
			metric("krad_replicate_epoch", "Replication epoch this daemon believes current.", "gauge", p.Epoch, "")
			metric("krad_replicate_connected", "Whether the replication stream is live (1) or down (0).", "gauge", b2i(p.Connected), "")
			metric("krad_replicate_lag_records", "Committed records the follower has not yet acknowledged, summed over shards.", "gauge", p.LagRecords, "")
			metric("krad_replicate_reconnects_total", "Replication stream re-dials after the first successful handshake.", "counter", p.Reconnects, "")
			metric("krad_replicate_fenced", "Whether this primary is fenced by a promoted follower (1) and refusing admissions.", "gauge", b2i(p.Fenced), "")
			metric("krad_replicate_queue_drops_total", "Whole-queue spills from the in-memory send queue to WAL catch-up.", "counter", p.QueueDrops, "")
		case rs.Follower != nil:
			f := rs.Follower
			metric("krad_replicate_epoch", "Replication epoch this daemon believes current.", "gauge", f.Epoch, "")
			metric("krad_replicate_connected", "Whether the replication stream is live (1) or down (0).", "gauge", b2i(f.Connected), "")
			metric("krad_replicate_reconnects_total", "Primary connections accepted (handshakes), counting reconnects.", "counter", f.Connects, "")
			metric("krad_replicate_applied_total", "Replicated records applied through the engines since start.", "counter", f.Applied, "")
			metric("krad_replicate_promoted", "Whether this follower has promoted itself to primary (1).", "gauge", b2i(f.Promoted), "")
		}
	}

	// Tenant families appear only when fairness is enabled, so a
	// fairness-free deployment's exposition stays bit-identical to builds
	// before multi-tenancy existed.
	if tenants := s.tenantStats(); len(tenants) > 0 {
		perTenant := []struct {
			name, help, typ string
			value           func(ts TenantStats) any
		}{
			{"krad_tenant_share", "One tenant leaf's current fair share of the fleet admission bound, in slots.", "gauge", func(ts TenantStats) any { return ts.Share }},
			{"krad_tenant_in_flight", "One tenant leaf's admitted-but-unfinished jobs.", "gauge", func(ts TenantStats) any { return ts.InFlight }},
			{"krad_tenant_usage", "One tenant leaf's exponentially decayed usage (task-steps, decayed per shard clock).", "gauge", func(ts TenantStats) any { return fmt.Sprintf("%g", ts.Usage) }},
			{"krad_tenant_admitted_total", "Jobs admitted for one tenant leaf.", "counter", func(ts TenantStats) any { return ts.Admitted }},
			{"krad_tenant_shed_total", "Submissions shed over fair-share quota for one tenant leaf (HTTP 429).", "counter", func(ts TenantStats) any { return ts.Shed }},
		}
		for _, m := range perTenant {
			for i, ts := range tenants {
				help := ""
				if i == 0 {
					help = m.help
				}
				metric(m.name, help, m.typ, m.value(ts), fmt.Sprintf(`{tenant="%s"}`, ts.Path))
			}
		}
	}

	fmt.Fprintf(&b, "# HELP krad_response_steps Job response times in virtual steps (all shards).\n# TYPE krad_response_steps histogram\n")
	var cum uint64
	for i, bound := range hist.bounds {
		cum += hist.counts[i]
		fmt.Fprintf(&b, "krad_response_steps_bucket{le=\"%g\"} %d\n", bound, cum)
	}
	cum += hist.counts[len(hist.bounds)]
	fmt.Fprintf(&b, "krad_response_steps_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "krad_response_steps_sum %g\n", hist.sum)
	fmt.Fprintf(&b, "krad_response_steps_count %d\n", hist.count)

	_, err := io.WriteString(w, b.String())
	return err
}

// quantile is unused by the exposition format but handy for tests: the
// upper bound of the bucket containing the q-quantile observation.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}
