package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sim"
)

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "shard-000.wal")
}

func mustOpen(t *testing.T, path string, opts Options) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func mustAppend(t *testing.T, j *Journal, rec Record) {
	t.Helper()
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
}

// testRecords is a representative mutation sequence: a single admit, a
// batch, steps, and a cancel.
func testRecords(t *testing.T) []Record {
	t.Helper()
	admit, err := AdmitRecord(0, []sim.JobSpec{{Graph: dag.UniformChain(1, 3, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := AdmitRecord(1, []sim.JobSpec{
		{Graph: dag.UniformChain(1, 2, 1)},
		{Graph: dag.UniformChain(1, 4, 1), Release: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return []Record{
		admit,
		StepRecord(1),
		batch,
		StepRecord(2),
		CancelRecord(2),
		StepRecord(3),
	}
}

func recordsEqual(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Type != w.Type || g.Base != w.Base || g.ID != w.ID || g.Now != w.Now || len(g.Jobs) != len(w.Jobs) {
			t.Fatalf("record %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := tempJournal(t)
	j, recs := mustOpen(t, path, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	want := testRecords(t)
	for _, r := range want {
		mustAppend(t, j, r)
	}
	if st := j.Stats(); st.Records != int64(len(want)) || st.Appended != int64(len(want)) || st.Failed != "" {
		t.Fatalf("stats %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recovered := mustOpen(t, path, Options{})
	defer j2.Close()
	recordsEqual(t, recovered, want)
	if g := recovered[2].Jobs[1].Graph; g.NumTasks() != 4 {
		t.Fatalf("batch graph came back with %d tasks, want 4", g.NumTasks())
	}
}

// TestTornTailEveryPrefix crashes the journal after every possible prefix
// length and asserts the exact recovered-record count: all records whose
// frames fit the prefix entirely, never more (phantoms) or fewer
// (forgotten acknowledgements).
func TestTornTailEveryPrefix(t *testing.T) {
	path := tempJournal(t)
	j, _ := mustOpen(t, path, Options{})
	want := testRecords(t)
	// ends[i] is the file size after record i was appended.
	ends := make([]int64, len(want))
	for i, r := range want {
		mustAppend(t, j, r)
		ends[i] = j.Stats().SizeBytes
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		prefix := filepath.Join(t.TempDir(), "prefix.wal")
		if err := os.WriteFile(prefix, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs, err := Open(prefix, Options{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		wantN := 0
		for _, e := range ends {
			if e <= int64(cut) {
				wantN++
			}
		}
		if len(recs) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), wantN)
		}
		recordsEqual(t, recs, want[:wantN])
		// The repaired journal must accept appends and survive a reopen.
		mustAppend(t, j2, StepRecord(99))
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		_, again, err := Open(prefix, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen after repair: %v", cut, err)
		}
		if len(again) != wantN+1 {
			t.Fatalf("cut %d: reopen recovered %d records, want %d", cut, len(again), wantN+1)
		}
	}
}

func TestZeroFillTailTruncates(t *testing.T) {
	path := tempJournal(t)
	j, _ := mustOpen(t, path, Options{})
	want := testRecords(t)[:2]
	for _, r := range want {
		mustAppend(t, j, r)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j2, recs := mustOpen(t, path, Options{})
	defer j2.Close()
	recordsEqual(t, recs, want)
}

func TestCorruptInteriorRecordFails(t *testing.T) {
	path := tempJournal(t)
	j, _ := mustOpen(t, path, Options{})
	for _, r := range testRecords(t) {
		mustAppend(t, j, r)
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the middle of the file.
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(path, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open corrupt journal: err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptFinalRecordTruncates(t *testing.T) {
	// Damage confined to the last record is indistinguishable from a torn
	// append, so it must truncate, not fail.
	path := tempJournal(t)
	j, _ := mustOpen(t, path, Options{})
	want := testRecords(t)
	for _, r := range want {
		mustAppend(t, j, r)
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs := mustOpen(t, path, Options{})
	defer j2.Close()
	recordsEqual(t, recs, want[:len(want)-1])
}

func TestVersionMismatch(t *testing.T) {
	path := tempJournal(t)
	if err := os.WriteFile(path, []byte("KRADWAL\x02morebytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path, Options{})
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestCompactRewritesToSnapshot(t *testing.T) {
	cfg := sim.Config{K: 1, Caps: []int{2}, Scheduler: core.NewKRAD(1), ValidateAllotments: true}
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := tempJournal(t)
	j, _ := mustOpen(t, path, Options{})
	// Drive the engine and journal every mutation, the way a shard does.
	specs := []sim.JobSpec{{Graph: dag.UniformChain(1, 3, 1)}, {Graph: dag.UniformChain(1, 5, 1)}}
	for i, s := range specs {
		if _, err := eng.Admit(s); err != nil {
			t.Fatal(err)
		}
		rec, err := AdmitRecord(i, []sim.JobSpec{s})
		if err != nil {
			t.Fatal(err)
		}
		mustAppend(t, j, rec)
	}
	for !eng.Idle() {
		info, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		mustAppend(t, j, StepRecord(info.Step))
	}

	cp, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(Record{Type: TypeSnap, Snap: &cp}); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Records != 1 || st.Compactions != 1 {
		t.Fatalf("post-compact stats %+v", st)
	}
	// Appends continue into the compacted file.
	mustAppend(t, j, StepRecord(cp.Now+1))
	j.Close()

	_, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Type != TypeSnap || recs[1].Type != TypeStep {
		t.Fatalf("compacted journal holds %+v", recs)
	}

	// The snapshot must restore to the same state the engine had.
	fresh, err := sim.NewEngine(sim.Config{K: 1, Caps: []int{2}, Scheduler: core.NewKRAD(1), ValidateAllotments: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(*recs[0].Snap); err != nil {
		t.Fatal(err)
	}
	if fresh.Now() != eng.Now() {
		t.Fatalf("restored clock %d, want %d", fresh.Now(), eng.Now())
	}
	for id := 0; id < 2; id++ {
		a, _ := eng.Job(id)
		b, ok := fresh.Job(id)
		if !ok || a.Completion != b.Completion || a.Phase != b.Phase {
			t.Fatalf("job %d: original %+v, restored %+v (ok=%v)", id, a, b, ok)
		}
	}
}

func TestSnapshotNotAtHeadRejected(t *testing.T) {
	path := tempJournal(t)
	j, _ := mustOpen(t, path, Options{})
	mustAppend(t, j, StepRecord(1))
	cp := sim.EngineCheckpoint{Now: 1}
	mustAppend(t, j, Record{Type: TypeSnap, Snap: &cp})
	j.Close()
	_, _, err := Open(path, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt (snapshot mid-file)", err)
	}
}

func TestReplayRebuildsEngineExactly(t *testing.T) {
	newCfg := func() sim.Config {
		return sim.Config{K: 2, Caps: []int{2, 1}, Scheduler: core.NewKRAD(2), Seed: 42, ValidateAllotments: true}
	}
	eng, err := sim.NewEngine(newCfg())
	if err != nil {
		t.Fatal(err)
	}
	path := tempJournal(t)
	j, _ := mustOpen(t, path, Options{})

	specs := []sim.JobSpec{
		{Graph: dag.RoundRobinChain(2, 6)},
		{Graph: dag.UniformChain(2, 4, 2)},
		{Graph: dag.UniformChain(2, 5, 1)},
	}
	ids, err := eng.AdmitBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := AdmitRecord(ids[0], specs)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec)
	for i := 0; i < 3; i++ {
		info, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		mustAppend(t, j, StepRecord(info.Step))
	}
	if err := eng.Cancel(1); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, CancelRecord(1))
	for !eng.Idle() {
		info, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		mustAppend(t, j, StepRecord(info.Step))
	}
	j.Close()

	_, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := sim.NewEngine(newCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := Replay(replayed, recs); err != nil {
		t.Fatal(err)
	}
	if replayed.Now() != eng.Now() {
		t.Fatalf("replayed clock %d, want %d", replayed.Now(), eng.Now())
	}
	a, b := eng.Snapshot(), replayed.Snapshot()
	if a.Completed != b.Completed || a.Cancelled != b.Cancelled || a.Makespan != b.Makespan {
		t.Fatalf("snapshots diverge: original %+v, replayed %+v", a, b)
	}
	for id := range specs {
		x, _ := eng.Job(id)
		y, _ := replayed.Job(id)
		if x.Phase != y.Phase || x.Completion != y.Completion {
			t.Fatalf("job %d diverged: original %+v, replayed %+v", id, x, y)
		}
	}
}

func TestReplayDetectsMismatch(t *testing.T) {
	newEngine := func() *sim.Engine {
		eng, err := sim.NewEngine(sim.Config{K: 1, Caps: []int{2}, Scheduler: core.NewKRAD(1), ValidateAllotments: true})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	spec := sim.JobSpec{Graph: dag.UniformChain(1, 3, 1)}
	writer := newEngine()
	if _, err := writer.Admit(spec); err != nil {
		t.Fatal(err)
	}
	admit, err := AdmitRecord(0, []sim.JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{admit}
	for !writer.Idle() {
		info, err := writer.Step()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, StepRecord(info.Step))
	}

	t.Run("id skew", func(t *testing.T) {
		// An engine that already holds state re-assigns different IDs; the
		// base cross-check must fail before any state corrupts further.
		eng := newEngine()
		if _, err := eng.Admit(spec); err != nil {
			t.Fatal(err)
		}
		if err := Replay(eng, recs); err == nil {
			t.Fatal("replay onto a non-fresh engine succeeded")
		}
	})
	t.Run("step time skew", func(t *testing.T) {
		tampered := append([]Record(nil), recs...)
		tampered[1].Now += 17
		if err := Replay(newEngine(), tampered); err == nil {
			t.Fatal("replay with a divergent step clock succeeded")
		}
	})
	t.Run("step past idle", func(t *testing.T) {
		extended := append(append([]Record(nil), recs...), StepRecord(999))
		if err := Replay(newEngine(), extended); err == nil {
			t.Fatal("replay stepping an idle engine succeeded")
		}
	})
}

func TestSyncIntervalThrottles(t *testing.T) {
	path := tempJournal(t)
	syncs := 0
	opts := Options{
		Sync:     SyncInterval,
		Interval: time.Hour,
		OpenAppend: func(p string) (File, error) {
			f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			return &countingFile{File: f, syncs: &syncs}, nil
		},
	}
	j, _ := mustOpen(t, path, opts)
	for i := 0; i < 10; i++ {
		mustAppend(t, j, StepRecord(int64(i+1)))
	}
	// First append syncs (lastSync is zero), the rest fall inside the
	// hour-long interval.
	if syncs != 1 {
		t.Fatalf("synced %d times, want 1", syncs)
	}
	j.Close()
}

type countingFile struct {
	File
	syncs *int
}

func (c *countingFile) Sync() error {
	*c.syncs++
	return c.File.Sync()
}
