// Package journal is the write-ahead log that makes the online scheduler
// service (internal/server, cmd/kradd) crash-safe. The K-RAD engine is
// online and non-clairvoyant: its entire state is a deterministic function
// of the sequence of committed mutations — admissions, cancellations, and
// executed steps. A journal is therefore exact, not approximate: append
// every committed mutation, and a restarted process that replays the log
// through a fresh engine reconstructs job IDs, virtual time, and scheduler
// state bit-for-bit.
//
// The on-disk format is an 8-byte magic header followed by length-prefixed,
// CRC32-checksummed records:
//
//	"KRADWAL\x01" | { uint32 LE payload length | uint32 LE CRC32-IEEE(payload) | payload }*
//
// Crash semantics follow the classic WAL contract. A torn tail — a record
// cut short by the crash, including the NUL-filled tails some filesystems
// leave behind — is silently truncated on open: those mutations were never
// acknowledged durable. A damaged record with intact records after it
// cannot be explained by a torn write; that is corruption, and Open fails
// loudly (the daemon exits non-zero rather than serving silently forgotten
// state).
//
// Compaction bounds replay time: when the engine is idle its state
// collapses to a small checkpoint (sim.EngineCheckpoint), and the journal
// is atomically rewritten as a single snap record via the
// write-tmp/fsync/rename dance.
package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// magic identifies a journal file and its format version. A version bump
// changes the last byte; Open rejects anything else as a version mismatch
// rather than guessing at a foreign layout.
var magic = []byte("KRADWAL\x01")

const (
	headerLen = 4 + 4 // payload length + CRC32
	// maxRecordLen bounds a single record; longer lengths in a header are
	// treated as damage, not data (the HTTP surface caps batch bodies at
	// 64 MiB, so real records are far smaller).
	maxRecordLen = 128 << 20
)

// ErrVersion reports a journal written by an unknown format version.
var ErrVersion = errors.New("journal: unknown magic (version mismatch or not a journal)")

// ErrCorrupt reports a damaged record that cannot be a torn tail: intact
// data follows it, so truncating would silently forget acknowledged
// mutations.
var ErrCorrupt = errors.New("journal: corrupt record")

// SyncPolicy says when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: acknowledged implies durable,
	// at one disk flush per mutation.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per SyncInterval, piggybacked on
	// appends: bounded loss (the last interval) at a bounded flush rate.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache: fastest, loses
	// whatever the kernel had not written back. Torn-tail truncation keeps
	// the journal readable regardless.
	SyncNever
)

// ParseSyncPolicy maps the kradd -fsync flag values onto policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval or never)", s)
}

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// File is the slice of *os.File the journal writer needs. It exists so
// tests can inject failing files (see FaultFile) and drive the degraded-
// disk paths without a real full disk.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options parameterize Open.
type Options struct {
	// Sync is the fsync policy; the zero value is SyncAlways, the safe
	// default.
	Sync SyncPolicy
	// Interval is the minimum spacing between fsyncs under SyncInterval.
	// 0 means 100ms.
	Interval time.Duration
	// OpenAppend opens the journal file for appending. Nil means os.OpenFile
	// with O_CREATE|O_WRONLY|O_APPEND. Tests substitute fault injectors.
	OpenAppend func(path string) (File, error)
}

func (o *Options) openAppend(path string) (File, error) {
	if o.OpenAppend != nil {
		return o.OpenAppend(path)
	}
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Stats is a point-in-time journal summary.
type Stats struct {
	// Records is the record count in the current file (a compaction resets
	// it to 1, the snapshot).
	Records int64 `json:"records"`
	// Appended counts records appended since Open.
	Appended int64 `json:"appended"`
	// Compactions counts snapshot rewrites since Open.
	Compactions int64 `json:"compactions"`
	// SizeBytes is the current file size.
	SizeBytes int64 `json:"size_bytes"`
	// Syncs counts journal-file fsyncs issued since Open (policy-driven
	// flushes on append, the compaction flush and the final close flush).
	Syncs int64 `json:"syncs"`
	// SyncSeconds is the cumulative wall time spent inside those fsyncs —
	// the durability overhead a load generator subtracts to separate disk
	// cost from scheduling cost.
	SyncSeconds float64 `json:"sync_seconds"`
	// Failed carries the sticky write failure, if any ("" while healthy).
	Failed string `json:"failed,omitempty"`
}

// Journal is an append-only record log bound to one file. Appends are
// serialized internally; a write or sync failure is sticky — the journal
// refuses further appends so the caller can stop acknowledging work while
// in-memory state keeps serving (the degraded-disk mode internal/server
// implements).
type Journal struct {
	path string
	opts Options

	mu          sync.Mutex
	f           File
	size        int64
	records     int64
	appended    int64
	compactions int64
	syncs       int64
	syncNanos   int64
	lastSync    time.Time
	failed      error
	buf         []byte
}

// Open reads, validates and repairs the journal at path, returning the
// decoded records and a handle positioned for appending. A missing or
// empty file starts fresh. A torn tail (crash mid-append) is truncated; a
// corrupt interior record or unknown magic is a hard error — see the
// package comment for why the two are treated differently.
func Open(path string, opts Options) (*Journal, []Record, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	recs, goodLen, err := decodeAll(data)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	if goodLen < int64(len(data)) {
		// Torn tail: drop the partial record before reopening for append.
		if err := os.Truncate(path, goodLen); err != nil {
			return nil, nil, fmt.Errorf("journal: truncate torn tail of %s to %d bytes: %w", path, goodLen, err)
		}
	}
	j := &Journal{path: path, opts: opts, size: goodLen, records: int64(len(recs))}
	f, err := opts.openAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open %s for append: %w", path, err)
	}
	j.f = f
	if j.size == 0 {
		if _, err := f.Write(magic); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("journal: write header of %s: %w", path, err)
		}
		j.size = int64(len(magic))
		if opts.Sync == SyncAlways {
			if err := f.Sync(); err != nil {
				_ = f.Close()
				return nil, nil, fmt.Errorf("journal: sync header of %s: %w", path, err)
			}
		}
	}
	return j, recs, nil
}

// ReadFile decodes the journal at path without opening it for append and
// without repairing it: a torn tail is simply ignored. Because nothing is
// truncated or locked, it is safe to call on a live journal that another
// goroutine (or process) is appending to — replication catch-up reads the
// primary's own WAL this way, and a record torn by a concurrent append
// shows up on the next read. A missing file decodes as empty.
func ReadFile(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	recs, _, err := decodeAll(data)
	if err != nil {
		return nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	return recs, nil
}

// SeqBase returns the sequence cursor already covered by a decoded
// journal's head: a snap-headed journal resumes the cursor its snapshot
// carries, anything else starts from zero.
func SeqBase(recs []Record) int64 {
	if len(recs) > 0 && recs[0].Type == TypeSnap {
		return recs[0].Seq
	}
	return 0
}

// SeqAfter returns the sequence number of a decoded journal's last record
// — the cursor a replica that has applied all of recs continues from. The
// head snap record, when present, does not get a sequence number of its
// own: it stands in for the Seq records it covers.
func SeqAfter(recs []Record) int64 {
	n := int64(len(recs))
	if len(recs) > 0 && recs[0].Type == TypeSnap {
		n--
	}
	return SeqBase(recs) + n
}

// decodeAll parses a journal image, returning the intact records and the
// byte length of the valid prefix. Damage at the tail is reported by
// goodLen < len(data) with a nil error; damage anywhere else is ErrCorrupt;
// a foreign header is ErrVersion.
func decodeAll(data []byte) (recs []Record, goodLen int64, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < len(magic) {
		// A crash while writing the 8-byte header; nothing was ever
		// acknowledged from this file.
		return nil, 0, nil
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return nil, 0, fmt.Errorf("%w: header %q", ErrVersion, data[:len(magic)])
	}
	off := int64(len(magic))
	size := int64(len(data))
	for off < size {
		if size-off < headerLen {
			// Partial frame header at EOF: the append was cut short.
			return recs, off, nil
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 {
			// Appends write whole frames, and a real payload is never
			// empty, so a zero length is NUL-fill — the block padding a
			// crash leaves behind unflushed appends. That padding runs to
			// EOF; a zero length with live bytes after it means the file
			// was damaged in place.
			if !zeroTail(data, off) {
				return recs, off, fmt.Errorf("%w: zero-length frame at offset %d followed by data", ErrCorrupt, off)
			}
			return recs, off, nil
		}
		if length > maxRecordLen || off+headerLen+length > size {
			// The declared payload overruns EOF: a torn append. (A huge
			// garbage length always lands here — the file cannot contain
			// it.)
			return recs, off, nil
		}
		payload := data[off+headerLen : off+headerLen+length]
		if crc32.ChecksumIEEE(payload) != sum {
			if off+headerLen+length == size {
				// The final record's payload was torn mid-write.
				return recs, off, nil
			}
			// Intact framing continues after this record, so the crash
			// cannot explain the damage: refuse to silently forget an
			// acknowledged mutation.
			return recs, off, fmt.Errorf("%w: bad CRC at offset %d (record %d)", ErrCorrupt, off, len(recs))
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			// The CRC matched, so these bytes are what was written: this
			// frame never held a valid record. Always a hard error.
			return recs, off, fmt.Errorf("%w: offset %d (record %d): %v", ErrCorrupt, off, len(recs), derr)
		}
		if rec.Type == TypeSnap && len(recs) != 0 {
			return recs, off, fmt.Errorf("%w: offset %d: snapshot record %d is not at the journal head", ErrCorrupt, off, len(recs))
		}
		recs = append(recs, rec)
		off += headerLen + length
	}
	return recs, off, nil
}

// zeroTail reports whether every byte from off to EOF is NUL.
func zeroTail(data []byte, off int64) bool {
	for _, b := range data[off:] {
		if b != 0 {
			return false
		}
	}
	return true
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Err returns the sticky write failure, or nil while the journal is
// healthy.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// RecordsSinceCompact returns the record count of the current file — the
// replay length a crash at this instant would pay.
func (j *Journal) RecordsSinceCompact() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Stats summarizes the journal.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Stats{
		Records:     j.records,
		Appended:    j.appended,
		Compactions: j.compactions,
		SizeBytes:   j.size,
		Syncs:       j.syncs,
		SyncSeconds: time.Duration(j.syncNanos).Seconds(),
	}
	if j.failed != nil {
		st.Failed = j.failed.Error()
	}
	return st
}

// Append encodes, frames and writes one record, syncing per the policy.
// The first failure is returned and latched: every later Append returns
// it without touching the file. Callers must treat an error as "this
// mutation is not durable" and roll it back or stop acknowledging.
func (j *Journal) Append(rec Record) error {
	payload, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return j.failed
	}
	need := headerLen + len(payload)
	if cap(j.buf) < need {
		j.buf = make([]byte, need)
	}
	frame := j.buf[:need]
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[headerLen:], payload)
	n, err := j.f.Write(frame)
	j.size += int64(n)
	if err == nil && n != len(frame) {
		err = io.ErrShortWrite
	}
	if err != nil {
		j.failed = fmt.Errorf("journal: append to %s: %w", j.path, err)
		return j.failed
	}
	j.records++
	j.appended++
	if err := j.maybeSyncLocked(); err != nil {
		return err
	}
	return nil
}

// Sync forces an fsync now, regardless of the interval under SyncInterval
// — the barrier cross-shard stealing uses to make the victim's steal
// record durable before the thief acknowledges the re-admission. Under
// SyncNever it is a no-op (that policy explicitly trades durability away,
// and stealing inherits the trade). Failures latch exactly like append
// failures: the journal stops acknowledging work.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return j.failed
	}
	if j.opts.Sync == SyncNever || j.f == nil {
		return nil
	}
	if err := j.syncTimedLocked(j.f); err != nil {
		j.failed = fmt.Errorf("journal: sync %s: %w", j.path, err)
		return j.failed
	}
	j.lastSync = time.Now()
	return nil
}

// maybeSyncLocked applies the sync policy after a successful write.
func (j *Journal) maybeSyncLocked() error {
	switch j.opts.Sync {
	case SyncAlways:
	case SyncInterval:
		if time.Since(j.lastSync) < j.opts.Interval {
			return nil
		}
	case SyncNever:
		return nil
	}
	if err := j.syncTimedLocked(j.f); err != nil {
		j.failed = fmt.Errorf("journal: sync %s: %w", j.path, err)
		return j.failed
	}
	j.lastSync = time.Now()
	return nil
}

// syncTimedLocked flushes f, charging the wall time (and, on success, one
// sync) to the journal's durability-overhead counters.
func (j *Journal) syncTimedLocked(f File) error {
	start := time.Now()
	err := f.Sync()
	j.syncNanos += int64(time.Since(start))
	if err == nil {
		j.syncs++
	}
	return err
}

// Compact atomically replaces the journal's contents with a single
// snapshot record: write a sibling temp file, fsync it, rename it over the
// journal, fsync the directory. The handle continues appending to the new
// file. On any failure the journal latches the error — a half-compacted
// journal must stop acknowledging work, exactly like a failed append.
func (j *Journal) Compact(rec Record) error {
	if rec.Type != TypeSnap {
		return fmt.Errorf("journal: compact wants a snap record, got %s", rec.Type)
	}
	payload, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return j.failed
	}
	tmp := j.path + ".compact"
	// O_APPEND on a fresh file is plain sequential writing; reusing the
	// injectable opener keeps compaction under fault tests too.
	_ = os.Remove(tmp)
	f, err := j.opts.openAppend(tmp)
	if err != nil {
		j.failed = fmt.Errorf("journal: compact %s: %w", j.path, err)
		return j.failed
	}
	frame := make([]byte, len(magic)+headerLen+len(payload))
	copy(frame, magic)
	binary.LittleEndian.PutUint32(frame[len(magic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[len(magic)+4:], crc32.ChecksumIEEE(payload))
	copy(frame[len(magic)+headerLen:], payload)
	if n, werr := f.Write(frame); werr != nil || n != len(frame) {
		if werr == nil {
			werr = io.ErrShortWrite
		}
		_ = f.Close()
		_ = os.Remove(tmp)
		j.failed = fmt.Errorf("journal: compact %s: %w", j.path, werr)
		return j.failed
	}
	if err := j.syncTimedLocked(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		j.failed = fmt.Errorf("journal: compact %s: sync: %w", j.path, err)
		return j.failed
	}
	if err := os.Rename(tmp, j.path); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		j.failed = fmt.Errorf("journal: compact %s: %w", j.path, err)
		return j.failed
	}
	if err := syncDir(filepath.Dir(j.path)); err != nil {
		_ = f.Close()
		j.failed = fmt.Errorf("journal: compact %s: %w", j.path, err)
		return j.failed
	}
	// The renamed handle IS the new journal; retire the old one.
	_ = j.f.Close()
	j.f = f
	j.size = int64(len(frame))
	j.records = 1
	j.compactions++
	j.lastSync = time.Now()
	return nil
}

// syncDir flushes a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Close syncs and closes the file. Under SyncInterval this final sync is
// what makes a clean shutdown loss-free: appends inside the last interval
// window have not hit the disk yet, and skipping the flush here would
// silently demote "clean exit" to "bounded loss". A failed final sync is
// therefore latched into the sticky failure (visible via Err after Close)
// and returned — callers must not report a clean shutdown over it.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.failed
	}
	var errs []error
	if j.failed == nil && j.opts.Sync != SyncNever {
		if err := j.syncTimedLocked(j.f); err != nil {
			j.failed = fmt.Errorf("journal: close %s: final sync: %w", j.path, err)
			errs = append(errs, j.failed)
		}
	}
	if err := j.f.Close(); err != nil {
		errs = append(errs, err)
	}
	j.f = nil
	return errors.Join(errs...)
}
