package metrics

import (
	"krad/internal/sched"
)

// Churn quantifies how much processor reassignment a scheduler causes —
// the hidden cost the paper's model treats as free and real systems pay in
// migrations, cache refills and context switches. For each step and
// category, the churn is half the L1 distance between consecutive
// allotment vectors (half, because every processor that leaves one job
// joins another or the idle pool); completions and arrivals naturally
// contribute their allotments.
type Churn struct {
	k    int
	prev map[int][]int
	// Total is Σ over steps and categories of reassigned processors.
	Total int64
	// Steps counts observed scheduling decisions.
	Steps int64
}

// NewChurn creates a churn accumulator for k categories.
func NewChurn(k int) *Churn {
	return &Churn{k: k, prev: make(map[int][]int)}
}

// Observer returns the sim.Config.Observer-compatible callback.
func (c *Churn) Observer() func(t int64, jobs []sched.JobView, allot [][]int) {
	return func(t int64, jobs []sched.JobView, allot [][]int) {
		c.Steps++
		seen := make(map[int]bool, len(jobs))
		var moved int64
		for i, j := range jobs {
			seen[j.ID] = true
			prev := c.prev[j.ID]
			for a := 0; a < c.k; a++ {
				var p int
				if prev != nil {
					p = prev[a]
				}
				d := allot[i][a] - p
				if d < 0 {
					d = -d
				}
				moved += int64(d)
			}
			row := c.prev[j.ID]
			if row == nil {
				row = make([]int, c.k)
				c.prev[j.ID] = row
			}
			copy(row, allot[i])
		}
		// Jobs that vanished (completed) release their whole allotment.
		for id, row := range c.prev {
			if !seen[id] {
				for _, v := range row {
					moved += int64(v)
				}
				delete(c.prev, id)
			}
		}
		c.Total += moved / 2
	}
}

// PerStep returns mean reassigned processors per scheduling step.
func (c *Churn) PerStep() float64 {
	if c.Steps == 0 {
		return 0
	}
	return float64(c.Total) / float64(c.Steps)
}
