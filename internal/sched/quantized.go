package sched

// Quantized wraps a scheduler so that allotments are only recomputed every
// L steps — modelling the scheduling quantum of real two-level systems,
// where reallocating processors between jobs has a cost and the OS-level
// allocator runs periodically rather than every time unit (the setting of
// the RAD lineage's two-level schedulers). Between quantum boundaries each
// job keeps its cached allotment, clamped to its current desire so
// processors are never assigned to tasks that do not exist; jobs arriving
// mid-quantum wait for the next boundary.
//
// L = 1 is exactly the inner scheduler. Larger L trades bound tightness
// for reallocation frequency; experiment E13 measures that trade-off.
type Quantized struct {
	inner   Scheduler
	l       int64
	started bool
	nextAt  int64
	cache   map[int][]int
}

// NewQuantized wraps inner with scheduling quantum l ≥ 1.
func NewQuantized(inner Scheduler, l int64) *Quantized {
	if l < 1 {
		panic("sched: quantum must be ≥ 1")
	}
	return &Quantized{inner: inner, l: l, cache: make(map[int][]int)}
}

// Name implements Scheduler.
func (q *Quantized) Name() string { return q.inner.Name() + "-quantized" }

// Allot implements Scheduler.
func (q *Quantized) Allot(t int64, jobs []JobView, caps []int) [][]int {
	if !q.started || t >= q.nextAt {
		// Quantum boundary: recompute and cache by job ID.
		out := q.inner.Allot(t, jobs, caps)
		clear(q.cache)
		for i, j := range jobs {
			q.cache[j.ID] = out[i]
		}
		q.started = true
		q.nextAt = t + q.l
		return out
	}
	// Mid-quantum: replay the cached rows, clamped to current desires.
	allot := make([][]int, len(jobs))
	for i, j := range jobs {
		row := make([]int, len(caps))
		if cached, ok := q.cache[j.ID]; ok {
			for a := range row {
				v := cached[a]
				if v > j.Desire[a] {
					v = j.Desire[a]
				}
				row[a] = v
			}
		}
		allot[i] = row
	}
	return allot
}

// JobsDone forwards completions to the inner scheduler and drops cached
// rows so a finished job's processors return to the pool at the next
// boundary.
func (q *Quantized) JobsDone(ids []int) {
	for _, id := range ids {
		delete(q.cache, id)
	}
	if c, ok := q.inner.(Completer); ok {
		c.JobsDone(ids)
	}
}

var (
	_ Scheduler = (*Quantized)(nil)
	_ Completer = (*Quantized)(nil)
)
