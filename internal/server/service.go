// Package server wraps the incremental simulation engine (internal/sim's
// Engine) in a goroutine-safe, long-running scheduler service: a step loop
// driving the virtual clock, bounded job admission with backpressure,
// per-job lifecycle tracking with response-time accounting, a subscriber
// fan-out for per-step events, and graceful shutdown that drains in-flight
// jobs. The HTTP/JSON surface exposed by cmd/kradd lives in http.go; the
// Prometheus text metrics in metrics.go.
package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"krad/internal/metrics"
	"krad/internal/sim"
)

// Service errors returned by Submit and Cancel.
var (
	// ErrQueueFull means the admission bound (Config.MaxInFlight) was hit:
	// the service sheds load until running jobs drain.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrClosed means the service is shutting down and no longer admits.
	ErrClosed = errors.New("server: service closed")
)

// Config parameterizes a Service.
type Config struct {
	// Sim is the engine configuration: machine shape, scheduler, policies.
	// Trace should normally stay sim.TraceNone for long-running services —
	// traces grow without bound.
	Sim sim.Config
	// MaxInFlight bounds admitted-but-unfinished jobs (pending + active).
	// Submissions beyond it fail with ErrQueueFull. 0 means 256.
	MaxInFlight int
	// StepEvery is the real-time duration of one virtual step. 0 steps as
	// fast as the hardware allows whenever work is queued (useful for
	// tests and batch-like drains).
	StepEvery time.Duration
	// SubscriberBuffer is each event subscriber's channel capacity; events
	// beyond it are dropped for that subscriber (counted, never blocking
	// the step loop). 0 means 64.
	SubscriberBuffer int
}

// Event is one step's happenings, fanned out to subscribers.
type Event struct {
	// Step is the virtual clock after the step executed.
	Step int64 `json:"step"`
	// Executed[α−1] counts α-tasks executed this step.
	Executed []int `json:"executed"`
	// Released and Completed list job IDs changing state at this step.
	Released  []int `json:"released,omitempty"`
	Completed []int `json:"completed,omitempty"`
	// Active and Pending count jobs after the step.
	Active  int `json:"active"`
	Pending int `json:"pending"`
}

// Stats is a point-in-time service summary.
type Stats struct {
	Now       int64   `json:"now"`
	Steps     int64   `json:"steps"`
	K         int     `json:"k"`
	Caps      []int   `json:"caps"`
	Scheduler string  `json:"scheduler"`
	Submitted int64   `json:"submitted"`
	Completed int64   `json:"completed"`
	Cancelled int64   `json:"cancelled"`
	Rejected  int64   `json:"rejected"`
	Active    int     `json:"active"`
	Pending   int     `json:"pending"`
	InFlight  int     `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`
	Draining  bool    `json:"draining"`
	// Utilization[α−1] is the cumulative busy fraction of category α.
	Utilization []float64 `json:"utilization"`
	// Response summarizes completed jobs' response times (virtual steps).
	Response metrics.Summary `json:"response"`
	// EventsDropped counts events discarded on slow subscribers.
	EventsDropped int64 `json:"events_dropped"`
}

// Service is the long-running scheduler: one engine, one step-loop
// goroutine, any number of submitting/querying/subscribing goroutines.
type Service struct {
	cfg Config

	mu        sync.Mutex // guards eng and the counters below
	eng       *sim.Engine
	started   bool
	closed    bool
	stepErr   error
	steps     int64
	submitted int64
	completed int64
	cancelled int64
	rejected  int64
	responses []float64
	respHist  *histogram

	subMu         sync.Mutex
	subs          map[int]chan Event
	nextSub       int
	subsClosed    bool
	eventsDropped int64

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// New builds a Service around a fresh engine. Call Start to begin
// stepping.
func New(cfg Config) (*Service, error) {
	eng, err := sim.NewEngine(cfg.Sim)
	if err != nil {
		return nil, err
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.SubscriberBuffer <= 0 {
		cfg.SubscriberBuffer = 64
	}
	return &Service{
		cfg:      cfg,
		eng:      eng,
		respHist: newHistogram(responseBuckets()),
		subs:     make(map[int]chan Event),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Start launches the step loop. Extra calls are no-ops, as is starting a
// closed service. A service that is never started still serves
// submissions, queries and cancellations — the clock just never moves
// (useful in tests).
func (s *Service) Start() {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.loop()
}

// Submit admits a job to the live engine and returns its assigned ID. A
// zero Release means "now" (the current virtual step); a positive Release
// is an absolute virtual time and must not lie in the past. Note that the
// engine fast-forwards idle virtual-time gaps, so a future release delays
// a job relative to other admitted work, not relative to wall-clock time.
// Admission is bounded: once MaxInFlight jobs are pending or active,
// Submit fails fast with ErrQueueFull so callers can shed or retry.
func (s *Service) Submit(spec sim.JobSpec) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return -1, ErrClosed
	}
	if s.eng.Remaining() >= s.cfg.MaxInFlight {
		s.rejected++
		s.mu.Unlock()
		return -1, ErrQueueFull
	}
	if spec.Release == 0 {
		spec.Release = s.eng.Now()
	}
	id, err := s.eng.Admit(spec)
	if err == nil {
		s.submitted++
	}
	s.mu.Unlock()
	if err != nil {
		return -1, err
	}
	s.kick()
	return id, nil
}

// Cancel withdraws a pending or active job; its processors are free from
// the next step.
func (s *Service) Cancel(id int) error {
	s.mu.Lock()
	err := s.eng.Cancel(id)
	if err == nil {
		s.cancelled++
	}
	s.mu.Unlock()
	return err
}

// Job returns a job's lifecycle status.
func (s *Service) Job(id int) (sim.JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Job(id)
}

// Err returns the step loop's fatal error, if one occurred (e.g. a broken
// scheduler tripping allotment validation). The service stops stepping
// after a fatal error but keeps serving status queries.
func (s *Service) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stepErr
}

// Stats summarizes the service.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	snap := s.eng.Snapshot()
	st := Stats{
		Now:         snap.Now,
		Steps:       s.steps,
		K:           snap.K,
		Caps:        snap.Caps,
		Scheduler:   s.cfg.Sim.Scheduler.Name(),
		Submitted:   s.submitted,
		Completed:   s.completed,
		Cancelled:   s.cancelled,
		Rejected:    s.rejected,
		Active:      snap.Active,
		Pending:     snap.Pending,
		InFlight:    snap.Active + snap.Pending,
		MaxInFlight: s.cfg.MaxInFlight,
		Draining:    s.closed,
		Utilization: snap.Utilization(),
		Response:    metrics.Summarize(s.responses),
	}
	s.mu.Unlock()
	s.subMu.Lock()
	st.EventsDropped = s.eventsDropped
	s.subMu.Unlock()
	return st
}

// Subscribe registers an event listener. The returned cancel function
// unsubscribes and closes the channel; the channel also closes when the
// service shuts down. Slow subscribers lose events rather than slowing
// the step loop.
func (s *Service) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, s.cfg.SubscriberBuffer)
	s.subMu.Lock()
	if s.subsClosed {
		s.subMu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.subMu.Unlock()
	cancel := func() {
		s.subMu.Lock()
		if c, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(c)
		}
		s.subMu.Unlock()
	}
	return ch, cancel
}

// Close stops admission, drains in-flight jobs (stepping until the engine
// is idle), then stops the loop and closes subscriber channels. If ctx
// expires first, the loop is stopped immediately, abandoning unfinished
// jobs.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	started := s.started
	s.mu.Unlock()
	if !started {
		if !already {
			s.closeSubs()
			close(s.done)
		}
		return nil
	}
	s.kick()
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		close(s.stop)
		<-s.done
		return ctx.Err()
	}
}

// kick wakes the loop if it is parked.
func (s *Service) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// loop is the single goroutine that owns stepping. Each iteration: if the
// engine has work, execute one step under the lock and fan the event out;
// otherwise park until a submission (or shutdown) arrives.
func (s *Service) loop() {
	defer close(s.done)
	defer s.closeSubs()
	var tick *time.Ticker
	if s.cfg.StepEvery > 0 {
		tick = time.NewTicker(s.cfg.StepEvery)
		defer tick.Stop()
	}
	for {
		s.mu.Lock()
		if s.stepErr != nil {
			s.mu.Unlock()
			// A fatal step error ends stepping; wait for shutdown.
			select {
			case <-s.stop:
				return
			case <-s.wake:
				s.mu.Lock()
				if s.closed {
					s.mu.Unlock()
					return
				}
				s.mu.Unlock()
				continue
			}
		}
		idle := s.eng.Idle()
		closing := s.closed
		if idle {
			s.mu.Unlock()
			if closing {
				return // drained: all admitted work finished
			}
			select {
			case <-s.wake:
			case <-s.stop:
				return
			}
			continue
		}
		info, err := s.eng.Step()
		if err != nil {
			s.stepErr = err
			s.mu.Unlock()
			continue
		}
		s.steps++
		for _, id := range info.Completed {
			st, _ := s.eng.Job(id)
			r := float64(st.Completion - st.Release)
			s.responses = append(s.responses, r)
			s.respHist.observe(r)
			s.completed++
		}
		pending := s.eng.Snapshot().Pending
		s.mu.Unlock()

		s.publish(Event{
			Step:      info.Step,
			Executed:  info.Executed,
			Released:  info.Released,
			Completed: info.Completed,
			Active:    info.Active,
			Pending:   pending,
		})

		if tick != nil {
			select {
			case <-tick.C:
			case <-s.stop:
				return
			}
		} else {
			select {
			case <-s.stop:
				return
			default:
			}
		}
	}
}

// publish fans an event out to every subscriber, dropping (and counting)
// on full buffers so a stalled reader never blocks the clock.
func (s *Service) publish(ev Event) {
	s.subMu.Lock()
	for _, ch := range s.subs {
		select {
		case ch <- ev:
		default:
			s.eventsDropped++
		}
	}
	s.subMu.Unlock()
}

// closeSubs closes every subscriber channel at shutdown.
func (s *Service) closeSubs() {
	s.subMu.Lock()
	s.subsClosed = true
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
	s.subMu.Unlock()
}
