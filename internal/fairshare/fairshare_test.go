package fairshare

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestUsageHalfLifeDecay pins the decay math: one half-life halves the
// value, k half-lives scale by 2^-k, and additions compound after decay.
func TestUsageHalfLifeDecay(t *testing.T) {
	const hl = 100
	cases := []struct {
		name string
		ops  func(u *Usage)
		at   int64
		want float64
	}{
		{"empty", func(u *Usage) {}, 500, 0},
		{"no elapsed time", func(u *Usage) { u.Add(0, hl, 8) }, 0, 8},
		{"one half-life", func(u *Usage) { u.Add(0, hl, 8) }, hl, 4},
		{"two half-lives", func(u *Usage) { u.Add(0, hl, 8) }, 2 * hl, 2},
		{"five half-lives", func(u *Usage) { u.Add(0, hl, 32) }, 5 * hl, 1},
		{"fractional", func(u *Usage) { u.Add(0, hl, 1) }, hl / 2, math.Exp2(-0.5)},
		{"add after decay", func(u *Usage) {
			u.Add(0, hl, 8)
			u.Add(hl, hl, 6) // 8 decays to 4, +6 = 10
		}, hl, 10},
		{"two adds two half-lives apart", func(u *Usage) {
			u.Add(0, hl, 8)
			u.Add(2*hl, hl, 1) // 8→2, +1 = 3
		}, 3 * hl, 1.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var u Usage
			c.ops(&u)
			if got := u.At(c.at, hl); math.Abs(got-c.want) > 1e-12 {
				t.Errorf("At(%d) = %g, want %g", c.at, got, c.want)
			}
		})
	}
}

// TestUsageReadIsPure checks At never mutates: reading with different
// clocks (cross-shard aggregation) must not corrupt the accumulator.
func TestUsageReadIsPure(t *testing.T) {
	var u Usage
	u.Add(10, 100, 5)
	before := u
	_ = u.At(500, 100)
	_ = u.At(0, 100) // a slower shard clock reads undecayed, not inflated
	if u != before {
		t.Errorf("At mutated the accumulator: %+v → %+v", before, u)
	}
	if got := u.At(0, 100); got != 5 {
		t.Errorf("At(before AsOf) = %g, want undecayed 5", got)
	}
}

// TestUsageDropsBelowOnePercent pins the recovery bound documented in
// DESIGN.md: usage falls below 1% of its value after 7 half-lives
// (2^-7 ≈ 0.78%), but not yet after 5 (2^-5 ≈ 3.1%).
func TestUsageDropsBelowOnePercent(t *testing.T) {
	var u Usage
	u.Add(0, 64, 1000)
	if got := u.At(5*64, 64); got <= 10 {
		t.Errorf("usage after 5 half-lives = %g, expected still above 1%%", got)
	}
	if got := u.At(7*64, 64); got >= 10 {
		t.Errorf("usage after 7 half-lives = %g, want below 1%% of 1000", got)
	}
}

func flatTree(t *testing.T, nodes ...NodeConfig) *Tree {
	t.Helper()
	tr, err := New(Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSharesWeightedDivision is the table-driven core: weighted division
// with inactive leaves, deserved quotas, strict quotas, priorities.
func TestSharesWeightedDivision(t *testing.T) {
	cases := []struct {
		name     string
		nodes    []NodeConfig
		states   map[string]State
		capacity int
		want     map[string]int
	}{
		{
			name: "two active weights 2:1",
			nodes: []NodeConfig{
				{Name: "a", Weight: 2}, {Name: "b", Weight: 1},
			},
			states:   map[string]State{"a": {InFlight: 1}, "b": {InFlight: 1}},
			capacity: 9,
			want:     map[string]int{"a": 6, "b": 3, "default": 0},
		},
		{
			name: "inactive leaf lends its capacity",
			nodes: []NodeConfig{
				{Name: "a", Weight: 1}, {Name: "b", Weight: 1}, {Name: "c", Weight: 2},
			},
			states:   map[string]State{"a": {InFlight: 3}, "b": {InFlight: 1}},
			capacity: 8,
			want:     map[string]int{"a": 4, "b": 4, "c": 0, "default": 0},
		},
		{
			name: "requesting leaf counts as active",
			nodes: []NodeConfig{
				{Name: "a", Weight: 1}, {Name: "b", Weight: 1},
			},
			states:   map[string]State{"a": {InFlight: 4}, "b": {Requesting: true}},
			capacity: 8,
			want:     map[string]int{"a": 4, "b": 4, "default": 0},
		},
		{
			name: "deserved honored before over-quota",
			nodes: []NodeConfig{
				{Name: "a", Deserved: 6, Weight: 1}, {Name: "b", Weight: 1},
			},
			states:   map[string]State{"a": {InFlight: 1}, "b": {InFlight: 1}},
			capacity: 8,
			want:     map[string]int{"a": 7, "b": 1, "default": 0},
		},
		{
			name: "deserved scaled when capacity short",
			nodes: []NodeConfig{
				{Name: "a", Deserved: 6}, {Name: "b", Deserved: 2},
			},
			states:   map[string]State{"a": {InFlight: 1}, "b": {InFlight: 1}},
			capacity: 4,
			want:     map[string]int{"a": 3, "b": 1, "default": 0},
		},
		{
			name: "zero weight is a strict quota",
			nodes: []NodeConfig{
				{Name: "a", Deserved: 2}, {Name: "b", Deserved: 1, Weight: 1},
			},
			states:   map[string]State{"a": {InFlight: 1}, "b": {InFlight: 1}},
			capacity: 10,
			want:     map[string]int{"a": 2, "b": 8, "default": 0},
		},
		{
			name: "all idle divides nothing",
			nodes: []NodeConfig{
				{Name: "a", Weight: 1}, {Name: "b", Weight: 1},
			},
			states:   nil,
			capacity: 8,
			want:     map[string]int{"a": 0, "b": 0, "default": 0},
		},
		{
			name: "remainder goes to lower decayed usage",
			nodes: []NodeConfig{
				{Name: "a", Weight: 1}, {Name: "b", Weight: 1},
			},
			states:   map[string]State{"a": {InFlight: 1, Usage: 100}, "b": {InFlight: 1, Usage: 10}},
			capacity: 5,
			want:     map[string]int{"a": 2, "b": 3, "default": 0},
		},
		{
			name: "remainder goes to higher priority despite usage",
			nodes: []NodeConfig{
				{Name: "a", Weight: 1, Priority: 1}, {Name: "b", Weight: 1},
			},
			states:   map[string]State{"a": {InFlight: 1, Usage: 100}, "b": {InFlight: 1, Usage: 0}},
			capacity: 5,
			want:     map[string]int{"a": 3, "b": 2, "default": 0},
		},
		{
			name: "hierarchy splits tenant then project",
			nodes: []NodeConfig{
				{Name: "acme", Weight: 2, Children: []NodeConfig{
					{Name: "ml", Weight: 3},
					{Name: "web", Weight: 1},
				}},
				{Name: "beta", Weight: 1},
			},
			states: map[string]State{
				"acme/ml": {InFlight: 1}, "acme/web": {InFlight: 1}, "beta": {InFlight: 1},
			},
			capacity: 12,
			want:     map[string]int{"acme/ml": 6, "acme/web": 2, "beta": 4, "default": 0},
		},
		{
			name: "interior node with idle subtree is skipped",
			nodes: []NodeConfig{
				{Name: "acme", Weight: 1, Children: []NodeConfig{
					{Name: "ml", Weight: 1}, {Name: "web", Weight: 1},
				}},
				{Name: "beta", Weight: 1},
			},
			states:   map[string]State{"beta": {InFlight: 2}},
			capacity: 6,
			want:     map[string]int{"acme/ml": 0, "acme/web": 0, "beta": 6, "default": 0},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := flatTree(t, c.nodes...)
			got := tr.Shares(c.states, c.capacity)
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("Shares = %v, want %v", got, c.want)
			}
		})
	}
}

// TestSharesSumToCapacity checks the exact-sum invariant whenever an
// active leaf with positive weight exists: no slot is lost to rounding.
func TestSharesSumToCapacity(t *testing.T) {
	tr := flatTree(t,
		NodeConfig{Name: "a", Deserved: 1.5, Weight: 3},
		NodeConfig{Name: "b", Weight: 2},
		NodeConfig{Name: "c", Deserved: 0.7, Weight: 1},
	)
	states := map[string]State{
		"a": {InFlight: 2, Usage: 17.3},
		"b": {InFlight: 5, Usage: 2.2},
		"c": {InFlight: 1, Usage: 400},
	}
	for capacity := 1; capacity <= 64; capacity++ {
		got := tr.Shares(states, capacity)
		sum := 0
		for _, v := range got {
			sum += v
		}
		if sum != capacity {
			t.Fatalf("capacity %d: shares %v sum to %d", capacity, got, sum)
		}
	}
}

// TestRebalanceDeterminism drives randomized states (fixed seed) through
// Shares twice — once with map insertions in one order, once reversed —
// and requires identical results: rebalancing must not depend on map
// iteration order or call history.
func TestRebalanceDeterminism(t *testing.T) {
	tr := flatTree(t,
		NodeConfig{Name: "acme", Weight: 2, Children: []NodeConfig{
			{Name: "ml", Deserved: 2, Weight: 3, Priority: 1},
			{Name: "web", Weight: 1},
		}},
		NodeConfig{Name: "beta", Deserved: 1, Weight: 1},
		NodeConfig{Name: "gamma", Weight: 4},
	)
	paths := []string{"acme/ml", "acme/web", "beta", "gamma"}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		fwd := make(map[string]State)
		for _, p := range paths {
			if rng.Intn(3) == 0 {
				continue // leave some leaves idle
			}
			fwd[p] = State{
				InFlight:   rng.Intn(10),
				Usage:      float64(rng.Intn(1000)) / 3,
				Requesting: rng.Intn(4) == 0,
			}
		}
		rev := make(map[string]State)
		for i := len(paths) - 1; i >= 0; i-- {
			if st, ok := fwd[paths[i]]; ok {
				rev[paths[i]] = st
			}
		}
		capacity := 1 + rng.Intn(100)
		a := tr.Shares(fwd, capacity)
		b := tr.Shares(rev, capacity)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: insertion order changed shares: %v vs %v", trial, a, b)
		}
		if c := tr.Shares(fwd, capacity); !reflect.DeepEqual(a, c) {
			t.Fatalf("trial %d: repeated call changed shares: %v vs %v", trial, a, c)
		}
	}
}

// TestEnsureResolution pins header → leaf resolution: exact paths,
// sub-path absorption, interior nodes, dynamic creation, junk fallback.
func TestEnsureResolution(t *testing.T) {
	tr, err := New(Config{Nodes: []NodeConfig{
		{Name: "acme", Children: []NodeConfig{
			{Name: "ml", Weight: 2},
		}},
		{Name: "beta", Weight: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Ensure(""); got != tr.Default() {
		t.Errorf("empty header → %q, want default", got.Path)
	}
	if got := tr.Ensure("acme/ml"); got.Path != "acme/ml" || got.Dynamic {
		t.Errorf("exact leaf → %+v", got)
	}
	// A configured leaf absorbs unconfigured sub-paths.
	if got := tr.Ensure("beta/extra/deep"); got.Path != "beta" {
		t.Errorf("sub-path of leaf → %q, want beta", got.Path)
	}
	// An interior node resolves to its dynamic default child.
	if got := tr.Ensure("acme"); got.Path != "acme/default" || !got.Dynamic {
		t.Errorf("interior node → %+v, want dynamic acme/default", got)
	}
	// Unknown tenants get dynamic leaves with weight 1.
	got := tr.Ensure("newco/batch")
	if got.Path != "newco/batch" || !got.Dynamic || got.Weight != 1 || got.Deserved != 0 {
		t.Errorf("dynamic leaf → %+v", got)
	}
	if again := tr.Ensure("newco/batch"); again != got {
		t.Error("Ensure not idempotent for dynamic leaf")
	}
	// Junk falls back to the default leaf instead of erroring.
	for _, junk := range []string{"a/b/c/d", "bad segment", "ctrl\x00char", "", "//", "x/"} {
		if got := tr.Ensure(junk); got == nil {
			t.Errorf("Ensure(%q) returned nil", junk)
		}
	}
	if got := tr.Ensure("a/b/c/d"); got != tr.Default() {
		t.Errorf("over-deep path → %q, want default", got.Path)
	}
}

// TestEnsureDynamicCap checks unknown tenants stop growing the tree at
// MaxDynamicLeaves and collapse onto the default leaf.
func TestEnsureDynamicCap(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := len(tr.Leaves())
	for i := 0; i < MaxDynamicLeaves+10; i++ {
		tr.Ensure(fmt_i(i))
	}
	if got := len(tr.Leaves()); got > base+MaxDynamicLeaves {
		t.Errorf("tree grew to %d leaves, cap is %d", got, base+MaxDynamicLeaves)
	}
	if got := tr.Ensure("one-more-tenant"); got != tr.Default() {
		t.Errorf("beyond cap → %q, want default leaf", got.Path)
	}
}

func fmt_i(i int) string {
	const digits = "0123456789"
	if i == 0 {
		return "t0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{digits[i%10]}, b...)
	}
	return "t" + string(b)
}

// TestNewValidation rejects malformed trees.
func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Nodes: []NodeConfig{{Name: ""}}},
		{Nodes: []NodeConfig{{Name: "a"}, {Name: "a"}}},
		{Nodes: []NodeConfig{{Name: "bad name"}}},
		{Nodes: []NodeConfig{{Name: "a", Weight: -1}}},
		{Nodes: []NodeConfig{{Name: "a", Deserved: -0.5}}},
		{HalfLife: -3},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}
