package dag

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// PickPolicy selects which ready tasks a job executes when its allotment is
// smaller than its desire. The scheduling algorithms under study are
// oblivious to this choice; the paper's adversary (Theorem 1) and optimal
// offline scheduler differ exactly in it.
type PickPolicy int

const (
	// PickFIFO executes ready tasks in the order they became ready.
	PickFIFO PickPolicy = iota
	// PickLIFO executes the most recently readied tasks first.
	PickLIFO
	// PickRandom executes a uniformly random subset of the ready tasks.
	// Deterministic given the Instance's seed.
	PickRandom
	// PickCPFirst executes the tasks with the longest remaining chain
	// first — the oracle choice the optimal clairvoyant scheduler makes in
	// the Theorem 1 analysis.
	PickCPFirst
	// PickCPLast defers the tasks with the longest remaining chain to the
	// very end — the adversary's choice in the Theorem 1 lower bound.
	PickCPLast
)

// String returns the policy name.
func (p PickPolicy) String() string {
	switch p {
	case PickFIFO:
		return "fifo"
	case PickLIFO:
		return "lifo"
	case PickRandom:
		return "random"
	case PickCPFirst:
		return "cp-first"
	case PickCPLast:
		return "cp-last"
	default:
		return fmt.Sprintf("PickPolicy(%d)", int(p))
	}
}

// Instance is the runtime unfolding of a K-DAG: it tracks which tasks are
// ready, executes them under a pick policy, and reveals only instantaneous
// per-category parallelism. One Instance corresponds to one submitted job.
//
// The two-phase step protocol matches unit-time semantics: any number of
// Execute calls (one per category) happen "during" a time step, and tasks
// completed in that step only make their successors ready after Advance is
// called at the step boundary.
type Instance struct {
	g        *Graph
	pick     PickPolicy
	rng      *rand.Rand
	indeg    []int32
	heights  []int32 // remaining-chain lengths for CP policies; lazy
	ready    [][]TaskID
	pending  []TaskID // completed this step; successors promoted on Advance
	executed int

	// Frontier-level lookahead state (see StableFor). bindeg[v] counts the
	// predecessors of v that are themselves still blocked (indegree > 0);
	// a blocked task with bindeg 0 is "frontier-blocked" — every remaining
	// prerequisite is already ready, so the next promotion anywhere in the
	// graph must be of such a task, and its current indegree is how many
	// executions away that promotion is at minimum. fblocked buckets the
	// frontier-blocked tasks by current indegree (nblocked is their total);
	// minBlocked is a lower-bound hint for the first non-empty bucket,
	// pushed down eagerly on decrements and rescanned upward lazily.
	bindeg     []int32
	fblocked   []int32
	nblocked   int
	minBlocked int32

	sorter cpSorter // reusable CP-policy sorter (see order)
}

// NewInstance wraps g for execution under the given pick policy. seed is
// only consulted by PickRandom. The graph must be valid (acyclic); invalid
// graphs cause a panic because Instances are built from validated or
// generator-produced graphs.
func NewInstance(g *Graph, pick PickPolicy, seed int64) *Instance {
	in := &Instance{
		g:     g,
		pick:  pick,
		ready: make([][]TaskID, g.k),
	}
	if pick == PickRandom {
		in.rng = rand.New(rand.NewSource(seed))
	}
	if pick == PickCPFirst || pick == PickCPLast {
		h, err := g.heights()
		if err != nil {
			panic(err)
		}
		in.heights = h
	}
	in.indeg = make([]int32, g.NumTasks())
	maxIndeg := 0
	for v := 0; v < g.NumTasks(); v++ {
		in.indeg[v] = int32(len(g.pred[v]))
		if len(g.pred[v]) > maxIndeg {
			maxIndeg = len(g.pred[v])
		}
		if in.indeg[v] == 0 {
			c := g.cats[v]
			in.ready[c-1] = append(in.ready[c-1], TaskID(v))
		}
	}
	in.bindeg = make([]int32, g.NumTasks())
	in.fblocked = make([]int32, maxIndeg+1)
	in.minBlocked = 1
	for v := 0; v < g.NumTasks(); v++ {
		if in.indeg[v] == 0 {
			continue
		}
		n := int32(0)
		for _, u := range g.pred[v] {
			if in.indeg[u] > 0 {
				n++
			}
		}
		in.bindeg[v] = n
		if n == 0 {
			in.fblocked[in.indeg[v]]++
			in.nblocked++
		}
	}
	return in
}

// Graph returns the underlying K-DAG.
func (in *Instance) Graph() *Graph { return in.g }

// Policy returns the instance's pick policy.
func (in *Instance) Policy() PickPolicy { return in.pick }

// Desire returns d(Ji, α, t): the number of currently ready α-tasks. This
// is the only job-state information a non-clairvoyant scheduler may use.
func (in *Instance) Desire(c Category) int {
	if c < 1 || int(c) > in.g.k {
		return 0
	}
	return len(in.ready[c-1])
}

// TotalDesire returns Σα d(Ji, α, t).
func (in *Instance) TotalDesire() int {
	n := 0
	for _, q := range in.ready {
		n += len(q)
	}
	return n
}

// Done reports whether every task has executed.
func (in *Instance) Done() bool { return in.executed == in.g.NumTasks() }

// Executed returns the number of tasks completed so far.
func (in *Instance) Executed() int { return in.executed }

// Execute runs up to n ready tasks of category c during the current step,
// selected by the pick policy, and returns the IDs of the tasks executed.
// Successors do not become ready until Advance. Execute with n ≤ 0 is a
// no-op returning nil. Callers that only need the count should use
// ExecuteCount, which skips materializing the ID slice.
func (in *Instance) Execute(c Category, n int) []TaskID {
	n = in.take(c, n)
	if n == 0 {
		return nil
	}
	run := append([]TaskID(nil), in.ready[c-1][:n]...)
	in.finish(c, n)
	return run
}

// ExecuteCount is Execute without the executed-ID result: the engine's
// aggregate-trace hot path only consumes the count, and skipping the slice
// copy keeps steady-state stepping allocation-free.
func (in *Instance) ExecuteCount(c Category, n int) int {
	n = in.take(c, n)
	if n > 0 {
		in.finish(c, n)
	}
	return n
}

// take validates an Execute request and orders the ready queue so the
// tasks to run occupy its prefix, returning the clamped count (0 = no-op).
func (in *Instance) take(c Category, n int) int {
	if n <= 0 || c < 1 || int(c) > in.g.k {
		return 0
	}
	q := in.ready[c-1]
	if n > len(q) {
		n = len(q)
	}
	if n > 0 {
		in.order(q)
	}
	return n
}

// finish commits the first n ready c-tasks: they move to the pending set
// and the queue compacts toward the front of its backing array, so the
// array is reused forever instead of creeping forward allocation by
// allocation as tasks are sliced off.
func (in *Instance) finish(c Category, n int) {
	q := in.ready[c-1]
	in.pending = append(in.pending, q[:n]...)
	in.executed += n
	m := copy(q, q[n:])
	in.ready[c-1] = q[:m]
}

// order arranges the ready queue so that the tasks to execute occupy the
// prefix, according to the pick policy.
func (in *Instance) order(q []TaskID) {
	switch in.pick {
	case PickFIFO:
		// Queue is already in became-ready order.
	case PickLIFO:
		for i, j := 0, len(q)-1; i < j; i, j = i+1, j-1 {
			q[i], q[j] = q[j], q[i]
		}
	case PickRandom:
		in.rng.Shuffle(len(q), func(i, j int) { q[i], q[j] = q[j], q[i] })
	case PickCPFirst, PickCPLast:
		in.sorter.q, in.sorter.heights = q, in.heights
		in.sorter.first = in.pick == PickCPFirst
		sort.Stable(&in.sorter)
		in.sorter.q, in.sorter.heights = nil, nil
	default:
		panic(fmt.Sprintf("dag: unknown pick policy %d", in.pick))
	}
}

// cpSorter is a reusable sort.Interface over a ready queue keyed by
// remaining-chain height. The CP policies previously used sort.SliceStable,
// whose per-call closure allocates; sorting through a struct the Instance
// owns keeps ordering allocation-free. Stable sorting produces the same
// canonical order either way.
type cpSorter struct {
	q       []TaskID
	heights []int32
	first   bool // longest chains first (PickCPFirst) vs last (PickCPLast)
}

func (s *cpSorter) Len() int      { return len(s.q) }
func (s *cpSorter) Swap(i, j int) { s.q[i], s.q[j] = s.q[j], s.q[i] }
func (s *cpSorter) Less(i, j int) bool {
	if s.first {
		return s.heights[s.q[i]] > s.heights[s.q[j]]
	}
	return s.heights[s.q[i]] < s.heights[s.q[j]]
}

// Advance ends the current time step: every task completed since the last
// Advance releases its successors, and successors whose prerequisites are
// all complete become ready (in deterministic order).
func (in *Instance) Advance() {
	if len(in.pending) == 0 {
		return
	}
	for _, u := range in.pending {
		for _, v := range in.g.succ[u] {
			d := in.indeg[v]
			if d <= 0 {
				panic(fmt.Sprintf("dag: task %d in graph %q released more times than it has predecessors", v, in.g.name))
			}
			in.indeg[v] = d - 1
			if in.bindeg[v] != 0 {
				// v still has a blocked predecessor: it cannot promote yet
				// (indeg ≥ bindeg > 0) and is not in the frontier buckets.
				continue
			}
			in.fblocked[d]--
			if d > 1 {
				in.fblocked[d-1]++
				if d-1 < in.minBlocked {
					in.minBlocked = d - 1
				}
			} else {
				in.nblocked--
				in.promote(v)
			}
		}
	}
	in.pending = in.pending[:0]
}

// promote makes v ready and updates its successors' frontier accounting:
// v is no longer a blocked predecessor, so a successor whose other
// predecessors are all unblocked becomes frontier-blocked itself.
func (in *Instance) promote(v TaskID) {
	c := in.g.cats[v]
	in.ready[c-1] = append(in.ready[c-1], v)
	for _, w := range in.g.succ[v] {
		in.bindeg[w]--
		if in.bindeg[w] == 0 {
			d := in.indeg[w] // ≥ 1: the v→w edge is unconsumed until v executes
			in.fblocked[d]++
			in.nblocked++
			if d < in.minBlocked {
				in.minBlocked = d
			}
		}
	}
}

// StableFor reports how many additional unit steps beyond the current one
// the instance can execute without any step boundary promoting a task,
// assuming at most perStep[α−1] α-tasks execute in any single covered step
// (the caller's bound on the job's per-step allotment). 0 means the very
// next Advance might promote — do not leap. math.MaxInt64 means no bound:
// either nothing is blocked (the remaining frontier is a pure drain) or
// nothing can execute under perStep, so the state is frozen.
//
// Soundness: while no promotion has occurred, only initially-ready tasks
// can execute, so the first promoted task must be frontier-blocked at
// entry (every remaining prerequisite already ready — a blocked
// prerequisite cannot have executed), and promoting it takes at least its
// current indegree executions of this job's tasks. n steps execute at most
// n·S tasks, S = Σα min(perStep[α], ready α-tasks), so while
// n·S < min frontier-blocked indegree no boundary — including the one
// closing the window — can promote. The window must stop strictly before
// the first promoting boundary because a leap's single deferred Advance
// scans the whole window's completions grouped by category, which can
// promote tasks in a different order than the per-step scans would; the
// drain-completing step therefore runs as an ordinary single-step round.
//
// PickLIFO reverses the ready queue once per step and PickRandom consumes
// the instance's rng once per step, so batching their picks is not
// state-identical to single-stepping: StableFor reports 0 for them. FIFO
// consumes a queue prefix, and the CP policies re-sort an already-sorted
// queue (stable sorts are idempotent), so one batched pick over the window
// equals n single-step picks.
func (in *Instance) StableFor(perStep []int) int64 {
	switch in.pick {
	case PickFIFO, PickCPFirst, PickCPLast:
	default:
		return 0
	}
	if len(in.pending) != 0 {
		// Mid-step: promotions are already queued; StableFor is a
		// step-boundary question.
		return 0
	}
	if in.nblocked == 0 {
		return math.MaxInt64
	}
	s := 0
	for a, q := range in.ready {
		c := 0
		if a < len(perStep) {
			c = perStep[a]
		}
		if c > len(q) {
			c = len(q)
		}
		s += c
	}
	if s == 0 {
		return math.MaxInt64
	}
	n := (int(in.minBlockedIndeg()) - 1) / s
	if n <= 0 {
		return 0
	}
	return int64(n - 1)
}

// minBlockedIndeg returns the smallest current indegree among the
// frontier-blocked tasks. Only valid while nblocked > 0. The hint chases
// decrements downward in O(1); upward rescans are amortized over the edge
// consumptions that emptied the buckets below.
func (in *Instance) minBlockedIndeg() int32 {
	d := in.minBlocked
	if d < 1 {
		d = 1
	}
	for in.fblocked[d] == 0 {
		d++
	}
	in.minBlocked = d
	return d
}

// ExecuteLeap applies the aggregate of several consecutive unit steps that
// together execute total ready c-tasks, without the per-step Advance calls:
// the caller has established via StableFor that no covered step boundary —
// including the final one — promotes a task, so a single deferred Advance
// after all categories' ExecuteLeap calls only consumes indegree and leaves
// the instance state-identical to single-stepping. total may exceed any
// single step's allotment but must not exceed the category's ready count
// (the engine's leap law keeps desires strictly positive through the
// window). Returns the number executed.
func (in *Instance) ExecuteLeap(c Category, total int) int {
	n := in.take(c, total)
	if n > 0 {
		in.finish(c, n)
	}
	return n
}

// Remaining returns the number of tasks not yet executed.
func (in *Instance) Remaining() int { return in.g.NumTasks() - in.executed }

// RemainingSpan returns T∞ of the unexecuted portion of the job: the
// longest chain among unexecuted tasks. Every maximal remaining chain
// starts at a ready task, so this is the maximum static height over the
// ready queues — O(ready tasks) with heights computed lazily once. Valid
// at step boundaries (after Advance).
func (in *Instance) RemainingSpan() int {
	if in.Done() {
		return 0
	}
	if in.heights == nil {
		h, err := in.g.heights()
		if err != nil {
			panic(err)
		}
		in.heights = h
	}
	best := int32(0)
	for _, q := range in.ready {
		for _, id := range q {
			if in.heights[id] > best {
				best = in.heights[id]
			}
		}
	}
	return int(best)
}

// RemainingWork returns, per category (indexed α−1), the number of
// unexecuted tasks: the ready tasks plus the tasks still blocked on
// predecessors. O(tasks); intended for analysis, not the hot path.
func (in *Instance) RemainingWork() []int {
	rem := make([]int, in.g.k)
	for c := 0; c < in.g.k; c++ {
		rem[c] = len(in.ready[c])
	}
	for v := 0; v < in.g.NumTasks(); v++ {
		if in.indeg[v] > 0 {
			rem[in.g.cats[v]-1]++
		}
	}
	return rem
}
