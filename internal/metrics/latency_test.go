package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestLatencyHistEmpty(t *testing.T) {
	var h LatencyHist
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not all-zero: %+v", h.Report())
	}
}

func TestLatencyHistSingle(t *testing.T) {
	var h LatencyHist
	h.Observe(0.25)
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(p); got != 0.25 {
			t.Fatalf("Quantile(%v) = %v, want 0.25", p, got)
		}
	}
	if h.Mean() != 0.25 || h.Min() != 0.25 || h.Max() != 0.25 {
		t.Fatalf("single-sample stats wrong: %+v", h.Report())
	}
}

// Quantiles of a known uniform grid must land within one bucket (~19%
// relative) of the exact value.
func TestLatencyHistQuantileAccuracy(t *testing.T) {
	var h LatencyHist
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) * 1e-4) // 0.1ms .. 1s uniform
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := p * float64(n) * 1e-4
		got := h.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > 0.20 {
			t.Errorf("Quantile(%v) = %v, exact %v, rel err %.3f > 0.20", p, got, exact, rel)
		}
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	if mean := h.Mean(); math.Abs(mean-0.50005) > 1e-9 {
		t.Fatalf("Mean = %v, want 0.50005", mean)
	}
}

func TestLatencyHistMonotoneQuantiles(t *testing.T) {
	var h LatencyHist
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.Observe(math.Exp(rng.NormFloat64()) * 1e-3)
	}
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotone at p=%v: %v < %v", p, q, prev)
		}
		prev = q
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatalf("extreme quantiles don't match min/max")
	}
}

func TestLatencyHistNegativeAndHuge(t *testing.T) {
	var h LatencyHist
	h.Observe(-5)         // clamps to 0
	h.Observe(1e9)        // lands in the overflow bucket
	h.Observe(math.NaN()) // clamps to 0
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1e9 {
		t.Fatalf("min/max = %v/%v, want 0/1e9", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q < 0 {
		t.Fatalf("Quantile(0.5) = %v, want >= 0", q)
	}
}

func TestLatencyHistMerge(t *testing.T) {
	var a, b, all LatencyHist
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		v := math.Exp(rng.NormFloat64()) * 1e-2
		all.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	ra, rall := a.Report(), all.Report()
	// Mean sums floats in a different order, so allow rounding slack there;
	// everything else merges exactly.
	if math.Abs(ra.Mean-rall.Mean) > 1e-12 {
		t.Fatalf("merged mean %v != combined mean %v", ra.Mean, rall.Mean)
	}
	ra.Mean, rall.Mean = 0, 0
	if ra != rall {
		t.Fatalf("merged report %+v != combined report %+v", ra, rall)
	}
	var empty LatencyHist
	a.Merge(&empty) // merging empty is a no-op
	got := a.Report()
	got.Mean, rall.Mean = 0, 0
	if got != rall {
		t.Fatalf("merge of empty changed the report")
	}
}

func TestLatencyHistConcurrent(t *testing.T) {
	var h LatencyHist
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Float64())
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
}

func TestLatencyBucketBoundaries(t *testing.T) {
	// Every bucket's lower bound must map into that bucket, and a value just
	// below it into the previous one.
	for i := 1; i < latBuckets-1; i++ {
		lo := latBound(i)
		if got := latBucket(lo); got != i {
			t.Fatalf("latBucket(bound(%d)) = %d", i, got)
		}
		if got := latBucket(lo * 0.999); got != i-1 {
			t.Fatalf("latBucket(just under bound(%d)) = %d, want %d", i, got, i-1)
		}
	}
}
