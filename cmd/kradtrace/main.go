// Command kradtrace runs a small simulation with full task-level tracing
// and renders it: an ASCII Gantt chart (one row per job, digits showing the
// executing category), a per-step CSV, and the independent Section 2
// schedule-validity re-check. It exists to make schedules inspectable —
// point it at a scenario and watch DEQ's space sharing and RR's cycling.
//
// Usage:
//
//	kradtrace [-scenario adversarial|etl|overload] [-sched k-rad] [-width 160]
package main

import (
	"flag"
	"fmt"
	"log"

	"krad/internal/analysis"
	"krad/internal/dag"
	"krad/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kradtrace: ")
	var (
		scenario  = flag.String("scenario", "etl", "scenario: etl, adversarial, overload")
		schedFlag = flag.String("sched", "k-rad", fmt.Sprintf("scheduler: one of %v", analysis.SchedulerNames()))
		width     = flag.Int("width", 160, "maximum Gantt width (steps)")
	)
	flag.Parse()

	k, caps, pick, specs, blurb := buildScenario(*scenario)
	scheduler, err := analysis.NewScheduler(*schedFlag, k)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		K: k, Caps: caps, Scheduler: scheduler, Pick: pick,
		Trace: sim.TraceTasks, ValidateAllotments: true,
	}, specs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario: %s — %s\n", *scenario, blurb)
	fmt.Printf("scheduler %s on caps %v: makespan %d, mean response %.2f\n\n",
		res.Scheduler, caps, res.Makespan, res.MeanResponse())
	fmt.Print(res.Trace.Gantt(len(res.Jobs), *width))

	if err := sim.ValidateSchedule(specs, res); err != nil {
		log.Fatalf("schedule INVALID: %v", err)
	}
	fmt.Println("\nschedule re-validated against the Section 2 conditions: OK")
}

func buildScenario(name string) (k int, caps []int, pick dag.PickPolicy, specs []sim.JobSpec, blurb string) {
	switch name {
	case "etl":
		// Three heterogeneous pipelines sharing a CPU+vector+I/O machine.
		k, caps, pick = 3, []int{4, 2, 2}, dag.PickFIFO
		for i := 0; i < 3; i++ {
			g := dag.Pipeline(3, 3, 6, func(s int) dag.Category { return dag.Category(s + 1) }).
				Named(fmt.Sprintf("pipeline-%d", i))
			specs = append(specs, sim.JobSpec{Graph: g, Release: int64(2 * i)})
		}
		blurb = "three staggered CPU→vector→I/O pipelines under DEQ space sharing"
	case "adversarial":
		adv, err := dag.NewAdversarial(2, 2, []int{2, 2})
		if err != nil {
			log.Fatal(err)
		}
		k, caps, pick = 2, []int{2, 2}, dag.PickCPLast
		for _, g := range adv.JobSet(true) {
			specs = append(specs, sim.JobSpec{Graph: g})
		}
		blurb = fmt.Sprintf("Figure 3 instance (K=2, m=2): adversary forces ≈%d steps where the optimum needs %d",
			adv.WorstCaseMakespan(), adv.OptimalMakespan())
	case "overload":
		k, caps, pick = 1, []int{2}, dag.PickFIFO
		for i := 0; i < 7; i++ {
			specs = append(specs, sim.JobSpec{Graph: dag.UniformChain(1, 4, 1).Named(fmt.Sprintf("chain-%d", i))})
		}
		blurb = "7 chains on 2 processors: watch the round-robin cycles"
	case "families":
		// One job from each classic parallel-computation family sharing a
		// two-category machine.
		k, caps, pick = 2, []int{4, 2}, dag.PickFIFO
		specs = []sim.JobSpec{
			{Graph: dag.BinaryReduction(2, 8, 1, 2).Named("reduce")},
			{Graph: dag.Butterfly(2, 3, func(r int) dag.Category { return dag.Category(r%2 + 1) }).Named("butterfly")},
			{Graph: dag.DivideAndConquer(2, 3, 2, 1, 1, 2).Named("dnc")},
			{Graph: dag.Stencil2D(2, 6, 4, 2, 1, 2).Named("stencil")},
		}
		blurb = "reduction tree, butterfly, divide-and-conquer and stencil side by side"
	default:
		log.Fatalf("unknown scenario %q (have etl, adversarial, overload, families)", name)
	}
	return
}
