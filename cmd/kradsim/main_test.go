package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sim"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad int accepted")
	}
}

func TestParsePick(t *testing.T) {
	cases := map[string]dag.PickPolicy{
		"fifo": dag.PickFIFO, "lifo": dag.PickLIFO, "random": dag.PickRandom,
		"cp-first": dag.PickCPFirst, "cp-last": dag.PickCPLast,
	}
	for name, want := range cases {
		got, err := parsePick(name)
		if err != nil || got != want {
			t.Errorf("parsePick(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parsePick("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestParseShapes(t *testing.T) {
	got, err := parseShapes("chain, random")
	if err != nil || len(got) != 2 {
		t.Errorf("parseShapes = %v, %v", got, err)
	}
	if got, err := parseShapes(""); err != nil || got != nil {
		t.Errorf("empty = %v, %v", got, err)
	}
	if _, err := parseShapes("nope"); err == nil {
		t.Error("unknown shape accepted")
	}
}

func TestGenerateArrivals(t *testing.T) {
	for _, arrive := range []string{"batched", "poisson:2.5", "uniform:1,4", "bursty:5,20"} {
		specs, err := generate(2, 10, "", arrive, 2, 10, 1)
		if err != nil {
			t.Errorf("%s: %v", arrive, err)
			continue
		}
		if len(specs) != 10 {
			t.Errorf("%s: %d specs", arrive, len(specs))
		}
	}
	for _, bad := range []string{"poisson:x", "uniform:1", "bursty:0,1", "warp:9"} {
		if _, err := generate(2, 5, "", bad, 2, 10, 1); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.json")
	specs := []sim.JobSpec{
		{Graph: dag.Figure1(), Release: 0},
		{Graph: dag.UniformChain(3, 5, 2), Release: 7},
	}
	if err := saveSpecs(path, specs); err != nil {
		t.Fatal(err)
	}
	back, err := loadSpecs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(specs) {
		t.Fatalf("%d jobs back, want %d", len(back), len(specs))
	}
	for i := range specs {
		if back[i].Release != specs[i].Release {
			t.Errorf("job %d release %d, want %d", i, back[i].Release, specs[i].Release)
		}
		if back[i].Graph.NumTasks() != specs[i].Graph.NumTasks() ||
			back[i].Graph.Span() != specs[i].Graph.Span() {
			t.Errorf("job %d shape changed", i)
		}
	}
}

func TestLoadSpecsErrors(t *testing.T) {
	if _, err := loadSpecs("/nonexistent/path.json"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSpecs(bad); err == nil {
		t.Error("malformed file accepted")
	}
	noGraph := filepath.Join(dir, "nograph.json")
	if err := os.WriteFile(noGraph, []byte(`[{"release": 3}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSpecs(noGraph); err == nil {
		t.Error("graph-less job accepted")
	}
}

func TestLoadSpecsMalformedJSONMessage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	// Syntax error on line 2: the message must point at it and remind the
	// user of the expected format — this is what kradsim prints before
	// exiting non-zero.
	body := "[\n {\"release\": 0, \"graph\": {bad}}\n]"
	if err := os.WriteFile(bad, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := loadSpecs(bad)
	if err == nil {
		t.Fatal("malformed file accepted")
	}
	msg := err.Error()
	for _, want := range []string{bad, "line 2", `"graph"`, "expected"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}

	// Type errors (valid JSON, wrong shape) get located too.
	typo := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(typo, []byte(`[{"release": "soon"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = loadSpecs(typo)
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("type error not located: %v", err)
	}
}

func TestWriteRunJSONIncludesRatios(t *testing.T) {
	res, err := sim.Run(sim.Config{
		K: 2, Caps: []int{2, 2}, Scheduler: core.NewKRAD(2),
		Pick: dag.PickFIFO, ValidateAllotments: true,
	}, []sim.JobSpec{
		{Graph: dag.UniformChain(2, 4, 1)},
		{Graph: dag.UniformChain(2, 3, 2), Release: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := writeRunJSON(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(data, &obj); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	ratios, ok := obj["ratios"].(map[string]any)
	if !ok {
		t.Fatalf("no ratios object in %v", obj)
	}
	for _, key := range []string{
		"makespan_lb", "makespan_ratio", "makespan_bound",
		"response_lb", "response_ratio", "response_bound", "light_load",
	} {
		if _, ok := ratios[key]; !ok {
			t.Errorf("ratios missing %q", key)
		}
	}
	if mr := ratios["makespan_ratio"].(float64); mr < 1 {
		t.Errorf("makespan ratio %v < 1", mr)
	}
	if ms := obj["makespan"].(float64); int64(ms) != res.Makespan {
		t.Errorf("makespan %v, want %d", ms, res.Makespan)
	}
}

func TestSaveSpecsRejectsSourceJobs(t *testing.T) {
	dir := t.TempDir()
	err := saveSpecs(filepath.Join(dir, "x.json"), []sim.JobSpec{{Source: sim.GraphSource(dag.Figure1())}})
	if err == nil {
		t.Error("source-backed spec accepted")
	}
}
