// Quickstart: build a heterogeneous job by hand, schedule it with K-RAD
// alongside a background mix, and check the paper's guarantees on the run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"krad"
)

func main() {
	log.SetFlags(0)

	// A machine with two resource categories: 4 CPUs (category 1) and
	// 2 I/O processors (category 2).
	const K = 2
	caps := []int{4, 2}

	// An ETL-style job: read (I/O) → decode (CPU) → 6-way parallel crunch
	// (CPU) → merge (CPU) → write (I/O).
	etl := krad.NewGraph(K).Named("etl")
	read := etl.AddTask(2)
	decode := etl.AddTask(1)
	etl.MustEdge(read, decode)
	merge := etl.AddTask(1)
	for i := 0; i < 6; i++ {
		c := etl.AddTask(1)
		etl.MustEdge(decode, c)
		etl.MustEdge(c, merge)
	}
	write := etl.AddTask(2)
	etl.MustEdge(merge, write)

	fmt.Printf("job %q: tasks=%d span=%d work per category=%v\n",
		etl.Name(), etl.NumTasks(), etl.Span(), etl.WorkVector())

	// Background load: a pipeline and a map-reduce, released later.
	specs := []krad.JobSpec{
		{Graph: etl},
		{Graph: krad.Pipeline(K, 2, 5, func(s int) krad.Category { return krad.Category(s + 1) }), Release: 1},
		{Graph: krad.MapReduce(K, 8, 4, 2, 1, 1, 2), Release: 3},
	}

	res, err := krad.Run(krad.Config{
		K:                  K,
		Caps:               caps,
		Scheduler:          krad.NewKRAD(K),
		Pick:               krad.PickFIFO,
		Trace:              krad.TraceTasks,
		ValidateAllotments: true,
	}, specs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmakespan: %d steps\n", res.Makespan)
	for _, j := range res.Jobs {
		fmt.Printf("  job %d: released %d, completed %d, response %d\n",
			j.ID, j.Release, j.Completion, j.Response())
	}

	// Compare the measured schedule against the paper's bounds.
	r := krad.ComputeRatios(res)
	fmt.Printf("\nmakespan ratio vs lower bound: %.3f (Theorem 3 bound: %.3f)\n",
		r.MakespanRatio, r.MakespanBound)

	// Independently re-validate the schedule (precedence, capacity,
	// category matching) from the recorded trace.
	if err := krad.ValidateSchedule(specs, res); err != nil {
		log.Fatalf("schedule invalid: %v", err)
	}
	fmt.Println("schedule validity re-checked: OK")

	fmt.Println("\nGantt (digit = executing category):")
	fmt.Print(res.Trace.Gantt(len(res.Jobs), 100))
}
