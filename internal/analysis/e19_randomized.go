package analysis

import (
	"fmt"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sim"
)

// RunE19 measures what randomization buys against the Theorem 1 adversary.
// The deterministic lower-bound construction relies on the adversary
// knowing which job the scheduler's fixed queue order reaches last; an
// oblivious adversary facing a randomized round-robin order (RandomRAD)
// cannot arrange that, so the big job's first critical task runs in
// expectation half a cycle earlier. The table replays the Figure 3
// instance against deterministic K-RAD and against randomized K-RAD
// (mean over seeds), both with the adversarial CP-last picker. Expected
// shape: deterministic ratios sit at the construction's exact value; the
// randomized mean is strictly smaller (≈ one half-cycle of the K-step
// pipeline saved), echoing the paper's remark that randomized algorithms
// have a weaker lower bound (2 − 1/√P at K = 1, Shmoys et al.).
func RunE19(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E19",
		Title:  "Randomization vs the deterministic adversary (Theorem 1 context)",
		Header: []string{"K", "Pmax", "m", "det T", "det ratio", "rand mean T", "rand mean ratio", "limit"},
	}
	seeds := 9
	ms := []int{2, 4, 8}
	if opts.Quick {
		seeds = 5
		ms = []int{2, 4}
	}
	for _, kp := range []struct{ k, p int }{{2, 4}, {3, 2}, {3, 4}} {
		for _, m := range ms {
			caps := make([]int, kp.k)
			for i := range caps {
				caps[i] = kp.p
			}
			adv, err := dag.NewAdversarial(kp.k, m, caps)
			if err != nil {
				return nil, err
			}
			specs := make([]sim.JobSpec, 0, adv.NumJobs())
			for _, g := range adv.JobSet(true) {
				specs = append(specs, sim.JobSpec{Graph: g})
			}
			tStar := float64(adv.OptimalMakespan())

			det, err := sim.Run(sim.Config{
				K: kp.k, Caps: caps, Scheduler: core.NewKRAD(kp.k), Pick: dag.PickCPLast,
			}, specs)
			if err != nil {
				return nil, err
			}

			var sum float64
			for s := 0; s < seeds; s++ {
				res, err := sim.Run(sim.Config{
					K: kp.k, Caps: caps,
					Scheduler: core.NewRandomKRAD(kp.k, opts.seed()+int64(s)*101),
					Pick:      dag.PickCPLast,
				}, specs)
				if err != nil {
					return nil, err
				}
				sum += float64(res.Makespan)
			}
			randMean := sum / float64(seeds)

			detRatio := float64(det.Makespan) / tStar
			randRatio := randMean / tStar
			t.AddRow(kp.k, kp.p, m, det.Makespan, detRatio,
				fmt.Sprintf("%.1f", randMean), randRatio,
				metrics.MakespanCompetitiveLimit(kp.k, caps))
			if randRatio >= detRatio {
				t.AddNote("UNEXPECTED: randomization did not beat the deterministic adversary at K=%d P=%d m=%d (%.3f ≥ %.3f)", kp.k, kp.p, m, randRatio, detRatio)
			}
		}
	}
	t.AddNote("randomized rows are means over %d seeds; the oblivious adversary still defers critical tasks (CP-last) but cannot place the big job last in a random service order", seeds)
	return t, nil
}
