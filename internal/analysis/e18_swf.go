package analysis

import (
	"fmt"
	"strings"

	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sim"
	"krad/internal/workload"
)

// RunE18 replays an archive-style workload log: a seeded synthetic log in
// the Standard Workload Format (the Parallel Workloads Archive format) is
// parsed into rigid jobs — p processors for t steps, the SWF semantics —
// and scheduled by K-RAD and the main baselines on a K = 3 machine with
// partition-based category assignment. Expected shape: K-RAD's makespan
// ratio against the Section 4 lower bound stays under the Theorem 3
// bound on real-shaped (bursty submits, power-of-two widths, heavy-tailed
// runtimes) traffic, and the fair/unfair scheduler ordering from E8/E17
// persists on log-shaped workloads.
func RunE18(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E18",
		Title:  "Archive-log replay (Standard Workload Format)",
		Header: []string{"scheduler", "jobs", "makespan", "ratio", "Thm3 bound", "mean resp", "max resp", "util/cat"},
	}
	nJobs := 200
	if opts.Quick {
		nJobs = 60
	}
	var log strings.Builder
	if err := workload.WriteSyntheticSWF(&log, nJobs, opts.seed()); err != nil {
		return nil, err
	}
	const k = 3
	caps := []int{16, 16, 16}
	specs, _, err := workload.ParseSWF(strings.NewReader(log.String()), workload.SWFOptions{
		K: k, TimeScale: 60, MaxProcs: 16,
		Category: func(rec workload.SWFRecord, _ int) dag.Category {
			p := rec.Partition
			if p < 1 {
				p = 1
			}
			return dag.Category((p-1)%k + 1)
		},
	})
	if err != nil {
		return nil, err
	}

	bound := metrics.MakespanCompetitiveLimit(k, caps)
	for _, name := range []string{"k-rad", "deq-only", "rr-only", "equi", "fcfs"} {
		s, err := NewScheduler(name, k)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Config{
			K: k, Caps: caps, Scheduler: s, ValidateAllotments: true,
		}, specs)
		if err != nil {
			return nil, fmt.Errorf("E18 %s: %w", name, err)
		}
		lb := metrics.MakespanLowerBound(res)
		ratio := float64(res.Makespan) / float64(lb)
		var maxResp int64
		for _, j := range res.Jobs {
			if r := j.Response(); r > maxResp {
				maxResp = r
			}
		}
		var util []string
		for _, u := range res.Utilization() {
			util = append(util, fmt.Sprintf("%.0f%%", 100*u))
		}
		t.AddRow(name, len(specs), res.Makespan, ratio, bound,
			fmt.Sprintf("%.1f", res.MeanResponse()), maxResp, strings.Join(util, "/"))
		if name == "k-rad" && ratio > bound {
			t.AddNote("FAIL: K-RAD violated Theorem 3 on the SWF replay (ratio %.3f)", ratio)
		}
	}
	t.AddNote("synthetic SWF log (%d submitted jobs), rigid p×t jobs, categories from the log's partition field mod K", nJobs)
	return t, nil
}
