package core

import (
	"math/rand"
	"sort"

	"krad/internal/sched"
)

// RandomRAD is RAD with a randomized round-robin order: each cycle serves
// the unmarked α-active jobs in a fresh seeded-random order instead of
// ascending job ID. Theorem 1's adversary is built against deterministic
// schedulers — it arranges the critical job to be the last one the fixed
// queue order reaches. Against a randomized order the (oblivious)
// adversary cannot know the position, so the critical level-1 task runs in
// expectation half a cycle earlier, and the measured adversarial ratio
// drops below the deterministic K + 1 − 1/Pmax limit (experiment E19) —
// matching the paper's remark that the randomized lower bound (Shmoys et
// al.: 2 − 1/√P at K = 1) is weaker than the deterministic one.
//
// Everything else (DEQ under light load, marking, cycle completion with
// rotation) matches RAD, so light-load behavior is identical.
type RandomRAD struct {
	marked map[int]bool
	rot    int
	rng    *rand.Rand
	// order is the current cycle's service order (job IDs), drawn when a
	// new cycle begins.
	order map[int]int
	// horizon is the leap-safety report of the most recent Allot call; the
	// DEQ branch draws no random numbers, so the same stability analysis
	// as deterministic RAD applies (see RAD.StableHorizon).
	horizon int64
}

// NewRandomRAD returns a randomized single-category RAD. Deterministic for
// a given seed.
func NewRandomRAD(seed int64) *RandomRAD {
	return &RandomRAD{
		marked: make(map[int]bool),
		rng:    rand.New(rand.NewSource(seed)),
		order:  make(map[int]int),
	}
}

// Name implements sched.CategoryScheduler.
func (r *RandomRAD) Name() string { return "random-rad" }

// Allot mirrors RAD.Allot with a per-cycle random permutation of the
// unmarked queue.
func (r *RandomRAD) Allot(t int64, jobs []sched.CatJob, p int) []int {
	if len(jobs) == 0 {
		r.horizon = sched.Unbounded
		return emptyAllot
	}
	allot := make([]int, len(jobs))
	if p <= 0 {
		r.horizon = sched.Unbounded
		return allot
	}
	q := make([]int, 0, len(jobs))
	qp := make([]int, 0, len(jobs))
	for i, j := range jobs {
		if r.marked[j.ID] {
			qp = append(qp, i)
		} else {
			q = append(q, i)
		}
	}
	if len(q) > p {
		r.horizon = 0
		// Assign cycle positions lazily: jobs without a position in the
		// current cycle draw one.
		for _, i := range q {
			if _, ok := r.order[jobs[i].ID]; !ok {
				r.order[jobs[i].ID] = r.rng.Int()
			}
		}
		// Serve the p unmarked jobs with the smallest cycle keys.
		sort.Slice(q, func(a, b int) bool { return r.order[jobs[q[a]].ID] < r.order[jobs[q[b]].ID] })
		for _, i := range q[:p] {
			allot[i] = 1
			r.marked[jobs[i].ID] = true
		}
		return allot
	}
	need := p - len(q)
	if need > len(qp) {
		need = len(qp)
	}
	if need > 0 {
		start := r.rot % len(qp)
		for j := 0; j < need; j++ {
			q = append(q, qp[(start+j)%len(qp)])
		}
		r.rot += need
	}
	// Same leap-safety rule as RAD: stable only when this step was pure
	// DEQ over a mark-free queue (the rng is untouched on this branch).
	if len(qp) == 0 {
		r.horizon = deqStableHorizon(jobs, p)
	} else {
		r.horizon = 0
	}
	desires := make([]int, len(q))
	for j, i := range q {
		desires[j] = jobs[i].Desire
	}
	for j, a := range Deq(desires, p, int(t)) {
		allot[q[j]] = a
	}
	clear(r.marked)
	clear(r.order) // next overload starts a fresh random cycle
	return allot
}

// StableHorizon implements sched.CategoryStable; see RAD.StableHorizon.
func (r *RandomRAD) StableHorizon() int64 { return r.horizon }

// LeapTotals implements sched.CategoryStable; the DEQ branch is identical
// to deterministic RAD's, so the same closed form applies.
func (r *RandomRAD) LeapTotals(t int64, jobs []sched.CatJob, p int, n int64, dst []int) {
	deqLeapTotals(t, jobs, p, n, dst)
}

// JobsDone drops per-job state.
func (r *RandomRAD) JobsDone(ids []int) {
	for _, id := range ids {
		delete(r.marked, id)
		delete(r.order, id)
	}
}

// NewRandomKRAD composes K randomized RADs.
func NewRandomKRAD(k int, seed int64) *sched.PerCategory {
	cats := make([]sched.CategoryScheduler, k)
	for i := range cats {
		cats[i] = NewRandomRAD(seed + int64(i)*7919)
	}
	return sched.NewPerCategory("k-rad-random", cats)
}

var (
	_ sched.CategoryScheduler = (*RandomRAD)(nil)
	_ sched.CategoryCompleter = (*RandomRAD)(nil)
	_ sched.CategoryStable    = (*RandomRAD)(nil)
)
