package analysis

import (
	"fmt"

	"krad/internal/metrics"
	"krad/internal/sim"
)

// BoundCheck is the outcome of evaluating one of the paper's guarantees
// against one measured run.
type BoundCheck struct {
	// Name identifies the theorem/lemma.
	Name string
	// Measured and Bound are the two sides of the inequality
	// Measured ≤ Bound.
	Measured, Bound float64
	// OK reports Measured ≤ Bound (within floating-point slack).
	OK bool
}

func check(name string, measured, bound float64) BoundCheck {
	return BoundCheck{Name: name, Measured: measured, Bound: bound, OK: measured <= bound*(1+1e-9)}
}

// String formats the check result.
func (b BoundCheck) String() string {
	rel := "≤"
	if !b.OK {
		rel = ">"
	}
	return fmt.Sprintf("%s: measured %.4f %s bound %.4f", b.Name, b.Measured, rel, b.Bound)
}

// CheckLemma2 evaluates the Lemma 2 makespan guarantee
//
//	T(J) ≤ Σα T1(J,α)/Pα + (1 − 1/Pmax)·max_i (T∞(Ji) + r(Ji))
//
// on a measured K-RAD run. The lemma's premise is that the schedule has no
// idle intervals; batched job sets always satisfy it. Callers using online
// arrivals should only assert this on runs known to be gap-free.
func CheckLemma2(res *sim.Result) BoundCheck {
	return check("Lemma 2 (makespan bound)", float64(res.Makespan), metrics.MakespanUpperBound(res))
}

// CheckTheorem3 evaluates the Theorem 3 makespan competitiveness
//
//	T(J) / LB(J) ≤ K + 1 − 1/Pmax
//
// where LB is the Section 4 lower bound on the optimal makespan. Because
// LB ≤ T*, the measured quotient upper-bounds the true competitive ratio,
// so OK here implies the theorem held on this instance.
func CheckTheorem3(res *sim.Result) BoundCheck {
	lb := metrics.MakespanLowerBound(res)
	ratio := 0.0
	if lb > 0 {
		ratio = float64(res.Makespan) / float64(lb)
	}
	return check("Theorem 3 (makespan competitiveness)", ratio, metrics.MakespanCompetitiveLimit(res.K, res.Caps))
}

// CheckInequality5 evaluates the explicit Theorem 5 response-time bound
//
//	R(J) ≤ (2 − 2/(|J|+1))·Σα swa(J,α) + T∞(J)
//
// which only applies to batched runs that stayed in the light-workload
// regime (|J(α,t)| ≤ Pα throughout); it returns ok=false in Applicable
// when the run left that regime.
func CheckInequality5(res *sim.Result) (BoundCheck, bool) {
	bc := check("Inequality 5 (light-load response bound)", float64(res.TotalResponse()), metrics.ResponseUpperBoundLight(res))
	return bc, !res.EverOverloaded()
}

// CheckTheorem5 evaluates the Theorem 5 competitiveness
//
//	R(J) / RLB(J) ≤ 2K + 1 − 2K/(|J|+1)
//
// for light-workload batched runs (RLB is the Section 6 lower bound).
func CheckTheorem5(res *sim.Result) (BoundCheck, bool) {
	lb := metrics.ResponseLowerBound(res)
	ratio := 0.0
	if lb > 0 {
		ratio = float64(res.TotalResponse()) / lb
	}
	bc := check("Theorem 5 (light-load MRT competitiveness)", ratio,
		metrics.ResponseCompetitiveLimitLight(res.K, len(res.Jobs)))
	return bc, !res.EverOverloaded()
}

// CheckTheorem6 evaluates the general batched MRT competitiveness
//
//	R(J) / RLB(J) ≤ 4K + 1 − 4K/(|J|+1)
func CheckTheorem6(res *sim.Result) BoundCheck {
	lb := metrics.ResponseLowerBound(res)
	ratio := 0.0
	if lb > 0 {
		ratio = float64(res.TotalResponse()) / lb
	}
	return check("Theorem 6 (batched MRT competitiveness)", ratio,
		metrics.ResponseCompetitiveLimit(res.K, len(res.Jobs)))
}

// CheckAll runs every applicable check for a batched run and returns the
// failures (empty = all bounds held).
func CheckAll(res *sim.Result) []BoundCheck {
	var failures []BoundCheck
	consider := func(bc BoundCheck, applicable bool) {
		if applicable && !bc.OK {
			failures = append(failures, bc)
		}
	}
	batched := true
	for _, j := range res.Jobs {
		if j.Release != 0 {
			batched = false
			break
		}
	}
	consider(CheckTheorem3(res), true)
	if batched {
		consider(CheckLemma2(res), true)
		bc, app := CheckInequality5(res)
		consider(bc, app)
		bc, app = CheckTheorem5(res)
		consider(bc, app)
		consider(CheckTheorem6(res), true)
	}
	return failures
}
