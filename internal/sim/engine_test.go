package sim

import (
	"strings"
	"testing"

	"krad/internal/baselines"
	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sched"
)

func mustRun(t *testing.T, cfg Config, specs []JobSpec) *Result {
	t.Helper()
	res, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func kradCfg(k int, caps ...int) Config {
	return Config{
		K:                  k,
		Caps:               caps,
		Scheduler:          core.NewKRAD(k),
		Pick:               dag.PickFIFO,
		Trace:              TraceTasks,
		ValidateAllotments: true,
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	good := []JobSpec{{Graph: dag.Singleton(2, 1)}}
	cases := []struct {
		name  string
		cfg   Config
		specs []JobSpec
	}{
		{"k=0", Config{K: 0, Caps: nil, Scheduler: core.NewKRAD(1)}, good},
		{"caps mismatch", Config{K: 2, Caps: []int{1}, Scheduler: core.NewKRAD(2)}, good},
		{"zero cap", Config{K: 2, Caps: []int{1, 0}, Scheduler: core.NewKRAD(2)}, good},
		{"nil scheduler", Config{K: 2, Caps: []int{1, 1}}, good},
		{"no jobs", kradCfg(2, 1, 1), nil},
		{"nil graph", kradCfg(2, 1, 1), []JobSpec{{}}},
		{"k mismatch", kradCfg(2, 1, 1), []JobSpec{{Graph: dag.Singleton(3, 1)}}},
		{"empty graph", kradCfg(2, 1, 1), []JobSpec{{Graph: dag.New(2)}}},
		{"negative release", kradCfg(2, 1, 1), []JobSpec{{Graph: dag.Singleton(2, 1), Release: -1}}},
	}
	for _, c := range cases {
		if _, err := Run(c.cfg, c.specs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSingleChainTakesSpanSteps(t *testing.T) {
	g := dag.RoundRobinChain(3, 12)
	res := mustRun(t, kradCfg(3, 2, 2, 2), []JobSpec{{Graph: g}})
	if res.Makespan != 12 {
		t.Errorf("makespan %d, want 12 (the span)", res.Makespan)
	}
	if res.Jobs[0].Response() != 12 {
		t.Errorf("response %d, want 12", res.Jobs[0].Response())
	}
	if err := ValidateSchedule([]JobSpec{{Graph: g}}, res); err != nil {
		t.Error(err)
	}
}

func TestReleaseTimeDelaysStart(t *testing.T) {
	g := dag.UniformChain(1, 3, 1)
	res := mustRun(t, kradCfg(1, 4), []JobSpec{{Graph: g, Release: 10}})
	if res.Makespan != 13 {
		t.Errorf("makespan %d, want 13 (release 10 + span 3)", res.Makespan)
	}
	if res.Jobs[0].Response() != 3 {
		t.Errorf("response %d, want 3", res.Jobs[0].Response())
	}
	if err := ValidateSchedule([]JobSpec{{Graph: g, Release: 10}}, res); err != nil {
		t.Error(err)
	}
}

func TestIdleIntervalFastForward(t *testing.T) {
	// Two jobs with a long gap: the engine must skip the idle interval and
	// still produce correct completion times.
	specs := []JobSpec{
		{Graph: dag.UniformChain(1, 2, 1), Release: 0},
		{Graph: dag.UniformChain(1, 2, 1), Release: 1000},
	}
	res := mustRun(t, kradCfg(1, 2), specs)
	if res.Jobs[0].Completion != 2 {
		t.Errorf("first job completed at %d, want 2", res.Jobs[0].Completion)
	}
	if res.Jobs[1].Completion != 1002 {
		t.Errorf("second job completed at %d, want 1002", res.Jobs[1].Completion)
	}
	if err := ValidateSchedule(specs, res); err != nil {
		t.Error(err)
	}
}

func TestJobIDsFollowArrivalOrder(t *testing.T) {
	// Specs submitted out of release order must be renumbered by release.
	specs := []JobSpec{
		{Graph: dag.Singleton(1, 1), Release: 5},
		{Graph: dag.Singleton(1, 1), Release: 0},
	}
	res := mustRun(t, kradCfg(1, 1), specs)
	if res.Jobs[0].Release != 0 || res.Jobs[1].Release != 5 {
		t.Errorf("jobs not sorted by release: %+v", res.Jobs)
	}
}

func TestTwoJobsShareProcessorsUnderDEQ(t *testing.T) {
	// Two identical fork-joins wanting 4 each on 4 processors: DEQ splits
	// 2/2 during the wide phase, so both finish at the same time.
	g1 := dag.ForkJoin(1, 4, 1, 1, 1)
	g2 := dag.ForkJoin(1, 4, 1, 1, 1)
	specs := []JobSpec{{Graph: g1}, {Graph: g2}}
	res := mustRun(t, kradCfg(1, 4), specs)
	if res.Jobs[0].Completion != res.Jobs[1].Completion {
		t.Errorf("symmetric jobs finished at %d and %d", res.Jobs[0].Completion, res.Jobs[1].Completion)
	}
	// Work 6 each, span 3: alone it takes 1 + 1 + 1(join? width 4 over 2
	// procs = 2 steps) — with sharing both need 1 + 2 + 1 = 4 steps.
	if res.Makespan != 4 {
		t.Errorf("makespan %d, want 4", res.Makespan)
	}
	if err := ValidateSchedule(specs, res); err != nil {
		t.Error(err)
	}
}

func TestOverloadedFlagPerCategory(t *testing.T) {
	// 3 category-1 singletons on 1 processor → category 1 overloaded;
	// category 2 never is.
	specs := []JobSpec{
		{Graph: dag.Singleton(2, 1)},
		{Graph: dag.Singleton(2, 1)},
		{Graph: dag.Singleton(2, 1)},
		{Graph: dag.Singleton(2, 2)},
	}
	res := mustRun(t, kradCfg(2, 1, 4), specs)
	if !res.Overloaded[0] {
		t.Error("category 1 not flagged overloaded")
	}
	if res.Overloaded[1] {
		t.Error("category 2 wrongly flagged overloaded")
	}
	if !res.EverOverloaded() {
		t.Error("EverOverloaded false")
	}
}

// overAllotter is a broken scheduler that ignores capacity.
type overAllotter struct{}

func (overAllotter) Name() string { return "over-allotter" }
func (overAllotter) Allot(t int64, jobs []sched.JobView, caps []int) [][]int {
	out := make([][]int, len(jobs))
	for i := range out {
		row := make([]int, len(caps))
		for a := range row {
			row[a] = caps[a] + 1
		}
		out[i] = row
	}
	return out
}

func TestValidateAllotmentsCatchesBrokenScheduler(t *testing.T) {
	cfg := Config{
		K: 1, Caps: []int{2}, Scheduler: overAllotter{},
		ValidateAllotments: true,
	}
	_, err := Run(cfg, []JobSpec{{Graph: dag.Singleton(1, 1)}})
	if err == nil || !strings.Contains(err.Error(), "exceeds capacity") {
		t.Errorf("broken scheduler not caught: %v", err)
	}
}

// idler is a broken scheduler that never allots anything.
type idler struct{}

func (idler) Name() string { return "idler" }
func (idler) Allot(t int64, jobs []sched.JobView, caps []int) [][]int {
	out := make([][]int, len(jobs))
	for i := range out {
		out[i] = make([]int, len(caps))
	}
	return out
}

func TestMaxStepsGuardTripsOnIdleScheduler(t *testing.T) {
	cfg := Config{K: 1, Caps: []int{1}, Scheduler: idler{}, MaxSteps: 100}
	_, err := Run(cfg, []JobSpec{{Graph: dag.Singleton(1, 1)}})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("runaway simulation not caught: %v", err)
	}
}

func TestClairvoyantOracleInjection(t *testing.T) {
	s := baselines.NewSJF()
	cfg := Config{K: 1, Caps: []int{2}, Scheduler: s, ValidateAllotments: true}
	specs := []JobSpec{
		{Graph: dag.UniformChain(1, 5, 1)},
		{Graph: dag.Singleton(1, 1)},
	}
	res := mustRun(t, cfg, specs)
	if res.Makespan != 5 {
		t.Errorf("makespan %d, want 5", res.Makespan)
	}
	// The singleton (shortest) must finish at step 1.
	if res.Jobs[1].Completion != 1 {
		t.Errorf("short job completed at %d, want 1", res.Jobs[1].Completion)
	}
}

func TestParallelExecutionMatchesSerial(t *testing.T) {
	mkSpecs := func() []JobSpec {
		var specs []JobSpec
		for i := 0; i < 40; i++ {
			specs = append(specs, JobSpec{Graph: dag.ForkJoin(2, 6, 1, 2, 1), Release: int64(i / 4)})
		}
		return specs
	}
	base := Config{
		K: 2, Caps: []int{3, 3}, Scheduler: core.NewKRAD(2),
		Pick: dag.PickFIFO, Trace: TraceSteps, ValidateAllotments: true,
	}
	serial := mustRun(t, base, mkSpecs())

	par := base
	par.Scheduler = core.NewKRAD(2)
	par.Parallel = true
	par.Workers = 4
	parallel := mustRun(t, par, mkSpecs())

	if serial.Makespan != parallel.Makespan {
		t.Errorf("makespan differs: serial %d parallel %d", serial.Makespan, parallel.Makespan)
	}
	if serial.TotalResponse() != parallel.TotalResponse() {
		t.Errorf("total response differs: %d vs %d", serial.TotalResponse(), parallel.TotalResponse())
	}
	for i := range serial.Jobs {
		if serial.Jobs[i].Completion != parallel.Jobs[i].Completion {
			t.Fatalf("job %d completion differs: %d vs %d", i, serial.Jobs[i].Completion, parallel.Jobs[i].Completion)
		}
	}
	// Per-step aggregate execution counts must also match.
	if len(serial.Trace.Steps) != len(parallel.Trace.Steps) {
		t.Fatalf("trace lengths differ: %d vs %d", len(serial.Trace.Steps), len(parallel.Trace.Steps))
	}
	for i := range serial.Trace.Steps {
		a, b := serial.Trace.Steps[i], parallel.Trace.Steps[i]
		for c := range a.Executed {
			if a.Executed[c] != b.Executed[c] {
				t.Fatalf("step %d cat %d executed differs: %d vs %d", a.Step, c+1, a.Executed[c], b.Executed[c])
			}
		}
	}
}

func TestResultAccessors(t *testing.T) {
	specs := []JobSpec{
		{Graph: dag.UniformChain(2, 4, 1)},
		{Graph: dag.UniformChain(2, 2, 2)},
	}
	res := mustRun(t, kradCfg(2, 2, 2), specs)
	tw := res.TotalWork()
	if tw[0] != 4 || tw[1] != 2 {
		t.Errorf("TotalWork = %v", tw)
	}
	if res.AggregateSpan() != 6 {
		t.Errorf("AggregateSpan = %d, want 6", res.AggregateSpan())
	}
	if res.MeanResponse() <= 0 {
		t.Error("MeanResponse not positive")
	}
	u := res.Utilization()
	for a, v := range u {
		if v <= 0 || v > 1 {
			t.Errorf("utilization[%d] = %v", a, v)
		}
	}
	if !strings.Contains(res.String(), "k-rad") {
		t.Errorf("String() = %q", res.String())
	}
}
