package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"krad/internal/journal"
	"krad/internal/sim"
)

// Cross-shard work stealing (Config.Steal): an idle shard's step loop
// pulls whole pending jobs off the deepest peer's queue so a skewed
// arrival stream — one hot placement key hashing to one shard — drains at
// fleet speed instead of single-shard speed.
//
// The move is an atomic cancel-on-victim + re-admit-on-thief under two
// shard locks taken in shard-index order (stealFor), and both halves are
// journaled so restart replay and a warm-standby follower rebuild
// bit-identical state: the victim appends a steal record (which jobs
// left, where they went), the thief appends an admit record tagged with
// the jobs' original namespaced IDs (journal.StealAdmitRecord). The
// victim's record is forced to disk before the thief acknowledges, so a
// completed steal implies both halves are durable — which is what makes
// later victim-side compaction safe. The victim's ID table gains a
// redirect entry per stolen job, so status and cancel by the original
// namespaced ID keep working (Service.resolve follows the chain).
//
// A crash can still land between the two records; reconcileSteals repairs
// the ledger at startup and at follower promotion, before any step loop
// runs.

// stealProbeEvery bounds how long an idle steal-enabled shard parks
// before re-probing for victims: work arriving at a peer never kicks this
// shard's wake channel.
const stealProbeEvery = 2 * time.Millisecond

// stealIn records where a stolen job landed (from the thief's journaled
// admit record).
type stealIn struct {
	to      int // thief shard index
	toLocal int // thief-local job ID
}

// stealOut records the victim half of a steal (from the victim's
// journaled steal record): where the job went and the original spec the
// thief was supposed to re-admit — what an orphan repair needs.
type stealOut struct {
	to      int
	toLocal int
	spec    sim.JobSpec
}

// stealLedger is the service-wide reconciliation ledger, keyed by the
// stolen job's original namespaced ID. It is populated only by the
// replay/apply observers (startup replay on a restarting primary, the
// replicated record stream on a follower), never by live steals — a live
// steal writes both records before returning, so it can never need
// repair. Lock order is shard.mu → ledger.mu; reconcileSteals therefore
// snapshots the ledger before touching any shard lock.
type stealLedger struct {
	mu      sync.Mutex
	out     map[int]stealOut
	matched map[int]stealIn
}

func newStealLedger() *stealLedger {
	return &stealLedger{out: make(map[int]stealOut), matched: make(map[int]stealIn)}
}

// stolen folds a replayed victim-side steal record into the ledger.
func (l *stealLedger) stolen(victimIdx int, rec journal.Record, specs []sim.JobSpec) {
	l.mu.Lock()
	for k, id := range rec.IDs {
		l.out[composeID(victimIdx, id)] = stealOut{to: rec.To, toLocal: rec.NBase + k, spec: specs[k]}
	}
	l.mu.Unlock()
}

// admitted folds a replayed thief-side steal admission into the ledger.
func (l *stealLedger) admitted(thiefIdx int, from, ids []int) {
	l.mu.Lock()
	for k, src := range from {
		l.matched[src] = stealIn{to: thiefIdx, toLocal: ids[k]}
	}
	l.mu.Unlock()
}

// stealFor attempts one steal on thief's behalf: pick the peer with the
// deepest stealable (pending) backlog off the lock-free gauges, move up
// to half its pending work — at most Config.StealMax jobs, and never past
// the thief's admission bound — and journal both halves. Returns whether
// any work moved. Called from the thief's own step loop, so at most one
// stealFor runs per thief at a time; the no-victim probe path is
// allocation-free (AllocsPerRun-pinned).
func (s *Service) stealFor(thief *shard) bool {
	var victim *shard
	var best int64
	for _, sh := range s.shards {
		if sh == thief {
			continue
		}
		// Deepest pending backlog wins; ties keep the lowest shard index.
		if w := sh.loadPendWork.Load(); w > best {
			best, victim = w, sh
		}
	}
	if victim == nil {
		return false
	}
	// Two-lock protocol, ordered by shard index so concurrent thieves can
	// never deadlock.
	lo, hi := thief, victim
	if hi.idx < lo.idx {
		lo, hi = hi, lo
	}
	lo.mu.Lock()
	defer lo.mu.Unlock()
	hi.mu.Lock()
	defer hi.mu.Unlock()

	// Re-validate under the locks: the gauges were a hint.
	if thief.closed || victim.closed || thief.stepErr != nil || victim.stepErr != nil {
		return false
	}
	if thief.rep != nil {
		if err := thief.rep.WriteAllowed(); err != nil {
			return false // fenced or lease-expired primary: no new writes
		}
	}
	if !thief.journalHealthyLocked() || !victim.journalHealthyLocked() {
		return false
	}
	target := victim.eng.PendingWork() / 2
	if target <= 0 {
		return false
	}
	maxJobs := s.stealMax
	if free := thief.maxInFlight - thief.eng.Remaining(); free < maxJobs {
		maxJobs = free
	}
	if maxJobs <= 0 {
		return false
	}
	ids := victim.eng.StealCandidates(thief.stealIDs[:0], maxJobs, target)
	thief.stealIDs = ids[:0]
	if len(ids) == 0 {
		return false
	}

	// Journal the victim half first, mirroring cancel's precheck pattern:
	// the candidates are pending under this lock, so once the record is
	// down the Withdraws below cannot fail. The forced sync makes the
	// record durable before the thief acknowledges anything (best-effort
	// under journal.SyncNever, like every other append).
	nbase := thief.eng.NextID()
	if victim.jn != nil {
		vrec := journal.StealRecord(ids, thief.idx, nbase)
		if err := victim.jn.Append(vrec); err != nil {
			return false // victim degraded; nothing moved
		}
		victim.commitLocked(vrec)
		_ = victim.jn.Sync()
	}
	specs := thief.stealSpecs[:0]
	from := thief.stealFrom[:0]
	now := thief.eng.Now()
	for _, id := range ids {
		spec, err := victim.eng.Withdraw(id)
		if err != nil {
			// Unreachable (pending under this lock). Latch loudly: the
			// victim's journal now disagrees with its memory.
			victim.stepErr = fmt.Errorf("server: shard %d: steal withdraw %d: %v", victim.idx, id, err)
			return false
		}
		if spec.Release < now {
			// Shard virtual clocks are independent; a release in the
			// thief's past would be rejected at re-admission. Future
			// releases (not-yet-due jobs) are preserved.
			spec.Release = now
		}
		specs = append(specs, spec)
		from = append(from, composeID(victim.idx, id))
	}
	thief.stealSpecs, thief.stealFrom = specs, from
	nids, err := thief.eng.AdmitBatch(specs)
	if err != nil {
		// Unreachable: the specs were admitted once already and the
		// releases are normalized. Latch loudly — the victim's journal says
		// these jobs moved here.
		thief.stepErr = fmt.Errorf("server: shard %d: steal re-admit from shard %d: %v", thief.idx, victim.idx, err)
		return false
	}
	if thief.jn != nil {
		arec, err := journal.StealAdmitRecord(nids[0], specs, from)
		if err == nil {
			err = thief.jn.Append(arec)
		}
		if err == nil {
			thief.commitLocked(arec)
			_ = thief.jn.Sync()
		}
		// An append failure latches the thief's journal (degraded, sticky):
		// the jobs run from memory, and after a crash startup
		// reconciliation finds the victim's record unmatched and re-homes
		// the jobs to the victim (orphan path).
	}
	thief.stolenIn += int64(len(nids))
	for k, nid := range nids {
		st, _ := thief.eng.JobRef(nid)
		thief.tab.put(nid, st)
		victim.tab.setRedirect(ids[k], composeID(thief.idx, nid))
	}
	thief.syncGaugesLocked()
	victim.syncGaugesLocked()
	return true
}

// stealReplayObserver rebuilds the server-side steal state — redirects,
// stolen-in counters, the reconciliation ledger — while a steal-enabled
// shard's journal replays (journal.ReplayObserved during attachJournal).
// The engine half of each record replays in the journal layer; this
// observer only mirrors what the live stealFor recorded outside the
// engine. Fairness and stealing are mutually exclusive, so a fair record
// in a steal-enabled journal is a hard error.
type stealReplayObserver struct{ sh *shard }

func (o stealReplayObserver) Fair(journal.FairState) error {
	return fmt.Errorf("record is fairness-tagged but fairness is disabled; refusing to drop tenant state (restart with -fairness, or move the journal away)")
}

func (o stealReplayObserver) Admitted(rec journal.Record, ids []int, now int64) {
	if len(rec.From) == 0 {
		return
	}
	o.sh.stolenIn += int64(len(ids))
	for k, src := range rec.From {
		if ShardOf(src) == o.sh.idx {
			// An orphan repair re-admitted the job on its own victim shard;
			// the redirect points back into this shard, overwriting the
			// stale one the original steal record installed.
			o.sh.tab.setRedirect(LocalID(src), composeID(o.sh.idx, ids[k]))
		}
	}
	if o.sh.ledger != nil {
		o.sh.ledger.admitted(o.sh.idx, rec.From, ids)
	}
}

func (o stealReplayObserver) Cancelled(int)        {}
func (o stealReplayObserver) Stepped(sim.StepInfo) {}

func (o stealReplayObserver) Stolen(rec journal.Record, specs []sim.JobSpec) {
	for k, id := range rec.IDs {
		o.sh.tab.setRedirect(id, composeID(rec.To, rec.NBase+k))
	}
	if o.sh.ledger != nil {
		o.sh.ledger.stolen(o.sh.idx, rec, specs)
	}
}

func (o stealReplayObserver) StealSnap(st journal.StealState) {
	o.sh.stolenIn = st.In
	for id, target := range st.Redirects {
		o.sh.tab.setRedirect(id, target)
	}
}

// reconcileSteals repairs steals whose two journal records were split by
// a crash. Runs after every shard's journal has replayed (startup) and at
// follower promotion — always before any step loop can race it. Two
// one-sided states exist:
//
//   - Orphan: the victim's steal record is durable, the thief's admit
//     record is not (the thief crashed before its append/sync). The jobs
//     exist nowhere. Repair re-admits them on the victim under a fresh
//     journaled steal admission, overwriting the stale redirect — chosen
//     over re-admitting on the thief because the victim's durable record
//     already names a thief-local ID the thief may never assign.
//
//   - Duplicate: the thief's admit record is durable, the victim's steal
//     record is not (possible only under non-forced sync policies). The
//     job is pending on both. Repair withdraws the victim's copy now,
//     journaling the steal record the crash ate.
//
// Anything else — the thief consumed the promised ID with a different
// admission, the victim's copy already ran — means the journals diverged;
// that is a hard error, never a silent repair.
func (s *Service) reconcileSteals() error {
	if s.ledger == nil {
		return nil
	}
	// Snapshot under the ledger lock alone (lock order is shard.mu →
	// ledger.mu), in deterministic ID order so repairs journal identically
	// across identical crashes.
	s.ledger.mu.Lock()
	type orphan struct {
		src int
		out stealOut
	}
	type dup struct {
		src int
		in  stealIn
	}
	var orphans []orphan
	var dups []dup
	for src, o := range s.ledger.out {
		if _, ok := s.ledger.matched[src]; !ok {
			orphans = append(orphans, orphan{src, o})
		}
	}
	for src, in := range s.ledger.matched {
		if _, ok := s.ledger.out[src]; !ok {
			dups = append(dups, dup{src, in})
		}
	}
	s.ledger.mu.Unlock()
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].src < orphans[j].src })
	sort.Slice(dups, func(i, j int) bool { return dups[i].src < dups[j].src })
	for _, o := range orphans {
		if err := s.fixOrphanSteal(o.src, o.out); err != nil {
			return err
		}
	}
	for _, d := range dups {
		if err := s.fixDuplicateSteal(d.src, d.in); err != nil {
			return err
		}
	}
	return nil
}

// fixOrphanSteal re-admits a job whose steal lost its thief half: the
// victim journaled the withdraw, the thief never durably admitted. The
// job is re-admitted on the victim itself, journaled as a steal admission
// tagged with the original ID, so the next replay rebuilds the same
// repair and the original ID redirects to the job's new home.
func (s *Service) fixOrphanSteal(src int, out stealOut) error {
	victim := s.shards[ShardOf(src)]
	thief := s.shards[out.to]
	thief.mu.Lock()
	next := thief.eng.NextID()
	thief.mu.Unlock()
	if next > out.toLocal {
		return fmt.Errorf("server: steal of job %d to shard %d diverged: the thief consumed local ID %d without the matching steal admission; refusing to serve diverged journals", src, out.to, out.toLocal)
	}
	victim.mu.Lock()
	defer victim.mu.Unlock()
	if !victim.journalHealthyLocked() {
		return fmt.Errorf("server: shard %d: cannot repair orphaned steal of job %d: %w", victim.idx, src, ErrDegraded)
	}
	spec := out.spec
	if spec.Release < victim.eng.Now() {
		spec.Release = victim.eng.Now()
	}
	nids, err := victim.eng.AdmitBatch([]sim.JobSpec{spec})
	if err != nil {
		return fmt.Errorf("server: shard %d: re-admit orphaned steal of job %d: %w", victim.idx, src, err)
	}
	if victim.jn != nil {
		arec, err := journal.StealAdmitRecord(nids[0], []sim.JobSpec{spec}, []int{src})
		if err == nil {
			err = victim.jn.Append(arec)
		}
		if err != nil {
			return fmt.Errorf("server: shard %d: journal orphaned-steal repair of job %d: %w", victim.idx, src, err)
		}
		victim.commitLocked(arec)
		_ = victim.jn.Sync()
	}
	victim.stolenIn++
	st, _ := victim.eng.JobRef(nids[0])
	victim.tab.put(nids[0], st)
	victim.tab.setRedirect(LocalID(src), composeID(victim.idx, nids[0]))
	victim.syncGaugesLocked()
	s.ledger.mu.Lock()
	s.ledger.matched[src] = stealIn{to: victim.idx, toLocal: nids[0]}
	s.ledger.mu.Unlock()
	return nil
}

// fixDuplicateSteal withdraws the victim-side copy of a job whose steal
// lost its victim half: the thief durably admitted it, but the victim's
// steal record never reached disk, leaving the job pending on both
// shards. The repair performs the withdraw the crash ate, journaled as
// the same steal record.
func (s *Service) fixDuplicateSteal(src int, in stealIn) error {
	victim := s.shards[ShardOf(src)]
	victim.mu.Lock()
	defer victim.mu.Unlock()
	local := LocalID(src)
	if local >= victim.eng.NextID() {
		// The victim's journal lost the admission itself: new admissions
		// would reuse this local ID while the thief's copy runs under the
		// original name. No safe mapping exists.
		return fmt.Errorf("server: shard %d journal lost admitted job %d that shard %d stole; refusing to serve diverged journals", victim.idx, src, in.to)
	}
	st, ok := victim.eng.JobRef(local)
	if !ok || st.Phase != sim.JobPending {
		phase := "retired"
		if ok {
			phase = st.Phase.String()
		}
		return fmt.Errorf("server: job %d is %s on shard %d but also admitted on shard %d by a steal; refusing to serve diverged journals", src, phase, victim.idx, in.to)
	}
	if !victim.journalHealthyLocked() {
		return fmt.Errorf("server: shard %d: cannot repair duplicated steal of job %d: %w", victim.idx, src, ErrDegraded)
	}
	if victim.jn != nil {
		vrec := journal.StealRecord([]int{local}, in.to, in.toLocal)
		if err := victim.jn.Append(vrec); err != nil {
			return fmt.Errorf("server: shard %d: journal duplicated-steal repair of job %d: %w", victim.idx, src, err)
		}
		victim.commitLocked(vrec)
		_ = victim.jn.Sync()
	}
	if _, err := victim.eng.Withdraw(local); err != nil {
		return fmt.Errorf("server: shard %d: withdraw duplicated steal of job %d: %w", victim.idx, src, err)
	}
	victim.tab.setRedirect(local, composeID(in.to, in.toLocal))
	if victim.retireDone {
		_ = victim.eng.Retire(local)
	}
	victim.syncGaugesLocked()
	return nil
}

// StealStats is the work-stealing slice of Stats; nil (omitted on the
// wire) when stealing is disabled, keeping the steal-free encoding
// bit-identical to earlier builds.
type StealStats struct {
	// Stolen counts jobs moved off their admission shard (fleet-wide
	// victim-side total, durable across restarts).
	Stolen int64 `json:"stolen"`
	// StolenIn counts jobs re-admitted by thieves (fleet-wide; equals
	// Stolen when no steal is mid-repair).
	StolenIn int64 `json:"stolen_in"`
	// EstWork is the fleet's estimated remaining work (task-steps), the
	// gauge placement and victim selection read.
	EstWork int64 `json:"est_work"`
}
