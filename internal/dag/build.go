package dag

import (
	"fmt"
	"math/rand"
)

// Chain builds a job that is a single precedence chain of length n whose
// task categories are produced by catAt(i) for i ∈ [0, n). Chains are the
// fully sequential extreme: span = work = n.
func Chain(k, n int, catAt func(i int) Category) *Graph {
	g := New(k).Named(fmt.Sprintf("chain-%d", n))
	var prev TaskID = -1
	for i := 0; i < n; i++ {
		id := g.AddTask(catAt(i))
		if prev >= 0 {
			g.MustEdge(prev, id)
		}
		prev = id
	}
	return g
}

// UniformChain builds a chain of length n with every task in category c.
func UniformChain(k, n int, c Category) *Graph {
	return Chain(k, n, func(int) Category { return c })
}

// RoundRobinChain builds a chain of length n that cycles through the K
// categories — the classic "compute, then communicate, then I/O" pattern.
func RoundRobinChain(k, n int) *Graph {
	return Chain(k, n, func(i int) Category { return Category(i%k + 1) })
}

// ForkJoin builds the fork-join idiom: a fork task of category forkCat
// spawns width parallel body tasks of category bodyCat, all joined by a
// task of category joinCat. Span is 3; work is width + 2.
func ForkJoin(k, width int, forkCat, bodyCat, joinCat Category) *Graph {
	g := New(k).Named(fmt.Sprintf("forkjoin-%d", width))
	fork := g.AddTask(forkCat)
	join := g.AddTask(joinCat)
	for i := 0; i < width; i++ {
		b := g.AddTask(bodyCat)
		g.MustEdge(fork, b)
		g.MustEdge(b, join)
	}
	return g
}

// LayerSpec describes one level of a Layered job: Count tasks of category
// Cat.
type LayerSpec struct {
	Count int
	Cat   Category
}

// Layered builds a job of stacked levels. If dense is true every task of
// level i+1 depends on every task of level i (a full barrier); otherwise
// each level depends on a single designated collector task of the previous
// level (the Figure 3 shape). Span = number of layers.
func Layered(k int, layers []LayerSpec, dense bool) *Graph {
	g := New(k).Named(fmt.Sprintf("layered-%d", len(layers)))
	var prev []TaskID
	for _, l := range layers {
		cur := g.AddTasks(l.Cat, l.Count)
		if len(prev) > 0 {
			if dense {
				for _, u := range prev {
					for _, v := range cur {
						g.MustEdge(u, v)
					}
				}
			} else {
				for _, v := range cur {
					g.MustEdge(prev[0], v)
				}
			}
		}
		prev = cur
	}
	return g
}

// MapReduce builds the two-phase idiom: a split task (category splitCat)
// feeds mappers tasks of mapCat, all-to-all into reducers tasks of redCat,
// joined by a final merge task of mergeCat.
func MapReduce(k, mappers, reducers int, splitCat, mapCat, redCat, mergeCat Category) *Graph {
	g := New(k).Named(fmt.Sprintf("mapreduce-%dx%d", mappers, reducers))
	split := g.AddTask(splitCat)
	maps := g.AddTasks(mapCat, mappers)
	reds := g.AddTasks(redCat, reducers)
	merge := g.AddTask(mergeCat)
	for _, m := range maps {
		g.MustEdge(split, m)
		for _, r := range reds {
			g.MustEdge(m, r)
		}
	}
	for _, r := range reds {
		g.MustEdge(r, merge)
	}
	return g
}

// Pipeline builds a stages × width pipelined computation: item w at stage s
// depends on item w at stage s−1 (data flow) and on item w−1 at stage s
// (stage occupancy), the standard wavefront DAG. catAt(s) gives the
// category of stage s.
func Pipeline(k, stages, width int, catAt func(stage int) Category) *Graph {
	g := New(k).Named(fmt.Sprintf("pipeline-%dx%d", stages, width))
	ids := make([][]TaskID, stages)
	for s := 0; s < stages; s++ {
		ids[s] = g.AddTasks(catAt(s), width)
		for w := 0; w < width; w++ {
			if s > 0 {
				g.MustEdge(ids[s-1][w], ids[s][w])
			}
			if w > 0 {
				g.MustEdge(ids[s][w-1], ids[s][w])
			}
		}
	}
	return g
}

// Singleton builds the one-task job of category c used by the adversarial
// construction and by microbenchmarks.
func Singleton(k int, c Category) *Graph {
	g := New(k).Named("singleton")
	g.AddTask(c)
	return g
}

// RandomOpts controls Random.
type RandomOpts struct {
	// Tasks is the number of vertices; must be ≥ 1.
	Tasks int
	// EdgeProb is the probability of a forward edge between a pair of
	// tasks at distance ≤ Window; in (0, 1].
	EdgeProb float64
	// Window bounds how far forward edges may reach in ID order; 0 means
	// unbounded. Small windows produce long, narrow DAGs; large windows
	// produce wide, shallow ones.
	Window int
	// CatWeights gives the relative frequency of each category (indexed
	// α−1). Nil means uniform.
	CatWeights []float64
}

// Random builds a seeded random K-DAG: tasks are created in ID order and
// edges only point forward, so the result is acyclic by construction.
// Deterministic for a given rng state.
func Random(k int, opts RandomOpts, rng *rand.Rand) *Graph {
	if opts.Tasks < 1 {
		panic("dag: Random requires Tasks ≥ 1")
	}
	if opts.EdgeProb <= 0 || opts.EdgeProb > 1 {
		panic(fmt.Sprintf("dag: Random EdgeProb %v out of (0,1]", opts.EdgeProb))
	}
	weights := opts.CatWeights
	if weights == nil {
		weights = make([]float64, k)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != k {
		panic(fmt.Sprintf("dag: Random CatWeights length %d != k %d", len(weights), k))
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	pickCat := func() Category {
		x := rng.Float64() * total
		for i, w := range weights {
			x -= w
			if x < 0 {
				return Category(i + 1)
			}
		}
		return Category(k)
	}
	g := New(k).Named(fmt.Sprintf("random-%d", opts.Tasks))
	for i := 0; i < opts.Tasks; i++ {
		g.AddTask(pickCat())
	}
	for u := 0; u < opts.Tasks; u++ {
		hi := opts.Tasks
		if opts.Window > 0 && u+1+opts.Window < hi {
			hi = u + 1 + opts.Window
		}
		for v := u + 1; v < hi; v++ {
			if rng.Float64() < opts.EdgeProb {
				g.MustEdge(TaskID(u), TaskID(v))
			}
		}
	}
	return g
}

// Figure1 builds the 3-DAG illustrated in Figure 1 of the paper: a small
// three-category job interleaving the categories along its critical path.
// The figure is schematic; this realization has the same qualitative shape
// (10 tasks, 3 categories, span 5) and is used by example code and tests.
func Figure1() *Graph {
	g := New(3).Named("figure1")
	// Level 1: one category-1 task fans out.
	a := g.AddTask(1)
	// Level 2: two category-2 tasks and one category-1 task.
	b1, b2 := g.AddTask(2), g.AddTask(2)
	b3 := g.AddTask(1)
	// Level 3: category-3 tasks consuming level 2.
	c1, c2 := g.AddTask(3), g.AddTask(3)
	// Level 4: mixed.
	d1 := g.AddTask(1)
	d2 := g.AddTask(2)
	// Level 5: final category-3 join.
	e := g.AddTask(3)
	// An independent category-3 task reachable from the root.
	f := g.AddTask(3)
	g.MustEdge(a, b1)
	g.MustEdge(a, b2)
	g.MustEdge(a, b3)
	g.MustEdge(a, f)
	g.MustEdge(b1, c1)
	g.MustEdge(b2, c1)
	g.MustEdge(b2, c2)
	g.MustEdge(b3, c2)
	g.MustEdge(c1, d1)
	g.MustEdge(c1, d2)
	g.MustEdge(c2, d2)
	g.MustEdge(d1, e)
	g.MustEdge(d2, e)
	return g
}
