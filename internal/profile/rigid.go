package profile

import (
	"fmt"

	"krad/internal/dag"
	"krad/internal/sim"
)

// Rigid is the O(1) encoding of the classic rigid job from the SWF /
// supercomputing-log literature: procs processors of a single category held
// for steps unit time steps. It is semantically identical to the profile
// job with steps phases of procs cat-tasks each — the equivalence is
// tested — but stores five words regardless of size, which is what lets a
// load generator stream millions of trace jobs through the admission path.
//
// Rigid implements sim.JobSource and reports sim.FamilyProfile: it IS a
// profile job, just compactly encoded, so journal records, metrics and
// status JSON need no new family.
type Rigid struct {
	name  string
	k     int
	cat   dag.Category
	procs int
	steps int
}

// NewRigid builds a rigid job for k categories: procs unit tasks of
// category cat per step, for steps steps.
func NewRigid(k int, name string, cat dag.Category, procs, steps int) (*Rigid, error) {
	if k < 1 {
		return nil, fmt.Errorf("profile: k=%d, need ≥ 1", k)
	}
	if cat < 1 || int(cat) > k {
		return nil, fmt.Errorf("profile: rigid job %q category %d out of range 1..%d", name, cat, k)
	}
	if procs < 1 {
		return nil, fmt.Errorf("profile: rigid job %q needs ≥ 1 processor, got %d", name, procs)
	}
	if steps < 1 {
		return nil, fmt.Errorf("profile: rigid job %q needs ≥ 1 step, got %d", name, steps)
	}
	return &Rigid{name: name, k: k, cat: cat, procs: procs, steps: steps}, nil
}

// MustNewRigid is NewRigid panicking on error, for literals in tests.
func MustNewRigid(k int, name string, cat dag.Category, procs, steps int) *Rigid {
	j, err := NewRigid(k, name, cat, procs, steps)
	if err != nil {
		panic(err)
	}
	return j
}

// RigidSpec is the serializable form of a Rigid job, used by the journal
// and the HTTP wire format. FromRigidSpec(j.Spec()) reproduces j.
type RigidSpec struct {
	K     int    `json:"k"`
	Name  string `json:"name,omitempty"`
	Cat   int    `json:"cat"`
	Procs int    `json:"procs"`
	Steps int    `json:"steps"`
}

// Spec returns the job's serializable description.
func (j *Rigid) Spec() RigidSpec {
	return RigidSpec{K: j.k, Name: j.name, Cat: int(j.cat), Procs: j.procs, Steps: j.steps}
}

// FromRigidSpec validates sp and builds the job it describes.
func FromRigidSpec(sp RigidSpec) (*Rigid, error) {
	return NewRigid(sp.K, sp.Name, dag.Category(sp.Cat), sp.Procs, sp.Steps)
}

// Name implements sim.JobSource.
func (j *Rigid) Name() string { return j.name }

// Family implements sim.FamilySource.
func (j *Rigid) Family() sim.RuntimeFamily { return sim.FamilyProfile }

// K implements sim.JobSource.
func (j *Rigid) K() int { return j.k }

// Cat returns the single category the job occupies.
func (j *Rigid) Cat() dag.Category { return j.cat }

// Procs returns the per-step processor count.
func (j *Rigid) Procs() int { return j.procs }

// Steps returns the job's duration in unit steps.
func (j *Rigid) Steps() int { return j.steps }

// WorkVector implements sim.JobSource.
func (j *Rigid) WorkVector() []int {
	w := make([]int, j.k)
	w[j.cat-1] = j.procs * j.steps
	return w
}

// AppendWork implements sim.WorkAppender.
func (j *Rigid) AppendWork(dst []int) []int {
	for a := 1; a <= j.k; a++ {
		if dag.Category(a) == j.cat {
			dst = append(dst, j.procs*j.steps)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// Span implements sim.JobSource.
func (j *Rigid) Span() int { return j.steps }

// TotalTasks implements sim.JobSource.
func (j *Rigid) TotalTasks() int { return j.procs * j.steps }

// Profile expands the rigid job into its equivalent general profile job
// (steps phases of procs cat-tasks). Used by the equivalence tests; big
// jobs allocate O(steps·K), so prefer Rigid itself elsewhere.
func (j *Rigid) Profile() *Job {
	tasks := make([]int, j.k)
	tasks[j.cat-1] = j.procs
	phases := make([]Phase, j.steps)
	for i := range phases {
		phases[i] = Phase{Tasks: tasks}
	}
	return MustNew(j.k, j.name, phases)
}

// NewRuntime implements sim.JobSource. pick and seed are ignored, as for
// general profile jobs: tasks within a step are indistinguishable.
func (j *Rigid) NewRuntime(pick dag.PickPolicy, seed int64) sim.RuntimeJob {
	return &rigidRuntime{job: j, remaining: j.procs}
}

// ReuseRuntime implements sim.RuntimeReuser: any rigid runtime resets in
// place, whatever job it previously ran.
func (j *Rigid) ReuseRuntime(rt sim.RuntimeJob, pick dag.PickPolicy, seed int64) (sim.RuntimeJob, bool) {
	r, ok := rt.(*rigidRuntime)
	if !ok {
		return nil, false
	}
	*r = rigidRuntime{job: j, remaining: j.procs}
	return r, true
}

// rigidRuntime executes a rigid job with exactly the semantics of the
// general profile runtime specialized to one category and identical
// phases: remaining counts the current step's unexecuted tasks, ran
// buffers this step's executions until Advance (the barrier).
type rigidRuntime struct {
	job       *Rigid
	phase     int
	remaining int
	ran       int
	executed  int
	// work is the lazily-built RemainingWork buffer (oracle-only path).
	work []int
}

// Desire implements sim.RuntimeJob.
func (r *rigidRuntime) Desire(c dag.Category) int {
	if c != r.job.cat {
		return 0
	}
	return r.remaining
}

// Execute implements sim.RuntimeJob.
func (r *rigidRuntime) Execute(c dag.Category, n int) int {
	if n <= 0 || c != r.job.cat {
		return 0
	}
	if n > r.remaining {
		n = r.remaining
	}
	r.remaining -= n
	r.ran += n
	r.executed += n
	return n
}

// Advance implements sim.RuntimeJob: when the step's tasks are exhausted,
// the next step's become ready (the barrier between identical phases).
func (r *rigidRuntime) Advance() {
	if r.ran == 0 {
		return
	}
	r.ran = 0
	if r.remaining == 0 && r.phase+1 < r.job.steps {
		r.phase++
		r.remaining = r.job.procs
	}
}

// LeapTasks implements sim.LeapRuntime, mirroring the general profile
// runtime: the engine guarantees no phase boundary is crossed, so the
// aggregate collapses to one subtraction.
func (r *rigidRuntime) LeapTasks(total []int) {
	v := total[r.job.cat-1]
	r.remaining -= v
	r.executed += v
}

// Done implements sim.RuntimeJob.
func (r *rigidRuntime) Done() bool { return r.executed == r.job.procs*r.job.steps }

// RemainingSpan mirrors the general profile runtime: phases that still hold
// unexecuted tasks. Valid at step boundaries.
func (r *rigidRuntime) RemainingSpan() int {
	if r.Done() {
		return 0
	}
	return r.job.steps - r.phase
}

// RemainingWork implements sim.RuntimeJob (clairvoyant-oracle only; the
// buffer is reused across calls).
func (r *rigidRuntime) RemainingWork() []int {
	if r.work == nil {
		r.work = make([]int, r.job.k)
	}
	for a := range r.work {
		r.work[a] = 0
	}
	r.work[r.job.cat-1] = r.job.procs*r.job.steps - r.executed
	return r.work
}

var (
	_ sim.JobSource     = (*Rigid)(nil)
	_ sim.FamilySource  = (*Rigid)(nil)
	_ sim.WorkAppender  = (*Rigid)(nil)
	_ sim.RuntimeReuser = (*Rigid)(nil)
	_ sim.LeapRuntime   = (*rigidRuntime)(nil)
)
