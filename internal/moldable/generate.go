package moldable

import (
	"fmt"
	"math/rand"

	"krad/internal/sim"
)

// GenOpts parameterizes the deterministic moldable workload generator
// shared by kradsim, kradbench and the quickcheck suites. Equal options
// produce equal specs on every run and platform.
type GenOpts struct {
	// K is the category count; every generated job matches it.
	K int
	// Jobs is the number of jobs to generate.
	Jobs int
	// MinTasks and MaxTasks bound each job's task count. Zero values
	// default to 4 and 12.
	MinTasks, MaxTasks int
	// MaxWork bounds per-task serial work (uniform in 1..MaxWork); 0
	// means 16.
	MaxWork int
	// MaxProcs bounds per-task processor maxima (uniform in 1..MaxProcs);
	// 0 means 8.
	MaxProcs int
	// MaxArrival spreads release times uniformly over 0..MaxArrival.
	MaxArrival int64
	// EdgeProb is the probability of each forward edge (u, v), u < v,
	// within a window of windowSpan successors; 0 means 0.3.
	EdgeProb float64
	// Seed drives the generator.
	Seed int64
}

// windowSpan bounds how far ahead a generated precedence edge may reach,
// keeping generated DAGs layered-ish rather than star-shaped.
const windowSpan = 6

// Generate builds a deterministic moldable job set from o. The specs are
// valid by construction (FromSpec cannot fail on them); an internal
// inconsistency panics rather than returning a half-built workload.
func Generate(o GenOpts) []sim.JobSpec {
	if o.K < 1 {
		panic(fmt.Sprintf("moldable: GenOpts.K = %d, need ≥ 1", o.K))
	}
	minT, maxT := o.MinTasks, o.MaxTasks
	if minT <= 0 {
		minT = 4
	}
	if maxT < minT {
		maxT = minT + 8
	}
	maxWork := o.MaxWork
	if maxWork <= 0 {
		maxWork = 16
	}
	maxProcs := o.MaxProcs
	if maxProcs <= 0 {
		maxProcs = 8
	}
	edgeProb := o.EdgeProb
	if edgeProb <= 0 {
		edgeProb = 0.3
	}
	rng := rand.New(rand.NewSource(o.Seed))
	specs := make([]sim.JobSpec, o.Jobs)
	for i := range specs {
		n := minT + rng.Intn(maxT-minT+1)
		s := Spec{K: o.K, Name: fmt.Sprintf("mold-%d", i), Tasks: make([]TaskSpec, n)}
		for v := range s.Tasks {
			s.Tasks[v] = TaskSpec{
				Cat:   1 + rng.Intn(o.K),
				Work:  1 + rng.Intn(maxWork),
				Max:   1 + rng.Intn(maxProcs),
				Curve: randomCurve(rng),
			}
		}
		for u := 0; u < n; u++ {
			hi := u + windowSpan
			if hi > n-1 {
				hi = n - 1
			}
			for v := u + 1; v <= hi; v++ {
				if rng.Float64() < edgeProb {
					s.Edges = append(s.Edges, [2]int{u, v})
				}
			}
		}
		job, err := FromSpec(s)
		if err != nil {
			panic(fmt.Sprintf("moldable: generated invalid spec: %v", err))
		}
		var release int64
		if o.MaxArrival > 0 {
			release = rng.Int63n(o.MaxArrival + 1)
		}
		specs[i] = sim.JobSpec{Source: job, Release: release}
	}
	return specs
}

// randomCurve draws a valid speedup curve: half power-law with exponent
// in [0.3, 1], half Amdahl with serial fraction in [0, 0.5].
func randomCurve(rng *rand.Rand) CurveSpec {
	if rng.Intn(2) == 0 {
		return CurveSpec{Type: CurvePowerLaw, Alpha: 0.3 + 0.7*rng.Float64()}
	}
	return CurveSpec{Type: CurveAmdahl, Serial: 0.5 * rng.Float64()}
}
