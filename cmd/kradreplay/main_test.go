package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sched"
	"krad/internal/server"
	"krad/internal/sim"
	"krad/internal/workload"
)

func TestParseMix(t *testing.T) {
	w, err := parseMix("rigid=0.8,dag=0.1,mold=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if w["rigid"] != 0.8 || w["dag"] != 0.1 || w["mold"] != 0.1 {
		t.Fatalf("weights %v", w)
	}
	for _, bad := range []string{"", "rigid", "alien=1", "rigid=-1", "rigid=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}

func TestRetryDelay(t *testing.T) {
	if d := retryDelay("3", 10*time.Second, 0); d != 3*time.Second {
		t.Errorf("Retry-After 3 → %v", d)
	}
	if d := retryDelay("3", time.Second, 0); d != time.Second {
		t.Errorf("cap ignored: %v", d)
	}
	if d := retryDelay("", 10*time.Second, 0); d <= 0 || d > time.Second {
		t.Errorf("missing header floor: %v", d)
	}
}

// selfHost brings up an in-process kradd-equivalent (server.Service
// behind httptest) so run() is exercised end to end without a binary.
func selfHost(t *testing.T, k int, caps []int) string {
	t.Helper()
	svc, err := server.New(server.Config{
		Sim:          sim.Config{K: k, Caps: caps, Pick: dag.PickFIFO},
		NewScheduler: func() sched.Scheduler { return sched.WithFloors(core.NewKRAD(k)) },
		MaxInFlight:  1 << 18,
		RetireDone:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	})
	return ts.URL
}

func TestRunSyntheticClosedLoop(t *testing.T) {
	addr := selfHost(t, 2, []int{8, 8})
	rep, err := run(options{
		addr: addr, jobs: 2000, k: 2, mix: "rigid=0.8,dag=0.1,mold=0.1",
		workers: 4, batch: 1, seed: 7, retryCap: 100 * time.Millisecond,
		drain: true, drainMax: time.Minute, quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 2000 || rep.Errors != 0 {
		t.Fatalf("accepted %d errors %d, want 2000/0", rep.Accepted, rep.Errors)
	}
	if rep.Latency.N == 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Fatalf("latency report %+v", rep.Latency)
	}
	if rep.Drain == nil || rep.Drain.Jobs != 2000 || rep.Drain.JobsPerSec <= 0 {
		t.Fatalf("drain report %+v", rep.Drain)
	}
	if rep.Mode != "closed-loop" {
		t.Fatalf("mode %q", rep.Mode)
	}
}

func TestRunSyntheticBatchedOpenLoop(t *testing.T) {
	addr := selfHost(t, 2, []int{8, 8})
	rep, err := run(options{
		addr: addr, jobs: 1200, k: 2, mix: "rigid=1",
		workers: 2, batch: 64, rate: 100000, arrivals: "poisson", seed: 3,
		retryCap: 100 * time.Millisecond, drain: true, drainMax: time.Minute, quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 1200 {
		t.Fatalf("accepted %d, want 1200", rep.Accepted)
	}
	if rep.Mode != "open-loop/poisson" || rep.TargetRate != 100000 {
		t.Fatalf("mode %q rate %v", rep.Mode, rep.TargetRate)
	}
}

func TestRunSWFTrace(t *testing.T) {
	addr := selfHost(t, 3, []int{8, 8, 8})
	path := filepath.Join(t.TempDir(), "log.swf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteSyntheticSWF(f, 120, 5); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rep, err := run(options{
		addr: addr, trace: path, jobs: 0, k: 3, scale: 60, maxProcs: 4,
		workers: 4, batch: 8, retryCap: 100 * time.Millisecond,
		drain: true, drainMax: time.Minute, quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 120 || rep.Errors != 0 {
		t.Fatalf("accepted %d errors %d, want 120/0", rep.Accepted, rep.Errors)
	}
	if rep.Source != "swf:"+path {
		t.Fatalf("source %q", rep.Source)
	}
}

// TestRunBackpressure drives a deliberately tiny queue so 503s occur, and
// checks the client retries them to completion while counting the sheds.
func TestRunBackpressure(t *testing.T) {
	svc, err := server.New(server.Config{
		Sim:          sim.Config{K: 1, Caps: []int{2}, Pick: dag.PickFIFO},
		NewScheduler: func() sched.Scheduler { return sched.WithFloors(core.NewKRAD(1)) },
		MaxInFlight:  4,
		RetireDone:   true,
		// Paced stepping: free-running would drain the 4-slot queue
		// faster than 8 workers can fill it and no 503 would ever fire.
		StepEvery: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	}()
	rep, err := run(options{
		addr: ts.URL, jobs: 200, k: 1, mix: "rigid=1",
		workers: 8, batch: 1, seed: 2, retryCap: 20 * time.Millisecond,
		drain: true, drainMax: time.Minute, quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 200 {
		t.Fatalf("accepted %d, want 200 (sheds must be retried)", rep.Accepted)
	}
	if rep.Shed503 == 0 {
		t.Fatal("queue of 4 under 8 workers shed nothing — backpressure not exercised")
	}
}

// TestReplaySmokeRealKradd builds the real kradd and kradreplay binaries
// and drives one against the other. Gated behind KRAD_REPLAY_SMOKE=1:
// it compiles two binaries and opens a real port, which is CI-nightly
// material, not unit-test material.
func TestReplaySmokeRealKradd(t *testing.T) {
	if os.Getenv("KRAD_REPLAY_SMOKE") != "1" {
		t.Skip("set KRAD_REPLAY_SMOKE=1 to run the real-binary smoke test")
	}
	dir := t.TempDir()
	kradd := filepath.Join(dir, "kradd")
	replay := filepath.Join(dir, "kradreplay")
	for bin, pkg := range map[string]string{kradd: "krad/cmd/kradd", replay: "krad/cmd/kradreplay"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	jdir := filepath.Join(dir, "journal")
	daemon := exec.Command(kradd,
		"-addr", addr, "-k", "2", "-caps", "8,8",
		"-queue", "200000", "-retire-done",
		"-journal-dir", jdir, "-fsync", "interval", "-snapshot-every", "0")
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { daemon.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			daemon.Process.Kill()
		}
	}()
	base := "http://" + addr
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("kradd never became ready")
		}
		time.Sleep(100 * time.Millisecond)
	}

	jobs := 20000
	if v := os.Getenv("KRAD_REPLAY_SMOKE_JOBS"); v != "" {
		fmt.Sscanf(v, "%d", &jobs)
	}
	outPath := filepath.Join(dir, "report.json")
	cmd := exec.Command(replay,
		"-addr", base, "-k", "2", "-jobs", fmt.Sprint(jobs),
		"-mix", "rigid=0.9,dag=0.05,mold=0.05", "-workers", "8", "-batch", "16",
		"-drain-timeout", "5m", "-out", outPath)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("kradreplay: %v", err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != int64(jobs) || rep.Errors != 0 {
		t.Fatalf("accepted %d errors %d, want %d/0", rep.Accepted, rep.Errors, jobs)
	}
	if rep.Drain == nil || rep.Drain.Jobs != int64(jobs) {
		t.Fatalf("drain %+v", rep.Drain)
	}
	if rep.Journal == nil || rep.Journal.Syncs == 0 {
		t.Fatalf("journaled daemon reported no fsyncs: %+v", rep.Journal)
	}
	t.Logf("smoke: %d jobs, %.0f submit/s, drain %.0f jobs/s, %d fsyncs (%.1f%% of wall)",
		rep.Accepted, rep.SubmitRate, rep.Drain.JobsPerSec, rep.Journal.Syncs, 100*rep.Journal.SyncShare)
}
