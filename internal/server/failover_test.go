package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/journal"
	"krad/internal/sim"
)

// TestFailoverMatrix is the replication extension of the crash matrix: it
// runs a real primary/follower kradd pair over TCP, injects the faults a
// deployment actually sees — SIGKILL of the primary at random points in a
// submission burst, the replication link dying mid-frame, a partition
// that heals — and asserts the failover contract: the promoted follower's
// drained state is exactly what replaying its journal in-process
// produces, a cleanly handed-over follower is bit-identical to the
// primary's full journal, and a fenced ex-primary refuses admissions with
// a located error. Failover time and replication lag are reported per
// scenario.
//
// Gated behind KRAD_FAILOVER_MATRIX=1 (builds a binary, runs for
// seconds); KRAD_FAILOVER_POINTS overrides the kill-point count.
func TestFailoverMatrix(t *testing.T) {
	if os.Getenv("KRAD_FAILOVER_MATRIX") != "1" {
		t.Skip("set KRAD_FAILOVER_MATRIX=1 to run the failover matrix harness")
	}
	points := 2
	if v := os.Getenv("KRAD_FAILOVER_POINTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad KRAD_FAILOVER_POINTS %q", v)
		}
		points = n
	}
	seed := time.Now().UnixNano()
	t.Logf("failover-matrix seed %d (%d kill points)", seed, points)
	rng := rand.New(rand.NewSource(seed))

	bin := filepath.Join(t.TempDir(), "kradd")
	build := exec.Command("go", "build", "-o", bin, "krad/cmd/kradd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build kradd: %v\n%s", err, out)
	}

	for p := 0; p < points; p++ {
		t.Run(fmt.Sprintf("kill-primary-%d", p), func(t *testing.T) {
			runFailoverKill(t, bin, rng.Int63n(150)+10)
		})
	}
	t.Run("link-faults", func(t *testing.T) { runFailoverLinkFaults(t, bin) })
	t.Run("promote-after-fencing", func(t *testing.T) { runFailoverPromoteAfter(t, bin) })
}

// runFailoverKill SIGKILLs the primary mid-burst at a random point — the
// journal and replication stream both end at arbitrary bytes — then
// promotes the follower by hand and diffs its drained state against an
// in-process replay of its own journal.
func runFailoverKill(t *testing.T, bin string, killAfterMillis int64) {
	pdir, fdir := t.TempDir(), t.TempDir()
	pAddr, fAddr, repAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	client := &http.Client{Timeout: 2 * time.Second}

	startDaemon(t, bin, "follower",
		"-addr", fAddr, "-k", "1", "-caps", "2", "-sched", "k-rad",
		"-journal-dir", fdir, "-fsync", "always", "-snapshot-every", "0",
		"-follow", repAddr, "-drain", "10s")
	waitAlive(t, client, fAddr)
	primary := startDaemon(t, bin, "primary",
		"-addr", pAddr, "-k", "1", "-caps", "2", "-sched", "k-rad",
		"-journal-dir", pdir, "-fsync", "always", "-snapshot-every", "0",
		"-replicate-to", repAddr, "-replicate-heartbeat", "50ms", "-drain", "10s")
	waitReady(t, pAddr)
	waitFollowerAttached(t, client, fAddr)

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(time.Duration(killAfterMillis) * time.Millisecond)
		_ = primary.Process.Signal(syscall.SIGKILL)
	}()
	var acked []int
burst:
	for i := 0; ; i++ {
		id, status := trySubmit(t, client, pAddr, dag.UniformChain(1, 1+i%4, 1))
		switch status {
		case http.StatusCreated:
			acked = append(acked, id)
		case http.StatusServiceUnavailable:
			time.Sleep(2 * time.Millisecond)
		default:
			break burst
		}
	}
	<-killed
	_ = primary.Wait()
	killAt := time.Now()

	// The stream is dead; wait for the follower's applied counter to go
	// quiet so the journal we hand the oracle is the final pre-promotion
	// state.
	waitApplySettled(t, client, fAddr)
	lag := int64(len(acked)) - appliedAdmissions(t, fdir)
	t.Logf("killed primary after %dms: %d acked admissions, follower lag %d records behind the acks", killAfterMillis, len(acked), lag)

	oraclePath := filepath.Join(t.TempDir(), "shard-000.wal")
	copyFile(t, filepath.Join(fdir, "shard-000.wal"), oraclePath)
	oracle := replayDrainedOracle(t, oraclePath)
	snap := oracle.Snapshot()

	// Promote and measure kill→serving.
	promoteHTTP(t, client, fAddr)
	waitReady(t, fAddr)
	t.Logf("failover time (SIGKILL → promoted follower ready): %v", time.Since(killAt).Round(time.Millisecond))

	waitDrained(t, client, fAddr)
	stats := fetchStats(t, client, fAddr)
	if stats.Submitted != int64(snap.Admitted) || stats.Completed != int64(snap.Completed) || stats.Now != snap.Now {
		t.Fatalf("promoted follower (submitted=%d completed=%d now=%d) diverges from journal oracle (admitted=%d completed=%d now=%d)",
			stats.Submitted, stats.Completed, stats.Now, snap.Admitted, snap.Completed, snap.Now)
	}
	diffJobsAgainstOracle(t, client, fAddr, oracle, snap.Admitted)

	// The promoted follower is a real primary: it admits and completes.
	id, status := trySubmit(t, client, fAddr, dag.UniformChain(1, 2, 1))
	if status != http.StatusCreated {
		t.Fatalf("promoted follower refused a submission: status %d", status)
	}
	waitJobDone(t, client, fAddr, id)
}

// runFailoverLinkFaults routes replication through an in-test TCP proxy,
// cuts the link mid-frame, partitions and heals it, and finally hands
// over cleanly — the promoted follower must be bit-identical to the
// replay of the primary's full journal.
func runFailoverLinkFaults(t *testing.T, bin string) {
	pdir, fdir := t.TempDir(), t.TempDir()
	pAddr, fAddr, repAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	client := &http.Client{Timeout: 2 * time.Second}

	startDaemon(t, bin, "follower",
		"-addr", fAddr, "-k", "1", "-caps", "2", "-sched", "k-rad",
		"-journal-dir", fdir, "-fsync", "always", "-snapshot-every", "0",
		"-follow", repAddr, "-drain", "10s")
	waitAlive(t, client, fAddr)
	proxy := newLinkProxy(t, repAddr)
	primary := startDaemon(t, bin, "primary",
		"-addr", pAddr, "-k", "1", "-caps", "2", "-sched", "k-rad",
		"-journal-dir", pdir, "-fsync", "always", "-snapshot-every", "0",
		"-replicate-to", proxy.addr(), "-replicate-heartbeat", "50ms", "-drain", "10s")
	waitReady(t, pAddr)
	waitFollowerAttached(t, client, fAddr)

	submitN := func(n, span int) {
		for i := 0; i < n; i++ {
			if _, status := trySubmit(t, client, pAddr, dag.UniformChain(1, 1+i%span, 1)); status != http.StatusCreated {
				t.Fatalf("submission %d refused: status %d", i, status)
			}
		}
	}

	// Mid-frame cut: allow ~2000 more forwarded bytes, then kill the
	// stream inside whatever frame is crossing. The sender must reconnect
	// (immediately re-cut while the budget is spent) and, once healed,
	// catch the follower up off the WAL.
	submitN(10, 4)
	proxy.cutAfter(2000)
	submitN(20, 4)
	time.Sleep(200 * time.Millisecond) // let the cut land and retries churn
	proxy.heal()
	waitReplicationIdle(t, client, pAddr)

	// Partition (refuse every connection), commit more work, heal.
	proxy.partition()
	submitN(10, 3)
	time.Sleep(200 * time.Millisecond)
	proxy.heal()
	waitReplicationIdle(t, client, pAddr)

	// Clean handover: quiesce, stop the primary, promote. Nothing may be
	// lost — the follower saw every committed record.
	waitDrained(t, client, pAddr)
	waitReplicationIdle(t, client, pAddr)
	pstats := fetchStats(t, client, pAddr)
	_ = primary.Process.Signal(syscall.SIGTERM)
	if err := primary.Wait(); err != nil {
		t.Fatalf("primary exited uncleanly: %v", err)
	}

	oraclePath := filepath.Join(t.TempDir(), "shard-000.wal")
	copyFile(t, filepath.Join(pdir, "shard-000.wal"), oraclePath)
	oracle := replayDrainedOracle(t, oraclePath)
	snap := oracle.Snapshot()

	promoteHTTP(t, client, fAddr)
	waitReady(t, fAddr)
	waitDrained(t, client, fAddr)
	fstats := fetchStats(t, client, fAddr)
	if fstats.Submitted != pstats.Submitted || fstats.Completed != pstats.Completed || fstats.Now != pstats.Now {
		t.Fatalf("clean handover lost state: follower (submitted=%d completed=%d now=%d), primary was (submitted=%d completed=%d now=%d)",
			fstats.Submitted, fstats.Completed, fstats.Now, pstats.Submitted, pstats.Completed, pstats.Now)
	}
	if fstats.Submitted != int64(snap.Admitted) || fstats.Completed != int64(snap.Completed) || fstats.Now != snap.Now {
		t.Fatalf("promoted follower diverges from the primary's journal oracle: follower (submitted=%d completed=%d now=%d), oracle (admitted=%d completed=%d now=%d)",
			fstats.Submitted, fstats.Completed, fstats.Now, snap.Admitted, snap.Completed, snap.Now)
	}
	diffJobsAgainstOracle(t, client, fAddr, oracle, snap.Admitted)
}

// runFailoverPromoteAfter exercises the automatic path: the primary holds
// a replication lease, the follower a promote-after timeout strictly
// above it. Partitioning the link must first gate the primary's
// admissions (lease expiry), then self-promote the follower; healing the
// link must fence the ex-primary with a located 409.
func runFailoverPromoteAfter(t *testing.T, bin string) {
	pdir, fdir := t.TempDir(), t.TempDir()
	pAddr, fAddr, repAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	client := &http.Client{Timeout: 2 * time.Second}

	startDaemon(t, bin, "follower",
		"-addr", fAddr, "-k", "1", "-caps", "2", "-sched", "k-rad",
		"-journal-dir", fdir, "-fsync", "always", "-snapshot-every", "0",
		"-follow", repAddr, "-promote-after", "700ms", "-drain", "10s")
	waitAlive(t, client, fAddr)
	proxy := newLinkProxy(t, repAddr)
	startDaemon(t, bin, "primary",
		"-addr", pAddr, "-k", "1", "-caps", "2", "-sched", "k-rad",
		"-journal-dir", pdir, "-fsync", "always", "-snapshot-every", "0",
		"-replicate-to", proxy.addr(), "-replicate-heartbeat", "50ms",
		"-lease", "250ms", "-drain", "10s")
	waitReady(t, pAddr)
	waitFollowerAttached(t, client, fAddr)

	for i := 0; i < 6; i++ {
		if _, status := trySubmit(t, client, pAddr, dag.UniformChain(1, 2, 1)); status != http.StatusCreated {
			t.Fatalf("submission %d refused: status %d", i, status)
		}
	}
	waitReplicationIdle(t, client, pAddr)

	partitionAt := time.Now()
	proxy.partition()

	// Lease expiry: the primary must stop admitting before the follower's
	// promote-after can fire (lease 250ms < promote-after 700ms — that
	// ordering is the split-brain guarantee).
	waitFor(t, "lease expiry gates admissions", func() bool {
		status, body := submitProbe(t, client, pAddr)
		return status == http.StatusServiceUnavailable && strings.Contains(body, "lease")
	})

	// Self-promotion by primary-silence timeout: no POST involved.
	waitReady(t, fAddr)
	t.Logf("failover time (partition → self-promoted follower ready): %v", time.Since(partitionAt).Round(time.Millisecond))

	// Heal: the ex-primary reconnects, meets epoch 2, and latches the
	// fence — admissions now refuse permanently with a located 409.
	proxy.heal()
	waitFor(t, "ex-primary fenced", func() bool {
		status, body := submitProbe(t, client, pAddr)
		return status == http.StatusConflict && strings.Contains(body, "fenced")
	})

	// The promoted follower serves while the old primary is fenced.
	id, status := trySubmit(t, client, fAddr, dag.UniformChain(1, 2, 1))
	if status != http.StatusCreated {
		t.Fatalf("self-promoted follower refused a submission: status %d", status)
	}
	waitJobDone(t, client, fAddr, id)
}

// startDaemon launches kradd with the given args, captures its logs for
// failure reporting, and registers kill-on-cleanup.
func startDaemon(t *testing.T, bin, name string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
		if t.Failed() {
			t.Logf("%s output:\n%s", name, logs.String())
		}
	})
	return cmd
}

// waitAlive waits for any HTTP response — a standby answers /healthz long
// before /readyz goes green.
func waitAlive(t *testing.T, client *http.Client, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("kradd at %s never answered /healthz", addr)
}

// repProbe is the replication slice of /healthz this harness reads.
type repProbe struct {
	Role    string `json:"role"`
	Primary *struct {
		Connected    bool  `json:"connected"`
		Reconnects   int64 `json:"reconnects"`
		LagRecords   int64 `json:"lag_records"`
		Fenced       bool  `json:"fenced"`
		LeaseExpired bool  `json:"lease_expired"`
	} `json:"primary"`
	Follower *struct {
		Epoch     int64 `json:"epoch"`
		Promoted  bool  `json:"promoted"`
		Connected bool  `json:"connected"`
		Applied   int64 `json:"applied"`
	} `json:"follower"`
}

func fetchRep(t *testing.T, client *http.Client, addr string) *repProbe {
	t.Helper()
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var payload struct {
		Stats struct {
			Replication *repProbe `json:"replication"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil
	}
	return payload.Stats.Replication
}

func waitFollowerAttached(t *testing.T, client *http.Client, fAddr string) {
	t.Helper()
	waitFor(t, "follower attached to primary stream", func() bool {
		rep := fetchRep(t, client, fAddr)
		return rep != nil && rep.Follower != nil && rep.Follower.Connected
	})
}

// waitReplicationIdle waits until the primary reports a live stream with
// zero unacknowledged records — everything committed is on the follower.
func waitReplicationIdle(t *testing.T, client *http.Client, pAddr string) {
	t.Helper()
	waitFor(t, "replication lag drains to zero", func() bool {
		rep := fetchRep(t, client, pAddr)
		return rep != nil && rep.Primary != nil && rep.Primary.Connected && rep.Primary.LagRecords == 0
	})
}

// waitApplySettled waits for the follower's applied counter to stop
// moving (the dead primary's stream has fully flushed through).
func waitApplySettled(t *testing.T, client *http.Client, fAddr string) {
	t.Helper()
	var last int64 = -1
	stable := 0
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rep := fetchRep(t, client, fAddr)
		cur := int64(-1)
		if rep != nil && rep.Follower != nil {
			cur = rep.Follower.Applied
		}
		if cur == last {
			stable++
			if stable >= 5 {
				return
			}
		} else {
			stable = 0
			last = cur
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("follower apply counter never settled after primary death")
}

// appliedAdmissions counts admit records in a shard WAL — the follower
// side of the replication-lag report.
func appliedAdmissions(t *testing.T, dir string) int64 {
	t.Helper()
	recs, err := journal.ReadFile(filepath.Join(dir, "shard-000.wal"))
	if err != nil {
		t.Fatalf("read follower journal: %v", err)
	}
	var n int64
	for _, rec := range recs {
		if rec.Type == journal.TypeAdmit || rec.Type == journal.TypeBatch {
			n += int64(len(rec.Jobs))
		}
	}
	return n
}

// replayDrainedOracle replays a copied WAL into a fresh engine (the crash
// matrix configuration) and drains it: the canonical post-failover state.
func replayDrainedOracle(t *testing.T, walPath string) *sim.Engine {
	t.Helper()
	_, recs, err := journal.Open(walPath, journal.Options{})
	if err != nil {
		t.Fatalf("oracle open: %v", err)
	}
	oracle, err := sim.NewEngine(sim.Config{
		K: 1, Caps: []int{2}, Scheduler: core.NewKRAD(1),
		Pick: dag.PickFIFO, Seed: 1, ValidateAllotments: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.Replay(oracle, recs); err != nil {
		t.Fatalf("oracle replay: %v", err)
	}
	for !oracle.Idle() {
		if _, err := oracle.Step(); err != nil {
			t.Fatalf("oracle drain: %v", err)
		}
	}
	return oracle
}

// diffJobsAgainstOracle fetches every oracle job over HTTP and fails on
// the first field-level divergence.
func diffJobsAgainstOracle(t *testing.T, client *http.Client, addr string, oracle *sim.Engine, admitted int) {
	t.Helper()
	for id := 0; id < admitted; id++ {
		want, ok := oracle.Job(id)
		if !ok {
			continue
		}
		var got jobJSON
		resp, err := client.Get(fmt.Sprintf("http://%s/v1/jobs/%d", addr, id))
		if err != nil {
			t.Fatalf("query job %d: %v", id, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("job %d missing on the promoted follower: status %d", id, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got.State != want.Phase.String() || got.Completion != want.Completion || got.Release != want.Release {
			t.Fatalf("job %d: promoted follower %+v, oracle %+v", id, got, want)
		}
	}
}

func promoteHTTP(t *testing.T, client *http.Client, addr string) {
	t.Helper()
	resp, err := client.Post("http://"+addr+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d: %s", resp.StatusCode, body)
	}
}

// submitProbe posts a trivial job and returns status plus body — the
// fencing and lease assertions need the error text, not just the code.
func submitProbe(t *testing.T, client *http.Client, addr string) (int, string) {
	t.Helper()
	payload, err := json.Marshal(submitRequest{Graph: dag.Singleton(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func waitJobDone(t *testing.T, client *http.Client, addr string, id int) {
	t.Helper()
	waitFor(t, fmt.Sprintf("job %d completes", id), func() bool {
		resp, err := client.Get(fmt.Sprintf("http://%s/v1/jobs/%d", addr, id))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var got jobJSON
		if json.NewDecoder(resp.Body).Decode(&got) != nil {
			return false
		}
		return got.State == sim.JobDone.String()
	})
}

// linkProxy is a single-upstream TCP proxy with three injectable faults:
// a byte budget that cuts the primary→follower direction mid-frame, a
// partition that refuses and kills connections, and heal.
type linkProxy struct {
	t      *testing.T
	ln     net.Listener
	target string

	mu     sync.Mutex
	budget int64 // remaining primary→follower bytes; < 0 means unlimited
	down   bool
	live   []net.Conn
}

func newLinkProxy(t *testing.T, target string) *linkProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &linkProxy{t: t, ln: ln, target: target, budget: -1}
	t.Cleanup(func() {
		_ = ln.Close()
		p.partition()
	})
	go p.loop()
	return p
}

func (p *linkProxy) addr() string { return p.ln.Addr().String() }

func (p *linkProxy) cutAfter(n int64) {
	p.mu.Lock()
	p.budget = n
	p.mu.Unlock()
}

// partition refuses new connections and kills live ones.
func (p *linkProxy) partition() {
	p.mu.Lock()
	p.down = true
	conns := p.live
	p.live = nil
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

func (p *linkProxy) heal() {
	p.mu.Lock()
	p.down = false
	p.budget = -1
	p.mu.Unlock()
}

func (p *linkProxy) loop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.handle(conn)
	}
}

func (p *linkProxy) handle(down net.Conn) {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		_ = down.Close()
		return
	}
	p.mu.Unlock()
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		_ = down.Close()
		return
	}
	p.mu.Lock()
	p.live = append(p.live, down, up)
	p.mu.Unlock()
	go func() { // follower→primary (acks): never faulted directly
		_, _ = io.Copy(down, up)
		_ = down.Close()
		_ = up.Close()
	}()
	buf := make([]byte, 512)
	for {
		n, rerr := down.Read(buf)
		if n > 0 {
			cut := false
			p.mu.Lock()
			if p.budget >= 0 {
				if int64(n) >= p.budget {
					n = int(p.budget)
					cut = true
				}
				p.budget -= int64(n)
			}
			p.mu.Unlock()
			if n > 0 {
				if _, werr := up.Write(buf[:n]); werr != nil {
					break
				}
			}
			if cut {
				break // the torn frame is on the wire; kill both sides
			}
		}
		if rerr != nil {
			break
		}
	}
	_ = down.Close()
	_ = up.Close()
}
