package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/replicate"
	"krad/internal/sched"
	"krad/internal/sim"
)

// replConfig is a journaled single-shard config whose scheduler can
// snapshot its state, so both ends of a replication pair can be
// checkpoint-compared bit-for-bit.
func replConfig(t *testing.T) Config {
	t.Helper()
	cfg := journaledConfig(t, 1, 2)
	cfg.NewScheduler = func() sched.Scheduler { return core.NewKRAD(1) }
	return cfg
}

// startFollower boots a standby Service plus its replication receiver on
// a loopback listener and returns the replication address a sender dials.
func startFollower(t *testing.T, cfg Config, promoteAfter time.Duration) (*Service, *replicate.Receiver, string) {
	t.Helper()
	cfg.Follower = true
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start() // held down until promotion; records intent to run
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := replicate.NewReceiver(replicate.ReceiverConfig{
		Listener:     ln,
		Applier:      svc,
		Epoch:        1,
		PromoteAfter: promoteAfter,
		OnPromote:    func(int64) { svc.Promote() },
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.SetPromote(rcv.Promote)
	t.Cleanup(func() {
		rcv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	})
	return svc, rcv, ln.Addr().String()
}

// startPrimary boots a serving Service over its own journal dir.
func startPrimary(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	})
	return svc
}

// startSender wires a replication sender onto a primary Service: seeded
// from the journal's current coverage, attached as the commit hook,
// running with test-friendly timings. mut may tweak the config first.
func startSender(t *testing.T, svc *Service, dir, addr string, mut func(*replicate.SenderConfig)) *replicate.Sender {
	t.Helper()
	cfg := replicate.SenderConfig{
		Addr:       addr,
		Epoch:      1,
		Shards:     svc.Shards(),
		CatchUp:    JournalCatchUp(dir),
		Heartbeat:  20 * time.Millisecond,
		MinBackoff: 2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		Logf:       t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := replicate.NewSender(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Seed(svc.ReplicationSeqs())
	svc.SetReplicator(s)
	s.Start()
	t.Cleanup(s.Stop)
	return s
}

// waitCaughtUp blocks until the follower has applied every record the
// primary committed.
func waitCaughtUp(t *testing.T, primary, follower *Service) {
	t.Helper()
	waitFor(t, "follower catch-up", func() bool {
		return reflect.DeepEqual(primary.ReplicationSeqs(), follower.ReplicationSeqs())
	})
}

// engineCheckpoint snapshots one shard's engine; both ends of a healthy
// pair must produce identical checkpoints once drained and caught up —
// the in-process form of the failover matrix's bit-identity assertion.
func engineCheckpoint(t *testing.T, svc *Service, shard int) sim.EngineCheckpoint {
	t.Helper()
	sh := svc.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cp, err := sh.eng.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint shard %d: %v", shard, err)
	}
	return cp
}

func requireIdentical(t *testing.T, primary, follower *Service) {
	t.Helper()
	for i := range primary.shards {
		pc := engineCheckpoint(t, primary, i)
		fc := engineCheckpoint(t, follower, i)
		if !reflect.DeepEqual(pc, fc) {
			t.Fatalf("shard %d: follower checkpoint diverges\nprimary:  %+v\nfollower: %+v", i, pc, fc)
		}
	}
}

// requireJournalPrefix asserts the follower's WAL is a byte prefix of the
// primary's: the follower journals exactly the primary's records, in the
// primary's encoding and order.
func requireJournalPrefix(t *testing.T, pdir, fdir string) {
	t.Helper()
	pb, err := os.ReadFile(shardJournalPath(pdir, 0))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(shardJournalPath(fdir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) == 0 {
		t.Fatal("follower journal is empty")
	}
	if !bytes.HasPrefix(pb, fb) {
		t.Fatalf("follower journal (%d bytes) is not a byte prefix of the primary's (%d bytes)", len(fb), len(pb))
	}
}

// TestReplicationBitIdentity streams a live workload — admissions, steps
// and a cancellation — from a primary to a warm standby over real TCP and
// asserts the follower's engine and journal track the primary exactly.
func TestReplicationBitIdentity(t *testing.T) {
	fcfg := replConfig(t)
	fdir := fcfg.Journal.Dir
	follower, _, addr := startFollower(t, fcfg, 0)

	pcfg := replConfig(t)
	pdir := pcfg.Journal.Dir
	primary := startPrimary(t, pcfg)
	startSender(t, primary, pdir, addr, nil)

	var ids []int
	for i := 0; i < 8; i++ {
		id, err := primary.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 1+i%3, 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// A far-future job stays pending long enough to cancel, putting a
	// cancel record on the stream.
	victim, err := primary.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1), Release: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.Cancel(victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "primary drain", func() bool { return primary.Stats().Completed == 8 })
	waitCaughtUp(t, primary, follower)

	requireIdentical(t, primary, follower)
	requireJournalPrefix(t, pdir, fdir)
	for _, id := range append(ids, victim) {
		want, ok := primary.Job(id)
		if !ok {
			t.Fatalf("job %d missing on primary", id)
		}
		got, ok := follower.Job(id)
		if !ok {
			t.Fatalf("job %d missing on follower", id)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("job %d: follower %+v, primary %+v", id, got, want)
		}
	}
	if fs := follower.Stats(); fs.Cancelled != 1 || fs.Submitted != 9 {
		t.Fatalf("follower counters %+v, want 9 submitted / 1 cancelled", fs)
	}
}

// TestReplicationMidFrameCutResumes kills the replication link part-way
// through a frame (a torn frame on the wire) and asserts the sender
// reconnects with backoff, the follower discards the torn tail, and the
// stream resumes to bit-identity — no record lost, none applied twice.
func TestReplicationMidFrameCutResumes(t *testing.T) {
	fcfg := replConfig(t)
	fdir := fcfg.Journal.Dir
	follower, _, addr := startFollower(t, fcfg, 0)

	pcfg := replConfig(t)
	pdir := pcfg.Journal.Dir
	primary := startPrimary(t, pcfg)
	sender := startSender(t, primary, pdir, addr, func(c *replicate.SenderConfig) {
		dial := func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
		c.Dial = replicate.FaultDialer(dial, func(attempt int) int64 {
			// The handshake costs ~60 bytes; each budget lands the cut in
			// the middle of a later record frame.
			switch attempt {
			case 0:
				return 300
			case 1:
				return 700
			default:
				return -1
			}
		})
	})

	for i := 0; i < 12; i++ {
		if _, err := primary.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 1+i%4, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "primary drain", func() bool { return primary.Stats().Completed == 12 })
	waitCaughtUp(t, primary, follower)

	if st := sender.Stats(); st.Reconnects < 1 {
		t.Fatalf("sender stats %+v: the faulted link should have forced at least one reconnect", st)
	}
	requireIdentical(t, primary, follower)
	requireJournalPrefix(t, pdir, fdir)
}

// TestReplicationCatchUpFromOffset attaches a fresh follower to a primary
// that has been running alone: every record it needs predates the sender,
// so the stream must come out of the primary's WAL, then hand off to the
// live queue for new work.
func TestReplicationCatchUpFromOffset(t *testing.T) {
	pcfg := replConfig(t)
	pdir := pcfg.Journal.Dir
	primary := startPrimary(t, pcfg)
	for i := 0; i < 6; i++ {
		if _, err := primary.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 2, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "primary drain", func() bool { return primary.Stats().Completed == 6 })

	fcfg := replConfig(t)
	fdir := fcfg.Journal.Dir
	follower, _, addr := startFollower(t, fcfg, 0)
	startSender(t, primary, pdir, addr, nil)
	waitCaughtUp(t, primary, follower)
	requireIdentical(t, primary, follower)
	requireJournalPrefix(t, pdir, fdir)

	// Live tail after catch-up: new work flows through the queue path.
	for i := 0; i < 4; i++ {
		if _, err := primary.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 1, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "primary drain", func() bool { return primary.Stats().Completed == 10 })
	waitCaughtUp(t, primary, follower)
	requireIdentical(t, primary, follower)
}

// TestReplicationCatchUpFromSnapshot compacts the primary's journal
// before any follower exists: catch-up must open with a snapshot frame
// (cursor-stamped), reset the follower's shard wholesale, and stream the
// tail after it.
func TestReplicationCatchUpFromSnapshot(t *testing.T) {
	pcfg := replConfig(t)
	pcfg.Journal.SnapshotEvery = 4
	pdir := pcfg.Journal.Dir
	primary := startPrimary(t, pcfg)
	for i := 0; i < 8; i++ {
		if _, err := primary.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 2, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "primary drain", func() bool { return primary.Stats().Completed == 8 })
	waitFor(t, "compaction", func() bool { return primary.Stats().Journal.Compactions >= 1 })

	fcfg := replConfig(t)
	follower, rcv, addr := startFollower(t, fcfg, 0)
	startSender(t, primary, pdir, addr, nil)
	waitCaughtUp(t, primary, follower)
	if st := rcv.Stats(); st.Snaps < 1 {
		t.Fatalf("receiver stats %+v: catch-up over a compacted journal must deliver a snapshot frame", st)
	}
	requireIdentical(t, primary, follower)

	// The follower keeps tracking live work after the snapshot reset.
	for i := 0; i < 3; i++ {
		if _, err := primary.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 1, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "primary drain", func() bool { return primary.Stats().Completed == 11 })
	waitCaughtUp(t, primary, follower)
	requireIdentical(t, primary, follower)
}

// TestPromotionFencesPrimary promotes the follower while the primary is
// alive and asserts both sides of the epoch fence: the deposed primary
// refuses admissions with a located sticky error, and the promoted
// follower starts serving — step loops running, /readyz semantics green.
func TestPromotionFencesPrimary(t *testing.T) {
	fcfg := replConfig(t)
	follower, rcv, addr := startFollower(t, fcfg, 0)

	pcfg := replConfig(t)
	primary := startPrimary(t, pcfg)
	sender := startSender(t, primary, pcfg.Journal.Dir, addr, nil)

	for i := 0; i < 4; i++ {
		if _, err := primary.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 2, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "primary drain", func() bool { return primary.Stats().Completed == 4 })
	waitCaughtUp(t, primary, follower)
	if ready, why := follower.Ready(); ready {
		t.Fatalf("standby reports ready before promotion (%q)", why)
	}

	if epoch := rcv.Promote(); epoch != 2 {
		t.Fatalf("promotion produced epoch %d, want 2", epoch)
	}
	if follower.Following() {
		t.Fatal("promoted follower still reports following")
	}
	if ready, why := follower.Ready(); !ready {
		t.Fatalf("promoted follower not ready: %s", why)
	}

	// The fence frame races the sender's next read; wait for the latch.
	waitFor(t, "primary fenced", func() bool {
		return errors.Is(sender.WriteAllowed(), replicate.ErrFenced)
	})
	if _, err := primary.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)}); !errors.Is(err, replicate.ErrFenced) {
		t.Fatalf("deposed primary accepted a submission (err %v), want ErrFenced", err)
	}
	if err := primary.Cancel(0); !errors.Is(err, replicate.ErrFenced) {
		t.Fatalf("deposed primary accepted a cancel (err %v), want ErrFenced", err)
	}

	// The promoted follower serves: admissions flow and its clock moves.
	id, err := follower.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 2, 1)})
	if err != nil {
		t.Fatalf("promoted follower refused a submission: %v", err)
	}
	waitFor(t, "promoted follower completes work", func() bool {
		st, ok := follower.Job(id)
		return ok && st.Phase == sim.JobDone
	})
	// Promotion is idempotent and sticky.
	if epoch := rcv.Promote(); epoch != 2 {
		t.Fatalf("re-promotion moved the epoch to %d", epoch)
	}
}

// TestReplicationLeaseExpiryHeals gates the primary's admissions on
// follower liveness: killing the follower expires the lease (admissions
// refuse with ErrLeaseExpired), restarting it at the same address heals
// the lease and the stream resumes to bit-identity.
func TestReplicationLeaseExpiryHeals(t *testing.T) {
	fcfg := replConfig(t)
	follower, rcv, addr := startFollower(t, fcfg, 0)

	pcfg := replConfig(t)
	pdir := pcfg.Journal.Dir
	primary := startPrimary(t, pcfg)
	sender := startSender(t, primary, pdir, addr, func(c *replicate.SenderConfig) {
		c.Lease = 150 * time.Millisecond
	})

	if _, err := primary.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 2, 1)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "primary drain", func() bool { return primary.Stats().Completed == 1 })
	waitCaughtUp(t, primary, follower)

	// Follower dies (listener and stream): acks stop, the lease blows.
	rcv.Close()
	waitFor(t, "lease expiry", func() bool {
		return errors.Is(sender.WriteAllowed(), replicate.ErrLeaseExpired)
	})
	if _, err := primary.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)}); !errors.Is(err, replicate.ErrLeaseExpired) {
		t.Fatalf("primary accepted a submission with the lease blown (err %v)", err)
	}

	// Heal: a receiver returns at the same address over the same follower
	// state. Acks resume, the gate lifts on its own (unlike a fence).
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	rcv2, err := replicate.NewReceiver(replicate.ReceiverConfig{
		Listener: ln,
		Applier:  follower,
		Epoch:    1,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rcv2.Close)
	waitFor(t, "lease heal", func() bool { return sender.WriteAllowed() == nil })

	for i := 0; i < 3; i++ {
		if _, err := primary.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 1, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "primary drain", func() bool { return primary.Stats().Completed == 4 })
	waitCaughtUp(t, primary, follower)
	requireIdentical(t, primary, follower)
}

// TestReplicationMetricsExposition checks the krad_replicate_* families
// on both ends of a live pair in scrape format: the primary exports
// epoch, connectivity, lag and reconnect counters; the follower its
// applied and promotion state. The same data rides Stats as the
// role-tagged replication slice.
func TestReplicationMetricsExposition(t *testing.T) {
	fcfg := replConfig(t)
	follower, rcv, addr := startFollower(t, fcfg, 0)
	follower.SetReplicationStats(func() *ReplicationStats {
		st := rcv.Stats()
		return &ReplicationStats{Role: "follower", Follower: &st}
	})

	pcfg := replConfig(t)
	primary := startPrimary(t, pcfg)
	sender := startSender(t, primary, pcfg.Journal.Dir, addr, nil)
	primary.SetReplicationStats(func() *ReplicationStats {
		st := sender.Stats()
		return &ReplicationStats{Role: "primary", Primary: &st}
	})

	for i := 0; i < 3; i++ {
		if _, err := primary.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 2, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "primary drain", func() bool { return primary.Stats().Completed == 3 })
	waitCaughtUp(t, primary, follower)
	waitFor(t, "acks drain the lag", func() bool { return sender.Stats().LagRecords == 0 })

	scrape := func(svc *Service) string {
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	ptext := scrape(primary)
	for _, want := range []string{
		"# TYPE krad_replicate_epoch gauge",
		"krad_replicate_epoch 1",
		"krad_replicate_connected 1",
		"krad_replicate_lag_records 0",
		"# TYPE krad_replicate_reconnects_total counter",
		"krad_replicate_fenced 0",
		"# TYPE krad_replicate_queue_drops_total counter",
	} {
		if !strings.Contains(ptext, want) {
			t.Errorf("primary /metrics missing %q", want)
		}
	}
	ftext := scrape(follower)
	for _, want := range []string{
		"krad_replicate_epoch 1",
		"krad_replicate_connected 1",
		"# TYPE krad_replicate_reconnects_total counter",
		"# TYPE krad_replicate_applied_total counter",
		"krad_replicate_promoted 0",
	} {
		if !strings.Contains(ftext, want) {
			t.Errorf("follower /metrics missing %q", want)
		}
	}
	if rs := primary.Stats().Replication; rs == nil || rs.Role != "primary" || rs.Primary == nil {
		t.Errorf("primary Stats().Replication = %+v, want a primary-role slice", rs)
	}
	if rs := follower.Stats().Replication; rs == nil || rs.Role != "follower" || rs.Follower == nil {
		t.Errorf("follower Stats().Replication = %+v, want a follower-role slice", rs)
	}
}

// TestFollowerRefusesWrites pins the standby's read-only contract at the
// Service layer: submissions and cancels refuse with ErrFollower until
// promotion.
func TestFollowerRefusesWrites(t *testing.T) {
	cfg := replConfig(t)
	cfg.Follower = true
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drainAndClose(t, svc)
	if _, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)}); !errors.Is(err, ErrFollower) {
		t.Fatalf("standby accepted a submission (err %v), want ErrFollower", err)
	}
	if err := svc.Cancel(0); !errors.Is(err, ErrFollower) {
		t.Fatalf("standby accepted a cancel (err %v), want ErrFollower", err)
	}
	svc.Promote()
	if _, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
		t.Fatalf("promoted service refused a submission: %v", err)
	}
}
