package replicate

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzReplicateFrame feeds arbitrary bytes — seeded with a real frame
// stream, truncations, and bit-flips — through the stream decoder. The
// invariants: never panic, and every frame returned must be CRC-valid,
// re-encodable, and explainable by the bytes physically present (no
// phantom frames conjured from noise).
func FuzzReplicateFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteMagic(&buf); err != nil {
		f.Fatal(err)
	}
	for _, fr := range []Frame{
		{T: FrameHello, Epoch: 1, Shards: 2},
		{T: FrameHelloAck, Epoch: 1, Next: []int64{1, 1}},
		{T: FrameHeartbeat, Epoch: 1},
		{T: FrameAck, Epoch: 1, Next: []int64{4, 1}},
		{T: FrameFence, Epoch: 2},
	} {
		if err := WriteFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
	}
	seed := buf.Bytes()
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add(seed[:len(streamMagic)])
	f.Add([]byte{})
	f.Add([]byte("KRADREP\x02garbage"))
	flipped := bytes.Clone(seed)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		frames, goodLen, err := DecodeStream(data)
		if err != nil {
			return
		}
		if goodLen > int64(len(data)) {
			t.Fatalf("goodLen %d beyond %d input bytes", goodLen, len(data))
		}
		if len(data) < len(streamMagic) {
			if len(frames) != 0 || goodLen != 0 {
				t.Fatalf("decoded %d frames (goodLen %d) from %d bytes", len(frames), goodLen, len(data))
			}
			return
		}
		// Re-walk the raw bytes: each decoded frame must sit exactly where
		// the framing says, with a matching CRC, and re-encode cleanly.
		off := int64(len(streamMagic))
		for i, fr := range frames {
			if int64(len(data))-off < frameHeaderLen {
				t.Fatalf("frame %d decoded past the data", i)
			}
			length := int64(binary.LittleEndian.Uint32(data[off:]))
			sum := binary.LittleEndian.Uint32(data[off+4:])
			payload := data[off+frameHeaderLen : off+frameHeaderLen+length]
			if crc32.ChecksumIEEE(payload) != sum {
				t.Fatalf("frame %d accepted with a bad CRC", i)
			}
			if _, err := EncodeFrame(fr); err != nil {
				t.Fatalf("frame %d decoded but does not re-encode: %v", i, err)
			}
			off += frameHeaderLen + length
		}
		if off != goodLen {
			t.Fatalf("frames end at %d but goodLen is %d", off, goodLen)
		}
	})
}
