package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"krad"
)

// microBench is one entry of the JSON benchmark registry: the scheduling
// micro-benchmarks from the repo's bench_test.go, re-declared here so the
// kradbench binary can run them without the test harness. Names match the
// `go test -bench` names so numbers are comparable across both harnesses.
type microBench struct {
	name string
	fn   func(b *testing.B)
}

// microBenches mirrors bench_test.go's scheduling primitives and engine
// throughput targets (experiment-table benchmarks stay test-only: their
// output is what kradbench's normal mode prints).
func microBenches() []microBench {
	var benches []microBench
	add := func(name string, fn func(b *testing.B)) {
		benches = append(benches, microBench{name: name, fn: fn})
	}

	add("BenchmarkProfileEngine", func(b *testing.B) {
		specs, err := krad.GenerateProfiles(krad.ProfileGenOpts{
			K: 3, Jobs: 64, MinPhases: 2, MaxPhases: 8, MaxParallelism: 100_000, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		tasks := 0
		for _, s := range specs {
			tasks += s.Source.TotalTasks()
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := krad.Run(krad.Config{
				K: 3, Caps: []int{256, 256, 256}, Scheduler: krad.NewKRAD(3),
			}, specs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(tasks), "tasks/op")
	})

	add("BenchmarkDAGEngine", func(b *testing.B) {
		specs := denseLayeredSpecs(2, 8, 2048, 4)
		tasks := 0
		for _, s := range specs {
			tasks += s.Graph.NumTasks()
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := krad.Run(krad.Config{
				K: 2, Caps: []int{8, 8}, Scheduler: krad.NewKRAD(2),
			}, specs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(tasks), "tasks/op")
	})

	add("BenchmarkMoldableEngine", func(b *testing.B) {
		specs := krad.GenerateMoldable(krad.MoldableGenOpts{
			K: 3, Jobs: 64, MinTasks: 8, MaxTasks: 24, MaxWork: 32, MaxProcs: 8, Seed: 1,
		})
		tasks := 0
		for _, s := range specs {
			tasks += s.Source.TotalTasks()
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := krad.Run(krad.Config{
				K: 3, Caps: []int{16, 16, 16}, Scheduler: krad.WithFloors(krad.NewKRAD(3)),
			}, specs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(tasks), "tasks/op")
	})

	add("BenchmarkMixedFamilyEngine", func(b *testing.B) {
		specs := denseLayeredSpecs(3, 4, 512, 4)
		profiles, err := krad.GenerateProfiles(krad.ProfileGenOpts{
			K: 3, Jobs: 4, MinPhases: 2, MaxPhases: 4, MaxParallelism: 20_000, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, profiles...)
		specs = append(specs, krad.GenerateMoldable(krad.MoldableGenOpts{
			K: 3, Jobs: 16, MinTasks: 8, MaxTasks: 24, MaxWork: 32, MaxProcs: 8, Seed: 11,
		})...)
		tasks := 0
		for _, s := range specs {
			if s.Graph != nil {
				tasks += s.Graph.NumTasks()
			} else {
				tasks += s.Source.TotalTasks()
			}
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := krad.Run(krad.Config{
				K: 3, Caps: []int{32, 32, 32}, Scheduler: krad.WithFloors(krad.NewKRAD(3)),
			}, specs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(tasks), "tasks/op")
	})

	add("BenchmarkMixedEngine", func(b *testing.B) {
		specs := denseLayeredSpecs(2, 4, 1024, 4)
		profiles, err := krad.GenerateProfiles(krad.ProfileGenOpts{
			K: 2, Jobs: 4, MinPhases: 2, MaxPhases: 4, MaxParallelism: 50_000, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, profiles...)
		tasks := 0
		for _, s := range specs {
			if s.Graph != nil {
				tasks += s.Graph.NumTasks()
			} else {
				tasks += s.Source.TotalTasks()
			}
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := krad.Run(krad.Config{
				K: 2, Caps: []int{48, 48}, Scheduler: krad.NewKRAD(2),
			}, specs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(tasks), "tasks/op")
	})

	for _, n := range []int{20, 100, 400} {
		n := n
		add(fmt.Sprintf("BenchmarkEngineRun/jobs=%d", n), func(b *testing.B) {
			specs, err := krad.Mix{K: 3, Jobs: n, MinSize: 10, MaxSize: 50, Seed: 1}.Generate()
			if err != nil {
				b.Fatal(err)
			}
			tasks := 0
			for _, s := range specs {
				tasks += s.Graph.NumTasks()
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := krad.Run(krad.Config{
					K: 3, Caps: []int{8, 8, 8}, Scheduler: krad.NewKRAD(3),
				}, specs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tasks), "tasks/op")
		})
	}

	for _, size := range []int{4, 32, 256} {
		for _, mult := range []struct {
			label string
			p     func(n int) int
		}{
			{"half", func(n int) int { return n / 2 }},
			{"double", func(n int) int { return 2 * n }},
		} {
			size, p := size, mult.p(size)
			add(fmt.Sprintf("BenchmarkDeq/jobs=%d/p=%d", size, p), func(b *testing.B) {
				desires := make([]int, size)
				for i := range desires {
					desires[i] = 1 + i%13
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					krad.Deq(desires, p, i)
				}
			})
		}
	}

	for _, cfg := range []struct{ k, n int }{{1, 16}, {3, 64}, {3, 512}, {8, 256}} {
		cfg := cfg
		add(fmt.Sprintf("BenchmarkKRADAllot/K=%d/jobs=%d", cfg.k, cfg.n), func(b *testing.B) {
			s := krad.NewKRAD(cfg.k)
			caps := make([]int, cfg.k)
			for i := range caps {
				caps[i] = 8
			}
			jobs := make([]krad.JobView, cfg.n)
			for i := range jobs {
				d := make([]int, cfg.k)
				for a := range d {
					d[a] = (i + a) % 7
				}
				jobs[i] = krad.JobView{ID: i, Desire: d}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Allot(int64(i), jobs, caps)
			}
		})
	}
	return benches
}

// denseLayeredSpecs mirrors bench_test.go's level-structured K-DAG workload:
// wide dense levels separated by one-task barrier joins, categories rotating
// across jobs and levels.
func denseLayeredSpecs(k, jobs, width, levels int) []krad.JobSpec {
	specs := make([]krad.JobSpec, jobs)
	for j := 0; j < jobs; j++ {
		layers := make([]krad.LayerSpec, 0, 2*levels-1)
		for l := 0; l < levels; l++ {
			layers = append(layers, krad.LayerSpec{Count: width, Cat: krad.Category(1 + (j+l)%k)})
			if l < levels-1 {
				layers = append(layers, krad.LayerSpec{Count: 1, Cat: krad.Category(1 + (j+l+1)%k)})
			}
		}
		specs[j] = krad.JobSpec{Graph: krad.Layered(k, layers, true)}
	}
	return specs
}

// benchResult is one benchmark's measurements in the JSON report.
type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	TasksPerOp  float64 `json:"tasks_per_op,omitempty"`
}

// benchReport is the file layout: environment header + per-benchmark rows,
// comparable across commits (see BENCH_PR4.json for the recorded baseline).
type benchReport struct {
	GoOS       string        `json:"goos"`
	GoArch     string        `json:"goarch"`
	GoVersion  string        `json:"go_version"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// familyBenches maps a -family value onto the engine benchmarks that
// exercise that runtime family. Scheduling primitives (Deq, KRADAllot) are
// family-independent and always excluded from a family-restricted run.
var familyBenches = map[string][]string{
	"profile":  {"BenchmarkProfileEngine"},
	"dag":      {"BenchmarkDAGEngine", "BenchmarkEngineRun"},
	"moldable": {"BenchmarkMoldableEngine"},
	"mixed":    {"BenchmarkMixedEngine", "BenchmarkMixedFamilyEngine"},
}

// runJSONBenchmarks executes the registry under testing.Benchmark and
// writes the report to path ("-" for stdout). A non-empty family restricts
// the run to that family's engine benchmarks.
func runJSONBenchmarks(path, note, family string) error {
	keep := func(string) bool { return true }
	if family != "" {
		prefixes, ok := familyBenches[family]
		if !ok {
			return fmt.Errorf("unknown family %q (want profile, dag, moldable or mixed)", family)
		}
		keep = func(name string) bool {
			for _, p := range prefixes {
				if strings.HasPrefix(name, p) {
					return true
				}
			}
			return false
		}
	}
	report := benchReport{
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		GoVersion: runtime.Version(),
		Note:      note,
	}
	for _, mb := range append(microBenches(), fleetBenches()...) {
		if !keep(mb.name) {
			continue
		}
		r := testing.Benchmark(mb.fn)
		if r.N == 0 {
			return fmt.Errorf("benchmark %s did not run (b.Fatal inside the loop?)", mb.name)
		}
		res := benchResult{
			Name:        mb.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if v, ok := r.Extra["tasks/op"]; ok {
			res.TasksPerOp = v
		}
		fmt.Fprintf(os.Stderr, "%s\tN=%d\t%.0f ns/op\t%d allocs/op\n", mb.name, res.N, res.NsPerOp, res.AllocsPerOp)
		report.Benchmarks = append(report.Benchmarks, res)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
