package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/journal"
	"krad/internal/sched"
	"krad/internal/sim"
)

func journaledConfig(t *testing.T, k int, caps ...int) Config {
	t.Helper()
	cfg := testConfig(k, caps...)
	cfg.Journal = &JournalConfig{Dir: t.TempDir()}
	return cfg
}

// drainAndClose closes the service, letting in-flight jobs finish.
func drainAndClose(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// stepShard drives one shard's clock by hand (the step-loop goroutine is
// not running in these tests, keeping timing deterministic).
func stepShard(t *testing.T, svc *Service, idx int) bool {
	t.Helper()
	ok, err := svc.shards[idx].stepOnce()
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestRestartReplaysExactly(t *testing.T) {
	cfg := journaledConfig(t, 2, 2, 1)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave admissions, steps and a cancel so the journal holds every
	// record type at specific clock values.
	id0, err := svc.Submit(sim.JobSpec{Graph: dag.RoundRobinChain(2, 6)})
	if err != nil {
		t.Fatal(err)
	}
	stepShard(t, svc, 0)
	stepShard(t, svc, 0)
	id1, err := svc.Submit(sim.JobSpec{Graph: dag.UniformChain(2, 5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := svc.Submit(sim.JobSpec{Graph: dag.UniformChain(2, 4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	stepShard(t, svc, 0)
	if err := svc.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	stepShard(t, svc, 0)
	before := svc.Stats()
	beforeJobs := map[int]sim.JobStatus{}
	for _, id := range []int{id0, id1, id2} {
		st, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		beforeJobs[id] = st
	}
	drainAndClose(t, svc)

	// "Restart the daemon": a fresh Service over the same journal dir.
	svc2, err := New(journaledConfigFrom(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer drainAndClose(t, svc2)
	after := svc2.Stats()
	if after.Now != before.Now {
		t.Fatalf("restarted clock %d, want %d", after.Now, before.Now)
	}
	if after.Submitted != before.Submitted || after.Completed != before.Completed ||
		after.Cancelled != before.Cancelled || after.Active != before.Active ||
		after.Pending != before.Pending {
		t.Fatalf("restarted stats %+v, want %+v", after, before)
	}
	if after.Response.N != before.Response.N || after.Response.Mean != before.Response.Mean {
		t.Fatalf("restarted response summary %+v, want %+v", after.Response, before.Response)
	}
	for id, want := range beforeJobs {
		got, ok := svc2.Job(id)
		if !ok {
			t.Fatalf("job %d lost across restart", id)
		}
		if got.Phase != want.Phase || got.Release != want.Release || got.Completion != want.Completion {
			t.Fatalf("job %d: restarted %+v, want %+v", id, got, want)
		}
	}
	// The restarted service continues assigning IDs where the first left
	// off — no reuse, no gaps.
	id3, err := svc2.Submit(sim.JobSpec{Graph: dag.Singleton(2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id2+1 {
		t.Fatalf("post-restart submit got ID %d, want %d", id3, id2+1)
	}
}

// journaledConfigFrom rebuilds a config sharing the first one's journal
// dir but nothing mutable (the scheduler must be fresh).
func journaledConfigFrom(cfg Config) Config {
	out := testConfig(cfg.Sim.K, cfg.Sim.Caps...)
	out.Shards = cfg.Shards
	out.NewScheduler = cfg.NewScheduler
	out.MaxInFlight = cfg.MaxInFlight
	out.Journal = &JournalConfig{
		Dir:           cfg.Journal.Dir,
		Sync:          cfg.Journal.Sync,
		SnapshotEvery: cfg.Journal.SnapshotEvery,
		OpenAppend:    cfg.Journal.OpenAppend,
	}
	return out
}

func TestRestartMatchesNeverCrashedOracle(t *testing.T) {
	// Run a workload to completion twice: once straight through, once with
	// a "crash" (journal close + fresh Service) in the middle. Their final
	// states must be bit-identical.
	run := func(crashAfter int) (Stats, map[int]sim.JobStatus) {
		cfg := journaledConfig(t, 1, 2)
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ids []int
		for i := 0; i < 6; i++ {
			id, err := svc.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 2+i%3, 1)})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			stepShard(t, svc, 0)
			if crashAfter > 0 && i == crashAfter {
				drainlessClose(t, svc)
				svc, err = New(journaledConfigFrom(cfg))
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		for stepShard(t, svc, 0) {
		}
		st := svc.Stats()
		jobs := map[int]sim.JobStatus{}
		for _, id := range ids {
			j, _ := svc.Job(id)
			jobs[id] = j
		}
		drainAndClose(t, svc)
		return st, jobs
	}
	oracleStats, oracleJobs := run(0)
	crashedStats, crashedJobs := run(3)
	if crashedStats.Now != oracleStats.Now || crashedStats.Completed != oracleStats.Completed ||
		crashedStats.Submitted != oracleStats.Submitted {
		t.Fatalf("crashed run stats %+v, oracle %+v", crashedStats, oracleStats)
	}
	for id, want := range oracleJobs {
		got := crashedJobs[id]
		if got.Phase != want.Phase || got.Completion != want.Completion || got.Release != want.Release {
			t.Fatalf("job %d: crashed run %+v, oracle %+v", id, got, want)
		}
	}
}

// drainlessClose simulates a crash as closely as a clean process allows:
// stop without draining (jobs stay in-flight in the journal).
func drainlessClose(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: close abandons in-flight work immediately
	_ = svc.Close(ctx)
}

func TestDegradedDiskShedsAdmissionsKeepsScheduling(t *testing.T) {
	cfg := journaledConfig(t, 1, 2)
	budget := int64(1500)
	cfg.Journal.OpenAppend = func(path string) (journal.File, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &journal.FaultFile{F: f, N: budget}, nil
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Admit until the disk "fills".
	var admitted []int
	var degradedAt int = -1
	for i := 0; i < 64; i++ {
		id, err := svc.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 4, 1)})
		if err != nil {
			if !errors.Is(err, ErrDegraded) {
				t.Fatalf("submit %d: %v, want ErrDegraded", i, err)
			}
			degradedAt = i
			break
		}
		admitted = append(admitted, id)
	}
	if degradedAt < 0 {
		t.Fatal("fault budget never tripped")
	}
	if len(admitted) == 0 {
		t.Fatal("no admission succeeded before the disk filled")
	}
	// Degradation is sticky: cancels refuse too, and readiness reports it.
	if err := svc.Cancel(admitted[0]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("cancel while degraded: %v, want ErrDegraded", err)
	}
	if ok, reason := svc.Ready(); ok || reason == "" {
		t.Fatalf("Ready() = %v %q while degraded", ok, reason)
	}
	st := svc.Stats()
	if st.Journal == nil || st.Journal.Degraded != 1 {
		t.Fatalf("stats journal %+v, want 1 degraded shard", st.Journal)
	}
	// In-flight jobs keep scheduling from memory: the already-admitted
	// work runs to completion even though nothing new is acknowledged.
	for stepShard(t, svc, 0) {
	}
	for _, id := range admitted {
		jst, ok := svc.Job(id)
		if !ok || jst.Phase != sim.JobDone {
			t.Fatalf("in-flight job %d did not finish under degraded disk: %+v (ok=%v)", id, jst, ok)
		}
	}
	drainlessClose(t, svc)

	// Restart on a healthy disk: every acknowledged admission is back
	// (re-derived by stepping, since tail steps after the failure were
	// unjournaled), the shed one never existed.
	svc2, err := New(Config{
		Sim:     cfg.Sim,
		Journal: &JournalConfig{Dir: cfg.Journal.Dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drainAndClose(t, svc2)
	for stepShard(t, svc2, 0) {
	}
	for _, id := range admitted {
		jst, ok := svc2.Job(id)
		if !ok || jst.Phase != sim.JobDone {
			t.Fatalf("job %d lost or unfinished after healthy restart: %+v (ok=%v)", id, jst, ok)
		}
	}
	if st := svc2.Stats(); st.Submitted != int64(len(admitted)) {
		t.Fatalf("restarted submitted=%d, want %d (no phantom admissions)", st.Submitted, len(admitted))
	}
}

func TestDegradedAdmissionRollsBackCleanly(t *testing.T) {
	// The admission that trips the fault must not leak: its ID is never
	// returned, and the journal holds no trace of it.
	cfg := journaledConfig(t, 1, 1)
	trip := false
	cfg.Journal.OpenAppend = func(path string) (journal.File, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		ff := &journal.FaultFile{F: f, N: 1 << 30}
		if !trip {
			trip = true
			ff.N = int64(len("KRADWAL\x01")) + 40 // room for the header + one small record
		}
		return ff, nil
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First submit fits the budget... or trips it; either way the invariant
	// below holds: successful submits survive restart, failed ones vanish.
	var acked []int
	for i := 0; i < 4; i++ {
		id, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)})
		if err == nil {
			acked = append(acked, id)
		} else if !errors.Is(err, ErrDegraded) {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if len(acked) == 4 {
		t.Fatal("fault never tripped")
	}
	drainlessClose(t, svc)
	svc2, err := New(Config{Sim: cfg.Sim, Journal: &JournalConfig{Dir: cfg.Journal.Dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer drainAndClose(t, svc2)
	if got := svc2.Stats().Submitted; got != int64(len(acked)) {
		t.Fatalf("restart sees %d submissions, %d were acknowledged", got, len(acked))
	}
}

func TestJournalRefusesShardShrink(t *testing.T) {
	cfg := journaledConfig(t, 1, 2)
	cfg.Shards = 2
	cfg.NewScheduler = func() sched.Scheduler { return core.NewKRAD(cfg.Sim.K) }
	svc, err := New(cfg)
	if err != nil {
		t.Skipf("sharded journal config rejected: %v", err)
	}
	if _, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
		t.Fatal(err)
	}
	drainAndClose(t, svc)

	shrunk := journaledConfigFrom(cfg)
	shrunk.Shards = 1
	shrunk.NewScheduler = nil
	if _, err := New(shrunk); err == nil {
		t.Fatal("New accepted a journal dir written by a larger fleet")
	}
}

func TestCompactionBoundsReplay(t *testing.T) {
	cfg := journaledConfig(t, 1, 2)
	cfg.Journal.SnapshotEvery = 5
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := svc.Submit(sim.JobSpec{Graph: dag.UniformChain(1, 3, 1)}); err != nil {
			t.Fatal(err)
		}
		for stepShard(t, svc, 0) {
		}
		svc.shards[0].maybeCompact()
	}
	before := svc.Stats()
	if before.Journal.Compactions == 0 {
		t.Fatalf("no compaction ran: %+v", before.Journal)
	}
	if before.Journal.Records > 5+1 {
		t.Fatalf("journal holds %d records after compaction, want ≤ 6", before.Journal.Records)
	}
	drainAndClose(t, svc)

	svc2, err := New(journaledConfigFrom(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer drainAndClose(t, svc2)
	after := svc2.Stats()
	if after.Now != before.Now || after.Completed != before.Completed ||
		after.Response.N != before.Response.N || after.Response.Mean != before.Response.Mean {
		t.Fatalf("restart from compacted journal: %+v, want %+v", after, before)
	}
	// IDs continue from the snapshot — the checkpoint carries the table.
	id, err := svc2.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 {
		t.Fatalf("post-compaction submit got ID %d, want 4", id)
	}
}

func TestCorruptJournalFailsStartupLocated(t *testing.T) {
	cfg := journaledConfig(t, 1, 2)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.Submit(sim.JobSpec{Graph: dag.Singleton(1, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	drainAndClose(t, svc)

	path := filepath.Join(cfg.Journal.Dir, "shard-000.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0x20 // inside record 0's payload: interior damage, intact records after
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = New(journaledConfigFrom(cfg))
	if !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("New over a corrupt journal: %v, want ErrCorrupt", err)
	}
}

func TestReadyzEndpoints(t *testing.T) {
	cfg := journaledConfig(t, 1, 2)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz on a healthy service: %d", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz on a healthy service: %d", code)
	}
	drainAndClose(t, svc)
	// Draining/closed: liveness stays 200, readiness flips to 503.
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while draining: %d, want 200 (liveness)", code)
	}
}

func TestDegradedHTTPIs503WithRetryAfter(t *testing.T) {
	cfg := journaledConfig(t, 1, 2)
	cfg.Journal.OpenAppend = func(path string) (journal.File, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &journal.FaultFile{F: f, N: int64(len("KRADWAL\x01")), Err: syscall.ENOSPC}, nil
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	body, err := json.Marshal(submitRequest{Graph: dag.Singleton(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on a degraded service: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 carries no Retry-After")
	}
	if code := readyzCode(t, ts.URL); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while degraded: %d, want 503", code)
	}
	drainlessClose(t, svc)
}

func readyzCode(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
