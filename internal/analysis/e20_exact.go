package analysis

import (
	"fmt"
	"math/rand"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sim"
)

// RunE20 computes TRUE competitive ratios on tiny instances: the measured
// ratios elsewhere divide by the Section 4 lower bound, which can
// understate T*. Here a brute-force search (ExactMakespan) finds the real
// optimum for random micro-instances, giving the exact ratio T/T* for
// K-RAD under friendly (FIFO) and adversarial (CP-last) task picking, and
// showing how loose the lower bound itself is (LB/T* column). Expected
// shape: exact K-RAD ratios concentrate near 1 with a worst case well
// below K+1−1/Pmax; the lower bound is within a few percent of T* on most
// instances, justifying its use as the denominator at scale.
func RunE20(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E20",
		Title:  "True competitive ratios on tiny instances (exact optimum by search)",
		Header: []string{"K", "caps", "instances", "mean T/T*", "worst T/T*", "worst adv T/T*", "mean LB/T*", "bound"},
	}
	trials := 60
	if opts.Quick {
		trials = 20
	}
	type cfg struct {
		k    int
		caps []int
	}
	for _, c := range []cfg{
		{1, []int{2}},
		{2, []int{1, 1}},
		{2, []int{2, 2}},
		{3, []int{1, 1, 1}},
	} {
		rng := rand.New(rand.NewSource(opts.seed() + int64(c.k*100+c.caps[0])))
		var sumRatio, worst, worstAdv, sumLB float64
		count := 0
		for trial := 0; trial < trials; trial++ {
			nJobs := 2 + rng.Intn(2)
			jobs := make([]*dag.Graph, nJobs)
			total := 0
			for i := range jobs {
				jobs[i] = dag.Random(c.k, dag.RandomOpts{
					Tasks:    2 + rng.Intn(5),
					EdgeProb: 0.3,
					Window:   3,
				}, rng)
				total += jobs[i].NumTasks()
			}
			if total > 16 {
				continue // keep the search instant
			}
			tStar, err := ExactMakespan(c.k, c.caps, jobs)
			if err != nil {
				return nil, err
			}
			run := func(pick dag.PickPolicy) (int64, error) {
				specs := make([]sim.JobSpec, nJobs)
				for i, g := range jobs {
					specs[i] = sim.JobSpec{Graph: g}
				}
				res, err := sim.Run(sim.Config{
					K: c.k, Caps: c.caps, Scheduler: core.NewKRAD(c.k),
					Pick: pick, ValidateAllotments: true,
				}, specs)
				if err != nil {
					return 0, err
				}
				// Sanity: the simulator can never beat the exact optimum.
				if res.Makespan < int64(tStar) {
					return 0, fmt.Errorf("E20: simulated makespan %d below exact optimum %d", res.Makespan, tStar)
				}
				// And the lower bound must not exceed it either.
				if lb := metrics.MakespanLowerBound(res); lb > int64(tStar) {
					return 0, fmt.Errorf("E20: lower bound %d above exact optimum %d", lb, tStar)
				}
				sumLB += float64(metrics.MakespanLowerBound(res)) / float64(tStar)
				return res.Makespan, nil
			}
			tFifo, err := run(dag.PickFIFO)
			if err != nil {
				return nil, err
			}
			tAdv, err := run(dag.PickCPLast)
			if err != nil {
				return nil, err
			}
			r := float64(tFifo) / float64(tStar)
			ra := float64(tAdv) / float64(tStar)
			sumRatio += r
			if r > worst {
				worst = r
			}
			if ra > worstAdv {
				worstAdv = ra
			}
			count++
		}
		bound := metrics.MakespanCompetitiveLimit(c.k, c.caps)
		t.AddRow(c.k, fmt.Sprint(c.caps), count,
			sumRatio/float64(count), worst, worstAdv,
			sumLB/float64(2*count), bound)
		if worstAdv > bound {
			t.AddNote("FAIL: exact adversarial ratio %.3f exceeds the Theorem 3 bound %.3f at K=%d", worstAdv, bound, c.k)
		}
	}
	t.AddNote("T* by exhaustive search (≤ 16 tasks per instance); LB/T* shows how tight the Section 4 lower bound is — the denominator used by the at-scale experiments")
	return t, nil
}
