package workload

import (
	"testing"
)

func TestPresetNamesSorted(t *testing.T) {
	names := PresetNames()
	if len(names) < 5 {
		t.Fatalf("only %d presets: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("not sorted: %v", names)
		}
	}
}

func TestFindPresetUnknown(t *testing.T) {
	if _, err := FindPreset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestAllPresetsBuildValidSpecs(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := FindPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Description == "" || p.K < 1 || len(p.Caps) != p.K {
			t.Errorf("%s: malformed metadata %+v", name, p)
		}
		specs, err := p.Build(1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(specs) == 0 {
			t.Errorf("%s: empty job set", name)
		}
		for i, s := range specs {
			if s.Graph == nil {
				t.Fatalf("%s: job %d has no graph", name, i)
			}
			if err := s.Graph.Validate(); err != nil {
				t.Errorf("%s job %d: %v", name, i, err)
			}
			if s.Graph.K() != p.K {
				t.Errorf("%s job %d: K mismatch", name, i)
			}
		}
	}
}

func TestPresetsDeterministic(t *testing.T) {
	p, err := FindPreset("io-server")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Build(7)
	b, _ := p.Build(7)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Release != b[i].Release || a[i].Graph.NumTasks() != b[i].Graph.NumTasks() {
			t.Fatalf("job %d differs for identical seed", i)
		}
	}
}
