package journal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"krad/internal/sim"
)

func faultOptions(mode FaultMode, budget int64, ff **FaultFile) Options {
	return Options{
		OpenAppend: func(p string) (File, error) {
			f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			*ff = &FaultFile{F: f, N: budget, Mode: mode}
			return *ff, nil
		},
	}
}

func TestAppendENOSPCIsSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.wal")
	var ff *FaultFile
	j, _, err := Open(path, faultOptions(FaultErr, 256, &ff))
	if err != nil {
		t.Fatal(err)
	}

	var appended []Record
	var failAt int = -1
	for i := 0; i < 64; i++ {
		rec := StepRecord(int64(i + 1))
		if err := j.Append(rec); err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("append %d failed with %v, want ENOSPC", i, err)
			}
			failAt = i
			break
		}
		appended = append(appended, rec)
	}
	if failAt < 0 {
		t.Fatal("budget of 256 bytes never tripped")
	}
	// The failure latches: later appends fail without touching the file,
	// and the error keeps unwrapping to ENOSPC.
	if err := j.Append(StepRecord(999)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append after trip: %v, want sticky ENOSPC", err)
	}
	if err := j.Err(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Err() = %v, want ENOSPC", err)
	}
	if st := j.Stats(); st.Failed == "" {
		t.Fatal("Stats().Failed is empty after a latched failure")
	}
	j.Close()

	// Everything acknowledged before the failure survives reopen; the torn
	// frame from the failed append is repaired away.
	_, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, recs, appended)
}

func TestAppendShortWriteTornFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.wal")
	var ff *FaultFile
	j, _, err := Open(path, faultOptions(FaultShortWrite, 100, &ff))
	if err != nil {
		t.Fatal(err)
	}

	var appended []Record
	for i := 0; i < 64; i++ {
		rec := StepRecord(int64(i + 1))
		if err := j.Append(rec); err != nil {
			// A short write surfaces as io.ErrShortWrite wrapping the cause.
			if !errors.Is(err, io.ErrShortWrite) && !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("append %d failed with %v, want short-write or ENOSPC", i, err)
			}
			break
		}
		appended = append(appended, rec)
	}
	if len(appended) == 64 {
		t.Fatal("budget of 100 bytes never tripped")
	}
	j.Close()

	// The file now ends in a half-written frame — exactly a torn tail.
	// Open must repair it and recover precisely the acknowledged records.
	_, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, recs, appended)
}

func TestCompactFailureLatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.wal")
	j, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(StepRecord(int64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	// Swap in an opener whose compact-side file has no space at all.
	j.opts.OpenAppend = func(p string) (File, error) {
		f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &FaultFile{F: f, N: 0}, nil
	}
	cp := sim.EngineCheckpoint{Now: 5}
	if err := j.Compact(Record{Type: TypeSnap, Snap: &cp}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("compact onto a full disk: %v, want ENOSPC", err)
	}
	if err := j.Err(); err == nil {
		t.Fatal("journal not latched after failed compaction")
	}
	j.Close()

	// The original journal file is untouched by the failed compaction.
	_, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("original journal has %d records after failed compact, want 4", len(recs))
	}
}

// syncCountingFile records how many bytes had been written at each Sync,
// so a test can prove a flush covered the full tail.
type syncCountingFile struct {
	f           File
	written     int64
	syncs       int
	bytesAtSync []int64
}

func (c *syncCountingFile) Write(p []byte) (int, error) {
	n, err := c.f.Write(p)
	c.written += int64(n)
	return n, err
}

func (c *syncCountingFile) Sync() error {
	c.syncs++
	c.bytesAtSync = append(c.bytesAtSync, c.written)
	return c.f.Sync()
}

func (c *syncCountingFile) Close() error { return c.f.Close() }

// Regression: under SyncInterval, Close must flush the tail written since
// the last interval sync even though the timer never fired — a clean
// shutdown is loss-free, not bounded-loss.
func TestCloseFlushesIntervalTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.wal")
	var cf *syncCountingFile
	j, _, err := Open(path, Options{
		Sync:     SyncInterval,
		Interval: time.Hour, // the timer can never fire inside this test
		OpenAppend: func(p string) (File, error) {
			f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			cf = &syncCountingFile{f: f}
			return cf, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first append syncs (lastSync is the zero time); the rest land
	// inside the hour-long interval and stay buffered.
	for i := 0; i < 5; i++ {
		if err := j.Append(StepRecord(int64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	if cf.syncs != 1 {
		t.Fatalf("%d syncs before Close, want exactly 1 (the interval timer must not have fired)", cf.syncs)
	}
	if cf.bytesAtSync[0] >= cf.written {
		t.Fatal("test is vacuous: no unsynced tail accumulated before Close")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if cf.syncs != 2 {
		t.Fatalf("%d syncs after Close, want 2 (Close must flush the interval tail)", cf.syncs)
	}
	if got, want := cf.bytesAtSync[1], cf.written; got != want {
		t.Fatalf("Close synced at %d bytes written, want %d (the whole tail)", got, want)
	}
}

// Regression: a failed Close-time flush must be reported and latched, not
// swallowed — otherwise a dying disk turns a clean shutdown into silent
// loss of the last interval's appends.
func TestCloseReportsFailedFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.wal")
	j, _, err := Open(path, Options{
		Sync:     SyncInterval,
		Interval: time.Hour,
		OpenAppend: func(p string) (File, error) {
			f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			// One successful flush (the first append's), then the device
			// dies: Close's final sync is the second.
			return &FaultFile{F: f, N: 1 << 30, SyncBudget: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(StepRecord(int64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Close with a failing final sync: %v, want ENOSPC", err)
	}
	if err := j.Err(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Err() after failed Close flush = %v, want latched ENOSPC", err)
	}
}
