package server

import (
	"errors"
	"fmt"

	"krad/internal/journal"
	"krad/internal/replicate"
	"krad/internal/sim"
)

// ErrFollower means this daemon is a warm standby: it tracks a primary's
// replication stream and refuses writes of its own until promoted (POST
// /v1/promote, or the -promote-after timeout).
var ErrFollower = errors.New("server: standby follower — replicating from the primary, not accepting writes")

// Replicator is the primary-side replication hook a Service drives: every
// committed journal record is handed to Committed under the shard lock
// (so it must be cheap and non-blocking — replicate.Sender queues and
// returns), and WriteAllowed gates admissions behind epoch fencing and
// the follower liveness lease. In practice this is a *replicate.Sender.
type Replicator interface {
	// Committed reports that rec was journaled as shard's seq-th mutation.
	Committed(shard int, seq int64, rec journal.Record)
	// WriteAllowed reports whether this daemon may still act as primary:
	// replicate.ErrFenced after a follower promoted past it,
	// replicate.ErrLeaseExpired while the follower lease is blown.
	WriteAllowed() error
}

// ReplicationStats is the replication slice of Stats: the daemon's role
// plus the sender-side or receiver-side summary, whichever applies.
type ReplicationStats struct {
	// Role is "primary" (streaming to a follower) or "follower" (tracking
	// a primary); a promoted follower reports "primary".
	Role     string                   `json:"role"`
	Primary  *replicate.SenderStats   `json:"primary,omitempty"`
	Follower *replicate.ReceiverStats `json:"follower,omitempty"`
}

// SetReplicator attaches the primary-side replication hook to every
// shard. Call before Start and before serving traffic (cmd/kradd wires
// it right after New), so no committed record can slip past the hook —
// records committed earlier are covered by seeding the sender from
// ReplicationSeqs.
func (s *Service) SetReplicator(r Replicator) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.rep = r
		sh.mu.Unlock()
	}
}

// SetReplicationStats registers the probe Stats and /metrics use to
// report replication state; nil keeps the replication-free encodings.
func (s *Service) SetReplicationStats(f func() *ReplicationStats) {
	s.mu.Lock()
	s.repStats = f
	s.mu.Unlock()
}

// SetPromote registers the callback POST /v1/promote triggers — the
// replication receiver's Promote, which bumps the epoch, fences the old
// primary and calls back into Service.Promote.
func (s *Service) SetPromote(f func() int64) {
	s.mu.Lock()
	s.promoteFn = f
	s.mu.Unlock()
}

// Promote flips a follower Service into a serving primary: the follower
// gate lifts and the shard step loops start (they were held down so the
// engines would mutate only through the replicated stream). Idempotent;
// a no-op on a Service that was never a follower. Callers normally reach
// it through replicate.Receiver's OnPromote, which owns the epoch bump
// and fencing.
func (s *Service) Promote() {
	s.mu.Lock()
	if !s.follower {
		s.mu.Unlock()
		return
	}
	s.follower = false
	started := s.started
	s.mu.Unlock()
	// Repair steals the primary's crash split mid-protocol (its victim
	// record streamed, its thief record did not, or vice versa) before any
	// step loop can race the fix. A repair failure means the replicated
	// journals diverged; latch it so the shards refuse to step.
	if err := s.reconcileSteals(); err != nil {
		for _, sh := range s.shards {
			sh.mu.Lock()
			if sh.stepErr == nil {
				sh.stepErr = err
			}
			sh.mu.Unlock()
		}
	}
	if started {
		for _, sh := range s.shards {
			sh.start()
		}
	}
}

// Following reports whether the Service is still a standby follower.
func (s *Service) Following() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.follower
}

// ReplicationSeqs reports, per shard, the sequence number of the last
// committed mutation record (what the journal covers right now). A
// primary seeds its replicate.Sender with this so the sender knows those
// records are servable from disk without having seen them via Committed.
func (s *Service) ReplicationSeqs() []int64 {
	out := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = sh.repSeq
		sh.mu.Unlock()
	}
	return out
}

// NextSeqs implements replicate.Applier: per shard, the next sequence
// number this follower needs.
func (s *Service) NextSeqs() []int64 {
	out := s.ReplicationSeqs()
	for i := range out {
		out[i]++
	}
	return out
}

// ApplyReplicated implements replicate.Applier: journal the record, then
// replay it through the shard's engine — the same record order, lock
// discipline and replay path a crash-restart uses, so the follower's
// engine tracks the primary bit-identically. The journal append comes
// first: a follower crash between append and apply replays the record on
// restart, while a crash before the append never acked it, so the
// primary re-sends. An apply error means the follower diverged
// (mismatched configuration or corrupt stream); it latches the shard so
// nothing further applies until an operator restarts against a clean
// journal.
func (s *Service) ApplyReplicated(shard int, seq int64, rec journal.Record) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("server: replicated record for shard %d but the service runs %d shard(s)", shard, len(s.shards))
	}
	sh := s.shards[shard]
	sh.mu.Lock()
	if sh.repErr != nil {
		err := sh.repErr
		sh.mu.Unlock()
		return err
	}
	if sh.closed {
		sh.mu.Unlock()
		return ErrClosed
	}
	if seq != sh.repSeq+1 {
		sh.mu.Unlock()
		return fmt.Errorf("server: shard %d: replicated seq %d, want %d — stream out of order", shard, seq, sh.repSeq+1)
	}
	if rec.Type == journal.TypeSnap {
		sh.mu.Unlock()
		return fmt.Errorf("server: shard %d: snapshot arrived as a sequenced record; snapshots reset via their own frame", shard)
	}
	if !sh.steal && (rec.Type == journal.TypeSteal || len(rec.From) != 0) {
		// A steal-tagged record on a steal-off follower would silently move
		// jobs without the redirect/ledger bookkeeping; refuse and latch.
		sh.repErr = fmt.Errorf("server: shard %d: replicated seq %d is steal-tagged but stealing is disabled on this follower; restart with -steal", shard, seq)
		err := sh.repErr
		sh.mu.Unlock()
		return err
	}
	if sh.jn != nil {
		if err := sh.jn.Append(rec); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("%w: %v", ErrDegraded, err)
		}
	}
	obs := &applyObserver{sh: sh}
	if err := journal.Apply(sh.eng, int(sh.applied), rec, obs); err != nil {
		sh.repErr = fmt.Errorf("server: shard %d: replicated seq %d diverged from this engine: %w", shard, seq, err)
		err = sh.repErr
		sh.mu.Unlock()
		return err
	}
	sh.repSeq = seq
	sh.applied++
	sh.syncGaugesLocked()
	ev := obs.ev
	sh.mu.Unlock()
	if ev != nil {
		sh.fan.publish(*ev)
	}
	return nil
}

// ApplyReplicatedSnap implements replicate.Applier: primary compaction
// overtook this follower, so the shard resets wholesale to the snapshot —
// fresh engine restored from the checkpoint, journal compacted to the
// same record, counters and fair ledger rebuilt — exactly the state a
// restart against the primary's compacted journal would produce.
func (s *Service) ApplyReplicatedSnap(shard int, rec journal.Record) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("server: replicated snapshot for shard %d but the service runs %d shard(s)", shard, len(s.shards))
	}
	if rec.Type != journal.TypeSnap || rec.Snap == nil || rec.Seq < 1 {
		return fmt.Errorf("server: shard %d: malformed replicated snapshot record", shard)
	}
	sh := s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.repErr != nil {
		return sh.repErr
	}
	if sh.closed {
		return ErrClosed
	}
	if rec.Seq <= sh.repSeq {
		return fmt.Errorf("server: shard %d: snapshot covers through seq %d but %d is already applied — refusing to rewind", shard, rec.Seq, sh.repSeq)
	}
	eng, err := sh.newEngine()
	if err != nil {
		return fmt.Errorf("server: shard %d: rebuild engine for snapshot: %w", shard, err)
	}
	if err := eng.Restore(*rec.Snap); err != nil {
		return fmt.Errorf("server: shard %d: restore snapshot through seq %d: %w", shard, rec.Seq, err)
	}
	if rec.Fair != nil {
		if sh.fair == nil {
			return fmt.Errorf("server: shard %d: replicated snapshot is fairness-tagged but fairness is disabled on this follower; restart with -fairness", shard)
		}
		if err := (fairReplayObserver{sh}).Fair(*rec.Fair); err != nil {
			return err
		}
	}
	if sh.jn != nil {
		if err := sh.jn.Compact(rec); err != nil {
			return fmt.Errorf("%w: %v", ErrDegraded, err)
		}
	}
	if rec.Steal != nil && !sh.steal {
		return fmt.Errorf("server: shard %d: replicated snapshot is steal-tagged but stealing is disabled on this follower; restart with -steal", shard)
	}
	sh.eng = eng
	snap := eng.Snapshot()
	sh.tab.reset()
	sh.stolenIn = 0
	if rec.Steal != nil {
		(stealReplayObserver{sh}).StealSnap(*rec.Steal)
	}
	sh.submitted = int64(snap.Admitted) - sh.stolenIn
	sh.completed = int64(snap.Completed)
	sh.cancelled = int64(snap.Cancelled)
	sh.resp.Reset()
	sh.respHist = newHistogram(responseBuckets())
	for id := 0; id < snap.Admitted; id++ {
		st, ok := eng.JobRef(id)
		if !ok {
			continue // retired before the primary's checkpoint
		}
		if st.Phase == sim.JobStolen {
			// The redirect from the snapshot's steal state is the job's
			// status truth now; keep the stale local entry out of the index.
			if sh.retireDone {
				_ = eng.Retire(id)
			}
			continue
		}
		sh.tab.put(id, st)
		if st.Phase == sim.JobDone {
			r := float64(st.Completion - st.Release)
			sh.resp.Observe(r)
			sh.respHist.observe(r)
		}
		if sh.retireDone && (st.Phase == sim.JobDone || st.Phase == sim.JobCancelled) {
			_ = eng.Retire(id)
		}
	}
	sh.syncGaugesLocked()
	sh.repSeq = rec.Seq
	sh.applied = 1
	return nil
}

// applyObserver folds one replicated record's side-effects into the
// shard: the lifecycle counters and response accounting stepN maintains
// on a primary, the fair-share ledger the replay observer maintains, and
// the step event (captured here, published by the caller after the lock
// drops). Runs with the shard lock held.
type applyObserver struct {
	sh *shard
	ev *Event
}

func (o *applyObserver) Fair(st journal.FairState) error {
	if o.sh.fair == nil {
		return fmt.Errorf("record is fairness-tagged but fairness is disabled on this follower; restart with -fairness")
	}
	return fairReplayObserver{o.sh}.Fair(st)
}

func (o *applyObserver) Admitted(rec journal.Record, ids []int, now int64) {
	if len(rec.From) != 0 {
		// Thief-side steal admission: counts as stolen-in, not submitted,
		// and installs same-shard redirects (orphan repairs re-admit on the
		// victim itself). The ledger match lets Promote-time reconciliation
		// see the steal completed.
		stealReplayObserver{o.sh}.Admitted(rec, ids, now)
		for _, id := range ids {
			st, _ := o.sh.eng.JobRef(id)
			o.sh.tab.put(id, st)
		}
		return
	}
	o.sh.submitted += int64(len(ids))
	for _, id := range ids {
		st, _ := o.sh.eng.JobRef(id)
		o.sh.tab.put(id, st)
	}
	if o.sh.fair != nil {
		fairReplayObserver{o.sh}.Admitted(rec, ids, now)
	}
}

// Stolen and StealSnap forward the victim-side steal bookkeeping, making
// applyObserver a journal.StealObserver: a replicated steal record
// installs the same redirects and ledger entries the primary's live steal
// did. ApplyReplicated rejects steal-tagged records on steal-off
// followers before the observer ever sees one.
func (o *applyObserver) Stolen(rec journal.Record, specs []sim.JobSpec) {
	stealReplayObserver{o.sh}.Stolen(rec, specs)
	if o.sh.retireDone {
		for _, id := range rec.IDs {
			_ = o.sh.eng.Retire(id)
		}
	}
}

func (o *applyObserver) StealSnap(st journal.StealState) {
	stealReplayObserver{o.sh}.StealSnap(st)
}

func (o *applyObserver) Cancelled(id int) {
	o.sh.cancelled++
	o.sh.fairForgetLocked(id)
	o.sh.tab.setCancelled(id, o.sh.eng.Now())
	if o.sh.retireDone {
		_ = o.sh.eng.Retire(id)
	}
}

func (o *applyObserver) Stepped(info sim.StepInfo) {
	sh := o.sh
	sh.steps += info.Steps
	for _, id := range info.Released {
		sh.tab.setActive(id)
	}
	for _, id := range info.Completed {
		done, _ := sh.eng.Completion(id)
		rel, _ := sh.tab.release(id)
		sh.tab.setDone(id, done)
		r := float64(done - rel)
		sh.resp.Observe(r)
		sh.respHist.observe(r)
		sh.completed++
		sh.fairForgetLocked(id)
		if sh.retireDone {
			_ = sh.eng.Retire(id)
		}
	}
	ev := Event{
		Shard:     sh.idx,
		Step:      info.Step,
		Executed:  append([]int(nil), info.Executed...),
		Released:  sh.namespace(info.Released),
		Completed: sh.namespace(info.Completed),
		Active:    info.Active,
		Pending:   sh.eng.Snapshot().Pending,
	}
	if info.Steps > 1 {
		ev.Steps = info.Steps
	}
	o.ev = &ev
}

// JournalCatchUp builds the replication catch-up source over a service's
// journal directory: when a follower's cursor has aged out of the
// sender's in-memory queue, the sender reads the shard's WAL file
// (torn-tail tolerant, safe on the live file — appends hit the page
// cache before any fsync) and reconstructs sequence numbers from the
// head snapshot's stamped cursor.
func JournalCatchUp(dir string) replicate.CatchUpFunc {
	return func(shard int, from int64) (*replicate.SeqRecord, []replicate.SeqRecord, error) {
		path := shardJournalPath(dir, shard)
		recs, err := journal.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		var snap *replicate.SeqRecord
		i := 0
		if len(recs) > 0 && recs[0].Type == journal.TypeSnap {
			if recs[0].Seq == 0 {
				// A snapshot compacted before replication existed carries no
				// cursor, so the records it subsumed cannot be numbered and
				// no follower can be seeded from it.
				return nil, nil, fmt.Errorf("server: %s is headed by a snapshot without a replication cursor (compacted by a pre-replication build); the next compaction re-stamps it, or move the journal away to start fresh", path)
			}
			snap = &replicate.SeqRecord{Seq: recs[0].Seq, Rec: recs[0]}
			i = 1
		}
		seq := journal.SeqBase(recs)
		var tail []replicate.SeqRecord
		for ; i < len(recs); i++ {
			seq++
			if seq >= from {
				tail = append(tail, replicate.SeqRecord{Seq: seq, Rec: recs[i]})
			}
		}
		return snap, tail, nil
	}
}
