package dag

import "fmt"

// Adversarial is the Theorem 1 / Figure 3 lower-bound construction: a job
// set that forces any deterministic online non-clairvoyant K-resource
// scheduler to a makespan competitive ratio approaching K + 1 − 1/Pmax.
//
// The set contains n = m·P1·PK jobs. All but one are singleton jobs holding
// a single category-1 task. The remaining "big" job Ji is layered:
//
//	level 1:              one 1-task                        (critical)
//	level α ∈ [2, K−1]:   m·Pα·PK α-tasks, all depending on the critical
//	                      task of level α−1; one designated critical
//	level K:              m·PK·(PK−1)+1 K-tasks depending on the critical
//	                      task of level K−1; one of them heads a chain of
//	                      K-tasks of length m·PK−1
//
// so T∞(Ji) = K + m·PK − 1. The adversary's power is (a) choosing which of
// the indistinguishable level-1 tasks belongs to the big job — emulated by
// placing the big job last (or first, for the optimal run) in submission
// order — and (b) always executing the critical task last among the ready
// tasks of its level — emulated by the PickCPLast policy. The optimal
// clairvoyant schedule instead runs critical tasks first (PickCPFirst).
type Adversarial struct {
	// K is the number of resource categories; K ≥ 2. (For K = 1 the
	// construction degenerates; see Homogeneous.)
	K int
	// P[α−1] is the processor count of category α. The construction
	// requires P[K−1] = Pmax, as in the paper's proof.
	P []int
	// M is the scale parameter m; the ratio approaches its limit as M → ∞.
	M int
	// BigJob is the layered job Ji described above.
	BigJob *Graph
	// NumSingletons is n − 1, the number of single-1-task jobs.
	NumSingletons int
}

// NewAdversarial constructs the Figure 3 instance. It validates that
// K ≥ 2, m ≥ 1, len(P) == K, every Pα ≥ 1, and that category K has the
// maximum processor count (the proof's convention PK = Pmax).
func NewAdversarial(k, m int, p []int) (*Adversarial, error) {
	if k < 2 {
		return nil, fmt.Errorf("dag: adversarial construction needs K ≥ 2, got %d (use Homogeneous for K = 1)", k)
	}
	if m < 1 {
		return nil, fmt.Errorf("dag: adversarial construction needs m ≥ 1, got %d", m)
	}
	if len(p) != k {
		return nil, fmt.Errorf("dag: adversarial construction got %d processor counts for K = %d", len(p), k)
	}
	pk := p[k-1]
	for a, pa := range p {
		if pa < 1 {
			return nil, fmt.Errorf("dag: category %d has %d processors, need ≥ 1", a+1, pa)
		}
		if pa > pk {
			return nil, fmt.Errorf("dag: construction requires P%d = Pmax, but P%d = %d > P%d = %d", k, a+1, pa, k, pk)
		}
	}

	g := New(k).Named(fmt.Sprintf("fig3-K%d-m%d", k, m))
	// Level 1: the critical 1-task.
	crit := g.AddTask(1)
	// Levels 2..K−1.
	for a := 2; a <= k-1; a++ {
		tasks := g.AddTasks(Category(a), m*p[a-1]*pk)
		for _, t := range tasks {
			g.MustEdge(crit, t)
		}
		crit = tasks[0] // designate the first as this level's critical task
	}
	// Level K: the mass plus the chain head.
	mass := g.AddTasks(Category(k), m*pk*(pk-1)+1)
	for _, t := range mass {
		g.MustEdge(crit, t)
	}
	// One mass task heads a chain of length m·PK − 1.
	head := mass[0]
	for i := 0; i < m*pk-1; i++ {
		next := g.AddTask(Category(k))
		g.MustEdge(head, next)
		head = next
	}

	return &Adversarial{
		K:             k,
		P:             append([]int(nil), p...),
		M:             m,
		BigJob:        g,
		NumSingletons: m*p[0]*pk - 1,
	}, nil
}

// NumJobs returns n = m·P1·PK.
func (a *Adversarial) NumJobs() int { return a.NumSingletons + 1 }

// OptimalMakespan returns the closed-form T*(J) = K + m·PK − 1 achieved by
// the clairvoyant scheduler that always runs the critical path first.
func (a *Adversarial) OptimalMakespan() int {
	return a.K + a.M*a.P[a.K-1] - 1
}

// WorstCaseMakespan returns the paper's adversarial bound
// T(J) ≥ m·K·PK + m·PK − m forced on any deterministic non-clairvoyant
// algorithm.
func (a *Adversarial) WorstCaseMakespan() int {
	pk := a.P[a.K-1]
	return a.M*a.K*pk + a.M*pk - a.M
}

// LimitRatio returns K + 1 − 1/Pmax, the competitive-ratio limit the
// construction approaches as m → ∞.
func (a *Adversarial) LimitRatio() float64 {
	return float64(a.K) + 1 - 1/float64(a.P[a.K-1])
}

// FiniteRatio returns WorstCaseMakespan / OptimalMakespan for the concrete
// m, which converges to LimitRatio from below.
func (a *Adversarial) FiniteRatio() float64 {
	return float64(a.WorstCaseMakespan()) / float64(a.OptimalMakespan())
}

// JobSet materializes the full job set in a given submission order. If
// bigJobLast is true the big job is appended after the singletons (the
// adversary's order: a deterministic scheduler working through its queue
// reaches the big job's level-1 task last); otherwise it comes first (the
// order the optimal schedule wants). All jobs are released at time 0.
func (a *Adversarial) JobSet(bigJobLast bool) []*Graph {
	jobs := make([]*Graph, 0, a.NumJobs())
	if !bigJobLast {
		jobs = append(jobs, a.BigJob)
	}
	for i := 0; i < a.NumSingletons; i++ {
		jobs = append(jobs, Singleton(a.K, 1))
	}
	if bigJobLast {
		jobs = append(jobs, a.BigJob)
	}
	return jobs
}

// Homogeneous is the K = 1 analogue: n − 1 singleton jobs plus one chain of
// length m·P. Any non-clairvoyant scheduler that the adversary steers into
// running the chain job last needs ≈ 2·m·P steps while the optimum is
// m·P + ... — the classic 2 − 1/P makespan lower bound of Shmoys et al.
type Homogeneous struct {
	P, M     int
	ChainJob *Graph
	// NumSingletons is m·P·P − ... kept simple: (m·P − 1)·P singletons so
	// total 1-work is m·P² − P + 1 ≈ the chain drains alongside.
	NumSingletons int
}

// NewHomogeneous builds the K = 1 lower-bound instance on p processors with
// scale m: one chain of length m·p and (m·p−1)·p singletons.
func NewHomogeneous(p, m int) (*Homogeneous, error) {
	if p < 1 || m < 1 {
		return nil, fmt.Errorf("dag: homogeneous construction needs p ≥ 1 and m ≥ 1, got p=%d m=%d", p, m)
	}
	return &Homogeneous{
		P:             p,
		M:             m,
		ChainJob:      UniformChain(1, m*p, 1).Named(fmt.Sprintf("hom-chain-%d", m*p)),
		NumSingletons: (m*p - 1) * p,
	}, nil
}

// OptimalMakespan returns m·p + m − 1: run the chain continuously while the
// singleton mass fills the remaining p−1 processors.
func (h *Homogeneous) OptimalMakespan() int {
	// Total work = m·p (chain) + (m·p−1)·p singletons = m·p² + m·p − p.
	// With the chain on one processor for m·p steps, the singletons need
	// ⌈(m·p−1)·p / p⌉ = m·p − 1 slots spread over the other p−1 processors
	// during the chain, which fits when m·p ≥ ... For the ratio experiments
	// we report the work-based lower bound, which the CP-first schedule
	// meets within rounding.
	total := h.M*h.P*h.P + h.M*h.P - h.P
	lb := (total + h.P - 1) / h.P
	if c := h.M * h.P; c > lb {
		return c
	}
	return lb
}

// LimitRatio returns 2 − 1/P.
func (h *Homogeneous) LimitRatio() float64 { return 2 - 1/float64(h.P) }

// JobSet materializes the instance, chain job last when chainLast is true.
func (h *Homogeneous) JobSet(chainLast bool) []*Graph {
	jobs := make([]*Graph, 0, h.NumSingletons+1)
	if !chainLast {
		jobs = append(jobs, h.ChainJob)
	}
	for i := 0; i < h.NumSingletons; i++ {
		jobs = append(jobs, Singleton(1, 1))
	}
	if chainLast {
		jobs = append(jobs, h.ChainJob)
	}
	return jobs
}
