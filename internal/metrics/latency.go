package metrics

import (
	"fmt"
	"math"
	"sync"
)

// Latency-histogram geometry: geometric buckets from latMin seconds upward,
// latPerOctave buckets per doubling. With 4 buckets/octave every bucket is
// ~19% wide, which bounds the relative error of any reported quantile —
// plenty for load-test percentiles while keeping the histogram a few hundred
// words. Samples below latMin land in bucket 0; samples beyond the top
// bucket land in the last one.
const (
	latMin       = 1e-6 // 1µs
	latPerOctave = 4
	latOctaves   = 27 // 1µs … ~134s
	latBuckets   = latOctaves*latPerOctave + 1
)

// LatencyHist is a concurrency-safe log-bucketed histogram for wall-clock
// latencies in seconds. It is the shared measurement core for load clients
// (cmd/kradreplay, examples/liveclient): cheap constant-size recording with
// quantile queries good to one bucket (~19% relative resolution).
//
// The zero value is ready to use.
type LatencyHist struct {
	mu     sync.Mutex
	counts [latBuckets]uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// latBucket maps a latency in seconds to its bucket index.
func latBucket(sec float64) int {
	if sec <= latMin {
		return 0
	}
	i := int(math.Log2(sec/latMin) * latPerOctave)
	// Guard the boundary: floating-point log can land one bucket low.
	for i+1 < latBuckets && latBound(i+1) <= sec {
		i++
	}
	if i >= latBuckets {
		i = latBuckets - 1
	}
	return i
}

// latBound returns the lower bound (seconds) of bucket i.
func latBound(i int) float64 {
	return latMin * math.Exp2(float64(i)/latPerOctave)
}

// Observe records one latency sample, in seconds. Negative samples count as
// zero.
func (h *LatencyHist) Observe(sec float64) {
	if sec < 0 || math.IsNaN(sec) {
		sec = 0
	}
	i := latBucket(sec)
	h.mu.Lock()
	h.counts[i]++
	if h.n == 0 || sec < h.min {
		h.min = sec
	}
	if sec > h.max {
		h.max = sec
	}
	h.n++
	h.sum += sec
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the arithmetic mean of recorded samples (exact, not
// bucketed), or 0 when empty.
func (h *LatencyHist) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min and Max return the exact extremes of recorded samples, or 0 when
// empty.
func (h *LatencyHist) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

func (h *LatencyHist) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an estimate of the p-quantile (0 ≤ p ≤ 1) in seconds,
// accurate to one bucket. It returns 0 when the histogram is empty and
// clamps out-of-range p. The exact min/max are used for the extreme
// quantiles so Quantile(0) == Min and Quantile(1) == Max.
func (h *LatencyHist) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	// Rank of the sample we want, 1-based.
	rank := uint64(math.Ceil(p * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			// Geometric midpoint of the bucket, clamped to the observed
			// extremes so sparse histograms don't report impossible values.
			lo, hi := latBound(i), latBound(i+1)
			v := math.Sqrt(lo * hi)
			if i == 0 {
				v = lo
			}
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds all samples from o into h. Exact sums and extremes merge
// exactly; bucket counts add element-wise.
func (h *LatencyHist) Merge(o *LatencyHist) {
	o.mu.Lock()
	counts := o.counts
	n, sum, mn, mx := o.n, o.sum, o.min, o.max
	o.mu.Unlock()
	if n == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	if h.n == 0 || mn < h.min {
		h.min = mn
	}
	if mx > h.max {
		h.max = mx
	}
	h.n += n
	h.sum += sum
	h.mu.Unlock()
}

// LatencyReport is the JSON-friendly summary load clients emit.
type LatencyReport struct {
	N    uint64  `json:"n"`
	Min  float64 `json:"min_s"`
	Mean float64 `json:"mean_s"`
	P50  float64 `json:"p50_s"`
	P90  float64 `json:"p90_s"`
	P99  float64 `json:"p99_s"`
	P999 float64 `json:"p999_s"`
	Max  float64 `json:"max_s"`
}

// Report summarizes the histogram as the standard percentile set.
func (h *LatencyHist) Report() LatencyReport {
	return LatencyReport{
		N:    h.Count(),
		Min:  h.Min(),
		Mean: h.Mean(),
		P50:  h.Quantile(0.50),
		P90:  h.Quantile(0.90),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
		Max:  h.Max(),
	}
}

// String renders the report compactly for log lines.
func (r LatencyReport) String() string {
	return fmt.Sprintf("n=%d p50=%.6fs p99=%.6fs p999=%.6fs max=%.6fs",
		r.N, r.P50, r.P99, r.P999, r.Max)
}
