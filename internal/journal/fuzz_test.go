package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"krad/internal/dag"
	"krad/internal/sim"
)

// FuzzJournalDecode feeds arbitrary bytes — seeded with real journals,
// truncations, and bit-flips — through the decoder. The invariants: never
// panic, and every record returned must be CRC-valid and a strict prefix
// of the frames actually present (no phantom records conjured from noise).
func FuzzJournalDecode(f *testing.F) {
	// Seed with a real journal.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.wal")
	j, _, err := Open(path, Options{})
	if err != nil {
		f.Fatal(err)
	}
	admit, err := AdmitRecord(0, []sim.JobSpec{{Graph: dag.UniformChain(1, 3, 1)}})
	if err != nil {
		f.Fatal(err)
	}
	for _, rec := range []Record{admit, StepRecord(1), CancelRecord(0), StepRecord(2)} {
		if err := j.Append(rec); err != nil {
			f.Fatal(err)
		}
	}
	j.Close()
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add(seed[:len(magic)])
	f.Add([]byte{})
	f.Add([]byte("KRADWAL\x02garbage"))
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _, err := decodeAll(data)
		if err != nil {
			return
		}
		// No-error decodes must be explainable: every returned record
		// re-verifies against the frames physically present in data.
		if len(data) < len(magic) && len(recs) != 0 {
			t.Fatalf("decoded %d records from %d bytes", len(recs), len(data))
		}
		off := len(magic)
		for i := range recs {
			if off+headerLen > len(data) {
				t.Fatalf("record %d claimed beyond EOF", i)
			}
			n := binary.LittleEndian.Uint32(data[off:])
			sum := binary.LittleEndian.Uint32(data[off+4:])
			payload := data[off+headerLen : off+headerLen+int(n)]
			if crc32.ChecksumIEEE(payload) != sum {
				t.Fatalf("record %d has bad CRC yet was returned", i)
			}
			if _, err := decodeRecord(payload); err != nil {
				t.Fatalf("record %d returned but does not re-decode: %v", i, err)
			}
			off += headerLen + int(n)
		}
	})
}

// FuzzJournalOpen exercises the full Open path (torn-tail repair included)
// on arbitrary file contents: it must never panic, and when it succeeds
// the repaired journal must reopen cleanly with the same records.
func FuzzJournalOpen(f *testing.F) {
	var b bytes.Buffer
	b.Write(magic)
	payload, err := encodeRecord(StepRecord(7))
	if err != nil {
		f.Fatal(err)
	}
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	b.Write(hdr[:])
	b.Write(payload)
	f.Add(b.Bytes())
	f.Add(b.Bytes()[:b.Len()-1])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, err := Open(path, Options{})
		if err != nil {
			return
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, recs2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("repaired journal does not reopen: %v", err)
		}
		defer j2.Close()
		if len(recs2) != len(recs) {
			t.Fatalf("reopen after repair: %d records, first open had %d", len(recs2), len(recs))
		}
	})
}
