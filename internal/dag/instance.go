package dag

import (
	"fmt"
	"math/rand"
	"sort"
)

// PickPolicy selects which ready tasks a job executes when its allotment is
// smaller than its desire. The scheduling algorithms under study are
// oblivious to this choice; the paper's adversary (Theorem 1) and optimal
// offline scheduler differ exactly in it.
type PickPolicy int

const (
	// PickFIFO executes ready tasks in the order they became ready.
	PickFIFO PickPolicy = iota
	// PickLIFO executes the most recently readied tasks first.
	PickLIFO
	// PickRandom executes a uniformly random subset of the ready tasks.
	// Deterministic given the Instance's seed.
	PickRandom
	// PickCPFirst executes the tasks with the longest remaining chain
	// first — the oracle choice the optimal clairvoyant scheduler makes in
	// the Theorem 1 analysis.
	PickCPFirst
	// PickCPLast defers the tasks with the longest remaining chain to the
	// very end — the adversary's choice in the Theorem 1 lower bound.
	PickCPLast
)

// String returns the policy name.
func (p PickPolicy) String() string {
	switch p {
	case PickFIFO:
		return "fifo"
	case PickLIFO:
		return "lifo"
	case PickRandom:
		return "random"
	case PickCPFirst:
		return "cp-first"
	case PickCPLast:
		return "cp-last"
	default:
		return fmt.Sprintf("PickPolicy(%d)", int(p))
	}
}

// Instance is the runtime unfolding of a K-DAG: it tracks which tasks are
// ready, executes them under a pick policy, and reveals only instantaneous
// per-category parallelism. One Instance corresponds to one submitted job.
//
// The two-phase step protocol matches unit-time semantics: any number of
// Execute calls (one per category) happen "during" a time step, and tasks
// completed in that step only make their successors ready after Advance is
// called at the step boundary.
type Instance struct {
	g        *Graph
	pick     PickPolicy
	rng      *rand.Rand
	indeg    []int32
	heights  []int32 // remaining-chain lengths for CP policies; lazy
	ready    [][]TaskID
	pending  []TaskID // completed this step; successors promoted on Advance
	executed int
}

// NewInstance wraps g for execution under the given pick policy. seed is
// only consulted by PickRandom. The graph must be valid (acyclic); invalid
// graphs cause a panic because Instances are built from validated or
// generator-produced graphs.
func NewInstance(g *Graph, pick PickPolicy, seed int64) *Instance {
	in := &Instance{
		g:     g,
		pick:  pick,
		ready: make([][]TaskID, g.k),
	}
	if pick == PickRandom {
		in.rng = rand.New(rand.NewSource(seed))
	}
	if pick == PickCPFirst || pick == PickCPLast {
		h, err := g.heights()
		if err != nil {
			panic(err)
		}
		in.heights = h
	}
	in.indeg = make([]int32, g.NumTasks())
	for v := 0; v < g.NumTasks(); v++ {
		in.indeg[v] = int32(len(g.pred[v]))
		if in.indeg[v] == 0 {
			c := g.cats[v]
			in.ready[c-1] = append(in.ready[c-1], TaskID(v))
		}
	}
	return in
}

// Graph returns the underlying K-DAG.
func (in *Instance) Graph() *Graph { return in.g }

// Policy returns the instance's pick policy.
func (in *Instance) Policy() PickPolicy { return in.pick }

// Desire returns d(Ji, α, t): the number of currently ready α-tasks. This
// is the only job-state information a non-clairvoyant scheduler may use.
func (in *Instance) Desire(c Category) int {
	if c < 1 || int(c) > in.g.k {
		return 0
	}
	return len(in.ready[c-1])
}

// TotalDesire returns Σα d(Ji, α, t).
func (in *Instance) TotalDesire() int {
	n := 0
	for _, q := range in.ready {
		n += len(q)
	}
	return n
}

// Done reports whether every task has executed.
func (in *Instance) Done() bool { return in.executed == in.g.NumTasks() }

// Executed returns the number of tasks completed so far.
func (in *Instance) Executed() int { return in.executed }

// Execute runs up to n ready tasks of category c during the current step,
// selected by the pick policy, and returns the IDs of the tasks executed.
// Successors do not become ready until Advance. Execute with n ≤ 0 is a
// no-op returning nil. Callers that only need the count should use
// ExecuteCount, which skips materializing the ID slice.
func (in *Instance) Execute(c Category, n int) []TaskID {
	n = in.take(c, n)
	if n == 0 {
		return nil
	}
	run := append([]TaskID(nil), in.ready[c-1][:n]...)
	in.finish(c, n)
	return run
}

// ExecuteCount is Execute without the executed-ID result: the engine's
// aggregate-trace hot path only consumes the count, and skipping the slice
// copy keeps steady-state stepping allocation-free.
func (in *Instance) ExecuteCount(c Category, n int) int {
	n = in.take(c, n)
	if n > 0 {
		in.finish(c, n)
	}
	return n
}

// take validates an Execute request and orders the ready queue so the
// tasks to run occupy its prefix, returning the clamped count (0 = no-op).
func (in *Instance) take(c Category, n int) int {
	if n <= 0 || c < 1 || int(c) > in.g.k {
		return 0
	}
	q := in.ready[c-1]
	if n > len(q) {
		n = len(q)
	}
	if n > 0 {
		in.order(q)
	}
	return n
}

// finish commits the first n ready c-tasks: they move to the pending set
// and the queue compacts toward the front of its backing array, so the
// array is reused forever instead of creeping forward allocation by
// allocation as tasks are sliced off.
func (in *Instance) finish(c Category, n int) {
	q := in.ready[c-1]
	in.pending = append(in.pending, q[:n]...)
	in.executed += n
	m := copy(q, q[n:])
	in.ready[c-1] = q[:m]
}

// order arranges the ready queue so that the tasks to execute occupy the
// prefix, according to the pick policy.
func (in *Instance) order(q []TaskID) {
	switch in.pick {
	case PickFIFO:
		// Queue is already in became-ready order.
	case PickLIFO:
		for i, j := 0, len(q)-1; i < j; i, j = i+1, j-1 {
			q[i], q[j] = q[j], q[i]
		}
	case PickRandom:
		in.rng.Shuffle(len(q), func(i, j int) { q[i], q[j] = q[j], q[i] })
	case PickCPFirst:
		sort.SliceStable(q, func(i, j int) bool { return in.heights[q[i]] > in.heights[q[j]] })
	case PickCPLast:
		sort.SliceStable(q, func(i, j int) bool { return in.heights[q[i]] < in.heights[q[j]] })
	default:
		panic(fmt.Sprintf("dag: unknown pick policy %d", in.pick))
	}
}

// Advance ends the current time step: every task completed since the last
// Advance releases its successors, and successors whose prerequisites are
// all complete become ready (in deterministic order).
func (in *Instance) Advance() {
	if len(in.pending) == 0 {
		return
	}
	for _, u := range in.pending {
		for _, v := range in.g.succ[u] {
			in.indeg[v]--
			if in.indeg[v] == 0 {
				c := in.g.cats[v]
				in.ready[c-1] = append(in.ready[c-1], v)
			}
			if in.indeg[v] < 0 {
				panic(fmt.Sprintf("dag: task %d in graph %q released more times than it has predecessors", v, in.g.name))
			}
		}
	}
	in.pending = in.pending[:0]
}

// Remaining returns the number of tasks not yet executed.
func (in *Instance) Remaining() int { return in.g.NumTasks() - in.executed }

// RemainingSpan returns T∞ of the unexecuted portion of the job: the
// longest chain among unexecuted tasks. Every maximal remaining chain
// starts at a ready task, so this is the maximum static height over the
// ready queues — O(ready tasks) with heights computed lazily once. Valid
// at step boundaries (after Advance).
func (in *Instance) RemainingSpan() int {
	if in.Done() {
		return 0
	}
	if in.heights == nil {
		h, err := in.g.heights()
		if err != nil {
			panic(err)
		}
		in.heights = h
	}
	best := int32(0)
	for _, q := range in.ready {
		for _, id := range q {
			if in.heights[id] > best {
				best = in.heights[id]
			}
		}
	}
	return int(best)
}

// RemainingWork returns, per category (indexed α−1), the number of
// unexecuted tasks: the ready tasks plus the tasks still blocked on
// predecessors. O(tasks); intended for analysis, not the hot path.
func (in *Instance) RemainingWork() []int {
	rem := make([]int, in.g.k)
	for c := 0; c < in.g.k; c++ {
		rem[c] = len(in.ready[c])
	}
	for v := 0; v < in.g.NumTasks(); v++ {
		if in.indeg[v] > 0 {
			rem[in.g.cats[v]-1]++
		}
	}
	return rem
}
