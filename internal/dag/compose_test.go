package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSeriesSpanAdds(t *testing.T) {
	a := UniformChain(2, 3, 1)
	b := ForkJoin(2, 4, 2, 2, 2)
	c := UniformChain(2, 2, 1)
	g, err := Series(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Span() != a.Span()+b.Span()+c.Span() {
		t.Errorf("series span %d, want %d", g.Span(), a.Span()+b.Span()+c.Span())
	}
	if g.NumTasks() != a.NumTasks()+b.NumTasks()+c.NumTasks() {
		t.Errorf("series tasks %d", g.NumTasks())
	}
	wv := g.WorkVector()
	for i := range wv {
		want := a.WorkVector()[i] + b.WorkVector()[i] + c.WorkVector()[i]
		if wv[i] != want {
			t.Errorf("category %d work %d, want %d", i+1, wv[i], want)
		}
	}
}

func TestParallelSpanMaxes(t *testing.T) {
	a := UniformChain(1, 7, 1)
	b := UniformChain(1, 3, 1)
	g, err := Parallel(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Span() != 7 {
		t.Errorf("parallel span %d, want 7", g.Span())
	}
	if g.NumTasks() != 10 {
		t.Errorf("parallel tasks %d, want 10", g.NumTasks())
	}
	if g.NumEdges() != a.NumEdges()+b.NumEdges() {
		t.Errorf("parallel edges %d", g.NumEdges())
	}
}

func TestComposeValidation(t *testing.T) {
	if _, err := Series(); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := Parallel(UniformChain(1, 2, 1), nil); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Series(UniformChain(1, 2, 1), UniformChain(2, 2, 1)); err == nil {
		t.Error("mismatched K accepted")
	}
}

func TestComposeDoesNotMutateInputs(t *testing.T) {
	a := UniformChain(1, 4, 1)
	edges, tasks := a.NumEdges(), a.NumTasks()
	MustSeries(a, a) // composing a graph with itself must be safe
	if a.NumEdges() != edges || a.NumTasks() != tasks {
		t.Error("input mutated")
	}
}

func TestQuickComposedGraphsValid(t *testing.T) {
	f := func(seed int64, serial bool) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		parts := make([]*Graph, 1+rng.Intn(4))
		for i := range parts {
			parts[i] = Random(k, RandomOpts{Tasks: 1 + rng.Intn(20), EdgeProb: 0.2, Window: 5}, rng)
		}
		var g *Graph
		var err error
		if serial {
			g, err = Series(parts...)
		} else {
			g, err = Parallel(parts...)
		}
		if err != nil || g.Validate() != nil {
			return false
		}
		total, spanSum, spanMax := 0, 0, 0
		for _, p := range parts {
			total += p.NumTasks()
			spanSum += p.Span()
			if p.Span() > spanMax {
				spanMax = p.Span()
			}
		}
		if g.NumTasks() != total {
			return false
		}
		if serial {
			return g.Span() == spanSum
		}
		return g.Span() == spanMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
