package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph draws a random K-DAG from packed generator parameters; used
// by the property tests below.
func randomGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	k := 1 + rng.Intn(4)
	return Random(k, RandomOpts{
		Tasks:    1 + rng.Intn(100),
		EdgeProb: 0.02 + rng.Float64()*0.3,
		Window:   1 + rng.Intn(20),
	}, rng)
}

func TestQuickRandomGraphsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		return randomGraph(seed).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickWorkVectorSumsToTasks(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)
		sum := 0
		for _, w := range g.WorkVector() {
			sum += w
		}
		return sum == g.NumTasks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSpanBounds(t *testing.T) {
	// 1 ≤ span ≤ tasks, and span = tasks iff the graph is a chain cover of
	// the longest path (at least: chain graphs hit the upper bound).
	f := func(seed int64) bool {
		g := randomGraph(seed)
		s := g.Span()
		return s >= 1 && s <= g.NumTasks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickInstanceDrainExecutesEachTaskOnce(t *testing.T) {
	f := func(seed int64, policyRaw uint8) bool {
		g := randomGraph(seed)
		policy := PickPolicy(int(policyRaw) % 5)
		in := NewInstance(g, policy, seed)
		seen := make(map[TaskID]bool)
		steps := 0
		for !in.Done() {
			steps++
			if steps > g.NumTasks()+1 {
				return false
			}
			for c := 1; c <= g.K(); c++ {
				// Allot at most 3 to stress partial execution.
				for _, id := range in.Execute(Category(c), 3) {
					if seen[id] {
						return false // executed twice
					}
					if g.Category(id) != Category(c) {
						return false // wrong category
					}
					seen[id] = true
				}
			}
			in.Advance()
		}
		return len(seen) == g.NumTasks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickInstancePrecedenceRespected(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)
		in := NewInstance(g, PickLIFO, seed)
		execStep := make([]int, g.NumTasks())
		steps := 0
		for !in.Done() {
			steps++
			if steps > g.NumTasks()+1 {
				return false
			}
			for c := 1; c <= g.K(); c++ {
				for _, id := range in.Execute(Category(c), 2) {
					execStep[id] = steps
				}
			}
			in.Advance()
		}
		for u := 0; u < g.NumTasks(); u++ {
			for _, v := range g.Successors(TaskID(u)) {
				if execStep[u] >= execStep[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickAdversarialInvariants(t *testing.T) {
	f := func(kRaw, mRaw, pRaw uint8) bool {
		k := 2 + int(kRaw)%4 // 2..5
		m := 1 + int(mRaw)%4 // 1..4
		p := 2 + int(pRaw)%3 // 2..4
		caps := make([]int, k)
		for i := range caps {
			caps[i] = p
		}
		adv, err := NewAdversarial(k, m, caps)
		if err != nil {
			return false
		}
		if adv.BigJob.Validate() != nil {
			return false
		}
		if adv.BigJob.Span() != k+m*p-1 {
			return false
		}
		// Finite ratio below limit, limit = K+1-1/Pmax.
		return adv.FiniteRatio() < adv.LimitRatio()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
