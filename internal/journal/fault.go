package journal

import (
	"sync"
	"syscall"
)

// FaultMode selects how a FaultFile fails once its budget is spent.
type FaultMode int

const (
	// FaultErr fails the whole write with the configured error.
	FaultErr FaultMode = iota
	// FaultShortWrite writes the bytes that fit the budget and reports a
	// short count with the configured error — the torn-write shape.
	FaultShortWrite
)

// FaultFile wraps a File and injects a write failure once N total bytes
// have been written through it — the test double for a filling disk. The
// first write that would cross the budget fails (entirely or short, per
// Mode) with Err; every later write fails immediately. Sync succeeds
// until the first failed write and fails after it, like a real
// filesystem reporting delayed allocation errors.
type FaultFile struct {
	// F is the underlying file (often a real *os.File in integration
	// tests, or nil with Discard below for pure unit tests).
	F File
	// N is the byte budget before the fault fires.
	N int64
	// Err is the injected error; nil means syscall.ENOSPC.
	Err error
	// Mode picks the failure shape.
	Mode FaultMode
	// SyncBudget, when positive, bounds successful Sync calls: the
	// (SyncBudget+1)-th Sync fails with Err and trips the fault — the test
	// double for a device that buffers writes fine but fails the final
	// flush (a dying disk at shutdown). Zero leaves Sync unlimited.
	SyncBudget int

	mu      sync.Mutex
	written int64
	synced  int
	tripped bool
}

func (f *FaultFile) err() error {
	if f.Err != nil {
		return f.Err
	}
	return syscall.ENOSPC
}

// Write implements File with the injected failure.
func (f *FaultFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tripped {
		return 0, f.err()
	}
	if f.written+int64(len(p)) <= f.N {
		f.written += int64(len(p))
		return f.F.Write(p)
	}
	f.tripped = true
	if f.Mode == FaultShortWrite {
		fit := f.N - f.written
		if fit < 0 {
			fit = 0
		}
		n, _ := f.F.Write(p[:fit])
		f.written += int64(n)
		return n, f.err()
	}
	return 0, f.err()
}

// Sync forwards to the underlying file until the fault fires, either from
// a tripped write or from an exhausted SyncBudget.
func (f *FaultFile) Sync() error {
	f.mu.Lock()
	if f.tripped {
		f.mu.Unlock()
		return f.err()
	}
	if f.SyncBudget > 0 && f.synced >= f.SyncBudget {
		f.tripped = true
		f.mu.Unlock()
		return f.err()
	}
	f.synced++
	f.mu.Unlock()
	return f.F.Sync()
}

// Close closes the underlying file.
func (f *FaultFile) Close() error { return f.F.Close() }

var _ File = (*FaultFile)(nil)
