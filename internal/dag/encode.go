package dag

import (
	"encoding/json"
	"fmt"
)

// graphJSON is the on-disk representation of a Graph.
type graphJSON struct {
	Name  string     `json:"name,omitempty"`
	K     int        `json:"k"`
	Cats  []Category `json:"categories"`
	Edges [][2]int32 `json:"edges"`
}

// MarshalJSON encodes the graph as {name, k, categories, edges} with edges
// listed in (source ID, then insertion) order so encoding is deterministic.
func (g *Graph) MarshalJSON() ([]byte, error) {
	ej := graphJSON{Name: g.name, K: g.k, Cats: g.cats}
	for u := range g.succ {
		for _, v := range g.succ[u] {
			ej.Edges = append(ej.Edges, [2]int32{int32(u), int32(v)})
		}
	}
	return json.Marshal(ej)
}

// UnmarshalJSON decodes a graph and validates it, so a malformed or cyclic
// graph is rejected at decode time rather than detonating mid-simulation.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var ej graphJSON
	if err := json.Unmarshal(data, &ej); err != nil {
		return fmt.Errorf("dag: decode: %w", err)
	}
	if ej.K < 1 {
		return fmt.Errorf("dag: decode: k=%d, need ≥ 1", ej.K)
	}
	ng := New(ej.K).Named(ej.Name)
	for i, c := range ej.Cats {
		if c < 1 || int(c) > ej.K {
			return fmt.Errorf("dag: decode: task %d category %d out of range [1,%d]", i, c, ej.K)
		}
		ng.AddTask(c)
	}
	for _, e := range ej.Edges {
		if err := ng.AddEdge(TaskID(e[0]), TaskID(e[1])); err != nil {
			return fmt.Errorf("dag: decode: %w", err)
		}
	}
	if err := ng.Validate(); err != nil {
		return fmt.Errorf("dag: decode: %w", err)
	}
	// Field-wise move: Graph embeds an atomic height memo that must not be
	// copied. The receiver's memo resets, matching any other mutation.
	g.name, g.k, g.cats = ng.name, ng.k, ng.cats
	g.succ, g.pred, g.durs = ng.succ, ng.pred, ng.durs
	g.edges = ng.edges
	g.hmemo.Store(nil)
	return nil
}
