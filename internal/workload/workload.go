// Package workload generates the synthetic job sets the experiment suite
// runs on: batched and online-arrival mixes of the job shapes from
// internal/dag, all driven by seeded math/rand generators so every
// experiment is reproducible from its parameters alone.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"krad/internal/dag"
	"krad/internal/sim"
)

// Shape names a job-DAG family a generator can draw from.
type Shape int

const (
	// ShapeChain is a sequential chain cycling through the categories.
	ShapeChain Shape = iota
	// ShapeForkJoin is a single wide fork-join.
	ShapeForkJoin
	// ShapeLayered is a stack of levels with a collector between levels.
	ShapeLayered
	// ShapeMapReduce is split → map ×w → reduce ×w/2 → merge.
	ShapeMapReduce
	// ShapePipeline is a stages×width wavefront.
	ShapePipeline
	// ShapeRandom is a random forward-edge DAG.
	ShapeRandom
	// ShapeReduction is a binary reduction tree.
	ShapeReduction
	// ShapeButterfly is an FFT-style butterfly.
	ShapeButterfly
	// ShapeStencil is a time-stepped stencil with halo exchanges.
	ShapeStencil
	// ShapeDnC is a recursive divide-and-conquer skeleton.
	ShapeDnC
)

// String returns the shape name.
func (s Shape) String() string {
	switch s {
	case ShapeChain:
		return "chain"
	case ShapeForkJoin:
		return "forkjoin"
	case ShapeLayered:
		return "layered"
	case ShapeMapReduce:
		return "mapreduce"
	case ShapePipeline:
		return "pipeline"
	case ShapeRandom:
		return "random"
	case ShapeReduction:
		return "reduction"
	case ShapeButterfly:
		return "butterfly"
	case ShapeStencil:
		return "stencil"
	case ShapeDnC:
		return "dnc"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// AllShapes lists every generator family.
var AllShapes = []Shape{
	ShapeChain, ShapeForkJoin, ShapeLayered, ShapeMapReduce, ShapePipeline,
	ShapeRandom, ShapeReduction, ShapeButterfly, ShapeStencil, ShapeDnC,
}

// Mix parameterizes a random job set.
type Mix struct {
	// K is the number of resource categories.
	K int
	// Jobs is the number of jobs to generate.
	Jobs int
	// Shapes restricts the families drawn from (nil = AllShapes).
	Shapes []Shape
	// MinSize and MaxSize bound each job's approximate task count.
	MinSize, MaxSize int
	// CatWeights biases the category distribution (nil = uniform).
	CatWeights []float64
	// Seed makes the mix reproducible.
	Seed int64
}

// Generate materializes the mix as a batched job set (all releases 0).
func (m Mix) Generate() ([]sim.JobSpec, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(m.Seed))
	specs := make([]sim.JobSpec, m.Jobs)
	for i := range specs {
		specs[i] = sim.JobSpec{Graph: m.job(rng, i)}
	}
	return specs, nil
}

// GenerateOnline materializes the mix with arrivals: interarrival times are
// drawn by arrive (e.g. Poisson or Uniform below).
func (m Mix) GenerateOnline(arrive ArrivalProcess) ([]sim.JobSpec, error) {
	specs, err := m.Generate()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(m.Seed + 0x9e3779b9))
	var t int64
	for i := range specs {
		t += arrive(rng)
		specs[i].Release = t
	}
	return specs, nil
}

func (m Mix) check() error {
	if m.K < 1 {
		return fmt.Errorf("workload: mix K=%d, need ≥ 1", m.K)
	}
	if m.Jobs < 1 {
		return fmt.Errorf("workload: mix Jobs=%d, need ≥ 1", m.Jobs)
	}
	if m.MinSize < 1 || m.MaxSize < m.MinSize {
		return fmt.Errorf("workload: mix size bounds [%d,%d] invalid", m.MinSize, m.MaxSize)
	}
	if m.CatWeights != nil && len(m.CatWeights) != m.K {
		return fmt.Errorf("workload: mix has %d category weights for K=%d", len(m.CatWeights), m.K)
	}
	return nil
}

// job draws one job graph.
func (m Mix) job(rng *rand.Rand, idx int) *dag.Graph {
	shapes := m.Shapes
	if len(shapes) == 0 {
		shapes = AllShapes
	}
	shape := shapes[rng.Intn(len(shapes))]
	size := m.MinSize
	if m.MaxSize > m.MinSize {
		size += rng.Intn(m.MaxSize - m.MinSize + 1)
	}
	cat := m.catPicker(rng)
	var g *dag.Graph
	switch shape {
	case ShapeChain:
		g = dag.Chain(m.K, size, func(int) dag.Category { return cat(rng) })
	case ShapeForkJoin:
		width := size - 2
		if width < 1 {
			width = 1
		}
		g = dag.ForkJoin(m.K, width, cat(rng), cat(rng), cat(rng))
	case ShapeLayered:
		layers := 2 + rng.Intn(4)
		per := size / layers
		if per < 1 {
			per = 1
		}
		specs := make([]dag.LayerSpec, layers)
		for i := range specs {
			specs[i] = dag.LayerSpec{Count: per, Cat: cat(rng)}
		}
		g = dag.Layered(m.K, specs, rng.Intn(2) == 0)
	case ShapeMapReduce:
		mappers := size * 2 / 3
		if mappers < 1 {
			mappers = 1
		}
		reducers := mappers / 2
		if reducers < 1 {
			reducers = 1
		}
		g = dag.MapReduce(m.K, mappers, reducers, cat(rng), cat(rng), cat(rng), cat(rng))
	case ShapePipeline:
		stages := 2 + rng.Intn(3)
		width := size / stages
		if width < 1 {
			width = 1
		}
		cats := make([]dag.Category, stages)
		for i := range cats {
			cats[i] = cat(rng)
		}
		g = dag.Pipeline(m.K, stages, width, func(s int) dag.Category { return cats[s] })
	case ShapeRandom:
		g = dag.Random(m.K, dag.RandomOpts{
			Tasks:      size,
			EdgeProb:   0.08 + rng.Float64()*0.15,
			Window:     8 + rng.Intn(24),
			CatWeights: m.CatWeights,
		}, rng)
	case ShapeReduction:
		leaves := size / 2
		if leaves < 1 {
			leaves = 1
		}
		g = dag.BinaryReduction(m.K, leaves, cat(rng), cat(rng))
	case ShapeButterfly:
		logN := 1
		for (logN+2)*(1<<(logN+1)) <= size && logN < 6 {
			logN++
		}
		g = dag.Butterfly(m.K, logN, func(int) dag.Category { return cat(rng) })
	case ShapeStencil:
		width := 2 + rng.Intn(6)
		steps := size / width
		if steps < 1 {
			steps = 1
		}
		g = dag.Stencil2D(m.K, steps, width, 2+rng.Intn(3), cat(rng), cat(rng))
	case ShapeDnC:
		depth := 1
		for 3*(1<<(depth+1)) <= size && depth < 6 {
			depth++
		}
		g = dag.DivideAndConquer(m.K, depth, 2, cat(rng), cat(rng), cat(rng))
	default:
		panic(fmt.Sprintf("workload: unknown shape %v", shape))
	}
	return g.Named(fmt.Sprintf("%s-%d", shape, idx))
}

// catPicker returns a weighted category sampler.
func (m Mix) catPicker(rng *rand.Rand) func(*rand.Rand) dag.Category {
	weights := m.CatWeights
	if weights == nil {
		return func(r *rand.Rand) dag.Category { return dag.Category(r.Intn(m.K) + 1) }
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	return func(r *rand.Rand) dag.Category {
		x := r.Float64() * total
		for i, w := range weights {
			x -= w
			if x < 0 {
				return dag.Category(i + 1)
			}
		}
		return dag.Category(m.K)
	}
}

// WithDurations returns a copy of the specs whose graphs carry per-task
// durations drawn uniformly from [1, maxDur] — input to the non-preemptive
// execution experiments (sim.TimedGraphSource / dag.ExpandDurations). The
// originals are not modified.
func WithDurations(specs []sim.JobSpec, maxDur int, seed int64) ([]sim.JobSpec, error) {
	if maxDur < 1 {
		return nil, fmt.Errorf("workload: WithDurations maxDur=%d, need ≥ 1", maxDur)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]sim.JobSpec, len(specs))
	for i, s := range specs {
		if s.Graph == nil {
			return nil, fmt.Errorf("workload: WithDurations: job %d has no graph", i)
		}
		g := s.Graph.Clone()
		for id := 0; id < g.NumTasks(); id++ {
			g.SetDuration(dag.TaskID(id), 1+rng.Intn(maxDur))
		}
		out[i] = sim.JobSpec{Graph: g, Release: s.Release}
	}
	return out, nil
}

// ArrivalProcess draws one interarrival gap.
type ArrivalProcess func(*rand.Rand) int64

// Poisson returns an arrival process with exponential interarrival times of
// the given mean (rounded to whole steps).
func Poisson(mean float64) ArrivalProcess {
	if mean <= 0 {
		panic("workload: Poisson mean must be positive")
	}
	return func(rng *rand.Rand) int64 {
		return int64(math.Round(rng.ExpFloat64() * mean))
	}
}

// Uniform returns an arrival process with gaps uniform in [lo, hi].
func Uniform(lo, hi int64) ArrivalProcess {
	if lo < 0 || hi < lo {
		panic("workload: Uniform bounds invalid")
	}
	return func(rng *rand.Rand) int64 {
		return lo + rng.Int63n(hi-lo+1)
	}
}

// Bursty returns an arrival process that releases jobs in bursts of the
// given size separated by the given gap — the regime where RAD's
// round-robin cycles matter most.
func Bursty(burst int, gap int64) ArrivalProcess {
	if burst < 1 || gap < 0 {
		panic("workload: Bursty parameters invalid")
	}
	n := 0
	return func(*rand.Rand) int64 {
		n++
		if n%burst == 1 && n > 1 {
			return gap
		}
		return 0
	}
}
