package analysis

import (
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/profile"
	"krad/internal/sim"
	"krad/internal/workload"
)

func TestCheckInequality8DAGLightLoad(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		specs, err := workload.Mix{K: 2, Jobs: 5, MinSize: 3, MaxSize: 30, Seed: seed}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		var sources []sim.JobSource
		for _, s := range specs {
			sources = append(sources, sim.GraphSource(s.Graph))
		}
		report, err := CheckInequality8(2, []int{8, 8}, sources, core.NewKRAD(2))
		if err != nil {
			t.Fatal(err)
		}
		if report.Steps == 0 {
			t.Fatal("no steps checked")
		}
		// DAG jobs with size ≤ 30 on 8+8: deficits must stay sub-unit
		// (the documented rounding gap) and usually vanish entirely.
		if report.MaxDeficit >= 1 {
			t.Errorf("seed %d: deficit %v ≥ 1 — beyond the rounding gap", seed, report.MaxDeficit)
		}
	}
}

func TestCheckInequality8FluidAlwaysHolds(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		specs, err := profile.Generate(profile.GenOpts{
			K: 2, Jobs: 6, MinPhases: 1, MaxPhases: 6, MaxParallelism: 12, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs := make([]*profile.Job, len(specs))
		for i, s := range specs {
			jobs[i] = s.Source.(*profile.Job)
		}
		report, err := CheckInequality8Fluid(2, []int{8, 8}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if report.Violations != 0 {
			t.Errorf("seed %d: fluid replay violated Inequality (8) %d times (first at %d, deficit %v)",
				seed, report.Violations, report.FirstViolation, report.MaxDeficit)
		}
	}
}

func TestCheckInequality8Validation(t *testing.T) {
	if _, err := CheckInequality8(2, []int{4}, nil, core.NewKRAD(2)); err == nil {
		t.Error("caps mismatch accepted")
	}
	if _, err := CheckInequality8Fluid(2, []int{4}, nil); err == nil {
		t.Error("fluid caps mismatch accepted")
	}
	wrongK := profile.MustNew(3, "x", []profile.Phase{{Tasks: []int{1, 0, 0}}})
	if _, err := CheckInequality8Fluid(2, []int{4, 4}, []*profile.Job{wrongK}); err == nil {
		t.Error("K mismatch accepted")
	}
}

func TestFluidDeq(t *testing.T) {
	// All deprived: exact equal shares.
	got := fluidDeq([]float64{10, 10, 10}, 8)
	for _, v := range got {
		if v < 8.0/3-1e-9 || v > 8.0/3+1e-9 {
			t.Fatalf("fluid shares %v, want 8/3 each", got)
		}
	}
	// Mixed: small job satisfied exactly, rest split the remainder.
	got = fluidDeq([]float64{1, 10, 10}, 9)
	if got[0] != 1 || got[1] != 4 || got[2] != 4 {
		t.Errorf("fluid deq = %v, want [1 4 4]", got)
	}
	// Zero desires receive nothing.
	got = fluidDeq([]float64{0, 5}, 4)
	if got[0] != 0 || got[1] != 4 {
		t.Errorf("fluid deq = %v, want [0 4]", got)
	}
}

func TestRemainingSpanRuntimes(t *testing.T) {
	// DAG runtime.
	g := dag.RoundRobinChain(2, 6)
	rtAny := sim.GraphSource(g).NewRuntime(dag.PickFIFO, 0)
	rt, ok := rtAny.(SpanRuntime)
	if !ok {
		t.Fatal("graph runtime does not expose RemainingSpan")
	}
	if rt.RemainingSpan() != 6 {
		t.Errorf("initial span %d, want 6", rt.RemainingSpan())
	}
	rt.Execute(1, 1)
	rt.Advance()
	if rt.RemainingSpan() != 5 {
		t.Errorf("after one task span %d, want 5", rt.RemainingSpan())
	}
	// Profile runtime.
	j := profile.MustNew(1, "p", []profile.Phase{{Tasks: []int{3}}, {Tasks: []int{1}}})
	prt := j.NewRuntime(dag.PickFIFO, 0).(SpanRuntime)
	if prt.RemainingSpan() != 2 {
		t.Errorf("profile span %d, want 2", prt.RemainingSpan())
	}
	prt.Execute(1, 3)
	prt.Advance()
	if prt.RemainingSpan() != 1 {
		t.Errorf("profile span %d after phase 1, want 1", prt.RemainingSpan())
	}
	prt.Execute(1, 1)
	prt.Advance()
	if prt.RemainingSpan() != 0 {
		t.Errorf("completed profile span %d, want 0", prt.RemainingSpan())
	}
}
