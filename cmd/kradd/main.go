// Command kradd runs the online scheduler service: a long-lived daemon
// around internal/server that admits jobs over HTTP while the virtual
// clock runs, streams per-step events, and exposes Prometheus metrics.
//
// Endpoints (see internal/server for the wire formats):
//
//	POST   /v1/jobs       submit a dag-encoded job          → 201 {id, release, shard}
//	POST   /v1/jobs/batch submit many jobs atomically       → 201 {ids, shard}
//	GET    /v1/jobs/{id}  job lifecycle status
//	DELETE /v1/jobs/{id}  cancel a pending/active job
//	GET    /v1/events     SSE stream of step events (all shards)
//	GET    /metrics       Prometheus text exposition (fleet + per-shard)
//	GET    /healthz       liveness + aggregated service stats (always 200)
//	GET    /readyz        readiness (503 while replaying, draining or
//	                      journal-degraded)
//
// Usage:
//
//	kradd -addr :8080 -k 3 -caps 4,4,4 -sched k-rad -step 50ms -queue 256
//	kradd -addr :8080 -shards 4 -placement hash -queue 1024
//	kradd -addr :8080 -journal-dir /var/lib/kradd -fsync always
//	kradd -addr :8080 -fairness -fair-config queues.conf -fair-halflife 512
//
// With -journal-dir set, every committed mutation is write-ahead-journaled
// (one file per shard) and replayed on startup, so a crash or restart
// loses nothing that was acknowledged: job IDs, virtual time and scheduler
// state come back bit-identical. -fsync picks the durability/latency
// trade-off (always, interval, never); -snapshot-every bounds replay time
// by compacting each journal to one snapshot record at idle points. A
// journal the daemon cannot replay (corrupt interior record, version
// mismatch, wrong shard count) is a fatal startup error — kradd exits
// non-zero naming the file, offset and record rather than serving silently
// forgotten state. The listener comes up before replay, answering
// /healthz 200 and /readyz 503 so orchestrators keep the pod alive while
// long replays run.
//
// With -shards N the daemon runs N independent simulation engines behind
// one admission front-end; -placement picks how submissions are routed
// (round-robin, hash on the X-Krad-Placement-Key header, least-loaded).
// -caps and -queue keep their meaning: caps describe each shard's
// machine, and the queue bound is shared across the fleet.
//
// With -fairness (or -fair-config) submissions are gated by multi-tenant
// fair share: the X-Krad-Tenant header resolves to a queue-tree leaf, the
// admission bound is divided over the active leaves by deserved quota and
// over-quota weight, and an over-quota tenant is shed with 429 +
// Retry-After while under-quota tenants keep admitting. -fair-config
// names a queue-tree file (halflife/default/queue lines — see README);
// without one every tenant header gets a dynamically created equal-weight
// leaf. -fair-halflife sets the usage decay half-life in virtual steps
// and overrides the file's halflife line. Tenant identity and usage ride
// the journal, so a fairness-enabled daemon restarts with its ledger
// intact — and refuses to replay a fairness-tagged journal with fairness
// off (or under a different half-life) rather than silently dropping
// tenant state.
//
// With -replicate-to, every committed journal record additionally streams
// to a warm-standby kradd started with -follow (both ends need
// -journal-dir and identical engine configuration). The follower applies
// the records through the same replay path a crash-restart uses, so its
// engines track the primary bit-identically; it answers /readyz 503
// "following" until promoted by POST /v1/promote or, with -promote-after,
// by primary-silence timeout. Promotion bumps the replication epoch and
// fences the old primary: a deposed primary that reconnects (or, with
// -lease, merely loses its follower's acks) refuses admissions rather
// than diverge. See internal/replicate for the protocol and the README's
// "Replication & failover" section for the operational recipe.
//
// With -step 0 the clock free-runs: steps execute as fast as the hardware
// allows whenever work is queued, so submitted jobs drain immediately. A
// positive -step paces the virtual clock against wall time, which is what
// makes the event stream watchable.
//
// SIGINT/SIGTERM trigger a graceful drain: admission stops, in-flight
// jobs run to completion (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"krad/internal/analysis"
	"krad/internal/dag"
	"krad/internal/fairshare"
	"krad/internal/journal"
	"krad/internal/replicate"
	"krad/internal/sched"
	"krad/internal/server"
	"krad/internal/sim"
)

// swapHandler atomically swaps the bootstrap handler for the real service
// handler once startup (journal replay included) completes.
type swapHandler struct{ h atomic.Value }

func newSwapHandler(h http.Handler) *swapHandler {
	s := &swapHandler{}
	s.h.Store(h)
	return s
}

func (s *swapHandler) swap(h http.Handler) { s.h.Store(h) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

// bootstrapHandler serves while the journal replays: alive but not ready.
func bootstrapHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"starting"}` + "\n"))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"status":"unavailable","reason":"replaying journal"}` + "\n"))
	})
	return mux
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("kradd: ")
	var (
		addrFlag   = flag.String("addr", ":8080", "HTTP listen address")
		kFlag      = flag.Int("k", 3, "number of resource categories")
		capsFlag   = flag.String("caps", "4,4,4", "per-category processor counts, comma-separated")
		schedFlag  = flag.String("sched", "k-rad", fmt.Sprintf("scheduler: one of %v", analysis.SchedulerNames()))
		pickFlag   = flag.String("pick", "fifo", "task pick policy: fifo, lifo, random, cp-first, cp-last")
		seedFlag   = flag.Int64("seed", 1, "scheduler/pick-policy seed")
		stepFlag   = flag.Duration("step", 0, "wall-clock duration of one virtual step (0 = free-running)")
		queueFlag  = flag.Int("queue", 256, "admission bound: max in-flight (pending + active) jobs")
		retireFlag = flag.Bool("retire-done", false, "recycle engine state of terminal jobs; statuses served from the ID index (bounds memory for long-running, high-volume daemons)")
		bufFlag    = flag.Int("event-buffer", 64, "per-subscriber event channel capacity")
		drainFlag  = flag.Duration("drain", 30*time.Second, "max time to drain in-flight jobs at shutdown")
		parFlag    = flag.Bool("parallel", false, "parallelize each step's execution phase")
		shardFlag  = flag.Int("shards", 1, "number of independent engine shards")
		placeFlag  = flag.String("placement", server.PlaceRoundRobin,
			"shard placement policy: round-robin, hash, least-loaded")
		journalFlag  = flag.String("journal-dir", "", "write-ahead journal directory (empty = no durability)")
		fsyncFlag    = flag.String("fsync", "always", "journal fsync policy: always, interval, never")
		fsyncIntFlag = flag.Duration("fsync-interval", 100*time.Millisecond, "min spacing between fsyncs under -fsync=interval")
		snapFlag     = flag.Int64("snapshot-every", 10000, "compact a shard journal after this many records at an idle point (0 = never)")
		batchFlag    = flag.Int64("step-batch", 0, "max virtual steps per scheduling round under one lock and one journal append (0 = default 64, 1 = per-step events)")
		pprofFlag    = flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/")
		fairFlag     = flag.Bool("fairness", false, "gate admission by multi-tenant fair share (X-Krad-Tenant header)")
		fairHLFlag   = flag.Int64("fair-halflife", fairshare.DefaultHalfLife, "fair-share usage decay half-life in virtual steps (overrides the -fair-config halflife line)")
		fairCfgFlag  = flag.String("fair-config", "", "queue-tree config file (implies -fairness): halflife, default and queue lines")
		repToFlag    = flag.String("replicate-to", "", "primary: stream committed journal records to a follower kradd's -follow address (requires -journal-dir)")
		followFlag   = flag.String("follow", "", "follower: run as a warm standby, accepting a primary's replication stream on this address (requires -journal-dir)")
		epochFlag    = flag.Int64("epoch", 1, "replication epoch; restart a deposed primary with a value above the promoted follower's to take leadership back")
		leaseFlag    = flag.Duration("lease", 0, "primary: refuse admissions once the follower has been silent this long (0 = no lease gating); set strictly below the follower's -promote-after")
		repHBFlag    = flag.Duration("replicate-heartbeat", time.Second, "primary: idle keepalive interval on the replication stream")
		promoteFlag  = flag.Duration("promote-after", 0, "follower: self-promote after this much primary silence, once a primary has connected (0 = manual POST /v1/promote only)")
		repQueueFlag = flag.Int("replicate-queue", 1024, "primary: per-shard in-memory replication send queue length (overflow falls back to WAL catch-up)")
		stealFlag     = flag.Bool("steal", false, "cross-shard work stealing: idle shards pull pending jobs off the deepest peer (journaled; incompatible with -fairness)")
		stealMaxFlag  = flag.Int("steal-max", 64, "max jobs one steal moves (the work target is half the victim's pending work)")
		stealIdleFlag = flag.Int64("steal-idle", 0, "steal while still running once a shard's estimated remaining work drops below this many task-steps (0 = steal only when idle)")
	)
	flag.Parse()

	caps, err := parseInts(*capsFlag)
	if err != nil || len(caps) != *kFlag {
		log.Fatalf("-caps must list exactly K=%d integers: %v", *kFlag, err)
	}
	scheduler, err := analysis.NewScheduler(*schedFlag, *kFlag)
	if err != nil {
		log.Fatal(err)
	}
	// Moldable jobs pin processors non-preemptively, so every shard's
	// scheduler is floor-respecting. For unit-task workloads the wrapper is
	// the identity, and it snapshots/restores byte-identically to the
	// unwrapped scheduler, so existing journals still replay.
	scheduler = sched.WithFloors(scheduler)
	pick, err := parsePick(*pickFlag)
	if err != nil {
		log.Fatal(err)
	}
	var journalCfg *server.JournalConfig
	if *journalFlag != "" {
		policy, err := journal.ParseSyncPolicy(*fsyncFlag)
		if err != nil {
			log.Fatal(err)
		}
		journalCfg = &server.JournalConfig{
			Dir:           *journalFlag,
			Sync:          policy,
			SyncInterval:  *fsyncIntFlag,
			SnapshotEvery: *snapFlag,
		}
	}
	if *repToFlag != "" && *followFlag != "" {
		log.Fatal("-replicate-to and -follow are mutually exclusive: a daemon is the primary or the standby, not both")
	}
	if (*repToFlag != "" || *followFlag != "") && *journalFlag == "" {
		log.Fatal("replication requires -journal-dir: the journal is both the catch-up source (primary) and the durable apply log (follower)")
	}
	var fairCfg *fairshare.Config
	if *fairFlag || *fairCfgFlag != "" {
		c := fairshare.Config{HalfLife: *fairHLFlag}
		if *fairCfgFlag != "" {
			f, err := os.Open(*fairCfgFlag)
			if err != nil {
				log.Fatal(err)
			}
			c, err = fairshare.ParseConfig(f)
			_ = f.Close()
			if err != nil {
				log.Fatalf("-fair-config %s: %v", *fairCfgFlag, err)
			}
			// An explicitly passed -fair-halflife beats the file's halflife
			// line; the flag's default does not.
			flag.Visit(func(fl *flag.Flag) {
				if fl.Name == "fair-halflife" {
					c.HalfLife = *fairHLFlag
				}
			})
		}
		fairCfg = &c
		hl := c.HalfLife
		if hl == 0 {
			hl = fairshare.DefaultHalfLife
		}
		log.Printf("fair-share admission enabled (half-life=%d steps, config=%q)", hl, *fairCfgFlag)
	}

	// The listener comes up before the service: journal replay can take a
	// while, and an orchestrator probing /healthz must see the process
	// alive (200) but not ready (/readyz 503) until replay finishes. The
	// bootstrap handler is swapped for the real one once New returns.
	handler := newSwapHandler(bootstrapHandler())
	var root http.Handler = handler
	if *pprofFlag {
		// The profiling endpoints wrap the swap handler so they answer even
		// during journal replay — profiling a slow replay is exactly when
		// they are wanted. Off by default: they expose stacks and heap
		// contents, so enabling them is an explicit operator decision.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		root = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addrFlag,
		Handler:           root,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	if journalCfg != nil {
		log.Printf("replaying journal from %s (fsync=%s snapshot-every=%d)", journalCfg.Dir, journalCfg.Sync, journalCfg.SnapshotEvery)
	}
	svc, err := server.New(server.Config{
		Sim: sim.Config{
			K: *kFlag, Caps: caps, Scheduler: scheduler, Pick: pick,
			Seed: *seedFlag, ValidateAllotments: true, Parallel: *parFlag,
		},
		MaxInFlight:      *queueFlag,
		StepEvery:        *stepFlag,
		StepBatch:        *batchFlag,
		SubscriberBuffer: *bufFlag,
		Shards:           *shardFlag,
		Placement:        *placeFlag,
		// Each shard needs its own scheduler instance: K-RAD and the
		// clairvoyant variants carry per-engine state. The name and K
		// were validated above, so the factory cannot fail.
		NewScheduler: func() sched.Scheduler {
			s, _ := analysis.NewScheduler(*schedFlag, *kFlag)
			return sched.WithFloors(s)
		},
		Journal:    journalCfg,
		Fairness:   fairCfg,
		Follower:   *followFlag != "",
		RetireDone: *retireFlag,
		Steal:      *stealFlag,
		StealMax:   *stealMaxFlag,
		StealIdle:  *stealIdleFlag,
	})
	if err != nil {
		// A journal that cannot be replayed (corrupt record, version
		// mismatch, shard-count mismatch) lands here: exit non-zero with
		// the located error instead of serving forgotten state.
		log.Fatal(err)
	}

	// Replication wiring: the sender attaches before Start and before the
	// handler swap, so every committed record reaches the hook; records
	// journaled before this instant (replayed history, the fairness head)
	// are covered by seeding the sender's cursors from the journal.
	var sender *replicate.Sender
	var receiver *replicate.Receiver
	if *repToFlag != "" {
		sender, err = replicate.NewSender(replicate.SenderConfig{
			Addr:      *repToFlag,
			Epoch:     *epochFlag,
			Shards:    svc.Shards(),
			CatchUp:   server.JournalCatchUp(*journalFlag),
			QueueLen:  *repQueueFlag,
			Heartbeat: *repHBFlag,
			Lease:     *leaseFlag,
			Logf:      log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		sender.Seed(svc.ReplicationSeqs())
		svc.SetReplicator(sender)
		svc.SetReplicationStats(func() *server.ReplicationStats {
			st := sender.Stats()
			return &server.ReplicationStats{Role: "primary", Primary: &st}
		})
		sender.Start()
		log.Printf("replicating to %s (epoch %d, lease %v, heartbeat %v)", *repToFlag, *epochFlag, *leaseFlag, *repHBFlag)
	}
	if *followFlag != "" {
		ln, err := net.Listen("tcp", *followFlag)
		if err != nil {
			log.Fatal(err)
		}
		receiver, err = replicate.NewReceiver(replicate.ReceiverConfig{
			Listener:     ln,
			Applier:      svc,
			Epoch:        *epochFlag,
			PromoteAfter: *promoteFlag,
			OnPromote: func(epoch int64) {
				svc.Promote()
				log.Printf("promoted to primary at epoch %d: step loops started, admissions open", epoch)
			},
			Logf: log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		svc.SetPromote(receiver.Promote)
		svc.SetReplicationStats(func() *server.ReplicationStats {
			st := receiver.Stats()
			role := "follower"
			if promoted, _ := receiver.Promoted(); promoted {
				role = "primary"
			}
			return &server.ReplicationStats{Role: role, Follower: &st}
		})
		log.Printf("following: replication listener on %s (epoch %d, promote-after %v)", ln.Addr(), *epochFlag, *promoteFlag)
	}

	svc.Start()
	handler.swap(svc.Handler())

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	log.Printf("listening on %s (K=%d caps=%v sched=%s step=%v queue=%d shards=%d placement=%s)",
		*addrFlag, *kFlag, caps, *schedFlag, *stepFlag, *queueFlag, *shardFlag, *placeFlag)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining in-flight jobs (up to %v)", *drainFlag)
	drainCtx, stop := context.WithTimeout(context.Background(), *drainFlag)
	defer stop()
	// Close first so the drain happens while the HTTP surface still
	// answers status queries; then shut the listener down. The sender
	// stops after the drain so the final records stream out; the receiver
	// closes without promoting — a restarting standby resumes following.
	closeErr := svc.Close(drainCtx)
	if closeErr != nil {
		log.Printf("drain: %v", closeErr)
	}
	if sender != nil {
		sender.Stop()
	}
	if receiver != nil {
		receiver.Close()
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Err(); err != nil {
		log.Fatalf("step loop failed: %v", err)
	}
	if closeErr != nil && !errors.Is(closeErr, context.DeadlineExceeded) {
		// A failed final journal flush means acknowledged tail records may
		// not be durable: exit non-zero so orchestrators notice.
		log.Fatalf("journal close failed — acknowledged tail records may not be durable: %v", closeErr)
	}
	log.Print("bye")
	_ = os.Stdout.Sync()
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parsePick(s string) (dag.PickPolicy, error) {
	switch s {
	case "fifo":
		return dag.PickFIFO, nil
	case "lifo":
		return dag.PickLIFO, nil
	case "random":
		return dag.PickRandom, nil
	case "cp-first":
		return dag.PickCPFirst, nil
	case "cp-last":
		return dag.PickCPLast, nil
	}
	return 0, fmt.Errorf("unknown pick policy %q", s)
}
